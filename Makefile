# Tier-1 verify plus the stricter checks the crowd service demands.

GO ?= go

# Packages whose concurrency is load-bearing; always raced in ci.
RACE_PKGS := ./internal/store/... ./internal/ingest/... ./internal/server/...

.PHONY: build test vet race ci demo

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

race:
	$(GO) test -race $(RACE_PKGS)

# ci is the full gate: vet, tier-1 build+test, then the race pass over the
# concurrent subsystem.
ci: vet build test race

# demo starts crowdd, fires a 200-device load at it, prints the bins and
# shuts the server down.
demo: build
	$(GO) build -o /tmp/crowdd ./cmd/crowdd
	$(GO) build -o /tmp/crowdload ./cmd/crowdload
	/tmp/crowdd -addr 127.0.0.1:8077 & \
	CROWDD_PID=$$!; \
	sleep 1; \
	/tmp/crowdload -addr http://127.0.0.1:8077 -devices 200; \
	STATUS=$$?; \
	kill -INT $$CROWDD_PID; wait $$CROWDD_PID; \
	exit $$STATUS
