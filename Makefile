# Tier-1 verify plus the stricter checks the crowd service demands.

GO ?= go

# Per-target fuzz smoke duration; raise locally for a deeper hunt.
FUZZTIME ?= 5s

# Minimum acceptable total statement coverage, in percent.
COVER_FLOOR ?= 75

.PHONY: build test vet race race-repl chaos-smoke fuzz-smoke cover godoc-check links-check bench bench-diff bench-smoke ci demo cluster-demo profile

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# The whole tree races in ci: the service packages have load-bearing
# concurrency, and the simulator must stay race-free for StudyParallel.
race:
	$(GO) test -race ./...

# race-repl re-runs the replication stack uncached under the race
# detector: the clock, the replicator's shippers and anti-entropy loop,
# the wire codec + streaming ingest, and the multi-node cluster e2e —
# the most concurrency-dense code in the tree gets a fresh pass every
# ci run.
race-repl:
	$(GO) test -race -count=1 ./internal/hlc ./internal/replication ./internal/wire
	$(GO) test -race -count=1 -run '^TestCluster|^TestStream' ./internal/server

# fuzz-smoke runs each fuzz target briefly — enough to catch regressions
# on the corpus plus a short random walk. -run '^$' skips the unit tests
# around them.
fuzz-smoke:
	$(GO) test ./internal/soc -run '^$$' -fuzz '^FuzzModelCodec$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/ingest -run '^$$' -fuzz '^FuzzDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wal -run '^$$' -fuzz '^FuzzWALRecordDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/hlc -run '^$$' -fuzz '^FuzzCodec$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/replication -run '^$$' -fuzz '^FuzzBatchDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/wire -run '^$$' -fuzz '^FuzzWireFrameDecode$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/stats -run '^$$' -fuzz '^FuzzSketchDecode$$' -fuzztime $(FUZZTIME)

# chaos-smoke runs the seeded fault-injection scenario matrix under the
# race detector, uncached: every scenario in internal/chaos executed
# against a real in-process cluster, with the determinism pin (same seed
# => identical event log) asserted on each run. Deterministic seeds keep
# it well under a minute (docs/CLUSTER.md, "Fault injection & scenarios").
chaos-smoke:
	$(GO) test -race -count=1 -run '^TestChaos' ./internal/server

# cover prints the per-package function coverage report and enforces the
# total floor.
cover:
	$(GO) test -coverprofile=/tmp/accubench-cover.out ./...
	$(GO) tool cover -func=/tmp/accubench-cover.out
	@total=$$($(GO) tool cover -func=/tmp/accubench-cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}'); \
	awk -v t="$$total" -v floor="$(COVER_FLOOR)" 'BEGIN { \
		if (t + 0 < floor + 0) { printf "total coverage %.1f%% is below the %s%% floor\n", t, floor; exit 1 } \
		printf "total coverage %.1f%% (floor %s%%)\n", t, floor }'

# godoc-check enforces the documentation audit: every internal package
# opens with a package doc comment stating its role.
godoc-check:
	sh scripts/check_godoc.sh

# links-check asserts every relative markdown link in the top-level docs
# resolves.
links-check:
	sh scripts/check_links.sh

# bench runs the headline hot-path benchmarks (device step, thermal
# step, Table II regeneration), prints benchstat-comparable output and
# refreshes BENCH_5.json with the measured ns/op and allocs/op, then
# the JSON-vs-binary ingest throughput comparison into BENCH_8.json
# (docs/WIRE.md), then the batched fleet engine into BENCH_9.json
# (docs/FLEET.md), then the exact-vs-sketch bins read sweep into
# BENCH_10.json (docs/BINNING.md). See docs/PERFORMANCE.md for the
# hot-path map behind these numbers.
bench:
	sh scripts/bench_run.sh
	sh scripts/bench_ingest.sh
	sh scripts/bench_fleet.sh
	sh scripts/bench_bins.sh

# bench-diff re-measures and fails if any headline benchmark regressed
# more than 10% against its committed baseline: ns/op vs BENCH_5.json,
# fleet devices_steps_per_sec (lower = regression) vs BENCH_9.json,
# bins read latency + sketch speedup vs BENCH_10.json. The bins sweep
# gets a wider 30% tolerance: its exact-path rows are multi-second
# single-shot scans whose min-of-few timing still jitters ~20% on a
# loaded machine, while the regression it guards (sketch falling back
# to O(corpus)) shows up as 100x, not 30%.
bench-diff:
	sh scripts/bench_diff.sh
	@tmp=$$(mktemp); BENCH_OUT=$$tmp sh scripts/bench_fleet.sh >/dev/null; \
		sh scripts/bench_diff.sh BENCH_9.json $$tmp; rc=$$?; rm -f $$tmp; exit $$rc
	@tmp=$$(mktemp); BENCH_OUT=$$tmp sh scripts/bench_bins.sh >/dev/null; \
		BENCH_TOLERANCE_PCT=30 sh scripts/bench_diff.sh BENCH_10.json $$tmp; \
		rc=$$?; rm -f $$tmp; exit $$rc

# bench-smoke is the quick ci gate: a handful of iterations per headline
# benchmark, enough to prove the hot paths still run (and that the
# zero-alloc pins in the test suite have benchmarks to back them) without
# the noise-sensitive regression comparison.
bench-smoke:
	$(GO) test -run '^$$' \
		-bench '^(BenchmarkDeviceStep|BenchmarkThermalStep|BenchmarkTableII|BenchmarkFleetStep)$$' \
		-benchmem -benchtime 10x .

# ci is the full gate: vet, tier-1 build+test, the race pass over the
# whole tree, the chaos scenario matrix, the fuzz smoke, the bench
# smoke, then the documentation checks.
ci: vet build test race race-repl chaos-smoke fuzz-smoke bench-smoke godoc-check links-check

# demo starts crowdd, fires a 200-device load at it, prints the bins and
# shuts the server down.
demo: build
	$(GO) build -o /tmp/crowdd ./cmd/crowdd
	$(GO) build -o /tmp/crowdload ./cmd/crowdload
	/tmp/crowdd -addr 127.0.0.1:8077 & \
	CROWDD_PID=$$!; \
	sleep 1; \
	/tmp/crowdload -addr http://127.0.0.1:8077 -devices 200; \
	STATUS=$$?; \
	kill -INT $$CROWDD_PID; wait $$CROWDD_PID; \
	exit $$STATUS

# cluster-demo boots a 3-node replicated cluster, sprays a fleet across
# it, SIGKILLs one node mid-run and requires the survivors to converge
# with zero acknowledged-submission loss (docs/CLUSTER.md).
cluster-demo:
	sh scripts/cluster_demo.sh

# profile captures a CPU profile of crowdd while crowdload drives it and
# prints the hottest functions. Self-contained: `go tool pprof` fetches
# the profile from the -debug-addr listener itself, no curl needed. The
# raw profile lands in /tmp/crowdd-cpu.pprof for interactive digging.
PROFILE_SECONDS ?= 8
profile:
	$(GO) build -o /tmp/crowdd ./cmd/crowdd
	$(GO) build -o /tmp/crowdload ./cmd/crowdload
	/tmp/crowdd -addr 127.0.0.1:8077 -debug-addr 127.0.0.1:6060 & \
	CROWDD_PID=$$!; \
	sleep 1; \
	/tmp/crowdload -addr http://127.0.0.1:8077 -devices 2000 -concurrency 32 & \
	LOAD_PID=$$!; \
	$(GO) tool pprof -proto -output /tmp/crowdd-cpu.pprof -seconds $(PROFILE_SECONDS) \
		http://127.0.0.1:6060/debug/pprof/profile; \
	STATUS=$$?; \
	wait $$LOAD_PID; \
	kill -INT $$CROWDD_PID; wait $$CROWDD_PID; \
	[ $$STATUS -eq 0 ] && $(GO) tool pprof -top -nodecount 15 /tmp/crowdd-cpu.pprof; \
	exit $$STATUS
