// Command experiments regenerates the paper's tables and figures from the
// simulation. Each experiment is named after its table/figure number:
//
//	experiments -run tableI
//	experiments -run fig6 -quick
//	experiments -run all
//
// Use -quick for a ~10× faster smoke run with shorter phases (shapes hold;
// error bars widen).
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
	"time"

	"accubench/internal/experiments"
	"accubench/internal/report"
	"accubench/internal/stats"
)

func main() {
	run := flag.String("run", "all", "experiment to run: tableI, tableII, fig1..fig13, repeatability, or all")
	quick := flag.Bool("quick", false, "shrink phases/iterations for a fast smoke run")
	seed := flag.Int64("seed", 1, "root random seed")
	flag.Parse()

	o := experiments.Options{Quick: *quick, Seed: *seed}
	if err := dispatch(*run, o); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

// runners maps experiment ids to their renderers. tableII/fig13/
// repeatability share one full-fleet study and are handled in dispatch.
var runners = map[string]func(experiments.Options) error{
	"tableI":     renderTableI,
	"fig1":       renderFig1,
	"fig2":       renderFig2,
	"fig3":       renderFig3,
	"fig4":       func(o experiments.Options) error { return renderPhaseTrace(o, "fig4") },
	"fig5":       func(o experiments.Options) error { return renderPhaseTrace(o, "fig5") },
	"fig6":       func(o experiments.Options) error { return renderModelStudy(o, "Nexus 5", "fig6") },
	"fig7":       func(o experiments.Options) error { return renderModelStudy(o, "Nexus 6P", "fig7") },
	"fig8":       func(o experiments.Options) error { return renderModelStudy(o, "LG G5", "fig8") },
	"fig9":       func(o experiments.Options) error { return renderModelStudy(o, "Google Pixel", "fig9") },
	"fig10":      renderFig10,
	"fig11":      func(o experiments.Options) error { return renderDistributions(o, "fig11") },
	"fig12":      func(o experiments.Options) error { return renderDistributions(o, "fig12") },
	"baseline":   renderBaseline,
	"ablations":  renderAblations,
	"whatif":     renderWhatIf,
	"thermalmap": renderThermalMap,
}

func dispatch(name string, o experiments.Options) error {
	switch name {
	case "all":
		ids := make([]string, 0, len(runners))
		for id := range runners {
			ids = append(ids, id)
		}
		sort.Strings(ids)
		for _, id := range ids {
			if err := runners[id](o); err != nil {
				return fmt.Errorf("%s: %w", id, err)
			}
			fmt.Println()
		}
		return renderFullFleet(o)
	case "tableII", "fig13", "repeatability":
		return renderFullFleet(o)
	default:
		fn, ok := runners[name]
		if !ok {
			return fmt.Errorf("unknown experiment %q", name)
		}
		return fn(o)
	}
}

func renderTableI(experiments.Options) error {
	rows := experiments.TableI()
	fmt.Println("Table I: Voltage vs. Frequency across bins (Nexus 5, mV)")
	header := []string{"Bin"}
	for _, f := range rows[0].Frequencies {
		header = append(header, f.String())
	}
	t := report.NewTable(header...)
	for _, r := range rows {
		cells := []string{r.Bin.String()}
		for _, mv := range r.Millivolts {
			cells = append(cells, fmt.Sprintf("%.0f", mv))
		}
		t.AddRow(cells...)
	}
	return t.Write(os.Stdout)
}

func renderFig1(o experiments.Options) error {
	pts, err := experiments.Fig1(o)
	if err != nil {
		return err
	}
	fmt.Println("Fig 1: Energy, time and temperature for fixed work across Nexus 5 bins")
	t := report.NewTable("unit", "energy", "norm", "took", "norm", "peak die", "min cores")
	for _, p := range pts {
		t.AddRow(p.Unit.Name, p.Energy.String(), fmt.Sprintf("%.2f×", p.NormEnergy),
			p.Took.Truncate(1e9).String(), fmt.Sprintf("%.2f×", p.NormTime),
			p.PeakDie.String(), fmt.Sprintf("%d", p.MinOnline))
	}
	return t.Write(os.Stdout)
}

func renderFig2(o experiments.Options) error {
	pts, err := experiments.Fig2(o)
	if err != nil {
		return err
	}
	fmt.Println("Fig 2: Energy for fixed work vs ambient temperature")
	t := report.NewTable("unit", "ambient", "energy", "vs coldest")
	for _, p := range pts {
		t.AddRow(p.Unit.Name, p.Ambient.String(), p.Energy.String(), fmt.Sprintf("%.2f×", p.NormEnergy))
	}
	return t.Write(os.Stdout)
}

func renderFig3(o experiments.Options) error {
	r, err := experiments.Fig3(o)
	if err != nil {
		return err
	}
	fmt.Println("Fig 3: THERMABOX regulation")
	fmt.Printf("target %v; stabilized in %v\n", r.Target, r.StabilizeTook.Truncate(1e9))
	fmt.Printf("air over 30 min with duty-cycled device load: mean %v, range [%v, %v], RSD %.2f%%\n",
		r.MeanAir, r.MinAir, r.MaxAir, r.RSD)
	fmt.Printf("trace: %s\n", report.Sparkline(r.AirTrace))
	return nil
}

func renderPhaseTrace(o experiments.Options, id string) error {
	var (
		pt  experiments.PhaseTrace
		err error
	)
	if id == "fig4" {
		pt, err = experiments.Fig4(o)
	} else {
		pt, err = experiments.Fig5(o)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: ACCUBENCH stages on %s (%v)\n", strings.ToUpper(id[:1])+id[1:], pt.Unit.Name, pt.Mode)
	for _, ph := range pt.Phases {
		fmt.Printf("  %-9s %8s → %8s\n", ph.Name, ph.Start.Truncate(1e9), ph.End.Truncate(1e9))
	}
	fmt.Printf("die °C : %s\n", report.Sparkline(pt.Die))
	fmt.Printf("freq   : %s\n", report.Sparkline(pt.Freq))
	fmt.Printf("cores  : %s\n", report.Sparkline(pt.Cores))
	fmt.Printf("peak die %v\n", pt.PeakDie)
	return nil
}

func renderModelStudy(o experiments.Options, model, id string) error {
	st, err := experiments.Study(model, o)
	if err != nil {
		return err
	}
	printStudy(id, st)
	return nil
}

func printStudy(id string, st experiments.ModelStudy) {
	fmt.Printf("%s: %s — perf variation %s (err %.2f%% RSD), energy variation %s (fixed-freq perf RSD %.2f%%)\n",
		id, st.Model, report.Pct(st.PerfVariationPct()), st.PerfErrorRSD(),
		report.Pct(st.EnergyVariationPct()), st.FixedFreqPerfRSD())
	t := report.NewTable("unit", "corner", "score", "norm perf", "energy", "norm energy")
	perfs := stats.Normalize(st.PerfScores())
	energies := st.EnergiesJ()
	normE := stats.Normalize(energies)
	for i, out := range st.Perf {
		t.AddRow(out.Unit.Name, out.Unit.Corner.String(),
			fmt.Sprintf("%.0f", out.Result.MeanScore()),
			fmt.Sprintf("%.3f %s", perfs[i], report.Bar(perfs[i], 20)),
			fmt.Sprintf("%.1fJ", energies[i]),
			fmt.Sprintf("%.3f %s", normE[i], report.Bar(normE[i], 20)),
		)
	}
	t.Write(os.Stdout)
}

func renderFig10(o experiments.Options) error {
	rows, err := experiments.Fig10(o)
	if err != nil {
		return err
	}
	fmt.Println("Fig 10: LG G5 input-voltage throttling")
	t := report.NewTable("supply", "score", "vs battery")
	for _, r := range rows {
		t.AddRow(r.Supply, fmt.Sprintf("%.0f", r.MeanScore), fmt.Sprintf("%.2f×", r.Normalized))
	}
	return t.Write(os.Stdout)
}

func renderDistributions(o experiments.Options, id string) error {
	var (
		st  experiments.DistributionStudy
		err error
	)
	if id == "fig11" {
		st, err = experiments.Fig11(o)
	} else {
		st, err = experiments.Fig12(o)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: %s frequency/temperature distributions\n", id, st.Model)
	for i, u := range st.Units {
		fmt.Printf("%s (mean freq %v):\n", u.Name, st.MeanFreq[i])
		for _, b := range st.FreqHist[i] {
			if b.Count == 0 {
				continue
			}
			fmt.Printf("  %5.0f–%5.0f MHz %5.1f%% %s\n", b.Lo, b.Hi, b.Frac*100, report.Bar(b.Frac, 40))
		}
	}
	fmt.Printf("mean-frequency gap %.1f%%, score gap %.1f%%\n", st.MeanFreqGapPct, st.ScoreGapPct)
	return nil
}

func renderFullFleet(o experiments.Options) error {
	rows, studies, err := experiments.TableII(o)
	if err != nil {
		return err
	}
	fmt.Println("Table II: Summary of energy-performance variations")
	t := report.NewTable("Chipset", "Model", "#Devices", "Perf var", "Energy var")
	for _, r := range rows {
		t.AddRow(r.Chipset, r.Model, fmt.Sprintf("%d", r.Devices), report.Pct(r.PerfPct), report.Pct(r.EnergyPct))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	for i, st := range studies {
		printStudy(fmt.Sprintf("fig%d", 6+i), st)
		fmt.Println()
	}
	fmt.Println("Fig 13: Relative efficiency across SoC generations")
	effRows, err := experiments.Fig13(studies)
	if err != nil {
		return err
	}
	et := report.NewTable("Chipset", "Model", "iter/Wh", "vs SD-800")
	for _, r := range effRows {
		et.AddRow(r.Chipset, r.Model, fmt.Sprintf("%.0f", r.IterPerWh), fmt.Sprintf("%.2f×", r.Relative))
	}
	if err := et.Write(os.Stdout); err != nil {
		return err
	}
	avg, iters := experiments.Repeatability(studies)
	fmt.Printf("\nRepeatability: average error %.2f%% RSD over %d iterations (paper: 1.1%% over ~300)\n", avg, iters)
	return nil
}

func renderBaseline(o experiments.Options) error {
	r, err := experiments.Baseline(o)
	if err != nil {
		return err
	}
	fmt.Println("Baseline: naive press-start benchmarking vs ACCUBENCH (Nexus 5)")
	t := report.NewTable("run", "score", "start die")
	for i, s := range r.Naive.Scores {
		t.AddRow(fmt.Sprintf("%d", i+1), fmt.Sprintf("%d", s), r.Naive.StartDieTemps[i].String())
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("first run beats the rest by %.1f%%; naive RSD %.2f%% vs ACCUBENCH RSD %.2f%%\n",
		r.Naive.FirstVsRestPct(), r.NaiveRSD, r.AccubenchRSD)
	fmt.Printf("refrigerator trick: %v score %.0f vs %v score %.0f (+%.0f%%)\n",
		r.FridgeAmbient, r.FridgeScore, r.HotAmbient, r.HotScore, r.FridgeGainPct())
	return nil
}

func renderAblations(o experiments.Options) error {
	fmt.Println("Ablation: warmup duration (why the paper warms up for 3 minutes)")
	wu, err := experiments.AblateWarmup(o)
	if err != nil {
		return err
	}
	t := report.NewTable("warmup", "first-vs-rest", "RSD")
	for _, r := range wu {
		t.AddRow(r.Warmup.String(), fmt.Sprintf("%+.1f%%", r.FirstVsRestPct), fmt.Sprintf("%.2f%%", r.RSD))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nAblation: cooldown target (waiting time buys score headroom)")
	cd, err := experiments.AblateCooldownTarget(o)
	if err != nil {
		return err
	}
	t = report.NewTable("target", "mean score", "mean cooldown", "RSD")
	for _, r := range cd {
		t.AddRow(r.Target.String(), fmt.Sprintf("%.0f", r.MeanScore),
			r.MeanCooldown.Truncate(time.Second).String(), fmt.Sprintf("%.2f%%", r.RSD))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nAblation: thermal-engine hysteresis (Nexus 5)")
	hy, err := experiments.AblateHysteresis(o)
	if err != nil {
		return err
	}
	t = report.NewTable("hysteresis", "mean score", "throttles/iter", "RSD")
	for _, r := range hy {
		t.AddRow(fmt.Sprintf("%.0f°C", r.Hysteresis), fmt.Sprintf("%.0f", r.MeanScore),
			fmt.Sprintf("%.1f", r.ThrottleEvents), fmt.Sprintf("%.2f%%", r.RSD))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nAblation: workload shape (why the benchmark must saturate the CPU)")
	ws, err := experiments.AblateWorkloadShape(o)
	if err != nil {
		return err
	}
	t = report.NewTable("profile", "mean power", "perf variation")
	for _, r := range ws {
		t.AddRow(r.Profile.Name, fmt.Sprintf("%.2fW", r.MeanPowerW), report.Pct(r.PerfVariationPct))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\nAblation: tsens sensor noise")
	sn, err := experiments.AblateSensorNoise(o)
	if err != nil {
		return err
	}
	t = report.NewTable("sigma", "mean score", "RSD")
	for _, r := range sn {
		t.AddRow(fmt.Sprintf("%.1f°C", r.Sigma), fmt.Sprintf("%.0f", r.MeanScore), fmt.Sprintf("%.2f%%", r.RSD))
	}
	return t.Write(os.Stdout)
}

func renderWhatIf(o experiments.Options) error {
	r, err := experiments.WhatIfSpeedBinning(o)
	if err != nil {
		return err
	}
	fmt.Println("What-if: the same chip population under the two binning schemes of §II")
	fmt.Printf("voltage binning (phones): sustained scores spread %s — invisible to the buyer\n",
		report.Pct(r.VoltageSpreadPct()))
	fmt.Printf("speed binning (desktop-style): burst spread %s, sustained spread %s, %d chips scrapped\n",
		report.Pct(r.BurstSpreadPct()), report.Pct(r.SustainedSpreadPct()), r.Scrap)
	t := report.NewTable("SKU", "chips", "burst (iters/5min)", "sustained")
	for _, gm := range r.GradeMeans() {
		t.AddRow(gm.Grade.String(), fmt.Sprintf("%d", gm.Count),
			fmt.Sprintf("%.0f", gm.Burst), fmt.Sprintf("%.0f", gm.Sustained))
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	fmt.Println("passive cooling makes the halo SKU a burst-only promise — one more reason phones voltage-bin")
	return nil
}

func renderThermalMap(o experiments.Options) error {
	r, err := experiments.ThermalMap(o)
	if err != nil {
		return err
	}
	fmt.Println("Thermal map: Nexus 5 die at the throttled operating point (Therminator-style extension)")
	fmt.Printf("all 4 cores: peak %v at (%d,%d), mean %v\n%s\n",
		r.FullLoadPeak, r.HotspotX, r.HotspotY, r.FullLoadMean, r.FullLoadMap)
	fmt.Printf("after the 80°C core shutdown (3 cores): peak %v, mean %v\n%s",
		r.ShedPeak, r.ShedMean, r.ShedMap)
	return nil
}
