// Command crowd simulates the paper's §VI proposal: a benchmarking app on
// Google Play gathering crowdsourced ACCUBENCH runs, estimating each
// submission's ambient temperature from the cooldown decay, filtering
// extreme climates, and ranking the surviving devices.
//
//	crowd -model "Nexus 5" -population 40
//	crowd -model "Google Pixel" -population 24 -accept-lo 18 -accept-hi 32
package main

import (
	"flag"
	"fmt"
	"os"

	"accubench/internal/crowd"
	"accubench/internal/report"
	"accubench/internal/units"
)

func main() {
	cfg := crowd.DefaultStudyConfig()
	var acceptLo, acceptHi float64
	flag.StringVar(&cfg.ModelName, "model", cfg.ModelName, "device model under study")
	flag.IntVar(&cfg.Population, "population", cfg.Population, "number of submitting devices")
	flag.Float64Var(&acceptLo, "accept-lo", float64(cfg.AcceptLo), "lowest accepted estimated ambient, °C")
	flag.Float64Var(&acceptHi, "accept-hi", float64(cfg.AcceptHi), "highest accepted estimated ambient, °C")
	flag.Int64Var(&cfg.Seed, "seed", cfg.Seed, "random seed")
	flag.Parse()
	cfg.AcceptLo = units.Celsius(acceptLo)
	cfg.AcceptHi = units.Celsius(acceptHi)

	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "crowd:", err)
		os.Exit(1)
	}
}

func run(cfg crowd.StudyConfig) error {
	fmt.Printf("crowdsourced study: %d %s units in the wild (%v–%v ambients)\n",
		cfg.Population, cfg.ModelName, cfg.AmbientLo, cfg.AmbientHi)
	res, err := crowd.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Printf("ambient estimation MAE %.2f°C; accepted %d/%d submissions inside [%v, %v]\n",
		res.EstimationMAE, res.Accepted, len(res.Submissions), cfg.AcceptLo, cfg.AcceptHi)
	fmt.Printf("ambient slope %.1f score/°C; silicon-vs-score Kendall τ = %.2f\n\n",
		res.AmbientSlope, res.RankCorrelation)

	t := report.NewTable("rank", "device", "score", "normalized", "est ambient", "true ambient", "true leak")
	for i, s := range res.Ranking() {
		t.AddRow(
			fmt.Sprintf("%d", i+1),
			s.Device,
			fmt.Sprintf("%.0f", s.Score),
			fmt.Sprintf("%.0f", s.NormalizedScore),
			s.EstimatedAmbient.String(),
			s.TrueAmbient().String(),
			fmt.Sprintf("×%.2f", s.TrueLeakage()),
		)
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	if res.BinCount > 0 {
		fmt.Printf("\ndiscovered %d score bins over the accepted population:", res.BinCount)
		for _, c := range res.Bins.Centroids {
			fmt.Printf(" %.0f", c)
		}
		fmt.Println()
	}
	rejected := len(res.Submissions) - res.Accepted
	fmt.Printf("%d submissions filtered as out-of-window climates\n", rejected)
	return nil
}
