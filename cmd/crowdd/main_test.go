package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/testkit"
	"accubench/internal/units"
)

// startDaemon boots the real daemon — run(), exactly what main() calls —
// on a random port and returns its base URL, the captured stdout, and a
// shutdown func that triggers the signal path and waits for exit.
func startDaemon(t *testing.T, extraArgs ...string) (base string, out *lockedBuffer, shutdown func() error) {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	out = &lockedBuffer{}
	addrc := make(chan string, 1)
	errc := make(chan error, 1)
	args := append([]string{"-addr", "127.0.0.1:0", "-bin-debounce", "1ms"}, extraArgs...)
	go func() { errc <- run(ctx, args, out, func(addr string) { addrc <- addr }) }()
	select {
	case addr := <-addrc:
		base = "http://" + addr
	case err := <-errc:
		t.Fatalf("daemon exited before ready: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("daemon never became ready")
	}
	var once sync.Once
	var exitErr error
	shutdown = func() error {
		once.Do(func() {
			cancel()
			select {
			case exitErr = <-errc:
			case <-time.After(15 * time.Second):
				exitErr = fmt.Errorf("daemon did not exit after shutdown")
			}
		})
		return exitErr
	}
	t.Cleanup(func() { shutdown() })
	return base, out, shutdown
}

// lockedBuffer makes the daemon's stdout safe to read while it still
// writes.
type lockedBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *lockedBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *lockedBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func post(t *testing.T, url string, raw []byte) (int, string) {
	t.Helper()
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, string(body)
}

func metrics(t *testing.T, base string) map[string]uint64 {
	t.Helper()
	code, body := get(t, base+"/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	out := make(map[string]uint64)
	for _, line := range strings.Split(body, "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		// Comment lines and float-valued series (histogram sums,
		// quantiles) are skipped; the counters stay a flat map.
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			continue
		}
		out[name] = n
	}
	return out
}

// waitForCounter polls /metrics until the named counter reaches want —
// uploads are processed asynchronously behind the 202.
func waitForCounter(t *testing.T, base, name string, want uint64) map[string]uint64 {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := metrics(t, base)
		if m[name] >= want {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s stuck at %d, want %d", name, m[name], want)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestDaemonEndToEnd boots crowdd on a random port and exercises every
// HTTP endpoint through a real TCP connection: healthz, submissions
// (accepted, rejected, malformed, oversized), device verdicts (hit and
// 404), bins (all models, one model, unknown-model 404), metrics
// conservation, and the graceful signal-drain path.
func TestDaemonEndToEnd(t *testing.T) {
	base, out, shutdown := startDaemon(t, "-max-body", "4096")
	policy := crowd.DefaultPolicy()

	if code, body := get(t, base+"/healthz"); code != http.StatusOK || !strings.Contains(body, "ok") {
		t.Fatalf("GET /healthz = %d %q", code, body)
	}

	// Accepted population: two decorrelated score groups across the window.
	var accepted uint64
	for i := 0; i < 10; i++ {
		score := 1000.0
		if i%2 == 1 {
			score = 1600
		}
		score += float64(i)
		ambient := units.Celsius(21 + 0.8*float64(i))
		raw := testkit.AcceptedPayload(t, policy, fmt.Sprintf("dev-%02d", i), score, ambient)
		if code, body := post(t, base+"/v1/submissions", raw); code != http.StatusAccepted {
			t.Fatalf("POST accepted payload %d = %d %q", i, code, body)
		}
		accepted++
	}
	// One filtered-out device.
	if code, _ := post(t, base+"/v1/submissions", testkit.RejectedPayload(t, policy, "dev-hot", 900)); code != http.StatusAccepted {
		t.Fatalf("POST rejected-by-policy payload = %d, want 202 (filtering is async)", code)
	}
	// Malformed corpus: 202 at the HTTP layer, decode errors in metrics.
	for i, raw := range testkit.MalformedPayloads() {
		if code, body := post(t, base+"/v1/submissions", raw); code != http.StatusAccepted {
			t.Fatalf("POST malformed %d = %d %q", i, code, body)
		}
	}
	// Error path with a synchronous status: a body over -max-body is 413.
	huge := bytes.Repeat([]byte("x"), 8192)
	if code, _ := post(t, base+"/v1/submissions", huge); code != http.StatusRequestEntityTooLarge {
		t.Fatalf("POST oversized body = %d, want 413", code)
	}

	wantStored := accepted + 1 // rejected device is stored with its verdict
	m := waitForCounter(t, base, "crowdd_stored_total", wantStored)
	testkit.CheckMetricsFlow(t, m)
	if got := m["crowdd_decode_errors_total"]; got != uint64(len(testkit.MalformedPayloads())) {
		t.Errorf("decode errors %d, want %d (oversized body must not reach the decoder)",
			got, len(testkit.MalformedPayloads()))
	}
	if got := m["crowdd_accepted_total"]; got != accepted {
		t.Errorf("accepted %d, want %d", got, accepted)
	}
	if got := m["crowdd_rejected_total"]; got != 1 {
		t.Errorf("rejected %d, want 1", got)
	}

	// Device verdict lookups.
	code, body := get(t, base+"/v1/devices/dev-hot")
	if code != http.StatusOK {
		t.Fatalf("GET /v1/devices/dev-hot = %d", code)
	}
	var rec struct {
		Accepted bool `json:"accepted"`
	}
	if err := json.Unmarshal([]byte(body), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Accepted {
		t.Error("hot device's verdict says accepted, want rejected")
	}
	if code, _ := get(t, base+"/v1/devices/no-such-device"); code != http.StatusNotFound {
		t.Errorf("GET unknown device = %d, want 404", code)
	}

	// Bins settle after the debounced recompute covers the population.
	deadline := time.Now().Add(10 * time.Second)
	var mb struct {
		Models []struct {
			Model    string `json:"model"`
			Accepted int    `json:"accepted"`
			BinCount int    `json:"bin_count"`
		} `json:"models"`
	}
	for {
		code, body := get(t, base+"/v1/bins?model=Nexus+5")
		if code != http.StatusOK {
			if time.Now().After(deadline) {
				t.Fatalf("GET /v1/bins?model= = %d", code)
			}
			time.Sleep(5 * time.Millisecond)
			continue
		}
		if err := json.Unmarshal([]byte(body), &mb); err != nil {
			t.Fatal(err)
		}
		if len(mb.Models) == 1 && mb.Models[0].Accepted == int(accepted) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bins never settled: %+v", mb)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if mb.Models[0].BinCount < 2 {
		t.Errorf("two well-separated score groups binned into %d cluster(s)", mb.Models[0].BinCount)
	}
	// The unfiltered listing carries the model too.
	if code, body := get(t, base+"/v1/bins"); code != http.StatusOK || !strings.Contains(body, "Nexus 5") {
		t.Errorf("GET /v1/bins = %d %q", code, body)
	}
	if code, _ := get(t, base+"/v1/bins?model=NoSuchPhone"); code != http.StatusNotFound {
		t.Errorf("GET bins for unknown model = %d, want 404", code)
	}

	// Graceful drain: the daemon exits nil and accounts for every upload.
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	logs := out.String()
	if !strings.Contains(logs, "drained") {
		t.Errorf("shutdown log does not report the drain:\n%s", logs)
	}
	wantLine := fmt.Sprintf("received %d, stored %d (accepted %d, rejected 1), decode errors %d",
		wantStored+uint64(len(testkit.MalformedPayloads())), wantStored, accepted, len(testkit.MalformedPayloads()))
	if !strings.Contains(logs, wantLine) {
		t.Errorf("drain accounting line mismatch:\nwant substring: %s\ngot logs:\n%s", wantLine, logs)
	}
}

// TestDaemonTraceFlag boots the daemon with -trace and asserts one JSON
// span chain per accepted submission lands on stdout, interleaved with
// (but distinguishable from) the ordinary log lines.
func TestDaemonTraceFlag(t *testing.T) {
	dir := t.TempDir()
	base, out, shutdown := startDaemon(t, "-trace", "-data-dir", dir, "-fsync-interval", "0")
	policy := crowd.DefaultPolicy()
	raw := testkit.AcceptedPayload(t, policy, "trace-dev", 1200, 25)
	if code, body := post(t, base+"/v1/submissions", raw); code != http.StatusAccepted {
		t.Fatalf("POST = %d %q", code, body)
	}
	waitForCounter(t, base, "crowdd_stored_total", 1)
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	type span struct {
		Trace  string `json:"trace"`
		Span   string `json:"span"`
		Device string `json:"device"`
		Seq    uint64 `json:"seq"`
	}
	var spans []span
	for _, line := range strings.Split(out.String(), "\n") {
		if !strings.HasPrefix(line, "{") {
			continue // daemon log line, not a span
		}
		var s span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("span line %q is not JSON: %v", line, err)
		}
		spans = append(spans, s)
	}
	want := []string{"decode", "filter", "wal_append", "store"}
	if len(spans) != len(want) {
		t.Fatalf("-trace emitted %d spans for one submission, want %d:\n%s", len(spans), len(want), out.String())
	}
	for i, s := range spans {
		if s.Span != want[i] || s.Trace != spans[0].Trace || s.Device != "trace-dev" {
			t.Errorf("span %d = %+v, want stage %q on trace %q for trace-dev", i, s, want[i], spans[0].Trace)
		}
	}
	if spans[2].Seq == 0 || spans[3].Seq == 0 {
		t.Errorf("commit-side spans carry no sequence number: %+v", spans[2:])
	}
}

// TestDaemonDebugAddr boots the daemon with -debug-addr and asserts the
// pprof surface answers on its own listener, not on the API address.
func TestDaemonDebugAddr(t *testing.T) {
	base, out, shutdown := startDaemon(t, "-debug-addr", "127.0.0.1:0")
	logs := out.String()
	_, rest, ok := strings.Cut(logs, "crowdd: pprof on ")
	if !ok {
		t.Fatalf("no pprof line in boot log:\n%s", logs)
	}
	debugBase := strings.TrimSuffix(strings.TrimSpace(strings.SplitN(rest, "\n", 2)[0]), "/debug/pprof")
	if code, body := get(t, debugBase+"/debug/pprof/cmdline"); code != http.StatusOK || body == "" {
		t.Errorf("GET pprof cmdline = %d %q", code, body)
	}
	if code, body := get(t, debugBase+"/debug/pprof/"); code != http.StatusOK || !strings.Contains(body, "goroutine") {
		t.Errorf("GET pprof index = %d, want the profile listing", code)
	}
	// The public API listener must NOT serve the debug surface.
	if code, _ := get(t, base+"/debug/pprof/"); code == http.StatusOK {
		t.Error("API listener serves /debug/pprof — the debug surface leaked onto the public address")
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
}

// TestDaemonFlagErrors locks the startup validation: bad flags, stray
// arguments, an inverted acceptance window, and an unbindable address
// all fail fast instead of half-starting.
func TestDaemonFlagErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-no-such-flag"}},
		{"stray args", []string{"stray"}},
		{"inverted window", []string{"-accept-lo", "30", "-accept-hi", "20"}},
		{"bad addr", []string{"-addr", "256.256.256.256:99999"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var out bytes.Buffer
			ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
			defer cancel()
			if err := run(ctx, tc.args, &out, nil); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}

// TestDaemonDurableRestart runs the daemon's full persistence lifecycle
// through the signal path: boot with -data-dir, submit, drain gracefully
// (which must cut a covering snapshot), boot a second daemon on the same
// directory, and assert the corpus survived — zero replay, intact
// verdicts, and a recovery line on stdout — then keep submitting.
func TestDaemonDurableRestart(t *testing.T) {
	dir := t.TempDir()
	policy := crowd.DefaultPolicy()

	base, out, shutdown := startDaemon(t, "-data-dir", dir, "-fsync-interval", "0")
	const n = 6
	for i := 0; i < n; i++ {
		raw := testkit.AcceptedPayload(t, policy, fmt.Sprintf("dur-%02d", i), 1200+float64(i), 24)
		if code, body := post(t, base+"/v1/submissions", raw); code != http.StatusAccepted {
			t.Fatalf("POST %d = %d %q", i, code, body)
		}
	}
	m := waitForCounter(t, base, "crowdd_stored_total", n)
	if m["crowdd_wal_appended_total"] != n {
		t.Fatalf("wal appended %d, want %d", m["crowdd_wal_appended_total"], n)
	}
	if err := shutdown(); err != nil {
		t.Fatalf("shutdown: %v", err)
	}
	logs := out.String()
	if !strings.Contains(logs, "crowdd: persisted; wal 6 appends") {
		t.Errorf("shutdown log does not account for the WAL:\n%s", logs)
	}
	if !strings.Contains(logs, "final snapshot seq 6") {
		t.Errorf("graceful drain did not report the covering snapshot:\n%s", logs)
	}

	// Second life on the same directory.
	base2, out2, shutdown2 := startDaemon(t, "-data-dir", dir, "-fsync-interval", "0")
	if !strings.Contains(out2.String(), fmt.Sprintf("restored %d records (snapshot seq %d holding %d, wal replayed 0", n, n, n)) {
		t.Errorf("boot log does not narrate snapshot-only recovery:\n%s", out2.String())
	}
	if code, body := get(t, base2+"/healthz"); code != http.StatusOK ||
		!strings.Contains(body, "persistence: "+dir) ||
		!strings.Contains(body, fmt.Sprintf("recovery: restored %d records", n)) {
		t.Fatalf("GET /healthz after restart = %d %q", code, body)
	}
	m = metrics(t, base2)
	if m["crowdd_store_records"] != n || m["crowdd_wal_restored_records"] != n || m["crowdd_wal_replayed_total"] != 0 {
		t.Fatalf("restart metrics = store %d, restored %d, replayed %d; want %d, %d, 0",
			m["crowdd_store_records"], m["crowdd_wal_restored_records"], m["crowdd_wal_replayed_total"], n, n)
	}
	testkit.CheckMetricsFlow(t, m)
	// Verdicts survived the restart.
	code, body := get(t, base2+"/v1/devices/dur-03")
	if code != http.StatusOK || !strings.Contains(body, `"accepted":true`) {
		t.Fatalf("GET restored device = %d %q", code, body)
	}
	// And the daemon keeps committing past the restored tail.
	raw := testkit.AcceptedPayload(t, policy, "dur-late", 1300, 25)
	if code, body := post(t, base2+"/v1/submissions", raw); code != http.StatusAccepted {
		t.Fatalf("POST after restart = %d %q", code, body)
	}
	waitForCounter(t, base2, "crowdd_stored_total", 1)
	if err := shutdown2(); err != nil {
		t.Fatalf("second shutdown: %v", err)
	}
}
