// Command crowdd serves the crowd-benchmarking backend of the paper's §VI
// plan: the service behind the Play-Store app. It accepts ACCUBENCH
// submissions over HTTP, estimates each upload's ambient from its cooldown
// trace, applies the strict filters, and continuously re-bins each model's
// accepted population in the background.
//
//	crowdd -addr :8077
//	crowdd -addr :8077 -shards 32 -workers 8 -queue 512 -accept-lo 18 -accept-hi 32
//	crowdd -addr :8077 -data-dir /var/lib/crowdd
//
// With -data-dir the submission corpus is durable: uploads commit through
// a segmented write-ahead log (group-committed fsyncs every
// -fsync-interval; 0 means every commit fsyncs synchronously), a
// background snapshotter checkpoints the store every -snapshot-every
// commits, and a restart — or a crash — recovers the full store before
// serving. A graceful SIGTERM drains the ingest pipeline, flushes the
// log and cuts a final snapshot, so the next boot replays nothing.
//
// With -node-id and -peers the process joins a replicated, sharded
// cluster (docs/CLUSTER.md): submissions are HLC-stamped, routed to
// their model's shard primary, acknowledged only after a durable local
// commit plus one replica acknowledgement, and kept converged by a
// periodic anti-entropy digest exchange; -max-staleness bounds how old
// a served bins entry may be.
//
// Endpoints: POST /v1/submissions, POST /v1/stream (binary streaming
// batch ingest, docs/WIRE.md), GET /v1/bins, GET /v1/devices/{id},
// GET /healthz, GET /metrics (Prometheus text format; docs/METRICS.md
// is the reference for every series). Cluster nodes add
// POST+GET /v1/replicate and GET /v1/digest for their peers.
//
// Observability: -trace emits one JSON span sequence per submission
// (decode→filter→wal_append→store, correlated by trace ID) to stdout,
// and -debug-addr serves net/http/pprof under /debug/pprof on a
// separate listener (`make profile` captures a CPU profile under
// crowdload).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/server"
	"accubench/internal/units"
	"accubench/internal/wal"
)

func main() {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	if err := run(ctx, os.Args[1:], os.Stdout, nil); err != nil {
		fmt.Fprintln(os.Stderr, "crowdd:", err)
		os.Exit(1)
	}
}

// run is the whole daemon behind a testable seam: flags come from args
// rather than the global FlagSet, the listener binds before it reports
// ready (so tests can pass 127.0.0.1:0 and learn the port via ready), and
// shutdown is driven by ctx rather than process signals.
func run(ctx context.Context, args []string, stdout io.Writer, ready func(addr string)) error {
	policy := crowd.DefaultPolicy()
	fs := flag.NewFlagSet("crowdd", flag.ContinueOnError)
	var (
		addr          = fs.String("addr", ":8077", "listen address")
		shards        = fs.Int("shards", 16, "store shard count")
		workers       = fs.Int("workers", 4, "ingest workers per pipeline stage")
		queue         = fs.Int("queue", 256, "ingest queue depth per stage")
		acceptLo      = fs.Float64("accept-lo", float64(policy.AcceptLo), "lowest accepted estimated ambient, °C")
		acceptHi      = fs.Float64("accept-hi", float64(policy.AcceptHi), "highest accepted estimated ambient, °C")
		idleBias      = fs.Float64("idle-bias", policy.IdleBias, "idle-floor correction subtracted from estimates, °C")
		debounce      = fs.Duration("bin-debounce", 150*time.Millisecond, "binning loop quiet period (exact mode)")
		maxK          = fs.Int("max-bins", 5, "largest bin count the clustering may discover")
		binMode       = fs.String("bin-mode", server.BinModeExact, "bin serving path: exact (debounced full recompute) or sketch (streaming sketch fold, docs/BINNING.md)")
		submitTimeout = fs.Duration("submit-timeout", 2*time.Second, "how long a saturated POST may block before 503")
		maxBody       = fs.Int64("max-body", 1<<20, "largest accepted upload body, bytes")
		dataDir       = fs.String("data-dir", "", "durable data directory (WAL + snapshots); empty runs in-memory")
		fsyncEvery    = fs.Duration("fsync-interval", wal.DefaultFlushEvery, "WAL group-commit window; 0 fsyncs every commit synchronously")
		snapEvery     = fs.Int("snapshot-every", wal.DefaultSnapshotEvery, "commits between background snapshots")
		segmentBytes  = fs.Int64("segment-bytes", wal.DefaultSegmentBytes, "WAL segment rotation threshold, bytes")
		chaosFsync    = fs.Duration("chaos-fsync-delay", 0, "fault injection: stall every WAL fsync this long (slow-disk emulation; needs -data-dir)")
		traceSpans    = fs.Bool("trace", false, "emit one JSON span per pipeline stage per submission to stdout")
		debugAddr     = fs.String("debug-addr", "", "serve net/http/pprof under /debug/pprof on this address; empty disables")

		// Cluster mode (docs/CLUSTER.md): set -node-id and -peers to run
		// this process as one member of a replicated, sharded cluster.
		nodeID       = fs.String("node-id", "", "cluster node ID; empty runs standalone")
		peers        = fs.String("peers", "", "comma-separated id=url peer list, e.g. n2=http://127.0.0.1:8078,n3=http://127.0.0.1:8079")
		replicas     = fs.Int("replicas", 0, "replica-set size per model, primary included; 0 replicates everywhere")
		maxStaleness = fs.Duration("max-staleness", 0, "bound on how old a served GET /v1/bins entry may be; 0 disables")
		routeMode    = fs.String("route-mode", server.RouteProxy, "non-primary submission handling: proxy or redirect")
		reconcile    = fs.Duration("reconcile-interval", time.Second, "anti-entropy digest-exchange cadence")
		ackTimeout   = fs.Duration("ack-timeout", 3*time.Second, "how long a submission waits for one replica acknowledgement")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	policy.AcceptLo = units.Celsius(*acceptLo)
	policy.AcceptHi = units.Celsius(*acceptHi)
	policy.IdleBias = *idleBias
	if err := policy.Validate(); err != nil {
		return err
	}

	scfg := server.Config{
		Shards:        *shards,
		Workers:       *workers,
		QueueDepth:    *queue,
		Policy:        policy,
		MaxK:          *maxK,
		BinMode:       *binMode,
		BinDebounce:   *debounce,
		SubmitTimeout: *submitTimeout,
		MaxBodyBytes:  *maxBody,
		DataDir:       *dataDir,
		FsyncEvery:    *fsyncEvery,
		SnapshotEvery: *snapEvery,
		SegmentBytes:  *segmentBytes,
	}
	if *chaosFsync > 0 {
		d := *chaosFsync
		scfg.FsyncDelay = func() { time.Sleep(d) }
		fmt.Fprintf(stdout, "crowdd: chaos: every WAL fsync stalls %v\n", d)
	}
	if *traceSpans {
		scfg.TraceWriter = stdout
	}
	if *nodeID != "" {
		peerMap, err := parsePeers(*peers)
		if err != nil {
			return err
		}
		if *routeMode != server.RouteProxy && *routeMode != server.RouteRedirect {
			return fmt.Errorf("-route-mode must be %q or %q", server.RouteProxy, server.RouteRedirect)
		}
		scfg.Cluster = &server.ClusterConfig{
			NodeID:            *nodeID,
			Peers:             peerMap,
			Replicas:          *replicas,
			RouteMode:         *routeMode,
			AckTimeout:        *ackTimeout,
			ReconcileInterval: *reconcile,
			MaxStaleness:      *maxStaleness,
		}
	} else if *peers != "" {
		return fmt.Errorf("-peers needs -node-id")
	}
	srv, err := server.New(scfg)
	if err != nil {
		return err
	}
	if rec, ok := srv.Recovery(); ok {
		fmt.Fprintf(stdout, "crowdd: data dir %s — restored %d records (snapshot seq %d holding %d, wal replayed %d, truncated %d torn bytes)\n",
			*dataDir, rec.Restored, rec.SnapshotSeq, rec.SnapshotRecords, rec.Replayed, rec.TruncatedBytes)
	}
	srv.Start(context.Background()) // graceful drain on shutdown, not hard abort

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	// The profiling surface lives on its own listener so /debug/pprof is
	// never reachable through the public API address.
	var debugSrv *http.Server
	if *debugAddr != "" {
		dln, err := net.Listen("tcp", *debugAddr)
		if err != nil {
			httpSrv.Close()
			srv.Close()
			return fmt.Errorf("debug listener: %w", err)
		}
		dmux := http.NewServeMux()
		dmux.HandleFunc("/debug/pprof/", pprof.Index)
		dmux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dmux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dmux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dmux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		debugSrv = &http.Server{Handler: dmux}
		go debugSrv.Serve(dln)
		fmt.Fprintf(stdout, "crowdd: pprof on http://%s/debug/pprof\n", dln.Addr())
	}
	fmt.Fprintf(stdout, "crowdd: listening on %s (%d shards, %d workers/stage, queue %d, window [%v, %v], %s bins)\n",
		ln.Addr(), *shards, *workers, *queue, policy.AcceptLo, policy.AcceptHi, *binMode)
	if scfg.Cluster != nil {
		fmt.Fprintf(stdout, "crowdd: cluster node %s with %d peers (%s routing, reconcile every %v, bins staleness bound %v)\n",
			scfg.Cluster.NodeID, len(scfg.Cluster.Peers), scfg.Cluster.RouteMode, *reconcile, *maxStaleness)
	}
	if ready != nil {
		ready(ln.Addr().String())
	}

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Fprintln(stdout, "crowdd: shutting down — draining ingest")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if debugSrv != nil {
		debugSrv.Close()
	}
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	// Close drains the pipeline first, then flushes the WAL and cuts the
	// final snapshot — a clean exit never needs replay on the next boot.
	if err := srv.Close(); err != nil {
		return fmt.Errorf("shutdown persistence: %w", err)
	}
	c := srv.Counters()
	fmt.Fprintf(stdout, "crowdd: drained; received %d, stored %d (accepted %d, rejected %d), decode errors %d\n",
		c.Received, c.Stored, c.Accepted, c.Rejected, c.DecodeErrors)
	if pc, ok := srv.PersistCounters(); ok {
		fmt.Fprintf(stdout, "crowdd: persisted; wal %d appends in %d fsyncs (%d bytes, %d segments), final snapshot seq %d\n",
			pc.Log.Appends, pc.Log.Fsyncs, pc.Log.Bytes, pc.Log.Segments, pc.LastSnapshotSeq)
	}
	return nil
}

// parsePeers parses the -peers flag: comma-separated id=url pairs.
func parsePeers(s string) (map[string]string, error) {
	out := make(map[string]string)
	if s == "" {
		return out, nil
	}
	for _, pair := range strings.Split(s, ",") {
		id, u, ok := strings.Cut(strings.TrimSpace(pair), "=")
		if !ok || id == "" || u == "" {
			return nil, fmt.Errorf("malformed -peers entry %q, want id=url", pair)
		}
		if _, dup := out[id]; dup {
			return nil, fmt.Errorf("duplicate peer ID %q in -peers", id)
		}
		out[id] = strings.TrimRight(u, "/")
	}
	return out, nil
}
