// Command crowdd serves the crowd-benchmarking backend of the paper's §VI
// plan: the service behind the Play-Store app. It accepts ACCUBENCH
// submissions over HTTP, estimates each upload's ambient from its cooldown
// trace, applies the strict filters, and continuously re-bins each model's
// accepted population in the background.
//
//	crowdd -addr :8077
//	crowdd -addr :8077 -shards 32 -workers 8 -queue 512 -accept-lo 18 -accept-hi 32
//
// Endpoints: POST /v1/submissions, GET /v1/bins, GET /v1/devices/{id},
// GET /healthz, GET /metrics.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/server"
	"accubench/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "crowdd:", err)
		os.Exit(1)
	}
}

func run() error {
	policy := crowd.DefaultPolicy()
	var (
		addr     = flag.String("addr", ":8077", "listen address")
		shards   = flag.Int("shards", 16, "store shard count")
		workers  = flag.Int("workers", 4, "ingest workers per pipeline stage")
		queue    = flag.Int("queue", 256, "ingest queue depth per stage")
		acceptLo = flag.Float64("accept-lo", float64(policy.AcceptLo), "lowest accepted estimated ambient, °C")
		acceptHi = flag.Float64("accept-hi", float64(policy.AcceptHi), "highest accepted estimated ambient, °C")
		idleBias = flag.Float64("idle-bias", policy.IdleBias, "idle-floor correction subtracted from estimates, °C")
		debounce = flag.Duration("bin-debounce", 150*time.Millisecond, "binning loop quiet period")
		maxK     = flag.Int("max-bins", 5, "largest bin count the clustering may discover")
	)
	flag.Parse()
	policy.AcceptLo = units.Celsius(*acceptLo)
	policy.AcceptHi = units.Celsius(*acceptHi)
	policy.IdleBias = *idleBias

	srv, err := server.New(server.Config{
		Shards:      *shards,
		Workers:     *workers,
		QueueDepth:  *queue,
		Policy:      policy,
		MaxK:        *maxK,
		BinDebounce: *debounce,
	})
	if err != nil {
		return err
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	srv.Start(context.Background()) // graceful drain on shutdown, not hard abort

	httpSrv := &http.Server{Addr: *addr, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.ListenAndServe() }()
	fmt.Printf("crowdd: listening on %s (%d shards, %d workers/stage, queue %d, window [%v, %v])\n",
		*addr, *shards, *workers, *queue, policy.AcceptLo, policy.AcceptHi)

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}

	fmt.Println("crowdd: shutting down — draining ingest")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := httpSrv.Shutdown(shutCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	srv.Close()
	c := srv.Counters()
	fmt.Printf("crowdd: drained; received %d, stored %d (accepted %d, rejected %d), decode errors %d\n",
		c.Received, c.Stored, c.Accepted, c.Rejected, c.DecodeErrors)
	return nil
}
