// Command thermabox runs the simulated thermal chamber standalone and
// reports regulation quality — useful for exploring controller settings
// before trusting a benchmark run to them.
//
//	thermabox -target 26 -minutes 30
//	thermabox -target 35 -room 22 -load 8
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"accubench/internal/report"
	"accubench/internal/stats"
	"accubench/internal/thermabox"
	"accubench/internal/units"
)

func main() {
	var (
		target  = flag.Float64("target", 26, "setpoint in °C")
		room    = flag.Float64("room", 22, "room temperature outside the chamber in °C")
		minutes = flag.Int("minutes", 30, "regulation horizon after stabilization")
		load    = flag.Float64("load", 8, "device heat during bursts, watts")
		seed    = flag.Int64("seed", 1, "random seed")
	)
	flag.Parse()
	if err := run(*target, *room, *minutes, *load, *seed); err != nil {
		fmt.Fprintln(os.Stderr, "thermabox:", err)
		os.Exit(1)
	}
}

func run(target, room float64, minutes int, load float64, seed int64) error {
	cfg := thermabox.DefaultConfig()
	cfg.Target = units.Celsius(target)
	cfg.Room = units.Celsius(room)
	cfg.Seed = seed
	box, err := thermabox.New(cfg)
	if err != nil {
		return err
	}

	took, ok := box.Stabilize(30*time.Second, time.Hour, time.Second)
	if !ok {
		return fmt.Errorf("failed to stabilize at %v from a %v room (air %v)", cfg.Target, cfg.Room, box.Air())
	}
	fmt.Printf("stabilized at %v in %v (room %v)\n", cfg.Target, took.Truncate(time.Second), cfg.Room)

	var vals []float64
	heaterSecs, coolerSecs := 0, 0
	horizon := time.Duration(minutes) * time.Minute
	for t := time.Duration(0); t < horizon; t += time.Second {
		w := units.Watts(0.3)
		if (int(t.Seconds())/180)%2 == 0 {
			w = units.Watts(load)
		}
		box.Step(time.Second, w)
		vals = append(vals, float64(box.Air()))
		if box.HeaterOn() {
			heaterSecs++
		}
		if box.CompressorOn() {
			coolerSecs++
		}
	}
	sum, err := stats.Summarize(vals)
	if err != nil {
		return err
	}
	fmt.Printf("over %v with %0.1fW duty-cycled device load:\n", horizon, load)
	fmt.Printf("  air  mean %.2f°C  range [%.2f, %.2f]  RSD %.3f%%\n", sum.Mean, sum.Min, sum.Max, sum.RSD)
	fmt.Printf("  duty heater %.0f%%  compressor %.0f%%\n",
		float64(heaterSecs)/horizon.Seconds()*100, float64(coolerSecs)/horizon.Seconds()*100)
	band := 0.5
	if sum.Min >= target-band && sum.Max <= target+band {
		fmt.Printf("  within the paper's ±%.1f°C band\n", band)
	} else {
		fmt.Printf("  OUTSIDE the paper's ±%.1f°C band\n", band)
	}
	air, _ := box.Trace().Lookup("air")
	fmt.Printf("  trace %s\n", report.Sparkline(air.Downsample(100)))
	return nil
}
