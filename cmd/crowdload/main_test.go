package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/server"
	"accubench/internal/soc"
)

// TestLoadAgainstRealBackend runs the full load generator — simulated
// fleet, concurrent uploads, drain wait, bin report — against a real
// backend over HTTP, and asserts its own zero-drop guarantee held.
func TestLoadAgainstRealBackend(t *testing.T) {
	srv, err := server.New(server.Config{BinDebounce: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	err = run([]string{
		"-addr", ts.URL,
		"-devices", "6",
		"-concurrency", "3",
		"-seed", "5",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("crowdload failed: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "uploaded 6 submissions") {
		t.Errorf("output does not report 6 uploads:\n%s", out)
	}
	if !strings.Contains(out, "zero dropped submissions") {
		t.Errorf("output does not confirm zero drops:\n%s", out)
	}
	if c := srv.Counters(); c.Stored != 6 {
		t.Errorf("server stored %d, want 6", c.Stored)
	}

	// A second run hits a warm server: accounting must be a delta against
	// the pre-existing records, not absolute counters.
	stdout.Reset()
	stderr.Reset()
	err = run([]string{
		"-addr", ts.URL,
		"-devices", "4",
		"-concurrency", "2",
		"-seed", "9",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("crowdload against warm server failed: %v\nstderr:\n%s", err, stderr.String())
	}
	out = stdout.String()
	if !strings.Contains(out, "uploaded 4 submissions") {
		t.Errorf("warm run does not report 4 uploads:\n%s", out)
	}
	if !strings.Contains(out, "zero dropped submissions") {
		t.Errorf("warm run does not confirm zero drops:\n%s", out)
	}
	if c := srv.Counters(); c.Stored != 10 {
		t.Errorf("server stored %d after both runs, want 10", c.Stored)
	}
}

// TestDryRunFleet runs the fleet source without any server: the
// population study must come out deterministic (same fingerprint for the
// same seed and mix, whatever the worker count).
func TestDryRunFleet(t *testing.T) {
	fingerprint := func(workers string) (string, string) {
		var stdout, stderr bytes.Buffer
		err := run([]string{
			"-dry-run",
			"-fleet", "8",
			"-seed", "3",
			"-fleet-mix", "Nexus 5=1,Google Pixel=1",
			"-fleet-workers", workers,
		}, &stdout, &stderr)
		if err != nil {
			t.Fatalf("dry run failed: %v\nstderr:\n%s", err, stderr.String())
		}
		out := stdout.String()
		for _, want := range []string{"dry run", "Nexus 5:", "Google Pixel:", "bin-", "fleet fingerprint:"} {
			if !strings.Contains(out, want) {
				t.Fatalf("dry-run output lacks %q:\n%s", want, out)
			}
		}
		fp := out[strings.Index(out, "fleet fingerprint:"):]
		return strings.Fields(fp)[2], out
	}
	fp1, _ := fingerprint("1")
	fp4, out := fingerprint("4")
	if fp1 != fp4 {
		t.Errorf("fingerprint changed with worker count: %s vs %s\n%s", fp1, fp4, out)
	}
}

// TestParseMix locks the cohort apportionment.
func TestParseMix(t *testing.T) {
	n5, err := soc.ModelByName("Nexus 5")
	if err != nil {
		t.Fatal(err)
	}
	specs, err := parseMix("Nexus 5=3,Google Pixel=1", n5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 {
		t.Fatalf("got %d cohorts, want 2", len(specs))
	}
	if specs[0].Devices+specs[1].Devices != 10 {
		t.Errorf("apportionment lost devices: %d + %d != 10", specs[0].Devices, specs[1].Devices)
	}
	if specs[0].Devices != 8 || specs[1].Devices != 2 {
		t.Errorf("3:1 split of 10 gave %d:%d, want 8:2", specs[0].Devices, specs[1].Devices)
	}
	// A tiny population must still give every cohort a device.
	specs, err = parseMix("Nexus 5=100,Google Pixel=1", n5, 2)
	if err != nil {
		t.Fatal(err)
	}
	if specs[0].Devices != 1 || specs[1].Devices != 1 {
		t.Errorf("minimum-one rule broken: %d:%d", specs[0].Devices, specs[1].Devices)
	}
}

// TestPlausible locks the client-side upload gate: a lottery-tail
// thermal-runaway trace (readings past the ingest validator's 150 °C
// ceiling) is withheld, a sane trace passes.
func TestPlausible(t *testing.T) {
	sane := uploadItem{
		device: "fleet-0000001",
		model:  "Nexus 5",
		score:  300,
		cooldown: []accubench.CooldownSample{
			{At: 5 * time.Second, Reading: 41.25},
			{At: 10 * time.Second, Reading: 38.5},
		},
	}
	if err := plausible(sane); err != nil {
		t.Errorf("sane trace rejected: %v", err)
	}
	runaway := sane
	runaway.cooldown = []accubench.CooldownSample{
		{At: 5 * time.Second, Reading: 412.5},
		{At: 10 * time.Second, Reading: 380},
	}
	if err := plausible(runaway); err == nil {
		t.Error("runaway trace (412 °C reading) passed the plausibility gate")
	}
}

// TestLoadFlagErrors locks the generator's input validation.
func TestLoadFlagErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-no-such-flag"}},
		{"stray args", []string{"stray"}},
		{"zero devices", []string{"-devices", "0"}},
		{"negative concurrency", []string{"-concurrency", "-1"}},
		{"unknown model", []string{"-model", "NoSuchPhone", "-devices", "1"}},
		{"unknown source", []string{"-source", "magic", "-devices", "1"}},
		{"negative fleet", []string{"-fleet", "-5"}},
		{"mix with device source", []string{"-source", "device", "-fleet-mix", "Nexus 5=1", "-devices", "1"}},
		{"dry-run with device source", []string{"-source", "device", "-dry-run", "-devices", "1"}},
		{"dry-run with peers", []string{"-dry-run", "-peers", "http://x", "-devices", "1"}},
		{"bad mix weight", []string{"-dry-run", "-fleet-mix", "Nexus 5=zero", "-devices", "1"}},
		{"mix larger than fleet", []string{"-dry-run", "-fleet-mix", "Nexus 5=1,Google Pixel=1", "-devices", "1"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(tc.args, &stdout, &stderr); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}
