package main

import (
	"bytes"
	"context"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"accubench/internal/server"
)

// TestLoadAgainstRealBackend runs the full load generator — simulated
// fleet, concurrent uploads, drain wait, bin report — against a real
// backend over HTTP, and asserts its own zero-drop guarantee held.
func TestLoadAgainstRealBackend(t *testing.T) {
	srv, err := server.New(server.Config{BinDebounce: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var stdout, stderr bytes.Buffer
	err = run([]string{
		"-addr", ts.URL,
		"-devices", "6",
		"-concurrency", "3",
		"-seed", "5",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("crowdload failed: %v\nstderr:\n%s", err, stderr.String())
	}
	out := stdout.String()
	if !strings.Contains(out, "uploaded 6 submissions") {
		t.Errorf("output does not report 6 uploads:\n%s", out)
	}
	if !strings.Contains(out, "zero dropped submissions") {
		t.Errorf("output does not confirm zero drops:\n%s", out)
	}
	if c := srv.Counters(); c.Stored != 6 {
		t.Errorf("server stored %d, want 6", c.Stored)
	}

	// A second run hits a warm server: accounting must be a delta against
	// the pre-existing records, not absolute counters.
	stdout.Reset()
	stderr.Reset()
	err = run([]string{
		"-addr", ts.URL,
		"-devices", "4",
		"-concurrency", "2",
		"-seed", "9",
	}, &stdout, &stderr)
	if err != nil {
		t.Fatalf("crowdload against warm server failed: %v\nstderr:\n%s", err, stderr.String())
	}
	out = stdout.String()
	if !strings.Contains(out, "uploaded 4 submissions") {
		t.Errorf("warm run does not report 4 uploads:\n%s", out)
	}
	if !strings.Contains(out, "zero dropped submissions") {
		t.Errorf("warm run does not confirm zero drops:\n%s", out)
	}
	if c := srv.Counters(); c.Stored != 10 {
		t.Errorf("server stored %d after both runs, want 10", c.Stored)
	}
}

// TestLoadFlagErrors locks the generator's input validation.
func TestLoadFlagErrors(t *testing.T) {
	for _, tc := range []struct {
		name string
		args []string
	}{
		{"unknown flag", []string{"-no-such-flag"}},
		{"stray args", []string{"stray"}},
		{"zero devices", []string{"-devices", "0"}},
		{"negative concurrency", []string{"-concurrency", "-1"}},
		{"unknown model", []string{"-model", "NoSuchPhone", "-devices", "1"}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			var stdout, stderr bytes.Buffer
			if err := run(tc.args, &stdout, &stderr); err == nil {
				t.Errorf("run(%v) succeeded, want error", tc.args)
			}
		})
	}
}
