package main

import (
	"fmt"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"accubench/internal/wire"
)

// wireWorkerConfig carries one binary-transport worker's shared state:
// the tuned client, the node list (home is this worker's starting
// node), and the run-wide accounting sinks the JSON path also feeds.
type wireWorkerConfig struct {
	client     *http.Client
	nodes      []string
	home       int
	batch      int
	retries    int
	stderr     io.Writer
	sent       *atomic.Uint64
	retried    *atomic.Uint64
	failed     *atomic.Uint64
	postNanos  *atomic.Int64
	ackedMu    *sync.Mutex
	acked      *[]string
	ackLatency *[]float64
}

// wireWorker drains finished benchmarks from the feed, accumulates them
// into batch frames and ships them over one persistent wire stream to
// the worker's home node — a window of one batch in flight, so the
// server's ack pace is the flow control. A stream error or an erroring
// ack closes the stream, fails over to the next node, and retries the
// whole batch: retries are dup-safe (the cluster stamps resubmissions
// fresh and keeps the newest per device), and an acked batch is durable,
// so nothing acknowledged is ever resent.
func wireWorker(cfg wireWorkerConfig, feed func(yield func(uploadItem))) {
	var st *wire.Stream
	defer func() {
		if st != nil {
			st.Close()
		}
	}()
	batch := make([]wire.Submission, 0, cfg.batch)
	devs := make([]string, 0, cfg.batch)

	flush := func() {
		if len(batch) == 0 {
			return
		}
		t0 := time.Now()
		for attempt := 0; ; attempt++ {
			if attempt > 0 {
				cfg.retried.Add(1)
				time.Sleep(time.Duration(attempt) * 20 * time.Millisecond)
			}
			if attempt > cfg.retries {
				fmt.Fprintf(cfg.stderr, "crowdload: batch of %d gave up after %d attempts\n", len(batch), attempt)
				cfg.failed.Add(uint64(len(batch)))
				break
			}
			if st == nil {
				var err error
				st, err = wire.OpenStream(cfg.client, cfg.nodes[cfg.home], nil)
				if err != nil {
					cfg.home = (cfg.home + 1) % len(cfg.nodes)
					continue
				}
			}
			ack, err := st.Do(batch)
			if err != nil {
				// The stream is unusable past any error — reopen, on the
				// next node if there is one.
				st.Close()
				st = nil
				cfg.home = (cfg.home + 1) % len(cfg.nodes)
				continue
			}
			if ack.Err != "" {
				// An erroring ack (unreplicated, commit failure) leaves
				// the batch uncommitted from the client's view: retry it
				// whole.
				continue
			}
			if int(ack.Committed)+int(ack.Dropped) != len(batch) {
				continue
			}
			if ack.Dropped > 0 {
				// With a clean Err, dropped submissions were rejected as
				// invalid — a retry can never fix them, so the batch is
				// settled; count them failed rather than retrying forever.
				fmt.Fprintf(cfg.stderr, "crowdload: server dropped %d invalid submissions from a batch of %d\n", ack.Dropped, len(batch))
				cfg.failed.Add(uint64(ack.Dropped))
			}
			latency := time.Since(t0)
			cfg.postNanos.Add(latency.Nanoseconds())
			cfg.sent.Add(uint64(len(batch)))
			cfg.ackedMu.Lock()
			*cfg.acked = append(*cfg.acked, devs...)
			*cfg.ackLatency = append(*cfg.ackLatency, float64(latency.Nanoseconds())/1e6)
			cfg.ackedMu.Unlock()
			break
		}
		batch = batch[:0]
		devs = devs[:0]
	}

	feed(func(it uploadItem) {
		ws := wire.Submission{
			Device:   it.device,
			Model:    it.model,
			Score:    it.score,
			Cooldown: make([]wire.Point, len(it.cooldown)),
		}
		for i, p := range it.cooldown {
			ws.Cooldown[i] = wire.Point{AtSeconds: p.At.Seconds(), TempC: float64(p.Reading)}
		}
		batch = append(batch, ws)
		devs = append(devs, it.device)
		if len(batch) >= cfg.batch {
			flush()
		}
	})
	flush()
}
