// Command crowdload load-tests a running crowdd: it simulates a fleet of N
// in-the-wild devices (silicon-lottery draws, each at a random ambient),
// runs ACCUBENCH on every one, and fires the uploads at the server
// concurrently, retrying on backpressure so nothing is dropped. It then
// waits for the server to drain, verifies zero dropped submissions, and
// prints throughput, acceptance-rate and bin stats.
//
// Devices are simulated by the batched fleet engine (internal/fleetsim,
// docs/FLEET.md) by default: -fleet N steps N devices in struct-of-arrays
// form, fast enough that a million-device population runs faster than real
// time on one machine. -fleet-mix spreads the population across handset
// models; -dry-run skips the server entirely and prints the population
// study. -source device falls back to one device.Device per unit — the
// original path, bit-identical to the fleet engine by construction.
//
// Uploads ride the binary wire protocol by default — each worker holds
// one persistent stream to its home node and ships batches of -batch
// submissions per frame, acked per batch (docs/WIRE.md). -transport
// json falls back to one JSON POST per submission, the original path,
// kept for comparison benchmarks and older servers.
//
//	crowdd -addr :8077 &
//	crowdload -addr http://127.0.0.1:8077 -fleet 1000000
//
// Against a cluster (docs/CLUSTER.md), -peers lists the other nodes:
// uploads are sprayed across all of them, and after the run the tool
// verifies the cluster-level contract — converged digests, every
// acknowledged submission present on every live node, bit-identical
// bins — exiting non-zero on any miss, even if a node died mid-run.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"os"
	"reflect"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accubench/internal/chaos"
	"accubench/internal/crowd"
	"accubench/internal/fleet"
	"accubench/internal/fleetsim"
	"accubench/internal/ingest"
	"accubench/internal/obs"
	"accubench/internal/silicon"
	"accubench/internal/sim"
	"accubench/internal/soc"
	"accubench/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "crowdload:", err)
		os.Exit(1)
	}
}

// run is the whole load generator behind a testable seam: flags come
// from args rather than the global FlagSet, and all output lands on the
// given writers.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crowdload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8077", "crowdd base URL")
		devices     = fs.Int("devices", 200, "number of simulated devices")
		modelName   = fs.String("model", "Nexus 5", "device model to simulate")
		concurrency = fs.Int("concurrency", 16, "simulating/uploading workers")
		seed        = fs.Int64("seed", 1, "random seed")
		ambientLo   = fs.Float64("ambient-lo", 12, "lowest wild ambient, °C")
		ambientHi   = fs.Float64("ambient-hi", 38, "highest wild ambient, °C")
		sigma       = fs.Float64("sigma", 0.55, "population leakage log-normal sigma")
		binNoise    = fs.Float64("bin-noise", 0.35, "fab binning-measurement noise")
		retries     = fs.Int("retries", 50, "max retries per upload on backpressure")
		peersFlag   = fs.String("peers", "", "comma-separated additional crowdd base URLs; uploads are sprayed across -addr plus these, and after the run every acknowledged submission is verified present on every node with bit-identical bins")
		scenarioF   = fs.String("scenario", "", "chaos scenario to run the load under (baseline, degraded, partition, high-load); faults are injected client-side into this tool's connections, docs/CLUSTER.md §Fault injection")
		chaosSeed   = fs.Int64("chaos-seed", 1, "seed for the chaos fault plan; the same seed scripts the same faults")
		benchOut    = fs.String("bench-out", "", "JSON file to merge this scenario's submissions/sec + ack p99 + time-to-convergence into (BENCH_7.json shape, compared by scripts/bench_diff.sh)")
		transportF  = fs.String("transport", "binary", "upload transport: binary (persistent streams of batched wire frames, docs/WIRE.md) or json (one POST per submission)")
		batchK      = fs.Int("batch", 64, "submissions per batch frame on the binary transport")
		sourceF     = fs.String("source", "fleet", "device simulator: fleet (batched struct-of-arrays engine, internal/fleetsim) or device (one device.Device per unit)")
		fleetN      = fs.Int("fleet", 0, "shorthand: simulate this many devices on the fleet source (overrides -devices)")
		fleetWork   = fs.Int("fleet-workers", 0, "fleet stepper goroutines (0 = GOMAXPROCS); results are bit-identical at any worker count")
		mixF        = fs.String("fleet-mix", "", `model mix for the fleet source, e.g. "Nexus 5=3,Google Pixel=1" — weights apportion -devices; empty uses -model alone`)
		dryRun      = fs.Bool("dry-run", false, "fleet source only: simulate and print the population study without a server")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *fleetN > 0 {
		*devices = *fleetN
		*sourceF = "fleet"
	} else if *fleetN < 0 {
		return fmt.Errorf("need -fleet > 0")
	}
	if *devices <= 0 {
		return fmt.Errorf("need -devices > 0")
	}
	if *concurrency <= 0 {
		return fmt.Errorf("need -concurrency > 0")
	}
	useFleet := false
	switch *sourceF {
	case "fleet":
		useFleet = true
	case "device":
		if *mixF != "" {
			return fmt.Errorf("-fleet-mix needs -source fleet")
		}
		if *dryRun {
			return fmt.Errorf("-dry-run needs -source fleet")
		}
	default:
		return fmt.Errorf("unknown -source %q (want fleet or device)", *sourceF)
	}
	if *dryRun && (*scenarioF != "" || *peersFlag != "") {
		return fmt.Errorf("-dry-run is simulation-only; drop -scenario/-peers")
	}
	useWire := false
	switch *transportF {
	case "binary":
		useWire = true
	case "json":
	default:
		return fmt.Errorf("unknown -transport %q (want binary or json)", *transportF)
	}
	if useWire && *batchK <= 0 {
		return fmt.Errorf("need -batch > 0")
	}
	model, err := soc.ModelByName(*modelName)
	if err != nil {
		return err
	}
	nodes := []string{strings.TrimRight(*addr, "/")}
	if *peersFlag != "" {
		for _, p := range strings.Split(*peersFlag, ",") {
			if p = strings.TrimRight(strings.TrimSpace(p), "/"); p != "" {
				nodes = append(nodes, p)
			}
		}
	}
	var sc chaos.Scenario
	var plan *chaos.Plan
	if *scenarioF != "" {
		if sc, err = chaos.MustLookup(*scenarioF); err != nil {
			return err
		}
		if sc.Name == "partition" && len(nodes) < 2 {
			return fmt.Errorf("the partition scenario needs -peers: with a single node the client would just be cut off")
		}
		plan = chaos.NewPlan(*chaosSeed)
	}

	// Build the population. Fleet source: cohort specs for the batched
	// engine, with the silicon lottery and wild ambients drawn inside
	// fleetsim.New. Device source: one crowd.WildDevice per unit, the
	// original path.
	var fl *fleetsim.Fleet
	var wild []crowd.WildDevice
	modelNames := []string{model.Name}
	if useFleet {
		specs, err := parseMix(*mixF, model, *devices)
		if err != nil {
			return err
		}
		reg := obs.NewRegistry("crowdload_")
		if fl, err = fleetsim.New(fleetsim.Config{
			Seed:      *seed,
			Cohorts:   specs,
			AmbientLo: units.Celsius(*ambientLo),
			AmbientHi: units.Celsius(*ambientHi),
			Sigma:     *sigma,
			BinNoise:  *binNoise,
			Workers:   *fleetWork,
			Metrics:   reg,
		}); err != nil {
			return err
		}
		modelNames = modelNames[:0]
		for _, c := range fl.Cohorts() {
			modelNames = append(modelNames, c.Model().Name)
		}
		if *dryRun {
			return dryRunFleet(stdout, fl, reg)
		}
	} else {
		src := sim.NewSource(*seed, "crowdload")
		lottery := silicon.Lottery{Sigma: *sigma, Bins: model.SoC.Bins, BinNoise: *binNoise}
		corners, err := lottery.Draw(src, *devices)
		if err != nil {
			return err
		}
		wild = make([]crowd.WildDevice, *devices)
		for i, corner := range corners {
			wild[i] = crowd.WildDevice{
				Unit:    fleet.Unit{Name: fmt.Sprintf("load-%04d", i), ModelName: model.Name, Corner: corner},
				Ambient: units.Celsius(src.Uniform(*ambientLo, *ambientHi)),
				Seed:    *seed*1000 + int64(i),
				Quick:   true,
			}
		}
	}
	population := model.Name
	if fl != nil {
		population = describeFleet(fl)
	}
	if len(nodes) == 1 {
		fmt.Fprintf(stdout, "crowdload: %d devices (%s, %s source) → %s (%d workers, %s transport)\n", *devices, population, *sourceF, *addr, *concurrency, *transportF)
	} else {
		fmt.Fprintf(stdout, "crowdload: %d devices (%s, %s source) sprayed across %d nodes (%d workers, %s transport)\n", *devices, population, *sourceF, len(nodes), *concurrency, *transportF)
	}
	// One shared transport for the whole run, tuned so every worker keeps
	// a warm connection: the default keeps only 2 idle conns per host, so
	// with more workers than that every third POST would pay a fresh TCP
	// handshake. Keep-alives stay on (binary streams hold their
	// connection open for the run; JSON POSTs reuse pooled ones).
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = *concurrency
	transport.MaxIdleConns = 4 * *concurrency
	transport.DisableKeepAlives = false
	client := &http.Client{Timeout: 30 * time.Second, Transport: transport}

	// Snapshot the counters first: the servers may already hold records, so
	// every accounting figure below is a delta against this baseline.
	base, err := fetchClusterMetrics(client, nodes)
	if err != nil {
		return err
	}

	// Scenario mode: route this tool's traffic through the fault plan's
	// Transport and script the scenario — after the baseline snapshot, so
	// the accounting deltas are not taken through a partition.
	netRetries := 0
	if plan != nil {
		scNodes := []string{"client"}
		for i, node := range nodes {
			id := fmt.Sprintf("node%d", i+1)
			if err := plan.RegisterNode(id, node); err != nil {
				return err
			}
			scNodes = append(scNodes, id)
		}
		ct := chaos.NewTransport(plan, "client")
		ct.Base = transport
		client.Transport = ct
		sc.Apply(plan, scNodes)
		// Injected connection failures (drops, partitions) are part of the
		// scenario, not a dead server: retry a few times before failing over.
		netRetries = 3
		fmt.Fprintf(stdout, "chaos: scenario %s (seed %d): %s\n", sc.Name, *chaosSeed, sc.Description)
		for _, ev := range plan.Events() {
			fmt.Fprintf(stdout, "chaos:   %s\n", ev)
		}
	}

	// Streams live longer than any single POST, so they bypass the
	// client's 30 s whole-request timeout while sharing its (possibly
	// chaos-wrapped) transport and connection pool.
	streamClient := &http.Client{Transport: client.Transport}

	var sent, retried, failed, implausible atomic.Uint64
	var simNanos, postNanos atomic.Int64
	var ackedMu sync.Mutex
	var acked []string         // device IDs whose upload was acknowledged
	var ackLatencies []float64 // per acked upload (JSON) or batch (binary): ms from first send to the ack, retries included
	start := time.Now()

	// The simulation source feeds finished benchmarks into items; upload
	// workers drain it. The fleet engine produces in shard bursts while
	// uploads stream out concurrently, so the channel carries a buffer.
	items := make(chan uploadItem, 1024)
	prodErr := make(chan error, 1)
	go func() {
		defer close(items)
		if fl != nil {
			t0 := time.Now()
			err := fl.RunWild(func(s fleetsim.Submission) {
				it := uploadItem{device: s.Device, model: s.Model, score: s.Score, cooldown: s.Cooldown}
				if plausible(it) != nil {
					// Lottery-tail thermal runaway: the trace would fail
					// the server's ingest validation, so don't upload it.
					implausible.Add(1)
					return
				}
				items <- it
			})
			simNanos.Add(time.Since(t0).Nanoseconds())
			prodErr <- err
			return
		}
		// Device source: one simulator per upload worker, the original
		// concurrency shape.
		var pw sync.WaitGroup
		work := make(chan crowd.WildDevice)
		for w := 0; w < *concurrency; w++ {
			pw.Add(1)
			go func() {
				defer pw.Done()
				for dev := range work {
					t0 := time.Now()
					sub, err := dev.Benchmark()
					simNanos.Add(time.Since(t0).Nanoseconds())
					if err != nil {
						fmt.Fprintf(stderr, "crowdload: %s: benchmark: %v\n", dev.Unit.Name, err)
						failed.Add(1)
						continue
					}
					items <- uploadItem{device: sub.Device, model: dev.Unit.ModelName, score: sub.Score, cooldown: sub.CooldownReadings}
				}
			}()
		}
		for _, dev := range wild {
			work <- dev
		}
		close(work)
		pw.Wait()
		prodErr <- nil
	}()

	var wg sync.WaitGroup
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			if useWire {
				wireWorker(wireWorkerConfig{
					client:     streamClient,
					nodes:      nodes,
					home:       w % len(nodes),
					batch:      *batchK,
					retries:    *retries + netRetries,
					stderr:     stderr,
					sent:       &sent,
					retried:    &retried,
					failed:     &failed,
					postNanos:  &postNanos,
					ackedMu:    &ackedMu,
					acked:      &acked,
					ackLatency: &ackLatencies,
				}, func(yield func(uploadItem)) {
					for it := range items {
						yield(it)
					}
				})
				return
			}
			home := w % len(nodes)
			for it := range items {
				raw, err := ingest.Marshal(it.device, it.model, it.score, it.cooldown)
				if err != nil {
					fmt.Fprintf(stderr, "crowdload: %s: marshal: %v\n", it.device, err)
					failed.Add(1)
					continue
				}
				t1 := time.Now()
				node := nodes[home]
				err = upload(client, node, raw, *retries, &retried, netRetries)
				if err != nil && len(nodes) > 1 {
					// A node dying mid-run must not lose the device: fail
					// over to the other nodes before giving up.
					for _, alt := range nodes {
						if alt == node {
							continue
						}
						if err = upload(client, alt, raw, *retries, &retried, netRetries); err == nil {
							break
						}
					}
				}
				if err != nil {
					fmt.Fprintf(stderr, "crowdload: %s: %v\n", it.device, err)
					failed.Add(1)
					continue
				}
				ackWait := time.Since(t1)
				postNanos.Add(ackWait.Nanoseconds())
				sent.Add(1)
				ackedMu.Lock()
				acked = append(acked, it.device)
				ackLatencies = append(ackLatencies, float64(ackWait.Nanoseconds())/1e6)
				ackedMu.Unlock()
			}
		}(w)
	}
	wg.Wait()
	if err := <-prodErr; err != nil {
		return err
	}
	elapsed := time.Since(start)

	if failed.Load() > 0 {
		return fmt.Errorf("%d submissions failed", failed.Load())
	}

	// Heal before verifying: the scenario's faults were the workload; the
	// acceptance contract is what the cluster looks like afterwards.
	// Time-to-convergence is measured from this instant.
	var healedAt time.Time
	if plan != nil {
		healedAt = time.Now()
		sc.Heal(plan)
	}

	fmt.Fprintf(stdout, "\nuploaded %d submissions in %v (%.1f sub/s end to end, %d backpressure retries)\n",
		sent.Load(), elapsed.Round(time.Millisecond), float64(sent.Load())/elapsed.Seconds(), retried.Load())
	if n := implausible.Load(); n > 0 {
		fmt.Fprintf(stdout, "withheld %d implausible traces (silicon-lottery thermal-runaway tail — would fail ingest validation)\n", n)
	}
	fmt.Fprintf(stdout, "device-sim time %v total, post time %v total across %d workers\n",
		time.Duration(simNanos.Load()).Round(time.Millisecond),
		time.Duration(postNanos.Load()).Round(time.Millisecond), *concurrency)

	// settled sums a counter's delta across every node still answering
	// /metrics. In cluster mode a dead node's local-ingest counts drop out
	// of the sum; the convergence check below is what proves nothing was
	// lost.
	var metrics []map[string]uint64
	settled := func(name string) uint64 {
		var sum uint64
		for i, m := range metrics {
			if m != nil {
				sum += m[name] - base[i][name]
			}
		}
		return sum
	}
	var binsNode string
	var convergeMS int64
	if len(nodes) == 1 {
		// Standalone: wait for the server to drain — stored must reach
		// sent, and any shortfall is a dropped submission, a hard failure.
		deadline := time.Now().Add(30 * time.Second)
		for {
			if metrics, err = fetchClusterMetrics(client, nodes); err != nil {
				return err
			}
			if settled("crowdd_stored_total")+settled("crowdd_decode_errors_total")+settled("crowdd_aborted_total") >= sent.Load() {
				break
			}
			if time.Now().After(deadline) {
				return fmt.Errorf("server did not drain: %d stored of %d sent", settled("crowdd_stored_total"), sent.Load())
			}
			time.Sleep(50 * time.Millisecond)
		}
		binsNode = nodes[0]
		if plan != nil {
			// Standalone "convergence" is the drain: every acked upload
			// visible in the store.
			convergeMS = time.Since(healedAt).Milliseconds()
		}
	} else {
		if plan != nil {
			// Time-to-convergence: heal until every node agrees on digests.
			// verifyCluster re-checks below — cheap once converged.
			if _, err := waitDigestsConverge(client, nodes, 60*time.Second); err != nil {
				return err
			}
			convergeMS = time.Since(healedAt).Milliseconds()
		}
		// Cluster: a 202 already implied a durable local commit plus one
		// replica acknowledgement, so there is nothing left in flight once
		// every upload is acknowledged. Verify the cluster-level contract
		// instead: converged digests, every acknowledged submission present
		// on every live node, bit-identical bins.
		live, err := verifyCluster(client, stdout, nodes, model.Name, acked)
		if err != nil {
			return err
		}
		if metrics, err = fetchClusterMetrics(client, nodes); err != nil {
			return err
		}
		binsNode = live[0]
	}

	stored := settled("crowdd_stored_total")
	accepted := settled("crowdd_accepted_total")
	fmt.Fprintf(stdout, "servers stored %d (accepted %d, rejected %d) — %.1f%% acceptance\n",
		stored, accepted, settled("crowdd_rejected_total"),
		100*float64(accepted)/float64(stored))
	if first := metrics[0]; first != nil && first["crowdd_wal_segments"] > 0 {
		fmt.Fprintf(stdout, "server persistence: wal appended %d this run (%d fsyncs, %d bytes), node 0 last snapshot seq %d\n",
			settled("crowdd_wal_appended_total"), settled("crowdd_wal_fsyncs_total"),
			settled("crowdd_wal_bytes_total"), first["crowdd_wal_last_snapshot_seq"])
	} else {
		fmt.Fprintln(stdout, "server persistence: disabled (in-memory store)")
	}

	for _, name := range modelNames {
		// With a single-model population the accepted delta bounds that
		// model's bins; a mix can't attribute the global counter, so it
		// prints whatever has settled.
		want := 0
		if len(modelNames) == 1 {
			want = int(accepted)
		}
		if err := printBins(client, stdout, binsNode, name, want); err != nil {
			return err
		}
	}
	if len(nodes) == 1 {
		if dropped := int64(sent.Load()) - int64(stored); dropped > 0 {
			return fmt.Errorf("%d submissions dropped", dropped)
		}
	}
	fmt.Fprintln(stdout, "zero dropped submissions ✓")

	if plan != nil {
		st := plan.Stats()
		fmt.Fprintf(stdout, "chaos: injected %d delays, %d drops, %d error responses, %d mid-body breaks, %d blocked by partition\n",
			st.Delayed, st.Dropped, st.Errored, st.BodyErrs, st.Blocked)
		ackedMu.Lock()
		res := scenarioResult{
			Name:              sc.Name,
			SubmissionsPerSec: float64(sent.Load()) / elapsed.Seconds(),
			AckP99MS:          p99ms(ackLatencies),
			ConvergenceMS:     convergeMS,
		}
		ackedMu.Unlock()
		fmt.Fprintf(stdout, "chaos: scenario %s: %.1f sub/s, ack p99 %.1fms, convergence %dms\n",
			res.Name, res.SubmissionsPerSec, res.AckP99MS, res.ConvergenceMS)
		if *benchOut != "" {
			if err := writeBenchOut(*benchOut, res); err != nil {
				return err
			}
			fmt.Fprintf(stdout, "chaos: recorded scenario %s into %s\n", res.Name, *benchOut)
		}
	}
	return nil
}

// verifyCluster is the cluster-mode acceptance gate: every node that is
// still alive must converge to the same per-model digests, hold every
// acknowledged submission, and serve bit-identical bins. Any
// acknowledged upload missing anywhere is a replication bug and fails
// the run. Returns the live node set.
func verifyCluster(client *http.Client, stdout io.Writer, nodes []string, model string, acked []string) ([]string, error) {
	live, err := waitDigestsConverge(client, nodes, 60*time.Second)
	if err != nil {
		return nil, err
	}
	if len(live) < 1 {
		return nil, fmt.Errorf("no live nodes to verify against")
	}
	fmt.Fprintf(stdout, "cluster converged: %d/%d nodes agree on digests\n", len(live), len(nodes))

	missing := 0
	for _, dev := range acked {
		for _, node := range live {
			resp, err := client.Get(node + "/v1/devices/" + dev)
			if err != nil {
				return nil, fmt.Errorf("checking %s on %s: %w", dev, node, err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				fmt.Fprintf(stdout, "MISSING: acknowledged submission %s absent from %s (HTTP %d)\n", dev, node, resp.StatusCode)
				missing++
			}
		}
	}
	if missing > 0 {
		return nil, fmt.Errorf("%d acknowledged submissions missing from converged nodes", missing)
	}
	fmt.Fprintf(stdout, "all %d acknowledged submissions present on every live node ✓\n", len(acked))

	if err := waitBinsIdentical(client, live, model, 30*time.Second); err != nil {
		return nil, err
	}
	fmt.Fprintf(stdout, "bins bit-identical across %d nodes ✓\n", len(live))
	return live, nil
}

// waitDigestsConverge polls every node's /v1/digest until all reachable
// nodes report the same map, returning the reachable set. Nodes that
// stay unreachable for the whole window are treated as dead and
// excluded; at least one node must answer.
func waitDigestsConverge(client *http.Client, nodes []string, window time.Duration) ([]string, error) {
	type digest struct {
		Records int    `json:"records"`
		Digest  uint64 `json:"digest"`
		MaxWall int64  `json:"max_hlc_wall"`
	}
	deadline := time.Now().Add(window)
	for {
		var live []string
		var digests []map[string]digest
		for _, node := range nodes {
			resp, err := client.Get(node + "/v1/digest")
			if err != nil {
				continue // dead node: the survivors must still converge
			}
			var d map[string]digest
			err = json.NewDecoder(resp.Body).Decode(&d)
			resp.Body.Close()
			if err != nil {
				continue
			}
			live = append(live, node)
			digests = append(digests, d)
		}
		converged := len(live) > 0
		for i := 1; i < len(digests); i++ {
			if !reflect.DeepEqual(digests[0], digests[i]) {
				converged = false
				break
			}
		}
		if converged {
			return live, nil
		}
		if time.Now().After(deadline) {
			return nil, fmt.Errorf("digests did not converge across %d live nodes within %v", len(live), window)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// waitBinsIdentical polls every node's bins for the model until all
// report the same population, centroids and sizes — bit-identical
// binning, the replicated read contract.
func waitBinsIdentical(client *http.Client, nodes []string, model string, window time.Duration) error {
	type bins struct {
		Submissions int       `json:"submissions"`
		Accepted    int       `json:"accepted"`
		BinCount    int       `json:"bin_count"`
		Centroids   []float64 `json:"centroids"`
		Sizes       []int     `json:"sizes"`
		Slope       float64   `json:"ambient_slope_per_c"`
	}
	fetch := func(node string) (*bins, error) {
		resp, err := client.Get(node + "/v1/bins?model=" + url.QueryEscape(model))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			io.Copy(io.Discard, resp.Body)
			return nil, nil
		}
		var out struct {
			Models []bins `json:"models"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
			return nil, err
		}
		if len(out.Models) == 0 {
			return nil, nil
		}
		return &out.Models[0], nil
	}
	deadline := time.Now().Add(window)
	for {
		all := make([]*bins, 0, len(nodes))
		ok := true
		for _, node := range nodes {
			b, err := fetch(node)
			if err != nil {
				return err
			}
			if b == nil {
				ok = false
				break
			}
			all = append(all, b)
		}
		if ok {
			for i := 1; i < len(all); i++ {
				if !reflect.DeepEqual(all[0], all[i]) {
					ok = false
					break
				}
			}
		}
		if ok {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("bins did not become identical across %d nodes within %v", len(nodes), window)
		}
		time.Sleep(200 * time.Millisecond)
	}
}

// fetchClusterMetrics snapshots every node's /metrics; a dead node's
// entry is nil.
func fetchClusterMetrics(client *http.Client, nodes []string) ([]map[string]uint64, error) {
	out := make([]map[string]uint64, len(nodes))
	var firstErr error
	live := 0
	for i, node := range nodes {
		m, err := fetchMetrics(client, node)
		if err != nil {
			if firstErr == nil {
				firstErr = err
			}
			continue
		}
		out[i] = m
		live++
	}
	if live == 0 {
		return nil, firstErr
	}
	return out, nil
}

// upload POSTs one payload, retrying on 503 backpressure with linear
// backoff. netRetries additionally retries connection-level failures —
// scenario mode sets it non-zero, because injected drops and partitions
// are part of the workload, not a dead server.
func upload(client *http.Client, addr string, raw []byte, retries int, retried *atomic.Uint64, netRetries int) error {
	netErrs := 0
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(addr+"/v1/submissions", "application/json", bytes.NewReader(raw))
		if err != nil {
			if netErrs++; netErrs > netRetries {
				return err
			}
			retried.Add(1)
			time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
			continue
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted:
			return nil
		case resp.StatusCode == http.StatusServiceUnavailable && attempt < retries:
			retried.Add(1)
			time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
		default:
			return fmt.Errorf("POST /v1/submissions = %d after %d attempts", resp.StatusCode, attempt+1)
		}
	}
}

// fetchMetrics parses the plain-text /metrics exposition.
func fetchMetrics(client *http.Client, addr string) (map[string]uint64, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]uint64)
	for _, line := range strings.Split(string(body), "\n") {
		name, val, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			continue
		}
		out[name] = n
	}
	return out, nil
}

// printBins waits for the debounced binning loop to settle over the full
// accepted population, then prints the cached bins for the model.
func printBins(client *http.Client, stdout io.Writer, addr, model string, wantAccepted int) error {
	type modelBins struct {
		Model     string    `json:"model"`
		Accepted  int       `json:"accepted"`
		BinCount  int       `json:"bin_count"`
		Centroids []float64 `json:"centroids"`
		Sizes     []int     `json:"sizes"`
		Slope     float64   `json:"ambient_slope_per_c"`
	}
	fetch := func() (*modelBins, error) {
		resp, err := client.Get(addr + "/v1/bins")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var bins struct {
			Models []modelBins `json:"models"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&bins); err != nil {
			return nil, err
		}
		for _, mb := range bins.Models {
			if mb.Model == model {
				return &mb, nil
			}
		}
		return nil, nil
	}
	var mb *modelBins
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		if mb, err = fetch(); err != nil {
			return err
		}
		if mb != nil && mb.Accepted >= wantAccepted {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintln(stdout, "bins not settled yet (server still debouncing)")
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Fprintf(stdout, "bins for %s: %d bins over %d accepted (slope %.1f score/°C)\n",
		mb.Model, mb.BinCount, mb.Accepted, mb.Slope)
	for i, c := range mb.Centroids {
		fmt.Fprintf(stdout, "  bin %d: centroid %.0f, %d devices\n", i, c, mb.Sizes[i])
	}
	return nil
}
