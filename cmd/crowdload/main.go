// Command crowdload load-tests a running crowdd: it simulates a fleet of N
// in-the-wild devices (silicon-lottery draws of one handset model, each at
// a random ambient), runs ACCUBENCH on every one, and fires the uploads at
// the server concurrently, retrying on backpressure so nothing is dropped.
// It then waits for the server to drain, verifies zero dropped
// submissions, and prints throughput, acceptance-rate and bin stats.
//
//	crowdd -addr :8077 &
//	crowdload -addr http://127.0.0.1:8077 -devices 200
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/fleet"
	"accubench/internal/ingest"
	"accubench/internal/silicon"
	"accubench/internal/sim"
	"accubench/internal/soc"
	"accubench/internal/units"
)

func main() {
	if err := run(os.Args[1:], os.Stdout, os.Stderr); err != nil {
		fmt.Fprintln(os.Stderr, "crowdload:", err)
		os.Exit(1)
	}
}

// run is the whole load generator behind a testable seam: flags come
// from args rather than the global FlagSet, and all output lands on the
// given writers.
func run(args []string, stdout, stderr io.Writer) error {
	fs := flag.NewFlagSet("crowdload", flag.ContinueOnError)
	var (
		addr        = fs.String("addr", "http://127.0.0.1:8077", "crowdd base URL")
		devices     = fs.Int("devices", 200, "number of simulated devices")
		modelName   = fs.String("model", "Nexus 5", "device model to simulate")
		concurrency = fs.Int("concurrency", 16, "simulating/uploading workers")
		seed        = fs.Int64("seed", 1, "random seed")
		ambientLo   = fs.Float64("ambient-lo", 12, "lowest wild ambient, °C")
		ambientHi   = fs.Float64("ambient-hi", 38, "highest wild ambient, °C")
		sigma       = fs.Float64("sigma", 0.55, "population leakage log-normal sigma")
		binNoise    = fs.Float64("bin-noise", 0.35, "fab binning-measurement noise")
		retries     = fs.Int("retries", 50, "max retries per upload on backpressure")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() > 0 {
		return fmt.Errorf("unexpected arguments: %v", fs.Args())
	}
	if *devices <= 0 {
		return fmt.Errorf("need -devices > 0")
	}
	if *concurrency <= 0 {
		return fmt.Errorf("need -concurrency > 0")
	}
	model, err := soc.ModelByName(*modelName)
	if err != nil {
		return err
	}

	// Draw the population: one silicon-lottery draw per device, one wild
	// ambient each.
	src := sim.NewSource(*seed, "crowdload")
	lottery := silicon.Lottery{Sigma: *sigma, Bins: model.SoC.Bins, BinNoise: *binNoise}
	corners, err := lottery.Draw(src, *devices)
	if err != nil {
		return err
	}
	wild := make([]crowd.WildDevice, *devices)
	for i, corner := range corners {
		wild[i] = crowd.WildDevice{
			Unit:    fleet.Unit{Name: fmt.Sprintf("load-%04d", i), ModelName: model.Name, Corner: corner},
			Ambient: units.Celsius(src.Uniform(*ambientLo, *ambientHi)),
			Seed:    *seed*1000 + int64(i),
			Quick:   true,
		}
	}

	fmt.Fprintf(stdout, "crowdload: %d %s devices → %s (%d workers)\n", *devices, model.Name, *addr, *concurrency)
	transport := http.DefaultTransport.(*http.Transport).Clone()
	// The default transport keeps only 2 idle conns per host; with more
	// workers than that, every third POST would pay a fresh TCP handshake.
	transport.MaxIdleConnsPerHost = *concurrency
	client := &http.Client{Timeout: 30 * time.Second, Transport: transport}

	// Snapshot the counters first: the server may already hold records, so
	// every accounting figure below is a delta against this baseline.
	base, err := fetchMetrics(client, *addr)
	if err != nil {
		return err
	}

	var sent, retried, failed atomic.Uint64
	var simNanos, postNanos atomic.Int64
	start := time.Now()
	var wg sync.WaitGroup
	work := make(chan crowd.WildDevice)
	for w := 0; w < *concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for dev := range work {
				t0 := time.Now()
				sub, err := dev.Benchmark()
				if err != nil {
					fmt.Fprintf(stderr, "crowdload: %s: benchmark: %v\n", dev.Unit.Name, err)
					failed.Add(1)
					continue
				}
				raw, err := ingest.Marshal(sub.Device, dev.Unit.ModelName, sub.Score, sub.CooldownReadings)
				if err != nil {
					fmt.Fprintf(stderr, "crowdload: %s: marshal: %v\n", dev.Unit.Name, err)
					failed.Add(1)
					continue
				}
				t1 := time.Now()
				simNanos.Add(t1.Sub(t0).Nanoseconds())
				if err := upload(client, *addr, raw, *retries, &retried); err != nil {
					fmt.Fprintf(stderr, "crowdload: %s: %v\n", dev.Unit.Name, err)
					failed.Add(1)
					continue
				}
				postNanos.Add(time.Since(t1).Nanoseconds())
				sent.Add(1)
			}
		}()
	}
	for _, dev := range wild {
		work <- dev
	}
	close(work)
	wg.Wait()
	elapsed := time.Since(start)

	if failed.Load() > 0 {
		return fmt.Errorf("%d submissions failed", failed.Load())
	}

	// Wait for the server to drain: stored must reach sent.
	var metrics map[string]uint64
	settled := func(name string) uint64 { return metrics[name] - base[name] }
	deadline := time.Now().Add(30 * time.Second)
	for {
		metrics, err = fetchMetrics(client, *addr)
		if err != nil {
			return err
		}
		if settled("crowdd_stored_total")+settled("crowdd_decode_errors_total")+settled("crowdd_aborted_total") >= sent.Load() {
			break
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("server did not drain: metrics %v after %d sent", metrics, sent.Load())
		}
		time.Sleep(50 * time.Millisecond)
	}

	stored := settled("crowdd_stored_total")
	accepted := settled("crowdd_accepted_total")
	dropped := int64(sent.Load()) - int64(stored)
	fmt.Fprintf(stdout, "\nuploaded %d submissions in %v (%.1f sub/s end to end, %d backpressure retries)\n",
		sent.Load(), elapsed.Round(time.Millisecond), float64(sent.Load())/elapsed.Seconds(), retried.Load())
	fmt.Fprintf(stdout, "device-sim time %v total, post time %v total across %d workers\n",
		time.Duration(simNanos.Load()).Round(time.Millisecond),
		time.Duration(postNanos.Load()).Round(time.Millisecond), *concurrency)
	fmt.Fprintf(stdout, "server stored %d (accepted %d, rejected %d) — %.1f%% acceptance, %d dropped\n",
		stored, accepted, settled("crowdd_rejected_total"),
		100*float64(accepted)/float64(stored), dropped)
	if _, ok := metrics["crowdd_wal_appends_total"]; ok {
		fmt.Fprintf(stdout, "server persistence: wal appended %d this run (%d fsyncs, %d bytes, %d segments live), last snapshot seq %d\n",
			settled("crowdd_wal_appended_total"), settled("crowdd_wal_fsyncs_total"),
			settled("crowdd_wal_bytes_total"), metrics["crowdd_wal_segments"],
			metrics["crowdd_wal_last_snapshot_seq"])
	} else {
		fmt.Fprintln(stdout, "server persistence: disabled (in-memory store)")
	}

	if err := printBins(client, stdout, *addr, model.Name, int(accepted)); err != nil {
		return err
	}
	if dropped > 0 {
		return fmt.Errorf("%d submissions dropped", dropped)
	}
	fmt.Fprintln(stdout, "zero dropped submissions ✓")
	return nil
}

// upload POSTs one payload, retrying on 503 backpressure with linear
// backoff.
func upload(client *http.Client, addr string, raw []byte, retries int, retried *atomic.Uint64) error {
	for attempt := 0; ; attempt++ {
		resp, err := client.Post(addr+"/v1/submissions", "application/json", bytes.NewReader(raw))
		if err != nil {
			return err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		switch {
		case resp.StatusCode == http.StatusAccepted:
			return nil
		case resp.StatusCode == http.StatusServiceUnavailable && attempt < retries:
			retried.Add(1)
			time.Sleep(time.Duration(attempt+1) * 20 * time.Millisecond)
		default:
			return fmt.Errorf("POST /v1/submissions = %d after %d attempts", resp.StatusCode, attempt+1)
		}
	}
}

// fetchMetrics parses the plain-text /metrics exposition.
func fetchMetrics(client *http.Client, addr string) (map[string]uint64, error) {
	resp, err := client.Get(addr + "/metrics")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, err
	}
	out := make(map[string]uint64)
	for _, line := range strings.Split(string(body), "\n") {
		name, val, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			continue
		}
		out[name] = n
	}
	return out, nil
}

// printBins waits for the debounced binning loop to settle over the full
// accepted population, then prints the cached bins for the model.
func printBins(client *http.Client, stdout io.Writer, addr, model string, wantAccepted int) error {
	type modelBins struct {
		Model     string    `json:"model"`
		Accepted  int       `json:"accepted"`
		BinCount  int       `json:"bin_count"`
		Centroids []float64 `json:"centroids"`
		Sizes     []int     `json:"sizes"`
		Slope     float64   `json:"ambient_slope_per_c"`
	}
	fetch := func() (*modelBins, error) {
		resp, err := client.Get(addr + "/v1/bins")
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		var bins struct {
			Models []modelBins `json:"models"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&bins); err != nil {
			return nil, err
		}
		for _, mb := range bins.Models {
			if mb.Model == model {
				return &mb, nil
			}
		}
		return nil, nil
	}
	var mb *modelBins
	deadline := time.Now().Add(10 * time.Second)
	for {
		var err error
		if mb, err = fetch(); err != nil {
			return err
		}
		if mb != nil && mb.Accepted >= wantAccepted {
			break
		}
		if time.Now().After(deadline) {
			fmt.Fprintln(stdout, "bins not settled yet (server still debouncing)")
			return nil
		}
		time.Sleep(100 * time.Millisecond)
	}
	fmt.Fprintf(stdout, "bins for %s: %d bins over %d accepted (slope %.1f score/°C)\n",
		mb.Model, mb.BinCount, mb.Accepted, mb.Slope)
	for i, c := range mb.Centroids {
		fmt.Fprintf(stdout, "  bin %d: centroid %.0f, %d devices\n", i, c, mb.Sizes[i])
	}
	return nil
}
