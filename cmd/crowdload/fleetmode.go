package main

import (
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/fleetsim"
	"accubench/internal/ingest"
	"accubench/internal/obs"
	"accubench/internal/soc"
	"accubench/internal/units"
)

// uploadItem is one finished benchmark on its way to the server — the
// decoupling point between the simulation source (fleet engine or
// per-device simulators) and the upload workers.
type uploadItem struct {
	device   string
	model    string
	score    float64
	cooldown []accubench.CooldownSample
}

// parseMix turns a "-fleet-mix" string like "Nexus 5=3,Google Pixel=1"
// into cohort specs whose device counts apportion total by the given
// weights (largest remainder, at least one device per cohort). An empty
// mix yields a single cohort of the fallback model.
func parseMix(mix string, fallback *soc.DeviceModel, total int) ([]fleetsim.CohortSpec, error) {
	if mix == "" {
		return []fleetsim.CohortSpec{{Model: fallback, Devices: total}}, nil
	}
	type entry struct {
		model  *soc.DeviceModel
		weight float64
	}
	var entries []entry
	var sum float64
	for _, part := range strings.Split(mix, ",") {
		name, weight := strings.TrimSpace(part), 1.0
		if k := strings.LastIndex(part, "="); k >= 0 {
			name = strings.TrimSpace(part[:k])
			w, err := strconv.ParseFloat(strings.TrimSpace(part[k+1:]), 64)
			if err != nil || w <= 0 {
				return nil, fmt.Errorf("bad -fleet-mix entry %q (want Model=weight)", part)
			}
			weight = w
		}
		model, err := soc.ModelByName(name)
		if err != nil {
			return nil, err
		}
		entries = append(entries, entry{model, weight})
		sum += weight
	}
	if total < len(entries) {
		return nil, fmt.Errorf("-devices %d cannot cover %d mix cohorts", total, len(entries))
	}
	specs := make([]fleetsim.CohortSpec, len(entries))
	fractions := make([]float64, len(entries))
	assigned := 0
	for i, e := range entries {
		exact := float64(total) * e.weight / sum
		n := int(exact)
		specs[i] = fleetsim.CohortSpec{Model: e.model, Devices: n}
		fractions[i] = exact - float64(n)
		assigned += n
	}
	// Hand the remainder to the largest fractional parts.
	order := make([]int, len(entries))
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return fractions[order[a]] > fractions[order[b]] })
	for k := 0; assigned < total; k++ {
		specs[order[k%len(order)]].Devices++
		assigned++
	}
	// No cohort may end up empty: steal from the largest.
	for i := range specs {
		for specs[i].Devices == 0 {
			big := 0
			for j := range specs {
				if specs[j].Devices > specs[big].Devices {
					big = j
				}
			}
			specs[big].Devices--
			specs[i].Devices++
		}
	}
	return specs, nil
}

// plausible runs the server's own upload validation client-side. At
// population scale the silicon lottery's log-normal tail contains
// leakage outliers whose thermal runaway pushes sensor readings past
// the ingest validator's 150 °C ceiling; a well-behaved app refuses to
// upload such a trace rather than ship a submission the server must
// reject (and which would poison its wire batch into futile retries).
func plausible(it uploadItem) error {
	sub := ingest.Submission{
		Device:   it.device,
		Model:    it.model,
		Score:    it.score,
		Cooldown: make([]ingest.CooldownPoint, len(it.cooldown)),
	}
	for i, p := range it.cooldown {
		sub.Cooldown[i] = ingest.CooldownPoint{AtSeconds: p.At.Seconds(), TempC: float64(p.Reading)}
	}
	return sub.Validate()
}

// describeFleet renders the cohort mix, e.g. "Nexus 5×750000 + Google
// Pixel×250000".
func describeFleet(fl *fleetsim.Fleet) string {
	parts := make([]string, 0, len(fl.Cohorts()))
	for _, c := range fl.Cohorts() {
		parts = append(parts, fmt.Sprintf("%s×%d", c.Model().Name, c.Devices()))
	}
	return strings.Join(parts, " + ")
}

// binStat aggregates one (model, bin) population cell of a dry run.
// Thermal-runaway devices — lottery-tail leakage outliers whose
// exponential leakage–temperature feedback diverges, overflowing the
// energy ledger to +Inf — are counted separately and excluded from the
// energy mean so one outlier cannot poison the cell.
type binStat struct {
	devices  int
	runaways int
	score    float64
	energy   units.Joules
}

// dryRunFleet simulates the fleet without a server and prints the
// population study the uploads would otherwise carry: per-model, per-bin
// device counts, mean scores and mean energy — the ground truth the
// paper's Table II bands emerge from — plus the engine's throughput.
func dryRunFleet(stdout io.Writer, fl *fleetsim.Fleet, reg *obs.Registry) error {
	fmt.Fprintf(stdout, "crowdload: dry run — %d devices (%s), no uploads\n", fl.Devices(), describeFleet(fl))
	var mu sync.Mutex
	stats := make(map[string]map[int]*binStat) // model → bin → cell
	var scoreLo, scoreHi = make(map[string]float64), make(map[string]float64)
	start := time.Now()
	err := fl.RunWild(func(s fleetsim.Submission) {
		mu.Lock()
		bins := stats[s.Model]
		if bins == nil {
			bins = make(map[int]*binStat)
			stats[s.Model] = bins
			scoreLo[s.Model], scoreHi[s.Model] = s.Score, s.Score
		}
		cell := bins[int(s.Corner.Bin)]
		if cell == nil {
			cell = &binStat{}
			bins[int(s.Corner.Bin)] = cell
		}
		cell.devices++
		cell.score += s.Score
		if math.IsInf(float64(s.Energy), 0) || math.IsNaN(float64(s.Energy)) {
			cell.runaways++
		} else {
			cell.energy += s.Energy
		}
		if s.Score < scoreLo[s.Model] {
			scoreLo[s.Model] = s.Score
		}
		if s.Score > scoreHi[s.Model] {
			scoreHi[s.Model] = s.Score
		}
		mu.Unlock()
	})
	if err != nil {
		return err
	}
	wall := time.Since(start)

	steps := float64(fl.Devices()) * float64(fleetsim.WildSteps)
	simulated := time.Duration(fleetsim.WildSteps) * fleetsim.ControlStep
	fmt.Fprintf(stdout, "fleet: %d devices × %d steps (%v simulated) in %v — %.1fM dev-steps/s, %.1f× real time\n",
		fl.Devices(), fleetsim.WildSteps, simulated, wall.Round(time.Millisecond),
		steps/wall.Seconds()/1e6, simulated.Seconds()/wall.Seconds())
	if g := reg.Gauge("fleet_device_steps_per_sec", ""); g.Value() > 0 {
		fmt.Fprintf(stdout, "fleet: fleet_device_steps_per_sec %d\n", g.Value())
	}

	models := make([]string, 0, len(stats))
	for m := range stats {
		models = append(models, m)
	}
	sort.Strings(models)
	for _, m := range models {
		bins := stats[m]
		devices, score := 0, 0.0
		ids := make([]int, 0, len(bins))
		for b, cell := range bins {
			ids = append(ids, b)
			devices += cell.devices
			score += cell.score
		}
		sort.Ints(ids)
		mean := score / float64(devices)
		spread := 0.0
		if mean > 0 {
			spread = 100 * (scoreHi[m] - scoreLo[m]) / mean
		}
		fmt.Fprintf(stdout, "%s: %d devices, score mean %.0f (min %.0f, max %.0f — %.1f%% spread)\n",
			m, devices, mean, scoreLo[m], scoreHi[m], spread)
		for _, b := range ids {
			cell := bins[b]
			line := fmt.Sprintf("  bin-%d: %7d devices, mean score %.0f",
				b, cell.devices, cell.score/float64(cell.devices))
			if sane := cell.devices - cell.runaways; sane > 0 {
				line += fmt.Sprintf(", mean energy %.1fJ", float64(cell.energy)/float64(sane))
			}
			if cell.runaways > 0 {
				line += fmt.Sprintf(" (%d thermal-runaway outliers excluded from energy)", cell.runaways)
			}
			fmt.Fprintln(stdout, line)
		}
	}
	fmt.Fprintf(stdout, "fleet fingerprint: %016x (same seed + mix ⇒ same fingerprint at any -fleet-workers)\n", fl.Fingerprint())
	return nil
}
