package main

// Scenario-mode support: crowdload -scenario <name> -chaos-seed N runs
// the load under a seeded client-side fault plan (internal/chaos) and
// records per-scenario submissions/sec, ack p99 and time-to-convergence
// into a BENCH_*.json file the bench-diff gate can compare. Faults are
// injected into this tool's own connections — the daemons stay
// untouched; peer-traffic injection is the in-process Go harness
// (internal/server chaos tests).

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strings"
)

// scenarioResult is one scenario's measured outcome — the keys
// scripts/bench_diff.sh compares across BENCH_7.json generations.
type scenarioResult struct {
	Name              string  `json:"name"`
	SubmissionsPerSec float64 `json:"submissions_per_sec"`
	AckP99MS          float64 `json:"ack_p99_ms"`
	ConvergenceMS     int64   `json:"convergence_ms"`
}

type scenarioFile struct {
	Scenarios []scenarioResult `json:"scenarios"`
}

// p99ms returns the 99th-percentile of the given latencies,
// milliseconds. Zero when no samples were taken.
func p99ms(lat []float64) float64 {
	if len(lat) == 0 {
		return 0
	}
	s := append([]float64(nil), lat...)
	sort.Float64s(s)
	idx := (99*len(s) + 99) / 100 // ceil(0.99*n)
	if idx > len(s) {
		idx = len(s)
	}
	return s[idx-1]
}

// writeBenchOut merges one scenario's result into the bench file,
// replacing any previous entry with the same name. The layout is one
// entry per line — the same awk-greppable shape scripts/bench_run.sh
// emits, so scripts/bench_diff.sh parses it with no JSON tooling.
func writeBenchOut(path string, r scenarioResult) error {
	var f scenarioFile
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("existing %s is not a scenario bench file: %w", path, err)
		}
	} else if !os.IsNotExist(err) {
		return err
	}
	replaced := false
	for i := range f.Scenarios {
		if f.Scenarios[i].Name == r.Name {
			f.Scenarios[i] = r
			replaced = true
		}
	}
	if !replaced {
		f.Scenarios = append(f.Scenarios, r)
	}
	sort.Slice(f.Scenarios, func(i, j int) bool { return f.Scenarios[i].Name < f.Scenarios[j].Name })

	var b strings.Builder
	b.WriteString("{\n  \"scenarios\": [\n")
	for i, s := range f.Scenarios {
		comma := ","
		if i == len(f.Scenarios)-1 {
			comma = ""
		}
		fmt.Fprintf(&b, "    {\"name\": %q, \"submissions_per_sec\": %.1f, \"ack_p99_ms\": %.2f, \"convergence_ms\": %d}%s\n",
			s.Name, s.SubmissionsPerSec, s.AckP99MS, s.ConvergenceMS, comma)
	}
	b.WriteString("  ]\n}\n")
	return os.WriteFile(path, []byte(b.String()), 0o644)
}
