// Command accubench runs the ACCUBENCH technique on one simulated device
// and prints per-iteration results — the CLI face of the paper's
// methodology.
//
//	accubench -model "Nexus 5" -bin 3 -leak 1.7 -mode unconstrained
//	accubench -model "Google Pixel" -leak 1.4 -mode fixed -iterations 3
//	accubench -list
//
// The device is powered through a simulated Monsoon inside a simulated
// THERMABOX at 26 °C, exactly as the paper's bench wires a physical phone.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/report"
	"accubench/internal/silicon"
	"accubench/internal/soc"
	"accubench/internal/thermabox"
	"accubench/internal/units"
)

func main() {
	var (
		list       = flag.Bool("list", false, "list available device models and exit")
		modelName  = flag.String("model", "Nexus 5", "device model (see -list)")
		modelFile  = flag.String("model-file", "", "load a custom device model from a JSON file instead of -model")
		bin        = flag.Int("bin", 0, "voltage bin of the chip")
		leak       = flag.Float64("leak", 1.0, "leakage corner (1.0 = typical silicon)")
		mode       = flag.String("mode", "unconstrained", "workload mode: unconstrained or fixed")
		iterations = flag.Int("iterations", 5, "back-to-back ACCUBENCH iterations")
		ambient    = flag.Float64("ambient", 26, "THERMABOX setpoint in °C")
		seed       = flag.Int64("seed", 1, "random seed")
		quick      = flag.Bool("quick", false, "shorten phases for a fast smoke run")
		csvPath    = flag.String("trace", "", "write the device trace as CSV to this file")
	)
	flag.Parse()

	if *list {
		for _, m := range soc.Models() {
			fmt.Printf("%-13s %s (%s, %d cores, %d bins)\n",
				m.Name, m.SoC.Name, m.SoC.Process, m.SoC.TotalCores(), m.SoC.Bins)
		}
		return
	}
	if err := run(*modelName, *modelFile, *bin, *leak, *mode, *iterations, *ambient, *seed, *quick, *csvPath); err != nil {
		fmt.Fprintln(os.Stderr, "accubench:", err)
		os.Exit(1)
	}
}

func run(modelName, modelFile string, bin int, leak float64, modeName string, iterations int, ambient float64, seed int64, quick bool, csvPath string) error {
	var model *soc.DeviceModel
	var err error
	if modelFile != "" {
		f, ferr := os.Open(modelFile)
		if ferr != nil {
			return ferr
		}
		defer f.Close()
		model, err = soc.LoadModel(f)
	} else {
		model, err = soc.ModelByName(modelName)
	}
	if err != nil {
		return err
	}
	var mode accubench.Mode
	switch strings.ToLower(modeName) {
	case "unconstrained", "perf":
		mode = accubench.Unconstrained
	case "fixed", "fixed-frequency", "energy":
		mode = accubench.FixedFrequency
	default:
		return fmt.Errorf("unknown mode %q (want unconstrained or fixed)", modeName)
	}

	mon := monsoon.New(model.Battery.Nominal)
	if model.VoltageThrottle != nil {
		mon.SetVoltage(model.Battery.Maximum) // the paper's post-Fig-10 practice
	}
	dev, err := device.New(device.Config{
		Name:    "dut",
		Model:   model,
		Corner:  silicon.ProcessCorner{Bin: silicon.Bin(bin), Leakage: leak},
		Ambient: units.Celsius(ambient),
		Seed:    seed,
		Source:  mon.Supply(),
	})
	if err != nil {
		return err
	}
	boxCfg := thermabox.DefaultConfig()
	boxCfg.Target = units.Celsius(ambient)
	boxCfg.Seed = seed
	box, err := thermabox.New(boxCfg)
	if err != nil {
		return err
	}

	cfg := accubench.DefaultConfig(mode)
	cfg.Iterations = iterations
	cfg.CooldownTarget = units.Celsius(ambient) + 10
	if quick {
		cfg.Warmup = 45 * time.Second
		cfg.Workload = 90 * time.Second
	}

	fmt.Printf("ACCUBENCH %v on %s — THERMABOX at %s, Monsoon at %v\n",
		mode, dev.Describe(), units.Celsius(ambient), mon.Voltage())
	res, err := (&accubench.Runner{Device: dev, Monitor: mon, Box: box, Config: cfg}).Run()
	if err != nil {
		return err
	}

	t := report.NewTable("iter", "score", "energy", "mean power", "mean freq", "mean die", "peak die", "cooldown", "throttles", "min cores")
	for _, it := range res.Iterations {
		t.AddRow(
			fmt.Sprintf("%d", it.Index+1),
			fmt.Sprintf("%d", it.Score),
			it.Energy.Energy.String(),
			it.Energy.MeanPower.String(),
			it.MeanBigFreq.String(),
			it.MeanDieTemp.String(),
			it.PeakDieTemp.String(),
			it.CooldownTook.Truncate(time.Second).String(),
			fmt.Sprintf("%d", it.ThrottleEvents),
			fmt.Sprintf("%d", it.MinOnlineCores),
		)
	}
	if err := t.Write(os.Stdout); err != nil {
		return err
	}
	if ps, err := res.PerfSummary(); err == nil {
		fmt.Printf("performance: %s\n", ps)
	}
	if es, err := res.EnergySummary(); err == nil {
		fmt.Printf("energy:      %s\n", es)
	}

	if csvPath != "" {
		f, err := os.Create(csvPath)
		if err != nil {
			return err
		}
		defer f.Close()
		if err := dev.Trace().WriteCSV(f); err != nil {
			return err
		}
		fmt.Printf("trace written to %s\n", csvPath)
	}
	return nil
}
