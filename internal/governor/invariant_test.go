package governor_test

import (
	"testing"

	"accubench/internal/soc"
	"accubench/internal/testkit"
)

// TestEveryPolicyRespected sweeps the cap-discipline invariant over every
// calibrated handset's thermal policy: on-ladder caps, bounded by the
// policy floor and the cluster maximum, hysteresis honored in both
// directions, hotplug within limits, and recovery to full speed after the
// die cools.
func TestEveryPolicyRespected(t *testing.T) {
	for _, m := range soc.Models() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			testkit.CheckEngineRespectsPolicy(t, m.Thermal, m.SoC.Big)
		})
	}
}
