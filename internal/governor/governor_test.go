package governor

import (
	"testing"
	"time"

	"accubench/internal/soc"
	"accubench/internal/units"
)

func bigCluster() soc.Cluster { return soc.SD800().Big }

func TestPerformanceGovernor(t *testing.T) {
	g := Performance{}
	if got := g.Target(bigCluster()); got != 2265 {
		t.Errorf("Target = %v, want 2265", got)
	}
	if g.Name() != "performance" {
		t.Errorf("Name = %q", g.Name())
	}
}

func TestUserspaceGovernor(t *testing.T) {
	g := Userspace{Freq: 960}
	if got := g.Target(bigCluster()); got != 960 {
		t.Errorf("Target = %v", got)
	}
	// Off-ladder pins clamp downward.
	if got := (Userspace{Freq: 1000}).Target(bigCluster()); got != 960 {
		t.Errorf("off-ladder Target = %v, want 960", got)
	}
	// Below-ladder pins clamp to the floor.
	if got := (Userspace{Freq: 100}).Target(bigCluster()); got != 300 {
		t.Errorf("below-ladder Target = %v, want 300", got)
	}
	if (Userspace{Freq: 960}).Name() == "" {
		t.Error("empty Name")
	}
}

func TestClampToLadder(t *testing.T) {
	c := bigCluster()
	cases := []struct{ in, want units.MegaHertz }{
		{2265, 2265}, {2264, 1574}, {1574, 1574}, {959, 729}, {300, 300}, {1, 300}, {9999, 2265},
	}
	for _, tc := range cases {
		if got := ClampToLadder(c, tc.in); got != tc.want {
			t.Errorf("ClampToLadder(%v) = %v, want %v", tc.in, got, tc.want)
		}
	}
}

func TestEngineStartsUncapped(t *testing.T) {
	e := NewEngine(soc.Nexus5().Thermal, bigCluster(), 0)
	if e.Cap() != 2265 {
		t.Errorf("initial cap = %v", e.Cap())
	}
	if e.OfflineBigCores() != 0 {
		t.Errorf("initial offline = %d", e.OfflineBigCores())
	}
}

func TestEngineStepsDownWhenHot(t *testing.T) {
	e := NewEngine(soc.Nexus5().Thermal, bigCluster(), 250*time.Millisecond)
	e.Poll(0, 80) // above ThrottleAt=79
	if e.Cap() != 1574 {
		t.Errorf("cap after one hot poll = %v, want 1574", e.Cap())
	}
	e.Poll(250*time.Millisecond, 80)
	if e.Cap() != 960 {
		t.Errorf("cap after two hot polls = %v, want 960", e.Cap())
	}
	if e.ThrottleEvents() != 2 {
		t.Errorf("ThrottleEvents = %d", e.ThrottleEvents())
	}
}

func TestEngineHonoursPollInterval(t *testing.T) {
	e := NewEngine(soc.Nexus5().Thermal, bigCluster(), 250*time.Millisecond)
	e.Poll(0, 90)
	e.Poll(time.Millisecond, 90)     // within interval: ignored
	e.Poll(100*time.Millisecond, 90) // still ignored
	if e.Cap() != 1574 {
		t.Errorf("cap = %v, want one step only", e.Cap())
	}
	e.Poll(250*time.Millisecond, 90)
	if e.Cap() != 960 {
		t.Errorf("cap = %v after second interval", e.Cap())
	}
}

func TestEngineHysteresis(t *testing.T) {
	e := NewEngine(soc.Nexus5().Thermal, bigCluster(), 250*time.Millisecond)
	e.Poll(0, 80)
	if e.Cap() != 1574 {
		t.Fatalf("setup failed: cap %v", e.Cap())
	}
	// Between (ThrottleAt - Hysteresis, ThrottleAt): hold.
	e.Poll(time.Second, 75)
	if e.Cap() != 1574 {
		t.Errorf("cap moved inside hysteresis band: %v", e.Cap())
	}
	// Cool enough: step back up.
	e.Poll(2*time.Second, 70)
	if e.Cap() != 2265 {
		t.Errorf("cap did not recover: %v", e.Cap())
	}
}

func TestEngineFloorsAtMinCapFreq(t *testing.T) {
	// The Nexus 5 policy bounds the frequency cap at 960 MHz; past that the
	// engine relies on core hotplug (which is how the die reaches the 80 °C
	// shutdown trip at all).
	e := NewEngine(soc.Nexus5().Thermal, bigCluster(), 250*time.Millisecond)
	for i := 0; i < 20; i++ {
		e.Poll(time.Duration(i)*250*time.Millisecond, 95)
	}
	if e.Cap() != 960 {
		t.Errorf("cap = %v, want MinCapFreq floor 960", e.Cap())
	}
	// ThrottleEvents stop counting once pinned to the floor.
	if e.ThrottleEvents() != 2 {
		t.Errorf("ThrottleEvents = %d, want 2 (2265→1574→960)", e.ThrottleEvents())
	}
}

func TestEngineWithoutMinCapFloorsAtLadderBottom(t *testing.T) {
	e := NewEngine(soc.Pixel().Thermal, soc.SD821().Big, 250*time.Millisecond)
	for i := 0; i < 20; i++ {
		e.Poll(time.Duration(i)*250*time.Millisecond, 95)
	}
	if e.Cap() != 307 {
		t.Errorf("cap = %v, want ladder floor 307", e.Cap())
	}
}

func TestNexus5CoreShutdownAt80(t *testing.T) {
	e := NewEngine(soc.Nexus5().Thermal, bigCluster(), 250*time.Millisecond)
	e.Poll(0, 81)
	if e.OfflineBigCores() != 1 {
		t.Errorf("offline = %d after 81°C, want 1 (paper Fig. 1)", e.OfflineBigCores())
	}
	// Stays hot: continues shedding down to MinOnlineCores=2.
	e.Poll(250*time.Millisecond, 85)
	e.Poll(500*time.Millisecond, 85)
	e.Poll(750*time.Millisecond, 85)
	if e.OfflineBigCores() != 2 {
		t.Errorf("offline = %d, want 2 (MinOnlineCores=2 of 4)", e.OfflineBigCores())
	}
	// Cooling below CoreOnlineBelow=72 restores one core per poll.
	e.Poll(time.Second, 70)
	if e.OfflineBigCores() != 1 {
		t.Errorf("offline = %d after cooldown, want 1", e.OfflineBigCores())
	}
	e.Poll(1250*time.Millisecond, 70)
	if e.OfflineBigCores() != 0 {
		t.Errorf("offline = %d, want 0", e.OfflineBigCores())
	}
}

func TestNoCoreShutdownWithoutConfig(t *testing.T) {
	e := NewEngine(soc.Pixel().Thermal, soc.SD821().Big, 250*time.Millisecond)
	for i := 0; i < 10; i++ {
		e.Poll(time.Duration(i)*250*time.Millisecond, 95)
	}
	if e.OfflineBigCores() != 0 {
		t.Errorf("Pixel offlined %d cores; its policy has no hotplug", e.OfflineBigCores())
	}
}

func TestEngineReset(t *testing.T) {
	e := NewEngine(soc.Nexus5().Thermal, bigCluster(), 250*time.Millisecond)
	e.Poll(0, 85)
	e.Reset()
	if e.Cap() != 2265 || e.OfflineBigCores() != 0 || e.ThrottleEvents() != 0 {
		t.Errorf("Reset incomplete: cap=%v offline=%d events=%d", e.Cap(), e.OfflineBigCores(), e.ThrottleEvents())
	}
}

func TestVoltageCap(t *testing.T) {
	g5 := soc.LGG5()
	big := g5.SoC.Big
	// Healthy supply (4.4 V): no cap.
	if got := VoltageCap(g5.VoltageThrottle, 4.4, big); got != big.MaxFreq() {
		t.Errorf("cap at 4.4V = %v", got)
	}
	// Nominal 3.85 V is below the 4.0 V threshold: capped.
	if got := VoltageCap(g5.VoltageThrottle, 3.85, big); got != 1728 {
		t.Errorf("cap at 3.85V = %v, want 1728", got)
	}
	// No throttle configured: no cap.
	if got := VoltageCap(nil, 3.0, big); got != big.MaxFreq() {
		t.Errorf("cap with nil throttle = %v", got)
	}
}

func TestEffectiveResolution(t *testing.T) {
	c := bigCluster()
	// Governor wants max, thermal caps at 1574, voltage healthy.
	if got := Effective(Performance{}, c, 1574, c.MaxFreq()); got != 1574 {
		t.Errorf("Effective = %v, want 1574", got)
	}
	// Voltage cap tighter than thermal cap.
	if got := Effective(Performance{}, c, 1574, 960); got != 960 {
		t.Errorf("Effective = %v, want 960", got)
	}
	// Userspace pin lower than both caps.
	if got := Effective(Userspace{Freq: 729}, c, 1574, 960); got != 729 {
		t.Errorf("Effective = %v, want 729", got)
	}
	// A big-cluster cap value maps onto the LITTLE ladder by clamping.
	little := *soc.SD810().Little
	if got := Effective(Performance{}, little, 1248, little.MaxFreq()); got != 1248 {
		t.Errorf("little Effective = %v, want 1248", got)
	}
	if got := Effective(Performance{}, little, 1300, little.MaxFreq()); got != 1248 {
		t.Errorf("little Effective with off-ladder cap = %v, want 1248", got)
	}
}
