// Package governor implements the OS policies that turn thermal state into
// performance: cpufreq-style frequency governors and the MSM thermal engine
// (trip-point frequency capping plus the Nexus 5's core hotplug). These
// policies are the paper's §IV-B mechanism — "consistently lower performance
// … caused by the device running at lower frequencies due to different
// thermal throttling behavior".
package governor

import (
	"fmt"
	"time"

	"accubench/internal/soc"
	"accubench/internal/units"
)

// Governor decides the frequency a cluster *wants* to run, before thermal
// caps. The paper uses two: unconstrained (performance) and a userspace pin
// (FIXED-FREQUENCY).
type Governor interface {
	// Target returns the desired frequency for the cluster.
	Target(c soc.Cluster) units.MegaHertz
	// Name identifies the governor, e.g. "performance".
	Name() string
}

// Performance always requests the top OPP — the paper's UNCONSTRAINED mode
// ("we allowed the CPU cores to run unconstrained — without frequency
// throttling — and measured performance"; the throttling that then happens
// is the thermal engine's, not the governor's).
type Performance struct{}

// Target implements Governor.
func (Performance) Target(c soc.Cluster) units.MegaHertz { return c.MaxFreq() }

// Name implements Governor.
func (Performance) Name() string { return "performance" }

// Userspace pins a fixed frequency — the paper's FIXED-FREQUENCY mode
// ("we constrained all CPU cores to run at a fixed, low frequency that was
// guaranteed to not thermally throttle").
type Userspace struct {
	// Freq is the pinned frequency; it is clamped to the cluster ladder.
	Freq units.MegaHertz
}

// Target implements Governor.
func (u Userspace) Target(c soc.Cluster) units.MegaHertz {
	return ClampToLadder(c, u.Freq)
}

// Name implements Governor.
func (u Userspace) Name() string { return fmt.Sprintf("userspace@%v", u.Freq) }

// ClampToLadder returns the highest OPP not exceeding f, or the bottom OPP
// if f is below the ladder.
func ClampToLadder(c soc.Cluster, f units.MegaHertz) units.MegaHertz {
	best := c.OPPs[0]
	for _, opp := range c.OPPs {
		if opp <= f {
			best = opp
		}
	}
	return best
}

// Engine is the thermal engine of one handset: it polls the die temperature
// at a fixed interval and maintains a frequency cap (and, where configured,
// a core-offline count) with hysteresis.
type Engine struct {
	policy soc.ThermalPolicy
	big    soc.Cluster

	poll     time.Duration
	nextPoll time.Duration

	capFreq     units.MegaHertz
	offlineBig  int
	throttleOps int // total step-down actions, for diagnostics
}

// DefaultPollInterval matches the ~250 ms cadence of msm_thermal.
const DefaultPollInterval = 250 * time.Millisecond

// NewEngine builds a thermal engine for the given policy over the big
// cluster's ladder. poll ≤ 0 selects DefaultPollInterval.
func NewEngine(policy soc.ThermalPolicy, big soc.Cluster, poll time.Duration) *Engine {
	if poll <= 0 {
		poll = DefaultPollInterval
	}
	return &Engine{
		policy:  policy,
		big:     big,
		poll:    poll,
		capFreq: big.MaxFreq(),
	}
}

// EngineState is the per-device mutable state of an Engine, split out as
// plain data so batched steppers (internal/fleetsim) can hold one per
// device in struct-of-arrays form. PollState advances it with exactly
// Engine.Poll's decision logic, and Engine.Poll itself delegates here,
// so there is a single copy of the thermal-engine policy in the tree.
type EngineState struct {
	// NextPoll is the next simulated instant the engine will act.
	NextPoll time.Duration
	// CapFreq is the current thermal frequency cap.
	CapFreq units.MegaHertz
	// OfflineBig is how many big cores are hotplugged off.
	OfflineBig int
	// ThrottleOps counts cumulative step-down actions.
	ThrottleOps int
}

// NewEngineState returns the unthrottled initial state for a cluster,
// matching a freshly built Engine.
func NewEngineState(big soc.Cluster) EngineState {
	return EngineState{CapFreq: big.MaxFreq()}
}

// PollState feeds one sensor temperature to the engine state at simulated
// time now. The engine acts at most once per poll interval; calling more
// often is safe. The decision logic is bit-identical to Engine.Poll — it
// IS Engine.Poll, which delegates here.
func PollState(st *EngineState, policy soc.ThermalPolicy, big soc.Cluster, poll, now time.Duration, die units.Celsius) {
	if now < st.NextPoll {
		return
	}
	st.NextPoll = now + poll

	p := policy
	switch {
	case die >= p.ThrottleAt:
		next := big.StepDown(st.CapFreq)
		if p.MinCapFreq > 0 && next < p.MinCapFreq {
			next = ClampToLadder(big, p.MinCapFreq)
			if next < p.MinCapFreq {
				next = big.StepUp(next)
			}
		}
		if next != st.CapFreq && next < st.CapFreq {
			st.CapFreq = next
			st.ThrottleOps++
		}
	case float64(die) <= float64(p.ThrottleAt)-p.Hysteresis:
		st.CapFreq = big.StepUp(st.CapFreq)
	}

	if p.CoreOfflineAt > 0 {
		maxOffline := big.Cores - p.MinOnlineCores
		if maxOffline < 0 {
			maxOffline = 0
		}
		switch {
		case die >= p.CoreOfflineAt && st.OfflineBig < maxOffline:
			st.OfflineBig++
		case die <= p.CoreOnlineBelow && st.OfflineBig > 0:
			st.OfflineBig--
		}
	}
}

// Poll feeds the engine the die temperature at simulated time now. The
// engine acts at most once per poll interval; calling more often is safe.
func (e *Engine) Poll(now time.Duration, die units.Celsius) {
	st := EngineState{NextPoll: e.nextPoll, CapFreq: e.capFreq, OfflineBig: e.offlineBig, ThrottleOps: e.throttleOps}
	PollState(&st, e.policy, e.big, e.poll, now, die)
	e.nextPoll, e.capFreq, e.offlineBig, e.throttleOps = st.NextPoll, st.CapFreq, st.OfflineBig, st.ThrottleOps
}

// Cap returns the engine's current frequency cap for the big cluster.
func (e *Engine) Cap() units.MegaHertz { return e.capFreq }

// OfflineBigCores returns how many big cores the engine has hotplugged off.
func (e *Engine) OfflineBigCores() int { return e.offlineBig }

// ThrottleEvents returns the cumulative count of step-down actions.
func (e *Engine) ThrottleEvents() int { return e.throttleOps }

// Reset restores the unthrottled state (used between benchmark iterations
// when a device reboots; ACCUBENCH itself never resets mid-run).
func (e *Engine) Reset() {
	e.capFreq = e.big.MaxFreq()
	e.offlineBig = 0
	e.throttleOps = 0
	e.nextPoll = 0
}

// VoltageCap returns the frequency cap imposed by an input-voltage throttle
// for the given supply voltage, or the cluster maximum when no throttle is
// configured or the voltage is healthy. This is the LG G5's anomaly (paper
// Fig. 10) factored as policy.
func VoltageCap(t *soc.InputVoltageThrottle, supply units.Volts, big soc.Cluster) units.MegaHertz {
	if t == nil || supply >= t.Threshold {
		return big.MaxFreq()
	}
	return ClampToLadder(big, t.CapFreq)
}

// Effective resolves the frequency a cluster actually runs: the governor's
// target bounded by the thermal cap and the voltage cap, snapped to the
// cluster's own ladder (a big-cluster cap in MHz maps onto the LITTLE
// ladder by value).
func Effective(g Governor, c soc.Cluster, thermalCap, voltageCap units.MegaHertz) units.MegaHertz {
	f := g.Target(c)
	if thermalCap < f {
		f = thermalCap
	}
	if voltageCap < f {
		f = voltageCap
	}
	return ClampToLadder(c, f)
}
