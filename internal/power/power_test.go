package power

import (
	"math"
	"testing"
	"testing/quick"

	"accubench/internal/silicon"
	"accubench/internal/units"
)

func leakModel() silicon.LeakageModel {
	return silicon.LeakageModel{I0: 0.3, Vref: 1.0, VoltExp: 2, Tref: 25, TSlope: 30}
}

func model() Model {
	return Model{
		CeffBig: 0.9e-9,
		Leakage: leakModel(),
		Uncore:  0.15,
	}
}

func on(f units.MegaHertz, v units.Volts) CoreState {
	return CoreState{Online: true, Freq: f, Voltage: v, Utilization: 1}
}

func TestDynamicScalesWithVSquaredF(t *testing.T) {
	base := Dynamic(1e-9, on(1000, 1.0))
	// Double the frequency: double the power.
	if got := Dynamic(1e-9, on(2000, 1.0)); math.Abs(float64(got)/float64(base)-2) > 1e-9 {
		t.Errorf("freq doubling ratio = %v, want 2", float64(got)/float64(base))
	}
	// 1.1× the voltage: 1.21× the power.
	if got := Dynamic(1e-9, on(1000, 1.1)); math.Abs(float64(got)/float64(base)-1.21) > 1e-9 {
		t.Errorf("voltage ratio = %v, want 1.21", float64(got)/float64(base))
	}
}

func TestDynamicMagnitudeIsRealistic(t *testing.T) {
	// A Krait-class core at 2.265 GHz and 1.1 V with Ceff ≈ 0.9 nF draws
	// ~2.5 W — the right order for the SD-800's well-documented thermal pain.
	p := Dynamic(0.9e-9, on(2265, 1.1))
	if p < 1.0 || p > 4.0 {
		t.Errorf("full-speed core power = %v, want watts-scale", p)
	}
}

func TestDynamicOfflineAndIdle(t *testing.T) {
	if Dynamic(1e-9, CoreState{Online: false, Freq: 1000, Voltage: 1, Utilization: 1}) != 0 {
		t.Error("offline core drew dynamic power")
	}
	if Dynamic(1e-9, CoreState{Online: true, Freq: 1000, Voltage: 1, Utilization: 0}) != 0 {
		t.Error("idle core drew dynamic power")
	}
}

func TestDynamicUtilizationClamped(t *testing.T) {
	full := Dynamic(1e-9, on(1000, 1.0))
	over := Dynamic(1e-9, CoreState{Online: true, Freq: 1000, Voltage: 1, Utilization: 5})
	if over != full {
		t.Errorf("utilization>1 not clamped: %v vs %v", over, full)
	}
}

func TestEvaluateComponents(t *testing.T) {
	m := model()
	corner := silicon.ProcessCorner{Bin: 0, Leakage: 1.0}
	cores := []CoreState{on(2265, 1.1), on(2265, 1.1), on(2265, 1.1), on(2265, 1.1)}
	bd := m.Evaluate(cores, nil, corner, 50)
	if bd.Dynamic <= 0 || bd.Leakage <= 0 || bd.Uncore != 0.15 {
		t.Fatalf("breakdown = %v", bd)
	}
	if got := bd.Total(); math.Abs(float64(got-(bd.Dynamic+bd.Leakage+bd.Uncore))) > 1e-12 {
		t.Errorf("Total = %v, want sum of parts", got)
	}
	if bd.String() == "" {
		t.Error("empty String")
	}
}

func TestEvaluateAllOffline(t *testing.T) {
	m := model()
	corner := silicon.ProcessCorner{Leakage: 1}
	cores := []CoreState{{Online: false}, {Online: false}}
	bd := m.Evaluate(cores, nil, corner, 80)
	if bd.Total() != 0 {
		t.Errorf("all-offline chip drew %v", bd)
	}
}

func TestLeakierCornerDrawsMore(t *testing.T) {
	m := model()
	cores := []CoreState{on(1574, 0.965)}
	lo := m.Evaluate(cores, nil, silicon.ProcessCorner{Leakage: 0.8}, 60)
	hi := m.Evaluate(cores, nil, silicon.ProcessCorner{Leakage: 2.0}, 60)
	if hi.Leakage <= lo.Leakage {
		t.Errorf("leaky corner %v not above quiet corner %v", hi.Leakage, lo.Leakage)
	}
	if hi.Dynamic != lo.Dynamic {
		t.Errorf("corner changed dynamic power: %v vs %v", hi.Dynamic, lo.Dynamic)
	}
}

func TestHotterDieLeaksMore(t *testing.T) {
	m := model()
	corner := silicon.ProcessCorner{Leakage: 1}
	cores := []CoreState{on(1574, 0.965)}
	cold := m.Evaluate(cores, nil, corner, 30)
	hot := m.Evaluate(cores, nil, corner, 80)
	if hot.Leakage <= cold.Leakage {
		t.Error("leakage did not grow with die temperature")
	}
}

func TestCoreShutdownReducesLeakage(t *testing.T) {
	// The Nexus 5 thermal engine's core-shutdown action must actually save
	// power in the model for the paper's Figure 1 dynamics to emerge.
	m := model()
	corner := silicon.ProcessCorner{Leakage: 1.5}
	all := []CoreState{on(1574, 1.0), on(1574, 1.0), on(1574, 1.0), on(1574, 1.0)}
	three := []CoreState{on(1574, 1.0), on(1574, 1.0), on(1574, 1.0), {Online: false}}
	p4 := m.Evaluate(all, nil, corner, 80)
	p3 := m.Evaluate(three, nil, corner, 80)
	if p3.Total() >= p4.Total() {
		t.Errorf("shutting a core did not reduce power: %v vs %v", p3.Total(), p4.Total())
	}
	// Both dynamic and leakage must drop by the same 1/4 share.
	if math.Abs(float64(p3.Dynamic)/float64(p4.Dynamic)-0.75) > 1e-9 {
		t.Errorf("dynamic share = %v, want 0.75", float64(p3.Dynamic)/float64(p4.Dynamic))
	}
	if math.Abs(float64(p3.Leakage)/float64(p4.Leakage)-0.75) > 1e-9 {
		t.Errorf("leakage share = %v, want 0.75", float64(p3.Leakage)/float64(p4.Leakage))
	}
}

func TestBigLittleClusters(t *testing.T) {
	m := Model{
		CeffBig:    1.0e-9,
		CeffLittle: 0.3e-9,
		Leakage:    leakModel(),
		Uncore:     0.1,
	}
	corner := silicon.ProcessCorner{Leakage: 1}
	big := []CoreState{on(1958, 1.05)}
	little := []CoreState{on(1555, 0.9)}
	bd := m.Evaluate(big, little, corner, 50)
	bigOnly := m.Evaluate(big, nil, corner, 50)
	if bd.Dynamic <= bigOnly.Dynamic {
		t.Error("LITTLE cluster contributed no dynamic power")
	}
	// LITTLE core at lower V, f and Ceff must draw much less than the big core.
	littleDyn := bd.Dynamic - bigOnly.Dynamic
	if littleDyn >= bigOnly.Dynamic/2 {
		t.Errorf("LITTLE core drew %v, big %v — LITTLE should be far cheaper", littleDyn, bigOnly.Dynamic)
	}
}

func TestVoltageBinningTradeoffEmerges(t *testing.T) {
	// The paper's §II story, end to end: bin-0 (slow silicon, high voltage,
	// low leak) vs a leaky bin (low voltage, high leak). At the *throttled*
	// operating point — a hot die sitting on a mid-ladder frequency, which
	// is where UNCONSTRAINED devices spend the workload — the leaky chip
	// must draw more total power despite its lower voltage, so it sinks
	// further down the ladder. This is the inequality the entire
	// reproduction rests on.
	m := model()
	tbl := silicon.Nexus5Table()
	v0, err := tbl.Voltage(0, 1574)
	if err != nil {
		t.Fatal(err)
	}
	v6, err := tbl.Voltage(6, 1574)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(f units.MegaHertz, v units.Volts) []CoreState {
		return []CoreState{on(f, v), on(f, v), on(f, v), on(f, v)}
	}
	bin0 := m.Evaluate(mk(1574, v0), nil, silicon.ProcessCorner{Bin: 0, Leakage: 0.5}, 85)
	bin6 := m.Evaluate(mk(1574, v6), nil, silicon.ProcessCorner{Bin: 6, Leakage: 2.5}, 85)
	if bin6.Total() <= bin0.Total() {
		t.Errorf("hot leaky bin-6 total %v not above bin-0 %v — leakage should dominate", bin6.Total(), bin0.Total())
	}
	// And the reverse at a cold die at max frequency with mild corners: the
	// V² saving wins and the lower-voltage chip draws less.
	v0max, _ := tbl.Voltage(0, 2265)
	v6max, _ := tbl.Voltage(6, 2265)
	bin0Cold := m.Evaluate(mk(2265, v0max), nil, silicon.ProcessCorner{Bin: 0, Leakage: 0.95}, 30)
	bin6Cold := m.Evaluate(mk(2265, v6max), nil, silicon.ProcessCorner{Bin: 6, Leakage: 1.05}, 30)
	if bin6Cold.Total() >= bin0Cold.Total() {
		t.Errorf("cold mild bin-6 %v not below bin-0 %v — dynamic should dominate when cool", bin6Cold.Total(), bin0Cold.Total())
	}
}

func TestEvaluateNonNegativeProperty(t *testing.T) {
	m := model()
	f := func(leak, temp, util float64) bool {
		corner := silicon.ProcessCorner{Leakage: math.Abs(math.Mod(leak, 3)) + 0.1}
		die := units.Celsius(math.Mod(math.Abs(temp), 120))
		cores := []CoreState{{Online: true, Freq: 1574, Voltage: 0.965, Utilization: math.Mod(math.Abs(util), 1)}}
		bd := m.Evaluate(cores, nil, corner, die)
		return bd.Dynamic >= 0 && bd.Leakage >= 0 && bd.Total() >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
