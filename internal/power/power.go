// Package power models CPU power draw: per-core switching (dynamic) power
// plus chip-wide temperature-dependent leakage, the two components whose
// balance produces the paper's counterintuitive headline result — bin-0,
// running the *highest* voltage, is the best chip in both performance and
// energy because its silicon leaks so much less.
package power

import (
	"fmt"

	"accubench/internal/silicon"
	"accubench/internal/units"
)

// CoreState is the operating point of one core for a power evaluation step.
type CoreState struct {
	// Online is false for hotplugged-off cores (the Nexus 5 thermal engine
	// shuts a core at 80 °C — paper Fig. 1). Offline cores draw neither
	// dynamic nor leakage power (power-collapsed).
	Online bool
	// Freq is the core's current clock.
	Freq units.MegaHertz
	// Voltage is the rail voltage feeding the core.
	Voltage units.Volts
	// Utilization in [0,1]: fraction of cycles doing work. The paper's
	// π workload saturates all cores, so it runs at 1.
	Utilization float64
}

// Model computes total CPU power for a chip.
type Model struct {
	// CeffBig is the effective switching capacitance of one big core. Power
	// per core is Ceff·V²·f·u.
	CeffBig units.Farads
	// CeffLittle is the effective switching capacitance of one LITTLE core;
	// zero for SoCs without a LITTLE cluster.
	CeffLittle units.Farads
	// Leakage is the chip's leakage model; the per-chip corner multiplies it.
	Leakage silicon.LeakageModel
	// Uncore is constant platform power on the CPU rail (interconnect,
	// caches) while any core is online.
	Uncore units.Watts
	// LeakageShares out the chip leakage across clusters in proportion to
	// core count; offline cores are power-collapsed and excluded.
}

// Dynamic returns the switching power of one core with the given Ceff.
func Dynamic(ceff units.Farads, s CoreState) units.Watts {
	if !s.Online || s.Utilization <= 0 {
		return 0
	}
	u := units.Clamp(s.Utilization, 0, 1)
	return units.Watts(float64(ceff) * float64(s.Voltage) * float64(s.Voltage) * s.Freq.Hertz() * u)
}

// Breakdown separates a power evaluation into its components, which the
// experiment analysis uses to attribute energy differences to leakage.
type Breakdown struct {
	Dynamic units.Watts
	Leakage units.Watts
	Uncore  units.Watts
}

// Total returns the sum of all components.
func (b Breakdown) Total() units.Watts { return b.Dynamic + b.Leakage + b.Uncore }

// String renders e.g. "dyn=1200.0mW leak=400.0mW uncore=150.0mW".
func (b Breakdown) String() string {
	return fmt.Sprintf("dyn=%v leak=%v uncore=%v", b.Dynamic, b.Leakage, b.Uncore)
}

// Evaluate computes the chip's power breakdown given the per-core states of
// the big cluster and (possibly empty) LITTLE cluster, the chip's process
// corner, and the current die temperature.
//
// Leakage is evaluated per online core at that core's rail voltage: a core
// that is power-collapsed leaks nothing, which is exactly why the Nexus 5
// thermal engine's core-shutdown action cools the chip.
func (m Model) Evaluate(big, little []CoreState, corner silicon.ProcessCorner, die units.Celsius) Breakdown {
	var bd Breakdown
	anyOnline := false
	perCore := func(ceff units.Farads, cores []CoreState) {
		for _, c := range cores {
			if !c.Online {
				continue
			}
			anyOnline = true
			bd.Dynamic += Dynamic(ceff, c)
			// Each core contributes an equal share of chip leakage, scaled
			// by its rail voltage and the shared die temperature.
			n := len(big) + len(little)
			share := 1.0 / float64(n)
			leak := m.Leakage.Power(corner.Leakage*share, c.Voltage, die)
			bd.Leakage += leak
		}
	}
	perCore(m.CeffBig, big)
	perCore(m.CeffLittle, little)
	if anyOnline {
		bd.Uncore = m.Uncore
	}
	return bd
}
