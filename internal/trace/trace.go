// Package trace records time series produced by the simulator — temperature,
// per-core frequency, power draw — and offers the reductions the paper's
// analysis needs: means over windows, distributions, down-sampling for
// display, and CSV export. Figures 4, 5, 11 and 12 of the paper are rendered
// directly from these traces.
package trace

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"time"

	"accubench/internal/stats"
)

// Sample is one timestamped observation.
type Sample struct {
	At    time.Duration // simulated time
	Value float64
}

// Series is an append-only time series. Samples must be appended in
// non-decreasing time order; Append panics otherwise, because an out-of-order
// trace means the simulation loop recorded outside its step.
type Series struct {
	name    string
	unit    string
	samples []Sample
}

// NewSeries creates an empty series with a display name and unit label.
func NewSeries(name, unit string) *Series {
	return &Series{name: name, unit: unit}
}

// Name returns the display name.
func (s *Series) Name() string { return s.name }

// Unit returns the unit label.
func (s *Series) Unit() string { return s.unit }

// appendChunk is the minimum capacity Append grows a series to. A 10 Hz
// simulation trace accumulates thousands of samples per series; growing in
// large doubling chunks instead of the runtime's default schedule keeps
// regrowth copies rare enough that the simulation inner loop is
// allocation-free in the amortized sense (at most one growth per 1024+
// appends).
const appendChunk = 1024

// Append records a sample. It panics if at precedes the last recorded time.
func (s *Series) Append(at time.Duration, v float64) {
	if n := len(s.samples); n > 0 && at < s.samples[n-1].At {
		panic(fmt.Sprintf("trace: out-of-order sample at %v after %v in %q", at, s.samples[n-1].At, s.name))
	}
	if len(s.samples) == cap(s.samples) {
		next := 2 * cap(s.samples)
		if next < appendChunk {
			next = appendChunk
		}
		grown := make([]Sample, len(s.samples), next)
		copy(grown, s.samples)
		s.samples = grown
	}
	s.samples = append(s.samples, Sample{At: at, Value: v})
}

// Len returns the number of samples.
func (s *Series) Len() int { return len(s.samples) }

// Samples returns the underlying samples. The slice must not be mutated.
func (s *Series) Samples() []Sample { return s.samples }

// Values returns just the observed values, in time order.
func (s *Series) Values() []float64 {
	out := make([]float64, len(s.samples))
	for i, smp := range s.samples {
		out[i] = smp.Value
	}
	return out
}

// Window returns the samples with from <= At < to.
func (s *Series) Window(from, to time.Duration) []Sample {
	lo := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At >= from })
	hi := sort.Search(len(s.samples), func(i int) bool { return s.samples[i].At >= to })
	return s.samples[lo:hi]
}

// MeanOver returns the time-weighted mean value across [from, to), treating
// each sample as holding until the next. An empty window returns 0.
func (s *Series) MeanOver(from, to time.Duration) float64 {
	w := s.Window(from, to)
	if len(w) == 0 {
		return 0
	}
	var weighted float64
	var total time.Duration
	for i, smp := range w {
		end := to
		if i+1 < len(w) {
			end = w[i+1].At
		}
		hold := end - smp.At
		weighted += smp.Value * hold.Seconds()
		total += hold
	}
	if total == 0 {
		return w[0].Value
	}
	return weighted / total.Seconds()
}

// Last returns the most recent sample. ok is false for an empty series.
func (s *Series) Last() (Sample, bool) {
	if len(s.samples) == 0 {
		return Sample{}, false
	}
	return s.samples[len(s.samples)-1], true
}

// Max returns the largest observed value; 0 for an empty series.
func (s *Series) Max() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return stats.Max(s.Values())
}

// Min returns the smallest observed value; 0 for an empty series.
func (s *Series) Min() float64 {
	if len(s.samples) == 0 {
		return 0
	}
	return stats.Min(s.Values())
}

// Histogram bins every sample value into the given range — how the paper
// builds its "time spent at frequency/temperature" distributions.
func (s *Series) Histogram(lo, hi float64, bins int) *stats.Histogram {
	h := stats.NewHistogram(lo, hi, bins)
	for _, smp := range s.samples {
		h.Add(smp.Value)
	}
	return h
}

// Downsample returns at most n samples spaced evenly through the series,
// always including the first and last — enough to plot a figure without
// hauling the full 10 Hz trace around.
func (s *Series) Downsample(n int) []Sample {
	if n <= 0 || len(s.samples) == 0 {
		return nil
	}
	if len(s.samples) <= n {
		return append([]Sample(nil), s.samples...)
	}
	out := make([]Sample, 0, n)
	step := float64(len(s.samples)-1) / float64(n-1)
	for i := 0; i < n; i++ {
		out = append(out, s.samples[int(float64(i)*step+0.5)])
	}
	out[n-1] = s.samples[len(s.samples)-1]
	return out
}

// Recorder gathers several named series under one experiment run.
type Recorder struct {
	order  []string
	series map[string]*Series
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder {
	return &Recorder{series: make(map[string]*Series)}
}

// Series returns the series with the given name, creating it (with the given
// unit) on first use. Requesting an existing series with a different unit
// panics — it means two subsystems are fighting over a name.
func (r *Recorder) Series(name, unit string) *Series {
	if s, ok := r.series[name]; ok {
		if s.unit != unit {
			panic(fmt.Sprintf("trace: series %q requested with unit %q but exists with %q", name, unit, s.unit))
		}
		return s
	}
	s := NewSeries(name, unit)
	r.series[name] = s
	r.order = append(r.order, name)
	return s
}

// Names returns the series names in creation order.
func (r *Recorder) Names() []string { return append([]string(nil), r.order...) }

// Lookup returns a series if it exists.
func (r *Recorder) Lookup(name string) (*Series, bool) {
	s, ok := r.series[name]
	return s, ok
}

// WriteCSV emits all series as aligned CSV: a time column (seconds) followed
// by one column per series. Series are sampled at each distinct timestamp
// present anywhere; a series without a sample at a timestamp holds its
// previous value (empty until its first sample).
func (r *Recorder) WriteCSV(w io.Writer) error {
	// Collect distinct timestamps.
	set := make(map[time.Duration]struct{})
	for _, s := range r.series {
		for _, smp := range s.samples {
			set[smp.At] = struct{}{}
		}
	}
	times := make([]time.Duration, 0, len(set))
	for t := range set {
		times = append(times, t)
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })

	header := []string{"t_seconds"}
	for _, name := range r.order {
		header = append(header, fmt.Sprintf("%s_%s", sanitize(name), sanitize(r.series[name].unit)))
	}
	if _, err := fmt.Fprintln(w, strings.Join(header, ",")); err != nil {
		return err
	}
	idx := make(map[string]int, len(r.order))
	for _, t := range times {
		row := []string{fmt.Sprintf("%.3f", t.Seconds())}
		for _, name := range r.order {
			s := r.series[name]
			i := idx[name]
			for i < len(s.samples) && s.samples[i].At <= t {
				i++
			}
			idx[name] = i
			if i == 0 {
				row = append(row, "")
			} else {
				row = append(row, fmt.Sprintf("%.4f", s.samples[i-1].Value))
			}
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}

func sanitize(s string) string {
	return strings.Map(func(r rune) rune {
		switch r {
		case ',', '\n', '\r':
			return '_'
		}
		return r
	}, s)
}
