package trace

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestSeriesAppendAndValues(t *testing.T) {
	s := NewSeries("temp", "C")
	s.Append(0, 26)
	s.Append(time.Second, 27)
	s.Append(2*time.Second, 28)
	if s.Len() != 3 {
		t.Fatalf("Len = %d", s.Len())
	}
	vals := s.Values()
	if vals[0] != 26 || vals[2] != 28 {
		t.Errorf("Values = %v", vals)
	}
	if s.Name() != "temp" || s.Unit() != "C" {
		t.Errorf("metadata wrong: %q %q", s.Name(), s.Unit())
	}
}

func TestSeriesEqualTimestampsAllowed(t *testing.T) {
	s := NewSeries("x", "")
	s.Append(time.Second, 1)
	s.Append(time.Second, 2) // same instant is fine (two events in one step)
	if s.Len() != 2 {
		t.Errorf("Len = %d", s.Len())
	}
}

func TestSeriesOutOfOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("out-of-order Append did not panic")
		}
	}()
	s := NewSeries("x", "")
	s.Append(2*time.Second, 1)
	s.Append(time.Second, 2)
}

func TestWindow(t *testing.T) {
	s := NewSeries("x", "")
	for i := 0; i < 10; i++ {
		s.Append(time.Duration(i)*time.Second, float64(i))
	}
	w := s.Window(3*time.Second, 6*time.Second)
	if len(w) != 3 {
		t.Fatalf("window length = %d, want 3", len(w))
	}
	if w[0].Value != 3 || w[2].Value != 5 {
		t.Errorf("window = %v", w)
	}
	if got := s.Window(20*time.Second, 30*time.Second); len(got) != 0 {
		t.Errorf("empty window returned %v", got)
	}
}

func TestMeanOverTimeWeighted(t *testing.T) {
	s := NewSeries("f", "MHz")
	// 1000 MHz for 1s, then 500 MHz for 3s → time-weighted mean 625.
	s.Append(0, 1000)
	s.Append(time.Second, 500)
	got := s.MeanOver(0, 4*time.Second)
	if math.Abs(got-625) > 1e-9 {
		t.Errorf("MeanOver = %v, want 625", got)
	}
}

func TestMeanOverEmpty(t *testing.T) {
	s := NewSeries("f", "MHz")
	if got := s.MeanOver(0, time.Second); got != 0 {
		t.Errorf("MeanOver empty = %v", got)
	}
}

func TestLastMinMax(t *testing.T) {
	s := NewSeries("x", "")
	if _, ok := s.Last(); ok {
		t.Error("Last on empty returned ok")
	}
	s.Append(0, 5)
	s.Append(time.Second, 2)
	s.Append(2*time.Second, 9)
	last, ok := s.Last()
	if !ok || last.Value != 9 {
		t.Errorf("Last = %v, %v", last, ok)
	}
	if s.Min() != 2 || s.Max() != 9 {
		t.Errorf("Min/Max = %v/%v", s.Min(), s.Max())
	}
}

func TestHistogramFromSeries(t *testing.T) {
	s := NewSeries("freq", "MHz")
	for i := 0; i < 50; i++ {
		s.Append(time.Duration(i)*time.Second, 1000)
	}
	for i := 50; i < 100; i++ {
		s.Append(time.Duration(i)*time.Second, 2000)
	}
	h := s.Histogram(0, 2500, 5)
	bins := h.Bins()
	if bins[2].Count != 50 { // [1000,1500)
		t.Errorf("bin2 = %d, want 50", bins[2].Count)
	}
	if bins[4].Count != 50 { // [2000,2500)
		t.Errorf("bin4 = %d, want 50", bins[4].Count)
	}
}

func TestDownsample(t *testing.T) {
	s := NewSeries("x", "")
	for i := 0; i < 1000; i++ {
		s.Append(time.Duration(i)*time.Millisecond, float64(i))
	}
	d := s.Downsample(10)
	if len(d) != 10 {
		t.Fatalf("downsampled to %d, want 10", len(d))
	}
	if d[0].Value != 0 {
		t.Errorf("first = %v, want 0", d[0].Value)
	}
	if d[9].Value != 999 {
		t.Errorf("last = %v, want 999", d[9].Value)
	}
	// Short series passes through.
	short := NewSeries("y", "")
	short.Append(0, 1)
	if got := short.Downsample(10); len(got) != 1 {
		t.Errorf("short downsample = %v", got)
	}
	if got := s.Downsample(0); got != nil {
		t.Errorf("n=0 downsample = %v", got)
	}
}

func TestRecorderSeriesIdentity(t *testing.T) {
	r := NewRecorder()
	a := r.Series("temp", "C")
	b := r.Series("temp", "C")
	if a != b {
		t.Error("same name returned distinct series")
	}
	names := r.Names()
	if len(names) != 1 || names[0] != "temp" {
		t.Errorf("Names = %v", names)
	}
	if _, ok := r.Lookup("temp"); !ok {
		t.Error("Lookup failed")
	}
	if _, ok := r.Lookup("nope"); ok {
		t.Error("Lookup of missing series succeeded")
	}
}

func TestRecorderUnitConflictPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("unit conflict did not panic")
		}
	}()
	r := NewRecorder()
	r.Series("temp", "C")
	r.Series("temp", "K")
}

func TestWriteCSV(t *testing.T) {
	r := NewRecorder()
	temp := r.Series("temp", "C")
	freq := r.Series("freq", "MHz")
	temp.Append(0, 26)
	freq.Append(0, 2265)
	temp.Append(time.Second, 27)
	freq.Append(2*time.Second, 1500)

	var b strings.Builder
	if err := r.WriteCSV(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 4 { // header + 3 distinct timestamps
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "t_seconds,temp_C,freq_MHz" {
		t.Errorf("header = %q", lines[0])
	}
	// At t=1s freq holds its previous value 2265.
	if !strings.Contains(lines[2], "2265") {
		t.Errorf("row at t=1s should hold freq 2265: %q", lines[2])
	}
	// At t=2s freq is 1500.
	if !strings.Contains(lines[3], "1500") {
		t.Errorf("row at t=2s should show 1500: %q", lines[3])
	}
}

func TestWriteCSVEmptyLeadingCells(t *testing.T) {
	r := NewRecorder()
	a := r.Series("a", "")
	bz := r.Series("b", "")
	bz.Append(0, 1)
	a.Append(time.Second, 5)
	var sb strings.Builder
	if err := r.WriteCSV(&sb); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(sb.String()), "\n")
	// Row at t=0: a has no sample yet → empty cell.
	if !strings.HasPrefix(lines[1], "0.000,,") {
		t.Errorf("row0 = %q, want empty leading a cell", lines[1])
	}
}
