package trace

import (
	"testing"
	"time"
)

// TestAppendChunkedGrowth pins the storage-growth policy: capacity jumps
// straight to the chunk floor and doubles from there, so a long 10 Hz run
// reallocates only a handful of times instead of following the runtime's
// default append schedule.
func TestAppendChunkedGrowth(t *testing.T) {
	s := NewSeries("x", "u")
	grows := 0
	lastCap := cap(s.samples)
	const n = 10_000
	for i := 0; i < n; i++ {
		s.Append(time.Duration(i)*time.Millisecond, float64(i))
		if c := cap(s.samples); c != lastCap {
			grows++
			lastCap = c
		}
	}
	if s.Len() != n {
		t.Fatalf("Len = %d, want %d", s.Len(), n)
	}
	if cap(s.samples) < appendChunk {
		t.Errorf("capacity %d below chunk floor %d", cap(s.samples), appendChunk)
	}
	// 1024 → 2048 → 4096 → 8192 → 16384: five growths for 10k samples.
	if grows > 5 {
		t.Errorf("%d samples took %d regrowths, want ≤ 5", n, grows)
	}
	// Integrity across regrowth copies.
	for i, smp := range s.Samples() {
		if smp.Value != float64(i) {
			t.Fatalf("sample %d = %v after regrowth", i, smp.Value)
		}
	}
}
