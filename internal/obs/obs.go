// Package obs is the service stack's observability layer: a
// zero-dependency typed metrics registry (atomic counters, gauges and
// fixed-bucket latency histograms with Prometheus text-format
// exposition), a lightweight per-submission tracing facility, and the
// bucket math that makes p50/p95/p99 derivable from a scrape.
//
// The paper's core claim is metrological — ACCUBENCH is trustworthy
// because its measurement error is quantified, not assumed — and the
// crowd service holds itself to the same standard: the infrastructure
// that measures devices must expose its own overhead and variability.
// Every component of the crowd stack (ingest pipeline, sharded store,
// WAL, HTTP layer) registers its counters and latency histograms here,
// and GET /metrics renders the registry; internal/server wires it all
// together and docs/METRICS.md is the reference for every name.
//
// Three tools live in this package:
//
//   - Registry — named metrics behind one exposition surface. Counters
//     and gauges are single atomics; Func bridges pre-existing counter
//     sources (store sizes, WAL counters) into the registry without
//     changing their ownership; the *Vec variants add one label
//     dimension (per-route, per-stage, per-shard).
//   - Histogram — fixed upper-bound buckets, lock-free Observe, and
//     Quantile estimation by linear interpolation inside the winning
//     bucket. Exposed in Prometheus histogram text format plus derived
//     _p50/_p95/_p99 convenience gauges (so `curl /metrics | grep p99`
//     answers the latency question directly).
//   - Tracer — per-submission span events as structured JSON lines,
//     enabled by handing it a writer (crowdd's -trace flag). Disabled
//     tracers cost one predictable branch per stage.
package obs

import (
	"fmt"
	"sync"
)

// Registry holds named metrics behind one exposition surface. Metric
// constructors are idempotent: asking for an existing name returns the
// existing metric, so independently initialized components can share a
// registry without coordination. The zero value is not usable; use
// NewRegistry.
type Registry struct {
	prefix string

	mu      sync.Mutex
	metrics map[string]metric
}

// metric is anything the registry can expose. Implementations append
// complete exposition lines (HELP/TYPE plus samples) for their
// fully-prefixed name.
type metric interface {
	expose(b []byte, name string) []byte
}

// NewRegistry creates a registry. Every registered name is exposed with
// the prefix prepended (e.g. prefix "crowdd_" turns "received_total"
// into "crowdd_received_total").
func NewRegistry(prefix string) *Registry {
	return &Registry{prefix: prefix, metrics: make(map[string]metric)}
}

// register returns the existing metric under name if its type matches,
// stores the fallback otherwise. A name reused across metric types is a
// programming error and panics.
func (r *Registry) register(name string, make func() metric) metric {
	if r == nil {
		return make()
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.metrics[name]; ok {
		return m
	}
	m := make()
	r.metrics[name] = m
	return m
}

// Counter returns the registered monotonic counter, creating it on
// first use.
func (r *Registry) Counter(name, help string) *Counter {
	m := r.register(name, func() metric { return &Counter{help: help} })
	c, ok := m.(*Counter)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a Counter", name, m))
	}
	return c
}

// Gauge returns the registered gauge, creating it on first use.
func (r *Registry) Gauge(name, help string) *Gauge {
	m := r.register(name, func() metric { return &Gauge{help: help} })
	g, ok := m.(*Gauge)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a Gauge", name, m))
	}
	return g
}

// Func registers an integer-valued metric whose value is read from fn
// at exposition time — the bridge for counters owned elsewhere (store
// sizes, WAL activity, recovery reports). typ is the exposed TYPE line:
// "counter" or "gauge".
func (r *Registry) Func(name, help, typ string, fn func() uint64) {
	r.register(name, func() metric { return &funcMetric{help: help, typ: typ, fn: fn} })
}

// Histogram returns the registered histogram, creating it on first use
// with the given upper bucket bounds (see NewHistogram).
func (r *Registry) Histogram(name, help string, buckets []float64) *Histogram {
	m := r.register(name, func() metric { return newHistogram(help, buckets) })
	h, ok := m.(*Histogram)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a Histogram", name, m))
	}
	return h
}

// CounterVec returns the registered counter family keyed by one label,
// creating it on first use.
func (r *Registry) CounterVec(name, help, label string) *CounterVec {
	m := r.register(name, func() metric {
		return &CounterVec{help: help, label: label, children: make(map[string]*Counter)}
	})
	v, ok := m.(*CounterVec)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a CounterVec", name, m))
	}
	return v
}

// GaugeVec returns the registered gauge family keyed by one label,
// creating it on first use.
func (r *Registry) GaugeVec(name, help, label string) *GaugeVec {
	m := r.register(name, func() metric {
		return &GaugeVec{help: help, label: label, children: make(map[string]*Gauge)}
	})
	v, ok := m.(*GaugeVec)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a GaugeVec", name, m))
	}
	return v
}

// HistogramVec returns the registered histogram family keyed by one
// label, creating it on first use.
func (r *Registry) HistogramVec(name, help, label string, buckets []float64) *HistogramVec {
	m := r.register(name, func() metric {
		return &HistogramVec{help: help, label: label, buckets: buckets, children: make(map[string]*Histogram)}
	})
	v, ok := m.(*HistogramVec)
	if !ok {
		panic(fmt.Sprintf("obs: %q already registered as %T, not a HistogramVec", name, m))
	}
	return v
}
