package obs_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"sync"
	"testing"
	"time"

	"accubench/internal/obs"
	"accubench/internal/testkit"
)

// TestCountersConcurrent hammers one counter and one gauge from many
// goroutines; run under -race this is the data-race check, and the
// totals pin that no increment is ever lost.
func TestCountersConcurrent(t *testing.T) {
	reg := obs.NewRegistry("")
	c := reg.Counter("hits_total", "test counter")
	g := reg.Gauge("depth", "test gauge")
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				g.Add(-1)
			}
		}()
	}
	wg.Wait()
	if got := c.Value(); got != workers*per {
		t.Errorf("counter = %d after %d increments", got, workers*per)
	}
	if got := g.Value(); got != 0 {
		t.Errorf("gauge = %d after balanced adds, want 0", got)
	}
}

// TestHistogramBucketBoundaries pins the Prometheus bucket semantics:
// an observation equal to an upper bound lands in that bucket (le is
// inclusive), values between bounds land in the next bucket up, and
// values above every bound land in +Inf.
func TestHistogramBucketBoundaries(t *testing.T) {
	h := obs.NewHistogram([]float64{1, 2, 5})
	for _, v := range []float64{1, 1.5, 2, 5, 6} {
		h.Observe(v)
	}
	upper, counts := h.Buckets()
	if want := []float64{1, 2, 5}; len(upper) != 3 || upper[0] != 1 || upper[1] != 2 || upper[2] != 5 {
		t.Fatalf("upper bounds = %v, want %v", upper, want)
	}
	// 1 → le=1; 1.5 and 2 → le=2; 5 → le=5; 6 → +Inf.
	want := []uint64{1, 2, 1, 1}
	for i := range want {
		if counts[i] != want[i] {
			t.Errorf("bucket %d holds %d, want %d (counts %v)", i, counts[i], want[i], counts)
		}
	}
	if h.Count() != 5 {
		t.Errorf("count = %d, want 5", h.Count())
	}
	if got, want := h.Sum(), 1+1.5+2+5+6.0; got != want {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

// TestHistogramConcurrent asserts the histogram's conservation law under
// contention: however the atomics interleave, every observation lands in
// exactly one bucket, so the bucket counts sum to Count and the sum
// matches the injected total.
func TestHistogramConcurrent(t *testing.T) {
	h := obs.NewHistogram(obs.DurationBuckets)
	const workers, per = 8, 5_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				// Deterministic spread across several decades.
				h.Observe(float64(seed+1) * 1e-6 * float64(i%1000+1))
			}
		}(w)
	}
	wg.Wait()
	if got := h.Count(); got != workers*per {
		t.Fatalf("count = %d, want %d", got, workers*per)
	}
	_, counts := h.Buckets()
	var sum uint64
	for _, c := range counts {
		sum += c
	}
	if sum != h.Count() {
		t.Errorf("bucket counts sum to %d, count says %d — an observation escaped", sum, h.Count())
	}
	var want float64
	for w := 0; w < workers; w++ {
		for i := 0; i < per; i++ {
			want += float64(w+1) * 1e-6 * float64(i%1000+1)
		}
	}
	if got := h.Sum(); got < want*0.999999 || got > want*1.000001 {
		t.Errorf("sum = %g, want %g", got, want)
	}
}

// TestHistogramQuantile pins the estimator: linear interpolation inside
// the winning bucket, zero with no observations, and +Inf clamping to
// the highest finite bound.
func TestHistogramQuantile(t *testing.T) {
	h := obs.NewHistogram([]float64{1, 2, 4})
	if got := h.Quantile(0.99); got != 0 {
		t.Errorf("empty histogram p99 = %g, want 0", got)
	}
	// 100 observations uniformly landing in (0, 1]: the p50 estimate
	// interpolates to the middle of the first bucket.
	for i := 0; i < 100; i++ {
		h.Observe(0.5)
	}
	if got := h.Quantile(0.5); got != 0.5 {
		t.Errorf("p50 of 100 first-bucket observations = %g, want 0.5", got)
	}
	if got := h.Quantile(1); got != 1 {
		t.Errorf("p100 = %g, want the first bucket's bound 1", got)
	}

	over := obs.NewHistogram([]float64{1, 2, 4})
	for i := 0; i < 10; i++ {
		over.Observe(100) // all land in +Inf
	}
	if got := over.Quantile(0.99); got != 4 {
		t.Errorf("p99 of an all-overflow histogram = %g, want the highest finite bound 4", got)
	}
}

// TestRegistryIdempotentAndTyped pins the registration contract: the
// same name returns the same metric, and reusing a name across metric
// types panics rather than silently splitting the series.
func TestRegistryIdempotentAndTyped(t *testing.T) {
	reg := obs.NewRegistry("x_")
	a := reg.Counter("n_total", "first")
	b := reg.Counter("n_total", "second")
	if a != b {
		t.Error("same-name Counter calls returned different metrics")
	}
	defer func() {
		if recover() == nil {
			t.Error("re-registering a counter name as a gauge did not panic")
		}
	}()
	reg.Gauge("n_total", "wrong type")
}

// TestVecConcurrent resolves vec children from many goroutines — half
// hitting one shared label, half their own — and checks nothing is lost
// or duplicated.
func TestVecConcurrent(t *testing.T) {
	reg := obs.NewRegistry("")
	vec := reg.CounterVec("per_route_total", "test vec", "route")
	const workers, per = 8, 2_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := vec.With(fmt.Sprintf("own-%d", w))
			shared := vec.With("shared")
			for i := 0; i < per; i++ {
				own.Inc()
				shared.Inc()
			}
		}(w)
	}
	wg.Wait()
	if got := vec.With("shared").Value(); got != workers*per {
		t.Errorf("shared child = %d, want %d", got, workers*per)
	}
	for w := 0; w < workers; w++ {
		if got := vec.With(fmt.Sprintf("own-%d", w)).Value(); got != per {
			t.Errorf("own-%d child = %d, want %d", w, got, per)
		}
	}
}

// TestExpositionGolden pins the exposition format byte-for-byte: HELP
// and TYPE headers, name prefixing, sorted output, cumulative histogram
// buckets with derived quantiles, label escaping. Regenerate with
// `go test -update` and review the diff.
func TestExpositionGolden(t *testing.T) {
	reg := obs.NewRegistry("t_")
	reg.Counter("uploads_total", "uploads seen").Add(42)
	reg.Gauge("queue_depth", "intake occupancy").Set(-3)
	reg.Func("bridged_total", "a counter owned elsewhere", "counter", func() uint64 { return 7 })
	cv := reg.CounterVec("per_route_total", "requests per route", "route")
	cv.With("GET /v1/bins").Add(2)
	cv.With(`quo"te\pa` + "\n" + `th`).Inc()
	gv := reg.GaugeVec("shard_records", "records per shard", "shard")
	gv.With("0").Set(5)
	gv.With("1").Set(9)
	h := reg.Histogram("stage_seconds", "stage latency", []float64{0.001, 0.01, 0.1})
	for _, v := range []float64{0.0005, 0.002, 0.002, 0.05, 3} {
		h.Observe(v)
	}
	hv := reg.HistogramVec("batch", "batch sizes", "kind", []float64{1, 10})
	hv.With("fsync").Observe(4)

	var buf bytes.Buffer
	if _, err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	testkit.Golden(t, "exposition", buf.Bytes())
}

// TestTracer pins the span wire format and the disabled-tracer contract.
func TestTracer(t *testing.T) {
	var buf bytes.Buffer
	tr := obs.NewTracer(&buf)
	if !tr.Enabled() {
		t.Fatal("tracer over a writer reports disabled")
	}
	id := tr.NewTrace()
	if id != "t-00000001" {
		t.Errorf("first trace ID = %q, want t-00000001", id)
	}
	start := time.UnixMicro(1_700_000_000_000_000)
	tr.Emit(obs.Span{Trace: id, Name: "decode", Device: "d-1", Model: "Nexus 5", Seq: 12}, start, 1500*time.Microsecond)
	tr.Emit(obs.Span{Trace: id, Name: "filter", Err: fmt.Errorf("too hot")}, start, time.Millisecond)

	var ev obs.SpanEvent
	lines := bytes.Split(bytes.TrimSpace(buf.Bytes()), []byte("\n"))
	if len(lines) != 2 {
		t.Fatalf("emitted %d lines, want 2:\n%s", len(lines), buf.String())
	}
	if err := json.Unmarshal(lines[0], &ev); err != nil {
		t.Fatalf("span line is not JSON: %v", err)
	}
	want := obs.SpanEvent{Trace: id, Span: "decode", StartUS: start.UnixMicro(), DurUS: 1500, Device: "d-1", Model: "Nexus 5", Seq: 12}
	if ev != want {
		t.Errorf("span event = %+v, want %+v", ev, want)
	}
	if err := json.Unmarshal(lines[1], &ev); err != nil {
		t.Fatal(err)
	}
	if ev.Err != "too hot" {
		t.Errorf("error span carries %q, want \"too hot\"", ev.Err)
	}

	off := obs.NewTracer(nil)
	if off.Enabled() {
		t.Error("nil-writer tracer reports enabled")
	}
	if id := off.NewTrace(); id != "" {
		t.Errorf("disabled tracer allocated trace ID %q", id)
	}
	off.Emit(obs.Span{Trace: "t-zombie", Name: "decode"}, time.Now(), 0) // must not panic
}

// TestExpositionHistogramInvariant runs the testkit structural checker
// over a live registry's exposition — the same invariant the e2e suite
// asserts against /metrics.
func TestExpositionHistogramInvariant(t *testing.T) {
	reg := obs.NewRegistry("inv_")
	h := reg.Histogram("lat_seconds", "latency", obs.DurationBuckets)
	for i := 0; i < 1000; i++ {
		h.Observe(float64(i) * 1e-5)
	}
	var buf bytes.Buffer
	if _, err := reg.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	testkit.CheckHistogramExposition(t, buf.String())
}
