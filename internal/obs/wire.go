package obs

// WireMetrics is the binary streaming-ingest metric family (the
// POST /v1/stream path, internal/wire), registered as one unit so
// internal/server's handlers share handles and docs/METRICS.md stays
// the single naming reference. All series carry the registry prefix
// (crowdd_ in production).
type WireMetrics struct {
	// Streams counts stream connections accepted.
	Streams *Counter
	// StreamsActive gauges streams currently open.
	StreamsActive *Gauge
	// Frames counts frames read successfully off streams.
	Frames *Counter
	// BadFrames counts frames refused: CRC mismatch, torn mid-stream,
	// oversized length prefix, wrong type, or an undecodable batch
	// payload. A bad frame terminates its stream — framing can no
	// longer be trusted.
	BadFrames *Counter
	// Batches counts batch frames whose submissions decoded.
	Batches *Counter
	// Submissions counts submissions carried inside those batches.
	Submissions *Counter
	// Acks counts ack frames written back.
	Acks *Counter
	// ForwardedBatches counts sub-batches proxied to their model's
	// shard primary as one-shot wire POSTs.
	ForwardedBatches *Counter
	// ForwardFallbacks counts sub-batches ingested locally because
	// their shard primary was unreachable.
	ForwardFallbacks *Counter
	// Unreplicated counts batches acked with an error because no
	// replica acknowledged inside the window (records stay durable
	// locally; the client retries).
	Unreplicated *Counter
	// BatchSize is the distribution of submissions per batch frame.
	BatchSize *Histogram
	// AckLatency is the distribution of batch commit latency: frame
	// decoded to ack written (replication wait included in cluster
	// mode).
	AckLatency *Histogram
}

// NewWireMetrics registers the wire-protocol series on the registry.
func NewWireMetrics(reg *Registry) *WireMetrics {
	return &WireMetrics{
		Streams:          reg.Counter("wire_streams_total", "binary ingest streams accepted"),
		StreamsActive:    reg.Gauge("wire_streams_active", "binary ingest streams currently open"),
		Frames:           reg.Counter("wire_frames_total", "frames read off binary ingest streams"),
		BadFrames:        reg.Counter("wire_bad_frames_total", "frames refused (CRC mismatch, torn, oversized, or undecodable)"),
		Batches:          reg.Counter("wire_batches_total", "batch frames whose submissions decoded"),
		Submissions:      reg.Counter("wire_submissions_total", "submissions carried in batch frames"),
		Acks:             reg.Counter("wire_acks_total", "ack frames written back to streams"),
		ForwardedBatches: reg.Counter("wire_forwarded_batches_total", "sub-batches proxied to their shard primary"),
		ForwardFallbacks: reg.Counter("wire_forward_fallbacks_total", "sub-batches ingested locally with the primary unreachable"),
		Unreplicated:     reg.Counter("wire_unreplicated_batches_total", "batches acked with an error awaiting replication"),
		BatchSize:        reg.Histogram("wire_batch_size", "submissions per batch frame", SizeBuckets),
		AckLatency:       reg.Histogram("wire_ack_seconds", "batch commit latency, frame decoded to ack written", DurationBuckets),
	}
}
