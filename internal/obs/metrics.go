package obs

import (
	"math"
	"sort"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing uint64 metric. All methods are
// safe for concurrent use.
type Counter struct {
	help string
	v    atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable int64 metric. All methods are safe for concurrent
// use.
type Gauge struct {
	help string
	v    atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(v int64) { g.v.Store(v) }

// Add moves the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta int64) { g.v.Add(delta) }

// Value returns the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// funcMetric is a read-at-exposition bridge for counters owned outside
// the registry.
type funcMetric struct {
	help string
	typ  string
	fn   func() uint64
}

// DurationBuckets is the default upper-bound ladder for latency
// histograms observed in seconds: 1 µs to 2.5 s in a 1–2.5–5 decade
// pattern, wide enough to hold both a lock-free decode (~µs) and a
// group-committed fsync (~ms) without rescaling.
var DurationBuckets = []float64{
	1e-6, 2.5e-6, 5e-6,
	1e-5, 2.5e-5, 5e-5,
	1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3,
	1e-2, 2.5e-2, 5e-2,
	0.1, 0.25, 0.5,
	1, 2.5,
}

// SizeBuckets is the default upper-bound ladder for count-valued
// histograms (batch sizes, queue depths): powers of two from 1 to 1024.
var SizeBuckets = []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}

// Histogram is a fixed-bucket histogram: Observe is lock-free (one
// atomic add per bucket plus a CAS loop for the sum), and quantiles are
// estimated from the bucket counts. Buckets follow Prometheus
// semantics: an observation v lands in the first bucket whose upper
// bound is >= v, and exposition renders cumulative counts with
// `le="bound"` labels plus an implicit +Inf overflow bucket.
type Histogram struct {
	help   string
	upper  []float64       // ascending finite upper bounds
	counts []atomic.Uint64 // len(upper)+1; last is the +Inf overflow
	count  atomic.Uint64
	sum    atomic.Uint64 // float64 bits
}

func newHistogram(help string, buckets []float64) *Histogram {
	upper := append([]float64(nil), buckets...)
	sort.Float64s(upper)
	if len(upper) == 0 {
		upper = append(upper, DurationBuckets...)
	}
	return &Histogram{
		help:   help,
		upper:  upper,
		counts: make([]atomic.Uint64, len(upper)+1),
	}
}

// NewHistogram creates a standalone histogram (unregistered — tests,
// ad-hoc measurement). buckets are the finite upper bounds; nil selects
// DurationBuckets.
func NewHistogram(buckets []float64) *Histogram { return newHistogram("", buckets) }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	// First bucket whose upper bound is >= v; all above land in +Inf.
	i := sort.SearchFloat64s(h.upper, v)
	h.counts[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		nxt := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, nxt) {
			return
		}
	}
}

// Count returns how many values were observed.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the total of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// Buckets returns the finite upper bounds and a snapshot of the
// per-bucket (non-cumulative) counts; counts has one extra entry for
// the +Inf overflow bucket.
func (h *Histogram) Buckets() (upper []float64, counts []uint64) {
	counts = make([]uint64, len(h.counts))
	for i := range h.counts {
		counts[i] = h.counts[i].Load()
	}
	return h.upper, counts
}

// Quantile estimates the p-quantile (0 < p <= 1) by linear
// interpolation inside the winning bucket — the same estimate a
// Prometheus histogram_quantile() gives. Returns 0 with no
// observations; values in the +Inf bucket clamp to the highest finite
// bound.
func (h *Histogram) Quantile(p float64) float64 {
	_, counts := h.Buckets()
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total == 0 {
		return 0
	}
	rank := p * float64(total)
	var cum uint64
	for i, c := range counts {
		cum += c
		if float64(cum) < rank {
			continue
		}
		if i == len(h.upper) { // +Inf bucket
			return h.upper[len(h.upper)-1]
		}
		lo := 0.0
		if i > 0 {
			lo = h.upper[i-1]
		}
		if c == 0 {
			return h.upper[i]
		}
		frac := (rank - float64(cum-c)) / float64(c)
		return lo + frac*(h.upper[i]-lo)
	}
	return h.upper[len(h.upper)-1]
}

// CounterVec is a family of counters keyed by one label value.
type CounterVec struct {
	help  string
	label string

	mu       sync.RWMutex
	children map[string]*Counter
}

// With returns the counter for the label value, creating it on first
// use. Resolve once and keep the handle on hot paths.
func (v *CounterVec) With(value string) *Counter {
	v.mu.RLock()
	c, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return c
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if c, ok = v.children[value]; ok {
		return c
	}
	c = &Counter{}
	v.children[value] = c
	return c
}

// GaugeVec is a family of gauges keyed by one label value.
type GaugeVec struct {
	help  string
	label string

	mu       sync.RWMutex
	children map[string]*Gauge
}

// With returns the gauge for the label value, creating it on first use.
func (v *GaugeVec) With(value string) *Gauge {
	v.mu.RLock()
	g, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return g
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if g, ok = v.children[value]; ok {
		return g
	}
	g = &Gauge{}
	v.children[value] = g
	return g
}

// HistogramVec is a family of histograms keyed by one label value,
// sharing one bucket ladder.
type HistogramVec struct {
	help    string
	label   string
	buckets []float64

	mu       sync.RWMutex
	children map[string]*Histogram
}

// With returns the histogram for the label value, creating it on first
// use. Resolve once and keep the handle on hot paths.
func (v *HistogramVec) With(value string) *Histogram {
	v.mu.RLock()
	h, ok := v.children[value]
	v.mu.RUnlock()
	if ok {
		return h
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	if h, ok = v.children[value]; ok {
		return h
	}
	h = newHistogram("", v.buckets)
	v.children[value] = h
	return h
}
