package obs

// ReplicationMetrics is the cluster subsystem's metric family, registered
// as one unit so internal/replication and internal/server share handles
// (and docs/METRICS.md stays the single naming reference). All series
// carry the registry prefix (crowdd_ in production).
type ReplicationMetrics struct {
	// ShipBatches counts replication batches POSTed to peers.
	ShipBatches *Counter
	// ShipRecords counts records shipped inside those batches.
	ShipRecords *Counter
	// ShipErrors counts batch POSTs that failed (retried, then left to
	// anti-entropy).
	ShipErrors *Counter
	// ShipDropped counts records dropped from a full ship queue — a
	// far-behind peer; anti-entropy repairs them.
	ShipDropped *Counter
	// Applied counts remote records committed locally via /v1/replicate
	// or a reconcile pull.
	Applied *Counter
	// ApplyDups counts remote records skipped as already held — a live
	// ship racing an anti-entropy pull, or a peer re-shipping.
	ApplyDups *Counter
	// Forwarded counts submissions proxied to their shard primary.
	Forwarded *Counter
	// Redirected counts submissions answered with a 307 to the primary.
	Redirected *Counter
	// IngestFallback counts submissions ingested locally because the
	// shard primary was unreachable.
	IngestFallback *Counter
	// ForwardBodyFails counts proxied submissions whose response relay
	// broke mid-body; the client was answered with a 307 to the primary
	// instead of a truncated relay.
	ForwardBodyFails *Counter
	// AckTimeouts counts locally committed submissions whose replica
	// acknowledgement never arrived inside the window (the client gets a
	// 503 and retries; the record stays durable locally).
	AckTimeouts *Counter
	// ReconcileRounds counts anti-entropy rounds started.
	ReconcileRounds *Counter
	// ReconcileRepairs counts model repairs (a digest mismatch that
	// pulled records).
	ReconcileRepairs *Counter
	// ReconcilePulled counts records merged in by reconcile pulls.
	ReconcilePulled *Counter
	// SnapshotCatchups counts repairs big enough to count as
	// snapshot-shipping catch-up rather than incremental repair.
	SnapshotCatchups *Counter
	// ReconcileErrors counts reconcile exchanges that failed (peer down).
	ReconcileErrors *Counter
	// PeerPending gauges each peer's ship-queue depth.
	PeerPending *GaugeVec
	// PeerLagMS gauges each peer's replication lag: how long the oldest
	// unacknowledged record has been waiting, in milliseconds (0 when
	// caught up).
	PeerLagMS *GaugeVec
	// AckWait is the distribution of how long a submission's commit
	// waited for its replica acknowledgement.
	AckWait *Histogram
}

// NewReplicationMetrics registers the replication series on the
// registry.
func NewReplicationMetrics(reg *Registry) *ReplicationMetrics {
	return &ReplicationMetrics{
		ShipBatches:      reg.Counter("repl_ship_batches_total", "replication batches POSTed to peers"),
		ShipRecords:      reg.Counter("repl_ship_records_total", "records shipped to peers"),
		ShipErrors:       reg.Counter("repl_ship_errors_total", "replication batch POSTs that failed"),
		ShipDropped:      reg.Counter("repl_ship_dropped_total", "records dropped from a full ship queue (anti-entropy repairs them)"),
		Applied:          reg.Counter("repl_applied_total", "remote records committed locally"),
		ApplyDups:        reg.Counter("repl_apply_dups_total", "remote records skipped as already held"),
		Forwarded:        reg.Counter("repl_forwarded_total", "submissions proxied to their shard primary"),
		Redirected:       reg.Counter("repl_redirected_total", "submissions 307-redirected to their shard primary"),
		IngestFallback:   reg.Counter("repl_ingest_fallback_total", "submissions ingested locally with the primary unreachable"),
		ForwardBodyFails: reg.Counter("repl_forward_body_failures_total", "proxied submissions whose response relay broke mid-body (answered with a 307 to the primary)"),
		AckTimeouts:      reg.Counter("repl_ack_timeouts_total", "commits whose replica acknowledgement timed out"),
		ReconcileRounds:  reg.Counter("reconcile_rounds_total", "anti-entropy rounds started"),
		ReconcileRepairs: reg.Counter("reconcile_repairs_total", "model repairs after a digest mismatch"),
		ReconcilePulled:  reg.Counter("reconcile_pulled_total", "records merged in by reconcile pulls"),
		SnapshotCatchups: reg.Counter("reconcile_snapshot_catchups_total", "repairs large enough to count as snapshot catch-up"),
		ReconcileErrors:  reg.Counter("reconcile_errors_total", "reconcile exchanges that failed"),
		PeerPending:      reg.GaugeVec("repl_peer_pending", "ship-queue depth per peer", "peer"),
		PeerLagMS:        reg.GaugeVec("repl_peer_lag_ms", "replication lag per peer: age of the oldest unacknowledged record, ms", "peer"),
		AckWait:          reg.Histogram("repl_ack_wait_seconds", "time a commit waited for its replica acknowledgement", DurationBuckets),
	}
}
