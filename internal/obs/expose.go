package obs

import (
	"io"
	"sort"
	"strconv"
	"strings"
)

// WritePrometheus renders every registered metric in Prometheus text
// exposition format, sorted by metric name (then label value), so two
// scrapes of identical state are byte-identical. Histograms render the
// standard cumulative `_bucket{le=...}` / `_sum` / `_count` series plus
// derived `_p50` / `_p95` / `_p99` convenience gauges.
func (r *Registry) WritePrometheus(w io.Writer) (int, error) {
	r.mu.Lock()
	names := make([]string, 0, len(r.metrics))
	for name := range r.metrics {
		names = append(names, name)
	}
	sort.Strings(names)
	metrics := make([]metric, len(names))
	for i, name := range names {
		metrics[i] = r.metrics[name]
	}
	r.mu.Unlock()

	var b []byte
	for i, name := range names {
		b = metrics[i].expose(b, r.prefix+name)
	}
	return w.Write(b)
}

// header appends the optional HELP line and the TYPE line.
func header(b []byte, name, help, typ string) []byte {
	if help != "" {
		b = append(b, "# HELP "...)
		b = append(b, name...)
		b = append(b, ' ')
		b = append(b, help...)
		b = append(b, '\n')
	}
	b = append(b, "# TYPE "...)
	b = append(b, name...)
	b = append(b, ' ')
	b = append(b, typ...)
	b = append(b, '\n')
	return b
}

// sample appends one `name[{labels}] value` line; labels is the
// pre-rendered `key="value"` list or "".
func sample(b []byte, name, labels, value string) []byte {
	b = append(b, name...)
	if labels != "" {
		b = append(b, '{')
		b = append(b, labels...)
		b = append(b, '}')
	}
	b = append(b, ' ')
	b = append(b, value...)
	b = append(b, '\n')
	return b
}

// labelPair renders `key="value"` with promformat escaping.
func labelPair(key, value string) string {
	esc := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`).Replace(value)
	return key + `="` + esc + `"`
}

func formatUint(v uint64) string { return strconv.FormatUint(v, 10) }

func formatInt(v int64) string { return strconv.FormatInt(v, 10) }

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

func (c *Counter) expose(b []byte, name string) []byte {
	b = header(b, name, c.help, "counter")
	return sample(b, name, "", formatUint(c.Value()))
}

func (g *Gauge) expose(b []byte, name string) []byte {
	b = header(b, name, g.help, "gauge")
	return sample(b, name, "", formatInt(g.Value()))
}

func (f *funcMetric) expose(b []byte, name string) []byte {
	b = header(b, name, f.help, f.typ)
	return sample(b, name, "", formatUint(f.fn()))
}

// exposeSeries renders one histogram's sample lines under the given
// extra label prefix ("" or `key="value"`); the TYPE header is the
// caller's job so vec children share one.
func (h *Histogram) exposeSeries(b []byte, name, labels string) []byte {
	upper, counts := h.Buckets()
	join := func(extra string) string {
		if labels == "" {
			return extra
		}
		if extra == "" {
			return labels
		}
		return labels + "," + extra
	}
	var cum uint64
	for i, bound := range upper {
		cum += counts[i]
		b = sample(b, name+"_bucket", join(labelPair("le", formatFloat(bound))), formatUint(cum))
	}
	cum += counts[len(upper)]
	b = sample(b, name+"_bucket", join(labelPair("le", "+Inf")), formatUint(cum))
	b = sample(b, name+"_sum", labels, formatFloat(h.Sum()))
	b = sample(b, name+"_count", labels, formatUint(cum))
	for _, q := range [...]struct {
		suffix string
		p      float64
	}{{"_p50", 0.50}, {"_p95", 0.95}, {"_p99", 0.99}} {
		b = sample(b, name+q.suffix, labels, formatFloat(h.Quantile(q.p)))
	}
	return b
}

func (h *Histogram) expose(b []byte, name string) []byte {
	b = header(b, name, h.help, "histogram")
	return h.exposeSeries(b, name, "")
}

// sortedKeys returns the map's keys sorted — deterministic vec
// exposition order.
func sortedKeys[M ~map[string]V, V any](m M) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func (v *CounterVec) expose(b []byte, name string) []byte {
	b = header(b, name, v.help, "counter")
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, val := range sortedKeys(v.children) {
		b = sample(b, name, labelPair(v.label, val), formatUint(v.children[val].Value()))
	}
	return b
}

func (v *GaugeVec) expose(b []byte, name string) []byte {
	b = header(b, name, v.help, "gauge")
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, val := range sortedKeys(v.children) {
		b = sample(b, name, labelPair(v.label, val), formatInt(v.children[val].Value()))
	}
	return b
}

func (v *HistogramVec) expose(b []byte, name string) []byte {
	b = header(b, name, v.help, "histogram")
	v.mu.RLock()
	defer v.mu.RUnlock()
	for _, val := range sortedKeys(v.children) {
		b = v.children[val].exposeSeries(b, name, labelPair(v.label, val))
	}
	return b
}
