package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sync"
	"sync/atomic"
	"time"
)

// Tracer emits per-submission span events as structured JSON lines — one
// line per completed stage, correlated by trace ID, so a single upload's
// decode→filter→wal_append→store timeline is reconstructible from the
// log alone. A Tracer built over a nil writer is disabled: NewTrace
// returns "" and Emit is a no-op, so the instrumented hot paths pay one
// branch when tracing is off.
type Tracer struct {
	w   io.Writer // nil = disabled
	mu  sync.Mutex
	ids atomic.Uint64
}

// NewTracer creates a tracer writing JSON span lines to w; nil disables
// it. The returned tracer serializes writes, so w need not be safe for
// concurrent use.
func NewTracer(w io.Writer) *Tracer { return &Tracer{w: w} }

// Enabled reports whether spans are being emitted.
func (t *Tracer) Enabled() bool { return t != nil && t.w != nil }

// NewTrace allocates a trace ID for one submission's span chain, or ""
// when the tracer is disabled (stages skip their spans on "").
func (t *Tracer) NewTrace() string {
	if !t.Enabled() {
		return ""
	}
	return fmt.Sprintf("t-%08x", t.ids.Add(1))
}

// Span is one completed stage of a traced submission. Trace correlates
// the chain; Name is the stage (decode, filter, wal_append, store);
// Device/Model/Seq are filled in as the stages learn them; Err marks a
// stage that dropped the submission.
type Span struct {
	Trace  string
	Name   string
	Device string
	Model  string
	Seq    uint64
	Err    error
}

// SpanEvent is the JSON wire form of one emitted span. StartUS is the
// stage's start as Unix microseconds; DurUS its duration in
// microseconds — enough to lay the chain on one timeline.
type SpanEvent struct {
	Trace   string  `json:"trace"`
	Span    string  `json:"span"`
	StartUS int64   `json:"start_us"`
	DurUS   float64 `json:"dur_us"`
	Device  string  `json:"device,omitempty"`
	Model   string  `json:"model,omitempty"`
	Seq     uint64  `json:"seq,omitempty"`
	Err     string  `json:"err,omitempty"`
}

// Emit writes one span line. No-op when the tracer is disabled or the
// submission was admitted while tracing was off (empty trace ID).
func (t *Tracer) Emit(s Span, start time.Time, dur time.Duration) {
	if !t.Enabled() || s.Trace == "" {
		return
	}
	ev := SpanEvent{
		Trace:   s.Trace,
		Span:    s.Name,
		StartUS: start.UnixMicro(),
		DurUS:   float64(dur.Nanoseconds()) / 1e3,
		Device:  s.Device,
		Model:   s.Model,
		Seq:     s.Seq,
	}
	if s.Err != nil {
		ev.Err = s.Err.Error()
	}
	line, err := json.Marshal(ev)
	if err != nil {
		return // a span is diagnostics, never worth failing the pipeline
	}
	line = append(line, '\n')
	t.mu.Lock()
	t.w.Write(line)
	t.mu.Unlock()
}
