package silicon

import (
	"fmt"
	"sort"

	"accubench/internal/sim"
)

// Lottery samples process corners the way a fab's output distribution would:
// leakage factors are log-normal across chips, and voltage binning sorts
// them into bins by leakage (leakier chips → higher bin numbers → lower
// voltage), mirroring the manufacturer flow the paper describes in §II.
type Lottery struct {
	// Sigma is the log-normal sigma of the leakage distribution. A modern
	// mobile process spans roughly 2–3× leakage between slow and fast
	// corners, i.e. sigma ≈ 0.2–0.35.
	Sigma float64
	// Bins is how many voltage bins the product defines (7 for the SD-800).
	Bins int
	// BinNoise is the log-normal sigma of the fab's *binning measurement*.
	// Chips are sorted into voltage bins by a quick speed test that
	// correlates only loosely with true leakage; with BinNoise > 0 a leaky
	// chip can land in a low bin (high voltage) and be doubly punished —
	// the imperfect compensation behind the paper's observable variation.
	// Zero models an ideal fab that bins by true leakage.
	BinNoise float64
}

// Draw samples n chips from the distribution using the provided random
// source and assigns bins by measurement quantile: chips are ranked by the
// fab's (noisy, see BinNoise) leakage measurement and split into
// equal-population bins, lowest measured leakage → bin 0. It returns the
// corners in draw order.
func (l Lottery) Draw(src *sim.Source, n int) ([]ProcessCorner, error) {
	if n <= 0 {
		return nil, fmt.Errorf("silicon: lottery draw of %d chips", n)
	}
	if l.Bins <= 0 {
		return nil, fmt.Errorf("silicon: lottery with %d bins", l.Bins)
	}
	if l.Sigma < 0 {
		return nil, fmt.Errorf("silicon: negative sigma %v", l.Sigma)
	}
	if l.BinNoise < 0 {
		return nil, fmt.Errorf("silicon: negative bin noise %v", l.BinNoise)
	}
	leaks := make([]float64, n)
	measured := make([]float64, n)
	for i := range leaks {
		leaks[i] = src.LogNormal(0, l.Sigma)
		measured[i] = leaks[i] * src.LogNormal(0, l.BinNoise)
	}
	// Rank chips by the fab's (possibly noisy) measurement to assign bins.
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return measured[order[a]] < measured[order[b]] })
	corners := make([]ProcessCorner, n)
	for rank, idx := range order {
		bin := Bin(rank * l.Bins / n)
		if int(bin) >= l.Bins {
			bin = Bin(l.Bins - 1)
		}
		corners[idx] = ProcessCorner{Bin: bin, Leakage: leaks[idx]}
	}
	return corners, nil
}
