package silicon

import (
	"math"
	"testing"
	"testing/quick"

	"accubench/internal/sim"
	"accubench/internal/units"
)

func TestNexus5TableMatchesPaper(t *testing.T) {
	tbl := Nexus5Table()
	if tbl.Bins() != 7 {
		t.Fatalf("bins = %d, want 7", tbl.Bins())
	}
	freqs := tbl.Frequencies()
	wantFreqs := []units.MegaHertz{300, 729, 960, 1574, 2265}
	for i, f := range wantFreqs {
		if freqs[i] != f {
			t.Errorf("freq[%d] = %v, want %v", i, freqs[i], f)
		}
	}
	// Spot-check the corners of the paper's Table I.
	cases := []struct {
		bin  Bin
		freq units.MegaHertz
		mv   float64
	}{
		{0, 300, 800}, {0, 2265, 1100},
		{3, 960, 820}, {4, 1574, 895},
		{6, 300, 750}, {6, 2265, 950},
	}
	for _, c := range cases {
		v, err := tbl.Voltage(c.bin, c.freq)
		if err != nil {
			t.Fatalf("Voltage(%v,%v): %v", c.bin, c.freq, err)
		}
		if math.Abs(v.Millivolts()-c.mv) > 1e-9 {
			t.Errorf("Voltage(%v,%v) = %v mV, want %v", c.bin, c.freq, v.Millivolts(), c.mv)
		}
	}
}

func TestVoltageBinningMonotonicity(t *testing.T) {
	// The defining property: at any frequency, voltage is non-increasing
	// with bin number (bin 0 runs the highest voltage).
	tbl := Nexus5Table()
	for _, f := range tbl.Frequencies() {
		prev := units.Volts(math.Inf(1))
		for b := Bin(0); int(b) < tbl.Bins(); b++ {
			v, err := tbl.Voltage(b, f)
			if err != nil {
				t.Fatal(err)
			}
			if v > prev {
				t.Errorf("at %v: %v voltage %v exceeds previous bin's %v", f, b, v, prev)
			}
			prev = v
		}
	}
}

func TestVoltageSnapsUpToNextOPP(t *testing.T) {
	tbl := Nexus5Table()
	// 1000 MHz is not a ladder point; it must use the 1574 MHz voltage.
	v, err := tbl.Voltage(0, 1000)
	if err != nil {
		t.Fatal(err)
	}
	if v.Millivolts() != 965 {
		t.Errorf("snapped voltage = %v mV, want 965", v.Millivolts())
	}
}

func TestVoltageErrors(t *testing.T) {
	tbl := Nexus5Table()
	if _, err := tbl.Voltage(7, 300); err == nil {
		t.Error("bin out of range accepted")
	}
	if _, err := tbl.Voltage(-1, 300); err == nil {
		t.Error("negative bin accepted")
	}
	if _, err := tbl.Voltage(0, 3000); err == nil {
		t.Error("frequency above ladder accepted")
	}
}

func TestRow(t *testing.T) {
	tbl := Nexus5Table()
	row, err := tbl.Row(6)
	if err != nil {
		t.Fatal(err)
	}
	if len(row) != 5 {
		t.Fatalf("row length = %d", len(row))
	}
	if row[4].Freq != 2265 || row[4].Voltage.Millivolts() != 950 {
		t.Errorf("row[4] = %+v", row[4])
	}
	if _, err := tbl.Row(99); err == nil {
		t.Error("Row out of range accepted")
	}
}

func TestNewVoltageTableValidation(t *testing.T) {
	freqs := []units.MegaHertz{100, 200}
	cases := []struct {
		name string
		f    []units.MegaHertz
		rows [][]float64
	}{
		{"empty ladder", nil, [][]float64{{1}}},
		{"non-increasing ladder", []units.MegaHertz{200, 100}, [][]float64{{800, 900}}},
		{"no bins", freqs, nil},
		{"ragged row", freqs, [][]float64{{800}}},
		{"binning violation", freqs, [][]float64{{800, 900}, {810, 900}}},
	}
	for _, c := range cases {
		if _, err := NewVoltageTable(c.f, c.rows); err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}

func testLeakage() LeakageModel {
	return LeakageModel{I0: 0.1, Vref: 1.0, VoltExp: 2, Tref: 25, TSlope: 30}
}

func TestLeakageGrowsWithTemperature(t *testing.T) {
	m := testLeakage()
	cold := m.Current(1, 1.0, 25)
	hot := m.Current(1, 1.0, 85)
	if hot <= cold {
		t.Fatalf("leakage did not grow with temperature: %v vs %v", cold, hot)
	}
	// 60°C at TSlope=30 → ×e² ≈ 7.39.
	ratio := float64(hot) / float64(cold)
	if math.Abs(ratio-math.E*math.E) > 1e-9 {
		t.Errorf("ratio = %v, want e²", ratio)
	}
}

func TestLeakageGrowsWithVoltage(t *testing.T) {
	m := testLeakage()
	lo := m.Current(1, 0.9, 25)
	hi := m.Current(1, 1.1, 25)
	if hi <= lo {
		t.Fatal("leakage did not grow with voltage")
	}
	// VoltExp=2 → (1.1/0.9)² ratio.
	want := math.Pow(1.1/0.9, 2)
	if got := float64(hi) / float64(lo); math.Abs(got-want) > 1e-9 {
		t.Errorf("ratio = %v, want %v", got, want)
	}
}

func TestLeakageScalesLinearlyWithCorner(t *testing.T) {
	m := testLeakage()
	base := m.Current(1, 1.0, 50)
	leaky := m.Current(2.5, 1.0, 50)
	if math.Abs(float64(leaky)/float64(base)-2.5) > 1e-9 {
		t.Errorf("corner scaling = %v, want 2.5", float64(leaky)/float64(base))
	}
}

func TestLeakageDegenerateInputs(t *testing.T) {
	m := testLeakage()
	if m.Current(1, 0, 25) != 0 {
		t.Error("zero voltage should give zero leakage")
	}
	if m.Current(0, 1, 25) != 0 {
		t.Error("zero corner should give zero leakage")
	}
	if m.Current(1, -1, 25) != 0 {
		t.Error("negative voltage should give zero leakage")
	}
}

func TestLeakagePowerIsVTimesI(t *testing.T) {
	m := testLeakage()
	i := m.Current(1.3, 1.05, 60)
	p := m.Power(1.3, 1.05, 60)
	if math.Abs(float64(p)-1.05*float64(i)) > 1e-12 {
		t.Errorf("Power = %v, want V·I = %v", p, 1.05*float64(i))
	}
}

func TestLeakageMonotoneProperty(t *testing.T) {
	m := testLeakage()
	f := func(t1, t2 float64) bool {
		t1 = math.Mod(math.Abs(t1), 100)
		t2 = math.Mod(math.Abs(t2), 100)
		lo, hi := math.Min(t1, t2), math.Max(t1, t2)
		return m.Current(1, 1, units.Celsius(lo)) <= m.Current(1, 1, units.Celsius(hi))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestProcessCornerValidate(t *testing.T) {
	if err := (ProcessCorner{Bin: 2, Leakage: 1.1}).Validate(); err != nil {
		t.Errorf("valid corner rejected: %v", err)
	}
	if err := (ProcessCorner{Bin: 2, Leakage: 0}).Validate(); err == nil {
		t.Error("zero leakage accepted")
	}
	if err := (ProcessCorner{Bin: -1, Leakage: 1}).Validate(); err == nil {
		t.Error("negative bin accepted")
	}
}

func TestCornerString(t *testing.T) {
	got := ProcessCorner{Bin: 2, Leakage: 1.4}.String()
	if got != "bin-2 leak×1.40" {
		t.Errorf("String = %q", got)
	}
	if Bin(3).String() != "bin-3" {
		t.Errorf("Bin.String = %q", Bin(3).String())
	}
}

func TestLotteryDraw(t *testing.T) {
	l := Lottery{Sigma: 0.25, Bins: 7}
	src := sim.NewSource(42, "lottery")
	corners, err := l.Draw(src, 700)
	if err != nil {
		t.Fatal(err)
	}
	if len(corners) != 700 {
		t.Fatalf("drew %d", len(corners))
	}
	// Equal-population binning: each bin gets 100 chips.
	counts := make(map[Bin]int)
	for _, c := range corners {
		if err := c.Validate(); err != nil {
			t.Fatalf("invalid corner drawn: %v", err)
		}
		counts[c.Bin]++
	}
	for b := Bin(0); b < 7; b++ {
		if counts[b] != 100 {
			t.Errorf("%v population = %d, want 100", b, counts[b])
		}
	}
}

func TestLotteryBinsOrderedByLeakage(t *testing.T) {
	l := Lottery{Sigma: 0.3, Bins: 4}
	src := sim.NewSource(7, "lottery")
	corners, err := l.Draw(src, 400)
	if err != nil {
		t.Fatal(err)
	}
	// Max leakage in bin b must not exceed min leakage in bin b+1.
	maxIn := map[Bin]float64{}
	minIn := map[Bin]float64{}
	for _, c := range corners {
		if v, ok := maxIn[c.Bin]; !ok || c.Leakage > v {
			maxIn[c.Bin] = c.Leakage
		}
		if v, ok := minIn[c.Bin]; !ok || c.Leakage < v {
			minIn[c.Bin] = c.Leakage
		}
	}
	for b := Bin(0); b < 3; b++ {
		if maxIn[b] > minIn[b+1] {
			t.Errorf("bin %d max leak %v exceeds bin %d min %v", b, maxIn[b], b+1, minIn[b+1])
		}
	}
}

func TestLotteryDeterminism(t *testing.T) {
	l := Lottery{Sigma: 0.25, Bins: 7}
	a, _ := l.Draw(sim.NewSource(1, "x"), 10)
	b, _ := l.Draw(sim.NewSource(1, "x"), 10)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("lottery not deterministic at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestLotteryErrors(t *testing.T) {
	src := sim.NewSource(1, "x")
	if _, err := (Lottery{Sigma: 0.2, Bins: 7}).Draw(src, 0); err == nil {
		t.Error("n=0 accepted")
	}
	if _, err := (Lottery{Sigma: 0.2, Bins: 0}).Draw(src, 5); err == nil {
		t.Error("0 bins accepted")
	}
	if _, err := (Lottery{Sigma: -1, Bins: 7}).Draw(src, 5); err == nil {
		t.Error("negative sigma accepted")
	}
}

func TestLotteryBinNoiseMisbins(t *testing.T) {
	// With a noisy fab measurement, bin ordering by true leakage is no
	// longer strict: some chips land in the "wrong" bin.
	noisy := Lottery{Sigma: 0.3, Bins: 4, BinNoise: 0.5}
	src := sim.NewSource(21, "lottery")
	corners, err := noisy.Draw(src, 400)
	if err != nil {
		t.Fatal(err)
	}
	violations := 0
	maxIn := map[Bin]float64{}
	minIn := map[Bin]float64{}
	for _, c := range corners {
		if v, ok := maxIn[c.Bin]; !ok || c.Leakage > v {
			maxIn[c.Bin] = c.Leakage
		}
		if v, ok := minIn[c.Bin]; !ok || c.Leakage < v {
			minIn[c.Bin] = c.Leakage
		}
	}
	for b := Bin(0); b < 3; b++ {
		if maxIn[b] > minIn[b+1] {
			violations++
		}
	}
	if violations == 0 {
		t.Error("BinNoise=0.5 produced perfectly ordered bins — noise had no effect")
	}
	// Population split stays equal regardless of noise.
	counts := map[Bin]int{}
	for _, c := range corners {
		counts[c.Bin]++
	}
	for b := Bin(0); b < 4; b++ {
		if counts[b] != 100 {
			t.Errorf("%v population = %d, want 100", b, counts[b])
		}
	}
}

func TestLotteryNegativeBinNoiseRejected(t *testing.T) {
	if _, err := (Lottery{Sigma: 0.2, Bins: 3, BinNoise: -1}).Draw(sim.NewSource(1, "x"), 5); err == nil {
		t.Error("negative bin noise accepted")
	}
}
