// Package silicon models the process variation at the heart of the paper:
// the "silicon lottery" that makes two chips of the same design differ in
// transistor speed and leakage, and the voltage-binning scheme manufacturers
// use to paper over it.
//
// The model follows the paper's §II narrative exactly:
//
//   - Slow transistors (larger gate lengths) leak less; fast transistors leak
//     more. Voltage binning fixes the frequency ladder across all chips and
//     compensates slow silicon with a *higher* supply voltage and fast,
//     leaky silicon with a *lower* one (Table I).
//   - Leakage current grows with temperature, creating the thermal feedback
//     loop that ultimately throttles leaky chips harder.
//
// A chip is described by a ProcessCorner: a leakage scale factor and a bin
// assignment. Performance and energy differences between devices are never
// hard-coded anywhere in the repository — they emerge from these corners
// flowing through the power and thermal models.
package silicon

import (
	"fmt"
	"math"

	"accubench/internal/units"
)

// Bin identifies a voltage bin. Bin 0 holds the slowest (least leaky)
// silicon and runs at the highest voltage; higher bins hold progressively
// faster, leakier silicon at lower voltages (paper Table I).
type Bin int

// String renders e.g. "bin-3", the paper's notation.
func (b Bin) String() string { return fmt.Sprintf("bin-%d", int(b)) }

// VoltagePoint is one row cell of a voltage-frequency table: the supply
// voltage a chip of a given bin needs to run stably at a frequency.
type VoltagePoint struct {
	Freq    units.MegaHertz
	Voltage units.Volts
}

// VoltageTable maps each bin to the supply voltage required at every
// operating frequency. It is the static table older SoCs (SD-800) expose in
// kernel sources; newer parts replace it with closed-loop RBCPR trimming.
type VoltageTable struct {
	freqs []units.MegaHertz
	// volts[bin][freqIndex]
	volts [][]units.Volts
}

// NewVoltageTable builds a table from a frequency ladder and per-bin voltage
// rows (millivolts, in ladder order). It returns an error if any row's
// length disagrees with the ladder or if voltages are not non-increasing
// down the bins at a fixed frequency (the defining property of voltage
// binning: leakier silicon gets lower voltage).
func NewVoltageTable(freqs []units.MegaHertz, millivoltRows [][]float64) (*VoltageTable, error) {
	if len(freqs) == 0 {
		return nil, fmt.Errorf("silicon: empty frequency ladder")
	}
	for i := 1; i < len(freqs); i++ {
		if freqs[i] <= freqs[i-1] {
			return nil, fmt.Errorf("silicon: frequency ladder not strictly increasing at index %d", i)
		}
	}
	if len(millivoltRows) == 0 {
		return nil, fmt.Errorf("silicon: no bins")
	}
	volts := make([][]units.Volts, len(millivoltRows))
	for b, row := range millivoltRows {
		if len(row) != len(freqs) {
			return nil, fmt.Errorf("silicon: bin %d has %d voltages for %d frequencies", b, len(row), len(freqs))
		}
		volts[b] = make([]units.Volts, len(row))
		for i, mv := range row {
			volts[b][i] = units.FromMillivolts(mv)
			if b > 0 && volts[b][i] > volts[b-1][i] {
				return nil, fmt.Errorf("silicon: bin %d voltage %v at %v exceeds bin %d's %v — violates voltage binning",
					b, volts[b][i], freqs[i], b-1, volts[b-1][i])
			}
		}
	}
	return &VoltageTable{freqs: freqs, volts: volts}, nil
}

// Bins returns the number of bins in the table.
func (t *VoltageTable) Bins() int { return len(t.volts) }

// Frequencies returns the frequency ladder (ascending). The slice must not
// be mutated.
func (t *VoltageTable) Frequencies() []units.MegaHertz { return t.freqs }

// Voltage returns the supply voltage for a bin at an exact ladder frequency.
// Frequencies between ladder points use the voltage of the next point up,
// matching how cpufreq snaps requests to OPPs.
func (t *VoltageTable) Voltage(b Bin, f units.MegaHertz) (units.Volts, error) {
	if int(b) < 0 || int(b) >= len(t.volts) {
		return 0, fmt.Errorf("silicon: bin %d outside table (%d bins)", b, len(t.volts))
	}
	for i, lf := range t.freqs {
		if f <= lf {
			return t.volts[b][i], nil
		}
	}
	return 0, fmt.Errorf("silicon: frequency %v above ladder top %v", f, t.freqs[len(t.freqs)-1])
}

// Row returns the full (frequency, voltage) row for a bin.
func (t *VoltageTable) Row(b Bin) ([]VoltagePoint, error) {
	if int(b) < 0 || int(b) >= len(t.volts) {
		return nil, fmt.Errorf("silicon: bin %d outside table", b)
	}
	out := make([]VoltagePoint, len(t.freqs))
	for i, f := range t.freqs {
		out[i] = VoltagePoint{Freq: f, Voltage: t.volts[b][i]}
	}
	return out, nil
}

// Nexus5Table returns the paper's Table I verbatim: the voltage-frequency
// table for the Snapdragon 800 (Nexus 5) across bins 0–6 at the five ladder
// points the paper lists, in millivolts.
func Nexus5Table() *VoltageTable {
	t, err := NewVoltageTable(
		[]units.MegaHertz{300, 729, 960, 1574, 2265},
		[][]float64{
			{800, 835, 865, 965, 1100}, // bin-0: slowest silicon, highest voltage
			{800, 820, 850, 945, 1075},
			{775, 805, 835, 925, 1050},
			{775, 790, 820, 910, 1025},
			{775, 780, 810, 895, 1000},
			{750, 770, 800, 880, 975},
			{750, 760, 790, 870, 950}, // bin-6: leakiest silicon, lowest voltage
		},
	)
	if err != nil {
		// The embedded literal is a constant of the package; failure to parse
		// it is unrecoverable programmer error.
		panic(err)
	}
	return t
}

// LeakageModel captures subthreshold leakage as the paper needs it: a base
// current scaled per chip by its process corner, growing exponentially with
// die temperature and supralinearly with supply voltage.
//
//	I_leak(V, T) = I0 · corner · (V/Vref)^VoltExp · exp((T − Tref)/TSlope)
//
// TSlope sets how quickly leakage compounds with heat — the knob that
// calibrates the paper's Figure 2 ambient-temperature sweep (+25–30% energy
// from a hot ambient). Typical silicon roughly doubles leakage every
// 20–30 °C; TSlope ≈ 30 °C/e-fold puts doubling at ~21 °C.
type LeakageModel struct {
	// I0 is the reference leakage current at Vref and Tref for a corner of
	// 1.0 (typical silicon).
	I0 units.Amps
	// Vref is the reference supply voltage.
	Vref units.Volts
	// VoltExp is the voltage exponent (≥1; leakage grows faster than linear
	// in V because of DIBL).
	VoltExp float64
	// Tref is the reference die temperature.
	Tref units.Celsius
	// TSlope is the e-folding temperature delta in °C.
	TSlope float64
}

// VoltFactor returns the voltage-dependent leakage term (V/Vref)^VoltExp.
// It is the expensive factor of Current for a fixed operating point —
// batched steppers (internal/fleetsim) memoize it per exact rail voltage,
// which cannot perturb the result because the factor is a pure function
// of the voltage alone.
func (m LeakageModel) VoltFactor(v units.Volts) float64 {
	return math.Pow(float64(v)/float64(m.Vref), m.VoltExp)
}

// TempFactor returns the temperature-dependent leakage term
// exp((T − Tref)/TSlope). Both clusters of a big.LITTLE chip share the
// die temperature, so one evaluation per step serves both.
func (m LeakageModel) TempFactor(t units.Celsius) float64 {
	return math.Exp(t.Delta(m.Tref) / m.TSlope)
}

// CurrentFactored returns the leakage current given precomputed
// VoltFactor(v) and TempFactor(t) values. It is the multiply chain of
// Current with the transcendental factors hoisted:
// Current(c, v, t) ≡ CurrentFactored(c, v, VoltFactor(v), TempFactor(t))
// bit for bit, including the zero guard.
func (m LeakageModel) CurrentFactored(corner float64, v units.Volts, vterm, tterm float64) units.Amps {
	if v <= 0 || corner <= 0 {
		return 0
	}
	return units.Amps(float64(m.I0) * corner * vterm * tterm)
}

// PowerFactored returns the leakage power V·CurrentFactored — the
// factored counterpart of Power.
func (m LeakageModel) PowerFactored(corner float64, v units.Volts, vterm, tterm float64) units.Watts {
	return units.Power(v, m.CurrentFactored(corner, v, vterm, tterm))
}

// Current returns the leakage current for a chip with the given corner at
// the given supply voltage and die temperature.
func (m LeakageModel) Current(corner float64, v units.Volts, t units.Celsius) units.Amps {
	if v <= 0 || corner <= 0 {
		return 0
	}
	return m.CurrentFactored(corner, v, m.VoltFactor(v), m.TempFactor(t))
}

// Power returns the leakage power V·I_leak.
func (m LeakageModel) Power(corner float64, v units.Volts, t units.Celsius) units.Watts {
	return units.Power(v, m.Current(corner, v, t))
}

// ProcessCorner describes one manufactured chip: which voltage bin it was
// sorted into and its leakage scale factor relative to typical silicon.
// Corner > 1 means fast, leaky transistors (high bins); corner < 1 means
// slow, low-leak transistors (bin 0).
type ProcessCorner struct {
	Bin     Bin
	Leakage float64 // multiplier on LeakageModel.I0
}

// Validate reports whether the corner is physically sensible.
func (c ProcessCorner) Validate() error {
	if c.Leakage <= 0 {
		return fmt.Errorf("silicon: non-positive leakage corner %v", c.Leakage)
	}
	if c.Bin < 0 {
		return fmt.Errorf("silicon: negative bin %d", c.Bin)
	}
	return nil
}

// String renders e.g. "bin-2 leak×1.40".
func (c ProcessCorner) String() string {
	return fmt.Sprintf("%s leak×%.2f", c.Bin, c.Leakage)
}
