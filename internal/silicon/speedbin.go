package silicon

import (
	"fmt"
	"math"

	"accubench/internal/units"
)

// SpeedBinner implements the *other* binning scheme the paper's §II
// describes: "chips are manufactured, they are first tested to identify
// their stable operating frequencies. If a chip does not meet the necessary
// timing constraints or fails to operate at the expected frequency, the
// operating frequency is lowered until it passes the tests. The chips are
// then sorted into bins and labeled according to their speed … sold at
// price points proportional to their speed bin."
//
// Desktop CPUs ship this way; phones use voltage binning instead, hiding
// the lottery. The simulator supports both so the what-if comparison
// (experiments.WhatIfSpeedBinning) can show what phone buyers would see if
// the lottery were priced rather than papered over.
type SpeedBinner struct {
	// BaseFreq is the frequency typical silicon (leakage corner 1.0) closes
	// timing at, at the product's stock voltage.
	BaseFreq units.MegaHertz
	// Alpha is the speed-vs-leakage exponent: fast transistors leak more,
	// so a chip's achievable frequency grows like leak^Alpha. Silicon
	// folklore puts the speed spread at roughly half the (log) leakage
	// spread, i.e. Alpha ≈ 0.3–0.5.
	Alpha float64
	// Ladder is the ascending list of advertised speed grades; a chip is
	// sold at the highest grade it clears.
	Ladder []units.MegaHertz
}

// Validate checks the binner's invariants.
func (b SpeedBinner) Validate() error {
	if b.BaseFreq <= 0 {
		return fmt.Errorf("silicon: speed binner base frequency %v", b.BaseFreq)
	}
	if b.Alpha < 0 {
		return fmt.Errorf("silicon: negative speed exponent %v", b.Alpha)
	}
	if len(b.Ladder) == 0 {
		return fmt.Errorf("silicon: speed binner has no grades")
	}
	for i := 1; i < len(b.Ladder); i++ {
		if b.Ladder[i] <= b.Ladder[i-1] {
			return fmt.Errorf("silicon: speed ladder not ascending at %d", i)
		}
	}
	return nil
}

// MaxStable returns the frequency the chip closes timing at.
func (b SpeedBinner) MaxStable(corner ProcessCorner) units.MegaHertz {
	return units.MegaHertz(float64(b.BaseFreq) * math.Pow(corner.Leakage, b.Alpha))
}

// Assign returns the advertised grade the chip is sold at: the highest
// ladder frequency it clears. A chip too slow for even the bottom grade is
// scrap and returns an error — the fab's yield loss.
func (b SpeedBinner) Assign(corner ProcessCorner) (units.MegaHertz, error) {
	if err := b.Validate(); err != nil {
		return 0, err
	}
	if err := corner.Validate(); err != nil {
		return 0, err
	}
	fmax := b.MaxStable(corner)
	grade := units.MegaHertz(0)
	for _, f := range b.Ladder {
		if f <= fmax {
			grade = f
		}
	}
	if grade == 0 {
		return 0, fmt.Errorf("silicon: chip %v (max stable %v) fails the bottom grade %v",
			corner, fmax, b.Ladder[0])
	}
	return grade, nil
}
