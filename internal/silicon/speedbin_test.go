package silicon

import (
	"math"
	"testing"

	"accubench/internal/sim"
	"accubench/internal/units"
)

func testBinner() SpeedBinner {
	return SpeedBinner{
		BaseFreq: 2265,
		Alpha:    0.4,
		Ladder:   []units.MegaHertz{1574, 1958, 2265, 2650},
	}
}

func TestSpeedBinnerValidate(t *testing.T) {
	if err := testBinner().Validate(); err != nil {
		t.Fatalf("good binner rejected: %v", err)
	}
	bad := []SpeedBinner{
		{BaseFreq: 0, Alpha: 0.4, Ladder: []units.MegaHertz{1000}},
		{BaseFreq: 2000, Alpha: -1, Ladder: []units.MegaHertz{1000}},
		{BaseFreq: 2000, Alpha: 0.4, Ladder: nil},
		{BaseFreq: 2000, Alpha: 0.4, Ladder: []units.MegaHertz{2000, 1000}},
	}
	for i, b := range bad {
		if err := b.Validate(); err == nil {
			t.Errorf("bad binner %d accepted", i)
		}
	}
}

func TestMaxStableScalesWithLeakage(t *testing.T) {
	b := testBinner()
	// Typical silicon closes timing at BaseFreq exactly.
	if got := b.MaxStable(ProcessCorner{Leakage: 1}); got != 2265 {
		t.Errorf("typical fmax = %v", got)
	}
	// Fast (leaky) silicon clears more; slow silicon less.
	fast := b.MaxStable(ProcessCorner{Leakage: 1.8})
	slow := b.MaxStable(ProcessCorner{Leakage: 0.6})
	if !(fast > 2265 && slow < 2265) {
		t.Errorf("fmax ordering wrong: fast %v, slow %v", fast, slow)
	}
	// Alpha=0.4: 1.8^0.4 ≈ 1.265.
	want := 2265 * math.Pow(1.8, 0.4)
	if math.Abs(float64(fast)-want) > 0.5 {
		t.Errorf("fast fmax = %v, want %.0f", fast, want)
	}
}

func TestAssignGrades(t *testing.T) {
	b := testBinner()
	cases := []struct {
		leak float64
		want units.MegaHertz
	}{
		{1.0, 2265},  // exactly typical: top mainstream grade
		{1.6, 2650},  // golden sample: the halo SKU
		{0.75, 1958}, // slow: mid grade
		{0.5, 1574},  // very slow: bottom grade
	}
	for _, c := range cases {
		got, err := b.Assign(ProcessCorner{Leakage: c.leak})
		if err != nil {
			t.Fatalf("leak %v: %v", c.leak, err)
		}
		if got != c.want {
			t.Errorf("Assign(leak %v) = %v, want %v", c.leak, got, c.want)
		}
	}
}

func TestAssignScrap(t *testing.T) {
	b := testBinner()
	// Leakage 0.3 → fmax = 2265·0.3^0.4 ≈ 1400 < 1574: yield loss.
	if _, err := b.Assign(ProcessCorner{Leakage: 0.3}); err == nil {
		t.Error("scrap chip assigned a grade")
	}
	if _, err := b.Assign(ProcessCorner{Leakage: -1}); err == nil {
		t.Error("invalid corner accepted")
	}
}

func TestAssignMonotoneInLeakage(t *testing.T) {
	b := testBinner()
	src := sim.NewSource(3, "speedbin")
	prevLeak, prevGrade := 0.5, units.MegaHertz(0)
	for i := 0; i < 200; i++ {
		leak := prevLeak + src.Uniform(0, 0.02)
		grade, err := b.Assign(ProcessCorner{Leakage: leak})
		if err != nil {
			t.Fatalf("leak %v: %v", leak, err)
		}
		if grade < prevGrade {
			t.Fatalf("grade fell from %v to %v as leakage rose to %v", prevGrade, grade, leak)
		}
		prevLeak, prevGrade = leak, grade
	}
}
