// Package report renders experiment results as aligned text tables and
// simple ASCII series — the terminal equivalents of the paper's tables and
// figures.
package report

import (
	"fmt"
	"io"
	"strings"

	"accubench/internal/trace"
)

// Table is a simple column-aligned text table.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table { return &Table{header: header} }

// AddRow appends a row; short rows are padded, long rows panic (programmer
// error in the experiment renderer).
func (t *Table) AddRow(cells ...string) {
	if len(cells) > len(t.header) {
		panic(fmt.Sprintf("report: row has %d cells for %d columns", len(cells), len(t.header)))
	}
	row := make([]string, len(t.header))
	copy(row, cells)
	t.rows = append(t.rows, row)
}

// Write renders the table.
func (t *Table) Write(w io.Writer) error {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) string {
		parts := make([]string, len(cells))
		for i, c := range cells {
			parts[i] = pad(c, widths[i])
		}
		return strings.TrimRight(strings.Join(parts, "  "), " ")
	}
	if _, err := fmt.Fprintln(w, line(t.header)); err != nil {
		return err
	}
	sep := make([]string, len(t.header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	return nil
}

func pad(s string, w int) string {
	if len(s) >= w {
		return s
	}
	return s + strings.Repeat(" ", w-len(s))
}

// Sparkline renders samples as a one-line unicode sparkline, scaled to the
// series' own min/max. Empty input yields an empty string.
func Sparkline(samples []trace.Sample) string {
	if len(samples) == 0 {
		return ""
	}
	glyphs := []rune("▁▂▃▄▅▆▇█")
	lo, hi := samples[0].Value, samples[0].Value
	for _, s := range samples {
		if s.Value < lo {
			lo = s.Value
		}
		if s.Value > hi {
			hi = s.Value
		}
	}
	var b strings.Builder
	for _, s := range samples {
		idx := 0
		if hi > lo {
			idx = int((s.Value - lo) / (hi - lo) * float64(len(glyphs)-1))
		}
		b.WriteRune(glyphs[idx])
	}
	return b.String()
}

// Bar renders a horizontal bar of the given fractional length against a
// fixed width, e.g. Bar(0.5, 20) = "##########".
func Bar(frac float64, width int) string {
	if frac < 0 {
		frac = 0
	}
	if frac > 1 {
		frac = 1
	}
	n := int(frac*float64(width) + 0.5)
	return strings.Repeat("#", n)
}

// Pct formats a percentage with one decimal, e.g. "14.2%".
func Pct(v float64) string { return fmt.Sprintf("%.1f%%", v) }
