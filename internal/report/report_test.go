package report

import (
	"strings"
	"testing"
	"time"

	"accubench/internal/trace"
)

func TestTableAlignment(t *testing.T) {
	tbl := NewTable("Chipset", "Perf")
	tbl.AddRow("SD-800", "14%")
	tbl.AddRow("SD-821-long-name", "5%")
	var b strings.Builder
	if err := tbl.Write(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	if len(lines) != 4 { // header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), b.String())
	}
	// The Perf column starts at the same offset in every line.
	idx := strings.Index(lines[0], "Perf")
	if idx < 0 {
		t.Fatal("header missing Perf")
	}
	if got := strings.Index(lines[2], "14%"); got != idx {
		t.Errorf("row value at %d, header at %d:\n%s", got, idx, b.String())
	}
	if !strings.HasPrefix(lines[1], "----") {
		t.Errorf("separator = %q", lines[1])
	}
}

func TestTableShortRowsPadded(t *testing.T) {
	tbl := NewTable("a", "b", "c")
	tbl.AddRow("only")
	var b strings.Builder
	if err := tbl.Write(&b); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "only") {
		t.Error("row lost")
	}
}

func TestTableOverlongRowPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("overlong row did not panic")
		}
	}()
	tbl := NewTable("a")
	tbl.AddRow("1", "2")
}

func TestTableNoTrailingSpaces(t *testing.T) {
	tbl := NewTable("col", "x")
	tbl.AddRow("a", "b")
	var b strings.Builder
	tbl.Write(&b)
	for _, line := range strings.Split(b.String(), "\n") {
		if strings.HasSuffix(line, " ") {
			t.Errorf("trailing space in %q", line)
		}
	}
}

func mkSamples(vals ...float64) []trace.Sample {
	out := make([]trace.Sample, len(vals))
	for i, v := range vals {
		out[i] = trace.Sample{At: time.Duration(i) * time.Second, Value: v}
	}
	return out
}

func TestSparkline(t *testing.T) {
	s := Sparkline(mkSamples(0, 1, 2, 3, 4, 5, 6, 7))
	runes := []rune(s)
	if len(runes) != 8 {
		t.Fatalf("length = %d", len(runes))
	}
	if runes[0] != '▁' || runes[7] != '█' {
		t.Errorf("extremes = %c %c", runes[0], runes[7])
	}
	// Monotone input gives non-decreasing glyphs.
	for i := 1; i < len(runes); i++ {
		if runes[i] < runes[i-1] {
			t.Errorf("glyphs not monotone at %d: %s", i, s)
		}
	}
}

func TestSparklineFlatAndEmpty(t *testing.T) {
	if got := Sparkline(nil); got != "" {
		t.Errorf("empty = %q", got)
	}
	flat := Sparkline(mkSamples(5, 5, 5))
	for _, r := range flat {
		if r != '▁' {
			t.Errorf("flat series rendered %q", flat)
		}
	}
}

func TestBar(t *testing.T) {
	if got := Bar(0.5, 20); got != strings.Repeat("#", 10) {
		t.Errorf("Bar(0.5,20) = %q", got)
	}
	if got := Bar(0, 20); got != "" {
		t.Errorf("Bar(0) = %q", got)
	}
	if got := Bar(1, 4); got != "####" {
		t.Errorf("Bar(1,4) = %q", got)
	}
	// Clamped outside [0,1].
	if got := Bar(2, 4); got != "####" {
		t.Errorf("Bar(2,4) = %q", got)
	}
	if got := Bar(-1, 4); got != "" {
		t.Errorf("Bar(-1,4) = %q", got)
	}
}

func TestPct(t *testing.T) {
	if got := Pct(14.25); got != "14.2%" && got != "14.3%" {
		t.Errorf("Pct = %q", got)
	}
	if got := Pct(0); got != "0.0%" {
		t.Errorf("Pct(0) = %q", got)
	}
}
