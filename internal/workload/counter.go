package workload

import (
	"fmt"
	"time"

	"accubench/internal/units"
)

// Counter accrues π-loop progress on one simulated core. Progress is
// continuous (fractions of an iteration carry over between steps) but the
// score the benchmark reports is whole iterations completed, matching the
// paper's metric: "the number of iterations the device is able to complete
// across all cores within T_workload".
type Counter struct {
	cyclesPerIteration float64
	progress           float64 // fractional iterations
}

// NewCounter creates a counter for a core whose microarchitecture costs the
// given cycles per iteration. It panics on a non-positive cost.
func NewCounter(cyclesPerIteration float64) *Counter {
	if cyclesPerIteration <= 0 {
		panic(fmt.Sprintf("workload: cycles per iteration %v", cyclesPerIteration))
	}
	return &Counter{cyclesPerIteration: cyclesPerIteration}
}

// Advance accrues progress for dt of execution at frequency f. Offline or
// halted cores simply don't call Advance.
func (c *Counter) Advance(f units.MegaHertz, dt time.Duration) {
	if f <= 0 || dt <= 0 {
		return
	}
	c.progress += f.CyclesOver(dt) / c.cyclesPerIteration
}

// Completed returns whole iterations finished so far. A tiny epsilon guards
// against accumulated floating-point error shaving a finished iteration
// (summing 0.1 ten times yields 0.9999…).
func (c *Counter) Completed() int { return int(c.progress + 1e-9) }

// Progress returns fractional progress, for tests and diagnostics.
func (c *Counter) Progress() float64 { return c.progress }

// Reset zeroes the counter at a phase boundary (warmup iterations don't
// count toward the workload score).
func (c *Counter) Reset() { c.progress = 0 }

// Group is the per-device set of counters, one per core, summed for the
// device score.
type Group struct {
	counters []*Counter
}

// NewGroup builds n counters with the given per-core iteration cost.
func NewGroup(n int, cyclesPerIteration float64) *Group {
	g := &Group{counters: make([]*Counter, n)}
	for i := range g.counters {
		g.counters[i] = NewCounter(cyclesPerIteration)
	}
	return g
}

// Counter returns the i-th core's counter.
func (g *Group) Counter(i int) *Counter { return g.counters[i] }

// Len returns the number of counters.
func (g *Group) Len() int { return len(g.counters) }

// Completed sums whole iterations across cores. Note this is the sum of
// per-core floors, matching how the paper's app tallies per-core loop
// counts.
func (g *Group) Completed() int {
	total := 0
	for _, c := range g.counters {
		total += c.Completed()
	}
	return total
}

// Reset zeroes every counter.
func (g *Group) Reset() {
	for _, c := range g.counters {
		c.Reset()
	}
}
