// Package workload implements the paper's CPU-intensive benchmark kernel:
// "computing the digits of π in a loop on all available CPUs. Specifically,
// we compute the first 4,285 digits of π."
//
// Two layers live here:
//
//   - A real spigot-algorithm π computation (Rabinowitz–Wagon), validated
//     against the known digits, so the benchmark kernel is honest compute —
//     it is what host-side testing.B benchmarks execute.
//   - A Counter that accounts workload progress on *simulated* cores, where
//     one iteration costs the cluster's CyclesPerIteration clock cycles and
//     progress accrues from the frequency trace. This is how a five-minute
//     ACCUBENCH workload phase runs in milliseconds of host time while
//     keeping the performance metric (iterations completed) faithful.
package workload

import (
	"fmt"
	"strings"
)

// PaperDigits is the digit count the paper computes per iteration, chosen to
// take ≈1 s at the Nexus 6's top frequency.
const PaperDigits = 4285

// PiDigits returns the first n decimal digits of π ("3141592653...", without
// the decimal point) using the Rabinowitz–Wagon spigot algorithm. It is pure
// integer arithmetic — the same flavour of tight loop the paper's JavaScript
// kernel runs — and needs no math/big.
func PiDigits(n int) string {
	if n <= 0 {
		return ""
	}
	// Standard spigot: working array of ⌊10n/3⌋+1 base-(2k+1)/k digits.
	size := 10*n/3 + 1
	a := make([]int, size)
	for i := range a {
		a[i] = 2
	}
	var out strings.Builder
	out.Grow(n + 1)
	nines := 0
	predigit := 0
	first := true
	for produced := 0; produced < n; {
		carry := 0
		for i := size - 1; i > 0; i-- {
			x := 10*a[i] + carry*(i+1)
			a[i] = x % (2*i + 1)
			carry = x / (2*i + 1)
		}
		x := 10*a[0] + carry*1
		a[0] = x % 10
		q := x / 10
		switch {
		case q == 9:
			nines++
		case q == 10:
			// Carry ripples: emit predigit+1 and turn buffered 9s into 0s.
			if !first {
				out.WriteByte(byte('0' + predigit + 1))
				produced++
			}
			for ; nines > 0 && produced < n; nines-- {
				out.WriteByte('0')
				produced++
			}
			nines = 0
			predigit = 0
			first = false
		default:
			if !first {
				out.WriteByte(byte('0' + predigit))
				produced++
			}
			first = false
			predigit = q
			for ; nines > 0 && produced < n; nines-- {
				out.WriteByte('9')
				produced++
			}
			nines = 0
		}
	}
	s := out.String()
	if len(s) > n {
		s = s[:n]
	}
	return s
}

// Iteration performs one paper workload iteration — the first PaperDigits
// digits of π — and returns a checksum of the digits so the compiler cannot
// elide the work in benchmarks.
func Iteration() uint32 {
	s := PiDigits(PaperDigits)
	var sum uint32
	for i := 0; i < len(s); i++ {
		sum = sum*31 + uint32(s[i])
	}
	return sum
}

// Validate recomputes a small prefix and checks it against the known value;
// the benchmark refuses to report numbers from a broken kernel.
func Validate() error {
	const want = "3141592653589793238462643383279502884197"
	if got := PiDigits(len(want)); got != want {
		return fmt.Errorf("workload: π kernel produced %q, want %q", got, want)
	}
	return nil
}
