package workload

import "fmt"

// Profile characterizes a workload's microarchitectural shape. The paper
// deliberately chooses a CPU-bound kernel ("The CPU intensive task consists
// of computing the digits of π") because compute-bound work maximizes
// switching power and therefore thermal stress — the lens that makes
// process variation visible. Other shapes exercise the core differently:
// memory-bound work stalls the pipeline (fewer switching transitions, more
// waiting) and stresses silicon less.
//
// A profile scales the device model's two per-workload quantities:
// effective utilization (→ dynamic power) and cycles per iteration (→
// throughput accounting).
type Profile struct {
	// Name identifies the profile, e.g. "pi-cpu-bound".
	Name string
	// PowerFactor scales effective switching activity in (0, 1]. A fully
	// compute-bound loop is 1.0; a memory-bound loop keeps the core
	// stalled much of the time.
	PowerFactor float64
	// CycleFactor scales cycles per iteration (≥ 1 relative to the π
	// kernel's cost baseline): stalled cycles still elapse, so memory-bound
	// iterations cost more cycles for the same nominal work.
	CycleFactor float64
}

// Validate checks the profile's ranges.
func (p Profile) Validate() error {
	if p.Name == "" {
		return fmt.Errorf("workload: unnamed profile")
	}
	if p.PowerFactor <= 0 || p.PowerFactor > 1 {
		return fmt.Errorf("workload: profile %q power factor %v outside (0,1]", p.Name, p.PowerFactor)
	}
	if p.CycleFactor < 1 {
		return fmt.Errorf("workload: profile %q cycle factor %v below 1", p.Name, p.CycleFactor)
	}
	return nil
}

// PiCPUBound is the paper's workload: pure integer compute, saturating the
// pipeline.
func PiCPUBound() Profile {
	return Profile{Name: "pi-cpu-bound", PowerFactor: 1.0, CycleFactor: 1.0}
}

// MemoryBound models a cache-missing streaming kernel: the core idles at
// memory stalls (~45% effective switching) and each nominal iteration takes
// ~2.2× the cycles.
func MemoryBound() Profile {
	return Profile{Name: "memory-bound", PowerFactor: 0.45, CycleFactor: 2.2}
}

// Mixed models a typical app phase: some compute, some stalls.
func Mixed() Profile {
	return Profile{Name: "mixed", PowerFactor: 0.7, CycleFactor: 1.5}
}

// LightUI models interactive use: short bursts, mostly idle waits. The core
// spends so little energy that the die never approaches the thermal
// envelope — the regime where process variation hides.
func LightUI() Profile {
	return Profile{Name: "light-ui", PowerFactor: 0.15, CycleFactor: 6.0}
}
