package workload

import (
	"strings"
	"testing"
	"time"
)

// First 100 digits of π (no decimal point), a classic reference constant.
const pi100 = "3141592653589793238462643383279502884197169399375105820974944592307816406286208998628034825342117067"

func TestPiDigitsKnownPrefix(t *testing.T) {
	for _, n := range []int{1, 2, 10, 50, 100} {
		got := PiDigits(n)
		if got != pi100[:n] {
			t.Errorf("PiDigits(%d) = %q, want %q", n, got, pi100[:n])
		}
	}
}

func TestPiDigitsLengths(t *testing.T) {
	for _, n := range []int{0, -5} {
		if got := PiDigits(n); got != "" {
			t.Errorf("PiDigits(%d) = %q, want empty", n, got)
		}
	}
	for _, n := range []int{1, 7, 33, 250, 1000} {
		if got := PiDigits(n); len(got) != n {
			t.Errorf("len(PiDigits(%d)) = %d", n, len(got))
		}
	}
}

func TestPiDigitsDeeperSlice(t *testing.T) {
	// The first 1000 decimal places of π famously end in "...4201989";
	// PiDigits(1000) is "3" plus 999 decimals, so it ends one digit short
	// of that: "...420198".
	s := PiDigits(1000)
	if !strings.HasSuffix(s, "420198") {
		t.Errorf("digits 995..1000 = %q, want suffix 420198", s[len(s)-6:])
	}
}

func TestPiDigitsPrefixConsistency(t *testing.T) {
	// A longer run must extend, not alter, a shorter run.
	long := PiDigits(500)
	short := PiDigits(137)
	if long[:137] != short {
		t.Error("PiDigits(500) prefix disagrees with PiDigits(137)")
	}
}

func TestValidate(t *testing.T) {
	if err := Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestIterationChecksumStable(t *testing.T) {
	a := Iteration()
	b := Iteration()
	if a != b {
		t.Errorf("checksum not deterministic: %v vs %v", a, b)
	}
	if a == 0 {
		t.Error("suspicious zero checksum")
	}
}

func TestCounterAccrual(t *testing.T) {
	// 1e9 cycles/iteration at 1000 MHz: exactly 1 iteration/second.
	c := NewCounter(1e9)
	c.Advance(1000, time.Second)
	if got := c.Completed(); got != 1 {
		t.Errorf("Completed = %d, want 1", got)
	}
	c.Advance(1000, 2500*time.Millisecond)
	if got := c.Completed(); got != 3 { // 3.5 total → floor 3
		t.Errorf("Completed = %d, want 3", got)
	}
	if c.Progress() != 3.5 {
		t.Errorf("Progress = %v, want 3.5", c.Progress())
	}
}

func TestCounterFractionsCarryOver(t *testing.T) {
	c := NewCounter(1e9)
	for i := 0; i < 10; i++ {
		c.Advance(1000, 100*time.Millisecond) // 0.1 iteration per step
	}
	if got := c.Completed(); got != 1 {
		t.Errorf("Completed = %d, want 1 (fractions must accumulate)", got)
	}
}

func TestCounterFrequencyScaling(t *testing.T) {
	slow := NewCounter(1e9)
	fast := NewCounter(1e9)
	slow.Advance(1000, 10*time.Second)
	fast.Advance(2000, 10*time.Second)
	if fast.Completed() != 2*slow.Completed() {
		t.Errorf("2× frequency gave %d vs %d iterations", fast.Completed(), slow.Completed())
	}
}

func TestCounterIgnoresDegenerateInput(t *testing.T) {
	c := NewCounter(1e9)
	c.Advance(0, time.Second)
	c.Advance(-100, time.Second)
	c.Advance(1000, 0)
	c.Advance(1000, -time.Second)
	if c.Progress() != 0 {
		t.Errorf("degenerate advances accrued %v", c.Progress())
	}
}

func TestCounterReset(t *testing.T) {
	c := NewCounter(1e9)
	c.Advance(1000, 5*time.Second)
	c.Reset()
	if c.Completed() != 0 || c.Progress() != 0 {
		t.Error("Reset did not zero the counter")
	}
}

func TestNewCounterPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewCounter(0) did not panic")
		}
	}()
	NewCounter(0)
}

func TestGroupSumsAcrossCores(t *testing.T) {
	g := NewGroup(4, 1e9)
	if g.Len() != 4 {
		t.Fatalf("Len = %d", g.Len())
	}
	for i := 0; i < 4; i++ {
		g.Counter(i).Advance(1000, 10*time.Second)
	}
	if got := g.Completed(); got != 40 {
		t.Errorf("group Completed = %d, want 40", got)
	}
	g.Reset()
	if g.Completed() != 0 {
		t.Error("group Reset did not zero")
	}
}

func TestGroupPerCoreFloors(t *testing.T) {
	// Two cores each at 0.9 iterations: the paper's per-core tally is 0,
	// not floor(1.8) = 1.
	g := NewGroup(2, 1e9)
	g.Counter(0).Advance(900, time.Second)
	g.Counter(1).Advance(900, time.Second)
	if got := g.Completed(); got != 0 {
		t.Errorf("Completed = %d, want 0 (per-core flooring)", got)
	}
}

func TestProfileValidate(t *testing.T) {
	for _, p := range []Profile{PiCPUBound(), MemoryBound(), Mixed(), LightUI()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s rejected: %v", p.Name, err)
		}
	}
	bad := []Profile{
		{Name: "", PowerFactor: 1, CycleFactor: 1},
		{Name: "x", PowerFactor: 0, CycleFactor: 1},
		{Name: "x", PowerFactor: 1.5, CycleFactor: 1},
		{Name: "x", PowerFactor: 1, CycleFactor: 0.5},
	}
	for i, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("bad profile %d accepted", i)
		}
	}
}

func TestProfileOrdering(t *testing.T) {
	// Memory-bound work switches less and costs more cycles than compute.
	cpu, mem, mix := PiCPUBound(), MemoryBound(), Mixed()
	if !(mem.PowerFactor < mix.PowerFactor && mix.PowerFactor < cpu.PowerFactor) {
		t.Error("power factors not ordered mem < mixed < cpu")
	}
	if !(mem.CycleFactor > mix.CycleFactor && mix.CycleFactor > cpu.CycleFactor) {
		t.Error("cycle factors not ordered mem > mixed > cpu")
	}
}
