package replication

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sync"
	"time"

	"accubench/internal/hlc"
	"accubench/internal/obs"
	"accubench/internal/store"
)

// Defaults for the knobs a Config may leave zero.
const (
	// DefaultAckTimeout bounds how long a commit waits for one replica
	// acknowledgement before the submission is failed back to the client.
	DefaultAckTimeout = 3 * time.Second
	// DefaultShipInterval is the batching window: a committed record
	// waits at most this long before its batch is POSTed.
	DefaultShipInterval = 5 * time.Millisecond
	// DefaultReconcileInterval is the anti-entropy cadence.
	DefaultReconcileInterval = time.Second
	// DefaultSnapshotGap is the repair size at which a reconcile pull is
	// counted as snapshot-shipping catch-up rather than incremental
	// repair.
	DefaultSnapshotGap = 64
	// maxQueue bounds each peer's ship queue; overflow drops the newest
	// record (counted) and leaves the repair to anti-entropy.
	maxQueue = 4096
	// batchMax bounds how many records one replication POST carries.
	batchMax = 256
	// shipRetries is how many times a failed batch POST is retried
	// before its records are abandoned to anti-entropy.
	shipRetries = 3
)

// ErrNoAck is returned by ShipWait when no replica acknowledged the
// record within the ack timeout.
var ErrNoAck = errors.New("replication: no replica acknowledged within the ack timeout")

// Batch is the wire form of one /v1/replicate POST: records shipped
// from one node to a peer.
type Batch struct {
	// From is the shipping node's ID.
	From string `json:"from"`
	// Records are the stamped records, local sequence numbers included
	// (the receiver discards them and assigns its own).
	Records []store.Record `json:"records"`
}

// ApplyResult is the receiver's answer to a Batch.
type ApplyResult struct {
	// Applied is how many records the receiver committed.
	Applied int `json:"applied"`
	// Dups is how many it already held.
	Dups int `json:"dups"`
}

// Config wires a Replicator into one node.
type Config struct {
	// NodeID is this node's identity — the Origin stamped into records
	// it ingests and its name on every ring.
	NodeID string
	// Peers maps every *other* node's ID to its base URL
	// (http://host:port). The ring is NodeID plus these keys.
	Peers map[string]string
	// Replicas is each model's replica-set size, primary included.
	// 0 (or anything beyond the membership) means full replication:
	// every node holds every model and any node's bins are complete.
	Replicas int
	// VNodes is the ring's virtual-node count per node (DefaultVNodes
	// when 0).
	VNodes int
	// Clock is the node's hybrid logical clock.
	Clock *hlc.Clock
	// Store is the node's record store, used for digests and reconcile
	// pulls.
	Store *store.Store
	// Apply durably commits one remote record locally — the node's
	// WAL-backed commit path. It must assign the local sequence number.
	Apply func(*store.Record) error
	// OnApplied is called once per model after remote records land, so
	// the server can mark bins dirty. May be nil.
	OnApplied func(model string)
	// AckTimeout, ShipInterval, ReconcileInterval, SnapshotGap override
	// the defaults when positive.
	AckTimeout        time.Duration
	ShipInterval      time.Duration
	ReconcileInterval time.Duration
	SnapshotGap       int
	// Metrics receives the replication series. May be nil (a throwaway
	// registry is used).
	Metrics *obs.ReplicationMetrics
	// Client is the HTTP client for peer traffic (a 5s-timeout client
	// when nil).
	Client *http.Client
}

// Replicator runs one node's half of the cluster protocol: stamping,
// shipping committed records to the replica set, applying peers'
// batches, and the anti-entropy reconcile loop.
type Replicator struct {
	cfg      Config
	ring     *Ring
	met      *obs.ReplicationMetrics
	client   *http.Client
	shippers map[string]*shipper

	mu        sync.Mutex
	applyGate sync.Mutex // serializes ApplyRemote vs reconcile pulls

	stop chan struct{}
	wg   sync.WaitGroup
	once sync.Once
}

// New builds a Replicator. It does not start background work; call
// Start.
func New(cfg Config) (*Replicator, error) {
	if cfg.NodeID == "" {
		return nil, errors.New("replication: NodeID required")
	}
	if cfg.Clock == nil || cfg.Store == nil || cfg.Apply == nil {
		return nil, errors.New("replication: Clock, Store and Apply required")
	}
	if cfg.AckTimeout <= 0 {
		cfg.AckTimeout = DefaultAckTimeout
	}
	if cfg.ShipInterval <= 0 {
		cfg.ShipInterval = DefaultShipInterval
	}
	if cfg.ReconcileInterval <= 0 {
		cfg.ReconcileInterval = DefaultReconcileInterval
	}
	if cfg.SnapshotGap <= 0 {
		cfg.SnapshotGap = DefaultSnapshotGap
	}
	met := cfg.Metrics
	if met == nil {
		met = obs.NewReplicationMetrics(obs.NewRegistry(""))
	}
	nodes := make([]string, 0, len(cfg.Peers)+1)
	nodes = append(nodes, cfg.NodeID)
	for id := range cfg.Peers {
		nodes = append(nodes, id)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	r := &Replicator{
		cfg:      cfg,
		ring:     NewRing(nodes, cfg.VNodes),
		met:      met,
		client:   client,
		shippers: make(map[string]*shipper, len(cfg.Peers)),
		stop:     make(chan struct{}),
	}
	for id, base := range cfg.Peers {
		r.shippers[id] = newShipper(r, id, base)
	}
	return r, nil
}

// Start launches the per-peer shippers and the reconcile loop.
func (r *Replicator) Start() {
	for _, sh := range r.shippers {
		r.wg.Add(1)
		go sh.loop()
	}
	r.wg.Add(1)
	go r.reconcileLoop()
}

// Close stops background work and waits for it.
func (r *Replicator) Close() {
	r.once.Do(func() { close(r.stop) })
	r.wg.Wait()
}

// NodeID returns this node's identity.
func (r *Replicator) NodeID() string { return r.cfg.NodeID }

// Ring returns the cluster's hash ring.
func (r *Replicator) Ring() *Ring { return r.ring }

// Primary returns the node owning model's shard.
func (r *Replicator) Primary(model string) string { return r.ring.Owner(model) }

// IsPrimary reports whether this node is model's shard primary.
func (r *Replicator) IsPrimary(model string) bool { return r.ring.Owner(model) == r.cfg.NodeID }

// PeerURL returns a peer's base URL.
func (r *Replicator) PeerURL(node string) (string, bool) {
	u, ok := r.cfg.Peers[node]
	return u, ok
}

// Stamp assigns rec a fresh HLC stamp under this node's identity. Call
// it exactly once, on the node that first ingests the submission.
func (r *Replicator) Stamp(rec *store.Record) {
	rec.SetStamp(r.cfg.NodeID, r.cfg.Clock.Now())
}

// replicaTargets returns the peers (self excluded) in model's replica
// set.
func (r *Replicator) replicaTargets(model string) []*shipper {
	set := r.ring.ReplicaSet(model, r.cfg.Replicas)
	out := make([]*shipper, 0, len(set))
	for _, node := range set {
		if sh, ok := r.shippers[node]; ok {
			out = append(out, sh)
		}
	}
	return out
}

// Ship enqueues a committed record to its replica set without waiting
// for acknowledgement.
func (r *Replicator) Ship(rec store.Record) {
	for _, sh := range r.replicaTargets(rec.Model) {
		sh.enqueue(rec, nil)
	}
}

// ShipWait enqueues a committed record to its replica set and blocks
// until at least one replica acknowledges it or the ack timeout runs
// out (ErrNoAck). With no replica targets — a single-node cluster —
// it returns nil at once: local durability is the whole story.
func (r *Replicator) ShipWait(rec store.Record) error {
	targets := r.replicaTargets(rec.Model)
	if len(targets) == 0 {
		return nil
	}
	start := time.Now()
	ack := make(chan struct{}, len(targets))
	for _, sh := range targets {
		sh.enqueue(rec, ack)
	}
	timer := time.NewTimer(r.cfg.AckTimeout)
	defer timer.Stop()
	select {
	case <-ack:
		r.met.AckWait.Observe(time.Since(start).Seconds())
		return nil
	case <-timer.C:
		r.met.AckTimeouts.Inc()
		return ErrNoAck
	case <-r.stop:
		return ErrNoAck
	}
}

// ShipWaitBatch enqueues a whole committed batch to its replica sets
// and blocks until every record has at least one replica
// acknowledgement or the single shared ack timeout runs out (ErrNoAck).
// The per-peer shippers coalesce the enqueues into one replication POST
// per peer in practice, so a 256-record stream batch costs the same
// wire round trips as one ShipWait. Records whose replica set is empty
// (single-node cluster) are durable locally and need no ack.
func (r *Replicator) ShipWaitBatch(recs []store.Record) error {
	start := time.Now()
	acks := make([]chan struct{}, len(recs))
	waiting := 0
	for i := range recs {
		targets := r.replicaTargets(recs[i].Model)
		if len(targets) == 0 {
			continue
		}
		ack := make(chan struct{}, len(targets))
		for _, sh := range targets {
			sh.enqueue(recs[i], ack)
		}
		acks[i] = ack
		waiting++
	}
	if waiting == 0 {
		return nil
	}
	timer := time.NewTimer(r.cfg.AckTimeout)
	defer timer.Stop()
	for _, ack := range acks {
		if ack == nil {
			continue
		}
		select {
		case <-ack:
		case <-timer.C:
			r.met.AckTimeouts.Inc()
			return ErrNoAck
		case <-r.stop:
			return ErrNoAck
		}
	}
	r.met.AckWait.Observe(time.Since(start).Seconds())
	return nil
}

// ApplyRemote merges a peer's records into this node: each stamp is
// folded into the local clock, each record is claimed exactly once
// (Reserve) and committed through the local durable path with a fresh
// local sequence number. Safe to call with records this node already
// holds — replays and reconcile races collapse into dups.
func (r *Replicator) ApplyRemote(recs []store.Record) (ApplyResult, error) {
	r.applyGate.Lock()
	defer r.applyGate.Unlock()
	var res ApplyResult
	dirty := make(map[string]struct{})
	for _, rec := range recs {
		key, ok := rec.Key()
		if !ok {
			// Unstamped records cannot be identified across nodes;
			// refuse rather than double-apply.
			return res, fmt.Errorf("replication: unstamped record for device %q", rec.Device)
		}
		r.cfg.Clock.Update(rec.Stamp())
		if !r.cfg.Store.Reserve(rec.Model, key) {
			res.Dups++
			r.met.ApplyDups.Inc()
			continue
		}
		rec.Seq = 0
		if err := r.cfg.Apply(&rec); err != nil {
			r.cfg.Store.Release(rec.Model, key)
			return res, err
		}
		res.Applied++
		r.met.Applied.Inc()
		dirty[rec.Model] = struct{}{}
	}
	if r.cfg.OnApplied != nil {
		for model := range dirty {
			r.cfg.OnApplied(model)
		}
	}
	return res, nil
}

// ReconcileNow runs one full anti-entropy round against every peer and
// returns the first error (the round still visits all peers).
func (r *Replicator) ReconcileNow() error {
	r.met.ReconcileRounds.Inc()
	var firstErr error
	for id, base := range r.cfg.Peers {
		if err := r.reconcilePeer(id, base); err != nil {
			r.met.ReconcileErrors.Inc()
			if firstErr == nil {
				firstErr = fmt.Errorf("peer %s: %w", id, err)
			}
		}
	}
	return firstErr
}

func (r *Replicator) reconcileLoop() {
	defer r.wg.Done()
	t := time.NewTicker(r.cfg.ReconcileInterval)
	defer t.Stop()
	for {
		select {
		case <-r.stop:
			return
		case <-t.C:
			_ = r.ReconcileNow() // peer-down errors are counted, not fatal
		}
	}
}

// reconcilePeer compares digests with one peer and pulls every model
// that diverged. Pull-only repair: this node fetches what it might be
// missing, the peer's own loop fetches the reverse direction, and both
// sides converge without any push coordination.
func (r *Replicator) reconcilePeer(id, base string) error {
	var remote map[string]store.ModelDigest
	if err := r.getJSON(base+"/v1/digest", &remote); err != nil {
		return err
	}
	local := r.cfg.Store.DigestAll()
	for model, rd := range remote {
		if rd.Records == 0 {
			continue
		}
		ld, ok := local[model]
		if ok && ld.Digest == rd.Digest && ld.Records == rd.Records {
			continue
		}
		pulled, err := r.pullModel(base, model)
		if err != nil {
			return err
		}
		if pulled == 0 {
			continue // divergence was local surplus; the peer pulls from us
		}
		r.met.ReconcileRepairs.Inc()
		r.met.ReconcilePulled.Add(uint64(pulled))
		if pulled >= r.cfg.SnapshotGap {
			r.met.SnapshotCatchups.Inc()
		}
	}
	return nil
}

// pullModel fetches a peer's full state for one model — snapshot
// shipping — and merges it, returning how many records were new here.
func (r *Replicator) pullModel(base, model string) (int, error) {
	var batch Batch
	if err := r.getJSON(base+"/v1/replicate?model="+url.QueryEscape(model), &batch); err != nil {
		return 0, err
	}
	res, err := r.ApplyRemote(batch.Records)
	return res.Applied, err
}

func (r *Replicator) getJSON(u string, out any) error {
	req, err := http.NewRequest(http.MethodGet, u, nil)
	if err != nil {
		return err
	}
	resp, err := r.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return fmt.Errorf("GET %s: %s", u, resp.Status)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// shipItem is one queued record plus an optional shared ack channel.
type shipItem struct {
	rec store.Record
	ack chan<- struct{}
	enq time.Time
}

// shipper owns one peer's outbound replication stream: a bounded
// buffer drained in batches, with capped retries and lag gauges.
type shipper struct {
	r      *Replicator
	peerID string
	base   string

	mu     sync.Mutex
	buf    []shipItem
	notify chan struct{}

	pending *obs.Gauge
	lagMS   *obs.Gauge
}

func newShipper(r *Replicator, peerID, base string) *shipper {
	return &shipper{
		r:       r,
		peerID:  peerID,
		base:    base,
		notify:  make(chan struct{}, 1),
		pending: r.met.PeerPending.With(peerID),
		lagMS:   r.met.PeerLagMS.With(peerID),
	}
}

func (s *shipper) enqueue(rec store.Record, ack chan<- struct{}) {
	s.mu.Lock()
	if len(s.buf) >= maxQueue {
		s.mu.Unlock()
		// A peer this far behind is anti-entropy's problem, not the
		// ingest path's: drop and count.
		s.r.met.ShipDropped.Inc()
		return
	}
	s.buf = append(s.buf, shipItem{rec: rec, ack: ack, enq: time.Now()})
	s.pending.Set(int64(len(s.buf)))
	s.mu.Unlock()
	select {
	case s.notify <- struct{}{}:
	default:
	}
}

// take removes up to batchMax queued items.
func (s *shipper) take() []shipItem {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := len(s.buf)
	if n == 0 {
		s.lagMS.Set(0)
		s.pending.Set(0)
		return nil
	}
	if n > batchMax {
		n = batchMax
	}
	batch := make([]shipItem, n)
	copy(batch, s.buf)
	s.buf = append(s.buf[:0], s.buf[n:]...)
	s.pending.Set(int64(len(s.buf)))
	s.lagMS.Set(time.Since(batch[0].enq).Milliseconds())
	return batch
}

func (s *shipper) loop() {
	defer s.r.wg.Done()
	t := time.NewTicker(s.r.cfg.ShipInterval)
	defer t.Stop()
	for {
		select {
		case <-s.r.stop:
			return
		case <-s.notify:
		case <-t.C:
		}
		for {
			batch := s.take()
			if len(batch) == 0 {
				break
			}
			s.ship(batch)
		}
	}
}

// ship POSTs one batch, retrying a few times; exhausted retries abandon
// the records to anti-entropy.
func (s *shipper) ship(batch []shipItem) {
	recs := make([]store.Record, len(batch))
	for i, it := range batch {
		recs[i] = it.rec
	}
	body, err := json.Marshal(Batch{From: s.r.cfg.NodeID, Records: recs})
	if err != nil {
		s.r.met.ShipErrors.Inc()
		return
	}
	for attempt := 0; ; attempt++ {
		err = s.post(body)
		if err == nil {
			s.r.met.ShipBatches.Inc()
			s.r.met.ShipRecords.Add(uint64(len(batch)))
			for _, it := range batch {
				if it.ack != nil {
					select {
					case it.ack <- struct{}{}:
					default: // waiter already satisfied or gone
					}
				}
			}
			return
		}
		s.r.met.ShipErrors.Inc()
		if attempt >= shipRetries {
			s.r.met.ShipDropped.Add(uint64(len(batch)))
			s.lagMS.Set(time.Since(batch[0].enq).Milliseconds())
			return
		}
		backoff := time.Duration(50<<attempt) * time.Millisecond
		select {
		case <-s.r.stop:
			return
		case <-time.After(backoff):
		}
	}
}

func (s *shipper) post(body []byte) error {
	resp, err := s.r.client.Post(s.base+"/v1/replicate", "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("POST %s/v1/replicate: %s", s.base, resp.Status)
	}
	return nil
}
