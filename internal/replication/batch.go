package replication

import (
	"encoding/json"
	"fmt"
	"io"
)

// DecodeBatch parses and validates the body of one /v1/replicate POST.
// It is the cluster's trust boundary for peer traffic: the server
// answers 400 to anything DecodeBatch rejects, so protocol garbage — a
// truncated body, trailing bytes, unstamped records, records missing
// their model or device identity — is refused before ApplyRemote ever
// sees it. The decoder is fuzzed (FuzzBatchDecode) in `make fuzz-smoke`.
func DecodeBatch(r io.Reader) (Batch, error) {
	var b Batch
	dec := json.NewDecoder(r)
	if err := dec.Decode(&b); err != nil {
		return Batch{}, fmt.Errorf("replication: batch undecodable: %w", err)
	}
	// One JSON document per body: trailing data means a framing bug (or a
	// hostile peer), not a batch.
	if err := dec.Decode(new(json.RawMessage)); err != io.EOF {
		return Batch{}, fmt.Errorf("replication: trailing data after batch")
	}
	if b.From == "" {
		return Batch{}, fmt.Errorf("replication: batch missing origin node ID")
	}
	for i, rec := range b.Records {
		if _, ok := rec.Key(); !ok {
			return Batch{}, fmt.Errorf("replication: record %d of %d is unstamped", i, len(b.Records))
		}
		if rec.Model == "" {
			return Batch{}, fmt.Errorf("replication: record %d of %d has no model", i, len(b.Records))
		}
		if rec.Device == "" {
			return Batch{}, fmt.Errorf("replication: record %d of %d has no device", i, len(b.Records))
		}
	}
	return b, nil
}
