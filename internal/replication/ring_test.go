package replication

import (
	"fmt"
	"testing"
)

func keys(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("Model-%04d", i)
	}
	return out
}

// TestRingBalance pins the load-spread bound the vnode count buys: with
// 3 nodes and 1000 keys no node owns less than half or more than double
// its fair share.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	counts := map[string]int{}
	ks := keys(1000)
	for _, k := range ks {
		counts[r.Owner(k)]++
	}
	fair := len(ks) / r.Len()
	for _, n := range r.Nodes() {
		if c := counts[n]; c < fair/2 || c > fair*2 {
			t.Fatalf("node %s owns %d of %d keys (fair share %d): balance out of bounds %+v", n, c, len(ks), fair, counts)
		}
	}
}

// TestRingMinimalReassignment is the consistent-hashing contract: a
// membership change only moves keys touching the changed node.
func TestRingMinimalReassignment(t *testing.T) {
	base := NewRing([]string{"n1", "n2", "n3"}, 0)
	ks := keys(1000)

	grown := base.WithNode("n4")
	moved := 0
	for _, k := range ks {
		was, is := base.Owner(k), grown.Owner(k)
		if was != is {
			moved++
			if is != "n4" {
				t.Fatalf("key %s moved %s -> %s on join of n4: a join may only move keys to the joiner", k, was, is)
			}
		}
	}
	// n4's fair share is a quarter; far less than half must move.
	if moved == 0 || moved > len(ks)/2 {
		t.Fatalf("join moved %d of %d keys", moved, len(ks))
	}

	shrunk := base.WithoutNode("n2")
	for _, k := range ks {
		was, is := base.Owner(k), shrunk.Owner(k)
		if was != "n2" && was != is {
			t.Fatalf("key %s moved %s -> %s on leave of n2: a leave may only move the leaver's keys", k, was, is)
		}
		if is == "n2" {
			t.Fatalf("key %s still owned by the removed node", k)
		}
	}
}

// TestRingOwnerDeterministic: two independently built rings over the
// same membership agree on every owner — nodes can compute routing
// locally with no coordination.
func TestRingOwnerDeterministic(t *testing.T) {
	a := NewRing([]string{"n3", "n1", "n2"}, 0)
	b := NewRing([]string{"n2", "n2", "n1", "n3", ""}, 0)
	for _, k := range keys(200) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("rings over identical membership disagree on %s: %s vs %s", k, a.Owner(k), b.Owner(k))
		}
	}
}

func TestReplicaSet(t *testing.T) {
	r := NewRing([]string{"n1", "n2", "n3"}, 0)
	for _, k := range keys(50) {
		set := r.ReplicaSet(k, 2)
		if len(set) != 2 {
			t.Fatalf("ReplicaSet(%s, 2) = %v", k, set)
		}
		if set[0] != r.Owner(k) {
			t.Fatalf("ReplicaSet(%s) does not lead with the primary: %v vs %s", k, set, r.Owner(k))
		}
		if set[0] == set[1] {
			t.Fatalf("ReplicaSet(%s) repeats a node: %v", k, set)
		}
		// n <= 0 means full replication.
		if full := r.ReplicaSet(k, 0); len(full) != 3 {
			t.Fatalf("ReplicaSet(%s, 0) = %v, want all 3 nodes", k, full)
		}
		// n beyond membership clamps.
		if over := r.ReplicaSet(k, 99); len(over) != 3 {
			t.Fatalf("ReplicaSet(%s, 99) = %v", k, over)
		}
	}
}

// TestRingJoinMovesFairShare tightens the reassignment bound dynamic
// membership will rely on: a join moves roughly the joiner's fair share
// of keys — not just "fewer than half".
func TestRingJoinMovesFairShare(t *testing.T) {
	base := NewRing([]string{"n1", "n2", "n3"}, 0)
	ks := keys(2000)
	grown := base.WithNode("n4")
	moved := 0
	for _, k := range ks {
		if base.Owner(k) != grown.Owner(k) {
			moved++
		}
	}
	// n4's fair share is a quarter of the keyspace; the vnode spread
	// keeps the real figure within [fair/2, 2*fair].
	fair := len(ks) / grown.Len()
	if moved < fair/2 || moved > fair*2 {
		t.Fatalf("join of n4 moved %d of %d keys, want within [%d, %d] of the fair share %d",
			moved, len(ks), fair/2, fair*2, fair)
	}
}

// TestRingBalanceAfterMembershipChange: the balance bound holds not just
// on freshly built rings but across WithNode/WithoutNode transitions —
// the rings dynamic membership actually routes on.
func TestRingBalanceAfterMembershipChange(t *testing.T) {
	ks := keys(2000)
	assertBalanced := func(r *Ring, label string) {
		t.Helper()
		counts := map[string]int{}
		for _, k := range ks {
			counts[r.Owner(k)]++
		}
		fair := len(ks) / r.Len()
		for _, n := range r.Nodes() {
			if c := counts[n]; c < fair/2 || c > fair*2 {
				t.Fatalf("%s: node %s owns %d of %d keys (fair %d): %+v", label, n, c, len(ks), fair, counts)
			}
		}
	}
	base := NewRing([]string{"n1", "n2", "n3"}, 0)
	assertBalanced(base.WithNode("n4"), "after join of n4")
	assertBalanced(base.WithoutNode("n2"), "after leave of n2")
	// A join then a leave of the same node routes identically to never
	// having seen it — membership changes are self-inverse.
	back := base.WithNode("n4").WithoutNode("n4")
	for _, k := range ks {
		if base.Owner(k) != back.Owner(k) {
			t.Fatalf("join+leave of n4 changed ownership of %s: %s -> %s", k, base.Owner(k), back.Owner(k))
		}
	}
	// No-op transitions: joining a member and removing a stranger leave
	// the ring untouched.
	if same := base.WithNode("n2"); same.Len() != base.Len() {
		t.Fatalf("WithNode of an existing member changed membership: %v", same.Nodes())
	}
	if same := base.WithoutNode("nX"); same.Len() != base.Len() {
		t.Fatalf("WithoutNode of a stranger changed membership: %v", same.Nodes())
	}
}

func TestEmptyRing(t *testing.T) {
	r := NewRing(nil, 0)
	if r.Owner("anything") != "" || r.ReplicaSet("anything", 3) != nil || r.Len() != 0 {
		t.Fatal("empty ring must own nothing")
	}
	one := r.WithNode("solo")
	if one.Owner("anything") != "solo" {
		t.Fatal("single-node ring must own everything")
	}
}
