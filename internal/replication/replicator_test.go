package replication

import (
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"accubench/internal/hlc"
	"accubench/internal/obs"
	"accubench/internal/store"
)

// newNode builds a Replicator around a fresh store whose Apply path is
// a plain store.Put — the durable-commit seam the server fills with its
// WAL in production.
func newNode(t *testing.T, id string, peers map[string]string, tweak func(*Config)) (*Replicator, *store.Store) {
	t.Helper()
	st := store.New(4)
	cfg := Config{
		NodeID: id,
		Peers:  peers,
		Clock:  hlc.NewClock(nil, 0),
		Store:  st,
		Apply: func(rec *store.Record) error {
			seq, err := st.Put(*rec)
			if err == nil {
				rec.Seq = seq
			}
			return err
		},
		ShipInterval:      time.Millisecond,
		ReconcileInterval: time.Hour, // tests drive ReconcileNow explicitly
		Metrics:           obs.NewReplicationMetrics(obs.NewRegistry("")),
	}
	if tweak != nil {
		tweak(&cfg)
	}
	r, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return r, st
}

// peerHandler exposes a Replicator over the two cluster paths exactly
// as internal/server does, so tests can wire real replicators together.
func peerHandler(r *Replicator, st *store.Store) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/digest", func(w http.ResponseWriter, req *http.Request) {
		json.NewEncoder(w).Encode(st.DigestAll())
	})
	mux.HandleFunc("/v1/replicate", func(w http.ResponseWriter, req *http.Request) {
		if req.Method == http.MethodGet {
			json.NewEncoder(w).Encode(Batch{From: r.NodeID(), Records: st.Model(req.URL.Query().Get("model"))})
			return
		}
		var b Batch
		if err := json.NewDecoder(req.Body).Decode(&b); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		res, err := r.ApplyRemote(b.Records)
		if err != nil {
			http.Error(w, err.Error(), http.StatusInternalServerError)
			return
		}
		json.NewEncoder(w).Encode(res)
	})
	return mux
}

func stampedRec(origin string, wall int64, logical uint16, device string) store.Record {
	r := store.Record{Device: device, Model: "Pixel 2", Score: 1000, Accepted: true}
	r.SetStamp(origin, hlc.Timestamp{Wall: wall, Logical: logical})
	return r
}

func TestShipWaitAcksAfterReplicaApply(t *testing.T) {
	// One live peer node behind a real handler.
	peer, peerStore := newNode(t, "n2", nil, nil)
	srv := httptest.NewServer(peerHandler(peer, peerStore))
	defer srv.Close()

	r, st := newNode(t, "n1", map[string]string{"n2": srv.URL}, nil)
	r.Start()
	defer r.Close()

	rec := store.Record{Device: "d0", Model: "Pixel 2", Score: 1234, Accepted: true}
	r.Stamp(&rec)
	if rec.Origin != "n1" || rec.Stamp().IsZero() {
		t.Fatalf("Stamp left the record unstamped: %+v", rec)
	}
	if _, err := st.Put(rec); err != nil {
		t.Fatal(err)
	}
	if err := r.ShipWait(rec); err != nil {
		t.Fatalf("ShipWait: %v", err)
	}
	k, _ := rec.Key()
	if !peerStore.HasKey(rec.Model, k) {
		t.Fatal("acknowledged record missing from the replica store")
	}
	// The replica's clock heard the stamp: its next stamp orders after.
	if !rec.Stamp().Before(peer.cfg.Clock.Now()) {
		t.Fatal("replica clock did not fold in the shipped stamp")
	}
}

func TestShipWaitFailsWithDeadPeer(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close() // dead from the start
	r, _ := newNode(t, "n1", map[string]string{"n2": srv.URL}, func(c *Config) {
		c.AckTimeout = 150 * time.Millisecond
	})
	r.Start()
	defer r.Close()

	rec := store.Record{Device: "d0", Model: "Pixel 2", Score: 1}
	r.Stamp(&rec)
	if err := r.ShipWait(rec); err != ErrNoAck {
		t.Fatalf("ShipWait against a dead peer: %v, want ErrNoAck", err)
	}
	if got := r.met.AckTimeouts.Value(); got != 1 {
		t.Fatalf("AckTimeouts = %d, want 1", got)
	}
}

func TestShipWaitNoPeersIsLocalOnly(t *testing.T) {
	r, _ := newNode(t, "solo", nil, nil)
	rec := store.Record{Device: "d0", Model: "Pixel 2"}
	r.Stamp(&rec)
	if err := r.ShipWait(rec); err != nil {
		t.Fatalf("single-node ShipWait: %v", err)
	}
}

func TestApplyRemoteIsIdempotent(t *testing.T) {
	r, st := newNode(t, "n1", nil, nil)
	batch := []store.Record{
		stampedRec("n2", 100, 0, "da"),
		stampedRec("n2", 100, 1, "db"),
	}
	res, err := r.ApplyRemote(batch)
	if err != nil || res.Applied != 2 || res.Dups != 0 {
		t.Fatalf("first apply: %+v, %v", res, err)
	}
	res, err = r.ApplyRemote(batch)
	if err != nil || res.Applied != 0 || res.Dups != 2 {
		t.Fatalf("replayed apply: %+v, %v — replay must collapse into dups", res, err)
	}
	if st.Len() != 2 {
		t.Fatalf("store holds %d records after replay, want 2", st.Len())
	}
	// Local sequence numbers were assigned fresh, not taken from the wire.
	for _, rec := range st.Model("Pixel 2") {
		if rec.Seq == 0 {
			t.Fatalf("applied record has no local seq: %+v", rec)
		}
	}
	if _, err := r.ApplyRemote([]store.Record{{Device: "x", Model: "m"}}); err == nil {
		t.Fatal("ApplyRemote accepted an unstamped record")
	}
}

func TestApplyRemoteNotifiesPerModel(t *testing.T) {
	var dirty atomic.Int32
	r, _ := newNode(t, "n1", nil, func(c *Config) {
		c.OnApplied = func(model string) { dirty.Add(1) }
	})
	batch := []store.Record{
		stampedRec("n2", 100, 0, "da"),
		stampedRec("n2", 100, 1, "db"), // same model: one notification
	}
	if _, err := r.ApplyRemote(batch); err != nil {
		t.Fatal(err)
	}
	if dirty.Load() != 1 {
		t.Fatalf("OnApplied fired %d times for one model, want 1", dirty.Load())
	}
}

// TestReconcileRepairsDivergence drives the anti-entropy core: a node
// that missed every live ship pulls the divergent models from its peer
// and converges to an identical digest.
func TestReconcileRepairsDivergence(t *testing.T) {
	a, aStore := newNode(t, "na", nil, nil)
	srv := httptest.NewServer(peerHandler(a, aStore))
	defer srv.Close()

	// Seed A with records B never saw — enough to cross the snapshot gap.
	for i := 0; i < 10; i++ {
		if _, err := aStore.Put(stampedRec("na", int64(100+i), 0, fmt.Sprintf("d%02d", i))); err != nil {
			t.Fatal(err)
		}
	}

	b, bStore := newNode(t, "nb", map[string]string{"na": srv.URL}, func(c *Config) {
		c.SnapshotGap = 4
	})
	if err := b.ReconcileNow(); err != nil {
		t.Fatalf("ReconcileNow: %v", err)
	}
	da, _ := aStore.Digest("Pixel 2")
	db, ok := bStore.Digest("Pixel 2")
	if !ok || da != db {
		t.Fatalf("digests diverge after reconcile: %+v vs %+v", da, db)
	}
	if got := b.met.ReconcileRepairs.Value(); got != 1 {
		t.Fatalf("ReconcileRepairs = %d, want 1", got)
	}
	if got := b.met.ReconcilePulled.Value(); got != 10 {
		t.Fatalf("ReconcilePulled = %d, want 10", got)
	}
	if got := b.met.SnapshotCatchups.Value(); got != 1 {
		t.Fatalf("SnapshotCatchups = %d, want 1 (pull of 10 >= gap 4)", got)
	}

	// A second round finds nothing to pull.
	if err := b.ReconcileNow(); err != nil {
		t.Fatal(err)
	}
	if got := b.met.ReconcileRepairs.Value(); got != 1 {
		t.Fatalf("converged reconcile still repaired: %d rounds", got)
	}
}

func TestReconcileCountsDeadPeer(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close()
	b, _ := newNode(t, "nb", map[string]string{"na": srv.URL}, nil)
	if err := b.ReconcileNow(); err == nil {
		t.Fatal("ReconcileNow against a dead peer returned nil")
	}
	if got := b.met.ReconcileErrors.Value(); got != 1 {
		t.Fatalf("ReconcileErrors = %d, want 1", got)
	}
}

// TestShipperAbandonsToAntiEntropy: a dead peer exhausts retries, the
// records are dropped and counted, and the shipper keeps serving later
// traffic instead of wedging.
func TestShipperAbandonsToAntiEntropy(t *testing.T) {
	srv := httptest.NewServer(http.NotFoundHandler())
	srv.Close()
	r, _ := newNode(t, "n1", map[string]string{"n2": srv.URL}, func(c *Config) {
		c.AckTimeout = 50 * time.Millisecond
	})
	r.Start()
	defer r.Close()

	rec := store.Record{Device: "d0", Model: "Pixel 2"}
	r.Stamp(&rec)
	r.Ship(rec)
	deadline := time.Now().Add(5 * time.Second)
	for r.met.ShipDropped.Value() == 0 {
		if time.Now().After(deadline) {
			t.Fatalf("shipper never abandoned the batch: errors=%d dropped=%d",
				r.met.ShipErrors.Value(), r.met.ShipDropped.Value())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if r.met.ShipErrors.Value() < shipRetries {
		t.Fatalf("ShipErrors = %d, want >= %d retries", r.met.ShipErrors.Value(), shipRetries)
	}
}

func TestReplicaTargetsRespectReplicaCount(t *testing.T) {
	peers := map[string]string{"n2": "http://x", "n3": "http://x"}
	r, _ := newNode(t, "n1", peers, func(c *Config) { c.Replicas = 2 })
	// With replicas=2 each model has one primary + one follower; this
	// node ships to at most one peer per model, and for some model it
	// must be outside the set entirely or inside it.
	for _, model := range []string{"A", "B", "C", "D", "E", "F", "G", "H"} {
		set := r.Ring().ReplicaSet(model, 2)
		if len(set) != 2 {
			t.Fatalf("ReplicaSet(%s) = %v", model, set)
		}
		targets := r.replicaTargets(model)
		want := 0
		for _, n := range set {
			if n != "n1" {
				want++
			}
		}
		if len(targets) != want {
			t.Fatalf("model %s: %d ship targets, want %d (set %v)", model, len(targets), want, set)
		}
	}
	// Replicas=0 means every peer.
	full, _ := newNode(t, "n1", peers, nil)
	if got := full.replicaTargets("anything"); len(got) != 2 {
		t.Fatalf("full replication ships to %d peers, want 2", len(got))
	}
}
