package replication

import (
	"bytes"
	"encoding/json"
	"reflect"
	"testing"
)

// FuzzBatchDecode fuzzes the /v1/replicate body decoder — the surface
// every byte of peer traffic crosses. DecodeBatch must never panic,
// everything it accepts must carry only stamped, fully-identified
// records (ApplyRemote stores accepted batches without re-checking
// identity), and accepted bodies must round-trip through json.Marshal
// to an equal batch.
func FuzzBatchDecode(f *testing.F) {
	f.Add([]byte(`{"from":"n1","records":[{"device":"unit-1","model":"Nexus 5","score":1500,"estimated_ambient":25,"accepted":true,"hlc_wall":1700000000000,"hlc_logical":3,"origin":"n1"}]}`))
	f.Add([]byte(`{"from":"n2","records":[]}`))
	f.Add([]byte(`{"from":"","records":[]}`))
	f.Add([]byte(`{"from":"n1","records":[{"device":"d","model":"m","score":1}]}`)) // unstamped
	f.Add([]byte(`{"from":"n1","records":[{"device":"","model":"m","hlc_wall":1,"origin":"x"}]}`))
	f.Add([]byte(`{"from":"n1","records":null}{"from":"n2"}`)) // trailing document
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		b, err := DecodeBatch(bytes.NewReader(raw))
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		if b.From == "" {
			t.Fatalf("DecodeBatch accepted a batch with no origin: %q", raw)
		}
		for i, rec := range b.Records {
			if _, ok := rec.Key(); !ok {
				t.Fatalf("DecodeBatch accepted unstamped record %d: %q", i, raw)
			}
			if rec.Model == "" || rec.Device == "" {
				t.Fatalf("DecodeBatch accepted unidentified record %d: %q", i, raw)
			}
		}
		// Accepted batches survive a marshal → decode round trip intact.
		wire, err := json.Marshal(b)
		if err != nil {
			t.Fatalf("accepted batch failed to marshal: %v", err)
		}
		b2, err := DecodeBatch(bytes.NewReader(wire))
		if err != nil {
			t.Fatalf("re-marshaled batch failed to decode: %v\nwire: %s", err, wire)
		}
		if !reflect.DeepEqual(b, b2) {
			t.Fatalf("batch round-trip unstable:\nfirst:  %+v\nsecond: %+v", b, b2)
		}
	})
}
