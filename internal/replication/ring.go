// Package replication turns a set of crowdd nodes into one replicated,
// sharded cluster.
//
// Device models are sharded across nodes by a consistent-hash ring
// (Ring): each model has a primary that stamps its submissions with a
// hybrid-logical-clock timestamp, and a replica set the primary ships
// committed records to over HTTP. Shipping is asynchronous and lossy by
// design (bounded queues, capped retries); a periodic anti-entropy loop
// (Replicator.reconcile) exchanges per-model digests with every peer and
// pulls whatever diverged, so the cluster converges even through node
// kills, dropped batches and partitions. Far-behind followers are caught
// up by pulling the full model state in one exchange — snapshot shipping
// rather than record-at-a-time repair.
//
// The package is transport-thin: it speaks two HTTP paths the server
// exposes (/v1/replicate, /v1/digest) and leaves durability to the
// Apply callback, which routes through the node's own WAL-backed commit
// path.
package replication

import (
	"fmt"
	"hash/fnv"
	"sort"
)

// DefaultVNodes is how many virtual points each node contributes to the
// ring. More points smooth the key balance; 64 keeps the worst node
// within a few tens of percent of the mean for small clusters while the
// ring stays tiny.
const DefaultVNodes = 64

// Ring is an immutable consistent-hash ring mapping shard keys (device
// model names) to node IDs. Each node appears vnodes times at
// pseudo-random points on a 64-bit circle; a key is owned by the first
// node point at or clockwise of the key's hash. Immutability makes
// membership changes explicit derivations (WithNode, WithoutNode) and
// lets lookups run lock-free.
type Ring struct {
	points []ringPoint // sorted by hash
	nodes  []string    // sorted, distinct
	vnodes int
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds a ring over the given node IDs with vnodes virtual
// points per node (DefaultVNodes when <= 0). Duplicate node IDs
// collapse.
func NewRing(nodes []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	distinct := make([]string, 0, len(nodes))
	seen := make(map[string]bool, len(nodes))
	for _, n := range nodes {
		if n == "" || seen[n] {
			continue
		}
		seen[n] = true
		distinct = append(distinct, n)
	}
	sort.Strings(distinct)
	r := &Ring{
		points: make([]ringPoint, 0, len(distinct)*vnodes),
		nodes:  distinct,
		vnodes: vnodes,
	}
	for _, n := range distinct {
		for i := 0; i < vnodes; i++ {
			r.points = append(r.points, ringPoint{hash: hashKey(fmt.Sprintf("%s#%d", n, i)), node: n})
		}
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
	return r
}

// hashKey hashes a ring key or vnode label onto the 64-bit circle.
// FNV-64a alone clusters short, similar strings ("n1#0", "n1#1", ...)
// into a narrow band of the circle, so the sum is pushed through a
// 64-bit avalanche finalizer (the splitmix64 mixer) to spread the
// points uniformly.
func hashKey(s string) uint64 {
	h := fnv.New64a()
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// Nodes returns the ring's members, sorted.
func (r *Ring) Nodes() []string {
	return append([]string(nil), r.nodes...)
}

// Len returns the member count.
func (r *Ring) Len() int { return len(r.nodes) }

// Owner returns the node that owns key — its shard primary. Empty
// string on an empty ring.
func (r *Ring) Owner(key string) string {
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(hashKey(key))].node
}

// search returns the index of the first point at or clockwise of h.
func (r *Ring) search(h uint64) int {
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return i
}

// ReplicaSet returns up to n distinct nodes for key, primary first,
// walking clockwise from the key's hash. n <= 0 (or n beyond the
// membership) means every node — full replication.
func (r *Ring) ReplicaSet(key string, n int) []string {
	if len(r.points) == 0 {
		return nil
	}
	if n <= 0 || n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(hashKey(key)); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// WithNode derives a ring with node added. Only keys that the new node
// now owns move; everything else keeps its owner — the consistent-hash
// contract that keeps a membership change from reshuffling the cluster.
func (r *Ring) WithNode(node string) *Ring {
	return NewRing(append(r.Nodes(), node), r.vnodes)
}

// WithoutNode derives a ring with node removed; only that node's keys
// move, each to its clockwise successor.
func (r *Ring) WithoutNode(node string) *Ring {
	rest := make([]string, 0, len(r.nodes))
	for _, n := range r.nodes {
		if n != node {
			rest = append(rest, n)
		}
	}
	return NewRing(rest, r.vnodes)
}
