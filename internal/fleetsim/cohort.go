package fleetsim

import (
	"fmt"
	"math"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/device"
	"accubench/internal/governor"
	"accubench/internal/obs"
	"accubench/internal/power"
	"accubench/internal/silicon"
	"accubench/internal/sim"
	"accubench/internal/soc"
	"accubench/internal/thermal"
	"accubench/internal/trace"
	"accubench/internal/units"
	"accubench/internal/workload"
)

// Phase is the protocol state a shard of devices is in. One Phase is
// shared by every device of a shard because the wild protocol is lock-
// stepped: all devices of a shard enter warmup, cooldown and workload at
// the same simulated instant, exactly as a crowd.WildDevice does when
// driven by the accubench runner.
type Phase struct {
	// Elapsed is the shard's simulated uptime.
	Elapsed time.Duration
	// Busy is true while the π workload runs.
	Busy bool
	// Wakelock is true while the app holds its wakelock.
	Wakelock bool
}

// tempInvariant mirrors the device package's voltage-scheme probe.
type tempInvariant interface{ TempInvariant() bool }

// Cohort is every fleet device of one handset model, laid out as
// struct-of-arrays: each per-device quantity lives in its own contiguous
// slice, so the per-tick loop streams through memory instead of chasing
// one pointer-rich object graph per device. All model-derived constants
// (clusters, thermal body, policies, supply voltage) are hoisted out of
// the arrays — they are identical across the cohort.
//
// Devices in a cohort are mutually independent: nothing a device does
// couples to a neighbour, which is what lets RunWild shard a cohort into
// contiguous index ranges and run each range on its own worker without
// any synchronization, with results that are bit-identical regardless of
// the worker count.
type Cohort struct {
	model *soc.DeviceModel
	n     int
	base  int // global id of device 0

	// Cohort-wide constants, hoisted from the model.
	big         soc.Cluster
	little      *soc.Cluster
	policy      soc.ThermalPolicy
	leak        silicon.LeakageModel
	uncore      units.Watts
	profile     workload.Profile
	sensorSigma float64
	// vCap is the input-voltage throttle cap. The wild protocol powers
	// every device from a constant-voltage bench supply at the model's
	// nominal voltage, so the cap is a cohort constant — including the
	// LG G5's anomaly, whose 3.85 V nominal sits below the 3.95 V
	// threshold and caps the whole cohort at 1728 MHz.
	vCap units.MegaHertz
	// body and sub are the sealed two-node thermal constants and the
	// stable Euler substep (PR-5's sealed fast path, shared per cohort).
	body thermal.TwoNodeParams
	sub  time.Duration
	// share is the per-core chip-leakage share 1/(nBig+nLittle),
	// computed exactly as power.Model.Evaluate computes it.
	share       float64
	voltTempInv bool
	hasLittle   bool
	cpiBig      float64
	cpiLittle   float64
	ceffBig     units.Farads
	ceffLittle  units.Farads

	// Per-device population identity.
	names   []string
	corners []silicon.ProcessCorner
	// cornerShare[i] is corners[i].Leakage · share, the first argument
	// Evaluate passes to the leakage model for every core of device i.
	cornerShare []float64
	ambient     []units.Celsius

	// Per-device simulation state (the SoA hot set).
	dieT    []units.Celsius
	caseT   []units.Celsius
	engines []governor.EngineState
	sensor  []sim.Stream
	util    []sim.Stream

	utilLevel    []float64
	utilLevelEnd []time.Duration
	energy       []units.Joules

	// Effective-frequency memo, keyed on the engine's thermal cap (the
	// only varying input — the governor is Performance for the whole
	// wild protocol and the voltage cap is a cohort constant).
	memoCap     []units.MegaHertz
	memoBigF    []units.MegaHertz
	memoLittleF []units.MegaHertz

	// Rail-voltage memos, one per cluster, with the same invalidation
	// rules as device.railVoltage: exact (frequency, temperature) keys,
	// temperature collapsed for temp-invariant schemes. vterm banks the
	// silicon.VoltFactor of the memoized voltage — a pure function of
	// it, so a hit is still bit-identical to the unmemoized chain.
	bigVValid    []bool
	bigVFreq     []units.MegaHertz
	bigVTemp     []units.Celsius
	bigV         []units.Volts
	bigVterm     []float64
	littleVValid []bool
	littleVFreq  []units.MegaHertz
	littleVTemp  []units.Celsius
	littleV      []units.Volts
	littleVterm  []float64

	// Workload progress, one float64 per core per device, stride Cores.
	bigProg    []float64
	littleProg []float64

	// Optional per-device trace recorders (Record mode, used by the
	// bit-identity goldens; far too heavy for million-device runs).
	recs                                               []*trace.Recorder
	sDie, sCase, sFreqBig, sFreqLittle, sPower, sCores []*trace.Series

	// steps counts device·steps into the fleet's metrics registry; nil
	// when the fleet has no registry.
	steps *obs.Counter
}

// Model returns the cohort's handset model.
func (c *Cohort) Model() *soc.DeviceModel { return c.model }

// Devices returns the cohort's population size.
func (c *Cohort) Devices() int { return c.n }

// Name returns device i's unit name, e.g. "fleet-0000042".
func (c *Cohort) Name(i int) string { return c.names[i] }

// Corner returns device i's silicon-lottery outcome.
func (c *Cohort) Corner(i int) silicon.ProcessCorner { return c.corners[i] }

// Ambient returns device i's wild ambient (ground truth the backend
// never sees).
func (c *Cohort) Ambient(i int) units.Celsius { return c.ambient[i] }

// Energy returns the total energy device i has drawn so far.
func (c *Cohort) Energy(i int) units.Joules { return c.energy[i] }

// DieTemperature returns device i's current die temperature.
func (c *Cohort) DieTemperature(i int) units.Celsius { return c.dieT[i] }

// Recorder returns device i's trace recorder, or nil unless the fleet
// was built with Record.
func (c *Cohort) Recorder(i int) *trace.Recorder {
	if c.recs == nil {
		return nil
	}
	return c.recs[i]
}

// attachRecorders gives every device a trace recorder with the series
// handles resolved in device.New's creation order, so WriteCSV emits the
// identical column layout (the bit-identity golden compares raw bytes).
func (c *Cohort) attachRecorders() {
	n := c.n
	c.recs = make([]*trace.Recorder, n)
	c.sDie = make([]*trace.Series, n)
	c.sCase = make([]*trace.Series, n)
	c.sFreqBig = make([]*trace.Series, n)
	if c.hasLittle {
		c.sFreqLittle = make([]*trace.Series, n)
	}
	c.sPower = make([]*trace.Series, n)
	c.sCores = make([]*trace.Series, n)
	for i := 0; i < n; i++ {
		rec := trace.NewRecorder()
		c.recs[i] = rec
		c.sDie[i] = rec.Series("die", "C")
		c.sCase[i] = rec.Series("case", "C")
		c.sFreqBig[i] = rec.Series("freq.big", "MHz")
		if c.hasLittle {
			c.sFreqLittle[i] = rec.Series("freq.little", "MHz")
		}
		c.sPower[i] = rec.Series("power", "W")
		c.sCores[i] = rec.Series("cores.online", "n")
	}
}

// Score returns device i's completed iterations: the sum of per-core
// floors, exactly as device.CompletedIterations tallies it.
func (c *Cohort) Score(i int) int {
	total := 0
	base := i * c.big.Cores
	for k := 0; k < c.big.Cores; k++ {
		total += int(c.bigProg[base+k] + 1e-9)
	}
	if c.hasLittle {
		base = i * c.little.Cores
		for k := 0; k < c.little.Cores; k++ {
			total += int(c.littleProg[base+k] + 1e-9)
		}
	}
	return total
}

// resetCounters zeroes the workload progress of devices [lo, hi) — the
// phase-boundary ResetCounters of the protocol.
func (c *Cohort) resetCounters(lo, hi int) {
	for k := lo * c.big.Cores; k < hi*c.big.Cores; k++ {
		c.bigProg[k] = 0
	}
	if c.hasLittle {
		for k := lo * c.little.Cores; k < hi*c.little.Cores; k++ {
			c.littleProg[k] = 0
		}
	}
}

// readSensor is ReadTempSensor for device i: true die temperature plus
// Gaussian noise, quantized to the sysfs 0.1 °C resolution.
func (c *Cohort) readSensor(i int) units.Celsius {
	raw := float64(c.dieT[i]) + c.sensor[i].Normal(0, c.sensorSigma)
	return device.QuantizeSensor(raw)
}

// Step advances devices [lo, hi) by dt under the shard's phase state —
// one tight loop over the cohort's arrays. The loop body replays
// device.Device.Step stage for stage with the identical floating-point
// operation order (the bit-identity golden in fleetsim_test.go holds a
// 1-device fleet and a device.Device to byte-identical traces):
//
//  1. sensor read + thermal-engine poll (governor.PollState),
//  2. effective frequencies (memoized on the engine cap),
//  3. rail voltages (memoized exactly like device.railVoltage),
//  4. utilization resample + power evaluation (factored leakage terms),
//  5. two-node thermal substeps (thermal.TwoNodeParams.Step),
//  6. workload counters, energy accounting, optional trace appends.
func (c *Cohort) Step(lo, hi int, ph *Phase, dt time.Duration) error {
	if dt <= 0 {
		return fmt.Errorf("fleetsim: non-positive step %v", dt)
	}
	ph.Elapsed += dt
	elapsed := ph.Elapsed
	busy := ph.Busy

	nBig := c.big.Cores
	floor := device.SuspendedFloor
	if ph.Wakelock || busy {
		floor = device.AwakeFloor
	}
	idleBigF := c.big.OPPs[0]
	var idleLittleF units.MegaHertz
	if c.hasLittle {
		idleLittleF = c.little.OPPs[0]
	}
	perf := governor.Performance{}
	sec := dt.Seconds()
	_ = sec

	for i := lo; i < hi; i++ {
		// 1. The thermal engine sees the *sensor* temperature. The draw
		// happens every step — even on the steps the engine skips —
		// because device.Step evaluates ReadTempSensor unconditionally.
		sensed := c.readSensor(i)
		governor.PollState(&c.engines[i], c.policy, c.big, governor.DefaultPollInterval, elapsed, sensed)

		// 2. Effective frequencies under the thermal + voltage caps.
		die := c.dieT[i]
		capF := c.engines[i].CapFreq
		var bigF, littleF units.MegaHertz
		if c.memoCap[i] == capF {
			bigF, littleF = c.memoBigF[i], c.memoLittleF[i]
		} else {
			bigF = governor.Effective(perf, c.big, capF, c.vCap)
			if c.hasLittle {
				littleF = governor.Effective(perf, *c.little, capF, c.vCap)
			}
			c.memoCap[i], c.memoBigF[i], c.memoLittleF[i] = capF, bigF, littleF
		}
		if !busy {
			bigF = idleBigF
			littleF = idleLittleF
		}

		// 3. Rail voltages through the per-cluster memos.
		key := die
		if c.voltTempInv {
			key = 0
		}
		if !(c.bigVValid[i] && c.bigVFreq[i] == bigF && c.bigVTemp[i] == key) {
			v, err := c.model.SoC.Voltages.Voltage(c.corners[i], bigF, die)
			if err != nil {
				return fmt.Errorf("fleetsim: %s: %w", c.names[i], err)
			}
			c.bigVValid[i], c.bigVFreq[i], c.bigVTemp[i] = true, bigF, key
			c.bigV[i] = v
			c.bigVterm[i] = c.leak.VoltFactor(v)
		}
		bigV, bigVterm := c.bigV[i], c.bigVterm[i]
		var littleV units.Volts
		var littleVterm float64
		if c.hasLittle {
			if !(c.littleVValid[i] && c.littleVFreq[i] == littleF && c.littleVTemp[i] == key) {
				v, err := c.model.SoC.Voltages.Voltage(c.corners[i], littleF, die)
				if err != nil {
					return fmt.Errorf("fleetsim: %s: %w", c.names[i], err)
				}
				c.littleVValid[i], c.littleVFreq[i], c.littleVTemp[i] = true, littleF, key
				c.littleV[i] = v
				c.littleVterm[i] = c.leak.VoltFactor(v)
			}
			littleV, littleVterm = c.littleV[i], c.littleVterm[i]
		}

		// 4. Utilization and power. Online-core counts follow device.Step:
		// busy runs every non-hotplugged big core and the whole LITTLE
		// cluster; idle power-collapses all but the last big core.
		if elapsed >= c.utilLevelEnd[i] {
			c.utilLevel[i] = 1 - math.Abs(c.util[i].Normal(0, device.UtilSigma))
			c.utilLevelEnd[i] = elapsed + device.UtilResample
		}
		util := device.IdleUtil
		if busy {
			util = c.utilLevel[i] * c.profile.PowerFactor
		}
		offline := c.engines[i].OfflineBig
		bigOnline := 0
		if busy {
			bigOnline = nBig - offline
		} else if nBig-1 >= offline {
			bigOnline = 1
		}
		littleOnline := 0
		if c.hasLittle && busy {
			littleOnline = c.little.Cores
		}

		// Power accumulation replays Evaluate's per-core loop: every
		// online core of a cluster contributes the identical dynamic and
		// leakage terms, so each is computed once and added core by core
		// (repeated adds of the same value, not a multiply — preserving
		// the accumulator's rounding sequence).
		var bd power.Breakdown
		if bigOnline > 0 || littleOnline > 0 {
			tterm := c.leak.TempFactor(die)
			if bigOnline > 0 {
				st := power.CoreState{Online: true, Freq: bigF, Voltage: bigV, Utilization: util}
				dynOne := power.Dynamic(c.ceffBig, st)
				leakOne := c.leak.PowerFactored(c.cornerShare[i], bigV, bigVterm, tterm)
				for k := 0; k < bigOnline; k++ {
					bd.Dynamic += dynOne
					bd.Leakage += leakOne
				}
			}
			if littleOnline > 0 {
				st := power.CoreState{Online: true, Freq: littleF, Voltage: littleV, Utilization: util}
				dynOne := power.Dynamic(c.ceffLittle, st)
				leakOne := c.leak.PowerFactored(c.cornerShare[i], littleV, littleVterm, tterm)
				for k := 0; k < littleOnline; k++ {
					bd.Dynamic += dynOne
					bd.Leakage += leakOne
				}
			}
			bd.Uncore = c.uncore
		}
		total := bd.Total() + floor

		// 5. Heat: inject into the die and integrate, subdividing by the
		// sealed stable substep exactly as Network.Step does (one substep
		// for every catalog body at the 100 ms control step).
		dieT, caseT := die, c.caseT[i]
		amb := c.ambient[i]
		for remaining := dt; remaining > 0; {
			h := c.sub
			if remaining < h {
				h = remaining
			}
			dieT, caseT = c.body.Step(dieT, caseT, amb, total, 0, h.Seconds())
			remaining -= h
		}
		c.dieT[i], c.caseT[i] = dieT, caseT

		// 6. Workload progress on online cores.
		if busy {
			effBig := units.MegaHertz(float64(bigF) * c.utilLevel[i] / c.profile.CycleFactor)
			if effBig > 0 {
				inc := effBig.CyclesOver(dt) / c.cpiBig
				base := i * nBig
				for k := offline; k < nBig; k++ {
					c.bigProg[base+k] += inc
				}
			}
			if c.hasLittle {
				effLittle := units.MegaHertz(float64(littleF) * c.utilLevel[i] / c.profile.CycleFactor)
				if effLittle > 0 {
					inc := effLittle.CyclesOver(dt) / c.cpiLittle
					base := i * c.little.Cores
					for k := 0; k < c.little.Cores; k++ {
						c.littleProg[base+k] += inc
					}
				}
			}
		}

		// 7. Energy accounting (BenchSupply.Drain semantics) and traces.
		if e := total.Over(dt); e > 0 {
			c.energy[i] += e
		}
		if c.recs != nil {
			c.sDie[i].Append(elapsed, float64(die))
			c.sCase[i].Append(elapsed, float64(caseT))
			c.sFreqBig[i].Append(elapsed, float64(bigF))
			if c.hasLittle {
				c.sFreqLittle[i].Append(elapsed, float64(littleF))
			}
			c.sPower[i].Append(elapsed, float64(total))
			c.sCores[i].Append(elapsed, float64(nBig-offline))
		}
	}
	if c.steps != nil {
		c.steps.Add(uint64(hi - lo))
	}
	return nil
}

// runFor advances devices [lo, hi) for a total duration in control
// steps, replicating accubench.Runner.run's loop shape.
func (c *Cohort) runFor(lo, hi int, ph *Phase, total time.Duration) error {
	for remaining := total; remaining > 0; remaining -= ControlStep {
		h := ControlStep
		if remaining < h {
			h = remaining
		}
		if err := c.Step(lo, hi, ph, h); err != nil {
			return err
		}
	}
	return nil
}

// runWild runs the crowd app's quick protocol on devices [lo, hi) and
// emits one Submission per device. The phase schedule is the
// crowd.WildDevice quick benchmark verbatim: one-minute warmup at full
// tilt, a fixed ten-minute cooldown polled every five seconds (each poll
// takes one extra sensor reading, on top of the per-step draws), counter
// reset, then the two-minute measured workload under the performance
// governor. emit is called from the worker goroutine driving this shard.
func (c *Cohort) runWild(lo, hi int, emit func(Submission)) error {
	var ph Phase

	// Warmup: wakelock, performance governor, synthetic heat.
	ph.Wakelock, ph.Busy = true, true
	if err := c.runFor(lo, hi, &ph, WarmupQuick); err != nil {
		return err
	}
	ph.Busy = false

	// Cooldown: suspended, waking every CooldownPoll for a sensor read.
	ph.Wakelock = false
	coolStart := ph.Elapsed
	polls := int(CooldownFixed / CooldownPoll)
	cooldown := make([][]accubench.CooldownSample, hi-lo)
	for i := range cooldown {
		cooldown[i] = make([]accubench.CooldownSample, 0, polls)
	}
	for {
		if err := c.runFor(lo, hi, &ph, CooldownPoll); err != nil {
			return err
		}
		at := ph.Elapsed - coolStart
		for i := lo; i < hi; i++ {
			cooldown[i-lo] = append(cooldown[i-lo], accubench.CooldownSample{At: at, Reading: c.readSensor(i)})
		}
		if at >= CooldownFixed {
			break
		}
	}

	// Workload: the measured phase.
	ph.Wakelock = true
	c.resetCounters(lo, hi)
	ph.Busy = true
	if err := c.runFor(lo, hi, &ph, WorkloadQuick); err != nil {
		return err
	}
	ph.Busy, ph.Wakelock = false, false

	for i := lo; i < hi; i++ {
		emit(Submission{
			Device:   c.names[i],
			Model:    c.model.Name,
			Score:    float64(c.Score(i)),
			Cooldown: cooldown[i-lo],
			Corner:   c.corners[i],
			Ambient:  c.ambient[i],
			Energy:   c.energy[i],
		})
	}
	return nil
}
