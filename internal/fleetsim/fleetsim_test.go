package fleetsim

import (
	"bytes"
	"reflect"
	"sync"
	"testing"

	"accubench/internal/accubench"
	"accubench/internal/battery"
	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/sim"
	"accubench/internal/soc"
)

// TestGoldenBitIdentity is the package's referee: a 1-device fleet must
// produce a byte-identical trace, score, cooldown readings and energy
// total to a device.Device driven through the accubench runner with the
// wild quick schedule — the exact path cmd/crowdload's per-device mode
// takes. Any drift in the batched stepper's floating-point op order
// breaks this test. Both scheme families are pinned: a static-table quad
// (Nexus 5, memoized voltages hit every plateau step) and an RBCPR
// big.LITTLE part (Nexus 6P, temperature-continuous voltages miss every
// step and exercise the LITTLE cluster path).
func TestGoldenBitIdentity(t *testing.T) {
	for _, tc := range []struct {
		model string
		seed  int64
	}{
		{"Nexus 5", 7},
		{"Nexus 6P", 1234},
	} {
		t.Run(tc.model, func(t *testing.T) {
			model, err := soc.ModelByName(tc.model)
			if err != nil {
				t.Fatal(err)
			}

			fl, err := New(Config{
				Seed:      tc.seed,
				Cohorts:   []CohortSpec{{Model: model, Devices: 1}},
				AmbientLo: 12,
				AmbientHi: 38,
				Record:    true,
			})
			if err != nil {
				t.Fatal(err)
			}
			var subs []Submission
			if err := fl.RunWild(func(s Submission) { subs = append(subs, s) }); err != nil {
				t.Fatal(err)
			}
			if len(subs) != 1 {
				t.Fatalf("got %d submissions, want 1", len(subs))
			}
			c := fl.Cohorts()[0]

			// The reference twin: same name, corner, ambient and — through
			// the Config seams — the same RNG streams.
			sensor := sim.NewStream(tc.seed, "sensor:"+c.Name(0))
			util := sim.NewStream(tc.seed, "util:"+c.Name(0))
			mon := monsoon.New(model.Battery.Nominal)
			// The device keeps its own bench supply (KeepSource below) so
			// its EnergyDelivered is exactly the per-step drain sum — the
			// ledger the fleet keeps. Powering it from the Monitor's supply
			// would double-count the measured window, which Sample also
			// drains. Both supplies sit at the same nominal voltage, so the
			// trace is unaffected.
			supply := battery.NewBenchSupply(model.Battery.Nominal)
			dev, err := device.New(device.Config{
				Name:        c.Name(0),
				Model:       model,
				Corner:      c.Corner(0),
				Ambient:     c.Ambient(0),
				Source:      supply,
				SensorNoise: &sensor,
				UtilNoise:   &util,
			})
			if err != nil {
				t.Fatal(err)
			}
			bcfg := accubench.DefaultConfig(accubench.Unconstrained)
			bcfg.Iterations = 1
			bcfg.CooldownFixed = CooldownFixed
			bcfg.Warmup = WarmupQuick
			bcfg.Workload = WorkloadQuick
			res, err := (&accubench.Runner{Device: dev, Monitor: mon, Config: bcfg, KeepSource: true}).Run()
			if err != nil {
				t.Fatal(err)
			}
			it := res.Iterations[0]

			var want, got bytes.Buffer
			if err := dev.Trace().WriteCSV(&want); err != nil {
				t.Fatal(err)
			}
			if err := c.Recorder(0).WriteCSV(&got); err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want.Bytes(), got.Bytes()) {
				wl, gl := bytes.Split(want.Bytes(), []byte("\n")), bytes.Split(got.Bytes(), []byte("\n"))
				for i := 0; i < len(wl) && i < len(gl); i++ {
					if !bytes.Equal(wl[i], gl[i]) {
						t.Fatalf("trace diverges at line %d:\n device: %s\nfleet:  %s", i+1, wl[i], gl[i])
					}
				}
				t.Fatalf("trace lengths differ: device %d lines, fleet %d lines", len(wl), len(gl))
			}
			if subs[0].Score != float64(it.Score) {
				t.Errorf("score: fleet %v, device %d", subs[0].Score, it.Score)
			}
			if !reflect.DeepEqual(subs[0].Cooldown, it.CooldownReadings) {
				t.Errorf("cooldown readings differ:\nfleet:  %v\ndevice: %v", subs[0].Cooldown, it.CooldownReadings)
			}
			if subs[0].Energy != supply.EnergyDelivered() {
				t.Errorf("energy: fleet %v, device %v", subs[0].Energy, supply.EnergyDelivered())
			}
		})
	}
}

// TestWorkerCountDeterminism pins the determinism contract: the same seed
// must produce bit-identical fleets at any worker count. Run under -race
// (make ci does) this also proves shards share no mutable state.
func TestWorkerCountDeterminism(t *testing.T) {
	n5, err := soc.ModelByName("Nexus 5")
	if err != nil {
		t.Fatal(err)
	}
	pixel, err := soc.ModelByName("Google Pixel")
	if err != nil {
		t.Fatal(err)
	}
	run := func(workers int) (uint64, map[string]float64) {
		fl, err := New(Config{
			Seed: 42,
			Cohorts: []CohortSpec{
				{Model: n5, Devices: 24},
				{Model: pixel, Devices: 16},
			},
			AmbientLo: 12,
			AmbientHi: 38,
			Workers:   workers,
			Block:     8,
		})
		if err != nil {
			t.Fatal(err)
		}
		var mu sync.Mutex
		scores := make(map[string]float64)
		if err := fl.RunWild(func(s Submission) {
			mu.Lock()
			scores[s.Device] = s.Score
			mu.Unlock()
		}); err != nil {
			t.Fatal(err)
		}
		return fl.Fingerprint(), scores
	}
	baseFP, baseScores := run(1)
	if len(baseScores) != 40 {
		t.Fatalf("got %d submissions, want 40", len(baseScores))
	}
	for _, workers := range []int{4, 16} {
		fp, scores := run(workers)
		if fp != baseFP {
			t.Errorf("workers=%d: fingerprint %x != workers=1 fingerprint %x", workers, fp, baseFP)
		}
		if !reflect.DeepEqual(scores, baseScores) {
			t.Errorf("workers=%d: per-device scores differ from workers=1", workers)
		}
	}
}

// TestSeedChangesFleet guards against a degenerate Fingerprint (or a
// population that ignores its seed).
func TestSeedChangesFleet(t *testing.T) {
	n5, err := soc.ModelByName("Nexus 5")
	if err != nil {
		t.Fatal(err)
	}
	fp := func(seed int64) uint64 {
		fl, err := New(Config{
			Seed:      seed,
			Cohorts:   []CohortSpec{{Model: n5, Devices: 4}},
			AmbientLo: 12,
			AmbientHi: 38,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := fl.RunWild(func(Submission) {}); err != nil {
			t.Fatal(err)
		}
		return fl.Fingerprint()
	}
	if fp(1) == fp(2) {
		t.Fatal("different seeds produced identical fleet fingerprints")
	}
}

// TestWildSteps pins the protocol step count the throughput numbers are
// normalized by.
func TestWildSteps(t *testing.T) {
	// 1 min warmup + 10 min cooldown + 2 min workload at 100 ms steps.
	if want := 600 + 6000 + 1200; WildSteps != want {
		t.Fatalf("WildSteps = %d, want %d", WildSteps, want)
	}
}

// TestConfigValidation covers New's error paths.
func TestConfigValidation(t *testing.T) {
	n5, err := soc.ModelByName("Nexus 5")
	if err != nil {
		t.Fatal(err)
	}
	for name, cfg := range map[string]Config{
		"no cohorts":       {Seed: 1},
		"nil model":        {Seed: 1, Cohorts: []CohortSpec{{Model: nil, Devices: 1}}},
		"zero devices":     {Seed: 1, Cohorts: []CohortSpec{{Model: n5, Devices: 0}}},
		"inverted ambient": {Seed: 1, Cohorts: []CohortSpec{{Model: n5, Devices: 1}}, AmbientLo: 30, AmbientHi: 20},
	} {
		if _, err := New(cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", name)
		}
	}
}
