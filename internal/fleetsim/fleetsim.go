// Package fleetsim steps entire device fleets in batch: a struct-of-arrays
// engine that holds every per-device quantity (die/case temperatures,
// thermal-engine state, utilization level, accumulated energy, RNG streams)
// in contiguous per-cohort slices and advances N devices per tick in one
// tight loop, instead of building N pointer-rich device.Device object
// graphs. The layout is what makes million-device populations step faster
// than real time: a tick touches a handful of sequential arrays rather
// than a million scattered heaps.
//
// The engine is a *re-implementation of device.Device.Step over arrays*,
// not an approximation of it: the loop body replays Step stage for stage
// in the identical floating-point operation order, using the same exported
// seams (governor.PollState, thermal.TwoNodeParams.Step, the factored
// silicon leakage terms, device's behavioral constants). A 1-device fleet
// produces byte-identical traces to a device.Device driven through the
// accubench runner — fleetsim_test.go enforces that golden on both a
// static-table quad (Nexus 5) and an RBCPR big.LITTLE part (Nexus 6P).
//
// Determinism contract: every device owns private splitmix64 RNG streams
// (sim.Stream) derived from (fleet seed, device name) alone, and devices
// never couple, so the fleet's result depends only on (Seed, Cohorts,
// ambient range, lottery parameters) — never on Workers, Block, or how the
// scheduler interleaves shards. The worker-count determinism test runs the
// same fleet at 1, 4 and 16 workers under -race and requires identical
// digests.
package fleetsim

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/governor"
	"accubench/internal/obs"
	"accubench/internal/silicon"
	"accubench/internal/sim"
	"accubench/internal/soc"
	"accubench/internal/units"
	"accubench/internal/workload"
)

// The wild quick protocol, in control steps. These mirror the schedule
// crowd.WildDevice.Benchmark configures on the accubench runner: the
// fleet engine replays that schedule directly, so the constants live here
// as the single batched copy.
const (
	// ControlStep is the simulation control step (accubench default).
	ControlStep = 100 * time.Millisecond
	// WarmupQuick is the quick protocol's synthetic-heat phase.
	WarmupQuick = time.Minute
	// WorkloadQuick is the quick protocol's measured phase.
	WorkloadQuick = 2 * time.Minute
	// CooldownFixed is the wild protocol's fixed sleep: long enough for the
	// decay to enter the slow case→ambient regime on every catalog model.
	CooldownFixed = 10 * time.Minute
	// CooldownPoll is the sensor polling cadence while asleep.
	CooldownPoll = 5 * time.Second
)

// WildSteps is how many control steps one device takes through the whole
// wild quick protocol (warmup + cooldown + workload) — the step count
// behind the devices·steps/sec throughput numbers.
const WildSteps = int(WarmupQuick/ControlStep) +
	int(CooldownFixed/CooldownPoll)*int(CooldownPoll/ControlStep) +
	int(WorkloadQuick/ControlStep)

// Default population parameters, matching cmd/crowdload's flags.
const (
	// DefaultSigma is the lottery's log-normal leakage spread.
	DefaultSigma = 0.55
	// DefaultBinNoise is the lottery's bin-assignment noise.
	DefaultBinNoise = 0.35
	// DefaultBlock is the shard granularity RunWild hands to workers.
	DefaultBlock = 4096
)

// CohortSpec asks for a population of one handset model.
type CohortSpec struct {
	// Model is the handset product.
	Model *soc.DeviceModel
	// Devices is the cohort's population size.
	Devices int
}

// Config describes a fleet.
type Config struct {
	// Seed drives the silicon lottery, the ambient draws and every
	// per-device noise stream. Same seed, same fleet — bit for bit.
	Seed int64
	// Cohorts is the model mix.
	Cohorts []CohortSpec
	// AmbientLo and AmbientHi bound the uniform wild-ambient draw. Both
	// zero selects a fixed 26 °C ambient.
	AmbientLo, AmbientHi units.Celsius
	// Sigma is the lottery leakage spread; ≤ 0 selects DefaultSigma.
	Sigma float64
	// BinNoise is the lottery bin noise; < 0 selects DefaultBinNoise.
	BinNoise float64
	// Workers bounds RunWild's parallelism; ≤ 0 selects GOMAXPROCS.
	// The worker count never changes results, only wall-clock time.
	Workers int
	// Block is the shard granularity; ≤ 0 selects DefaultBlock.
	Block int
	// Record attaches a trace recorder to every device (the goldens use
	// this; far too heavy for large fleets).
	Record bool
	// Metrics, when non-nil, registers the fleet gauges (fleet_devices,
	// fleet_cohorts) and counters (fleet_steps_total,
	// fleet_submissions_total, plus the fleet_device_steps_per_sec gauge
	// RunWild updates).
	Metrics *obs.Registry
}

// Submission is one wild device's upload: what cmd/crowdload sends to the
// crowdd backend, plus the ground truth (corner, ambient, energy) the
// backend never sees — population studies read it straight off the fleet.
type Submission struct {
	// Device is the unit name, e.g. "fleet-0000042".
	Device string
	// Model is the handset product name.
	Model string
	// Score is the completed workload iterations of the measured phase.
	Score float64
	// Cooldown is the sensor trace of the cooldown phase.
	Cooldown []accubench.CooldownSample
	// Corner is the device's silicon-lottery outcome (ground truth).
	Corner silicon.ProcessCorner
	// Ambient is the device's wild ambient (ground truth).
	Ambient units.Celsius
	// Energy is the total energy drawn across the whole protocol.
	Energy units.Joules
}

// Fleet is a batched population of simulated handsets.
type Fleet struct {
	cohorts []*Cohort
	devices int
	workers int
	block   int

	subs  *obs.Counter
	gRate *obs.Gauge
}

// New builds a fleet: draws each cohort's silicon lottery and wild
// ambients, then lays the population out in struct-of-arrays form.
func New(cfg Config) (*Fleet, error) {
	if len(cfg.Cohorts) == 0 {
		return nil, fmt.Errorf("fleetsim: no cohorts")
	}
	sigma := cfg.Sigma
	if sigma <= 0 {
		sigma = DefaultSigma
	}
	binNoise := cfg.BinNoise
	if binNoise < 0 {
		binNoise = DefaultBinNoise
	}
	lo, hi := cfg.AmbientLo, cfg.AmbientHi
	if lo == 0 && hi == 0 {
		lo, hi = 26, 26
	}
	if hi < lo {
		return nil, fmt.Errorf("fleetsim: ambient range %v..%v inverted", lo, hi)
	}
	f := &Fleet{
		workers: cfg.Workers,
		block:   cfg.Block,
	}
	if f.workers <= 0 {
		f.workers = runtime.GOMAXPROCS(0)
	}
	if f.block <= 0 {
		f.block = DefaultBlock
	}
	base := 0
	for _, spec := range cfg.Cohorts {
		c, err := newCohort(spec, cfg.Seed, base, lo, hi, sigma, binNoise, cfg.Record)
		if err != nil {
			return nil, err
		}
		f.cohorts = append(f.cohorts, c)
		base += spec.Devices
	}
	f.devices = base
	if m := cfg.Metrics; m != nil {
		m.Gauge("fleet_devices", "simulated devices in the fleet").Set(int64(f.devices))
		m.Gauge("fleet_cohorts", "model cohorts in the fleet").Set(int64(len(f.cohorts)))
		steps := m.Counter("fleet_steps_total", "device-steps simulated")
		for _, c := range f.cohorts {
			c.steps = steps
		}
		f.subs = m.Counter("fleet_submissions_total", "wild submissions produced")
		f.gRate = m.Gauge("fleet_device_steps_per_sec", "device-steps per wall second of the last RunWild")
	}
	return f, nil
}

// newCohort draws one model's population and builds its SoA state.
func newCohort(spec CohortSpec, seed int64, base int, lo, hi units.Celsius, sigma, binNoise float64, record bool) (*Cohort, error) {
	model := spec.Model
	if model == nil {
		return nil, fmt.Errorf("fleetsim: cohort %d has no model", base)
	}
	if spec.Devices <= 0 {
		return nil, fmt.Errorf("fleetsim: %s cohort has %d devices", model.Name, spec.Devices)
	}
	if err := model.Validate(); err != nil {
		return nil, fmt.Errorf("fleetsim: %s: %w", model.Name, err)
	}
	n := spec.Devices

	// Population draws replay cmd/crowdload's order: corners first, then
	// one ambient per device, from a per-cohort source named after the
	// model so adding a cohort never shifts another's draws.
	src := sim.NewSource(seed, "fleet:"+model.Name)
	lottery := silicon.Lottery{Sigma: sigma, Bins: model.SoC.Bins, BinNoise: binNoise}
	corners, err := lottery.Draw(src, n)
	if err != nil {
		return nil, fmt.Errorf("fleetsim: %s: %w", model.Name, err)
	}

	s := model.SoC
	c := &Cohort{
		model:       model,
		n:           n,
		base:        base,
		big:         s.Big,
		little:      s.Little,
		policy:      model.Thermal,
		leak:        s.Leakage,
		uncore:      s.Uncore,
		profile:     workload.PiCPUBound(),
		sensorSigma: model.SensorNoise,
		vCap:        governor.VoltageCap(model.VoltageThrottle, model.Battery.Nominal, s.Big),
		body:        model.Body.Params(),
		share:       1.0 / float64(s.TotalCores()),
		hasLittle:   s.Little != nil,
		cpiBig:      s.Big.CyclesPerIteration,
		ceffBig:     s.Big.Ceff,
		corners:     corners,
	}
	if c.hasLittle {
		c.cpiLittle = s.Little.CyclesPerIteration
		c.ceffLittle = s.Little.Ceff
	}
	if ti, ok := s.Voltages.(tempInvariant); ok && ti.TempInvariant() {
		c.voltTempInv = true
	}
	// The stable substep comes from the sealed thermal network, exactly as
	// a device.Device's Network.Step would subdivide.
	nw, _, _, err := model.Body.Build(0)
	if err != nil {
		return nil, fmt.Errorf("fleetsim: %s: %w", model.Name, err)
	}
	nw.Seal()
	c.sub = nw.MaxStableStep()

	c.names = make([]string, n)
	c.cornerShare = make([]float64, n)
	c.ambient = make([]units.Celsius, n)
	c.dieT = make([]units.Celsius, n)
	c.caseT = make([]units.Celsius, n)
	c.engines = make([]governor.EngineState, n)
	c.sensor = make([]sim.Stream, n)
	c.util = make([]sim.Stream, n)
	c.utilLevel = make([]float64, n)
	c.utilLevelEnd = make([]time.Duration, n)
	c.energy = make([]units.Joules, n)
	c.memoCap = make([]units.MegaHertz, n)
	c.memoBigF = make([]units.MegaHertz, n)
	c.memoLittleF = make([]units.MegaHertz, n)
	c.bigVValid = make([]bool, n)
	c.bigVFreq = make([]units.MegaHertz, n)
	c.bigVTemp = make([]units.Celsius, n)
	c.bigV = make([]units.Volts, n)
	c.bigVterm = make([]float64, n)
	if c.hasLittle {
		c.littleVValid = make([]bool, n)
		c.littleVFreq = make([]units.MegaHertz, n)
		c.littleVTemp = make([]units.Celsius, n)
		c.littleV = make([]units.Volts, n)
		c.littleVterm = make([]float64, n)
		c.littleProg = make([]float64, n*s.Little.Cores)
	}
	c.bigProg = make([]float64, n*s.Big.Cores)

	for i := 0; i < n; i++ {
		name := fmt.Sprintf("fleet-%07d", base+i)
		c.names[i] = name
		c.cornerShare[i] = corners[i].Leakage * c.share
		amb := units.Celsius(src.Uniform(float64(lo), float64(hi)))
		c.ambient[i] = amb
		c.dieT[i], c.caseT[i] = amb, amb // thermal equilibrium at start
		c.engines[i] = governor.NewEngineState(s.Big)
		c.sensor[i] = sim.NewStream(seed, "sensor:"+name)
		c.util[i] = sim.NewStream(seed, "util:"+name)
		c.memoCap[i] = -1 // no valid memo entry yet
	}
	if record {
		c.attachRecorders()
	}
	return c, nil
}

// Cohorts returns the fleet's cohorts in spec order.
func (f *Fleet) Cohorts() []*Cohort { return f.cohorts }

// Devices returns the fleet's total population.
func (f *Fleet) Devices() int { return f.devices }

// RunWild runs the wild quick protocol on every device and calls emit once
// per device with its Submission. Shards of Block devices are distributed
// over Workers goroutines; emit must therefore be safe for concurrent use.
// Results are bit-identical for any worker count — only wall-clock time
// changes. The order of emit calls is scheduling-dependent; consumers that
// need an order should sort on Submission.Device.
func (f *Fleet) RunWild(emit func(Submission)) error {
	type shard struct {
		c      *Cohort
		lo, hi int
	}
	var shards []shard
	for _, c := range f.cohorts {
		for lo := 0; lo < c.n; lo += f.block {
			hi := lo + f.block
			if hi > c.n {
				hi = c.n
			}
			shards = append(shards, shard{c, lo, hi})
		}
	}
	wrapped := emit
	if f.subs != nil {
		wrapped = func(s Submission) {
			f.subs.Inc()
			emit(s)
		}
	}

	start := time.Now()
	work := make(chan shard)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	for w := 0; w < f.workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for sh := range work {
				if err := sh.c.runWild(sh.lo, sh.hi, wrapped); err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
				}
			}
		}()
	}
	for _, sh := range shards {
		work <- sh
	}
	close(work)
	wg.Wait()
	if f.gRate != nil {
		if secs := time.Since(start).Seconds(); secs > 0 {
			f.gRate.Set(int64(float64(f.devices) * float64(WildSteps) / secs))
		}
	}
	return firstErr
}

// Fingerprint digests the fleet's mutable per-device state (temperatures,
// energy, engine caps, utilization, RNG positions) with FNV-1a. Two fleets
// that took the same steps have the same fingerprint; the worker-count
// determinism test and crowdload's -dry-run report are built on it.
func (f *Fleet) Fingerprint() uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= v & 0xff
			h *= prime64
			v >>= 8
		}
	}
	for _, c := range f.cohorts {
		for i := 0; i < c.n; i++ {
			mix(f64bits(float64(c.dieT[i])))
			mix(f64bits(float64(c.caseT[i])))
			mix(f64bits(float64(c.energy[i])))
			mix(f64bits(float64(c.engines[i].CapFreq)))
			mix(uint64(c.engines[i].OfflineBig))
			mix(f64bits(c.utilLevel[i]))
			mix(uint64(c.Score(i)))
		}
	}
	return h
}

func f64bits(v float64) uint64 { return math.Float64bits(v) }
