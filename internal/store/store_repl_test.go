package store

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"accubench/internal/hlc"
)

// stamped builds a cluster-ingested record with a deterministic identity.
func stamped(origin string, wall int64, logical uint16, device string, score float64) Record {
	r := Record{
		Device:   device,
		Model:    "Nexus 5",
		Score:    score,
		Accepted: true,
	}
	r.SetStamp(origin, hlc.Timestamp{Wall: wall, Logical: logical})
	return r
}

func TestRecordKey(t *testing.T) {
	r := stamped("n1", 100, 2, "d0", 1000)
	k, ok := r.Key()
	if !ok || k != (Key{Origin: "n1", Wall: 100, Logical: 2}) {
		t.Fatalf("Key() = %+v, %v", k, ok)
	}
	if _, ok := (Record{Device: "d", Model: "m"}).Key(); ok {
		t.Fatal("unstamped record has a replication key")
	}
}

func TestReserveIsIdempotenceGate(t *testing.T) {
	s := New(4)
	r := stamped("n1", 10, 0, "d0", 1000)
	k, _ := r.Key()
	if !s.Reserve(r.Model, k) {
		t.Fatal("first Reserve refused")
	}
	if s.Reserve(r.Model, k) {
		t.Fatal("second Reserve of the same key succeeded")
	}
	s.Release(r.Model, k)
	if !s.Reserve(r.Model, k) {
		t.Fatal("Reserve after Release refused")
	}
	if !s.HasKey(r.Model, k) {
		t.Fatal("HasKey misses a reserved key")
	}
}

func TestPutRegistersReplicationKey(t *testing.T) {
	s := New(4)
	r := stamped("n1", 10, 0, "d0", 1000)
	if _, err := s.Put(r); err != nil {
		t.Fatal(err)
	}
	k, _ := r.Key()
	if !s.HasKey(r.Model, k) {
		t.Fatal("Put did not register the record's key")
	}
	if s.Reserve(r.Model, k) {
		t.Fatal("Reserve succeeded for a stored record")
	}
}

// TestDigestOrderIndependent is the anti-entropy soundness property: two
// stores holding the same record set — inserted in different orders,
// with different local sequence numbers, across different shard widths —
// report identical digests, and any difference in content changes the
// digest.
func TestDigestOrderIndependent(t *testing.T) {
	recs := make([]Record, 0, 40)
	for i := 0; i < 40; i++ {
		origin := fmt.Sprintf("n%d", i%3)
		recs = append(recs, stamped(origin, int64(100+i/2), uint16(i%2), fmt.Sprintf("d%02d", i), 1000+float64(i)))
	}

	build := func(shards int, order []int) *Store {
		s := New(shards)
		for _, i := range order {
			if _, err := s.Put(recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	fwd := make([]int, len(recs))
	for i := range fwd {
		fwd[i] = i
	}
	shuffled := append([]int(nil), fwd...)
	rand.New(rand.NewSource(7)).Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	a := build(4, fwd)
	b := build(16, shuffled)
	da, ok := a.Digest("Nexus 5")
	if !ok {
		t.Fatal("no digest for a populated model")
	}
	db, _ := b.Digest("Nexus 5")
	if da != db {
		t.Fatalf("digests diverge for identical content: %+v vs %+v", da, db)
	}
	if da.Records != len(recs) {
		t.Fatalf("digest counts %d records, want %d", da.Records, len(recs))
	}
	if da.MaxWall != 100+int64(len(recs)-1)/2 {
		t.Fatalf("digest MaxWall = %d", da.MaxWall)
	}

	// Content sensitivity: one extra record moves the digest.
	extra := stamped("n9", 500, 0, "d-extra", 999)
	if _, err := b.Put(extra); err != nil {
		t.Fatal(err)
	}
	if db2, _ := b.Digest("Nexus 5"); db2 == da {
		t.Fatal("digest unchanged after adding a record")
	}

	if _, ok := a.Digest("NoSuchModel"); ok {
		t.Fatal("digest reported for an absent model")
	}
	all := a.DigestAll()
	if got := all["Nexus 5"]; got != da {
		t.Fatalf("DigestAll disagrees with Digest: %+v vs %+v", got, da)
	}
}

// TestLatestConvergesAcrossInsertionOrders pins the cross-replica
// convergence contract: with stamped records, Latest returns the same
// winners in the same canonical order no matter which order the records
// arrived in — the property that keeps bins bit-identical cluster-wide.
func TestLatestConvergesAcrossInsertionOrders(t *testing.T) {
	var recs []Record
	for d := 0; d < 8; d++ {
		// Each device reports twice, from different origins; the later
		// stamp must win everywhere.
		recs = append(recs,
			stamped("n1", int64(200+d), 0, fmt.Sprintf("d%d", d), 1000+float64(d)),
			stamped("n2", int64(200+d), 1, fmt.Sprintf("d%d", d), 2000+float64(d)),
		)
	}
	build := func(order []int) *Store {
		s := New(8)
		for _, i := range order {
			if _, err := s.Put(recs[i]); err != nil {
				t.Fatal(err)
			}
		}
		return s
	}
	fwd := make([]int, len(recs))
	for i := range fwd {
		fwd[i] = i
	}
	rev := make([]int, len(recs))
	for i := range rev {
		rev[i] = len(recs) - 1 - i
	}
	stripSeq := func(rs []Record) []Record {
		out := append([]Record(nil), rs...)
		for i := range out {
			out[i].Seq = 0
		}
		return out
	}
	la := stripSeq(build(fwd).Latest("Nexus 5"))
	lb := stripSeq(build(rev).Latest("Nexus 5"))
	if !reflect.DeepEqual(la, lb) {
		t.Fatalf("Latest diverges across insertion orders:\n%+v\nvs\n%+v", la, lb)
	}
	for _, r := range la {
		if r.Origin != "n2" {
			t.Fatalf("stale record won for %s: %+v", r.Device, r)
		}
	}
	for i := 1; i < len(la); i++ {
		if !la[i].after(la[i-1]) {
			t.Fatalf("canonical order violated at %d: %+v then %+v", i, la[i-1], la[i])
		}
	}
}

// TestLatestKeepsLegacyOrderUnstamped pins the single-node behavior:
// without stamps, Latest keeps first-seen device order and the highest
// sequence number wins.
func TestLatestKeepsLegacyOrderUnstamped(t *testing.T) {
	s := New(4)
	for i := 0; i < 3; i++ {
		if _, err := s.Put(Record{Device: fmt.Sprintf("z%d", 2-i), Model: "m", Score: 1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Put(Record{Device: "z2", Model: "m", Score: 2}); err != nil {
		t.Fatal(err)
	}
	got := s.Latest("m")
	if len(got) != 3 || got[0].Device != "z2" || got[1].Device != "z1" || got[2].Device != "z0" {
		t.Fatalf("legacy order broken: %+v", got)
	}
	if got[0].Score != 2 {
		t.Fatalf("resubmission did not win: %+v", got[0])
	}
}

// TestDeviceLookupResolvesByStamp pins the device stripe's winner rule:
// a replica applying a device's two submissions out of stamp order must
// still surface the logically newest one.
func TestDeviceLookupResolvesByStamp(t *testing.T) {
	s := New(4)
	newer := stamped("n1", 300, 5, "dev", 2000)
	older := stamped("n2", 300, 1, "dev", 1000)
	// Apply the newer record first — on this node it gets the *lower*
	// local sequence number.
	if _, err := s.Put(newer); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(older); err != nil {
		t.Fatal(err)
	}
	got, ok := s.Device("dev")
	if !ok || got.Score != 2000 {
		t.Fatalf("Device() = %+v, %v — stamp order lost to arrival order", got, ok)
	}
}
