// Package store is the crowd backend's submission store: a sharded,
// mutex-striped in-memory index of every upload, keyed by device model.
//
// The crowd service's hot path is highly concurrent — ingest workers
// appending submissions while binning loops and HTTP readers scan whole
// models — so a single lock would serialize everything. The store stripes
// its state across a fixed set of shards, each guarded by its own RWMutex:
// a model's submission list lives in the shard its name hashes to, and a
// secondary stripe indexes individual devices for point lookups. Writers
// touching different models (or different devices) proceed in parallel;
// readers take shared locks and return defensive copies, so callers never
// observe a slice mid-append.
//
// The store itself is volatile; durability is layered on top by
// internal/wal. Three hooks exist for it: PutSeq inserts a record whose
// sequence number was already assigned at the log's commit point, Snapshot
// iterates the whole store deterministically for checkpointing, and
// Restore rebuilds a store from a snapshot at boot.
//
// Replication (internal/replication) layers on a second identity: records
// ingested by a cluster node carry a hybrid-logical-clock stamp plus the
// origin node's ID, which together form a globally unique Key. The store
// tracks every key it holds (Reserve is the idempotence gate replicated
// applies go through), folds each model's records into an
// order-independent Digest for anti-entropy comparison, and resolves
// per-device "latest" by stamp rather than node-local sequence number so
// every replica converges to the same bins.
package store

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"accubench/internal/hlc"
	"accubench/internal/obs"
	"accubench/internal/stats"
	"accubench/internal/units"
)

// Record is one stored submission after the backend's per-submission pass:
// the upload plus the verdict the ingest pipeline reached.
type Record struct {
	// Device is the unit's anonymous identifier.
	Device string `json:"device"`
	// Model is the handset model the unit reported.
	Model string `json:"model"`
	// Score is the ACCUBENCH performance score.
	Score float64 `json:"score"`
	// EstimatedAmbient is the backend's ambient estimate from the cooldown
	// trace; zero when estimation failed.
	EstimatedAmbient units.Celsius `json:"estimated_ambient_c"`
	// Accepted reports whether the submission survived the strict filters.
	Accepted bool `json:"accepted"`
	// RejectReason says why a rejected submission was rejected.
	RejectReason string `json:"reject_reason,omitempty"`
	// Seq is the store's global arrival sequence number, assigned by Put.
	// It is node-local: the same record replicated to another node gets
	// that node's next sequence number there.
	Seq uint64 `json:"seq"`
	// HLCWall and HLCLogical are the hybrid-logical-clock stamp assigned
	// once, by the node that first ingested the submission; they travel
	// with the record through the WAL and replication unchanged. Zero on
	// records from a single-node (non-cluster) deployment.
	HLCWall    int64  `json:"hlc_wall,omitempty"`
	HLCLogical uint16 `json:"hlc_logical,omitempty"`
	// Origin is the node ID that ingested the submission; with the stamp
	// it forms the record's globally unique replication identity.
	Origin string `json:"origin,omitempty"`
}

// Stamp returns the record's hybrid-logical-clock stamp (zero when the
// record was ingested outside a cluster).
func (r Record) Stamp() hlc.Timestamp {
	return hlc.Timestamp{Wall: r.HLCWall, Logical: r.HLCLogical}
}

// SetStamp stamps the record with its replication identity.
func (r *Record) SetStamp(origin string, ts hlc.Timestamp) {
	r.Origin = origin
	r.HLCWall = ts.Wall
	r.HLCLogical = ts.Logical
}

// Key is a record's globally unique replication identity: the HLC stamp
// plus the node that issued it. Two nodes can never mint the same key —
// stamps are unique per clock and Origin separates clocks — which is
// what makes replicated applies idempotent.
type Key struct {
	Origin  string
	Wall    int64
	Logical uint16
}

// Key returns the record's replication identity; ok is false for
// unstamped (single-node) records, which have no cross-node identity.
func (r Record) Key() (Key, bool) {
	if r.Origin == "" || r.Stamp().IsZero() {
		return Key{}, false
	}
	return Key{Origin: r.Origin, Wall: r.HLCWall, Logical: r.HLCLogical}, true
}

// after reports whether r supersedes o as a device's latest record: by
// HLC stamp when either carries one (origin breaks exact-stamp ties),
// by node-local sequence number otherwise. This is the ordering every
// replica agrees on, so converged stores bin identically.
func (r Record) after(o Record) bool {
	a, b := r.Stamp(), o.Stamp()
	if !a.IsZero() || !b.IsZero() {
		if c := a.Compare(b); c != 0 {
			return c > 0
		}
		if r.Origin != o.Origin {
			return r.Origin > o.Origin
		}
	}
	return r.Seq > o.Seq
}

// Store is the sharded submission store. The zero value is not usable; use
// New.
type Store struct {
	modelShards  []modelShard
	deviceShards []deviceShard
	sketchShards []sketchShard
	seq          atomic.Uint64
	total        atomic.Int64
	accepted     atomic.Int64

	// Observability hooks, nil until Instrument: per-shard occupancy
	// gauges and put counters (write-skew visibility), plus a lock-wait
	// histogram (stripe contention).
	shardOcc  []*obs.Gauge
	shardPuts []*obs.Counter
	lockWait  *obs.Histogram
}

type modelShard struct {
	mu     sync.RWMutex
	models map[string][]Record
	// seen tracks the replication identity of every stamped record in
	// this shard (plus in-flight reservations) — the idempotence gate for
	// replicated applies.
	seen map[Key]struct{}
}

type deviceShard struct {
	mu      sync.RWMutex
	devices map[string]Record
}

// sketchShard stripes the per-model population sketches the sketch-mode
// binner folds instead of scanning the corpus. Each model's sketch lives
// in the shard its name hashes to — the same index as its model shard —
// but under its own lock: sketch maintenance is a commit-path side
// effect that must not extend the model stripe's hold time, and bins
// reads must not contend with history appends.
type sketchShard struct {
	mu       sync.Mutex
	sketches map[string]*modelSketch
}

// modelSketch is one model's streaming population summary: the sketch of
// the latest accepted record per device, plus the per-device latest map
// that decides each record's delta. Keeping the latest map here — keyed
// per (model, device), unlike the global device stripe — pins the
// sketch's population definition to exactly what Latest(model) returns:
// a device resubmitting under a different model leaves its old model's
// population untouched, just as the exact scan would see it.
type modelSketch struct {
	sk *stats.BinSketch
	// rev increments on every mutation — the sketch-mode binner's cache
	// invalidation key.
	rev uint64
	// latest is the winning record per device within this model, by the
	// same Record.after order Latest resolves with. Application is
	// order-independent: whichever of two records lands first, the
	// winner's observation is in the sketch and the loser's is not.
	latest map[string]Record
}

// DefaultShards is the shard count New falls back to for n <= 0.
const DefaultShards = 16

// New creates a store striped across n shards (DefaultShards if n <= 0).
func New(n int) *Store {
	if n <= 0 {
		n = DefaultShards
	}
	s := &Store{
		modelShards:  make([]modelShard, n),
		deviceShards: make([]deviceShard, n),
		sketchShards: make([]sketchShard, n),
	}
	for i := range s.modelShards {
		s.modelShards[i].models = make(map[string][]Record)
		s.modelShards[i].seen = make(map[Key]struct{})
		s.deviceShards[i].devices = make(map[string]Record)
		s.sketchShards[i].sketches = make(map[string]*modelSketch)
	}
	return s
}

// Shards returns the stripe width.
func (s *Store) Shards() int { return len(s.modelShards) }

// Instrument registers the store's observability metrics: a
// store_shard_records occupancy gauge and a store_shard_puts_total
// counter per model shard (the write-skew view — a hot model shows up
// as one shard's counters running away), and a store_lock_wait_seconds
// histogram measuring how long writers wait for a stripe lock (the
// contention view). Call it before the store is shared; instrumentation
// is all-or-nothing and adds one gauge update plus two clock reads per
// put.
func (s *Store) Instrument(reg *obs.Registry) {
	occ := reg.GaugeVec("store_shard_records",
		"records held per model shard — stripe occupancy", "shard")
	puts := reg.CounterVec("store_shard_puts_total",
		"records inserted per model shard — write skew", "shard")
	s.shardOcc = make([]*obs.Gauge, len(s.modelShards))
	s.shardPuts = make([]*obs.Counter, len(s.modelShards))
	for i := range s.modelShards {
		label := strconv.Itoa(i)
		s.shardOcc[i] = occ.With(label)
		s.shardPuts[i] = puts.With(label)
	}
	s.lockWait = reg.Histogram("store_lock_wait_seconds",
		"time writers wait to acquire a model-shard lock — stripe contention", obs.DurationBuckets)
}

// lockShard acquires the model shard's write lock, observing the wait
// when instrumented.
func (s *Store) lockShard(ms *modelShard) {
	if s.lockWait == nil {
		ms.mu.Lock()
		return
	}
	t0 := time.Now()
	ms.mu.Lock()
	s.lockWait.Observe(time.Since(t0).Seconds())
}

// noteInsert updates the shard's observability counters after an
// insert.
func (s *Store) noteInsert(idx int) {
	if s.shardOcc != nil {
		s.shardOcc[idx].Add(1)
		s.shardPuts[idx].Inc()
	}
}

func (s *Store) shardIndex(key string) int {
	h := fnv.New32a()
	h.Write([]byte(key))
	return int(h.Sum32() % uint32(len(s.modelShards)))
}

// validate rejects records the store cannot key.
func validate(r Record) error {
	if r.Model == "" {
		return fmt.Errorf("store: record without model")
	}
	if r.Device == "" {
		return fmt.Errorf("store: record without device")
	}
	return nil
}

// Put stores a submission record, assigns its arrival sequence number and
// returns it. A device resubmitting replaces its previous point-lookup
// entry but still appends to the model history (the bins are computed over
// the latest record per device).
func (s *Store) Put(r Record) (uint64, error) {
	if err := validate(r); err != nil {
		return 0, err
	}
	// Seq is assigned under the model shard's lock so that a model's
	// history is sorted by sequence number as well as by arrival.
	idx := s.shardIndex(r.Model)
	ms := &s.modelShards[idx]
	s.lockShard(ms)
	r.Seq = s.seq.Add(1)
	ms.models[r.Model] = append(ms.models[r.Model], r)
	if k, ok := r.Key(); ok {
		ms.seen[k] = struct{}{}
	}
	ms.mu.Unlock()

	s.noteInsert(idx)
	s.finishPut(r)
	s.noteSketch(r)
	return r.Seq, nil
}

// PutSeq stores a record whose sequence number was already assigned
// upstream — by the WAL's commit point, or by a snapshot being restored.
// The model history stays sorted by sequence number even when concurrent
// committers land out of order, and a device's point-lookup entry is only
// replaced by a record with a higher sequence number, so replaying a log
// always converges to the same state the live writes produced.
func (s *Store) PutSeq(r Record) error {
	if err := validate(r); err != nil {
		return err
	}
	if r.Seq == 0 {
		return fmt.Errorf("store: PutSeq needs an assigned sequence number")
	}
	// Raise the global high-water mark first so an interleaved Put can
	// never hand out a duplicate.
	for {
		cur := s.seq.Load()
		if r.Seq <= cur || s.seq.CompareAndSwap(cur, r.Seq) {
			break
		}
	}
	idx := s.shardIndex(r.Model)
	ms := &s.modelShards[idx]
	s.lockShard(ms)
	insertSeqLocked(ms, r)
	ms.mu.Unlock()

	s.noteInsert(idx)
	s.finishPut(r)
	s.noteSketch(r)
	return nil
}

// insertSeqLocked sorted-inserts a pre-sequenced record into the shard's
// model history and registers its replication key; the caller holds the
// shard's write lock. Insertion keeps the history sorted by sequence
// number even when concurrent committers land out of order.
func insertSeqLocked(ms *modelShard, r Record) {
	recs := ms.models[r.Model]
	i := len(recs)
	for i > 0 && recs[i-1].Seq > r.Seq {
		i--
	}
	recs = append(recs, Record{})
	copy(recs[i+1:], recs[i:])
	recs[i] = r
	ms.models[r.Model] = recs
	if k, ok := r.Key(); ok {
		ms.seen[k] = struct{}{}
	}
}

// PutSeqBatch stores a group of records whose sequence numbers were
// assigned by one WAL batch append — the streaming ingest fast path.
// Semantically it is exactly a PutSeq per record; mechanically the
// global high-water mark is raised once and each model (and device)
// shard's lock is taken once for all the batch's records it holds,
// instead of once per record, so a 256-submission batch costs a
// handful of lock acquisitions rather than five hundred.
func (s *Store) PutSeqBatch(recs []Record) error {
	if len(recs) == 0 {
		return nil
	}
	var maxSeq uint64
	for i := range recs {
		if err := validate(recs[i]); err != nil {
			return err
		}
		if recs[i].Seq == 0 {
			return fmt.Errorf("store: PutSeqBatch needs assigned sequence numbers")
		}
		if recs[i].Seq > maxSeq {
			maxSeq = recs[i].Seq
		}
	}
	// Raise the global high-water mark first so an interleaved Put can
	// never hand out a duplicate.
	for {
		cur := s.seq.Load()
		if maxSeq <= cur || s.seq.CompareAndSwap(cur, maxSeq) {
			break
		}
	}
	// One lock pass per model shard: group the batch by the shard each
	// model hashes to, insert every group member under a single hold.
	byModel := make(map[int][]int)
	for i := range recs {
		idx := s.shardIndex(recs[i].Model)
		byModel[idx] = append(byModel[idx], i)
	}
	for idx, group := range byModel {
		ms := &s.modelShards[idx]
		s.lockShard(ms)
		for _, i := range group {
			insertSeqLocked(ms, recs[i])
		}
		ms.mu.Unlock()
		if s.shardOcc != nil {
			s.shardOcc[idx].Add(int64(len(group)))
			s.shardPuts[idx].Add(uint64(len(group)))
		}
		// Sketches stripe on the same model-hash index, so the batch's
		// grouping is reusable: one sketch lock per shard, not per record.
		sh := &s.sketchShards[idx]
		sh.mu.Lock()
		for _, i := range group {
			noteSketchLocked(sh, recs[i])
		}
		sh.mu.Unlock()
	}
	// Device stripe likewise, preserving batch order within a shard so
	// a device submitting twice in one batch resolves like sequential
	// puts would.
	byDevice := make(map[int][]int)
	for i := range recs {
		idx := s.shardIndex(recs[i].Device)
		byDevice[idx] = append(byDevice[idx], i)
	}
	accepted := int64(0)
	for idx, group := range byDevice {
		ds := &s.deviceShards[idx]
		ds.mu.Lock()
		for _, i := range group {
			r := recs[i]
			if prev, ok := ds.devices[r.Device]; !ok || !prev.after(r) {
				ds.devices[r.Device] = r
			}
		}
		ds.mu.Unlock()
	}
	for i := range recs {
		if recs[i].Accepted {
			accepted++
		}
	}
	s.total.Add(int64(len(recs)))
	s.accepted.Add(accepted)
	return nil
}

// finishPut updates the device stripe and the aggregate counters for a
// record already inserted into its model history.
func (s *Store) finishPut(r Record) {
	ds := &s.deviceShards[s.shardIndex(r.Device)]
	ds.mu.Lock()
	if prev, ok := ds.devices[r.Device]; !ok || !prev.after(r) {
		ds.devices[r.Device] = r
	}
	ds.mu.Unlock()

	s.total.Add(1)
	if r.Accepted {
		s.accepted.Add(1)
	}
}

// noteSketch folds one committed record into its model's sketch.
func (s *Store) noteSketch(r Record) {
	sh := &s.sketchShards[s.shardIndex(r.Model)]
	sh.mu.Lock()
	noteSketchLocked(sh, r)
	sh.mu.Unlock()
}

// noteSketchLocked applies a record's sketch delta; the caller holds the
// sketch shard's lock. Every record bumps the submission tally; the
// observation set changes only when the record wins the per-device
// `after` race — retracting the superseded winner's observation if it
// was accepted, adding the new winner's if it is. The resulting sketch
// is a pure function of the committed record set: any arrival order or
// batch grouping converges to the same cells, so replicas that agree on
// records agree on sketches (and therefore on sketch-mode bins).
func noteSketchLocked(sh *sketchShard, r Record) {
	ms := sh.sketches[r.Model]
	if ms == nil {
		ms = &modelSketch{sk: stats.NewBinSketch(), latest: make(map[string]Record)}
		sh.sketches[r.Model] = ms
	}
	ms.sk.NoteRecord()
	if prev, had := ms.latest[r.Device]; !had || !prev.after(r) {
		if had && prev.Accepted {
			ms.sk.Unobserve(prev.Score, float64(prev.EstimatedAmbient))
		}
		if r.Accepted {
			ms.sk.Observe(r.Score, float64(r.EstimatedAmbient))
		}
		ms.latest[r.Device] = r
	}
	ms.rev++
}

// SketchSnapshot returns an independent copy of the model's population
// sketch plus its revision; ok is false when the model has no records.
// The revision increments on every committed record for the model, so a
// caller holding bins derived from revision R knows they are current
// iff SketchRevision still returns R.
func (s *Store) SketchSnapshot(model string) (sk *stats.BinSketch, rev uint64, ok bool) {
	sh := &s.sketchShards[s.shardIndex(model)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ms := sh.sketches[model]
	if ms == nil {
		return nil, 0, false
	}
	return ms.sk.Clone(), ms.rev, true
}

// SketchRevision returns the model's sketch revision without copying the
// sketch — the sketch-mode binner's cache-freshness probe.
func (s *Store) SketchRevision(model string) (uint64, bool) {
	sh := &s.sketchShards[s.shardIndex(model)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ms := sh.sketches[model]
	if ms == nil {
		return 0, false
	}
	return ms.rev, true
}

// SketchBinary returns the model's sketch in its canonical binary
// encoding (stats.DecodeBinSketch reads it back) — the GET /v1/sketch
// payload; ok is false when the model has no records.
func (s *Store) SketchBinary(model string) ([]byte, bool) {
	sh := &s.sketchShards[s.shardIndex(model)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ms := sh.sketches[model]
	if ms == nil {
		return nil, false
	}
	return ms.sk.AppendBinary(nil), true
}

// sketchDigest returns the model's sketch digest (0 when absent).
func (s *Store) sketchDigest(model string) uint64 {
	sh := &s.sketchShards[s.shardIndex(model)]
	sh.mu.Lock()
	defer sh.mu.Unlock()
	ms := sh.sketches[model]
	if ms == nil {
		return 0
	}
	return ms.sk.Digest()
}

// Model returns a copy of every record stored for the model, in arrival
// order. The copy is the caller's to keep.
func (s *Store) Model(model string) []Record {
	ms := &s.modelShards[s.shardIndex(model)]
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	recs := ms.models[model]
	if len(recs) == 0 {
		return nil
	}
	out := make([]Record, len(recs))
	copy(out, recs)
	return out
}

// Latest returns the latest record per device for the model — the
// population the binning loop clusters. "Latest" is by HLC stamp for
// cluster-ingested records, by arrival for single-node ones. When every
// winner carries a stamp the result is returned in canonical stamp
// order, which is identical on every converged replica (the binner's
// float accumulations then run in the same order everywhere, keeping
// bins bit-identical across the cluster); otherwise it keeps the
// first-seen device order single-node callers have always observed.
func (s *Store) Latest(model string) []Record {
	recs := s.Model(model)
	idx := make(map[string]int, len(recs))
	var out []Record
	for _, r := range recs {
		if i, ok := idx[r.Device]; ok {
			if r.after(out[i]) {
				out[i] = r
			}
			continue
		}
		idx[r.Device] = len(out)
		out = append(out, r)
	}
	stamped := len(out) > 0
	for _, r := range out {
		if _, ok := r.Key(); !ok {
			stamped = false
			break
		}
	}
	if stamped {
		sort.Slice(out, func(i, j int) bool { return out[j].after(out[i]) })
	}
	return out
}

// Models returns every model name with at least one record, sorted.
func (s *Store) Models() []string {
	var out []string
	for i := range s.modelShards {
		ms := &s.modelShards[i]
		ms.mu.RLock()
		for m := range ms.models {
			out = append(out, m)
		}
		ms.mu.RUnlock()
	}
	sort.Strings(out)
	return out
}

// Device returns the latest record uploaded by the device.
func (s *Store) Device(id string) (Record, bool) {
	ds := &s.deviceShards[s.shardIndex(id)]
	ds.mu.RLock()
	defer ds.mu.RUnlock()
	r, ok := ds.devices[id]
	return r, ok
}

// Snapshot returns every stored record across all models, sorted by
// sequence number — a deterministic iteration of the whole store, the
// serialization order the WAL snapshotter checkpoints. The slice is the
// caller's to keep.
func (s *Store) Snapshot() []Record {
	out := make([]Record, 0, s.Len())
	for i := range s.modelShards {
		ms := &s.modelShards[i]
		ms.mu.RLock()
		for _, recs := range ms.models {
			out = append(out, recs...)
		}
		ms.mu.RUnlock()
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// Restore loads snapshot records into the store — the boot path, before
// the store is shared. Records keep their sequence numbers; the device
// stripe and counters are rebuilt as if each record had been committed
// live.
func (s *Store) Restore(recs []Record) error {
	for _, r := range recs {
		if err := s.PutSeq(r); err != nil {
			return fmt.Errorf("store: restoring seq %d: %w", r.Seq, err)
		}
	}
	return nil
}

// Len returns the total record count across all models.
func (s *Store) Len() int { return int(s.total.Load()) }

// AcceptedLen returns how many stored records survived the filters.
func (s *Store) AcceptedLen() int { return int(s.accepted.Load()) }

// Reserve atomically claims a replication key under the model's shard:
// it returns true exactly once per key, false for a key the store
// already holds (or has an in-flight reservation for). Replicated
// applies reserve before committing through the WAL so the same record
// arriving twice — live ship racing an anti-entropy pull — commits once.
func (s *Store) Reserve(model string, k Key) bool {
	ms := &s.modelShards[s.shardIndex(model)]
	ms.mu.Lock()
	defer ms.mu.Unlock()
	if _, ok := ms.seen[k]; ok {
		return false
	}
	ms.seen[k] = struct{}{}
	return true
}

// Release returns a reserved key — the failure path of a replicated
// apply whose local commit failed, so a later retry can reserve again.
func (s *Store) Release(model string, k Key) {
	ms := &s.modelShards[s.shardIndex(model)]
	ms.mu.Lock()
	delete(ms.seen, k)
	ms.mu.Unlock()
}

// HasKey reports whether the store holds (or has reserved) the
// replication key.
func (s *Store) HasKey(model string, k Key) bool {
	ms := &s.modelShards[s.shardIndex(model)]
	ms.mu.RLock()
	defer ms.mu.RUnlock()
	_, ok := ms.seen[k]
	return ok
}

// ModelDigest summarizes one model's records for anti-entropy
// comparison: two stores hold the same record set for a model iff their
// digests (and counts) match.
type ModelDigest struct {
	// Records counts every stored record for the model.
	Records int `json:"records"`
	// Digest is the order-independent fold of every record's content
	// hash — insertion order, node-local sequence numbers and shard
	// layout do not affect it.
	Digest uint64 `json:"digest"`
	// MaxWall is the largest HLC wall component among the model's
	// records (0 when none are stamped) — the freshness horizon the
	// replication-lag gauges read.
	MaxWall int64 `json:"max_hlc_wall"`
	// SketchDigest is the order-independent digest of the model's
	// population sketch (stats.BinSketch.Digest). Replicas that agree on
	// Records and Digest must agree on SketchDigest too — the proof that
	// convergence extends past the record set to the bins the sketch
	// path serves from it.
	SketchDigest uint64 `json:"sketch_digest"`
}

// recordHash folds a record's replicated content — everything except the
// node-local sequence number — into one 64-bit hash.
func recordHash(r Record) uint64 {
	h := fnv.New64a()
	var buf [8]byte
	io.WriteString(h, r.Device)
	h.Write([]byte{0})
	io.WriteString(h, r.Origin)
	h.Write([]byte{0})
	binary.LittleEndian.PutUint64(buf[:], uint64(r.HLCWall))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], uint64(r.HLCLogical))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(r.Score))
	h.Write(buf[:])
	binary.LittleEndian.PutUint64(buf[:], math.Float64bits(float64(r.EstimatedAmbient)))
	h.Write(buf[:])
	if r.Accepted {
		h.Write([]byte{1})
	} else {
		h.Write([]byte{0})
	}
	io.WriteString(h, r.RejectReason)
	return h.Sum64()
}

// digestLocked folds one model's records; the caller holds the shard
// lock.
func digestLocked(recs []Record) ModelDigest {
	d := ModelDigest{Records: len(recs)}
	for _, r := range recs {
		d.Digest ^= recordHash(r)
		if r.HLCWall > d.MaxWall {
			d.MaxWall = r.HLCWall
		}
	}
	return d
}

// Digest returns the model's anti-entropy digest; ok is false when the
// store holds no records for it.
func (s *Store) Digest(model string) (ModelDigest, bool) {
	ms := &s.modelShards[s.shardIndex(model)]
	ms.mu.RLock()
	recs, ok := ms.models[model]
	var d ModelDigest
	if ok {
		d = digestLocked(recs)
	}
	ms.mu.RUnlock()
	if !ok {
		return ModelDigest{}, false
	}
	// The sketch stripe is read under its own lock; a record committing
	// between the two reads skews one digest ahead of the other, which
	// anti-entropy already tolerates — digests are point-in-time
	// comparisons, re-checked next round.
	d.SketchDigest = s.sketchDigest(model)
	return d, true
}

// DigestAll returns the digest of every model the store holds — the
// payload of GET /v1/digest, what reconcile rounds compare.
func (s *Store) DigestAll() map[string]ModelDigest {
	out := make(map[string]ModelDigest)
	for i := range s.modelShards {
		ms := &s.modelShards[i]
		ms.mu.RLock()
		for model, recs := range ms.models {
			out[model] = digestLocked(recs)
		}
		ms.mu.RUnlock()
	}
	for model, d := range out {
		d.SketchDigest = s.sketchDigest(model)
		out[model] = d
	}
	return out
}
