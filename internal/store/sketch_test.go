package store

import (
	"fmt"
	"math/rand"
	"testing"

	"accubench/internal/hlc"
	"accubench/internal/stats"
	"accubench/internal/units"
)

func sketchRecord(device, model string, seq uint64, score, amb float64, accepted bool) Record {
	r := Record{
		Device:           device,
		Model:            model,
		Score:            score,
		EstimatedAmbient: units.Celsius(amb),
		Accepted:         accepted,
		Seq:              seq,
	}
	if !accepted {
		r.RejectReason = "test"
	}
	return r
}

func TestSketchTracksLatestAcceptedPerDevice(t *testing.T) {
	s := New(4)
	// d1 accepted, then superseded by a rejected record: its observation
	// must leave the sketch.
	if _, err := s.Put(sketchRecord("d1", "m", 0, 3.0, 24, true)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(sketchRecord("d2", "m", 0, 4.0, 26, true)); err != nil {
		t.Fatal(err)
	}
	sk, _, ok := s.SketchSnapshot("m")
	if !ok {
		t.Fatal("no sketch for model m")
	}
	if sk.Accepted() != 2 || sk.Records() != 2 {
		t.Fatalf("accepted=%d records=%d, want 2,2", sk.Accepted(), sk.Records())
	}
	if _, err := s.Put(sketchRecord("d1", "m", 0, 3.5, 24, false)); err != nil {
		t.Fatal(err)
	}
	sk, _, _ = s.SketchSnapshot("m")
	if sk.Accepted() != 1 || sk.Records() != 3 {
		t.Fatalf("after reject-supersede: accepted=%d records=%d, want 1,3", sk.Accepted(), sk.Records())
	}
	// Resubmission with a new accepted score replaces, not accumulates.
	if _, err := s.Put(sketchRecord("d2", "m", 0, 4.2, 26, true)); err != nil {
		t.Fatal(err)
	}
	sk, _, _ = s.SketchSnapshot("m")
	if sk.Accepted() != 1 {
		t.Fatalf("after resubmit: accepted=%d, want 1 (d1 rejected, d2 replaced)", sk.Accepted())
	}
	if q := sk.Quantile(1.0); q < 4.19 || q > 4.21 {
		t.Fatalf("max score after resubmit = %g, want ~4.2", q)
	}
}

// TestSketchModelScopedLatest pins the population definition: the sketch
// tracks the latest record per device *within each model*, exactly like
// Latest(model) — a device moving to another model leaves its old
// model's population untouched.
func TestSketchModelScopedLatest(t *testing.T) {
	s := New(4)
	if _, err := s.Put(sketchRecord("d1", "mA", 0, 3.0, 24, true)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Put(sketchRecord("d1", "mB", 0, 5.0, 24, true)); err != nil {
		t.Fatal(err)
	}
	skA, _, _ := s.SketchSnapshot("mA")
	skB, _, _ := s.SketchSnapshot("mB")
	if skA.Accepted() != 1 || skB.Accepted() != 1 {
		t.Fatalf("accepted A=%d B=%d, want 1,1 (model-scoped latest)", skA.Accepted(), skB.Accepted())
	}
	if got := len(s.Latest("mA")); got != 1 {
		t.Fatalf("Latest(mA) = %d records, want 1 — sketch and exact must agree", got)
	}
}

// TestSketchConvergence is the replica-convergence pin: the same record
// set committed in any order, batched or sequential, live or restored,
// produces bit-identical sketches.
func TestSketchConvergence(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	var recs []Record
	for i := 0; i < 400; i++ {
		dev := fmt.Sprintf("d%03d", rng.Intn(120)) // plenty of resubmissions
		model := fmt.Sprintf("m%d", rng.Intn(3))
		r := sketchRecord(dev, model, uint64(i+1), 2+rng.Float64()*3, 18+rng.Float64()*14, rng.Intn(4) != 0)
		r.SetStamp("n1", hlc.Timestamp{Wall: int64(i + 1)})
		recs = append(recs, r)
	}

	sequential := New(8)
	for _, r := range recs {
		if err := sequential.PutSeq(r); err != nil {
			t.Fatal(err)
		}
	}

	batched := New(8)
	for i := 0; i < len(recs); i += 64 {
		end := i + 64
		if end > len(recs) {
			end = len(recs)
		}
		if err := batched.PutSeqBatch(append([]Record(nil), recs[i:end]...)); err != nil {
			t.Fatal(err)
		}
	}

	shuffled := New(8)
	perm := rng.Perm(len(recs))
	for _, i := range perm {
		if err := shuffled.PutSeq(recs[i]); err != nil {
			t.Fatal(err)
		}
	}

	restored := New(8)
	if err := restored.Restore(sequential.Snapshot()); err != nil {
		t.Fatal(err)
	}

	for _, model := range sequential.Models() {
		ref, _, ok := sequential.SketchSnapshot(model)
		if !ok {
			t.Fatalf("no sketch for %s", model)
		}
		for name, st := range map[string]*Store{"batched": batched, "shuffled": shuffled, "restored": restored} {
			got, _, ok := st.SketchSnapshot(model)
			if !ok {
				t.Fatalf("%s: no sketch for %s", name, model)
			}
			if got.Digest() != ref.Digest() {
				t.Errorf("%s: sketch digest for %s = %#x, want %#x", name, model, got.Digest(), ref.Digest())
			}
			if got.Records() != ref.Records() || got.Accepted() != ref.Accepted() {
				t.Errorf("%s: %s tallies records=%d/%d accepted=%d/%d", name, model,
					got.Records(), ref.Records(), got.Accepted(), ref.Accepted())
			}
		}
	}
}

func TestSketchRevisionAdvances(t *testing.T) {
	s := New(4)
	if _, ok := s.SketchRevision("m"); ok {
		t.Fatal("revision reported for absent model")
	}
	if _, err := s.Put(sketchRecord("d1", "m", 0, 3.0, 24, true)); err != nil {
		t.Fatal(err)
	}
	r1, ok := s.SketchRevision("m")
	if !ok {
		t.Fatal("no revision after put")
	}
	if _, err := s.Put(sketchRecord("d2", "m", 0, 3.1, 24, false)); err != nil {
		t.Fatal(err)
	}
	r2, _ := s.SketchRevision("m")
	if r2 <= r1 {
		t.Fatalf("revision did not advance: %d -> %d (every record must bump it)", r1, r2)
	}
}

func TestSketchBinaryRoundTrip(t *testing.T) {
	s := New(4)
	if _, ok := s.SketchBinary("m"); ok {
		t.Fatal("binary reported for absent model")
	}
	for i := 0; i < 50; i++ {
		if _, err := s.Put(sketchRecord(fmt.Sprintf("d%d", i), "m", 0, 2+float64(i)*0.05, 20+float64(i%10), true)); err != nil {
			t.Fatal(err)
		}
	}
	enc, ok := s.SketchBinary("m")
	if !ok {
		t.Fatal("no sketch binary")
	}
	dec, err := stats.DecodeBinSketch(enc)
	if err != nil {
		t.Fatalf("DecodeBinSketch: %v", err)
	}
	ref, _, _ := s.SketchSnapshot("m")
	if dec.Digest() != ref.Digest() {
		t.Fatal("decoded sketch digest differs from snapshot")
	}
}

func TestDigestCarriesSketchDigest(t *testing.T) {
	a, b := New(4), New(4)
	for i := 0; i < 30; i++ {
		r := sketchRecord(fmt.Sprintf("d%d", i), "m", uint64(i+1), 3+float64(i)*0.01, 22+float64(i%5), true)
		r.SetStamp("n1", hlc.Timestamp{Wall: int64(i + 1)})
		if err := a.PutSeq(r); err != nil {
			t.Fatal(err)
		}
		if err := b.PutSeq(r); err != nil {
			t.Fatal(err)
		}
	}
	da, ok := a.Digest("m")
	if !ok || da.SketchDigest == 0 {
		t.Fatalf("Digest: ok=%v sketch=%#x, want populated sketch digest", ok, da.SketchDigest)
	}
	db, _ := b.Digest("m")
	if da.SketchDigest != db.SketchDigest {
		t.Fatal("converged stores disagree on sketch digest")
	}
	all := a.DigestAll()
	if all["m"].SketchDigest != da.SketchDigest {
		t.Fatal("DigestAll sketch digest differs from Digest")
	}
	// Diverge b; the sketch digests must split.
	if _, err := b.Put(sketchRecord("dX", "m", 0, 9.9, 25, true)); err != nil {
		t.Fatal(err)
	}
	db2, _ := b.Digest("m")
	if db2.SketchDigest == da.SketchDigest {
		t.Fatal("diverged stores share a sketch digest")
	}
}
