package store

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutAndLookup(t *testing.T) {
	s := New(4)
	if s.Shards() != 4 {
		t.Fatalf("Shards() = %d", s.Shards())
	}
	seq1, err := s.Put(Record{Device: "d1", Model: "Nexus 5", Score: 100, Accepted: true})
	if err != nil {
		t.Fatal(err)
	}
	seq2, err := s.Put(Record{Device: "d2", Model: "Nexus 5", Score: 200, Accepted: false, RejectReason: "ambient 35.0°C outside window"})
	if err != nil {
		t.Fatal(err)
	}
	if seq1 == seq2 {
		t.Errorf("sequence numbers collide: %d", seq1)
	}
	if s.Len() != 2 || s.AcceptedLen() != 1 {
		t.Errorf("Len = %d, AcceptedLen = %d, want 2, 1", s.Len(), s.AcceptedLen())
	}

	recs := s.Model("Nexus 5")
	if len(recs) != 2 {
		t.Fatalf("Model returned %d records", len(recs))
	}
	if recs[0].Device != "d1" || recs[1].Device != "d2" {
		t.Errorf("arrival order lost: %v", recs)
	}

	r, ok := s.Device("d2")
	if !ok || r.Score != 200 || r.Accepted {
		t.Errorf("Device(d2) = %+v, %v", r, ok)
	}
	if _, ok := s.Device("nope"); ok {
		t.Error("unknown device found")
	}
	if got := s.Model("LG G5"); got != nil {
		t.Errorf("empty model returned %v", got)
	}
}

func TestPutValidation(t *testing.T) {
	s := New(1)
	if _, err := s.Put(Record{Device: "d"}); err == nil {
		t.Error("record without model accepted")
	}
	if _, err := s.Put(Record{Model: "m"}); err == nil {
		t.Error("record without device accepted")
	}
}

func TestLatestKeepsNewestPerDevice(t *testing.T) {
	s := New(2)
	mustPut(t, s, Record{Device: "d1", Model: "m", Score: 1})
	mustPut(t, s, Record{Device: "d2", Model: "m", Score: 2})
	mustPut(t, s, Record{Device: "d1", Model: "m", Score: 3})
	latest := s.Latest("m")
	if len(latest) != 2 {
		t.Fatalf("Latest returned %d records", len(latest))
	}
	if latest[0].Device != "d1" || latest[0].Score != 3 {
		t.Errorf("resubmission did not replace: %+v", latest[0])
	}
	if latest[1].Device != "d2" {
		t.Errorf("device order lost: %+v", latest[1])
	}
	// The full history keeps all three.
	if got := len(s.Model("m")); got != 3 {
		t.Errorf("Model history has %d records, want 3", got)
	}
}

func TestModelReturnsCopy(t *testing.T) {
	s := New(2)
	mustPut(t, s, Record{Device: "d1", Model: "m", Score: 1})
	recs := s.Model("m")
	recs[0].Score = 999
	if got := s.Model("m")[0].Score; got != 1 {
		t.Errorf("caller mutation leaked into store: score %v", got)
	}
}

func TestModels(t *testing.T) {
	s := New(8)
	for _, m := range []string{"Nexus 5", "LG G5", "Google Pixel"} {
		mustPut(t, s, Record{Device: "d-" + m, Model: m})
	}
	got := s.Models()
	want := []string{"Google Pixel", "LG G5", "Nexus 5"}
	if len(got) != len(want) {
		t.Fatalf("Models() = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("Models()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// TestConcurrentReadersAndWriters hammers the stripes from parallel
// writers and readers; run with -race (the ci target does).
func TestConcurrentReadersAndWriters(t *testing.T) {
	s := New(8)
	models := []string{"Nexus 5", "Nexus 6", "Nexus 6P", "LG G5", "Google Pixel"}
	const writers = 8
	const perWriter = 400

	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				m := models[(w+i)%len(models)]
				mustPut(t, s, Record{
					Device:   fmt.Sprintf("w%d-d%d", w, i),
					Model:    m,
					Score:    float64(i),
					Accepted: i%2 == 0,
				})
			}
		}(w)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 4; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for n := 0; ; n++ {
				select {
				case <-stop:
					return
				default:
				}
				m := models[(r+n)%len(models)]
				recs := s.Model(m)
				for i := 1; i < len(recs); i++ {
					if recs[i].Seq <= recs[i-1].Seq {
						t.Errorf("model %s: seq not increasing at %d", m, i)
						return
					}
				}
				s.Device(fmt.Sprintf("w0-d%d", n%perWriter))
				if n%64 == 0 {
					s.Models()
					_ = s.Len()
				}
			}
		}(r)
	}

	wg.Wait()
	close(stop)
	readers.Wait()

	if got := s.Len(); got != writers*perWriter {
		t.Errorf("Len = %d, want %d", got, writers*perWriter)
	}
	if got := s.AcceptedLen(); got != writers*perWriter/2 {
		t.Errorf("AcceptedLen = %d, want %d", got, writers*perWriter/2)
	}
	var sum int
	for _, m := range s.Models() {
		sum += len(s.Model(m))
	}
	if sum != writers*perWriter {
		t.Errorf("per-model records sum to %d, want %d", sum, writers*perWriter)
	}
}

func mustPut(t *testing.T, s *Store, r Record) {
	t.Helper()
	if _, err := s.Put(r); err != nil {
		t.Fatal(err)
	}
}

func TestPutSeqHonorsAssignedSequence(t *testing.T) {
	s := New(4)
	// Out-of-order arrival — concurrent WAL committers can land 3 before 1 —
	// must still leave the model history sorted by sequence number.
	for _, seq := range []uint64{3, 1, 2} {
		r := Record{Device: fmt.Sprintf("ps-%d", seq), Model: "Nexus 5", Score: float64(100 * seq), Seq: seq, Accepted: true}
		if err := s.PutSeq(r); err != nil {
			t.Fatal(err)
		}
	}
	recs := s.Model("Nexus 5")
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Fatalf("model history out of order: %v", recs)
		}
	}
	// The high-water mark moved: a live Put continues past the restored tail.
	seq, err := s.Put(Record{Device: "live", Model: "Nexus 5", Score: 1})
	if err != nil {
		t.Fatal(err)
	}
	if seq != 4 {
		t.Errorf("Put after PutSeq(3) assigned %d, want 4", seq)
	}

	if err := s.PutSeq(Record{Device: "d", Model: "m"}); err == nil {
		t.Error("PutSeq accepted a record without a sequence number")
	}
	if err := s.PutSeq(Record{Seq: 9}); err == nil {
		t.Error("PutSeq accepted an unkeyable record")
	}
}

func TestPutSeqDeviceStripeKeepsNewest(t *testing.T) {
	s := New(2)
	// Replaying seq 5 then seq 2 for the same device (resubmissions in a
	// log being replayed out of order) must leave the point lookup on 5.
	if err := s.PutSeq(Record{Device: "dup", Model: "m", Score: 500, Seq: 5}); err != nil {
		t.Fatal(err)
	}
	if err := s.PutSeq(Record{Device: "dup", Model: "m", Score: 200, Seq: 2}); err != nil {
		t.Fatal(err)
	}
	r, ok := s.Device("dup")
	if !ok || r.Seq != 5 || r.Score != 500 {
		t.Errorf("Device(dup) = %+v, want the seq-5 record", r)
	}
}

func TestSnapshotRestoreRoundtrip(t *testing.T) {
	s := New(4)
	for i := 0; i < 20; i++ {
		mustPut(t, s, Record{
			Device:   fmt.Sprintf("sr-%02d", i),
			Model:    fmt.Sprintf("Model %d", i%3),
			Score:    float64(1000 + i),
			Accepted: i%2 == 0,
		})
	}
	snap := s.Snapshot()
	if len(snap) != 20 {
		t.Fatalf("snapshot holds %d records", len(snap))
	}
	for i := 1; i < len(snap); i++ {
		if snap[i].Seq <= snap[i-1].Seq {
			t.Fatalf("snapshot iteration not seq-sorted at %d: %v", i, snap[i])
		}
	}

	// Restore into a store with a different stripe width: state, counters
	// and a follow-on snapshot must all match.
	s2 := New(7)
	if err := s2.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if s2.Len() != s.Len() || s2.AcceptedLen() != s.AcceptedLen() {
		t.Fatalf("restored store counts %d/%d, want %d/%d", s2.Len(), s2.AcceptedLen(), s.Len(), s.AcceptedLen())
	}
	snap2 := s2.Snapshot()
	if len(snap2) != len(snap) {
		t.Fatalf("second-generation snapshot holds %d records", len(snap2))
	}
	for i := range snap {
		if snap[i] != snap2[i] {
			t.Fatalf("snapshot→restore→snapshot drifted at %d: %+v != %+v", i, snap[i], snap2[i])
		}
	}
	// Per-device lookups survived the round trip.
	for i := 0; i < 20; i++ {
		id := fmt.Sprintf("sr-%02d", i)
		a, aok := s.Device(id)
		b, bok := s2.Device(id)
		if aok != bok || a != b {
			t.Errorf("device %s diverged: %+v vs %+v", id, a, b)
		}
	}
}
