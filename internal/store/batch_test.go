package store

import (
	"fmt"
	"reflect"
	"testing"

	"accubench/internal/hlc"
)

// batchRecord builds a storable record with an assigned sequence
// number; every third one is rejected.
func batchRecord(i int, seq uint64) Record {
	r := Record{
		Device:           fmt.Sprintf("bd-%03d", i),
		Model:            fmt.Sprintf("Model-%d", i%3),
		Score:            1000 + float64(i),
		EstimatedAmbient: 25,
		Accepted:         i%3 != 0,
		Seq:              seq,
	}
	if !r.Accepted {
		r.RejectReason = "hot climate"
	}
	return r
}

// TestPutSeqBatchMatchesSequential is the equivalence contract: one
// PutSeqBatch call must leave the store in exactly the state the same
// records inserted one PutSeq at a time would — same digests, same
// per-device winners, same aggregates — including a device submitting
// twice within the batch.
func TestPutSeqBatchMatchesSequential(t *testing.T) {
	recs := make([]Record, 0, 26)
	for i := 0; i < 24; i++ {
		recs = append(recs, batchRecord(i, uint64(i+1)))
	}
	// Same device twice in one batch: the later entry must win exactly
	// as it would sequentially.
	dup := batchRecord(3, 25)
	dup.Score = 4242
	dup.SetStamp("n1", hlc.Timestamp{Wall: 1, Logical: 1})
	recs = append(recs, dup)

	seqSt := New(4)
	for _, r := range recs {
		if err := seqSt.PutSeq(r); err != nil {
			t.Fatal(err)
		}
	}
	batchSt := New(4)
	if err := batchSt.PutSeqBatch(recs); err != nil {
		t.Fatal(err)
	}

	if seqSt.Len() != batchSt.Len() || seqSt.AcceptedLen() != batchSt.AcceptedLen() {
		t.Errorf("aggregates diverge: sequential %d/%d, batch %d/%d",
			seqSt.Len(), seqSt.AcceptedLen(), batchSt.Len(), batchSt.AcceptedLen())
	}
	if a, b := seqSt.DigestAll(), batchSt.DigestAll(); !reflect.DeepEqual(a, b) {
		t.Errorf("digests diverge:\nsequential %+v\nbatch      %+v", a, b)
	}
	if a, b := seqSt.Snapshot(), batchSt.Snapshot(); !reflect.DeepEqual(a, b) {
		t.Errorf("snapshots diverge:\nsequential %+v\nbatch      %+v", a, b)
	}
	for _, r := range recs {
		a, aok := seqSt.Device(r.Device)
		b, bok := batchSt.Device(r.Device)
		if aok != bok || !reflect.DeepEqual(a, b) {
			t.Errorf("device %s diverges: sequential (%+v, %v), batch (%+v, %v)", r.Device, a, aok, b, bok)
		}
	}
	// The global sequence advanced past the batch on both: a fresh Put
	// must hand out the same next number.
	fresh := batchRecord(50, 0)
	fresh.Seq = 0
	a, err := seqSt.Put(fresh)
	if err != nil {
		t.Fatal(err)
	}
	b, err := batchSt.Put(fresh)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("next handed-out seq diverges: sequential %d, batch %d", a, b)
	}
}

// TestPutSeqBatchValidatesUpFront locks the all-or-nothing edge: one
// bad record fails the whole batch before any member is inserted.
func TestPutSeqBatchValidatesUpFront(t *testing.T) {
	st := New(4)
	good := batchRecord(1, 1)
	unseq := batchRecord(2, 0) // missing sequence number
	if err := st.PutSeqBatch([]Record{good, unseq}); err == nil {
		t.Fatal("batch with an unsequenced record did not error")
	}
	invalid := batchRecord(3, 3)
	invalid.Device = ""
	if err := st.PutSeqBatch([]Record{good, invalid}); err == nil {
		t.Fatal("batch with an invalid record did not error")
	}
	if st.Len() != 0 {
		t.Errorf("failed batches left %d records behind", st.Len())
	}
	if err := st.PutSeqBatch(nil); err != nil {
		t.Errorf("empty batch = %v, want nil", err)
	}
}
