package experiments

import (
	"fmt"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/silicon"
	"accubench/internal/sim"
	"accubench/internal/soc"
	"accubench/internal/stats"
	"accubench/internal/units"
)

// WhatIfResult contrasts the two binning schemes of the paper's §II on the
// same chip population: voltage binning (what phones do — same advertised
// frequency, hidden quality differences) versus speed binning (what desktop
// parts do — different advertised frequencies, priced accordingly).
//
// Each scheme is measured twice: a 30-second *burst* (the regime desktop
// SKU numbers describe) and the paper's 5-minute *sustained* workload. On a
// passively cooled phone the two diverge, and for the paper's §II reason:
// the fast silicon that earns the halo grade is also the leakiest, so the
// top SKU throttles hardest under sustained load while the mid SKU —
// slower, quieter silicon — delivers most of what it advertises. Speed
// grades printed on a phone box would be burst-only promises, one more
// reason phone makers bin by voltage instead.
type WhatIfResult struct {
	// VoltageBinned are sustained scores under voltage binning, chip by chip.
	VoltageBinned []float64
	// SpeedBurst are 30-second burst scores under speed binning.
	SpeedBurst []float64
	// SpeedSustained are 5-minute sustained scores under speed binning.
	SpeedSustained []float64
	// SpeedGrades are the advertised SKU frequencies, chip by chip.
	SpeedGrades []units.MegaHertz
	// Scrap counts chips that failed even the bottom speed grade.
	Scrap int
}

// VoltageSpreadPct is the hidden sustained-performance spread under voltage
// binning.
func (w WhatIfResult) VoltageSpreadPct() float64 { return stats.Spread(w.VoltageBinned) }

// BurstSpreadPct is the advertised (burst) spread under speed binning.
func (w WhatIfResult) BurstSpreadPct() float64 { return stats.Spread(w.SpeedBurst) }

// SustainedSpreadPct is the sustained spread under speed binning.
func (w WhatIfResult) SustainedSpreadPct() float64 { return stats.Spread(w.SpeedSustained) }

// GradeMeans returns, per advertised SKU (ascending), the mean burst and
// sustained scores.
func (w WhatIfResult) GradeMeans() []GradeMean {
	byGrade := map[units.MegaHertz]*GradeMean{}
	var order []units.MegaHertz
	for i, g := range w.SpeedGrades {
		gm, ok := byGrade[g]
		if !ok {
			gm = &GradeMean{Grade: g}
			byGrade[g] = gm
			order = append(order, g)
		}
		gm.n++
		gm.Burst += w.SpeedBurst[i]
		gm.Sustained += w.SpeedSustained[i]
	}
	// Ascending insertion sort over the handful of grades.
	for i := 1; i < len(order); i++ {
		for j := i; j > 0 && order[j] < order[j-1]; j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	out := make([]GradeMean, 0, len(order))
	for _, g := range order {
		gm := byGrade[g]
		gm.Burst /= float64(gm.n)
		gm.Sustained /= float64(gm.n)
		gm.Count = gm.n
		out = append(out, *gm)
	}
	return out
}

// GradeMean is one SKU's average behaviour.
type GradeMean struct {
	Grade     units.MegaHertz
	Count     int
	Burst     float64
	Sustained float64
	n         int
}

// WhatIfSpeedBinning runs the comparison on a Nexus 5 chip population.
func WhatIfSpeedBinning(o Options) (WhatIfResult, error) {
	const population = 10
	model := soc.Nexus5()
	lottery := silicon.Lottery{Sigma: 0.5, Bins: model.SoC.Bins, BinNoise: 0.35}
	src := sim.NewSource(o.seed(), "whatif")
	corners, err := lottery.Draw(src, population)
	if err != nil {
		return WhatIfResult{}, err
	}
	binner := silicon.SpeedBinner{
		BaseFreq: 2265,
		Alpha:    0.4,
		Ladder:   []units.MegaHertz{960, 1574, 2265},
	}
	burst := 30 * time.Second
	sustained := 5 * time.Minute
	if o.Quick {
		sustained = 2 * time.Minute
	}

	var out WhatIfResult
	for i, corner := range corners {
		// Scheme A: voltage binning, as shipped (the lottery already
		// assigned Table I bins), sustained workload.
		vScore, err := whatIfScore(model, corner, 0, sustained, o, int64(100+i))
		if err != nil {
			return WhatIfResult{}, err
		}
		out.VoltageBinned = append(out.VoltageBinned, vScore)

		// Scheme B: speed binning — every chip at the typical bin-3 voltage
		// row, capped at its advertised grade, measured both ways.
		grade, err := binner.Assign(corner)
		if err != nil {
			out.Scrap++
			continue
		}
		speedCorner := silicon.ProcessCorner{Bin: 3, Leakage: corner.Leakage}
		b, err := whatIfScore(model, speedCorner, grade, burst, o, int64(200+i))
		if err != nil {
			return WhatIfResult{}, err
		}
		s, err := whatIfScore(model, speedCorner, grade, sustained, o, int64(300+i))
		if err != nil {
			return WhatIfResult{}, err
		}
		out.SpeedBurst = append(out.SpeedBurst, b)
		out.SpeedSustained = append(out.SpeedSustained, s)
		out.SpeedGrades = append(out.SpeedGrades, grade)
	}
	if len(out.VoltageBinned) == 0 || len(out.SpeedBurst) == 0 {
		return WhatIfResult{}, fmt.Errorf("experiments: what-if produced no scores")
	}
	return out, nil
}

// whatIfScore runs one UNCONSTRAINED iteration with the given workload
// length and returns the score normalized to iterations per 5 minutes, so
// burst and sustained numbers share a scale.
func whatIfScore(model *soc.DeviceModel, corner silicon.ProcessCorner, cap units.MegaHertz, work time.Duration, o Options, seed int64) (float64, error) {
	mon := monsoon.New(model.Battery.Nominal)
	dev, err := device.New(device.Config{
		Name:       fmt.Sprintf("whatif-%d", seed),
		Model:      model,
		Corner:     corner,
		Ambient:    o.ambient(),
		Seed:       o.seed() + seed,
		Source:     mon.Supply(),
		MaxFreqCap: cap,
	})
	if err != nil {
		return 0, err
	}
	cfg := o.benchConfig(accubench.Unconstrained)
	cfg.Iterations = 1
	cfg.Warmup = 90 * time.Second
	cfg.Workload = work
	res, err := (&accubench.Runner{Device: dev, Monitor: mon, Config: cfg}).Run()
	if err != nil {
		return 0, err
	}
	return res.MeanScore() * (5 * time.Minute).Seconds() / work.Seconds(), nil
}
