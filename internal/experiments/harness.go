// Package experiments reproduces every table and figure of the paper's
// evaluation. Each experiment has a dedicated runner returning typed rows /
// series; cmd/experiments renders them and EXPERIMENTS.md records
// paper-vs-measured for each.
//
// All experiments run the full bench: device + Monsoon + THERMABOX, seeded
// and deterministic.
package experiments

import (
	"fmt"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/device"
	"accubench/internal/fleet"
	"accubench/internal/monsoon"
	"accubench/internal/soc"
	"accubench/internal/thermabox"
	"accubench/internal/units"
)

// Options tune experiment scale. Zero value means paper-faithful.
type Options struct {
	// Quick shrinks phase durations and iteration counts (~10× faster) for
	// tests and smoke runs. Shapes still hold; error bars widen.
	Quick bool
	// Seed is the root seed for all randomness. Zero means 1.
	Seed int64
	// Ambient is the THERMABOX target. Zero means the paper's 26 °C.
	Ambient units.Celsius
}

func (o Options) seed() int64 {
	if o.Seed == 0 {
		return 1
	}
	return o.Seed
}

func (o Options) ambient() units.Celsius {
	if o.Ambient == 0 {
		return 26
	}
	return o.Ambient
}

// benchConfig returns the ACCUBENCH configuration for the options.
func (o Options) benchConfig(mode accubench.Mode) accubench.Config {
	cfg := accubench.DefaultConfig(mode)
	cfg.CooldownTarget = o.ambient() + 10
	if o.Quick {
		cfg.Warmup = 45 * time.Second
		cfg.Workload = 90 * time.Second
		cfg.Iterations = 3
	}
	return cfg
}

// bench assembles a full bench (device powered by a Monsoon inside a
// THERMABOX) for one fleet unit.
type bench struct {
	dev *device.Device
	mon *monsoon.Monitor
	box *thermabox.Box
}

// newBench builds the bench. The Monsoon is configured at the handset's
// nominal battery voltage — except for the LG G5, where the paper learned
// the hard way to use the battery's 4.4 V maximum (§IV-A3); experiments
// that *study* the anomaly (Fig. 10) override this.
func newBench(u fleet.Unit, o Options, monsoonVoltage units.Volts) (*bench, error) {
	model, err := soc.ModelByName(u.ModelName)
	if err != nil {
		return nil, err
	}
	if monsoonVoltage == 0 {
		monsoonVoltage = model.Battery.Nominal
		if model.VoltageThrottle != nil {
			// Post-discovery practice: feed voltage-throttled handsets the
			// battery's maximum so the OS does not cap the CPU.
			monsoonVoltage = model.Battery.Maximum
		}
	}
	mon := monsoon.New(monsoonVoltage)
	dev, err := u.NewDevice(o.ambient(), o.seed(), mon.Supply())
	if err != nil {
		return nil, err
	}
	boxCfg := thermabox.DefaultConfig()
	boxCfg.Target = o.ambient()
	boxCfg.Seed = o.seed() + int64(len(u.Name))
	box, err := thermabox.New(boxCfg)
	if err != nil {
		return nil, err
	}
	if _, ok := box.Stabilize(30*time.Second, time.Hour, time.Second); !ok {
		return nil, fmt.Errorf("experiments: THERMABOX failed to reach %v", boxCfg.Target)
	}
	dev.SetAmbient(box.Air())
	return &bench{dev: dev, mon: mon, box: box}, nil
}

// runAccubench executes the technique on the bench.
func (b *bench) runAccubench(cfg accubench.Config) (accubench.Result, error) {
	r := &accubench.Runner{Device: b.dev, Monitor: b.mon, Box: b.box, Config: cfg}
	return r.Run()
}

// DeviceOutcome pairs a fleet unit with its ACCUBENCH result.
type DeviceOutcome struct {
	Unit   fleet.Unit
	Result accubench.Result
}

// defaultBoxConfig returns the chamber configuration for the options.
func defaultBoxConfig(o Options) thermabox.Config {
	cfg := thermabox.DefaultConfig()
	cfg.Target = o.ambient()
	cfg.Seed = o.seed()
	// Setpoints below room temperature need the compressor to hold the
	// band; setpoints far above need the lamp. Both exist; nothing to vary.
	return cfg
}

// newBox wraps thermabox.New for harness use.
func newBox(cfg thermabox.Config) (*thermabox.Box, error) { return thermabox.New(cfg) }
