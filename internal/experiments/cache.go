package experiments

import (
	"sync"

	"accubench/internal/units"
)

// The study cache memoizes ModelStudy computations per fully-normalized
// Options. A full regeneration (cmd/experiments -run all, the benchmark
// suite) needs the same model's study for Table II, Figures 6–9 and
// Figure 13; without the cache each consumer recomputes minutes of
// simulation that is — by construction and by test — bit-identical every
// time. Studies are pure functions of (model, Quick, seed, ambient), so
// caching cannot change any result, only how often it is computed.

// studyKey is the normalized identity of one study computation. Zero-value
// Options fields are resolved (seed 0 → 1, ambient 0 → 26 °C) before
// keying, so Options{} and Options{Seed: 1, Ambient: 26} share an entry,
// exactly as they share results.
type studyKey struct {
	model   string
	quick   bool
	seed    int64
	ambient units.Celsius
}

// studyEntry is one computation slot. The sync.Once lets concurrent
// consumers of the same key (Table II's callers, parallel benchmarks)
// block on a single computation instead of racing duplicates.
type studyEntry struct {
	once  sync.Once
	study ModelStudy
	err   error
}

// studyCacheCap bounds retained entries. The full fleet is five models;
// 32 leaves generous room for mixed seeds/options in one process while
// keeping worst-case retention (each study holds per-unit traces) small.
// Eviction is FIFO: regeneration workloads touch each key in a burst and
// never loop back over evicted ones.
const studyCacheCap = 32

type studyCache struct {
	mu      sync.Mutex
	entries map[studyKey]*studyEntry
	order   []studyKey
	hits    int
	misses  int
}

var sharedStudyCache = &studyCache{entries: make(map[studyKey]*studyEntry)}

func (c *studyCache) get(modelName string, o Options) (ModelStudy, error) {
	key := studyKey{model: modelName, quick: o.Quick, seed: o.seed(), ambient: o.ambient()}
	c.mu.Lock()
	e, ok := c.entries[key]
	if ok {
		c.hits++
	} else {
		c.misses++
		e = &studyEntry{}
		c.entries[key] = e
		c.order = append(c.order, key)
		if len(c.order) > studyCacheCap {
			evict := c.order[0]
			c.order = c.order[1:]
			// In-flight waiters hold their own *studyEntry; eviction only
			// forgets the key for future lookups.
			delete(c.entries, evict)
		}
	}
	c.mu.Unlock()
	e.once.Do(func() {
		// The parallel runner computes the entry; it is asserted
		// bit-identical to the serial one by TestStudyParallelMatchesSerial.
		e.study, e.err = studyParallel(modelName, o)
	})
	if e.err != nil {
		return ModelStudy{}, e.err
	}
	return e.study.shallowCopy(), nil
}

func (c *studyCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.entries = make(map[studyKey]*studyEntry)
	c.order = nil
	c.hits = 0
	c.misses = 0
}

func (c *studyCache) stats() (hits, misses int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses
}

// shallowCopy returns a ModelStudy whose Perf/Energy slices are fresh, so
// a caller sorting or appending cannot corrupt the cached copy. The
// DeviceOutcome values themselves (and the accubench.Result data inside)
// are shared and treated as read-only by every consumer.
func (s ModelStudy) shallowCopy() ModelStudy {
	return ModelStudy{
		Model:  s.Model,
		Perf:   append([]DeviceOutcome(nil), s.Perf...),
		Energy: append([]DeviceOutcome(nil), s.Energy...),
	}
}

// ResetStudyCache drops every memoized study. Tests that must observe a
// fresh computation (determinism and parallel-equivalence checks exercise
// the uncached internals directly, but benchmarks measuring cold cost use
// this) call it between runs.
func ResetStudyCache() { sharedStudyCache.reset() }

// StudyCacheStats reports cumulative cache hits and misses since process
// start or the last ResetStudyCache.
func StudyCacheStats() (hits, misses int) { return sharedStudyCache.stats() }
