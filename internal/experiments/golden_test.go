package experiments

import (
	"bytes"
	"testing"

	"accubench/internal/testkit"
)

// The golden tests lock the full experiment pipeline byte-for-byte: a
// seeded quick study renders to canonical JSON and must match the
// checked-in file exactly. Any change to the simulator — thermal step,
// governor decision, workload retirement, RNG consumption order — shows
// up here as a diff to review, not as silent drift in the paper's
// numbers. Regenerate intentionally with `go test ./internal/experiments
// -run TestGolden -update`.

// unitSnapshot is the reviewable per-unit projection of a study: who the
// unit is (its lottery outcome) and what ACCUBENCH measured on it, at
// full float precision so any simulator change perturbs the bytes.
type unitSnapshot struct {
	Unit       string  `json:"unit"`
	Bin        int     `json:"bin"`
	Leakage    float64 `json:"leakage"`
	PerfScores []int   `json:"perf_scores"`
	MeanScore  float64 `json:"mean_score"`
	MeanEnergy float64 `json:"mean_energy_j"`
}

type studySnapshot struct {
	Model            string         `json:"model"`
	Units            []unitSnapshot `json:"units"`
	PerfVariationPct float64        `json:"perf_variation_pct"`
	EnergyVarPct     float64        `json:"energy_variation_pct"`
	PerfErrorRSD     float64        `json:"perf_error_rsd"`
	FixedFreqRSD     float64        `json:"fixed_freq_perf_rsd"`
}

func snapshotStudy(s ModelStudy) studySnapshot {
	snap := studySnapshot{
		Model:            s.Model,
		PerfVariationPct: s.PerfVariationPct(),
		EnergyVarPct:     s.EnergyVariationPct(),
		PerfErrorRSD:     s.PerfErrorRSD(),
		FixedFreqRSD:     s.FixedFreqPerfRSD(),
	}
	for i, o := range s.Perf {
		u := unitSnapshot{
			Unit:       o.Unit.Name,
			Bin:        int(o.Unit.Corner.Bin),
			Leakage:    o.Unit.Corner.Leakage,
			MeanScore:  o.Result.MeanScore(),
			MeanEnergy: s.Energy[i].Result.MeanEnergy(),
		}
		for _, it := range o.Result.Iterations {
			u.PerfScores = append(u.PerfScores, int(it.Score))
		}
		snap.Units = append(snap.Units, u)
	}
	return snap
}

func TestGoldenStudyNexus5Quick(t *testing.T) {
	st, err := StudyParallel("Nexus 5", Options{Quick: true, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	testkit.GoldenJSON(t, "study_nexus5_quick", snapshotStudy(st))
}

func TestGoldenBaselineQuick(t *testing.T) {
	b, err := Baseline(Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	testkit.GoldenJSON(t, "baseline_quick", struct {
		NaiveScores   []int   `json:"naive_scores"`
		NaiveRSD      float64 `json:"naive_rsd"`
		AccubenchRSD  float64 `json:"accubench_rsd"`
		FridgeScore   float64 `json:"fridge_score"`
		HotScore      float64 `json:"hot_score"`
		FridgeGainPct float64 `json:"fridge_gain_pct"`
	}{b.Naive.Scores, b.NaiveRSD, b.AccubenchRSD, b.FridgeScore, b.HotScore, b.FridgeGainPct()})
}

func TestGoldenTableIIQuick(t *testing.T) {
	rows, _, err := TableII(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	testkit.GoldenJSON(t, "tableii_quick", rows)
}

// TestPipelineRunTwiceByteIdentical is the repeatability acceptance
// criterion in executable form: two full pipeline runs from the same seed
// must render to identical bytes, with no golden file involved — this
// catches nondeterminism (map iteration, wall-clock leaks, scheduling)
// even on platforms whose floats differ from the golden's.
func TestPipelineRunTwiceByteIdentical(t *testing.T) {
	run := func() []byte {
		// The uncached compute path: a cache hit would make the two runs
		// byte-identical by construction rather than by determinism.
		st, err := studyParallel("Nexus 5", Options{Quick: true, Seed: 42})
		if err != nil {
			t.Fatal(err)
		}
		return testkit.MarshalCanonical(t, snapshotStudy(st))
	}
	first, second := run(), run()
	if !bytes.Equal(first, second) {
		t.Fatalf("same seed, different output:\n%s", testkit.DiffLines(first, second))
	}
}
