package experiments

import (
	"testing"
	"time"
)

func TestBaselineNaiveVsAccubench(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full runs")
	}
	r, err := Baseline(opts())
	if err != nil {
		t.Fatal(err)
	}
	// The paper's motivation, quantified: the cold first naive run must
	// clearly beat the heat-soaked rest.
	if got := r.Naive.FirstVsRestPct(); got < 5 {
		t.Errorf("naive first-vs-rest = %.1f%%, want the cold-start bias (>5%%)", got)
	}
	// The first run starts near ambient; subsequent runs start hot.
	if r.Naive.StartDieTemps[0] > 30 {
		t.Errorf("first naive run started at %v, want near 26 °C", r.Naive.StartDieTemps[0])
	}
	if r.Naive.StartDieTemps[1] < 40 {
		t.Errorf("second naive run started at %v, want heat-soaked", r.Naive.StartDieTemps[1])
	}
	// ACCUBENCH must beat the naive protocol on repeatability by a wide
	// margin — this is the headline of §III.
	if r.AccubenchRSD >= r.NaiveRSD/2 {
		t.Errorf("ACCUBENCH RSD %.2f%% not well below naive RSD %.2f%%", r.AccubenchRSD, r.NaiveRSD)
	}
	// The refrigerator trick (Guo et al.: >60% on a composite benchmark;
	// a pure CPU loop still gains dramatically).
	if gain := r.FridgeGainPct(); gain < 30 {
		t.Errorf("fridge gain = %.0f%%, want a dramatic inflation (>30%%)", gain)
	}
}

func TestWarmupAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs")
	}
	rows, err := AblateWarmup(opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	none, full := rows[0], rows[2]
	if full.Warmup != 3*time.Minute {
		t.Fatalf("last row warmup = %v", full.Warmup)
	}
	// Without warmup the first iteration is visibly biased; 3 minutes
	// (the paper's choice) collapses the bias.
	if abs(none.FirstVsRestPct) < 1 {
		t.Errorf("no-warmup first-vs-rest = %.1f%%, expected a visible cold-start bias", none.FirstVsRestPct)
	}
	if abs(full.FirstVsRestPct) > abs(none.FirstVsRestPct)/2 {
		t.Errorf("3-minute warmup bias %.1f%% not well below no-warmup bias %.1f%%",
			full.FirstVsRestPct, none.FirstVsRestPct)
	}
}

func TestCooldownAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs")
	}
	rows, err := AblateCooldownTarget(opts())
	if err != nil {
		t.Fatal(err)
	}
	// Colder targets wait longer and score at least as well: compare the
	// coldest and warmest settings.
	coldest, warmest := rows[0], rows[len(rows)-1]
	if coldest.MeanCooldown <= warmest.MeanCooldown {
		t.Errorf("cooldown to %v took %v, not above cooldown to %v's %v",
			coldest.Target, coldest.MeanCooldown, warmest.Target, warmest.MeanCooldown)
	}
	if coldest.MeanScore < warmest.MeanScore {
		t.Errorf("cold start scored %.0f, below hot start's %.0f", coldest.MeanScore, warmest.MeanScore)
	}
}

func TestHysteresisAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs")
	}
	rows, err := AblateHysteresis(opts())
	if err != nil {
		t.Fatal(err)
	}
	tight, wide := rows[0], rows[len(rows)-1]
	// A tight band flaps: strictly more throttle events per iteration.
	if tight.ThrottleEvents <= wide.ThrottleEvents {
		t.Errorf("hysteresis %v°C throttles %.1f/iter, not above %v°C's %.1f",
			tight.Hysteresis, tight.ThrottleEvents, wide.Hysteresis, wide.ThrottleEvents)
	}
}

func TestSensorNoiseAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("full runs")
	}
	rows, err := AblateSensorNoise(opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	// A wildly noisy sensor (1.5 °C) must cost score: spurious hot reads
	// throttle the device early and often.
	clean, noisy := rows[0], rows[2]
	if noisy.MeanScore >= clean.MeanScore {
		t.Errorf("noisy-sensor score %.0f not below clean-sensor score %.0f",
			noisy.MeanScore, clean.MeanScore)
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

func TestWhatIfSpeedBinning(t *testing.T) {
	if testing.Short() {
		t.Skip("population runs")
	}
	r, err := WhatIfSpeedBinning(opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(r.SpeedBurst) != len(r.SpeedGrades) || len(r.SpeedSustained) != len(r.SpeedGrades) {
		t.Fatalf("shape: %d burst, %d sustained, %d grades",
			len(r.SpeedBurst), len(r.SpeedSustained), len(r.SpeedGrades))
	}
	// Voltage binning hides a double-digit sustained spread (the paper's
	// point, on a wide population).
	if r.VoltageSpreadPct() < 10 {
		t.Errorf("voltage-binned spread = %.1f%%, want double digits", r.VoltageSpreadPct())
	}
	gms := r.GradeMeans()
	if len(gms) < 2 {
		t.Fatalf("only %d distinct SKUs — population should split", len(gms))
	}
	// Burst scores follow the advertised ladder: each higher SKU bursts
	// faster than the one below.
	for i := 1; i < len(gms); i++ {
		if gms[i].Burst <= gms[i-1].Burst*1.02 {
			t.Errorf("SKU %v burst %.0f not above SKU %v's %.0f — advertised grades must rank bursts",
				gms[i].Grade, gms[i].Burst, gms[i-1].Grade, gms[i-1].Burst)
		}
	}
	// The sustained regime compresses or inverts the halo SKU's advantage:
	// throttling must cost the top grade a visible share of its burst score,
	// while the bottom grade sustains what it advertises.
	top, bottom := gms[len(gms)-1], gms[0]
	if top.Sustained >= top.Burst*0.95 {
		t.Errorf("top SKU sustains %.0f of a %.0f burst — sustained load should throttle it",
			top.Sustained, top.Burst)
	}
	if bottom.Sustained < bottom.Burst*0.9 {
		t.Errorf("bottom SKU sustains only %.0f of a %.0f burst — it should not throttle",
			bottom.Sustained, bottom.Burst)
	}
}

func TestWorkloadShapeAblation(t *testing.T) {
	if testing.Short() {
		t.Skip("fleet sweeps")
	}
	rows, err := AblateWorkloadShape(opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d", len(rows))
	}
	cpu, mem, light := rows[0], rows[2], rows[3]
	if cpu.Profile.Name != "pi-cpu-bound" || mem.Profile.Name != "memory-bound" || light.Profile.Name != "light-ui" {
		t.Fatalf("profile order: %s, %s, %s", cpu.Profile.Name, mem.Profile.Name, light.Profile.Name)
	}
	// Lower-activity shapes draw less power…
	if !(light.MeanPowerW < mem.MeanPowerW && mem.MeanPowerW < cpu.MeanPowerW) {
		t.Errorf("power not ordered light < mem < cpu: %.2f, %.2f, %.2f",
			light.MeanPowerW, mem.MeanPowerW, cpu.MeanPowerW)
	}
	// …but variation only disappears once the die has real thermal
	// headroom: the throttling shapes (cpu, memory) both expose a
	// double-digit spread, while light interactive use hides the lottery —
	// why users don't notice and benchmarks must saturate the CPU.
	if cpu.PerfVariationPct < 8 || mem.PerfVariationPct < 8 {
		t.Errorf("throttling shapes should expose variation: cpu %.1f%%, mem %.1f%%",
			cpu.PerfVariationPct, mem.PerfVariationPct)
	}
	if light.PerfVariationPct >= cpu.PerfVariationPct/2 {
		t.Errorf("light-UI variation %.1f%% not well below CPU-bound %.1f%%",
			light.PerfVariationPct, cpu.PerfVariationPct)
	}
}

func TestBestWorstSignificance(t *testing.T) {
	if testing.Short() {
		t.Skip("full study")
	}
	// The SD-800's 13% spread must be statistically solid; the SD-805's 2%
	// may or may not clear the bar (the paper reports it as negligible), so
	// only the positive case is asserted.
	st, err := Study("Nexus 5", opts())
	if err != nil {
		t.Fatal(err)
	}
	if !st.BestWorstSignificant() {
		t.Error("Nexus 5 best-vs-worst not significant — the paper's variations are real")
	}
}

func TestThermalMap(t *testing.T) {
	r, err := ThermalMap(Options{Quick: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.FullLoadPeak <= r.FullLoadMean {
		t.Errorf("peak %v not above mean %v", r.FullLoadPeak, r.FullLoadMean)
	}
	if r.ShedPeak >= r.FullLoadPeak {
		t.Errorf("core shutdown did not lower the peak: %v vs %v", r.ShedPeak, r.FullLoadPeak)
	}
	if len(r.FullLoadMap) == 0 || len(r.ShedMap) == 0 {
		t.Error("empty maps")
	}
	// Shed map is spatially asymmetric (one dead quadrant); full map is
	// left-right symmetric. Compare the two maps: they must differ.
	if r.FullLoadMap == r.ShedMap {
		t.Error("shedding a core did not change the map")
	}
}

func TestStudyParallelMatchesSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("two studies")
	}
	// Compare the uncached runners directly — the public Study and
	// StudyParallel share one cache, so going through them would compare
	// a study with its own cached copy.
	serial, err := studySerial("Nexus 6P", Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := studyParallel("Nexus 6P", Options{Quick: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(serial.Perf) != len(parallel.Perf) {
		t.Fatalf("perf lengths: %d vs %d", len(serial.Perf), len(parallel.Perf))
	}
	for i := range serial.Perf {
		if serial.Perf[i].Result.MeanScore() != parallel.Perf[i].Result.MeanScore() {
			t.Errorf("unit %d scores differ: serial %.1f, parallel %.1f",
				i, serial.Perf[i].Result.MeanScore(), parallel.Perf[i].Result.MeanScore())
		}
		if serial.Energy[i].Result.MeanEnergy() != parallel.Energy[i].Result.MeanEnergy() {
			t.Errorf("unit %d energies differ", i)
		}
	}
}
