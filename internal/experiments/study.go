package experiments

import (
	"fmt"
	"sync"

	"accubench/internal/accubench"
	"accubench/internal/fleet"
	"accubench/internal/stats"
)

// ModelStudy is the per-SoC experiment of §IV-A: every unit of one handset
// model run through ACCUBENCH in both modes. It feeds Figures 6–9 and
// Table II.
type ModelStudy struct {
	// Model is the handset name.
	Model string
	// Perf holds the UNCONSTRAINED outcomes (performance experiment).
	Perf []DeviceOutcome
	// Energy holds the FIXED-FREQUENCY outcomes (energy experiment).
	Energy []DeviceOutcome
}

// PerfScores returns each unit's mean UNCONSTRAINED score, in fleet order.
func (s ModelStudy) PerfScores() []float64 {
	out := make([]float64, len(s.Perf))
	for i, o := range s.Perf {
		out[i] = o.Result.MeanScore()
	}
	return out
}

// EnergiesJ returns each unit's mean FIXED-FREQUENCY energy in joules.
func (s ModelStudy) EnergiesJ() []float64 {
	out := make([]float64, len(s.Energy))
	for i, o := range s.Energy {
		out[i] = o.Result.MeanEnergy()
	}
	return out
}

// PerfVariationPct is the paper's performance-variation number: the relative
// spread of mean scores across units, in percent.
func (s ModelStudy) PerfVariationPct() float64 { return stats.Spread(s.PerfScores()) }

// EnergyVariationPct is the paper's energy-variation number.
func (s ModelStudy) EnergyVariationPct() float64 { return stats.Spread(s.EnergiesJ()) }

// PerfErrorRSD returns the mean per-unit iteration RSD of the performance
// experiment — the paper's error bars (e.g. 1.3% on the SD-800, 2.63% on
// the SD-810).
func (s ModelStudy) PerfErrorRSD() float64 {
	var sum float64
	var n int
	for _, o := range s.Perf {
		if sm, err := o.Result.PerfSummary(); err == nil {
			sum += sm.RSD
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// FixedFreqPerfRSD returns the mean per-unit iteration RSD of the
// FIXED-FREQUENCY *performance* — the paper's setup-reliability check
// ("running the workload for a fixed duration gave us the additional
// advantage of being able to evaluate the reliability of our experimental
// setup"; it reports 1.3% for the Nexus 5).
func (s ModelStudy) FixedFreqPerfRSD() float64 {
	var sum float64
	var n int
	for _, o := range s.Energy {
		if sm, err := o.Result.PerfSummary(); err == nil {
			sum += sm.RSD
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Study returns both ACCUBENCH modes run over every unit of one model.
// Results are memoized per normalized Options (see cache.go): the first
// call computes the study via the parallel runner, repeats are served
// from the cache. Studies are deterministic pure functions of their
// options, so the cached copy is the computed one.
func Study(modelName string, o Options) (ModelStudy, error) {
	return sharedStudyCache.get(modelName, o)
}

// StudyParallel is an alias of Study retained for its historical name;
// both consult the shared cache and compute, on a miss, with one
// goroutine per (unit, mode) bench.
func StudyParallel(modelName string, o Options) (ModelStudy, error) {
	return sharedStudyCache.get(modelName, o)
}

// studySerial is the uncached serial reference runner. The cache always
// computes through studyParallel; this exists as the arbiter the
// parallel-equivalence test compares against.
func studySerial(modelName string, o Options) (ModelStudy, error) {
	units, err := fleet.UnitsFor(modelName)
	if err != nil {
		return ModelStudy{}, err
	}
	s := ModelStudy{Model: modelName}
	for i, u := range units {
		for _, mode := range []accubench.Mode{accubench.Unconstrained, accubench.FixedFrequency} {
			b, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + int64(i), Ambient: o.Ambient}, 0)
			if err != nil {
				return ModelStudy{}, fmt.Errorf("experiments: %s: %w", u.Name, err)
			}
			res, err := b.runAccubench(o.benchConfig(mode))
			if err != nil {
				return ModelStudy{}, fmt.Errorf("experiments: %s %v: %w", u.Name, mode, err)
			}
			out := DeviceOutcome{Unit: u, Result: res}
			if mode == accubench.Unconstrained {
				s.Perf = append(s.Perf, out)
			} else {
				s.Energy = append(s.Energy, out)
			}
		}
	}
	return s, nil
}

// SummaryRow is one line of the paper's Table II.
type SummaryRow struct {
	Chipset   string
	Model     string
	Devices   int
	PerfPct   float64
	EnergyPct float64
}

// TableII runs the full study over every model and returns the summary rows
// in the paper's order.
func TableII(o Options) ([]SummaryRow, []ModelStudy, error) {
	var rows []SummaryRow
	var studies []ModelStudy
	for _, name := range fleet.ModelOrder() {
		st, err := StudyParallel(name, o)
		if err != nil {
			return nil, nil, err
		}
		model, err := fleet.UnitsFor(name)
		if err != nil {
			return nil, nil, err
		}
		socName := ""
		if m, err2 := modelSoC(name); err2 == nil {
			socName = m
		}
		rows = append(rows, SummaryRow{
			Chipset:   socName,
			Model:     name,
			Devices:   len(model),
			PerfPct:   st.PerfVariationPct(),
			EnergyPct: st.EnergyVariationPct(),
		})
		studies = append(studies, st)
	}
	return rows, studies, nil
}

// Repeatability quantifies the methodology's headline reliability claim:
// "an average error of 1.1% RSD over roughly 300 iterations of our
// workloads". It aggregates the per-unit, per-mode iteration RSDs across
// the given studies and returns the average RSD and the total iteration
// count.
func Repeatability(studies []ModelStudy) (avgRSD float64, iterations int) {
	var sum float64
	var n int
	for _, st := range studies {
		for _, o := range append(append([]DeviceOutcome{}, st.Perf...), st.Energy...) {
			if sm, err := o.Result.PerfSummary(); err == nil {
				sum += sm.RSD
				n++
				iterations += sm.N
			}
		}
	}
	if n == 0 {
		return 0, 0
	}
	return sum / float64(n), iterations
}

func modelSoC(modelName string) (string, error) {
	m, err := modelByName(modelName)
	if err != nil {
		return "", err
	}
	return m, nil
}

// modelByName maps model name → chipset name without importing soc here
// beyond what the harness already does.
func modelByName(name string) (string, error) {
	switch name {
	case "Nexus 5":
		return "SD-800", nil
	case "Nexus 6":
		return "SD-805", nil
	case "Nexus 6P":
		return "SD-810", nil
	case "LG G5":
		return "SD-820", nil
	case "Google Pixel":
		return "SD-821", nil
	}
	return "", fmt.Errorf("experiments: unknown model %q", name)
}

// BestWorstSignificant reports whether the best and worst units' score
// samples differ significantly (Welch, ~5%) — the statistical backing for
// the paper's "we are confident that these are real variations" (§IV-A3).
func (s ModelStudy) BestWorstSignificant() bool {
	if len(s.Perf) < 2 {
		return false
	}
	best, worst := s.Perf[0].Result.Scores(), s.Perf[0].Result.Scores()
	bestMean, worstMean := stats.Mean(best), stats.Mean(worst)
	for _, o := range s.Perf[1:] {
		scores := o.Result.Scores()
		m := stats.Mean(scores)
		if m > bestMean {
			best, bestMean = scores, m
		}
		if m < worstMean {
			worst, worstMean = scores, m
		}
	}
	if len(best) < 2 || len(worst) < 2 || bestMean == worstMean {
		return false
	}
	return stats.SignificantlyDifferent(best, worst)
}

// studyParallel is the uncached compute path behind the study cache: one
// goroutine per (unit, mode) bench. Every bench owns its device, chamber
// and monitor and is seeded independently, so the results are
// bit-identical to the serial runner — asserted by tests — while the full
// fleet uses all cores.
func studyParallel(modelName string, o Options) (ModelStudy, error) {
	units, err := fleet.UnitsFor(modelName)
	if err != nil {
		return ModelStudy{}, err
	}
	type slot struct {
		res accubench.Result
		err error
	}
	modes := []accubench.Mode{accubench.Unconstrained, accubench.FixedFrequency}
	results := make([][]slot, len(units))
	var wg sync.WaitGroup
	for i, u := range units {
		results[i] = make([]slot, len(modes))
		for mi, mode := range modes {
			wg.Add(1)
			go func(i, mi int, u fleet.Unit, mode accubench.Mode) {
				defer wg.Done()
				b, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + int64(i), Ambient: o.Ambient}, 0)
				if err != nil {
					results[i][mi] = slot{err: err}
					return
				}
				res, err := b.runAccubench(o.benchConfig(mode))
				results[i][mi] = slot{res: res, err: err}
			}(i, mi, u, mode)
		}
	}
	wg.Wait()
	s := ModelStudy{Model: modelName}
	for i, u := range units {
		for mi, mode := range modes {
			sl := results[i][mi]
			if sl.err != nil {
				return ModelStudy{}, fmt.Errorf("experiments: %s %v: %w", u.Name, mode, sl.err)
			}
			out := DeviceOutcome{Unit: u, Result: sl.res}
			if mode == accubench.Unconstrained {
				s.Perf = append(s.Perf, out)
			} else {
				s.Energy = append(s.Energy, out)
			}
		}
	}
	return s, nil
}
