package experiments

import (
	"fmt"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/fleet"
	"accubench/internal/silicon"
	"accubench/internal/stats"
	"accubench/internal/trace"
	"accubench/internal/units"
)

// TableIRow is one row of the paper's Table I.
type TableIRow struct {
	Bin         silicon.Bin
	Millivolts  []float64
	Frequencies []units.MegaHertz
}

// TableI returns the Nexus 5 voltage-frequency table exactly as the paper
// prints it.
func TableI() []TableIRow {
	tbl := silicon.Nexus5Table()
	rows := make([]TableIRow, tbl.Bins())
	for b := 0; b < tbl.Bins(); b++ {
		row, err := tbl.Row(silicon.Bin(b))
		if err != nil {
			panic(err) // bins enumerated from the table itself
		}
		r := TableIRow{Bin: silicon.Bin(b), Frequencies: tbl.Frequencies()}
		for _, p := range row {
			r.Millivolts = append(r.Millivolts, p.Voltage.Millivolts())
		}
		rows[b] = r
	}
	return rows
}

// Fig1Point is one Nexus 5 bin's fixed-work outcome.
type Fig1Point struct {
	Unit       fleet.Unit
	Energy     units.Joules
	Took       time.Duration
	PeakDie    units.Celsius
	MinOnline  int
	NormEnergy float64 // vs bin-0
	NormTime   float64 // vs bin-0
}

// Fig1 reproduces the motivation figure: a *fixed amount of work* on Nexus 5
// bins 0–4 (including the bin-4 chip that later failed), reporting energy,
// completion time and the 80 °C core-shutdown behaviour. The paper shows
// bin-4 consuming ≈20% more energy and taking ≈18% longer than bin-0.
func Fig1(o Options) ([]Fig1Point, error) {
	chips := append(fleet.Nexus5Units(), fleet.Nexus5Bin4())
	target := 450 // iterations of fixed work
	if o.Quick {
		target = 120
	}
	// The paper runs each workload at least 5 times; fixed-work outcomes
	// near the 80 °C core-shed trip are noise-sensitive, so single runs can
	// invert neighbouring bins.
	repeats := 3
	if o.Quick {
		repeats = 1
	}
	var out []Fig1Point
	for i, u := range chips {
		var energySum units.Joules
		var tookSum time.Duration
		p := Fig1Point{Unit: u, MinOnline: 4}
		for rep := 0; rep < repeats; rep++ {
			b, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + int64(10*i+rep), Ambient: o.Ambient}, 0)
			if err != nil {
				return nil, err
			}
			cfg := o.benchConfig(accubench.Unconstrained)
			r := &accubench.Runner{Device: b.dev, Monitor: b.mon, Box: b.box, Config: cfg}
			fw, err := r.RunFixedWork(target)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig1 %s: %w", u.Name, err)
			}
			energySum += fw.Energy.Energy
			tookSum += fw.Took
			if fw.PeakDieTemp > p.PeakDie {
				p.PeakDie = fw.PeakDieTemp
			}
			if fw.MinOnlineCores < p.MinOnline {
				p.MinOnline = fw.MinOnlineCores
			}
		}
		p.Energy = energySum / units.Joules(repeats)
		p.Took = tookSum / time.Duration(repeats)
		out = append(out, p)
	}
	for i := range out {
		out[i].NormEnergy = float64(out[i].Energy) / float64(out[0].Energy)
		out[i].NormTime = out[i].Took.Seconds() / out[0].Took.Seconds()
	}
	return out, nil
}

// Fig2Point is one (device, ambient) energy measurement.
type Fig2Point struct {
	Unit       fleet.Unit
	Ambient    units.Celsius
	Energy     units.Joules
	NormEnergy float64 // vs the coldest ambient of the same device
}

// Fig2 reproduces the ambient-temperature energy scaling: the same work
// (a fixed duration at a pinned frequency) on two devices across ambient
// setpoints; the paper reports 25–30% more energy at high ambient. The
// pinned frequency isolates the leakage↔temperature feedback — under the
// performance governor, extra throttling at hot ambients would *lower*
// dynamic energy (lower OPP voltages) and mask the effect being measured.
func Fig2(o Options) ([]Fig2Point, error) {
	ambients := []units.Celsius{15, 20, 25, 30, 35, 40}
	if o.Quick {
		ambients = []units.Celsius{15, 25, 40}
	}
	devices := []fleet.Unit{fleet.Nexus5Units()[1], fleet.Nexus5Units()[3]}
	var out []Fig2Point
	for di, u := range devices {
		var coldest units.Joules
		for ai, amb := range ambients {
			b, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + int64(100*di+ai), Ambient: amb}, 0)
			if err != nil {
				return nil, err
			}
			cfg := o.benchConfig(accubench.FixedFrequency)
			cfg.CooldownTarget = amb + 10
			cfg.PinFreq = 729 // low enough to stay throttle-free even at 40 °C ambient
			cfg.Iterations = 1
			if !o.Quick {
				cfg.Iterations = 2
			}
			r := &accubench.Runner{Device: b.dev, Monitor: b.mon, Box: b.box, Config: cfg}
			res, err := r.Run()
			if err != nil {
				return nil, fmt.Errorf("experiments: fig2 %s@%v: %w", u.Name, amb, err)
			}
			energy := units.Joules(res.MeanEnergy())
			if ai == 0 {
				coldest = energy
			}
			out = append(out, Fig2Point{
				Unit:       u,
				Ambient:    amb,
				Energy:     energy,
				NormEnergy: float64(energy) / float64(coldest),
			})
		}
	}
	return out, nil
}

// Fig3Result characterizes THERMABOX regulation quality.
type Fig3Result struct {
	Target        units.Celsius
	StabilizeTook time.Duration
	MinAir        units.Celsius
	MaxAir        units.Celsius
	MeanAir       units.Celsius
	RSD           float64
	// AirTrace is a downsampled regulation trace for plotting.
	AirTrace []trace.Sample
}

// Fig3 runs the chamber with a duty-cycled phone-like load for 30 minutes
// after stabilization and reports how tightly it held 26 ± 0.5 °C.
func Fig3(o Options) (Fig3Result, error) {
	boxCfg := defaultBoxConfig(o)
	box, err := newBox(boxCfg)
	if err != nil {
		return Fig3Result{}, err
	}
	took, ok := box.Stabilize(30*time.Second, time.Hour, time.Second)
	if !ok {
		return Fig3Result{}, fmt.Errorf("experiments: fig3 chamber failed to stabilize")
	}
	horizon := 30 * time.Minute
	if o.Quick {
		horizon = 10 * time.Minute
	}
	var vals []float64
	for t := time.Duration(0); t < horizon; t += time.Second {
		var load units.Watts
		if (int(t.Seconds())/180)%2 == 0 {
			load = 8 // workload burst
		} else {
			load = 0.3 // cooldown idle
		}
		box.Step(time.Second, load)
		vals = append(vals, float64(box.Air()))
	}
	airSeries, _ := box.Trace().Lookup("air")
	return Fig3Result{
		Target:        box.Target(),
		StabilizeTook: took,
		MinAir:        units.Celsius(stats.Min(vals)),
		MaxAir:        units.Celsius(stats.Max(vals)),
		MeanAir:       units.Celsius(stats.Mean(vals)),
		RSD:           stats.RSD(vals),
		AirTrace:      airSeries.Downsample(120),
	}, nil
}

// PhaseTrace is the output of the Figs. 4–5 trace experiments: the die
// temperature and big-cluster frequency over one ACCUBENCH iteration, with
// phase boundaries.
type PhaseTrace struct {
	Unit    fleet.Unit
	Mode    accubench.Mode
	Die     []trace.Sample
	Freq    []trace.Sample
	Cores   []trace.Sample
	Phases  []accubench.Phase
	PeakDie units.Celsius
}

// phaseTrace runs one iteration on a typical Nexus 5 and extracts the trace.
func phaseTrace(o Options, mode accubench.Mode) (PhaseTrace, error) {
	u := fleet.Nexus5Units()[1] // a mid-fleet chip
	b, err := newBench(u, o, 0)
	if err != nil {
		return PhaseTrace{}, err
	}
	cfg := o.benchConfig(mode)
	cfg.Iterations = 1
	res, err := b.runAccubench(cfg)
	if err != nil {
		return PhaseTrace{}, err
	}
	it := res.Iterations[0]
	die, _ := b.dev.Trace().Lookup("die")
	freq, _ := b.dev.Trace().Lookup("freq.big")
	cores, _ := b.dev.Trace().Lookup("cores.online")
	return PhaseTrace{
		Unit:    u,
		Mode:    mode,
		Die:     die.Downsample(240),
		Freq:    freq.Downsample(240),
		Cores:   cores.Downsample(240),
		Phases:  it.Phases,
		PeakDie: it.PeakDieTemp,
	}, nil
}

// Fig4 is the UNCONSTRAINED stages trace (warmup heats, cooldown decays,
// workload throttles).
func Fig4(o Options) (PhaseTrace, error) { return phaseTrace(o, accubench.Unconstrained) }

// Fig5 is the FIXED-FREQUENCY trace (the device never reaches throttling
// temperatures).
func Fig5(o Options) (PhaseTrace, error) { return phaseTrace(o, accubench.FixedFrequency) }
