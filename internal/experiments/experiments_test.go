package experiments

// These tests assert the reproduction's headline results against the bands
// the paper reports. They run the experiments at full paper scale (the
// simulation executes a five-minute phase in milliseconds), and assert
// *bands*, not point values, so the electro-thermal dynamics stay
// load-bearing: if someone breaks the leakage feedback or the throttling
// policies, these tests — not the calibration constants — catch it.

import (
	"testing"

	"accubench/internal/fleet"
)

func opts() Options { return Options{Seed: 1} }

func TestTableIMatchesPaperExactly(t *testing.T) {
	rows := TableI()
	if len(rows) != 7 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Corners of the printed table.
	if rows[0].Millivolts[4] != 1100 {
		t.Errorf("bin-0 @2265MHz = %v, want 1100", rows[0].Millivolts[4])
	}
	if rows[6].Millivolts[0] != 750 {
		t.Errorf("bin-6 @300MHz = %v, want 750", rows[6].Millivolts[0])
	}
}

func TestTableIIBands(t *testing.T) {
	if testing.Short() {
		t.Skip("full-fleet study")
	}
	rows, studies, err := TableII(opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 || len(studies) != 5 {
		t.Fatalf("rows=%d studies=%d", len(rows), len(studies))
	}
	// Paper Table II with generous reproduction bands (±~40% of the value,
	// floors for the negligible-variation SD-805).
	bands := []struct {
		chipset            string
		perfLo, perfHi     float64
		energyLo, energyHi float64
	}{
		{"SD-800", 10, 18, 15, 23},
		{"SD-805", 0, 4, 0, 4},
		{"SD-810", 7, 13, 9, 15},
		{"SD-820", 2.5, 7, 7, 13},
		{"SD-821", 3, 8, 6, 12},
	}
	for i, b := range bands {
		r := rows[i]
		if r.Chipset != b.chipset {
			t.Fatalf("row %d chipset = %s, want %s", i, r.Chipset, b.chipset)
		}
		if r.PerfPct < b.perfLo || r.PerfPct > b.perfHi {
			t.Errorf("%s perf variation %.1f%% outside [%v, %v]", r.Chipset, r.PerfPct, b.perfLo, b.perfHi)
		}
		if r.EnergyPct < b.energyLo || r.EnergyPct > b.energyHi {
			t.Errorf("%s energy variation %.1f%% outside [%v, %v]", r.Chipset, r.EnergyPct, b.energyLo, b.energyHi)
		}
	}

	// The paper's repeatability claim: ~1.1% average RSD. A clean simulated
	// lab does a little better; it must stay well under the paper's number
	// and above exactly-zero (a zero means the noise model fell out).
	avg, iters := Repeatability(studies)
	if avg <= 0 || avg > 2.0 {
		t.Errorf("repeatability RSD = %.2f%%, want (0, 2.0]", avg)
	}
	if iters < 100 {
		t.Errorf("only %d iterations accumulated", iters)
	}

	// Fig 13 from the same studies: efficiency rises across generations
	// overall, except the SD-805 dips below the SD-800.
	effs, err := Fig13(studies)
	if err != nil {
		t.Fatal(err)
	}
	if effs[1].IterPerWh >= effs[0].IterPerWh {
		t.Errorf("SD-805 efficiency %.0f not below SD-800's %.0f (the paper's dip)",
			effs[1].IterPerWh, effs[0].IterPerWh)
	}
	if !(effs[2].IterPerWh > effs[0].IterPerWh) {
		t.Errorf("SD-810 efficiency %.0f not above SD-800's %.0f", effs[2].IterPerWh, effs[0].IterPerWh)
	}
	if !(effs[4].IterPerWh > effs[2].IterPerWh) {
		t.Errorf("SD-821 efficiency %.0f not above SD-810's %.0f", effs[4].IterPerWh, effs[2].IterPerWh)
	}
}

func TestFig1FixedWorkShape(t *testing.T) {
	if testing.Short() {
		t.Skip("fixed-work sweep")
	}
	pts, err := Fig1(opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points = %d, want bins 0–4", len(pts))
	}
	last := pts[len(pts)-1]
	// Paper: bin-4 ≈ +20% energy and ≈ +18% time vs bin-0.
	if last.NormEnergy < 1.12 || last.NormEnergy > 1.40 {
		t.Errorf("bin-4 energy = %.2f× bin-0, want ≈1.2×", last.NormEnergy)
	}
	if last.NormTime < 1.10 || last.NormTime > 1.40 {
		t.Errorf("bin-4 time = %.2f× bin-0, want ≈1.18×", last.NormTime)
	}
	// Monotone non-decreasing across bins (within a small tolerance).
	for i := 1; i < len(pts); i++ {
		if pts[i].NormEnergy < pts[i-1].NormEnergy-0.03 {
			t.Errorf("energy not monotone at %s: %.2f after %.2f",
				pts[i].Unit.Name, pts[i].NormEnergy, pts[i-1].NormEnergy)
		}
	}
	// The 80 °C core shutdown must appear somewhere in the leaky half.
	shed := false
	for _, p := range pts[2:] {
		if p.MinOnline < 4 {
			shed = true
		}
	}
	if !shed {
		t.Error("no leaky bin ever shed a core (paper Fig. 1 shows the 80°C shutdown)")
	}
}

func TestFig2AmbientScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("ambient sweep")
	}
	pts, err := Fig2(opts())
	if err != nil {
		t.Fatal(err)
	}
	// Two devices × six ambients.
	if len(pts) != 12 {
		t.Fatalf("points = %d", len(pts))
	}
	// Energy grows monotonically with ambient for each device, and the
	// hottest point costs 15–45% more than the coldest (paper: 25–30%).
	for d := 0; d < 2; d++ {
		dev := pts[d*6 : d*6+6]
		for i := 1; i < len(dev); i++ {
			if dev[i].Energy <= dev[i-1].Energy {
				t.Errorf("%s: energy not increasing at %v", dev[i].Unit.Name, dev[i].Ambient)
			}
		}
		rise := dev[5].NormEnergy
		if rise < 1.15 || rise > 1.45 {
			t.Errorf("%s: hot/cold energy ratio = %.2f, want ≈1.25–1.30", dev[0].Unit.Name, rise)
		}
	}
}

func TestFig3ChamberHoldsBand(t *testing.T) {
	r, err := Fig3(opts())
	if err != nil {
		t.Fatal(err)
	}
	if r.MinAir < 25.5 || r.MaxAir > 26.5 {
		t.Errorf("air range [%v, %v] outside the paper's 26±0.5", r.MinAir, r.MaxAir)
	}
	if len(r.AirTrace) == 0 {
		t.Error("no regulation trace")
	}
}

func TestFig4UnconstrainedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full iteration trace")
	}
	pt, err := Fig4(opts())
	if err != nil {
		t.Fatal(err)
	}
	if len(pt.Phases) != 3 {
		t.Fatalf("phases = %d", len(pt.Phases))
	}
	// The workload phase must show throttling: peak die near the trip.
	if pt.PeakDie < 70 {
		t.Errorf("peak die %v — UNCONSTRAINED should run the die to the trip", pt.PeakDie)
	}
	if len(pt.Die) == 0 || len(pt.Freq) == 0 {
		t.Error("empty traces")
	}
}

func TestFig5FixedFrequencyTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("full iteration trace")
	}
	pt, err := Fig5(opts())
	if err != nil {
		t.Fatal(err)
	}
	// "Due to a low frequency, the device never heats up to throttling
	// levels" during the workload phase. (The warmup phase runs
	// unconstrained by design, so assert over the workload window only.)
	work := pt.Phases[2]
	for _, s := range pt.Die {
		if s.At >= work.Start && s.At < work.End && s.Value >= 79 {
			t.Errorf("die hit %v at %v during FIXED-FREQUENCY workload", s.Value, s.At)
		}
	}
}

func TestFig10VoltageThrottleShape(t *testing.T) {
	if testing.Short() {
		t.Skip("three full runs")
	}
	rows, err := Fig10(opts())
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Fig10Row{}
	for _, r := range rows {
		byName[r.Supply] = r
	}
	lo := byName["monsoon@3.85V"]
	hi := byName["monsoon@4.4V"]
	bat := byName["battery"]
	// Paper: at nominal voltage the G5 performs ≈20% worse; at 4.4 V it is
	// on par with the battery.
	if lo.Normalized > 0.92 {
		t.Errorf("3.85V run at %.2f× battery — should be clearly throttled", lo.Normalized)
	}
	if lo.Normalized < 0.70 {
		t.Errorf("3.85V run at %.2f× battery — throttle too deep", lo.Normalized)
	}
	if hi.Normalized < 0.95 || hi.Normalized > 1.10 {
		t.Errorf("4.4V run at %.2f× battery — should be on par", hi.Normalized)
	}
	if bat.MeanScore <= 0 {
		t.Error("battery run produced no score")
	}
}

func TestFig11PixelGap(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution runs")
	}
	st, err := Fig11(opts())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: ≈7% performance gap matched by the mean-frequency gap.
	if st.ScoreGapPct < 3 || st.ScoreGapPct > 11 {
		t.Errorf("Pixel score gap = %.1f%%, want ≈7%%", st.ScoreGapPct)
	}
	if diff := st.MeanFreqGapPct - st.ScoreGapPct; diff < -3 || diff > 3 {
		t.Errorf("mean-frequency gap %.1f%% does not track score gap %.1f%%",
			st.MeanFreqGapPct, st.ScoreGapPct)
	}
}

func TestFig12Nexus5Gap(t *testing.T) {
	if testing.Short() {
		t.Skip("distribution runs")
	}
	st, err := Fig12(opts())
	if err != nil {
		t.Fatal(err)
	}
	// Paper: bin-1 outperforms bin-3 by 11%, mean frequency also 11% higher.
	if st.ScoreGapPct < 6 || st.ScoreGapPct > 16 {
		t.Errorf("Nexus 5 score gap = %.1f%%, want ≈11%%", st.ScoreGapPct)
	}
	if diff := st.MeanFreqGapPct - st.ScoreGapPct; diff < -3 || diff > 3 {
		t.Errorf("mean-frequency gap %.1f%% does not track score gap %.1f%%",
			st.MeanFreqGapPct, st.ScoreGapPct)
	}
	// Distributions must actually contain mass (they are the figure).
	var mass float64
	for _, b := range st.FreqHist[0] {
		mass += b.Frac
	}
	if mass < 0.9 {
		t.Errorf("frequency histogram holds only %.2f of the mass", mass)
	}
}

func TestStudyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two studies")
	}
	// Call the uncached compute path directly: through the public Study
	// the second call would be a cache hit and prove nothing.
	a, err := studySerial("Nexus 6", Options{Quick: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	b, err := studySerial("Nexus 6", Options{Quick: true, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Perf {
		if a.Perf[i].Result.MeanScore() != b.Perf[i].Result.MeanScore() {
			t.Errorf("unit %d scores differ across identical runs", i)
		}
	}
}

func TestStudyUnknownModel(t *testing.T) {
	if _, err := Study("iPhone X", opts()); err == nil {
		t.Error("unknown model accepted")
	}
}

func TestQuickModeStillShowsTheEffect(t *testing.T) {
	// The -quick smoke mode must preserve the headline ordering even with
	// shortened phases: the leakiest Nexus 5 never beats bin-0.
	st, err := Study("Nexus 5", Options{Quick: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	scores := st.PerfScores()
	if scores[3] >= scores[0] {
		t.Errorf("quick mode: bin-3 score %.0f not below bin-0 %.0f", scores[3], scores[0])
	}
	energies := st.EnergiesJ()
	if energies[3] <= energies[0] {
		t.Errorf("quick mode: bin-3 energy %.0f not above bin-0 %.0f", energies[3], energies[0])
	}
}

func TestPerUnitOrderingMatchesCorners(t *testing.T) {
	if testing.Short() {
		t.Skip("full study")
	}
	// Within every model, scores must be non-increasing and energies
	// non-decreasing in leakage order (the fleets are declared in leakage
	// order). Allow a 1% slack for noise between near-identical corners.
	for _, model := range fleet.ModelOrder() {
		st, err := Study(model, opts())
		if err != nil {
			t.Fatal(err)
		}
		scores := st.PerfScores()
		for i := 1; i < len(scores); i++ {
			if scores[i] > scores[i-1]*1.01 {
				t.Errorf("%s: unit %d outscores the less-leaky unit %d (%.0f vs %.0f)",
					model, i, i-1, scores[i], scores[i-1])
			}
		}
		energies := st.EnergiesJ()
		for i := 1; i < len(energies); i++ {
			if energies[i] < energies[i-1]*0.99 {
				t.Errorf("%s: unit %d uses less energy than the less-leaky unit %d (%.0f vs %.0f)",
					model, i, i-1, energies[i], energies[i-1])
			}
		}
	}
}
