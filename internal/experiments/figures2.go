package experiments

import (
	"fmt"

	"accubench/internal/accubench"
	"accubench/internal/battery"
	"accubench/internal/fleet"
	"accubench/internal/soc"
	"accubench/internal/stats"
	"accubench/internal/units"
)

// Fig10Row is one supply configuration's outcome on the LG G5.
type Fig10Row struct {
	// Supply names the configuration: "monsoon@3.85V", "monsoon@4.4V",
	// "battery".
	Supply string
	// MeanScore is the UNCONSTRAINED performance.
	MeanScore float64
	// Normalized is MeanScore relative to the battery run.
	Normalized float64
}

// Fig10 reproduces the LG G5 anomaly: the same chip benchmarked from the
// Monsoon at the battery's nominal 3.85 V (throttled ≈20%), from the
// Monsoon at the battery's 4.4 V maximum, and from the actual battery —
// the last two on par.
func Fig10(o Options) ([]Fig10Row, error) {
	u := fleet.LGG5Units()[2] // a mid-fleet chip
	model, err := soc.ModelByName(u.ModelName)
	if err != nil {
		return nil, err
	}
	cfg := o.benchConfig(accubench.Unconstrained)

	type supplyCase struct {
		name    string
		monsoon units.Volts // 0 = power from battery
	}
	cases := []supplyCase{
		{name: "battery", monsoon: 0},
		{name: "monsoon@3.85V", monsoon: model.Battery.Nominal},
		{name: "monsoon@4.4V", monsoon: model.Battery.Maximum},
	}
	rows := make([]Fig10Row, 0, len(cases))
	var batteryScore float64
	for i, c := range cases {
		var score float64
		if c.monsoon == 0 {
			// Power from the stock battery instead of the monitor, topped up
			// between iterations the way a lab tops a pack off between runs
			// (a full-tilt ACCUBENCH run otherwise drains the 2800 mAh pack
			// far enough to sag below the throttle threshold — exactly the
			// ageing-battery effect the paper's discussion warns about). The
			// Monsoon still *measures*; only the device's supply differs.
			var scores []float64
			one := cfg
			one.Iterations = 1
			for it := 0; it < cfg.Iterations; it++ {
				b, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + int64(100*i+it), Ambient: o.Ambient}, model.Battery.Nominal)
				if err != nil {
					return nil, err
				}
				pack := battery.NewBattery(model.Battery.Capacity, model.Battery.Nominal, model.Battery.InternalOhms)
				b.dev.PowerBy(pack)
				res, err := runPreservingSource(b, one, true)
				if err != nil {
					return nil, fmt.Errorf("experiments: fig10 %s: %w", c.name, err)
				}
				scores = append(scores, res.MeanScore())
			}
			score = stats.Mean(scores)
		} else {
			b, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + int64(i), Ambient: o.Ambient}, model.Battery.Nominal)
			if err != nil {
				return nil, err
			}
			b.mon.SetVoltage(c.monsoon)
			res, err := runPreservingSource(b, cfg, false)
			if err != nil {
				return nil, fmt.Errorf("experiments: fig10 %s: %w", c.name, err)
			}
			score = res.MeanScore()
		}
		if c.name == "battery" {
			batteryScore = score
		}
		rows = append(rows, Fig10Row{Supply: c.name, MeanScore: score})
	}
	for i := range rows {
		rows[i].Normalized = rows[i].MeanScore / batteryScore
	}
	return rows, nil
}

// runPreservingSource runs ACCUBENCH; when keepSource is set the device's
// existing power source (the battery) stays wired, and the Monsoon only
// measures (the Fig. 10 battery configuration).
func runPreservingSource(b *bench, cfg accubench.Config, keepSource bool) (accubench.Result, error) {
	r := &accubench.Runner{Device: b.dev, Monitor: b.mon, Box: b.box, KeepSource: keepSource, Config: cfg}
	return r.Run()
}

// DistributionStudy is the Figs. 11–12 output: frequency and temperature
// distributions over the workload phase for two units of one model, with
// the mean-frequency gap that explains the performance gap.
type DistributionStudy struct {
	Model string
	Units [2]fleet.Unit
	// FreqHist holds per-unit frequency histograms (fraction of time per bin).
	FreqHist [2][]stats.HistBin
	// TempHist holds per-unit die-temperature histograms.
	TempHist [2][]stats.HistBin
	// MeanFreq holds per-unit time-weighted mean frequencies.
	MeanFreq [2]units.MegaHertz
	// MeanFreqGapPct is (fast-slow)/fast in percent.
	MeanFreqGapPct float64
	// ScoreGapPct is the performance gap in percent.
	ScoreGapPct float64
}

// distributions runs one UNCONSTRAINED iteration on two units and histograms
// the workload-phase traces.
func distributions(o Options, a, b fleet.Unit, freqLo, freqHi float64) (DistributionStudy, error) {
	study := DistributionStudy{Model: a.ModelName, Units: [2]fleet.Unit{a, b}}
	var scores [2]float64
	for i, u := range []fleet.Unit{a, b} {
		bch, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + int64(i), Ambient: o.Ambient}, 0)
		if err != nil {
			return study, err
		}
		cfg := o.benchConfig(accubench.Unconstrained)
		cfg.Iterations = 1
		res, err := bch.runAccubench(cfg)
		if err != nil {
			return study, fmt.Errorf("experiments: distributions %s: %w", u.Name, err)
		}
		it := res.Iterations[0]
		work := it.Phases[2]
		freq, _ := bch.dev.Trace().Lookup("freq.big")
		die, _ := bch.dev.Trace().Lookup("die")

		fh := stats.NewHistogram(freqLo, freqHi, 12)
		for _, s := range freq.Window(work.Start+cfg.Step, work.End) {
			fh.Add(s.Value)
		}
		th := stats.NewHistogram(30, 95, 13)
		for _, s := range die.Window(work.Start+cfg.Step, work.End) {
			th.Add(s.Value)
		}
		study.FreqHist[i] = fh.Bins()
		study.TempHist[i] = th.Bins()
		study.MeanFreq[i] = it.MeanBigFreq
		scores[i] = float64(it.Score)
	}
	fast, slow := float64(study.MeanFreq[0]), float64(study.MeanFreq[1])
	if fast < slow {
		fast, slow = slow, fast
	}
	study.MeanFreqGapPct = (fast - slow) / fast * 100
	sFast, sSlow := scores[0], scores[1]
	if sFast < sSlow {
		sFast, sSlow = sSlow, sFast
	}
	study.ScoreGapPct = (sFast - sSlow) / sFast * 100
	return study, nil
}

// Fig11 compares two Google Pixels (device-488 vs device-653); the paper
// reports a 7% performance gap matched by the mean-frequency gap.
func Fig11(o Options) (DistributionStudy, error) {
	px := fleet.PixelUnits()
	return distributions(o, px[0], px[2], 300, 2200)
}

// Fig12 compares a bin-1 and a bin-3 Nexus 5; the paper reports an 11%
// performance gap with the mean frequency also 11% higher.
func Fig12(o Options) (DistributionStudy, error) {
	n5 := fleet.Nexus5Units()
	return distributions(o, n5[1], n5[3], 300, 2300)
}

// Fig13Row is one SoC generation's efficiency.
type Fig13Row struct {
	Chipset string
	Model   string
	// IterPerWh is mean UNCONSTRAINED iterations per watt-hour — our
	// efficiency metric (the paper's Fig. 13 y-axis is a relative unit).
	IterPerWh float64
	// Relative is IterPerWh normalized to the SD-800.
	Relative float64
}

// Fig13 computes relative efficiency across the five generations from the
// Table II studies. The paper's headline: efficiency improves across
// generations overall, but the SD-805 is *less* efficient than the SD-800.
func Fig13(studies []ModelStudy) ([]Fig13Row, error) {
	if len(studies) == 0 {
		return nil, fmt.Errorf("experiments: fig13 needs studies")
	}
	rows := make([]Fig13Row, 0, len(studies))
	for _, st := range studies {
		chip, err := modelSoC(st.Model)
		if err != nil {
			return nil, err
		}
		var effs []float64
		for _, o := range st.Perf {
			e := o.Result.MeanEnergy() // joules over the workload phase
			s := o.Result.MeanScore()
			if e > 0 {
				effs = append(effs, s/(e/3600)) // iterations per Wh
			}
		}
		rows = append(rows, Fig13Row{Chipset: chip, Model: st.Model, IterPerWh: stats.Mean(effs)})
	}
	base := rows[0].IterPerWh
	for i := range rows {
		if base > 0 {
			rows[i].Relative = rows[i].IterPerWh / base
		}
	}
	return rows, nil
}
