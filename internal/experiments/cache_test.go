package experiments

import (
	"sync"
	"testing"
)

// TestStudyCacheHitIsBitIdentical checks the memo against a fresh
// uncached computation: serving from cache must be invisible to results.
func TestStudyCacheHitIsBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("two studies")
	}
	ResetStudyCache()
	opts := Options{Quick: true, Seed: 31}
	cached, err := Study("Nexus 5", opts)
	if err != nil {
		t.Fatal(err)
	}
	again, err := Study("Nexus 5", opts)
	if err != nil {
		t.Fatal(err)
	}
	if h, m := StudyCacheStats(); h != 1 || m != 1 {
		t.Fatalf("hits=%d misses=%d after two identical calls, want 1/1", h, m)
	}
	fresh, err := studyParallel("Nexus 5", opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := range fresh.Perf {
		if cached.Perf[i].Result.MeanScore() != fresh.Perf[i].Result.MeanScore() ||
			again.Perf[i].Result.MeanScore() != fresh.Perf[i].Result.MeanScore() {
			t.Errorf("unit %d: cached study differs from fresh computation", i)
		}
		if cached.Energy[i].Result.MeanEnergy() != fresh.Energy[i].Result.MeanEnergy() {
			t.Errorf("unit %d: cached energy differs from fresh computation", i)
		}
	}
}

// TestStudyCacheKeyNormalization ensures zero-value Options share an
// entry with their explicit equivalents, mirroring how the runners
// normalize them.
func TestStudyCacheKeyNormalization(t *testing.T) {
	if testing.Short() {
		t.Skip("one study")
	}
	ResetStudyCache()
	if _, err := Study("Nexus 5", Options{Quick: true}); err != nil {
		t.Fatal(err)
	}
	if _, err := Study("Nexus 5", Options{Quick: true, Seed: 1, Ambient: 26}); err != nil {
		t.Fatal(err)
	}
	if h, m := StudyCacheStats(); h != 1 || m != 1 {
		t.Errorf("hits=%d misses=%d: normalized-equal options did not share an entry", h, m)
	}
}

// TestStudyCacheDistinctOptionsMiss ensures genuinely different options
// never collide.
func TestStudyCacheDistinctOptionsMiss(t *testing.T) {
	if testing.Short() {
		t.Skip("two studies")
	}
	ResetStudyCache()
	a, err := Study("Nexus 5", Options{Quick: true, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Study("Nexus 5", Options{Quick: true, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	if _, m := StudyCacheStats(); m != 2 {
		t.Errorf("misses=%d for two distinct seeds, want 2", m)
	}
	if a.Perf[0].Result.MeanScore() == b.Perf[0].Result.MeanScore() {
		t.Error("different seeds returned identical scores — key collision?")
	}
}

// TestStudyCacheConcurrentSingleFlight spins many goroutines at one key:
// exactly one computation may run, everyone gets the same study.
func TestStudyCacheConcurrentSingleFlight(t *testing.T) {
	if testing.Short() {
		t.Skip("one study")
	}
	ResetStudyCache()
	const callers = 8
	var wg sync.WaitGroup
	scores := make([]float64, callers)
	errs := make([]error, callers)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			st, err := Study("Nexus 5", Options{Quick: true, Seed: 11})
			if err != nil {
				errs[i] = err
				return
			}
			scores[i] = st.Perf[0].Result.MeanScore()
		}(i)
	}
	wg.Wait()
	for i := 1; i < callers; i++ {
		if errs[i] != nil {
			t.Fatal(errs[i])
		}
		if scores[i] != scores[0] {
			t.Errorf("caller %d saw score %v, caller 0 saw %v", i, scores[i], scores[0])
		}
	}
	if _, m := StudyCacheStats(); m != 1 {
		t.Errorf("misses=%d for %d concurrent identical calls, want 1", m, callers)
	}
}

// TestStudyCacheCallerCannotCorrupt mutates the returned slices and
// re-reads the cache: the shallow copy must isolate the cached study.
func TestStudyCacheCallerCannotCorrupt(t *testing.T) {
	if testing.Short() {
		t.Skip("one study")
	}
	ResetStudyCache()
	opts := Options{Quick: true, Seed: 13}
	first, err := Study("Nexus 5", opts)
	if err != nil {
		t.Fatal(err)
	}
	want := len(first.Perf)
	first.Perf = first.Perf[:0]
	first.Energy = append(first.Energy, DeviceOutcome{})
	second, err := Study("Nexus 5", opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(second.Perf) != want || len(second.Energy) != want {
		t.Errorf("cached study corrupted by caller mutation: %d perf / %d energy outcomes, want %d",
			len(second.Perf), len(second.Energy), want)
	}
}
