package experiments

import (
	"fmt"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/fleet"
	"accubench/internal/stats"
	"accubench/internal/units"
)

// BaselineResult quantifies why the paper had to invent ACCUBENCH: the
// naive press-start protocol of existing benchmarks is not repeatable and
// is gameable with a refrigerator.
type BaselineResult struct {
	// Naive is the back-to-back naive run on one device at 26 °C.
	Naive accubench.NaiveResult
	// NaiveRSD is the RSD across the naive scores.
	NaiveRSD float64
	// AccubenchRSD is the RSD across ACCUBENCH iterations on the same
	// device under the same chamber.
	AccubenchRSD float64
	// FridgeScore is the first naive run with the device cold-soaked at
	// FridgeAmbient (Guo et al.'s trick).
	FridgeScore float64
	// HotScore is the first naive run at HotAmbient.
	HotScore float64
	// FridgeAmbient and HotAmbient are the two cheat setpoints.
	FridgeAmbient, HotAmbient units.Celsius
}

// FridgeGainPct is how much the refrigerator inflates the score over the
// hot-pocket run.
func (b BaselineResult) FridgeGainPct() float64 {
	if b.HotScore == 0 {
		return 0
	}
	return (b.FridgeScore - b.HotScore) / b.HotScore * 100
}

// Baseline runs the comparison on a mid-fleet Nexus 5.
func Baseline(o Options) (BaselineResult, error) {
	u := fleet.Nexus5Units()[1]
	runs := 5
	if o.Quick {
		runs = 3
	}
	out := BaselineResult{FridgeAmbient: 5, HotAmbient: 35}

	// Naive back-to-back at the paper's 26 °C.
	b, err := newBench(u, o, 0)
	if err != nil {
		return out, err
	}
	cfg := o.benchConfig(accubench.Unconstrained)
	naive, err := (&accubench.Runner{Device: b.dev, Monitor: b.mon, Box: b.box, Config: cfg}).
		RunNaive(runs, 30*time.Second)
	if err != nil {
		return out, fmt.Errorf("experiments: baseline naive: %w", err)
	}
	out.Naive = naive
	scores := make([]float64, len(naive.Scores))
	for i, s := range naive.Scores {
		scores[i] = float64(s)
	}
	out.NaiveRSD = stats.RSD(scores)

	// ACCUBENCH on a fresh identical device for the repeatability contrast.
	b2, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + 1, Ambient: o.Ambient}, 0)
	if err != nil {
		return out, err
	}
	cfg2 := o.benchConfig(accubench.Unconstrained)
	cfg2.Iterations = runs
	res, err := b2.runAccubench(cfg2)
	if err != nil {
		return out, fmt.Errorf("experiments: baseline accubench: %w", err)
	}
	if sm, err := res.PerfSummary(); err == nil {
		out.AccubenchRSD = sm.RSD
	}

	// The refrigerator trick: one naive run cold-soaked at 5 °C vs one in a
	// 35 °C pocket. (Guo et al. report >60% on Antutu's composite score; a
	// pure CPU loop gains less but plenty.)
	for _, amb := range []units.Celsius{out.FridgeAmbient, out.HotAmbient} {
		bn, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + 2, Ambient: amb}, 0)
		if err != nil {
			return out, err
		}
		cfgA := o.benchConfig(accubench.Unconstrained)
		nv, err := (&accubench.Runner{Device: bn.dev, Monitor: bn.mon, Box: bn.box, Config: cfgA}).
			RunNaive(1, 0)
		if err != nil {
			return out, fmt.Errorf("experiments: baseline fridge@%v: %w", amb, err)
		}
		if amb == out.FridgeAmbient {
			out.FridgeScore = float64(nv.Scores[0])
		} else {
			out.HotScore = float64(nv.Scores[0])
		}
	}
	return out, nil
}
