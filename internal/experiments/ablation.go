package experiments

import (
	"fmt"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/device"
	"accubench/internal/fleet"
	"accubench/internal/monsoon"
	"accubench/internal/soc"
	"accubench/internal/stats"
	"accubench/internal/thermabox"
	"accubench/internal/units"
	"accubench/internal/workload"
)

// This file ablates the methodology's design choices the paper fixes by
// experience — warmup length, cooldown target, throttle hysteresis, sensor
// quality — so a downstream user can see *why* each knob sits where it does
// rather than cargo-culting the constants.

// WarmupAblationRow is one warmup setting's outcome.
type WarmupAblationRow struct {
	// Warmup is the phase length under test (0 disables the phase).
	Warmup time.Duration
	// FirstVsRestPct is how much the first iteration's score deviates from
	// the mean of the rest — the cold-start bias warmup exists to kill.
	FirstVsRestPct float64
	// RSD is the overall iteration RSD at this setting.
	RSD float64
}

// AblateWarmup quantifies the paper's §III claim that "a warmup duration of
// 3 minutes was sufficient for obtaining consistent results": without
// warmup the first iteration is biased; with it the bias collapses.
func AblateWarmup(o Options) ([]WarmupAblationRow, error) {
	u := fleet.Nexus5Units()[2] // leaky chip: worst-case thermal memory
	warmups := []time.Duration{0, 45 * time.Second, 3 * time.Minute}
	var out []WarmupAblationRow
	for i, w := range warmups {
		b, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + int64(i), Ambient: o.Ambient}, 0)
		if err != nil {
			return nil, err
		}
		cfg := o.benchConfig(accubench.Unconstrained)
		cfg.Iterations = 4
		if w == 0 {
			// Disabling warmup entirely: approximate with the minimum the
			// config validator allows, one control step.
			cfg.Warmup = cfg.Step
		} else {
			cfg.Warmup = w
		}
		// Without warmup the cooldown is what lets iteration 1 start cold
		// while iterations 2+ start conditioned; keep it identical.
		res, err := b.runAccubench(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: warmup ablation %v: %w", w, err)
		}
		scores := res.Scores()
		rest := stats.Mean(scores[1:])
		first := 0.0
		if rest > 0 {
			first = (scores[0] - rest) / rest * 100
		}
		out = append(out, WarmupAblationRow{Warmup: w, FirstVsRestPct: first, RSD: stats.RSD(scores)})
	}
	return out, nil
}

// CooldownAblationRow is one cooldown-target setting's outcome.
type CooldownAblationRow struct {
	// Target is the sensor temperature gating the workload start.
	Target units.Celsius
	// MeanScore at this target (cooler starts buy throttle headroom).
	MeanScore float64
	// MeanCooldown is the average time spent waiting.
	MeanCooldown time.Duration
	// RSD across iterations.
	RSD float64
}

// AblateCooldownTarget sweeps the cooldown target: colder targets cost
// waiting time and buy higher, more repeatable scores. The paper picks a
// target its chamber can reach quickly; this sweep shows the trade.
func AblateCooldownTarget(o Options) ([]CooldownAblationRow, error) {
	u := fleet.Nexus5Units()[1]
	targets := []units.Celsius{32, 36, 42, 50}
	var out []CooldownAblationRow
	for i, target := range targets {
		b, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + int64(i), Ambient: o.Ambient}, 0)
		if err != nil {
			return nil, err
		}
		cfg := o.benchConfig(accubench.Unconstrained)
		cfg.CooldownTarget = target
		cfg.Iterations = 3
		res, err := b.runAccubench(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: cooldown ablation %v: %w", target, err)
		}
		var cd time.Duration
		for _, it := range res.Iterations {
			cd += it.CooldownTook
		}
		sm, err := res.PerfSummary()
		if err != nil {
			return nil, err
		}
		out = append(out, CooldownAblationRow{
			Target:       target,
			MeanScore:    sm.Mean,
			MeanCooldown: cd / time.Duration(len(res.Iterations)),
			RSD:          sm.RSD,
		})
	}
	return out, nil
}

// HysteresisAblationRow is one thermal-engine hysteresis setting's outcome.
type HysteresisAblationRow struct {
	// Hysteresis in °C below the trip before the cap steps back up.
	Hysteresis float64
	// MeanScore across iterations.
	MeanScore float64
	// ThrottleEvents per iteration (tight hysteresis flaps).
	ThrottleEvents float64
	// RSD across iterations.
	RSD float64
}

// AblateHysteresis sweeps the thermal engine's hysteresis on the Nexus 5:
// tight bands flap the cap (many throttle events, oscillation); wide bands
// park the device below its potential.
func AblateHysteresis(o Options) ([]HysteresisAblationRow, error) {
	hysts := []float64{2, 6, 12}
	var out []HysteresisAblationRow
	for i, h := range hysts {
		model := soc.Nexus5()
		model.Thermal.Hysteresis = h
		res, err := customModelRun(o, model, o.seed()+int64(i))
		if err != nil {
			return nil, fmt.Errorf("experiments: hysteresis ablation %v: %w", h, err)
		}
		sm, err := res.PerfSummary()
		if err != nil {
			return nil, err
		}
		var throttles float64
		for _, it := range res.Iterations {
			throttles += float64(it.ThrottleEvents)
		}
		out = append(out, HysteresisAblationRow{
			Hysteresis:     h,
			MeanScore:      sm.Mean,
			ThrottleEvents: throttles / float64(len(res.Iterations)),
			RSD:            sm.RSD,
		})
	}
	return out, nil
}

// SensorNoiseAblationRow is one sensor-quality setting's outcome.
type SensorNoiseAblationRow struct {
	// Sigma is the tsens 1σ noise in °C.
	Sigma float64
	// RSD across iterations: noisier sensors make throttling onset — and
	// therefore scores — less repeatable.
	RSD float64
	// MeanScore across iterations.
	MeanScore float64
}

// AblateSensorNoise sweeps the on-die sensor quality. The paper's
// methodology cannot fix a bad sensor — this ablation shows how much of the
// iteration noise budget the tsens consumes.
func AblateSensorNoise(o Options) ([]SensorNoiseAblationRow, error) {
	sigmas := []float64{0, 0.3, 1.5}
	var out []SensorNoiseAblationRow
	for i, sg := range sigmas {
		model := soc.Nexus5()
		model.SensorNoise = sg
		res, err := customModelRun(o, model, o.seed()+int64(i))
		if err != nil {
			return nil, fmt.Errorf("experiments: sensor ablation %v: %w", sg, err)
		}
		sm, err := res.PerfSummary()
		if err != nil {
			return nil, err
		}
		out = append(out, SensorNoiseAblationRow{Sigma: sg, RSD: sm.RSD, MeanScore: sm.Mean})
	}
	return out, nil
}

// customModelRun runs ACCUBENCH on a mid-leakage chip of a *modified* model
// (ablations mutate policy fields the fleet cannot express).
func customModelRun(o Options, model *soc.DeviceModel, seed int64) (accubench.Result, error) {
	mon := monsoon.New(model.Battery.Nominal)
	dev, err := device.New(device.Config{
		Name:    "ablation-dut",
		Model:   model,
		Corner:  fleet.Nexus5Units()[2].Corner,
		Ambient: o.ambient(),
		Seed:    seed,
		Source:  mon.Supply(),
	})
	if err != nil {
		return accubench.Result{}, err
	}
	boxCfg := thermabox.DefaultConfig()
	boxCfg.Target = o.ambient()
	boxCfg.Seed = seed
	box, err := thermabox.New(boxCfg)
	if err != nil {
		return accubench.Result{}, err
	}
	cfg := o.benchConfig(accubench.Unconstrained)
	cfg.Iterations = 3
	return (&accubench.Runner{Device: dev, Monitor: mon, Box: box, Config: cfg}).Run()
}

// WorkloadShapeRow is one workload profile's variation visibility.
type WorkloadShapeRow struct {
	// Profile is the workload shape under test.
	Profile workload.Profile
	// PerfVariationPct is the best-to-worst UNCONSTRAINED score spread
	// across the Nexus 5 fleet under this shape.
	PerfVariationPct float64
	// MeanPowerW is the fleet-average workload power, the thermal stress
	// the shape applies.
	MeanPowerW float64
}

// AblateWorkloadShape re-runs the Nexus 5 performance study under different
// workload shapes. Two regimes emerge. As long as a shape still drives the
// die into the thermal envelope, variation stays visible — and since lower
// dynamic power raises leakage's *share*, a memory-bound loop can expose
// even more spread than the π kernel. Only a light workload with real
// thermal headroom (interactive use) hides the lottery, which is exactly
// why users don't notice it day to day and a benchmark must saturate the
// CPU to reveal it.
func AblateWorkloadShape(o Options) ([]WorkloadShapeRow, error) {
	profiles := []workload.Profile{workload.PiCPUBound(), workload.Mixed(), workload.MemoryBound(), workload.LightUI()}
	units := fleet.Nexus5Units()
	var out []WorkloadShapeRow
	for pi, p := range profiles {
		var scores []float64
		var powers []float64
		for i, u := range units {
			b, err := newBench(u, Options{Quick: o.Quick, Seed: o.seed() + int64(10*pi+i), Ambient: o.Ambient}, 0)
			if err != nil {
				return nil, err
			}
			if err := b.dev.SetWorkloadProfile(p); err != nil {
				return nil, err
			}
			cfg := o.benchConfig(accubench.Unconstrained)
			cfg.Iterations = 2
			res, err := b.runAccubench(cfg)
			if err != nil {
				return nil, fmt.Errorf("experiments: workload-shape %s/%s: %w", p.Name, u.Name, err)
			}
			scores = append(scores, res.MeanScore())
			for _, it := range res.Iterations {
				powers = append(powers, float64(it.Energy.MeanPower))
			}
		}
		out = append(out, WorkloadShapeRow{
			Profile:          p,
			PerfVariationPct: stats.Spread(scores),
			MeanPowerW:       stats.Mean(powers),
		})
	}
	return out, nil
}
