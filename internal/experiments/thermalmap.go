package experiments

import (
	"time"

	"accubench/internal/power"
	"accubench/internal/silicon"
	"accubench/internal/soc"
	"accubench/internal/thermal"
	"accubench/internal/units"
)

// ThermalMapResult is the spatial extension (Therminator-style, §V related
// work): the Nexus 5 die as a temperature map under full load, and the same
// die after the 80 °C core-shutdown action — showing *where* the heat lives,
// not just how much.
type ThermalMapResult struct {
	// FullLoadMap is the ASCII map with all four cores powered.
	FullLoadMap string
	// FullLoadPeak and FullLoadMean summarize it.
	FullLoadPeak, FullLoadMean units.Celsius
	// ShedMap is the map with one core offlined.
	ShedMap string
	// ShedPeak and ShedMean summarize it.
	ShedPeak, ShedMean units.Celsius
	// HotspotX and HotspotY locate the full-load hotspot.
	HotspotX, HotspotY int
}

// ThermalMap renders the two maps. Core powers come from the same power
// model the device simulation uses, evaluated at the throttled operating
// point, so the spatial picture is consistent with the lumped experiments.
func ThermalMap(o Options) (ThermalMapResult, error) {
	model := soc.Nexus5()
	corner := silicon.ProcessCorner{Bin: 2, Leakage: 1.5}
	pm := power.Model{
		CeffBig: model.SoC.Big.Ceff,
		Leakage: model.SoC.Leakage,
		Uncore:  model.SoC.Uncore,
	}
	// The throttled operating point the UNCONSTRAINED workload settles at.
	const f = 1574
	v, err := model.SoC.Voltages.Voltage(corner, f, 78)
	if err != nil {
		return ThermalMapResult{}, err
	}
	core := power.CoreState{Online: true, Freq: f, Voltage: v, Utilization: 1}
	bd := pm.Evaluate([]power.CoreState{core, core, core, core}, nil, corner, 78)
	perCore := units.Watts((float64(bd.Dynamic) + float64(bd.Leakage)) / 4)
	uncore := bd.Uncore

	const gw, gh = 24, 24
	horizon := 3 * time.Minute
	if o.Quick {
		horizon = time.Minute
	}
	render := func(onlineCores int) (*thermal.Grid, error) {
		g, err := thermal.NewGrid(thermal.GridConfig{
			W: gw, H: gh,
			Body:     model.Body,
			LateralG: 0.02,
			Ambient:  o.ambient(),
		})
		if err != nil {
			return nil, err
		}
		blocks := thermal.QuadFloorplan(gw, gh)
		for t := time.Duration(0); t < horizon; t += 100 * time.Millisecond {
			powered := 0
			for _, b := range blocks {
				if b.Name == "uncore" {
					if err := g.Inject(b.X0, b.Y0, b.X1, b.Y1, uncore); err != nil {
						return nil, err
					}
					continue
				}
				if powered < onlineCores {
					if err := g.Inject(b.X0, b.Y0, b.X1, b.Y1, perCore); err != nil {
						return nil, err
					}
					powered++
				}
			}
			g.Step(100 * time.Millisecond)
		}
		return g, nil
	}

	full, err := render(4)
	if err != nil {
		return ThermalMapResult{}, err
	}
	shed, err := render(3)
	if err != nil {
		return ThermalMapResult{}, err
	}
	hx, hy, peak := full.Hotspot()
	_, _, shedPeak := shed.Hotspot()
	return ThermalMapResult{
		FullLoadMap:  full.Render(),
		FullLoadPeak: peak,
		FullLoadMean: full.Mean(),
		ShedMap:      shed.Render(),
		ShedPeak:     shedPeak,
		ShedMean:     shed.Mean(),
		HotspotX:     hx,
		HotspotY:     hy,
	}, nil
}
