package chaos

import (
	"fmt"
	"time"

	"accubench/internal/sim"
)

// Scenario is one named fault shape — the YCSB-style workload scenarios
// (baseline / degraded / partition / high-load) the cluster's failure
// behaviour is measured under, both in the internal/server chaos test
// matrix and via `crowdload -scenario <name>`.
//
// Apply scripts the scenario's faults onto a plan for an ordered node
// list. By convention nodes[0] is the observer (the client, or the node
// the harness posts through) and is never picked as a fault victim —
// victim draws come from nodes[1:], seeded from the plan, so a fixed
// seed always picks the same victim.
type Scenario struct {
	// Name is the scenario's identity (-scenario flag value).
	Name string
	// Description is one line for help text and logs.
	Description string
	// HealAfter is the scheduled network recovery: partitions lift this
	// long after Apply (0 means nothing to heal on a schedule).
	HealAfter time.Duration

	apply func(p *Plan, nodes []string)
}

// Apply scripts the scenario onto the plan. Partition-style scenarios
// also schedule their heal (HealAfter).
func (s Scenario) Apply(p *Plan, nodes []string) {
	if s.apply != nil {
		s.apply(p, nodes)
	}
	if s.HealAfter > 0 {
		p.HealPartitionsAfter(s.HealAfter)
	}
}

// Heal clears every fault the scenario installed.
func (s Scenario) Heal(p *Plan) { p.Heal() }

// victim draws the scenario's fault victim from nodes[1:] — nodes[0] is
// the observer. The draw is seeded by the plan and the scenario name,
// so seed and membership fully determine it.
func victim(p *Plan, name string, nodes []string) string {
	if len(nodes) < 2 {
		return nodes[0]
	}
	rng := sim.NewSource(p.Seed(), "chaos:scenario:"+name)
	return nodes[1+rng.Intn(len(nodes)-1)]
}

// pairs visits every ordered pair of distinct nodes.
func pairs(nodes []string, f func(src, dst string)) {
	for _, src := range nodes {
		for _, dst := range nodes {
			if src != dst {
				f(src, dst)
			}
		}
	}
}

// Scenarios is the standard matrix, in documentation order.
var Scenarios = []Scenario{
	{
		Name:        "baseline",
		Description: "no faults: the control run every other scenario is compared against",
		apply:       func(p *Plan, nodes []string) {},
	},
	{
		Name:        "degraded",
		Description: "lossy, slow network: 1-4ms latency ±1ms jitter, 5% drops, 2% error responses on every pair",
		apply: func(p *Plan, nodes []string) {
			lat := sim.NewSource(p.Seed(), "chaos:scenario:degraded:latency")
			pairs(nodes, func(src, dst string) {
				p.SetRule(src, dst, Rule{
					Latency: time.Duration(lat.Uniform(1, 4) * float64(time.Millisecond)),
					Jitter:  time.Millisecond,
					Drop:    0.05,
					Error:   0.02,
				})
			})
		},
	},
	{
		Name:        "partition",
		Description: "one node symmetrically cut off from every peer, healing on a schedule",
		HealAfter:   400 * time.Millisecond,
		apply: func(p *Plan, nodes []string) {
			v := victim(p, "partition", nodes)
			for _, n := range nodes {
				if n != v {
					p.Partition(v, n)
				}
			}
		},
	},
	{
		Name:        "high-load",
		Description: "mild uniform latency plus one node on a slow disk (2ms per fsync)",
		apply: func(p *Plan, nodes []string) {
			pairs(nodes, func(src, dst string) {
				p.SetRule(src, dst, Rule{Latency: 500 * time.Microsecond, Jitter: 250 * time.Microsecond})
			})
			p.SetFsyncDelay(victim(p, "high-load", nodes), 2*time.Millisecond)
		},
	},
}

// Names lists the scenario names in matrix order.
func Names() []string {
	out := make([]string, len(Scenarios))
	for i, s := range Scenarios {
		out[i] = s.Name
	}
	return out
}

// Lookup resolves a scenario by name.
func Lookup(name string) (Scenario, bool) {
	for _, s := range Scenarios {
		if s.Name == name {
			return s, true
		}
	}
	return Scenario{}, false
}

// MustLookup resolves a scenario by name or returns a listing error.
func MustLookup(name string) (Scenario, error) {
	s, ok := Lookup(name)
	if !ok {
		return Scenario{}, fmt.Errorf("chaos: unknown scenario %q (have %v)", name, Names())
	}
	return s, nil
}
