package chaos

import (
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"testing"
	"time"
)

// scriptPlan applies every scenario to a fresh plan over the same
// membership and returns the accumulated event log.
func scriptPlan(seed int64, nodes []string) []string {
	var events []string
	for _, s := range Scenarios {
		p := NewPlan(seed)
		s.Apply(p, nodes)
		s.Heal(p)
		events = append(events, p.Events()...)
	}
	return events
}

// TestScenarioEventLogDeterministic is the package-level determinism
// pin: the same seed and membership script byte-identical event logs,
// and a different seed moves the seeded choices.
func TestScenarioEventLogDeterministic(t *testing.T) {
	nodes := []string{"client", "n1", "n2", "n3"}
	a := scriptPlan(42, nodes)
	b := scriptPlan(42, nodes)
	if len(a) == 0 {
		t.Fatal("scenario matrix scripted no events")
	}
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed scripted different event logs:\n%v\nvs\n%v", a, b)
	}
}

// TestScenarioVictimNeverObserver: every scenario's fault victim comes
// from nodes[1:] — nodes[0] is the observer the harness measures
// through.
func TestScenarioVictimNeverObserver(t *testing.T) {
	nodes := []string{"client", "n1", "n2", "n3"}
	for seed := int64(0); seed < 50; seed++ {
		for _, name := range []string{"partition", "high-load"} {
			if v := victim(NewPlan(seed), name, nodes); v == "client" {
				t.Fatalf("seed %d scenario %s drew the observer as victim", seed, name)
			}
		}
	}
	// Partition scripts only cut the victim's links: the observer appears
	// in partition events only as the victim's counterparty.
	p := NewPlan(7)
	s, _ := Lookup("partition")
	s.apply(p, nodes)
	for _, ev := range p.Events() {
		if strings.HasPrefix(ev, "partition client<->") {
			t.Fatalf("observer was partitioned: %v", p.Events())
		}
	}
}

// TestTransportPartitionAndHeal drives a Transport against a real
// server: blocked while partitioned, clean after heal.
func TestTransportPartitionAndHeal(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "ok")
	}))
	defer srv.Close()

	p := NewPlan(1)
	if err := p.RegisterNode("n2", srv.URL); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: NewTransport(p, "n1")}

	p.Partition("n1", "n2")
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("partitioned request went through")
	}
	if !p.Partitioned("n1", "n2") || !p.Partitioned("n2", "n1") {
		t.Fatal("Partition must be symmetric")
	}
	p.HealPartitions()
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("healed request failed: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "ok" {
		t.Fatalf("healed response body %q", body)
	}
	if st := p.Stats(); st.Blocked != 1 {
		t.Fatalf("stats = %+v, want exactly 1 blocked", st)
	}
}

// TestTransportDropAndError: probability-1 rules always fire, and the
// synthetic 503 is a well-formed response.
func TestTransportDropAndError(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "real")
	}))
	defer srv.Close()
	p := NewPlan(1)
	if err := p.RegisterNode("n2", srv.URL); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: NewTransport(p, "n1")}

	p.SetRule("n1", "n2", Rule{Drop: 1})
	if _, err := client.Get(srv.URL); err == nil {
		t.Fatal("Drop=1 request went through")
	}

	p.SetRule("n1", "n2", Rule{Error: 1})
	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("Error=1 must answer, not fail: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("injected status = %d, want 503", resp.StatusCode)
	}
	if !strings.Contains(string(body), "chaos") {
		t.Fatalf("injected body %q does not identify itself", body)
	}

	// Unregistered hosts bypass injection entirely.
	other := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, "bystander")
	}))
	defer other.Close()
	resp, err = client.Get(other.URL)
	if err != nil {
		t.Fatalf("unregistered host was injected: %v", err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	if string(body) != "bystander" {
		t.Fatalf("unregistered host response %q", body)
	}
}

// TestTransportBodyErr: the response starts clean and breaks mid-body.
func TestTransportBodyErr(t *testing.T) {
	payload := strings.Repeat("x", 4096)
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.WriteString(w, payload)
	}))
	defer srv.Close()
	p := NewPlan(1)
	if err := p.RegisterNode("n2", srv.URL); err != nil {
		t.Fatal(err)
	}
	client := &http.Client{Transport: NewTransport(p, "n1")}
	p.SetRule("n1", "n2", Rule{BodyErr: 1})

	resp, err := client.Get(srv.URL)
	if err != nil {
		t.Fatalf("BodyErr must fail during the read, not the round trip: %v", err)
	}
	defer resp.Body.Close()
	got, err := io.ReadAll(resp.Body)
	if err == nil {
		t.Fatalf("mid-body break never surfaced; read %d bytes cleanly", len(got))
	}
	if len(got) == 0 || len(got) >= len(payload) {
		t.Fatalf("break point out of band: read %d of %d bytes", len(got), len(payload))
	}
}

// TestPerPairStreamsIndependent: draws on one pair never perturb
// another pair's sequence — the property that keeps multi-node fault
// sequences stable when traffic volume shifts between pairs.
func TestPerPairStreamsIndependent(t *testing.T) {
	drops := func(p *Plan, src, dst string, n int) []bool {
		out := make([]bool, n)
		for i := range out {
			out[i] = p.decide(src, dst).drop
		}
		return out
	}
	mk := func() *Plan {
		p := NewPlan(99)
		p.SetRule("a", "b", Rule{Drop: 0.5})
		p.SetRule("a", "c", Rule{Drop: 0.5})
		return p
	}
	// Plan 1: a->b draws alone. Plan 2: a->c traffic interleaves.
	p1, p2 := mk(), mk()
	var ab1 []bool
	ab1 = drops(p1, "a", "b", 64)
	var ab2 []bool
	for i := 0; i < 64; i++ {
		ab2 = append(ab2, p2.decide("a", "b").drop)
		p2.decide("a", "c") // interleaved traffic on the sibling pair
	}
	if !reflect.DeepEqual(ab1, ab2) {
		t.Fatal("sibling-pair traffic perturbed a->b's fault sequence")
	}
}

// TestFsyncDelayHealsLive: the injected delay reads the plan on every
// call, so Heal unsticks the disk without re-wiring.
func TestFsyncDelayHealsLive(t *testing.T) {
	p := NewPlan(1)
	p.SetFsyncDelay("n1", 30*time.Millisecond)
	delay := p.FsyncDelay("n1")
	t0 := time.Now()
	delay()
	if d := time.Since(t0); d < 20*time.Millisecond {
		t.Fatalf("fsync delay slept only %v", d)
	}
	p.Heal()
	t0 = time.Now()
	delay()
	if d := time.Since(t0); d > 10*time.Millisecond {
		t.Fatalf("healed fsync delay still slept %v", d)
	}
}

// TestScheduledHeal: HealPartitionsAfter lifts partitions and logs the
// heal when the timer fires.
func TestScheduledHeal(t *testing.T) {
	p := NewPlan(1)
	p.Partition("a", "b")
	p.HealPartitionsAfter(30 * time.Millisecond)
	if !p.Partitioned("a", "b") {
		t.Fatal("partition lifted before the schedule")
	}
	deadline := time.Now().Add(2 * time.Second)
	for p.Partitioned("a", "b") {
		if time.Now().After(deadline) {
			t.Fatal("scheduled heal never fired")
		}
		time.Sleep(5 * time.Millisecond)
	}
	evs := p.Events()
	if evs[len(evs)-1] != "heal: partitions lifted" {
		t.Fatalf("heal event missing from log: %v", evs)
	}
}

func TestLookup(t *testing.T) {
	for _, name := range Names() {
		if _, ok := Lookup(name); !ok {
			t.Fatalf("Names lists %q but Lookup misses it", name)
		}
	}
	if _, ok := Lookup("nope"); ok {
		t.Fatal("Lookup accepted an unknown scenario")
	}
	if _, err := MustLookup("nope"); err == nil {
		t.Fatal("MustLookup accepted an unknown scenario")
	}
	want := []string{"baseline", "degraded", "partition", "high-load"}
	if !reflect.DeepEqual(Names(), want) {
		t.Fatalf("scenario matrix = %v, want %v", Names(), want)
	}
}
