// Package chaos is the cluster's seeded, deterministic fault-injection
// layer: the controlled-stress harness every scale-up change to the
// crowdd cluster is validated against (ROADMAP "cluster hardening").
//
// A Plan is a scripted set of network and disk faults — per-peer-pair
// latency distributions, probabilistic drops and error responses,
// asymmetric or symmetric partitions with scheduled heal, and slow-disk
// fsync delays — all derived from one root seed. A Transport is an
// http.RoundTripper that executes the plan on the peer traffic of one
// node; it threads through the cluster's single client seam
// (server.ClusterConfig.Client), so submission proxying, replication
// shipping and anti-entropy pulls all cross it. The wal's
// Config.FsyncDelay seam carries the disk half.
//
// Determinism has two layers. Fault draws are per-pair seeded streams
// (sim.NewSource style), so a pair's fault sequence depends only on the
// seed and that pair's own traffic. The plan's event log records only
// scripted plan-level events — rules installed, partitions cut and
// healed — never per-request draws, so the log for a fixed seed is
// byte-identical across runs regardless of goroutine scheduling; the
// chaos tests pin exactly that (`go test ./internal/server -run Chaos
// -count=2`).
//
// Scenario (scenario.go) names the standard fault shapes — baseline,
// degraded, partition, high-load — used by internal/server's chaos test
// matrix and by `crowdload -scenario <name> -chaos-seed N` against real
// daemons.
package chaos

import (
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strings"
	"sync"
	"time"

	"accubench/internal/sim"
)

// Rule is the fault policy for one directed peer pair.
type Rule struct {
	// Latency is added to every request; Jitter widens it uniformly to
	// Latency ± Jitter (clamped at zero).
	Latency time.Duration
	Jitter  time.Duration
	// Drop is the probability a request fails with a connection error
	// before reaching the destination.
	Drop float64
	// Error is the probability the destination answers a synthetic
	// 503 instead of handling the request.
	Error float64
	// BodyErr is the probability the response connection breaks mid-body:
	// the destination handled the request, but the caller reading the
	// response body hits a connection reset partway through.
	BodyErr float64
}

func (r Rule) String() string {
	parts := []string{}
	if r.Latency > 0 || r.Jitter > 0 {
		parts = append(parts, fmt.Sprintf("latency=%v±%v", r.Latency, r.Jitter))
	}
	if r.Drop > 0 {
		parts = append(parts, fmt.Sprintf("drop=%.2f", r.Drop))
	}
	if r.Error > 0 {
		parts = append(parts, fmt.Sprintf("err=%.2f", r.Error))
	}
	if r.BodyErr > 0 {
		parts = append(parts, fmt.Sprintf("bodyerr=%.2f", r.BodyErr))
	}
	if len(parts) == 0 {
		return "none"
	}
	return strings.Join(parts, " ")
}

// Stats counts the faults a plan actually injected. Unlike the event
// log these depend on traffic volume and scheduling — they are for
// reporting, never for determinism assertions.
type Stats struct {
	Delayed  uint64
	Dropped  uint64
	Errored  uint64
	BodyErrs uint64
	Blocked  uint64
}

type pair struct{ src, dst string }

type pairState struct {
	rule Rule
	rng  *sim.Source
}

// Plan is one scripted fault configuration shared by every node's
// Transport. All methods are safe for concurrent use.
type Plan struct {
	seed int64

	mu      sync.Mutex
	hosts   map[string]string // URL host -> node ID
	rules   map[pair]*pairState
	blocked map[pair]bool
	fsync   map[string]time.Duration
	events  []string
	stats   Stats
	timers  []*time.Timer
}

// NewPlan creates an empty fault plan rooted at seed. The same seed and
// the same scripted calls always produce the same event log and the
// same per-pair fault draws.
func NewPlan(seed int64) *Plan {
	return &Plan{
		seed:    seed,
		hosts:   map[string]string{},
		rules:   map[pair]*pairState{},
		blocked: map[pair]bool{},
		fsync:   map[string]time.Duration{},
	}
}

// Seed returns the plan's root seed.
func (p *Plan) Seed() int64 { return p.seed }

// RegisterNode maps a node's base URL to its ID so Transports can
// resolve request destinations. Unregistered hosts pass through
// untouched.
func (p *Plan) RegisterNode(id, baseURL string) error {
	u, err := url.Parse(baseURL)
	if err != nil {
		return fmt.Errorf("chaos: node %s has unparseable URL %q: %w", id, baseURL, err)
	}
	if u.Host == "" {
		return fmt.Errorf("chaos: node %s URL %q has no host", id, baseURL)
	}
	p.mu.Lock()
	p.hosts[u.Host] = id
	p.mu.Unlock()
	return nil
}

// SetRule installs the fault rule for the directed pair src→dst,
// replacing any previous rule. The pair's random stream is derived from
// the plan seed and the pair's names, so rule draws on one pair never
// perturb another's.
func (p *Plan) SetRule(src, dst string, r Rule) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.rules[pair{src, dst}] = &pairState{
		rule: r,
		rng:  sim.NewSource(p.seed, "chaos:"+src+"->"+dst),
	}
	p.logLocked(fmt.Sprintf("rule %s->%s: %s", src, dst, r))
}

// PartitionOneWay blocks traffic from src to dst (asymmetric: dst can
// still reach src).
func (p *Plan) PartitionOneWay(src, dst string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked[pair{src, dst}] = true
	p.logLocked(fmt.Sprintf("partition %s->%s", src, dst))
}

// Partition blocks traffic both ways between a and b.
func (p *Plan) Partition(a, b string) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked[pair{a, b}] = true
	p.blocked[pair{b, a}] = true
	p.logLocked(fmt.Sprintf("partition %s<->%s", a, b))
}

// HealPartitions lifts every partition, leaving rules and fsync delays
// in place.
func (p *Plan) HealPartitions() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.blocked = map[pair]bool{}
	p.logLocked("heal: partitions lifted")
}

// HealPartitionsAfter schedules HealPartitions after d — the scripted
// network recovery in partition scenarios. The heal event is logged
// when the timer fires.
func (p *Plan) HealPartitionsAfter(d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.timers = append(p.timers, time.AfterFunc(d, p.HealPartitions))
}

// SetFsyncDelay installs a slow-disk delay for one node. Wire the
// node's wal through FsyncDelay(node) to make it effective.
func (p *Plan) SetFsyncDelay(node string, d time.Duration) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.fsync[node] = d
	p.logLocked(fmt.Sprintf("fsync-delay %s: %v", node, d))
}

// FsyncDelay returns the function to plug into wal Config.FsyncDelay
// (via server.Config.FsyncDelay) for one node. It re-reads the plan on
// every fsync, so Heal unsticks a slow disk immediately.
func (p *Plan) FsyncDelay(node string) func() {
	return func() {
		p.mu.Lock()
		d := p.fsync[node]
		p.mu.Unlock()
		if d > 0 {
			time.Sleep(d)
		}
	}
}

// Heal clears every fault — rules, partitions and fsync delays — and
// stops pending scheduled heals.
func (p *Plan) Heal() {
	p.mu.Lock()
	defer p.mu.Unlock()
	for _, t := range p.timers {
		t.Stop()
	}
	p.timers = nil
	p.rules = map[pair]*pairState{}
	p.blocked = map[pair]bool{}
	p.fsync = map[string]time.Duration{}
	p.logLocked("heal: all faults cleared")
}

// Events returns the scripted event log: every rule install, partition
// cut, heal and fsync-delay change, in script order. For a fixed seed
// and script the log is byte-identical across runs — the determinism
// pin the chaos tests assert.
func (p *Plan) Events() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, len(p.events))
	copy(out, p.events)
	return out
}

// Stats returns a snapshot of the injected-fault counts.
func (p *Plan) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// Partitioned reports whether src→dst traffic is currently blocked.
func (p *Plan) Partitioned(src, dst string) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.blocked[pair{src, dst}]
}

// Nodes returns the registered node IDs, sorted.
func (p *Plan) Nodes() []string {
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.hosts))
	seen := map[string]bool{}
	for _, id := range p.hosts {
		if !seen[id] {
			seen[id] = true
			out = append(out, id)
		}
	}
	sort.Strings(out)
	return out
}

func (p *Plan) logLocked(ev string) { p.events = append(p.events, ev) }

// verdict is one request's drawn fate.
type verdict struct {
	block   bool
	drop    bool
	errResp bool
	bodyErr bool
	delay   time.Duration
}

// decide draws src→dst's fate for one request. Blocked pairs never
// consume rule draws, so partition windows don't shift the pair's
// post-heal fault sequence relative to its traffic.
func (p *Plan) decide(src, dst string) verdict {
	p.mu.Lock()
	defer p.mu.Unlock()
	var v verdict
	if p.blocked[pair{src, dst}] {
		p.stats.Blocked++
		v.block = true
		return v
	}
	st := p.rules[pair{src, dst}]
	if st == nil {
		return v
	}
	r := st.rule
	if r.Drop > 0 && st.rng.Float64() < r.Drop {
		p.stats.Dropped++
		v.drop = true
		return v
	}
	if r.Error > 0 && st.rng.Float64() < r.Error {
		p.stats.Errored++
		v.errResp = true
		return v
	}
	if r.BodyErr > 0 && st.rng.Float64() < r.BodyErr {
		p.stats.BodyErrs++
		v.bodyErr = true
	}
	if r.Latency > 0 || r.Jitter > 0 {
		d := r.Latency
		if r.Jitter > 0 {
			d += time.Duration(st.rng.Uniform(-float64(r.Jitter), float64(r.Jitter)))
		}
		if d > 0 {
			p.stats.Delayed++
			v.delay = d
		}
	}
	return v
}

// resolve maps a request host to its node ID ("" when unregistered).
func (p *Plan) resolve(host string) string {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.hosts[host]
}

// Transport executes a plan on the HTTP traffic leaving one node. It is
// the injectable http.RoundTripper threaded through
// server.ClusterConfig.Client, so one Transport per node covers
// submission proxying, replication shipping and anti-entropy pulls.
type Transport struct {
	// Base carries requests that survive injection
	// (http.DefaultTransport when nil).
	Base http.RoundTripper

	plan *Plan
	node string
}

// NewTransport returns the Transport for one node's outbound traffic.
func NewTransport(p *Plan, node string) *Transport {
	return &Transport{plan: p, node: node}
}

// RoundTrip implements http.RoundTripper: resolve the destination,
// draw the pair's fate, and inject it.
func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	dst := t.plan.resolve(req.URL.Host)
	if dst == "" {
		return t.base().RoundTrip(req)
	}
	v := t.plan.decide(t.node, dst)
	switch {
	case v.block:
		closeBody(req)
		return nil, fmt.Errorf("chaos: partitioned %s->%s: connection refused", t.node, dst)
	case v.drop:
		closeBody(req)
		return nil, fmt.Errorf("chaos: dropped %s->%s: connection reset", t.node, dst)
	case v.errResp:
		closeBody(req)
		return &http.Response{
			Status:     "503 Service Unavailable (chaos)",
			StatusCode: http.StatusServiceUnavailable,
			Proto:      "HTTP/1.1",
			ProtoMajor: 1,
			ProtoMinor: 1,
			Header:     http.Header{"Content-Type": []string{"text/plain"}},
			Body:       io.NopCloser(strings.NewReader("chaos: injected error\n")),
			Request:    req,
		}, nil
	}
	if v.delay > 0 {
		time.Sleep(v.delay)
	}
	resp, err := t.base().RoundTrip(req)
	if err != nil || !v.bodyErr {
		return resp, err
	}
	// Mid-body break: let some bytes through, then reset. The handler on
	// the far side already ran — exactly the ambiguous-outcome failure
	// proxy routing must survive.
	allow := int64(1)
	if resp.ContentLength > 1 {
		allow = resp.ContentLength / 2
	}
	resp.Body = &truncatedBody{inner: resp.Body, remaining: allow, src: t.node, dst: dst}
	return resp, nil
}

func (t *Transport) base() http.RoundTripper {
	if t.Base != nil {
		return t.Base
	}
	return http.DefaultTransport
}

func closeBody(req *http.Request) {
	if req.Body != nil {
		req.Body.Close()
	}
}

// truncatedBody yields up to remaining bytes of the real body, then
// fails like a reset connection.
type truncatedBody struct {
	inner     io.ReadCloser
	remaining int64
	src, dst  string
}

func (b *truncatedBody) Read(p []byte) (int, error) {
	if b.remaining <= 0 {
		return 0, fmt.Errorf("chaos: connection %s->%s reset mid-body", b.src, b.dst)
	}
	if int64(len(p)) > b.remaining {
		p = p[:b.remaining]
	}
	n, err := b.inner.Read(p)
	b.remaining -= int64(n)
	if err == io.EOF {
		// The real body ended before the cut point; the reset surfaces on
		// the next read instead of a clean EOF.
		b.remaining = 0
		return n, nil
	}
	return n, err
}

func (b *truncatedBody) Close() error { return b.inner.Close() }
