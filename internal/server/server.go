// Package server is the crowd-benchmarking backend the paper sketches in
// §VI: the service behind the Play-Store app, accepting ACCUBENCH scores
// plus cooldown traces, estimating each submission's ambient server-side,
// applying the strict filters, and binning the surviving population per
// model.
//
// The HTTP JSON API:
//
//	POST /v1/submissions     — upload one benchmark run (202 on enqueue)
//	POST /v1/stream          — binary streaming batch ingest: a held-open
//	                           chunked POST carrying length-prefixed,
//	                           CRC-framed batch frames, acked per batch
//	                           (internal/wire; docs/WIRE.md)
//	GET  /v1/bins            — per-model bins: the exact-mode cache, or
//	                           sketch-derived bins in -bin-mode sketch
//	                           (docs/BINNING.md)
//	GET  /v1/sketch?model=M  — the model's population sketch, canonical
//	                           binary encoding (mergeable; internal/stats)
//	GET  /v1/devices/{id}    — one device's latest verdict
//	GET  /healthz            — liveness + persistence/recovery status
//	GET  /metrics            — Prometheus text exposition: the pipeline,
//	                           store, binning and WAL counters plus
//	                           per-route, per-stage, fsync and lock-wait
//	                           latency histograms (internal/obs;
//	                           reference in docs/METRICS.md)
//
// Uploads flow through the ingest pipeline (bounded, staged worker pool),
// land in the sharded store, and mark their model dirty for the debounced
// binning loop. The request path never runs the estimator or the
// clustering inline: submissions return as soon as the pipeline accepts
// the bytes, and bin reads are pure cache hits.
//
// With Config.DataDir set the store is durable: each record commits
// through internal/wal's segmented write-ahead log before becoming
// visible, a background snapshotter checkpoints the store and compacts
// the log, and New recovers the previous state on boot — the submission
// corpus survives crashes and deploys, which is what lets §VI's bins
// sharpen across sessions.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/hlc"
	"accubench/internal/ingest"
	"accubench/internal/obs"
	"accubench/internal/replication"
	"accubench/internal/store"
	"accubench/internal/wal"
	"accubench/internal/wire"
)

// Config parameterizes the backend.
type Config struct {
	// Shards is the store's stripe width (store.DefaultShards if <= 0).
	Shards int
	// Workers is the ingest pipeline's per-stage worker count.
	Workers int
	// QueueDepth is the ingest pipeline's per-stage queue capacity.
	QueueDepth int
	// Policy is the per-submission acceptance policy (crowd.DefaultPolicy
	// if zero).
	Policy crowd.Policy
	// MaxK bounds the discovered bin count per model.
	MaxK int
	// BinMode selects the bin-serving path: BinModeExact (default) keeps
	// the debounced full-recompute loop, BinModeSketch serves bins from
	// the store's streaming population sketches with no background loop
	// (docs/BINNING.md).
	BinMode string
	// BinDebounce is the binning loop's quiet period (exact mode).
	BinDebounce time.Duration
	// SubmitTimeout bounds how long a saturated POST /v1/submissions may
	// block before returning 503 (default 2 s).
	SubmitTimeout time.Duration
	// MaxBodyBytes caps upload size (default 1 MiB).
	MaxBodyBytes int64
	// DataDir, when non-empty, makes the store durable: submissions
	// commit through a write-ahead log in this directory before becoming
	// visible, a background snapshotter checkpoints the store, and New
	// recovers the previous state (snapshot + log replay) on boot. Empty
	// keeps the store purely in-memory.
	DataDir string
	// FsyncEvery is the WAL's group-commit window; <= 0 fsyncs every
	// commit synchronously. Only meaningful with DataDir set.
	FsyncEvery time.Duration
	// SnapshotEvery is how many commits accumulate between background
	// snapshots (wal.DefaultSnapshotEvery if <= 0).
	SnapshotEvery int
	// SegmentBytes is the WAL's segment-rotation threshold
	// (wal.DefaultSegmentBytes if <= 0).
	SegmentBytes int64
	// FsyncDelay, when non-nil, runs before every WAL fsync — the
	// slow-disk injection seam used by internal/chaos and crowdd's
	// -chaos-fsync-delay flag. Only meaningful with DataDir set.
	FsyncDelay func()
	// TraceWriter, when non-nil, enables per-submission tracing: every
	// accepted upload emits one JSON span per pipeline stage
	// (decode→filter→wal_append→store) to this writer, correlated by a
	// trace ID — crowdd's -trace flag wires it to stdout.
	TraceWriter io.Writer
	// Cluster, when non-nil, runs this node as one member of a
	// replicated, sharded cluster: submissions are HLC-stamped and
	// routed to their model's shard primary, commits wait for a replica
	// acknowledgement, and an anti-entropy loop keeps the nodes
	// converged (docs/CLUSTER.md).
	Cluster *ClusterConfig
}

// Server owns the store, the ingest pipeline and the binning loop, and
// serves the HTTP API over them.
type Server struct {
	cfg      Config
	store    *store.Store
	pipe     *ingest.Pipeline
	binner   *Binner
	mux      *http.ServeMux
	pers     *wal.Persister // nil when DataDir is empty
	recovery wal.Recovery

	// Cluster-mode members, all nil on a standalone node.
	clock      *hlc.Clock
	repl       *replication.Replicator
	rmet       *obs.ReplicationMetrics
	committer  *clusterCommitter
	peerClient *http.Client

	reg              *obs.Registry
	httpReqs         *obs.CounterVec
	httpDur          *obs.HistogramVec
	wmet             *obs.WireMetrics
	unsupportedMedia *obs.Counter
}

// New assembles the backend. Call Start before serving, Close to shut
// down gracefully.
func New(cfg Config) (*Server, error) {
	if cfg.Policy == (crowd.Policy{}) {
		cfg.Policy = crowd.DefaultPolicy()
	}
	if cfg.SubmitTimeout <= 0 {
		cfg.SubmitTimeout = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	// One registry for the whole stack: every component registers its
	// counters and histograms here, and GET /metrics renders it. The
	// store is instrumented before the WAL opens so boot recovery's
	// restores already move the shard gauges.
	reg := obs.NewRegistry("crowdd_")
	st := store.New(cfg.Shards)
	st.Instrument(reg)
	var pers *wal.Persister
	var recovery wal.Recovery
	if cfg.DataDir != "" {
		var err error
		pers, recovery, err = wal.Open(wal.PersistConfig{
			Dir:           cfg.DataDir,
			SegmentBytes:  cfg.SegmentBytes,
			FlushEvery:    cfg.FsyncEvery,
			SnapshotEvery: cfg.SnapshotEvery,
			Obs:           reg,
			FsyncDelay:    cfg.FsyncDelay,
		}, st)
		if err != nil {
			return nil, err
		}
	}
	switch cfg.BinMode {
	case "", BinModeExact, BinModeSketch:
	default:
		if pers != nil {
			pers.Close()
		}
		return nil, fmt.Errorf("server: unknown bin mode %q (want %q or %q)", cfg.BinMode, BinModeExact, BinModeSketch)
	}
	binner := NewBinner(BinnerConfig{
		Store:    st,
		MaxK:     cfg.MaxK,
		Mode:     cfg.BinMode,
		Debounce: cfg.BinDebounce,
		Obs:      reg,
	})
	s := &Server{cfg: cfg, store: st, binner: binner, mux: http.NewServeMux(), pers: pers, recovery: recovery, reg: reg}
	icfg := ingest.Config{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		Policy:     cfg.Policy,
		Store:      st,
		OnStored:   binner.MarkDirty,
		Obs:        reg,
		Tracer:     obs.NewTracer(cfg.TraceWriter),
	}
	if pers != nil {
		icfg.WAL = pers
	}
	if cfg.Cluster != nil {
		// The cluster committer wraps the WAL (or the bare store) with
		// HLC stamping; the pipeline commits through it so every record
		// carries its cluster-wide identity before it is durable.
		if err := s.initCluster(); err != nil {
			if pers != nil {
				pers.Close()
			}
			return nil, err
		}
		icfg.WAL = s.committer
	}
	pipe, err := ingest.New(icfg)
	if err != nil {
		if pers != nil {
			pers.Close()
		}
		return nil, err
	}
	s.pipe = pipe
	s.registerGauges()
	s.httpReqs = reg.CounterVec("http_requests_total", "requests served per route", "route")
	s.httpDur = reg.HistogramVec("http_request_seconds", "request latency per route", "route", obs.DurationBuckets)
	s.wmet = obs.NewWireMetrics(reg)
	s.unsupportedMedia = reg.Counter("http_unsupported_media_total", "uploads refused with 415 for an unexpected Content-Type")
	s.route("POST /v1/submissions", s.handleSubmit)
	s.route("POST "+wire.StreamPath, s.handleStream)
	s.route("GET /v1/bins", s.handleBins)
	s.route("GET /v1/sketch", s.handleSketch)
	s.route("GET /v1/devices/{id}", s.handleDevice)
	s.route("GET /healthz", s.handleHealthz)
	s.route("GET /metrics", s.handleMetrics)
	if cfg.Cluster != nil {
		s.registerClusterRoutes()
	}
	return s, nil
}

// route mounts a handler behind the per-route middleware: a request
// counter and a duration histogram, labeled by the route pattern.
func (s *Server) route(pattern string, h http.HandlerFunc) {
	reqs := s.httpReqs.With(pattern)
	dur := s.httpDur.With(pattern)
	s.mux.HandleFunc(pattern, func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		h(w, r)
		dur.Observe(time.Since(t0).Seconds())
		reqs.Inc()
	})
}

// registerGauges bridges the counters owned outside the registry — the
// binning loop, the store's aggregates, the WAL's activity and the boot
// recovery report — preserving every metric name the service has
// exposed since it first served /metrics.
func (s *Server) registerGauges() {
	s.reg.Func("bin_recomputes_total", "per-model bin recomputes", "counter", s.binner.Recomputes)
	s.reg.Func("store_records", "records held across all models", "gauge",
		func() uint64 { return uint64(s.store.Len()) })
	s.reg.Func("store_accepted_records", "stored records that survived the filters", "gauge",
		func() uint64 { return uint64(s.store.AcceptedLen()) })
	s.reg.Func("store_models", "distinct models with at least one record", "gauge",
		func() uint64 { return uint64(len(s.store.Models())) })
	if s.clock != nil {
		s.reg.Func("hlc_clamped_total", "remote HLC stamps truncated by the drift clamp", "counter",
			s.clock.Clamped)
	}
	if s.pers == nil {
		return
	}
	pc := func(read func(wal.PersistCounters) uint64) func() uint64 {
		return func() uint64 { return read(s.pers.Counters()) }
	}
	s.reg.Func("wal_appends_total", "records appended to the log this session", "counter",
		pc(func(c wal.PersistCounters) uint64 { return c.Log.Appends }))
	s.reg.Func("wal_fsyncs_total", "fsync calls (group commit batches appends)", "counter",
		pc(func(c wal.PersistCounters) uint64 { return c.Log.Fsyncs }))
	s.reg.Func("wal_bytes_total", "bytes appended, framing included", "counter",
		pc(func(c wal.PersistCounters) uint64 { return c.Log.Bytes }))
	s.reg.Func("wal_segments", "live segment files", "gauge",
		pc(func(c wal.PersistCounters) uint64 { return uint64(c.Log.Segments) }))
	s.reg.Func("wal_last_seq", "highest sequence number appended", "gauge",
		pc(func(c wal.PersistCounters) uint64 { return c.Log.LastSeq }))
	s.reg.Func("wal_snapshots_total", "snapshots cut this session", "counter",
		pc(func(c wal.PersistCounters) uint64 { return c.Snapshots }))
	s.reg.Func("wal_snapshot_failures_total", "background snapshot attempts that failed", "counter",
		pc(func(c wal.PersistCounters) uint64 { return c.SnapshotFailures }))
	s.reg.Func("wal_last_snapshot_seq", "sequence number the newest snapshot covers", "gauge",
		pc(func(c wal.PersistCounters) uint64 { return c.LastSnapshotSeq }))
	s.reg.Func("wal_restored_records", "records rebuilt by boot recovery", "gauge",
		func() uint64 { return uint64(s.recovery.Restored) })
	s.reg.Func("wal_restored_accepted_records", "restored records carrying an accepted verdict", "gauge",
		func() uint64 { return uint64(s.recovery.RestoredAccepted) })
	s.reg.Func("wal_replayed_total", "log-tail records replayed after the snapshot", "gauge",
		func() uint64 { return uint64(s.recovery.Replayed) })
}

// Start launches the ingest workers and the binning loop, and re-primes
// the binner over any models recovered from the data dir — restored bins
// come back without waiting for fresh submissions.
func (s *Server) Start(ctx context.Context) {
	s.pipe.Start(ctx)
	s.binner.Start()
	if s.repl != nil {
		s.repl.Start()
	}
	if s.pers != nil {
		for _, model := range s.store.Models() {
			s.binner.MarkDirty(model)
		}
	}
}

// Close shuts down gracefully, in durability order: drain the pipeline
// (every enqueued submission commits), run the binner's final recompute,
// then flush the WAL and cut a final snapshot — so a clean shutdown never
// needs replay on the next boot.
func (s *Server) Close() error {
	s.pipe.Close()
	if s.repl != nil {
		// After the drain: stop shipping and reconciling. Whatever a
		// peer has not received yet is repaired by its anti-entropy
		// pull on our next boot.
		s.repl.Close()
	}
	s.binner.Stop()
	if s.pers != nil {
		return s.pers.Close()
	}
	return nil
}

// Crash simulates a hard process kill for crash-recovery tests: the
// binning loop stops, and the WAL is abandoned without the final flush or
// snapshot. Records whose commit completed are already durable — exactly
// the set a real kill -9 would preserve. The caller hard-aborts the
// pipeline by cancelling the Start context.
func (s *Server) Crash() {
	s.binner.Stop()
	if s.repl != nil {
		s.repl.Close()
	}
	if s.pers != nil {
		s.pers.Crash()
	}
}

// Recovery reports what boot recovery restored from the data dir; ok is
// false when the server runs in-memory.
func (s *Server) Recovery() (wal.Recovery, bool) {
	return s.recovery, s.pers != nil
}

// PersistCounters exposes the WAL's activity counters; ok is false when
// the server runs in-memory.
func (s *Server) PersistCounters() (wal.PersistCounters, bool) {
	if s.pers == nil {
		return wal.PersistCounters{}, false
	}
	return s.pers.Counters(), true
}

// Handler returns the API handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the submission store (load generators, tests).
func (s *Server) Store() *store.Store { return s.store }

// Counters exposes the ingest pipeline's counters.
func (s *Server) Counters() ingest.Counters { return s.pipe.Counters() }

// Registry exposes the metrics registry backing GET /metrics.
func (s *Server) Registry() *obs.Registry { return s.reg }

// Binner exposes the binning loop.
func (s *Server) Binner() *Binner { return s.binner }

// submitResponse is the POST /v1/submissions reply body.
type submitResponse struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); !isJSONContent(ct) {
		s.unsupportedMedia.Inc()
		writeJSON(w, http.StatusUnsupportedMediaType, submitResponse{
			Status: "rejected",
			Error:  "POST /v1/submissions takes application/json; binary frames go to " + wire.StreamPath,
		})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, submitResponse{Status: "rejected", Error: "body too large"})
		return
	}
	if s.repl != nil {
		s.handleClusterSubmit(w, r, body)
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SubmitTimeout)
	defer cancel()
	switch err := s.pipe.Submit(ctx, body); {
	case err == nil:
		writeJSON(w, http.StatusAccepted, submitResponse{Status: "queued"})
	case errors.Is(err, ingest.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, submitResponse{Status: "shutting down", Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		// Saturated: the client should retry with backoff.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, submitResponse{Status: "overloaded", Error: "ingest queue full"})
	default:
		writeJSON(w, http.StatusServiceUnavailable, submitResponse{Status: "error", Error: err.Error()})
	}
}

// binsResponse is the GET /v1/bins reply body.
type binsResponse struct {
	Models []ModelBins `json:"models"`
}

func (s *Server) handleBins(w http.ResponseWriter, r *http.Request) {
	bins := s.binner.Bins()
	if model := r.URL.Query().Get("model"); model != "" {
		mb, ok := s.binner.ModelBins(model)
		if !ok {
			http.Error(w, fmt.Sprintf("no bins for model %q", model), http.StatusNotFound)
			return
		}
		bins = []ModelBins{mb}
	}
	maxAge := s.stampBinAges(bins)
	w.Header().Set(staleHeader, strconv.FormatInt(maxAge, 10))
	writeJSON(w, http.StatusOK, binsResponse{Models: bins})
}

// sketchContentType is the GET /v1/sketch media type: the canonical
// binary sketch encoding (stats.DecodeBinSketch reads it back).
const sketchContentType = "application/x-accubench-sketch"

// handleSketch serves one model's population sketch in its canonical
// binary encoding — the transfer a peer, dashboard or offline analysis
// merges with stats.BinSketch.Merge. Available in both bin modes: the
// store maintains sketches on the commit path regardless of how bins
// are served.
func (s *Server) handleSketch(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	if model == "" {
		http.Error(w, "missing ?model=", http.StatusBadRequest)
		return
	}
	enc, ok := s.store.SketchBinary(model)
	if !ok {
		http.Error(w, fmt.Sprintf("no sketch for model %q", model), http.StatusNotFound)
		return
	}
	w.Header().Set("Content-Type", sketchContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(enc)))
	w.Write(enc)
}

func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Device(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no submission from device %q", id), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	if s.pers == nil {
		fmt.Fprintln(w, "persistence: disabled")
		return
	}
	fmt.Fprintf(w, "persistence: %s\n", s.cfg.DataDir)
	rec := s.recovery
	fmt.Fprintf(w, "recovery: restored %d records (snapshot seq %d holding %d, wal replayed %d), truncated %d torn bytes\n",
		rec.Restored, rec.SnapshotSeq, rec.SnapshotRecords, rec.Replayed, rec.TruncatedBytes)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	s.reg.WritePrometheus(w)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
