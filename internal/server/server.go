// Package server is the crowd-benchmarking backend the paper sketches in
// §VI: the service behind the Play-Store app, accepting ACCUBENCH scores
// plus cooldown traces, estimating each submission's ambient server-side,
// applying the strict filters, and binning the surviving population per
// model.
//
// The HTTP JSON API:
//
//	POST /v1/submissions     — upload one benchmark run (202 on enqueue)
//	GET  /v1/bins            — cached per-model bins (never recomputes)
//	GET  /v1/devices/{id}    — one device's latest verdict
//	GET  /healthz            — liveness + persistence/recovery status
//	GET  /metrics            — plain-text counters (pipeline, store, WAL)
//
// Uploads flow through the ingest pipeline (bounded, staged worker pool),
// land in the sharded store, and mark their model dirty for the debounced
// binning loop. The request path never runs the estimator or the
// clustering inline: submissions return as soon as the pipeline accepts
// the bytes, and bin reads are pure cache hits.
//
// With Config.DataDir set the store is durable: each record commits
// through internal/wal's segmented write-ahead log before becoming
// visible, a background snapshotter checkpoints the store and compacts
// the log, and New recovers the previous state on boot — the submission
// corpus survives crashes and deploys, which is what lets §VI's bins
// sharpen across sessions.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/ingest"
	"accubench/internal/store"
	"accubench/internal/wal"
)

// Config parameterizes the backend.
type Config struct {
	// Shards is the store's stripe width (store.DefaultShards if <= 0).
	Shards int
	// Workers is the ingest pipeline's per-stage worker count.
	Workers int
	// QueueDepth is the ingest pipeline's per-stage queue capacity.
	QueueDepth int
	// Policy is the per-submission acceptance policy (crowd.DefaultPolicy
	// if zero).
	Policy crowd.Policy
	// MaxK bounds the discovered bin count per model.
	MaxK int
	// BinDebounce is the binning loop's quiet period.
	BinDebounce time.Duration
	// SubmitTimeout bounds how long a saturated POST /v1/submissions may
	// block before returning 503 (default 2 s).
	SubmitTimeout time.Duration
	// MaxBodyBytes caps upload size (default 1 MiB).
	MaxBodyBytes int64
	// DataDir, when non-empty, makes the store durable: submissions
	// commit through a write-ahead log in this directory before becoming
	// visible, a background snapshotter checkpoints the store, and New
	// recovers the previous state (snapshot + log replay) on boot. Empty
	// keeps the store purely in-memory.
	DataDir string
	// FsyncEvery is the WAL's group-commit window; <= 0 fsyncs every
	// commit synchronously. Only meaningful with DataDir set.
	FsyncEvery time.Duration
	// SnapshotEvery is how many commits accumulate between background
	// snapshots (wal.DefaultSnapshotEvery if <= 0).
	SnapshotEvery int
	// SegmentBytes is the WAL's segment-rotation threshold
	// (wal.DefaultSegmentBytes if <= 0).
	SegmentBytes int64
}

// Server owns the store, the ingest pipeline and the binning loop, and
// serves the HTTP API over them.
type Server struct {
	cfg      Config
	store    *store.Store
	pipe     *ingest.Pipeline
	binner   *Binner
	mux      *http.ServeMux
	pers     *wal.Persister // nil when DataDir is empty
	recovery wal.Recovery
}

// New assembles the backend. Call Start before serving, Close to shut
// down gracefully.
func New(cfg Config) (*Server, error) {
	if cfg.Policy == (crowd.Policy{}) {
		cfg.Policy = crowd.DefaultPolicy()
	}
	if cfg.SubmitTimeout <= 0 {
		cfg.SubmitTimeout = 2 * time.Second
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = 1 << 20
	}
	st := store.New(cfg.Shards)
	var pers *wal.Persister
	var recovery wal.Recovery
	if cfg.DataDir != "" {
		var err error
		pers, recovery, err = wal.Open(wal.PersistConfig{
			Dir:           cfg.DataDir,
			SegmentBytes:  cfg.SegmentBytes,
			FlushEvery:    cfg.FsyncEvery,
			SnapshotEvery: cfg.SnapshotEvery,
		}, st)
		if err != nil {
			return nil, err
		}
	}
	binner := NewBinner(BinnerConfig{
		Store:    st,
		MaxK:     cfg.MaxK,
		Debounce: cfg.BinDebounce,
	})
	icfg := ingest.Config{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		Policy:     cfg.Policy,
		Store:      st,
		OnStored:   binner.MarkDirty,
	}
	if pers != nil {
		icfg.WAL = pers
	}
	pipe, err := ingest.New(icfg)
	if err != nil {
		if pers != nil {
			pers.Close()
		}
		return nil, err
	}
	s := &Server{cfg: cfg, store: st, pipe: pipe, binner: binner, mux: http.NewServeMux(), pers: pers, recovery: recovery}
	s.mux.HandleFunc("POST /v1/submissions", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/bins", s.handleBins)
	s.mux.HandleFunc("GET /v1/devices/{id}", s.handleDevice)
	s.mux.HandleFunc("GET /healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /metrics", s.handleMetrics)
	return s, nil
}

// Start launches the ingest workers and the binning loop, and re-primes
// the binner over any models recovered from the data dir — restored bins
// come back without waiting for fresh submissions.
func (s *Server) Start(ctx context.Context) {
	s.pipe.Start(ctx)
	s.binner.Start()
	if s.pers != nil {
		for _, model := range s.store.Models() {
			s.binner.MarkDirty(model)
		}
	}
}

// Close shuts down gracefully, in durability order: drain the pipeline
// (every enqueued submission commits), run the binner's final recompute,
// then flush the WAL and cut a final snapshot — so a clean shutdown never
// needs replay on the next boot.
func (s *Server) Close() error {
	s.pipe.Close()
	s.binner.Stop()
	if s.pers != nil {
		return s.pers.Close()
	}
	return nil
}

// Crash simulates a hard process kill for crash-recovery tests: the
// binning loop stops, and the WAL is abandoned without the final flush or
// snapshot. Records whose commit completed are already durable — exactly
// the set a real kill -9 would preserve. The caller hard-aborts the
// pipeline by cancelling the Start context.
func (s *Server) Crash() {
	s.binner.Stop()
	if s.pers != nil {
		s.pers.Crash()
	}
}

// Recovery reports what boot recovery restored from the data dir; ok is
// false when the server runs in-memory.
func (s *Server) Recovery() (wal.Recovery, bool) {
	return s.recovery, s.pers != nil
}

// PersistCounters exposes the WAL's activity counters; ok is false when
// the server runs in-memory.
func (s *Server) PersistCounters() (wal.PersistCounters, bool) {
	if s.pers == nil {
		return wal.PersistCounters{}, false
	}
	return s.pers.Counters(), true
}

// Handler returns the API handler.
func (s *Server) Handler() http.Handler { return s.mux }

// Store exposes the submission store (load generators, tests).
func (s *Server) Store() *store.Store { return s.store }

// Counters exposes the ingest pipeline's counters.
func (s *Server) Counters() ingest.Counters { return s.pipe.Counters() }

// Binner exposes the binning loop.
func (s *Server) Binner() *Binner { return s.binner }

// submitResponse is the POST /v1/submissions reply body.
type submitResponse struct {
	Status string `json:"status"`
	Error  string `json:"error,omitempty"`
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes))
	if err != nil {
		writeJSON(w, http.StatusRequestEntityTooLarge, submitResponse{Status: "rejected", Error: "body too large"})
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SubmitTimeout)
	defer cancel()
	switch err := s.pipe.Submit(ctx, body); {
	case err == nil:
		writeJSON(w, http.StatusAccepted, submitResponse{Status: "queued"})
	case errors.Is(err, ingest.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, submitResponse{Status: "shutting down", Error: err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		// Saturated: the client should retry with backoff.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, submitResponse{Status: "overloaded", Error: "ingest queue full"})
	default:
		writeJSON(w, http.StatusServiceUnavailable, submitResponse{Status: "error", Error: err.Error()})
	}
}

// binsResponse is the GET /v1/bins reply body.
type binsResponse struct {
	Models []ModelBins `json:"models"`
}

func (s *Server) handleBins(w http.ResponseWriter, r *http.Request) {
	bins := s.binner.Bins()
	if model := r.URL.Query().Get("model"); model != "" {
		mb, ok := s.binner.ModelBins(model)
		if !ok {
			http.Error(w, fmt.Sprintf("no bins for model %q", model), http.StatusNotFound)
			return
		}
		bins = []ModelBins{mb}
	}
	writeJSON(w, http.StatusOK, binsResponse{Models: bins})
}

func (s *Server) handleDevice(w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	rec, ok := s.store.Device(id)
	if !ok {
		http.Error(w, fmt.Sprintf("no submission from device %q", id), http.StatusNotFound)
		return
	}
	writeJSON(w, http.StatusOK, rec)
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	fmt.Fprintln(w, "ok")
	if s.pers == nil {
		fmt.Fprintln(w, "persistence: disabled")
		return
	}
	fmt.Fprintf(w, "persistence: %s\n", s.cfg.DataDir)
	rec := s.recovery
	fmt.Fprintf(w, "recovery: restored %d records (snapshot seq %d holding %d, wal replayed %d), truncated %d torn bytes\n",
		rec.Restored, rec.SnapshotSeq, rec.SnapshotRecords, rec.Replayed, rec.TruncatedBytes)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	c := s.pipe.Counters()
	w.Header().Set("Content-Type", "text/plain; charset=utf-8")
	var b []byte
	appendMetric := func(name string, v uint64) {
		b = fmt.Appendf(b, "crowdd_%s %d\n", name, v)
	}
	appendMetric("received_total", c.Received)
	appendMetric("decoded_total", c.Decoded)
	appendMetric("decode_errors_total", c.DecodeErrors)
	appendMetric("evaluated_total", c.Evaluated)
	appendMetric("estimate_failures_total", c.EstimateFailures)
	appendMetric("accepted_total", c.Accepted)
	appendMetric("rejected_total", c.Rejected)
	appendMetric("stored_total", c.Stored)
	appendMetric("aborted_total", c.Aborted)
	appendMetric("wal_appended_total", c.WALAppended)
	appendMetric("wal_failed_total", c.WALFailed)
	appendMetric("bin_recomputes_total", s.binner.Recomputes())
	appendMetric("store_records", uint64(s.store.Len()))
	appendMetric("store_accepted_records", uint64(s.store.AcceptedLen()))
	appendMetric("store_models", uint64(len(s.store.Models())))
	if s.pers != nil {
		pc := s.pers.Counters()
		appendMetric("wal_appends_total", pc.Log.Appends)
		appendMetric("wal_fsyncs_total", pc.Log.Fsyncs)
		appendMetric("wal_bytes_total", pc.Log.Bytes)
		appendMetric("wal_segments", uint64(pc.Log.Segments))
		appendMetric("wal_last_seq", pc.Log.LastSeq)
		appendMetric("wal_snapshots_total", pc.Snapshots)
		appendMetric("wal_snapshot_failures_total", pc.SnapshotFailures)
		appendMetric("wal_last_snapshot_seq", pc.LastSnapshotSeq)
		appendMetric("wal_restored_records", uint64(s.recovery.Restored))
		appendMetric("wal_restored_accepted_records", uint64(s.recovery.RestoredAccepted))
		appendMetric("wal_replayed_total", uint64(s.recovery.Replayed))
	}
	w.Write(b)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}
