package server_test

import (
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"strings"
	"testing"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/obs"
	"accubench/internal/server"
	"accubench/internal/stats"
	"accubench/internal/store"
	"accubench/internal/testkit"
	"accubench/internal/units"
)

// seedPopulation writes a §VI-style crowd into the store: per model, a
// few well-separated true bins, each device's observed score biased by
// the thermal slope against its ambient, plus a sprinkle of rejected
// submissions. Returns the per-model accepted device count.
func seedPopulation(t *testing.T, st *store.Store, models []string, bins [][]float64, slope float64, perBin int, seed int64) map[string]int {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	accepted := make(map[string]int)
	for mi, model := range models {
		for bi, base := range bins[mi] {
			for d := 0; d < perBin; d++ {
				amb := 20 + rng.Float64()*10
				score := base*(1+0.002*(rng.Float64()-0.5)) + slope*(amb-26)
				r := store.Record{
					Device:           fmt.Sprintf("%s-b%d-d%03d", model, bi, d),
					Model:            model,
					Score:            score,
					EstimatedAmbient: units.Celsius(amb),
					Accepted:         true,
				}
				if _, err := st.Put(r); err != nil {
					t.Fatal(err)
				}
				accepted[model]++
			}
		}
		// Rejected submissions count toward Submissions, never the bins.
		for d := 0; d < 5; d++ {
			r := store.Record{
				Device:       fmt.Sprintf("%s-rej-%d", model, d),
				Model:        model,
				Score:        1,
				Accepted:     false,
				RejectReason: "test",
			}
			if _, err := st.Put(r); err != nil {
				t.Fatal(err)
			}
		}
	}
	return accepted
}

// TestSketchBinsMatchExactGolden is the tentpole's tolerance golden:
// over seed-style populations, the sketch path must agree with the
// exact batch binner on the population tallies, the discovered bin
// count, the per-bin device counts, and — within the sketch's cell
// resolution — the centroids and the ambient slope (tolerance contract
// in docs/BINNING.md).
func TestSketchBinsMatchExactGolden(t *testing.T) {
	models := []string{"Nexus 5", "Pixel 2", "Galaxy S7"}
	bins := [][]float64{
		{900, 1000, 1100}, // three bins, 10% apart
		{950, 1150},       // two bins
		{1000},            // single bin
	}
	const slope = -2.0
	st := store.New(8)
	accepted := seedPopulation(t, st, models, bins, slope, 40, 41)

	exact := server.NewBinner(server.BinnerConfig{Store: st})
	defer exact.Stop()
	sketch := server.NewBinner(server.BinnerConfig{Store: st, Mode: server.BinModeSketch})
	defer sketch.Stop()

	for mi, model := range models {
		em := exact.Refresh(model)
		sm, ok := sketch.ModelBins(model)
		if !ok {
			t.Fatalf("%s: no sketch bins", model)
		}
		if sm.Submissions != em.Submissions || em.Submissions != accepted[model]+5 {
			t.Errorf("%s: Submissions sketch=%d exact=%d want=%d", model, sm.Submissions, em.Submissions, accepted[model]+5)
		}
		if sm.Accepted != em.Accepted || em.Accepted != accepted[model] {
			t.Errorf("%s: Accepted sketch=%d exact=%d want=%d", model, sm.Accepted, em.Accepted, accepted[model])
		}
		if want := len(bins[mi]); em.BinCount != want || sm.BinCount != want {
			t.Fatalf("%s: BinCount sketch=%d exact=%d want=%d", model, sm.BinCount, em.BinCount, want)
		}
		for c := range em.Centroids {
			rel := math.Abs(sm.Centroids[c]-em.Centroids[c]) / em.Centroids[c]
			if rel > 0.005 {
				t.Errorf("%s bin %d: centroid sketch=%g exact=%g (rel %g > 0.5%%)", model, c, sm.Centroids[c], em.Centroids[c], rel)
			}
			if sm.Sizes[c] != em.Sizes[c] {
				t.Errorf("%s bin %d: size sketch=%d exact=%d", model, c, sm.Sizes[c], em.Sizes[c])
			}
		}
		if math.Abs(sm.AmbientSlope-em.AmbientSlope) > 0.2 {
			t.Errorf("%s: slope sketch=%g exact=%g (|diff| > 0.2)", model, sm.AmbientSlope, em.AmbientSlope)
		}
	}
}

// TestSketchBinsFreshWithoutDebounce pins sketch mode's headline
// behavior end-to-end: with the exact loop's debounce cranked to an
// hour, a sketch-mode server still serves every committed submission on
// the very next bins read — no background loop in the path.
func TestSketchBinsFreshWithoutDebounce(t *testing.T) {
	srv, base := startStandalone(t, func(c *server.Config) {
		c.BinMode = server.BinModeSketch
		c.BinDebounce = time.Hour
	})
	client := &http.Client{}
	policy := crowd.DefaultPolicy()

	const n = 8
	for i := 0; i < n; i++ {
		raw := testkit.AcceptedPayload(t, policy, fmt.Sprintf("fresh-%d", i), 1000+10*float64(i), 25)
		resp := postSubmission(t, client, base, raw)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
	}
	waitForStored(t, client, base, n)

	mb, ok := srv.Binner().ModelBins("Nexus 5")
	if !ok {
		t.Fatal("no bins immediately after commit")
	}
	if mb.Accepted != n {
		t.Fatalf("Accepted = %d immediately after commit, want %d (sketch mode must not wait for a debounce)", mb.Accepted, n)
	}
	if srv.Binner().Mode() != server.BinModeSketch {
		t.Fatalf("Mode = %q, want sketch", srv.Binner().Mode())
	}

	// One more submission must be visible on the next read too.
	raw := testkit.AcceptedPayload(t, policy, "fresh-extra", 1200, 25)
	if resp := postSubmission(t, client, base, raw); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("extra submission: status %d", resp.StatusCode)
	}
	waitForStored(t, client, base, n+1)
	if mb, _ := srv.Binner().ModelBins("Nexus 5"); mb.Accepted != n+1 {
		t.Fatalf("Accepted = %d after extra commit, want %d", mb.Accepted, n+1)
	}
}

// TestSketchEndpoint round-trips GET /v1/sketch: the served bytes must
// decode with stats.DecodeBinSketch and agree with the store's sketch.
func TestSketchEndpoint(t *testing.T) {
	srv, base := startStandalone(t)
	client := &http.Client{}
	policy := crowd.DefaultPolicy()
	const n = 6
	for i := 0; i < n; i++ {
		raw := testkit.AcceptedPayload(t, policy, fmt.Sprintf("sk-%d", i), 1000+5*float64(i), 24)
		if resp := postSubmission(t, client, base, raw); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submission %d: status %d", i, resp.StatusCode)
		}
	}
	waitForStored(t, client, base, n)

	resp, err := client.Get(base + "/v1/sketch?model=Nexus+5")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/sketch: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-accubench-sketch" {
		t.Fatalf("Content-Type = %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	sk, err := stats.DecodeBinSketch(body)
	if err != nil {
		t.Fatalf("DecodeBinSketch: %v", err)
	}
	if sk.Accepted() != n || sk.Records() != n {
		t.Fatalf("decoded sketch: accepted=%d records=%d, want %d,%d", sk.Accepted(), sk.Records(), n, n)
	}
	ref, _, ok := srv.Store().SketchSnapshot("Nexus 5")
	if !ok || sk.Digest() != ref.Digest() {
		t.Fatalf("served sketch digest differs from store (ok=%v)", ok)
	}

	for path, want := range map[string]int{
		"/v1/sketch":               http.StatusBadRequest,
		"/v1/sketch?model=missing": http.StatusNotFound,
	} {
		resp, err := client.Get(base + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != want {
			t.Errorf("GET %s: status %d, want %d", path, resp.StatusCode, want)
		}
	}
}

// TestDriftGaugesExposed drives two recomputes with a shifted population
// and asserts the drift series appear in the Prometheus exposition.
func TestDriftGaugesExposed(t *testing.T) {
	st := store.New(4)
	reg := obs.NewRegistry("crowdd_")
	b := server.NewBinner(server.BinnerConfig{Store: st, Obs: reg})
	defer b.Stop()

	put := func(dev string, score float64) {
		t.Helper()
		if _, err := st.Put(store.Record{
			Device: dev, Model: "m", Score: score,
			EstimatedAmbient: 25, Accepted: true,
		}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 10; i++ {
		put(fmt.Sprintf("lo-%d", i), 900+float64(i))
		put(fmt.Sprintf("hi-%d", i), 1100+float64(i))
	}
	b.Refresh("m")
	// Shift the population: every device resubmits ~1% higher.
	for i := 0; i < 10; i++ {
		put(fmt.Sprintf("lo-%d", i), 910+float64(i))
		put(fmt.Sprintf("hi-%d", i), 1111+float64(i))
	}
	b.Refresh("m")

	var sb strings.Builder
	reg.WritePrometheus(&sb)
	exp := sb.String()
	for _, series := range []string{
		`crowdd_drift_bin_count{model="m"}`,
		`crowdd_drift_centroid_shift_ppm{model="m"}`,
		"crowdd_drift_bin_count_changes_total",
	} {
		if !strings.Contains(exp, series) {
			t.Errorf("exposition missing %s", series)
		}
	}
	// ~1% shift ≈ 10000 ppm; require the gauge moved off zero into a
	// plausible band rather than pinning an exact value.
	var ppm int64
	for _, line := range strings.Split(exp, "\n") {
		if strings.HasPrefix(line, `crowdd_drift_centroid_shift_ppm{model="m"}`) {
			fmt.Sscanf(line[strings.LastIndex(line, " ")+1:], "%d", &ppm)
		}
	}
	if ppm < 5000 || ppm > 20000 {
		t.Errorf("drift_centroid_shift_ppm = %d, want ~10000 after a 1%% shift", ppm)
	}
}

// TestBinsSortedCacheReused pins the Bins() satellite: repeated reads
// between recomputes reuse one sorted snapshot (same backing identity
// is not observable, so assert behavior: order correct, mutation of the
// returned slice does not leak into later reads).
func TestBinsSortedCacheReused(t *testing.T) {
	st := store.New(4)
	b := server.NewBinner(server.BinnerConfig{Store: st})
	defer b.Stop()
	for _, model := range []string{"zeta", "alpha", "mid"} {
		for i := 0; i < 4; i++ {
			if _, err := st.Put(store.Record{
				Device: fmt.Sprintf("%s-%d", model, i), Model: model,
				Score: 1000, EstimatedAmbient: 25, Accepted: true,
			}); err != nil {
				t.Fatal(err)
			}
		}
		b.Refresh(model)
	}
	first := b.Bins()
	want := []string{"alpha", "mid", "zeta"}
	for i, mb := range first {
		if mb.Model != want[i] {
			t.Fatalf("Bins()[%d] = %s, want %s", i, mb.Model, want[i])
		}
	}
	first[0].Model = "clobbered"
	second := b.Bins()
	if second[0].Model != "alpha" {
		t.Fatal("mutating a returned Bins() slice leaked into the cache")
	}
	// After a recompute the cache refreshes and the new model appears.
	if _, err := st.Put(store.Record{Device: "new-0", Model: "aaa", Score: 1000, EstimatedAmbient: 25, Accepted: true}); err != nil {
		t.Fatal(err)
	}
	b.Refresh("aaa")
	third := b.Bins()
	if len(third) != 4 || third[0].Model != "aaa" {
		t.Fatalf("Bins() after recompute = %v", third)
	}
}
