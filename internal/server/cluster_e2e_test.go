package server_test

import (
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/url"
	"reflect"
	"strconv"
	"sync"
	"testing"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/server"
	"accubench/internal/testkit"
)

// Cluster e2e tests: several real Servers on real listeners (the peer
// URLs must exist before server.New, so httptest's late-bound URL does
// not work here), talking to each other over HTTP exactly as deployed
// nodes would.

// clusterNode is one booted member: its Server plus the HTTP plumbing
// serving it.
type clusterNode struct {
	id  string
	url string
	srv *server.Server

	ln   net.Listener
	hsrv *http.Server

	killed bool
	mu     sync.Mutex
}

// kill simulates a hard node loss: the listener drops (connections
// refuse) and the server crashes without any graceful flush.
func (n *clusterNode) kill() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed {
		return
	}
	n.killed = true
	n.hsrv.Close()
	n.ln.Close()
	n.srv.Crash()
}

func (n *clusterNode) stop() {
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.killed {
		return
	}
	n.killed = true
	n.hsrv.Close()
	n.ln.Close()
	n.srv.Close()
}

// startCluster boots n cluster members with test-fast timings. mut, when
// non-nil, adjusts each node's config before New.
func startCluster(t *testing.T, n int, mut func(i int, cfg *server.Config)) []*clusterNode {
	t.Helper()
	lns := make([]net.Listener, n)
	urls := make([]string, n)
	ids := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		lns[i] = ln
		urls[i] = "http://" + ln.Addr().String()
		ids[i] = fmt.Sprintf("n%d", i+1)
	}
	nodes := make([]*clusterNode, n)
	for i := range nodes {
		peers := make(map[string]string)
		for j := range lns {
			if j != i {
				peers[ids[j]] = urls[j]
			}
		}
		cfg := server.Config{
			BinDebounce: time.Millisecond,
			Cluster: &server.ClusterConfig{
				NodeID:            ids[i],
				Peers:             peers,
				AckTimeout:        2 * time.Second,
				ShipInterval:      2 * time.Millisecond,
				ReconcileInterval: 50 * time.Millisecond,
			},
		}
		if mut != nil {
			mut(i, &cfg)
		}
		srv, err := server.New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		srv.Start(context.Background())
		hsrv := &http.Server{Handler: srv.Handler()}
		go hsrv.Serve(lns[i])
		nodes[i] = &clusterNode{id: ids[i], url: urls[i], srv: srv, ln: lns[i], hsrv: hsrv}
	}
	t.Cleanup(func() {
		for _, node := range nodes {
			node.stop()
		}
	})
	return nodes
}

// postAccepted uploads one accepted payload and fails the test unless
// the cluster acknowledges it with 202 committed.
func postAccepted(t *testing.T, client *http.Client, node *clusterNode, device string, score float64) {
	t.Helper()
	policy := crowd.DefaultPolicy()
	raw := testkit.AcceptedPayload(t, policy, device, score, 25)
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := postSubmission(t, client, node.url, raw)
		code := resp.StatusCode
		body := drainBody(t, resp)
		if code == http.StatusAccepted {
			return
		}
		// 503 means "retry": backpressure or a transient replication gap.
		if code != http.StatusServiceUnavailable || time.Now().After(deadline) {
			t.Fatalf("POST %s to %s = %d, want 202 (%s)", device, node.id, code, body)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

type digestEntry struct {
	Records int    `json:"records"`
	Digest  uint64 `json:"digest"`
	MaxWall int64  `json:"max_hlc_wall"`
}

func fetchDigest(t *testing.T, client *http.Client, base string) (map[string]digestEntry, error) {
	t.Helper()
	resp, err := client.Get(base + "/v1/digest")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	var d map[string]digestEntry
	if err := json.NewDecoder(resp.Body).Decode(&d); err != nil {
		return nil, err
	}
	return d, nil
}

// waitConverged polls until every given node serves an identical,
// non-empty digest map.
func waitConverged(t *testing.T, client *http.Client, nodes []*clusterNode, window time.Duration) {
	t.Helper()
	deadline := time.Now().Add(window)
	for {
		digests := make([]map[string]digestEntry, 0, len(nodes))
		for _, node := range nodes {
			d, err := fetchDigest(t, client, node.url)
			if err == nil {
				digests = append(digests, d)
			}
		}
		ok := len(digests) == len(nodes)
		for i := 1; i < len(digests) && ok; i++ {
			ok = reflect.DeepEqual(digests[0], digests[i])
		}
		if ok && len(digests) > 0 && len(digests[0]) > 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("digests did not converge within %v: %v", window, digests)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

func fetchModelBins(t *testing.T, client *http.Client, base, model string) (server.ModelBins, string, bool) {
	t.Helper()
	resp, err := client.Get(base + "/v1/bins?model=" + url.QueryEscape(model))
	if err != nil {
		t.Fatal(err)
	}
	stale := resp.Header.Get("X-Bins-Staleness-Ms")
	if resp.StatusCode != http.StatusOK {
		drainBody(t, resp)
		return server.ModelBins{}, stale, false
	}
	var out struct {
		Models []server.ModelBins `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(out.Models) == 0 {
		return server.ModelBins{}, stale, false
	}
	return out.Models[0], stale, true
}

// binKey is the portion of a bins reply that must be bit-identical on
// every replica: population, discovered bins, centroids, sizes, slope.
// Revision and age legitimately differ per node.
func binKey(mb server.ModelBins) string {
	mb.Revision = 0
	mb.AgeMS = 0
	b, _ := json.Marshal(mb)
	return string(b)
}

// TestClusterReplicatesAndSurvivesKill is the headline guarantee: spray
// acknowledged submissions across a 3-node cluster, hard-kill one node
// mid-run, and every acknowledged submission must still be present on
// every survivor with bit-identical bins.
func TestClusterReplicatesAndSurvivesKill(t *testing.T) {
	nodes := startCluster(t, 3, nil)
	client := &http.Client{Timeout: 5 * time.Second}

	var acked []string
	for i := 0; i < 24; i++ {
		dev := fmt.Sprintf("kill-%d", i)
		postAccepted(t, client, nodes[i%3], dev, 1000+float64(i%8)*40)
		acked = append(acked, dev)
	}

	nodes[2].kill()

	for i := 24; i < 48; i++ {
		dev := fmt.Sprintf("kill-%d", i)
		postAccepted(t, client, nodes[i%2], dev, 1000+float64(i%8)*40)
		acked = append(acked, dev)
	}

	survivors := nodes[:2]
	waitConverged(t, client, survivors, 15*time.Second)

	// Zero acknowledged-submission loss: every acked device answers on
	// every survivor.
	for _, dev := range acked {
		for _, node := range survivors {
			resp, err := client.Get(node.url + "/v1/devices/" + dev)
			if err != nil {
				t.Fatal(err)
			}
			code := resp.StatusCode
			drainBody(t, resp)
			if code != http.StatusOK {
				t.Errorf("acked device %s missing from %s (HTTP %d)", dev, node.id, code)
			}
		}
	}

	// Every surviving record carries a cluster identity: an origin node
	// and a non-zero HLC stamp.
	for _, rec := range survivors[0].srv.Store().Model("Nexus 5") {
		if rec.Origin == "" || rec.Stamp().IsZero() {
			t.Fatalf("record %s has no cluster identity: origin %q stamp %v", rec.Device, rec.Origin, rec.Stamp())
		}
	}

	// Bit-identical bins on the survivors once the binners settle.
	deadline := time.Now().Add(10 * time.Second)
	for {
		a, _, okA := fetchModelBins(t, client, survivors[0].url, "Nexus 5")
		b, _, okB := fetchModelBins(t, client, survivors[1].url, "Nexus 5")
		if okA && okB && a.Submissions == len(acked) && binKey(a) == binKey(b) {
			if a.BinCount == 0 {
				t.Fatalf("converged bins discovered no clusters over %d devices", a.Accepted)
			}
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bins did not become identical: %+v vs %+v", a, b)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// TestClusterProxyRouting pins proxy mode: a submission posted to a
// non-primary node is forwarded server-side, acknowledged 202, and the
// forward shows up in the non-primary's metrics.
func TestClusterProxyRouting(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	client := &http.Client{Timeout: 5 * time.Second}

	primary := nodes[0].srv.Replicator().Primary("Nexus 5")
	var nonPrimary *clusterNode
	for _, node := range nodes {
		if node.id != primary {
			nonPrimary = node
		}
	}
	postAccepted(t, client, nonPrimary, "proxy-0", 1200)

	m := scrapeMetrics(t, client, nonPrimary.url)
	if m["crowdd_repl_forwarded_total"] != 1 {
		t.Errorf("crowdd_repl_forwarded_total on non-primary = %d, want 1", m["crowdd_repl_forwarded_total"])
	}
	waitConverged(t, client, nodes, 10*time.Second)
}

// TestClusterRedirectRouting pins redirect mode: a non-primary node
// answers 307 with the primary's submissions URL, and the redirected
// POST commits.
func TestClusterRedirectRouting(t *testing.T) {
	nodes := startCluster(t, 2, func(i int, cfg *server.Config) {
		cfg.Cluster.RouteMode = server.RouteRedirect
	})
	client := &http.Client{
		Timeout:       5 * time.Second,
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}

	primary := nodes[0].srv.Replicator().Primary("Nexus 5")
	var primaryNode, nonPrimary *clusterNode
	for _, node := range nodes {
		if node.id == primary {
			primaryNode = node
		} else {
			nonPrimary = node
		}
	}

	raw := testkit.AcceptedPayload(t, crowd.DefaultPolicy(), "redir-0", 1200, 25)
	resp := postSubmission(t, client, nonPrimary.url, raw)
	loc := resp.Header.Get("Location")
	code := resp.StatusCode
	drainBody(t, resp)
	if code != http.StatusTemporaryRedirect {
		t.Fatalf("POST to non-primary in redirect mode = %d, want 307", code)
	}
	want := primaryNode.url + "/v1/submissions"
	if loc != want {
		t.Fatalf("redirect Location = %q, want %q", loc, want)
	}
	m := scrapeMetrics(t, client, nonPrimary.url)
	if m["crowdd_repl_redirected_total"] != 1 {
		t.Errorf("crowdd_repl_redirected_total = %d, want 1", m["crowdd_repl_redirected_total"])
	}

	// Following the redirect by hand commits on the primary.
	postAccepted(t, client, primaryNode, "redir-0", 1200)
	waitConverged(t, client, nodes, 10*time.Second)
}

// TestClusterBinsStalenessBound pins the replica read contract: with
// -max-staleness set, a served bins entry is never older than the bound
// — an over-age cache recomputes before the response is written.
func TestClusterBinsStalenessBound(t *testing.T) {
	const bound = 75 * time.Millisecond
	nodes := startCluster(t, 2, func(i int, cfg *server.Config) {
		cfg.Cluster.MaxStaleness = bound
		// A long debounce would leave the cache stale for seconds without
		// the serve-time bound; the test relies on the bound alone.
		cfg.BinDebounce = 10 * time.Millisecond
	})
	client := &http.Client{Timeout: 5 * time.Second}

	for i := 0; i < 6; i++ {
		postAccepted(t, client, nodes[0], fmt.Sprintf("stale-%d", i), 1000+float64(i)*30)
	}
	waitConverged(t, client, nodes, 10*time.Second)

	for _, node := range nodes {
		// Let the cached bins age well past the bound, then read.
		time.Sleep(3 * bound)
		mb, stale, ok := fetchModelBins(t, client, node.url, "Nexus 5")
		if !ok {
			t.Fatalf("no bins served on %s", node.id)
		}
		if mb.AgeMS > bound.Milliseconds() {
			t.Errorf("%s served bins aged %dms, staleness bound is %dms", node.id, mb.AgeMS, bound.Milliseconds())
		}
		n, err := strconv.ParseInt(stale, 10, 64)
		if err != nil {
			t.Fatalf("%s X-Bins-Staleness-Ms = %q: %v", node.id, stale, err)
		}
		if n > bound.Milliseconds() {
			t.Errorf("%s staleness header %dms exceeds bound %dms", node.id, n, bound.Milliseconds())
		}
	}
}
