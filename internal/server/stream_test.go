package server_test

import (
	"bytes"
	"context"
	"fmt"
	"net/http"
	"net/http/httptest"
	"reflect"
	"testing"
	"time"

	"accubench/internal/chaos"
	"accubench/internal/crowd"
	"accubench/internal/server"
	"accubench/internal/testkit"
	"accubench/internal/wire"
)

// wireAccepted builds a wire submission whose cooldown the default
// policy accepts, mirroring testkit.AcceptedPayload on the JSON side.
func wireAccepted(t *testing.T, device string, score float64) wire.Submission {
	t.Helper()
	samples := testkit.AcceptedCooldown(t, crowd.DefaultPolicy(), 25)
	ws := wire.Submission{
		Device:   device,
		Model:    "Nexus 5",
		Score:    score,
		Cooldown: make([]wire.Point, len(samples)),
	}
	for i, s := range samples {
		ws.Cooldown[i] = wire.Point{AtSeconds: s.At.Seconds(), TempC: float64(s.Reading)}
	}
	return ws
}

// startStandalone boots one in-memory server on an httptest listener.
func startStandalone(t *testing.T, mut ...func(*server.Config)) (*server.Server, string) {
	t.Helper()
	cfg := server.Config{BinDebounce: time.Millisecond}
	for _, m := range mut {
		m(&cfg)
	}
	srv, err := server.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	return srv, ts.URL
}

// TestStreamIngestStandalone drives several batches down one persistent
// stream — accepts, a reject, an invalid entry — and asserts the acks,
// the pipeline counters (conservation laws included), the store, and
// the wire metric family.
func TestStreamIngestStandalone(t *testing.T) {
	srv, base := startStandalone(t)
	client := &http.Client{}
	st, err := wire.OpenStream(client, base, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Batch 1: three clean accepts.
	batch1 := []wire.Submission{
		wireAccepted(t, "ws-0", 1000),
		wireAccepted(t, "ws-1", 1040),
		wireAccepted(t, "ws-2", 1080),
	}
	ack, err := st.Do(batch1)
	if err != nil {
		t.Fatal(err)
	}
	if ack.Committed != 3 || ack.Dropped != 0 || ack.Err != "" {
		t.Fatalf("batch 1 ack = %+v, want 3 committed", ack)
	}
	if ack.CommitSeq == 0 {
		t.Error("batch 1 ack carries no commit seq")
	}

	// Batch 2: an accept plus an invalid entry — the invalid one drops,
	// the rest commit, and the stream survives.
	batch2 := []wire.Submission{
		wireAccepted(t, "ws-3", 1120),
		{Device: "", Model: "Nexus 5", Score: 1},
	}
	ack2, err := st.Do(batch2)
	if err != nil {
		t.Fatal(err)
	}
	if ack2.Committed != 1 || ack2.Dropped != 1 {
		t.Fatalf("batch 2 ack = %+v, want 1 committed + 1 dropped", ack2)
	}
	if ack2.CommitSeq <= ack.CommitSeq {
		t.Errorf("commit seq did not advance: %d then %d", ack.CommitSeq, ack2.CommitSeq)
	}
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	c := srv.Counters()
	if c.Received != 5 || c.Stored != 4 || c.DecodeErrors != 1 {
		t.Errorf("counters = %+v, want received 5, stored 4, decode errors 1", c)
	}
	testkit.CheckCounterFlow(t, c)
	if srv.Store().Len() != 4 || srv.Store().AcceptedLen() != 4 {
		t.Errorf("store holds %d/%d, want 4/4", srv.Store().Len(), srv.Store().AcceptedLen())
	}

	m := scrapeMetrics(t, client, base)
	for name, want := range map[string]uint64{
		"crowdd_wire_streams_total":     1,
		"crowdd_wire_streams_active":    0,
		"crowdd_wire_frames_total":      2,
		"crowdd_wire_batches_total":     2,
		"crowdd_wire_submissions_total": 5,
		"crowdd_wire_acks_total":        2,
		"crowdd_wire_bad_frames_total":  0,
	} {
		if m[name] != want {
			t.Errorf("%s = %d, want %d", name, m[name], want)
		}
	}
	if m["crowdd_wire_batch_size_count"] != 2 || m["crowdd_wire_ack_seconds_count"] != 2 {
		t.Errorf("wire histograms observed %d/%d batches, want 2/2",
			m["crowdd_wire_batch_size_count"], m["crowdd_wire_ack_seconds_count"])
	}
}

// TestStreamCorruptFrameTerminates locks the trust boundary: a frame
// failing CRC terminates the stream (no ack, counted bad), and the
// already-acked batches stay committed.
func TestStreamCorruptFrameTerminates(t *testing.T) {
	srv, base := startStandalone(t)
	client := &http.Client{}
	st, err := wire.OpenStream(client, base, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := st.Do([]wire.Submission{wireAccepted(t, "corrupt-0", 1000)}); err != nil {
		t.Fatal(err)
	}
	if _, err := st.Send(nil); err == nil {
		t.Fatal("empty batch encoded cleanly, want error")
	}
	st.Close()

	// Hand-corrupt a frame: flip one payload byte after framing.
	frame, err := wire.AppendBatchFrame(nil, 2, []wire.Submission{wireAccepted(t, "corrupt-1", 1100)})
	if err != nil {
		t.Fatal(err)
	}
	frame[len(frame)-1] ^= 0x40
	// Push the corrupt bytes through a fresh raw request: the server
	// must refuse the frame and close without acking it.
	req, err := http.NewRequest(http.MethodPost, base+wire.StreamPath, bytes.NewReader(frame))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", wire.ContentType)
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body := drainBody(t, resp)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stream rejected outright: %d (%s)", resp.StatusCode, body)
	}
	if len(body) != 0 {
		t.Errorf("corrupt frame was acked: %d bytes of response", len(body))
	}

	m := scrapeMetrics(t, client, base)
	if m["crowdd_wire_bad_frames_total"] != 1 {
		t.Errorf("bad frames = %d, want 1", m["crowdd_wire_bad_frames_total"])
	}
	if srv.Store().Len() != 1 {
		t.Errorf("store holds %d records, want only the acked one", srv.Store().Len())
	}
}

// TestUnsupportedMediaType415 locks the content-type gates on both
// ingest routes, each counted under http_unsupported_media_total.
func TestUnsupportedMediaType415(t *testing.T) {
	_, base := startStandalone(t)
	client := &http.Client{}

	resp, err := client.Post(base+"/v1/submissions", "application/octet-stream", bytes.NewReader([]byte{1, 2, 3}))
	if err != nil {
		t.Fatal(err)
	}
	if body := drainBody(t, resp); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("binary body on the JSON route = %d (%s), want 415", resp.StatusCode, body)
	}

	resp, err = client.Post(base+wire.StreamPath, "application/json", bytes.NewReader([]byte(`{}`)))
	if err != nil {
		t.Fatal(err)
	}
	if body := drainBody(t, resp); resp.StatusCode != http.StatusUnsupportedMediaType {
		t.Fatalf("JSON body on the stream route = %d (%s), want 415", resp.StatusCode, body)
	}

	// JSON with an explicit charset parameter must still pass.
	req, err := http.NewRequest(http.MethodPost, base+"/v1/submissions",
		bytes.NewReader(testkit.AcceptedPayload(t, crowd.DefaultPolicy(), "ct-ok", 1000, 25)))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json; charset=utf-8")
	resp, err = client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if body := drainBody(t, resp); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("JSON with charset = %d (%s), want 202", resp.StatusCode, body)
	}

	if m := scrapeMetrics(t, client, base); m["crowdd_http_unsupported_media_total"] != 2 {
		t.Errorf("http_unsupported_media_total = %d, want 2", m["crowdd_http_unsupported_media_total"])
	}
}

// TestStreamJSONCompatBitIdentical is the compat-shim contract: the
// same submissions uploaded as JSON POSTs to one server and as wire
// batches to another must produce bit-identical bins and equal store
// digests — the transports are interchangeable encodings of one
// pipeline.
func TestStreamJSONCompatBitIdentical(t *testing.T) {
	jsonSrv, jsonBase := startStandalone(t)
	wireSrv, wireBase := startStandalone(t)
	client := &http.Client{}
	policy := crowd.DefaultPolicy()

	const n = 12
	var wireBatch []wire.Submission
	for i := 0; i < n; i++ {
		device := fmt.Sprintf("compat-%02d", i)
		score := 1000 + float64(i%8)*40
		raw := testkit.AcceptedPayload(t, policy, device, score, 25)
		resp := postSubmission(t, client, jsonBase, raw)
		if body := drainBody(t, resp); resp.StatusCode != http.StatusAccepted {
			t.Fatalf("JSON POST %s = %d (%s)", device, resp.StatusCode, body)
		}
		wireBatch = append(wireBatch, wireAccepted(t, device, score))
	}
	st, err := wire.OpenStream(client, wireBase, nil)
	if err != nil {
		t.Fatal(err)
	}
	ack, err := st.Do(wireBatch)
	if err != nil {
		t.Fatal(err)
	}
	if int(ack.Committed) != n {
		t.Fatalf("wire ack committed %d of %d", ack.Committed, n)
	}
	st.Close()

	jsonBins := waitForBins(t, client, jsonBase, "Nexus 5", n)
	wireBins := waitForBins(t, client, wireBase, "Nexus 5", n)
	if !reflect.DeepEqual(jsonBins, wireBins) {
		t.Errorf("bins diverge across transports:\njson %+v\nwire %+v", jsonBins, wireBins)
	}
	jd, wd := jsonSrv.Store().DigestAll(), wireSrv.Store().DigestAll()
	if !reflect.DeepEqual(jd, wd) {
		t.Errorf("store digests diverge: json %+v, wire %+v", jd, wd)
	}
}

// streamBatch ships one batch over a fresh stream, rotating across
// nodes until some node commits the whole batch — the retry loop
// crowdload's binary workers run, dup-safe because the cluster stamps
// each resubmission fresh and keeps the newest per device.
func streamBatch(t *testing.T, client *http.Client, nodes []*clusterNode, batch []wire.Submission) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for attempt := 0; ; attempt++ {
		node := nodes[attempt%len(nodes)]
		st, err := wire.OpenStream(client, node.url, nil)
		if err == nil {
			ack, derr := st.Do(batch)
			st.Close()
			if derr == nil && ack.Err == "" && int(ack.Committed) == len(batch) {
				return
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("batch of %d not committed after %d attempts", len(batch), attempt+1)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestChaosStreamIngest runs the binary transport through the chaos
// harness: batches stream in while the degraded scenario mangles peer
// traffic, and while a partition cuts one node off. Afterward the PR-6
// acceptance invariants must hold over the streamed records — zero
// acked loss, converged digests, bit-identical bins — plus the
// scripted-event determinism pin.
func TestChaosStreamIngest(t *testing.T) {
	for _, tc := range []struct {
		name string
		seed int64
	}{
		{"degraded", 13},
		{"partition", 17},
	} {
		t.Run(tc.name, func(t *testing.T) {
			sc, ok := chaos.Lookup(tc.name)
			if !ok {
				t.Fatalf("unknown scenario %q", tc.name)
			}
			plan := chaos.NewPlan(tc.seed)
			nodes := startCluster(t, 3, func(i int, cfg *server.Config) {
				chaosMut(t, plan)(i, cfg)
				// Short ack window so an unreplicated ack error surfaces
				// (and the client fails over) instead of stalling the
				// stream for the full default timeout.
				cfg.Cluster.AckTimeout = 200 * time.Millisecond
			})
			ids := []string{"n1", "n2", "n3"}
			sc.Apply(plan, ids)

			client := &http.Client{Timeout: 5 * time.Second}
			var devices []string
			for b := 0; b < 3; b++ {
				batch := make([]wire.Submission, 4)
				for i := range batch {
					dev := fmt.Sprintf("wire-%s-%d", tc.name, b*len(batch)+i)
					batch[i] = wireAccepted(t, dev, 1000+float64((b*len(batch)+i)%8)*40)
					devices = append(devices, dev)
				}
				streamBatch(t, client, nodes, batch)
			}

			if tc.name == "partition" {
				// The scenario scheduled its own heal; convergence waits
				// for that timer to fire before checking the invariants.
				assertClusterConverged(t, client, nodes, devices)
				sc.Heal(plan)
				assertScriptedEvents(t, plan, func(p *chaos.Plan) {
					sc.Apply(p, ids)
					p.HealPartitions() // the live run's timer fired exactly once
					sc.Heal(p)
				})
				return
			}
			sc.Heal(plan)
			assertClusterConverged(t, client, nodes, devices)
			assertScriptedEvents(t, plan, func(p *chaos.Plan) {
				sc.Apply(p, ids)
				sc.Heal(p)
			})
		})
	}
}
