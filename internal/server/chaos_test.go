package server_test

import (
	"fmt"
	"net/http"
	"reflect"
	"testing"
	"time"

	"accubench/internal/chaos"
	"accubench/internal/crowd"
	"accubench/internal/server"
	"accubench/internal/testkit"
)

// Chaos scenario tests: the in-process half of the fault-injection
// harness. Each test boots a real multi-node cluster whose peer traffic
// crosses a chaos.Transport executing a seeded fault plan, drives load
// through the faults, heals, and asserts the PR-6 acceptance invariants:
// zero acked-submission loss, digest convergence within a deadline,
// bit-identical bins on every live node, and the replication metric
// conservation laws. `go test ./internal/server -run Chaos -count=2`
// must pass with identical per-scenario event logs — the determinism
// pin every test here carries.

// chaosMut wires one node's peer traffic through the plan's Transport
// and registers every peer URL (each node registers its peers; across
// the cluster that covers everyone).
func chaosMut(t *testing.T, plan *chaos.Plan) func(i int, cfg *server.Config) {
	return func(i int, cfg *server.Config) {
		for id, u := range cfg.Cluster.Peers {
			if err := plan.RegisterNode(id, u); err != nil {
				t.Fatal(err)
			}
		}
		cfg.Cluster.Client = &http.Client{
			Timeout:   5 * time.Second,
			Transport: chaos.NewTransport(plan, cfg.Cluster.NodeID),
		}
	}
}

// assertScriptedEvents is the determinism pin: replaying the scenario
// script on fresh plans with the same seed must reproduce the live
// plan's event log byte-for-byte. replay must mirror exactly the
// scripted calls the live run made.
func assertScriptedEvents(t *testing.T, live *chaos.Plan, replay func(p *chaos.Plan)) {
	t.Helper()
	script := func() []string {
		p := chaos.NewPlan(live.Seed())
		replay(p)
		return p.Events()
	}
	got := live.Events()
	if len(got) == 0 {
		t.Fatal("live plan scripted no events")
	}
	if a := script(); !reflect.DeepEqual(got, a) {
		t.Fatalf("event log is not a pure function of the seed:\nlive:   %v\nreplay: %v", got, a)
	}
	if a, b := script(), script(); !reflect.DeepEqual(a, b) {
		t.Fatalf("two replays diverged:\n%v\nvs\n%v", a, b)
	}
}

// scrapeQuiescent scrapes a node's metrics until two successive reads
// of the replication-flow counters agree — the quiescence the
// conservation laws are stated under.
func scrapeQuiescent(t *testing.T, client *http.Client, base string) map[string]uint64 {
	t.Helper()
	keys := []string{"crowdd_store_records", "crowdd_repl_applied_total", "crowdd_reconcile_pulled_total", "crowdd_stored_total"}
	var prev map[string]uint64
	deadline := time.Now().Add(5 * time.Second)
	for {
		m := scrapeMetrics(t, client, base)
		if prev != nil {
			stable := true
			for _, k := range keys {
				stable = stable && m[k] == prev[k]
			}
			if stable || time.Now().After(deadline) {
				return m
			}
		}
		prev = m
		time.Sleep(100 * time.Millisecond)
	}
}

// assertClusterConverged asserts the post-heal invariants: converged
// digests, every listed device present on every node, bit-identical
// bins, and the replication conservation laws on each node.
func assertClusterConverged(t *testing.T, client *http.Client, nodes []*clusterNode, devices []string) {
	t.Helper()
	waitConverged(t, client, nodes, 20*time.Second)

	for _, dev := range devices {
		for _, node := range nodes {
			resp, err := client.Get(node.url + "/v1/devices/" + dev)
			if err != nil {
				t.Fatal(err)
			}
			code := resp.StatusCode
			drainBody(t, resp)
			if code != http.StatusOK {
				t.Errorf("device %s missing from %s (HTTP %d)", dev, node.id, code)
			}
		}
	}

	deadline := time.Now().Add(10 * time.Second)
	for {
		keys := make([]string, 0, len(nodes))
		ok := true
		var first server.ModelBins
		for i, node := range nodes {
			mb, _, served := fetchModelBins(t, client, node.url, "Nexus 5")
			if !served {
				ok = false
				break
			}
			if i == 0 {
				first = mb
			}
			keys = append(keys, binKey(mb))
		}
		for i := 1; i < len(keys) && ok; i++ {
			ok = keys[0] == keys[i]
		}
		if ok && len(keys) == len(nodes) && first.Submissions == len(devices) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bins did not become identical across nodes: %v", keys)
		}
		time.Sleep(50 * time.Millisecond)
	}

	for _, node := range nodes {
		testkit.CheckReplicationMetrics(t, scrapeQuiescent(t, client, node.url))
	}
}

// TestChaosScenarioMatrix drives the non-partition scenarios: load
// flows while the faults are live, the plan heals, and the cluster must
// end converged with every acked submission everywhere.
func TestChaosScenarioMatrix(t *testing.T) {
	const seed = 7
	for _, name := range []string{"baseline", "degraded", "high-load"} {
		t.Run(name, func(t *testing.T) {
			sc, ok := chaos.Lookup(name)
			if !ok {
				t.Fatalf("unknown scenario %q", name)
			}
			plan := chaos.NewPlan(seed)
			nodes := startCluster(t, 3, func(i int, cfg *server.Config) {
				chaosMut(t, plan)(i, cfg)
				if name == "high-load" {
					// The slow-disk half needs a real WAL to slow down.
					cfg.DataDir = t.TempDir()
					cfg.FsyncEvery = 2 * time.Millisecond
					cfg.FsyncDelay = plan.FsyncDelay(cfg.Cluster.NodeID)
				}
			})
			ids := []string{"n1", "n2", "n3"}
			sc.Apply(plan, ids)

			client := &http.Client{Timeout: 5 * time.Second}
			var devices []string
			for i := 0; i < 18; i++ {
				dev := fmt.Sprintf("%s-%d", name, i)
				postAccepted(t, client, nodes[i%3], dev, 1000+float64(i%8)*40)
				devices = append(devices, dev)
			}

			sc.Heal(plan)
			assertClusterConverged(t, client, nodes, devices)
			assertScriptedEvents(t, plan, func(p *chaos.Plan) {
				sc.Apply(p, ids)
				sc.Heal(p)
			})
		})
	}
}

// TestChaosPartitionZeroAckedLoss is the harness's headline run: one
// node symmetrically partitioned, acked submissions flowing through the
// connected majority, a post to the victim surfacing the honest 503
// "unreplicated", a scheduled heal — and afterwards zero acked loss,
// converged digests and identical bins on all three nodes, under -race
// via `make chaos-smoke`.
func TestChaosPartitionZeroAckedLoss(t *testing.T) {
	const seed = 11
	plan := chaos.NewPlan(seed)
	nodes := startCluster(t, 3, func(i int, cfg *server.Config) {
		chaosMut(t, plan)(i, cfg)
		// Short ack window so the victim's unreplicated 503 surfaces
		// before the scheduled heal reconnects it.
		cfg.Cluster.AckTimeout = 200 * time.Millisecond
	})
	ids := []string{"n1", "n2", "n3"}
	sc, _ := chaos.Lookup("partition")
	sc.Apply(plan, ids) // schedules the heal (sc.HealAfter)

	// The victim is the one node partitioned from every other; the
	// connected nodes are cut only from the victim.
	var victim *clusterNode
	var connected []*clusterNode
	for _, node := range nodes {
		cut := 0
		for _, other := range ids {
			if other != node.id && plan.Partitioned(node.id, other) {
				cut++
			}
		}
		if cut == len(ids)-1 {
			victim = node
		} else {
			connected = append(connected, node)
		}
	}
	if victim == nil || len(connected) != 2 {
		t.Fatalf("partition scenario cut no victim: events %v", plan.Events())
	}

	client := &http.Client{Timeout: 5 * time.Second}

	// The victim cannot reach a replica: honesty demands a 503
	// "unreplicated" with Retry-After, never a false 202. The record
	// still commits locally (anti-entropy spreads it after heal).
	raw := testkit.AcceptedPayload(t, crowd.DefaultPolicy(), "isolated-0", 1200, 25)
	resp := postSubmission(t, client, victim.url, raw)
	code := resp.StatusCode
	retryAfter := resp.Header.Get("Retry-After")
	body := drainBody(t, resp)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("POST to the partitioned node = %d (%s), want 503", code, body)
	}
	if retryAfter == "" {
		t.Error("unreplicated 503 carries no Retry-After")
	}

	// Acked load keeps flowing through the connected majority.
	var devices []string
	for i := 0; i < 12; i++ {
		dev := fmt.Sprintf("part-%d", i)
		postAccepted(t, client, connected[i%2], dev, 1000+float64(i%8)*40)
		devices = append(devices, dev)
	}

	// The scheduled heal reconnects the victim; the isolated record
	// spreads too — it was durable on the victim all along.
	devices = append(devices, "isolated-0")
	assertClusterConverged(t, client, nodes, devices)

	sc.Heal(plan)
	assertScriptedEvents(t, plan, func(p *chaos.Plan) {
		sc.Apply(p, ids)
		p.HealPartitions() // the live run's timer fired exactly once
		sc.Heal(p)
	})
}
