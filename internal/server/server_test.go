package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/fleet"
	"accubench/internal/ingest"
	"accubench/internal/store"
	"accubench/internal/units"
)

// newTestServer assembles a backend with a fast binning loop and serves it
// over httptest.
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(Config{
		Shards:      8,
		Workers:     2,
		QueueDepth:  32,
		BinDebounce: 20 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	s.Start(ctx)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		ts.Close()
		s.Close()
		cancel()
	})
	return s, ts
}

// postSubmission uploads one wire payload and returns the status code.
func postSubmission(t *testing.T, ts *httptest.Server, raw []byte) int {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/submissions", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// getBins fetches and decodes GET /v1/bins.
func getBins(t *testing.T, ts *httptest.Server) []ModelBins {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/bins")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /v1/bins = %d", resp.StatusCode)
	}
	var out struct {
		Models []ModelBins `json:"models"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	return out.Models
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// syntheticUpload builds a wire payload with a clean geometric cooldown
// decay toward amb.
func syntheticUpload(t *testing.T, device, model string, score, amb float64) []byte {
	t.Helper()
	sub := ingest.Submission{Device: device, Model: model, Score: score}
	delta := 70 - amb
	for i := 0; i < 40; i++ {
		sub.Cooldown = append(sub.Cooldown, ingest.CooldownPoint{
			AtSeconds: float64(i+1) * 5,
			TempC:     amb + delta*math.Pow(0.93, float64(i+1)),
		})
	}
	raw, err := ingest.Marshal(sub.Device, sub.Model, sub.Score, sub.Readings())
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func TestServerEndToEndSyntheticPopulation(t *testing.T) {
	s, ts := newTestServer(t)

	// Two clearly separated score clusters inside the acceptance window,
	// plus one hot-climate reject and one garbage upload.
	const model = "Nexus 5"
	var accepted int
	for i := 0; i < 6; i++ {
		amb := 23 + float64(i%5)*0.8
		low := syntheticUpload(t, fmt.Sprintf("low-%d", i), model, 1000+float64((i*7)%20), amb)
		high := syntheticUpload(t, fmt.Sprintf("high-%d", i), model, 1600+float64((i*7)%20), amb)
		if code := postSubmission(t, ts, low); code != http.StatusAccepted {
			t.Fatalf("POST low-%d = %d", i, code)
		}
		if code := postSubmission(t, ts, high); code != http.StatusAccepted {
			t.Fatalf("POST high-%d = %d", i, code)
		}
		accepted += 2
	}
	if code := postSubmission(t, ts, syntheticUpload(t, "hot", model, 1200, 39)); code != http.StatusAccepted {
		t.Fatalf("POST hot = %d", code)
	}
	if code := postSubmission(t, ts, []byte("{nope")); code != http.StatusAccepted {
		t.Fatalf("POST garbage = %d (malformed uploads are dropped by the pipeline, not the handler)", code)
	}

	// The binning loop settles: both clusters discovered over the accepted
	// population.
	waitFor(t, 3*time.Second, "bins to settle", func() bool {
		for _, mb := range getBins(t, ts) {
			if mb.Model == model && mb.Accepted == accepted && mb.BinCount == 2 {
				return true
			}
		}
		return false
	})
	bins := getBins(t, ts)
	if len(bins) != 1 {
		t.Fatalf("bins for %d models, want 1", len(bins))
	}
	mb := bins[0]
	if mb.Submissions != accepted+1 { // the hot reject is stored too
		t.Errorf("Submissions = %d, want %d", mb.Submissions, accepted+1)
	}
	if mb.Centroids[0] > mb.Centroids[1] {
		t.Errorf("centroids not ascending: %v", mb.Centroids)
	}
	if mb.Centroids[0] < 900 || mb.Centroids[0] > 1150 || mb.Centroids[1] < 1500 || mb.Centroids[1] > 1750 {
		t.Errorf("centroids %v far from the planted clusters", mb.Centroids)
	}
	if mb.Sizes[0] != 6 || mb.Sizes[1] != 6 {
		t.Errorf("bin sizes = %v, want [6 6]", mb.Sizes)
	}

	// GET /v1/bins serves the cache: hammering it must not recompute.
	before := s.Binner().Recomputes()
	for i := 0; i < 50; i++ {
		getBins(t, ts)
	}
	if after := s.Binner().Recomputes(); after != before {
		t.Errorf("%d recomputes while serving cached bins", after-before)
	}

	// The hot-climate device is stored, rejected, and visible.
	resp, err := http.Get(ts.URL + "/v1/devices/hot")
	if err != nil {
		t.Fatal(err)
	}
	var rec store.Record
	if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if rec.Accepted || rec.RejectReason == "" || rec.EstimatedAmbient < 35 {
		t.Errorf("hot device record = %+v", rec)
	}

	// Unknown device and unknown model 404.
	if resp, err := http.Get(ts.URL + "/v1/devices/nope"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET unknown device = %d", resp.StatusCode)
		}
	}
	if resp, err := http.Get(ts.URL + "/v1/bins?model=iPhone"); err != nil {
		t.Fatal(err)
	} else {
		resp.Body.Close()
		if resp.StatusCode != http.StatusNotFound {
			t.Errorf("GET bins for unknown model = %d", resp.StatusCode)
		}
	}

	// Health and metrics.
	if resp, err := http.Get(ts.URL + "/healthz"); err != nil {
		t.Fatal(err)
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK || !strings.Contains(string(body), "ok") {
			t.Errorf("healthz = %d %q", resp.StatusCode, body)
		}
	}
	if resp, err := http.Get(ts.URL + "/metrics"); err != nil {
		t.Fatal(err)
	} else {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		text := string(body)
		for _, want := range []string{
			fmt.Sprintf("crowdd_stored_total %d", accepted+1),
			"crowdd_decode_errors_total 1",
			"crowdd_rejected_total 1",
			"crowdd_store_models 1",
		} {
			if !strings.Contains(text, want) {
				t.Errorf("metrics missing %q:\n%s", want, text)
			}
		}
	}
}

// TestServerSimulatedFleet drives the backend with real ACCUBENCH runs: a
// small simulated Nexus 5 fleet benchmarks in the wild and uploads
// concurrently, then the binning loop settles over the accepted
// population.
func TestServerSimulatedFleet(t *testing.T) {
	if testing.Short() {
		t.Skip("simulated fleet")
	}
	_, ts := newTestServer(t)

	units_ := append(fleet.Nexus5Units(), fleet.Nexus5Bin4())
	// Benign ambients: every unit lands inside the acceptance window once
	// the idle bias is corrected. The leakiest chip (bin 4) idles hottest
	// and estimates a few degrees warm, so keep its climate mild.
	ambients := []units.Celsius{22, 23.5, 25, 26.5, 24}

	var wg sync.WaitGroup
	for i, u := range units_ {
		wg.Add(1)
		go func(i int, u fleet.Unit) {
			defer wg.Done()
			w := crowd.WildDevice{Unit: u, Ambient: ambients[i], Seed: int64(100 + i), Quick: true}
			sub, err := w.Benchmark()
			if err != nil {
				t.Error(err)
				return
			}
			raw, err := ingest.Marshal(sub.Device, u.ModelName, sub.Score, sub.CooldownReadings)
			if err != nil {
				t.Error(err)
				return
			}
			if code := postSubmission(t, ts, raw); code != http.StatusAccepted {
				t.Errorf("%s: POST = %d", u.Name, code)
			}
		}(i, u)
	}
	wg.Wait()

	want := len(units_)
	waitFor(t, 5*time.Second, "fleet bins to settle", func() bool {
		for _, mb := range getBins(t, ts) {
			if mb.Model == "Nexus 5" && mb.Submissions == want {
				return true
			}
		}
		return false
	})
	bins := getBins(t, ts)
	mb := bins[0]
	if mb.Accepted != want {
		t.Errorf("accepted %d of %d benign-climate submissions", mb.Accepted, want)
	}
	if mb.BinCount < 1 || mb.BinCount > 5 {
		t.Errorf("BinCount = %d", mb.BinCount)
	}
	// Every unit's verdict is visible.
	for _, u := range units_ {
		resp, err := http.Get(ts.URL + "/v1/devices/" + u.Name)
		if err != nil {
			t.Fatal(err)
		}
		var rec store.Record
		if err := json.NewDecoder(resp.Body).Decode(&rec); err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if !rec.Accepted {
			t.Errorf("%s rejected: %s (est %v)", u.Name, rec.RejectReason, rec.EstimatedAmbient)
		}
	}
}

func TestServerShutdownRefusesUploads(t *testing.T) {
	s, err := New(Config{Workers: 1, QueueDepth: 4, BinDebounce: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	s.Start(context.Background())
	ts := httptest.NewServer(s.Handler())
	defer ts.Close()
	s.Close()
	code := postSubmission(t, ts, syntheticUpload(t, "d", "Nexus 5", 100, 24))
	if code != http.StatusServiceUnavailable {
		t.Errorf("POST after Close = %d, want 503", code)
	}
}
