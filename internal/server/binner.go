package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"accubench/internal/cluster"
	"accubench/internal/obs"
	"accubench/internal/stats"
	"accubench/internal/store"
)

// ModelBins is the cached binning of one model's accepted population — the
// §VI endgame: normalized-score clusters standing in for the vendor's
// undisclosed speed bins.
type ModelBins struct {
	// Model is the handset model.
	Model string `json:"model"`
	// Submissions counts every stored record for the model.
	Submissions int `json:"submissions"`
	// Accepted counts the filtered population the bins are computed over
	// (latest record per device).
	Accepted int `json:"accepted"`
	// AmbientSlope is the fitted score-per-°C slope used to normalize
	// scores to the 26 °C reference; zero when the population is too small
	// or too ambient-uniform to fit.
	AmbientSlope float64 `json:"ambient_slope_per_c"`
	// BinCount is the discovered bin count (0 until the population
	// reaches the clustering minimum).
	BinCount int `json:"bin_count"`
	// Centroids are the bins' normalized-score centers, ascending (bin 0
	// is the worst silicon).
	Centroids []float64 `json:"centroids,omitempty"`
	// Sizes are the per-bin device counts, aligned with Centroids.
	Sizes []int `json:"sizes,omitempty"`
	// Revision increments every recompute of this model.
	Revision uint64 `json:"revision"`
	// AgeMS is how old this binning is at serve time — milliseconds since
	// the recompute that produced it. Set by the HTTP layer; also exposed
	// as the X-Bins-Staleness-Ms response header.
	AgeMS int64 `json:"age_ms"`

	// refreshedAt is when the recompute ran; AgeMS is derived from it at
	// serve time.
	refreshedAt time.Time
}

// minClusterPop is the smallest accepted population worth clustering,
// matching the batch study in internal/crowd.
const minClusterPop = 4

// Bin-serving modes (Config.BinMode / crowdd -bin-mode).
const (
	// BinModeExact is the classic path: a debounced background loop
	// rescans the store and re-clusters the full population — O(corpus)
	// per refresh, bit-exact, the reference the goldens compare against.
	BinModeExact = "exact"
	// BinModeSketch serves bins from the store's streaming population
	// sketches: reads fold O(cells) per model with no debounce loop and
	// no corpus scan, within the tolerance contract of docs/BINNING.md.
	BinModeSketch = "sketch"
)

// Binner serves per-model bins in one of two modes. In exact mode it is
// a background loop: ingest marks models dirty, the loop debounces the
// marks and recomputes bins off the request path, and GET /v1/bins
// serves the cached result without ever touching the clustering code.
// In sketch mode there is no loop at all: reads cluster the store's
// always-current population sketches on demand, caching per model until
// the sketch revision moves.
type Binner struct {
	store *store.Store
	// maxK bounds the discovered bin count.
	maxK int
	// mode is BinModeExact or BinModeSketch.
	mode string
	// debounce is how long a model must stay quiet after a mark before its
	// bins recompute; maxWait bounds staleness under continuous load.
	debounce, maxWait time.Duration

	dirty chan string

	mu   sync.RWMutex
	bins map[string]ModelBins
	// sorted caches the Bins() ordering so serving GET /v1/bins does not
	// re-sort the model list on every read; recompute invalidates it.
	sorted []ModelBins

	// sketchMu guards the sketch-mode read cache: per model, the bins
	// derived from the store sketch at .Revision — served until the
	// store's sketch revision moves past it.
	sketchMu    sync.Mutex
	sketchCache map[string]ModelBins

	recomputes atomic.Uint64
	revision   atomic.Uint64

	// Drift instrumentation, nil without BinnerConfig.Obs: the
	// silicon-lottery story as monitoring — how far each model's bin
	// centroids moved on the latest recompute, and whether the bin count
	// itself changed.
	driftShift   *obs.GaugeVec
	driftBins    *obs.GaugeVec
	driftChanges *obs.Counter
	sketchFolds  *obs.Counter
	sketchHits   *obs.Counter

	startOnce sync.Once
	stopOnce  sync.Once
	stopped   chan struct{}
	done      chan struct{}
}

// BinnerConfig parameterizes a Binner.
type BinnerConfig struct {
	// Store is the submission store to bin. Required.
	Store *store.Store
	// MaxK bounds the discovered bin count (default 5 — the paper's
	// Nexus 5 study saw bins 0–4).
	MaxK int
	// Mode selects the serving path: BinModeExact (default) or
	// BinModeSketch.
	Mode string
	// Debounce is the quiet period before a recompute (default 150 ms).
	// Exact mode only.
	Debounce time.Duration
	// MaxWait bounds staleness under continuous submission load
	// (default 10 × Debounce). Exact mode only.
	MaxWait time.Duration
	// Obs, when non-nil, registers the drift gauges and sketch-path
	// counters (docs/METRICS.md, "Binning & drift").
	Obs *obs.Registry
}

// NewBinner creates a binner; Start launches its loop (exact mode).
func NewBinner(cfg BinnerConfig) *Binner {
	if cfg.MaxK <= 0 {
		cfg.MaxK = 5
	}
	if cfg.Mode == "" {
		cfg.Mode = BinModeExact
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 150 * time.Millisecond
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 10 * cfg.Debounce
	}
	b := &Binner{
		store:    cfg.Store,
		maxK:     cfg.MaxK,
		mode:     cfg.Mode,
		debounce: cfg.Debounce,
		maxWait:  cfg.MaxWait,
		// Buffered so ingest's store workers never block on a busy loop;
		// marks are coalesced anyway.
		dirty:       make(chan string, 1024),
		bins:        make(map[string]ModelBins),
		sketchCache: make(map[string]ModelBins),
		stopped:     make(chan struct{}),
		done:        make(chan struct{}),
	}
	if cfg.Obs != nil {
		b.driftShift = cfg.Obs.GaugeVec("drift_centroid_shift_ppm",
			"mean relative centroid shift vs the previous revision, parts per million", "model")
		b.driftBins = cfg.Obs.GaugeVec("drift_bin_count",
			"discovered bin count per model", "model")
		b.driftChanges = cfg.Obs.Counter("drift_bin_count_changes_total",
			"recomputes that changed a model's bin count")
		b.sketchFolds = cfg.Obs.Counter("bins_sketch_recomputes_total",
			"sketch-mode bins computed from a fresh sketch fold")
		b.sketchHits = cfg.Obs.Counter("bins_sketch_cached_reads_total",
			"sketch-mode bins served from the revision-matched cache")
	}
	return b
}

// Mode reports the serving mode.
func (b *Binner) Mode() string { return b.mode }

// Start launches the binning loop. In sketch mode there is no loop —
// reads are always fresh — so Start only arms Stop's bookkeeping.
func (b *Binner) Start() {
	if b.mode == BinModeSketch {
		b.startOnce.Do(func() { close(b.done) })
		return
	}
	b.startOnce.Do(func() { go b.loop() })
}

// Stop terminates the loop after one final recompute of anything pending.
// Safe on a binner that was never started (a server built but not Started
// — e.g. boot-recovery inspection): the loop is kept from ever launching
// instead of being waited for.
func (b *Binner) Stop() {
	b.startOnce.Do(func() { close(b.done) })
	b.stopOnce.Do(func() { close(b.stopped) })
	<-b.done
}

// MarkDirty notes that a model received a submission. Never blocks: under
// a full queue the mark is dropped, which is safe — a later mark or the
// maxWait sweep still triggers the recompute for marks already queued, and
// a full queue means the loop is about to run anyway. Sketch mode has no
// loop to wake: the store's sketches are already current.
func (b *Binner) MarkDirty(model string) {
	if b.mode == BinModeSketch {
		return
	}
	select {
	case b.dirty <- model:
	default:
	}
}

// Bins returns the bins for every model, sorted by model name. Exact
// mode serves a cached sorted snapshot (rebuilt only after a recompute
// invalidated it — no per-GET sort); sketch mode folds each model's
// sketch, which is itself cached per sketch revision.
func (b *Binner) Bins() []ModelBins {
	if b.mode == BinModeSketch {
		models := b.store.Models()
		out := make([]ModelBins, 0, len(models))
		for _, m := range models {
			if mb, ok := b.sketchBins(m); ok {
				out = append(out, mb)
			}
		}
		return out
	}
	b.mu.RLock()
	cached := b.sorted
	b.mu.RUnlock()
	if cached == nil {
		b.mu.Lock()
		if b.sorted == nil {
			sc := make([]ModelBins, 0, len(b.bins))
			for _, mb := range b.bins {
				sc = append(sc, mb)
			}
			sort.Slice(sc, func(i, j int) bool { return sc[i].Model < sc[j].Model })
			b.sorted = sc
		}
		cached = b.sorted
		b.mu.Unlock()
	}
	// Callers stamp AgeMS into the returned entries; hand out a copy so
	// the cache itself stays immutable.
	out := make([]ModelBins, len(cached))
	copy(out, cached)
	return out
}

// ModelBins returns the bins for one model — the cached recompute in
// exact mode, a revision-fresh sketch fold in sketch mode.
func (b *Binner) ModelBins(model string) (ModelBins, bool) {
	if b.mode == BinModeSketch {
		return b.sketchBins(model)
	}
	b.mu.RLock()
	defer b.mu.RUnlock()
	mb, ok := b.bins[model]
	return mb, ok
}

// Recomputes returns how many per-model recomputes have run — the proof
// that serving GET /v1/bins does not trigger clustering.
func (b *Binner) Recomputes() uint64 { return b.recomputes.Load() }

// RefreshedAt returns when a model's cached bins were last recomputed.
func (b *Binner) RefreshedAt(model string) (time.Time, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	mb, ok := b.bins[model]
	return mb.refreshedAt, ok
}

// Refresh recomputes one model's bins synchronously — the staleness
// escape hatch: a replica serving bins under a max-staleness bound calls
// this when the cache has aged past the bound, instead of waiting for
// the debounced loop. Safe concurrently with the loop; the two
// recomputes just race benignly to publish equivalent results. In
// sketch mode reads are fresh by construction, so Refresh is just a
// read.
func (b *Binner) Refresh(model string) ModelBins {
	if b.mode == BinModeSketch {
		mb, _ := b.sketchBins(model)
		return mb
	}
	b.recompute(model)
	mb, _ := b.ModelBins(model)
	return mb
}

// loop debounces dirty marks and recomputes bins for quiet models.
func (b *Binner) loop() {
	defer close(b.done)
	pending := make(map[string]bool)
	var quiet *time.Timer
	var quietC <-chan time.Time
	var deadlineC <-chan time.Time

	flush := func() {
		for model := range pending {
			delete(pending, model)
			b.recompute(model)
		}
		if quiet != nil {
			quiet.Stop()
		}
		quietC, deadlineC = nil, nil
	}

	for {
		select {
		case model := <-b.dirty:
			pending[model] = true
			// Restart the quiet timer; arm the staleness deadline only
			// once per burst.
			if quiet == nil {
				quiet = time.NewTimer(b.debounce)
			} else {
				if !quiet.Stop() {
					select {
					case <-quiet.C:
					default:
					}
				}
				quiet.Reset(b.debounce)
			}
			quietC = quiet.C
			if deadlineC == nil {
				deadlineC = time.After(b.maxWait)
			}
		case <-quietC:
			flush()
		case <-deadlineC:
			flush()
		case <-b.stopped:
			// Drain any queued marks, recompute once, exit.
			for {
				select {
				case model := <-b.dirty:
					pending[model] = true
					continue
				default:
				}
				break
			}
			flush()
			return
		}
	}
}

// recompute rebuilds one model's bins from the store: normalize the
// accepted population's scores to the 26 °C reference ambient, then
// cluster them (exact 1-D k-means, silhouette-selected k).
func (b *Binner) recompute(model string) {
	all := b.store.Model(model)
	latest := b.store.Latest(model)
	mb := ModelBins{Model: model, Submissions: len(all)}

	var scores, ambs []float64
	for _, r := range latest {
		if !r.Accepted {
			continue
		}
		scores = append(scores, r.Score)
		ambs = append(ambs, float64(r.EstimatedAmbient))
	}
	mb.Accepted = len(scores)

	normalized := append([]float64(nil), scores...)
	if len(scores) >= 3 && spread(ambs) > 0.5 {
		// The slope fit needs ambient variation to be identifiable; an
		// ambient-uniform population needs no normalization anyway.
		_, slope := stats.LinearFit(ambs, scores)
		mb.AmbientSlope = slope
		for i := range normalized {
			normalized[i] = scores[i] - slope*(ambs[i]-26)
		}
	}

	if len(normalized) >= minClusterPop {
		if k, err := cluster.ChooseK(normalized, b.maxK); err == nil {
			if asg, err := cluster.KMeans1D(normalized, k); err == nil {
				mb.BinCount = k
				mb.Centroids = asg.Centroids
				mb.Sizes = make([]int, k)
				for _, lbl := range asg.Labels {
					mb.Sizes[lbl]++
				}
			}
		}
	}

	mb.Revision = b.revision.Add(1)
	mb.refreshedAt = time.Now()
	b.recomputes.Add(1)
	b.mu.Lock()
	old, hadOld := b.bins[model]
	b.bins[model] = mb
	b.sorted = nil
	b.mu.Unlock()
	b.noteDrift(old, hadOld, mb)
}

// spread returns max-min of xs.
func spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
