package server

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"accubench/internal/cluster"
	"accubench/internal/stats"
	"accubench/internal/store"
)

// ModelBins is the cached binning of one model's accepted population — the
// §VI endgame: normalized-score clusters standing in for the vendor's
// undisclosed speed bins.
type ModelBins struct {
	// Model is the handset model.
	Model string `json:"model"`
	// Submissions counts every stored record for the model.
	Submissions int `json:"submissions"`
	// Accepted counts the filtered population the bins are computed over
	// (latest record per device).
	Accepted int `json:"accepted"`
	// AmbientSlope is the fitted score-per-°C slope used to normalize
	// scores to the 26 °C reference; zero when the population is too small
	// or too ambient-uniform to fit.
	AmbientSlope float64 `json:"ambient_slope_per_c"`
	// BinCount is the discovered bin count (0 until the population
	// reaches the clustering minimum).
	BinCount int `json:"bin_count"`
	// Centroids are the bins' normalized-score centers, ascending (bin 0
	// is the worst silicon).
	Centroids []float64 `json:"centroids,omitempty"`
	// Sizes are the per-bin device counts, aligned with Centroids.
	Sizes []int `json:"sizes,omitempty"`
	// Revision increments every recompute of this model.
	Revision uint64 `json:"revision"`
	// AgeMS is how old this binning is at serve time — milliseconds since
	// the recompute that produced it. Set by the HTTP layer; also exposed
	// as the X-Bins-Staleness-Ms response header.
	AgeMS int64 `json:"age_ms"`

	// refreshedAt is when the recompute ran; AgeMS is derived from it at
	// serve time.
	refreshedAt time.Time
}

// minClusterPop is the smallest accepted population worth clustering,
// matching the batch study in internal/crowd.
const minClusterPop = 4

// Binner is the background binning loop: ingest marks models dirty, the
// loop debounces the marks and recomputes bins off the request path, and
// GET /v1/bins serves the cached result without ever touching the
// clustering code.
type Binner struct {
	store *store.Store
	// maxK bounds the discovered bin count.
	maxK int
	// debounce is how long a model must stay quiet after a mark before its
	// bins recompute; maxWait bounds staleness under continuous load.
	debounce, maxWait time.Duration

	dirty chan string

	mu   sync.RWMutex
	bins map[string]ModelBins

	recomputes atomic.Uint64
	revision   atomic.Uint64

	startOnce sync.Once
	stopOnce  sync.Once
	stopped   chan struct{}
	done      chan struct{}
}

// BinnerConfig parameterizes a Binner.
type BinnerConfig struct {
	// Store is the submission store to bin. Required.
	Store *store.Store
	// MaxK bounds the discovered bin count (default 5 — the paper's
	// Nexus 5 study saw bins 0–4).
	MaxK int
	// Debounce is the quiet period before a recompute (default 150 ms).
	Debounce time.Duration
	// MaxWait bounds staleness under continuous submission load
	// (default 10 × Debounce).
	MaxWait time.Duration
}

// NewBinner creates a binner; Start launches its loop.
func NewBinner(cfg BinnerConfig) *Binner {
	if cfg.MaxK <= 0 {
		cfg.MaxK = 5
	}
	if cfg.Debounce <= 0 {
		cfg.Debounce = 150 * time.Millisecond
	}
	if cfg.MaxWait <= 0 {
		cfg.MaxWait = 10 * cfg.Debounce
	}
	return &Binner{
		store:    cfg.Store,
		maxK:     cfg.MaxK,
		debounce: cfg.Debounce,
		maxWait:  cfg.MaxWait,
		// Buffered so ingest's store workers never block on a busy loop;
		// marks are coalesced anyway.
		dirty:   make(chan string, 1024),
		bins:    make(map[string]ModelBins),
		stopped: make(chan struct{}),
		done:    make(chan struct{}),
	}
}

// Start launches the binning loop.
func (b *Binner) Start() {
	b.startOnce.Do(func() { go b.loop() })
}

// Stop terminates the loop after one final recompute of anything pending.
// Safe on a binner that was never started (a server built but not Started
// — e.g. boot-recovery inspection): the loop is kept from ever launching
// instead of being waited for.
func (b *Binner) Stop() {
	b.startOnce.Do(func() { close(b.done) })
	b.stopOnce.Do(func() { close(b.stopped) })
	<-b.done
}

// MarkDirty notes that a model received a submission. Never blocks: under
// a full queue the mark is dropped, which is safe — a later mark or the
// maxWait sweep still triggers the recompute for marks already queued, and
// a full queue means the loop is about to run anyway.
func (b *Binner) MarkDirty(model string) {
	select {
	case b.dirty <- model:
	default:
	}
}

// Bins returns the cached bins for every model, sorted by model name. It
// never recomputes — reads are pure cache hits.
func (b *Binner) Bins() []ModelBins {
	b.mu.RLock()
	defer b.mu.RUnlock()
	out := make([]ModelBins, 0, len(b.bins))
	for _, mb := range b.bins {
		out = append(out, mb)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Model < out[j].Model })
	return out
}

// ModelBins returns the cached bins for one model.
func (b *Binner) ModelBins(model string) (ModelBins, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	mb, ok := b.bins[model]
	return mb, ok
}

// Recomputes returns how many per-model recomputes have run — the proof
// that serving GET /v1/bins does not trigger clustering.
func (b *Binner) Recomputes() uint64 { return b.recomputes.Load() }

// RefreshedAt returns when a model's cached bins were last recomputed.
func (b *Binner) RefreshedAt(model string) (time.Time, bool) {
	b.mu.RLock()
	defer b.mu.RUnlock()
	mb, ok := b.bins[model]
	return mb.refreshedAt, ok
}

// Refresh recomputes one model's bins synchronously — the staleness
// escape hatch: a replica serving bins under a max-staleness bound calls
// this when the cache has aged past the bound, instead of waiting for
// the debounced loop. Safe concurrently with the loop; the two
// recomputes just race benignly to publish equivalent results.
func (b *Binner) Refresh(model string) ModelBins {
	b.recompute(model)
	mb, _ := b.ModelBins(model)
	return mb
}

// loop debounces dirty marks and recomputes bins for quiet models.
func (b *Binner) loop() {
	defer close(b.done)
	pending := make(map[string]bool)
	var quiet *time.Timer
	var quietC <-chan time.Time
	var deadlineC <-chan time.Time

	flush := func() {
		for model := range pending {
			delete(pending, model)
			b.recompute(model)
		}
		if quiet != nil {
			quiet.Stop()
		}
		quietC, deadlineC = nil, nil
	}

	for {
		select {
		case model := <-b.dirty:
			pending[model] = true
			// Restart the quiet timer; arm the staleness deadline only
			// once per burst.
			if quiet == nil {
				quiet = time.NewTimer(b.debounce)
			} else {
				if !quiet.Stop() {
					select {
					case <-quiet.C:
					default:
					}
				}
				quiet.Reset(b.debounce)
			}
			quietC = quiet.C
			if deadlineC == nil {
				deadlineC = time.After(b.maxWait)
			}
		case <-quietC:
			flush()
		case <-deadlineC:
			flush()
		case <-b.stopped:
			// Drain any queued marks, recompute once, exit.
			for {
				select {
				case model := <-b.dirty:
					pending[model] = true
					continue
				default:
				}
				break
			}
			flush()
			return
		}
	}
}

// recompute rebuilds one model's bins from the store: normalize the
// accepted population's scores to the 26 °C reference ambient, then
// cluster them (exact 1-D k-means, silhouette-selected k).
func (b *Binner) recompute(model string) {
	all := b.store.Model(model)
	latest := b.store.Latest(model)
	mb := ModelBins{Model: model, Submissions: len(all)}

	var scores, ambs []float64
	for _, r := range latest {
		if !r.Accepted {
			continue
		}
		scores = append(scores, r.Score)
		ambs = append(ambs, float64(r.EstimatedAmbient))
	}
	mb.Accepted = len(scores)

	normalized := append([]float64(nil), scores...)
	if len(scores) >= 3 && spread(ambs) > 0.5 {
		// The slope fit needs ambient variation to be identifiable; an
		// ambient-uniform population needs no normalization anyway.
		_, slope := stats.LinearFit(ambs, scores)
		mb.AmbientSlope = slope
		for i := range normalized {
			normalized[i] = scores[i] - slope*(ambs[i]-26)
		}
	}

	if len(normalized) >= minClusterPop {
		if k, err := cluster.ChooseK(normalized, b.maxK); err == nil {
			if asg, err := cluster.KMeans1D(normalized, k); err == nil {
				mb.BinCount = k
				mb.Centroids = asg.Centroids
				mb.Sizes = make([]int, k)
				for _, lbl := range asg.Labels {
					mb.Sizes[lbl]++
				}
			}
		}
	}

	mb.Revision = b.revision.Add(1)
	mb.refreshedAt = time.Now()
	b.recomputes.Add(1)
	b.mu.Lock()
	b.bins[model] = mb
	b.mu.Unlock()
}

// spread returns max-min of xs.
func spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	lo, hi := xs[0], xs[0]
	for _, x := range xs[1:] {
		if x < lo {
			lo = x
		}
		if x > hi {
			hi = x
		}
	}
	return hi - lo
}
