package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/server"
	"accubench/internal/testkit"
	"accubench/internal/units"
)

// Black-box tests: everything goes through srv.Handler() over real HTTP;
// nothing reaches into the pipeline except the exported Counters.

func postSubmission(t *testing.T, client *http.Client, base string, raw []byte) *http.Response {
	t.Helper()
	resp, err := client.Post(base+"/v1/submissions", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func drainBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// scrapeText fetches the raw /metrics exposition.
func scrapeText(t *testing.T, client *http.Client, base string) string {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	return drainBody(t, resp)
}

// scrapeMetrics parses the integer-valued samples out of /metrics —
// comment lines and float-valued series (histogram sums, quantiles) are
// skipped, so the conservation-law counters stay a flat map.
func scrapeMetrics(t *testing.T, client *http.Client, base string) map[string]uint64 {
	t.Helper()
	out := make(map[string]uint64)
	for _, line := range strings.Split(scrapeText(t, client, base), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "#") {
			continue
		}
		name, val, ok := strings.Cut(line, " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			continue
		}
		out[name] = n
	}
	return out
}

// TestBackpressureDeterministic pins the saturation path without racing
// the workers: the pipeline is built but NOT started, so its intake queue
// (depth 1) fills deterministically. The first POST queues, the second
// hits the submit timeout and must come back 503 with Retry-After. Once
// the workers start, the retry goes through and the drain accounts for
// every byte ever accepted.
func TestBackpressureDeterministic(t *testing.T) {
	srv, err := server.New(server.Config{
		Workers:       1,
		QueueDepth:    1,
		SubmitTimeout: 50 * time.Millisecond,
		BinDebounce:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	policy := crowd.DefaultPolicy()

	first := testkit.AcceptedPayload(t, policy, "bp-0", 1000, 25)
	if resp := postSubmission(t, client, ts.URL, first); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST with free queue = %d, want 202 (%s)", resp.StatusCode, drainBody(t, resp))
	} else {
		drainBody(t, resp)
	}

	second := testkit.AcceptedPayload(t, policy, "bp-1", 1100, 25)
	resp := postSubmission(t, client, ts.URL, second)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST against a full stopped queue = %d, want 503 (%s)", resp.StatusCode, drainBody(t, resp))
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 backpressure response is missing Retry-After")
	}
	drainBody(t, resp)

	// Start the workers; the client's retry must now succeed.
	srv.Start(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := postSubmission(t, client, ts.URL, second)
		code := resp.StatusCode
		drainBody(t, resp)
		if code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry after Start still failing with %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv.Close()

	c := srv.Counters()
	testkit.CheckCounterFlow(t, c)
	if c.Stored != c.Received {
		t.Errorf("well-formed uploads dropped: received %d, stored %d", c.Received, c.Stored)
	}
	if c.Accepted != 2 {
		t.Errorf("accepted %d submissions, want 2", c.Accepted)
	}
}

// TestE2ESubmissionsToBins drives a synthetic population through the
// public API: accepted payloads in two score groups, a rejected hot
// device, and the malformed corpus. Asserts verdict lookups, bins, and
// the /metrics conservation laws after a graceful drain.
func TestE2ESubmissionsToBins(t *testing.T) {
	srv, err := server.New(server.Config{BinDebounce: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	policy := crowd.DefaultPolicy()

	var accepted int
	for i := 0; i < 10; i++ {
		// Alternate clusters as ambient rises so score and ambient stay
		// uncorrelated — otherwise the binner's slope normalization would
		// (correctly) absorb the separation as an ambient effect.
		score := 1000.0 // slow cluster
		if i%2 == 1 {
			score = 1600 // fast cluster
		}
		score += float64(i) // within-cluster spread
		ambient := units.Celsius(21 + 0.8*float64(i)) // interior of the window; the boundary itself is float-rounding fragile
		raw := testkit.AcceptedPayload(t, policy, fmt.Sprintf("e2e-%02d", i), score, ambient)
		resp := postSubmission(t, client, ts.URL, raw)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d = %d (%s)", i, resp.StatusCode, drainBody(t, resp))
		}
		drainBody(t, resp)
		accepted++
	}
	rejected := testkit.RejectedPayload(t, policy, "e2e-hot", 900)
	resp := postSubmission(t, client, ts.URL, rejected)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("rejected-by-policy POST = %d, want 202 (policy runs async)", resp.StatusCode)
	}
	drainBody(t, resp)
	for _, raw := range testkit.MalformedPayloads() {
		resp := postSubmission(t, client, ts.URL, raw)
		// Malformed bytes are still 202: decode happens off the request
		// path. They must surface in the decode-error counter instead.
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("malformed POST = %d, want 202 (%s)", resp.StatusCode, drainBody(t, resp))
		}
		drainBody(t, resp)
	}

	// Graceful drain, then everything is observable and settled.
	srv.Close()

	m := scrapeMetrics(t, client, ts.URL)
	testkit.CheckMetricsFlow(t, m)
	if got := m["crowdd_decode_errors_total"]; got != uint64(len(testkit.MalformedPayloads())) {
		t.Errorf("decode errors %d, want %d", got, len(testkit.MalformedPayloads()))
	}
	if got := m["crowdd_accepted_total"]; got != uint64(accepted) {
		t.Errorf("accepted %d, want %d", got, accepted)
	}
	if got := m["crowdd_rejected_total"]; got != 1 {
		t.Errorf("rejected %d, want 1", got)
	}

	// The exposition carries the observability layer's series: per-route
	// request histograms, per-stage ingest latency, per-shard store
	// occupancy, and derived quantiles — all structurally sound.
	body := scrapeText(t, client, ts.URL)
	for _, series := range []string{
		`crowdd_http_requests_total{route="POST /v1/submissions"}`,
		`crowdd_http_request_seconds_bucket{route="POST /v1/submissions",le="+Inf"}`,
		`crowdd_ingest_stage_seconds_bucket{stage="decode"`,
		`crowdd_ingest_stage_seconds_bucket{stage="filter"`,
		`crowdd_ingest_stage_seconds_bucket{stage="store"`,
		`crowdd_ingest_stage_seconds_p99{stage="decode"}`,
		`crowdd_store_shard_records{shard="`,
		`crowdd_store_shard_puts_total{shard="`,
		`crowdd_store_lock_wait_seconds_count`,
		`# TYPE crowdd_http_request_seconds histogram`,
	} {
		if !strings.Contains(body, series) {
			t.Errorf("/metrics is missing the %s series", series)
		}
	}
	testkit.CheckHistogramExposition(t, body)

	// Device verdict lookups.
	resp, err = client.Get(ts.URL + "/v1/devices/e2e-hot")
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Device   string `json:"device"`
		Accepted bool   `json:"accepted"`
	}
	if err := json.Unmarshal([]byte(drainBody(t, resp)), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Accepted {
		t.Error("hot device's verdict says accepted, want rejected")
	}
	resp, err = client.Get(ts.URL + "/v1/devices/no-such-device")
	if err != nil {
		t.Fatal(err)
	}
	if code := resp.StatusCode; code != http.StatusNotFound {
		t.Errorf("unknown device lookup = %d, want 404", code)
	}
	drainBody(t, resp)

	// Bins: Close ran a final recompute, so the cache covers the full
	// accepted population.
	resp, err = client.Get(ts.URL + "/v1/bins?model=Nexus+5")
	if err != nil {
		t.Fatal(err)
	}
	var bins struct {
		Models []struct {
			Model    string `json:"model"`
			Accepted int    `json:"accepted"`
			BinCount int    `json:"bin_count"`
			Sizes    []int  `json:"sizes"`
		} `json:"models"`
	}
	if err := json.Unmarshal([]byte(drainBody(t, resp)), &bins); err != nil {
		t.Fatal(err)
	}
	if len(bins.Models) != 1 || bins.Models[0].Model != "Nexus 5" {
		t.Fatalf("bins response: %+v", bins)
	}
	mb := bins.Models[0]
	if mb.Accepted != accepted {
		t.Errorf("bins cover %d accepted, want %d", mb.Accepted, accepted)
	}
	if mb.BinCount < 2 {
		t.Errorf("two well-separated score groups binned into %d cluster(s)", mb.BinCount)
	}
	var population int
	for _, n := range mb.Sizes {
		population += n
	}
	if population != accepted {
		t.Errorf("bin sizes sum to %d, want %d — devices fell out of the clustering", population, accepted)
	}

	resp, err = client.Get(ts.URL + "/v1/bins?model=NoSuchPhone")
	if err != nil {
		t.Fatal(err)
	}
	if code := resp.StatusCode; code != http.StatusNotFound {
		t.Errorf("bins for unknown model = %d, want 404", code)
	}
	drainBody(t, resp)
}

// stableBins is the /v1/bins payload minus Revision (a per-process
// recompute counter that legitimately differs across restarts).
type stableBins struct {
	Model        string    `json:"model"`
	Submissions  int       `json:"submissions"`
	Accepted     int       `json:"accepted"`
	AmbientSlope float64   `json:"ambient_slope_per_c"`
	BinCount     int       `json:"bin_count"`
	Centroids    []float64 `json:"centroids"`
	Sizes        []int     `json:"sizes"`
}

// fetchBins returns the stable bins for one model, or nil before the
// binner has covered it.
func fetchBins(t *testing.T, client *http.Client, base, model string) *stableBins {
	t.Helper()
	resp, err := client.Get(base + "/v1/bins")
	if err != nil {
		t.Fatal(err)
	}
	var bins struct {
		Models []stableBins `json:"models"`
	}
	if err := json.Unmarshal([]byte(drainBody(t, resp)), &bins); err != nil {
		t.Fatal(err)
	}
	for i := range bins.Models {
		if bins.Models[i].Model == model {
			return &bins.Models[i]
		}
	}
	return nil
}

// waitForBins polls until the model's bins cover wantAccepted devices.
func waitForBins(t *testing.T, client *http.Client, base, model string, wantAccepted int) *stableBins {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		if mb := fetchBins(t, client, base, model); mb != nil && mb.Accepted >= wantAccepted {
			return mb
		}
		if time.Now().After(deadline) {
			t.Fatalf("bins never covered %d accepted devices for %s", wantAccepted, model)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// waitForStored polls /metrics until the pipeline has stored (or failed)
// everything submitted, so crash points are deterministic.
func waitForStored(t *testing.T, client *http.Client, base string, want uint64) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		m := scrapeMetrics(t, client, base)
		if m["crowdd_stored_total"]+m["crowdd_decode_errors_total"] >= want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("pipeline never settled at %d processed: %v", want, m)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// walSegments lists the data dir's WAL segment files, sorted by name
// (which sorts by first sequence number).
func walSegments(t *testing.T, dir string) []string {
	t.Helper()
	paths, err := filepath.Glob(filepath.Join(dir, "wal-*.seg"))
	if err != nil {
		t.Fatal(err)
	}
	sort.Strings(paths)
	return paths
}

// TestCrashRecoveryE2E is the durability contract as a black box: boot
// with a data dir, submit over HTTP, hard-kill mid-stream, restart on the
// same dir, and every accepted submission — sequence numbers, scores,
// verdicts, bins — must come back. Then damage the log's tail two ways
// (torn half-frame, bit flip) and assert boot truncates instead of
// aborting, losing at most the damaged record.
func TestCrashRecoveryE2E(t *testing.T) {
	dir := t.TempDir()
	policy := crowd.DefaultPolicy()
	boot := func() *server.Server {
		// FsyncEvery 0 = synchronous commits: every 202'd-and-stored
		// submission is durable the moment the counter moves.
		srv, err := server.New(server.Config{
			DataDir:     dir,
			BinDebounce: time.Millisecond,
		})
		if err != nil {
			t.Fatal(err)
		}
		return srv
	}

	srv1 := boot()
	ctx1, cancel1 := context.WithCancel(context.Background())
	srv1.Start(ctx1)
	ts1 := httptest.NewServer(srv1.Handler())
	client := ts1.Client()

	const accepted = 8
	for i := 0; i < accepted; i++ {
		score := 1000.0 + float64(i)
		if i%2 == 1 {
			score = 1600 + float64(i)
		}
		raw := testkit.AcceptedPayload(t, policy, fmt.Sprintf("cr-%02d", i), score, units.Celsius(21+float64(i)))
		resp := postSubmission(t, client, ts1.URL, raw)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d = %d (%s)", i, resp.StatusCode, drainBody(t, resp))
		}
		drainBody(t, resp)
	}
	rejected := testkit.RejectedPayload(t, policy, "cr-hot", 900)
	resp := postSubmission(t, client, ts1.URL, rejected)
	drainBody(t, resp)
	waitForStored(t, client, ts1.URL, accepted+1)

	// The pre-crash ground truth: full store state and settled bins.
	wantStore := srv1.Store().Snapshot()
	wantLen := srv1.Store().Len()
	wantBins := waitForBins(t, client, ts1.URL, "Nexus 5", accepted)

	// Hard kill: abort the pipeline, abandon the WAL without flush or
	// snapshot. Everything whose commit completed is already on disk.
	cancel1()
	srv1.Crash()
	ts1.Close()

	// Restart on the same directory.
	srv2 := boot()
	rec, ok := srv2.Recovery()
	if !ok {
		t.Fatal("persistent server reports no recovery")
	}
	if rec.Restored != wantLen || rec.Replayed != wantLen || rec.SnapshotRecords != 0 {
		t.Fatalf("recovery = %+v, want all %d replayed from the log (no snapshot was cut)", rec, wantLen)
	}
	if got := srv2.Store().Snapshot(); !reflect.DeepEqual(got, wantStore) {
		t.Fatalf("recovered store diverged from pre-crash state:\n got %+v\nwant %+v", got, wantStore)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	srv2.Start(ctx2)
	ts2 := httptest.NewServer(srv2.Handler())
	client2 := ts2.Client()

	// The binner re-primed from the recovered store: bins match pre-crash.
	gotBins := waitForBins(t, client2, ts2.URL, "Nexus 5", accepted)
	if !reflect.DeepEqual(gotBins, wantBins) {
		t.Fatalf("recovered bins diverged:\n got %+v\nwant %+v", gotBins, wantBins)
	}

	// The black-box surfaces agree: healthz narrates the recovery, metrics
	// keep the conservation laws with the restored leg.
	resp, err := client2.Get(ts2.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	health := drainBody(t, resp)
	if !strings.Contains(health, "recovery: restored 9 records") {
		t.Errorf("healthz does not narrate the recovery:\n%s", health)
	}
	m := scrapeMetrics(t, client2, ts2.URL)
	testkit.CheckMetricsFlow(t, m)
	if m["crowdd_wal_restored_records"] != uint64(wantLen) || m["crowdd_wal_replayed_total"] != uint64(wantLen) {
		t.Errorf("restored-record metrics = %d/%d, want %d", m["crowdd_wal_restored_records"], m["crowdd_wal_replayed_total"], wantLen)
	}
	// A persistent server additionally exposes the WAL's latency series.
	walBody := scrapeText(t, client2, ts2.URL)
	for _, series := range []string{
		`crowdd_wal_fsync_seconds_bucket{le="+Inf"}`,
		`crowdd_wal_fsync_batch_count`,
	} {
		if !strings.Contains(walBody, series) {
			t.Errorf("/metrics on a persistent server is missing the %s series", series)
		}
	}
	testkit.CheckHistogramExposition(t, walBody)

	// The recovered server keeps accepting: one more device, then crash
	// again with a *torn tail* — garbage appended mid-write.
	raw := testkit.AcceptedPayload(t, policy, "cr-late", 1300, 26)
	resp = postSubmission(t, client2, ts2.URL, raw)
	drainBody(t, resp)
	waitForStored(t, client2, ts2.URL, 1)
	wantStore = srv2.Store().Snapshot()
	wantLen = srv2.Store().Len()
	cancel2()
	srv2.Crash()
	ts2.Close()

	segs := walSegments(t, dir)
	if len(segs) == 0 {
		t.Fatal("no WAL segments on disk after two sessions")
	}
	tail := segs[len(segs)-1]
	f, err := os.OpenFile(tail, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x13, 0x37, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	f.Close()

	srv3 := boot()
	rec, _ = srv3.Recovery()
	if rec.TruncatedBytes != 4 {
		t.Errorf("torn-tail boot truncated %d bytes, want 4", rec.TruncatedBytes)
	}
	if rec.Restored != wantLen {
		t.Errorf("torn tail cost committed records: restored %d, want %d", rec.Restored, wantLen)
	}
	if got := srv3.Store().Snapshot(); !reflect.DeepEqual(got, wantStore) {
		t.Fatal("store diverged after torn-tail recovery")
	}
	srv3.Crash()

	// Bit-flip the last committed frame: boot must truncate at the last
	// valid frame — losing exactly that one record — not abort.
	data, err := os.ReadFile(tail)
	if err != nil {
		t.Fatal(err)
	}
	if len(data) == 0 {
		t.Fatal("active segment is empty; the bit-flip scenario needs the tail record in it")
	}
	data[len(data)-2] ^= 0x20
	if err := os.WriteFile(tail, data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv4 := boot()
	rec, _ = srv4.Recovery()
	if rec.TruncatedBytes == 0 {
		t.Error("bit-flipped tail boot reports no truncation")
	}
	if rec.Restored != wantLen-1 {
		t.Errorf("bit-flipped tail: restored %d, want %d (exactly the damaged record lost)", rec.Restored, wantLen-1)
	}
	if got := srv4.Store().Snapshot(); !reflect.DeepEqual(got, wantStore[:len(wantStore)-1]) {
		t.Fatal("store diverged after bit-flip recovery: surviving prefix must be intact")
	}
	if err := srv4.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestTraceSpansE2E pins the tracing contract: with a TraceWriter set
// and a data dir, one accepted submission emits exactly one trace — a
// span per pipeline stage, decode → filter → wal_append → store, all
// carrying the same trace ID, the device, and (from the commit point
// on) the assigned sequence number.
func TestTraceSpansE2E(t *testing.T) {
	var buf bytes.Buffer
	srv, err := server.New(server.Config{
		DataDir:     t.TempDir(),
		BinDebounce: time.Millisecond,
		TraceWriter: &buf,
	})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	policy := crowd.DefaultPolicy()

	raw := testkit.AcceptedPayload(t, policy, "trace-dev", 1200, 25)
	resp := postSubmission(t, client, ts.URL, raw)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("POST = %d (%s)", resp.StatusCode, drainBody(t, resp))
	}
	drainBody(t, resp)
	srv.Close() // drain: every span is flushed before the buffer is read
	ts.Close()

	type span struct {
		Trace  string  `json:"trace"`
		Span   string  `json:"span"`
		Device string  `json:"device"`
		Seq    uint64  `json:"seq"`
		DurUS  float64 `json:"dur_us"`
		Err    string  `json:"err"`
	}
	var spans []span
	for _, line := range strings.Split(strings.TrimSpace(buf.String()), "\n") {
		if line == "" {
			continue
		}
		var s span
		if err := json.Unmarshal([]byte(line), &s); err != nil {
			t.Fatalf("trace output line %q is not a JSON span: %v", line, err)
		}
		spans = append(spans, s)
	}

	wantChain := []string{"decode", "filter", "wal_append", "store"}
	if len(spans) != len(wantChain) {
		t.Fatalf("one submission emitted %d spans, want %d:\n%s", len(spans), len(wantChain), buf.String())
	}
	for i, s := range spans {
		if s.Span != wantChain[i] {
			t.Errorf("span %d = %q, want %q", i, s.Span, wantChain[i])
		}
		if s.Trace == "" || s.Trace != spans[0].Trace {
			t.Errorf("span %q trace ID %q breaks the chain (first span has %q)", s.Span, s.Trace, spans[0].Trace)
		}
		if s.Device != "trace-dev" {
			t.Errorf("span %q carries device %q, want trace-dev", s.Span, s.Device)
		}
		if s.Err != "" {
			t.Errorf("span %q carries error %q on the happy path", s.Span, s.Err)
		}
		if s.DurUS < 0 {
			t.Errorf("span %q has negative duration %f", s.Span, s.DurUS)
		}
		if (s.Span == "wal_append" || s.Span == "store") && s.Seq == 0 {
			t.Errorf("span %q has no sequence number after the commit point", s.Span)
		}
	}
}

// TestGracefulShutdownSnapshotsE2E pins the clean-exit path: a graceful
// Close cuts a covering snapshot, so the next boot restores purely from
// it with zero replay.
func TestGracefulShutdownSnapshotsE2E(t *testing.T) {
	dir := t.TempDir()
	policy := crowd.DefaultPolicy()
	srv, err := server.New(server.Config{DataDir: dir, BinDebounce: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	ts := httptest.NewServer(srv.Handler())
	client := ts.Client()
	for i := 0; i < 5; i++ {
		raw := testkit.AcceptedPayload(t, policy, fmt.Sprintf("gs-%02d", i), 1000+float64(i), 24)
		resp := postSubmission(t, client, ts.URL, raw)
		drainBody(t, resp)
	}
	waitForStored(t, client, ts.URL, 5)
	want := srv.Store().Snapshot()
	if err := srv.Close(); err != nil {
		t.Fatal(err)
	}
	ts.Close()
	pc, ok := srv.PersistCounters()
	if !ok || pc.LastSnapshotSeq != 5 {
		t.Fatalf("graceful close cut no covering snapshot: %+v", pc)
	}

	srv2, err := server.New(server.Config{DataDir: dir})
	if err != nil {
		t.Fatal(err)
	}
	rec, _ := srv2.Recovery()
	if rec.Replayed != 0 || rec.SnapshotRecords != 5 || rec.Restored != 5 {
		t.Fatalf("boot after clean shutdown = %+v, want 5 from the snapshot and zero replay", rec)
	}
	if got := srv2.Store().Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatal("store diverged across a clean shutdown")
	}
	if err := srv2.Close(); err != nil {
		t.Fatal(err)
	}
}
