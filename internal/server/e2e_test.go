package server_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/server"
	"accubench/internal/testkit"
	"accubench/internal/units"
)

// Black-box tests: everything goes through srv.Handler() over real HTTP;
// nothing reaches into the pipeline except the exported Counters.

func postSubmission(t *testing.T, client *http.Client, base string, raw []byte) *http.Response {
	t.Helper()
	resp, err := client.Post(base+"/v1/submissions", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func drainBody(t *testing.T, resp *http.Response) string {
	t.Helper()
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

func scrapeMetrics(t *testing.T, client *http.Client, base string) map[string]uint64 {
	t.Helper()
	resp, err := client.Get(base + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body := drainBody(t, resp)
	out := make(map[string]uint64)
	for _, line := range strings.Split(body, "\n") {
		name, val, ok := strings.Cut(strings.TrimSpace(line), " ")
		if !ok {
			continue
		}
		n, err := strconv.ParseUint(val, 10, 64)
		if err != nil {
			t.Fatalf("unparseable metric line %q", line)
		}
		out[name] = n
	}
	return out
}

// TestBackpressureDeterministic pins the saturation path without racing
// the workers: the pipeline is built but NOT started, so its intake queue
// (depth 1) fills deterministically. The first POST queues, the second
// hits the submit timeout and must come back 503 with Retry-After. Once
// the workers start, the retry goes through and the drain accounts for
// every byte ever accepted.
func TestBackpressureDeterministic(t *testing.T) {
	srv, err := server.New(server.Config{
		Workers:       1,
		QueueDepth:    1,
		SubmitTimeout: 50 * time.Millisecond,
		BinDebounce:   time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	policy := crowd.DefaultPolicy()

	first := testkit.AcceptedPayload(t, policy, "bp-0", 1000, 25)
	if resp := postSubmission(t, client, ts.URL, first); resp.StatusCode != http.StatusAccepted {
		t.Fatalf("first POST with free queue = %d, want 202 (%s)", resp.StatusCode, drainBody(t, resp))
	} else {
		drainBody(t, resp)
	}

	second := testkit.AcceptedPayload(t, policy, "bp-1", 1100, 25)
	resp := postSubmission(t, client, ts.URL, second)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("POST against a full stopped queue = %d, want 503 (%s)", resp.StatusCode, drainBody(t, resp))
	}
	if ra := resp.Header.Get("Retry-After"); ra == "" {
		t.Error("503 backpressure response is missing Retry-After")
	}
	drainBody(t, resp)

	// Start the workers; the client's retry must now succeed.
	srv.Start(context.Background())
	deadline := time.Now().Add(5 * time.Second)
	for {
		resp := postSubmission(t, client, ts.URL, second)
		code := resp.StatusCode
		drainBody(t, resp)
		if code == http.StatusAccepted {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("retry after Start still failing with %d", code)
		}
		time.Sleep(10 * time.Millisecond)
	}
	srv.Close()

	c := srv.Counters()
	testkit.CheckCounterFlow(t, c)
	if c.Stored != c.Received {
		t.Errorf("well-formed uploads dropped: received %d, stored %d", c.Received, c.Stored)
	}
	if c.Accepted != 2 {
		t.Errorf("accepted %d submissions, want 2", c.Accepted)
	}
}

// TestE2ESubmissionsToBins drives a synthetic population through the
// public API: accepted payloads in two score groups, a rejected hot
// device, and the malformed corpus. Asserts verdict lookups, bins, and
// the /metrics conservation laws after a graceful drain.
func TestE2ESubmissionsToBins(t *testing.T) {
	srv, err := server.New(server.Config{BinDebounce: time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	srv.Start(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := ts.Client()
	policy := crowd.DefaultPolicy()

	var accepted int
	for i := 0; i < 10; i++ {
		// Alternate clusters as ambient rises so score and ambient stay
		// uncorrelated — otherwise the binner's slope normalization would
		// (correctly) absorb the separation as an ambient effect.
		score := 1000.0 // slow cluster
		if i%2 == 1 {
			score = 1600 // fast cluster
		}
		score += float64(i) // within-cluster spread
		ambient := units.Celsius(21 + 0.8*float64(i)) // interior of the window; the boundary itself is float-rounding fragile
		raw := testkit.AcceptedPayload(t, policy, fmt.Sprintf("e2e-%02d", i), score, ambient)
		resp := postSubmission(t, client, ts.URL, raw)
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("POST %d = %d (%s)", i, resp.StatusCode, drainBody(t, resp))
		}
		drainBody(t, resp)
		accepted++
	}
	rejected := testkit.RejectedPayload(t, policy, "e2e-hot", 900)
	resp := postSubmission(t, client, ts.URL, rejected)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("rejected-by-policy POST = %d, want 202 (policy runs async)", resp.StatusCode)
	}
	drainBody(t, resp)
	for _, raw := range testkit.MalformedPayloads() {
		resp := postSubmission(t, client, ts.URL, raw)
		// Malformed bytes are still 202: decode happens off the request
		// path. They must surface in the decode-error counter instead.
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("malformed POST = %d, want 202 (%s)", resp.StatusCode, drainBody(t, resp))
		}
		drainBody(t, resp)
	}

	// Graceful drain, then everything is observable and settled.
	srv.Close()

	m := scrapeMetrics(t, client, ts.URL)
	testkit.CheckMetricsFlow(t, m)
	if got := m["crowdd_decode_errors_total"]; got != uint64(len(testkit.MalformedPayloads())) {
		t.Errorf("decode errors %d, want %d", got, len(testkit.MalformedPayloads()))
	}
	if got := m["crowdd_accepted_total"]; got != uint64(accepted) {
		t.Errorf("accepted %d, want %d", got, accepted)
	}
	if got := m["crowdd_rejected_total"]; got != 1 {
		t.Errorf("rejected %d, want 1", got)
	}

	// Device verdict lookups.
	resp, err = client.Get(ts.URL + "/v1/devices/e2e-hot")
	if err != nil {
		t.Fatal(err)
	}
	var rec struct {
		Device   string `json:"device"`
		Accepted bool   `json:"accepted"`
	}
	if err := json.Unmarshal([]byte(drainBody(t, resp)), &rec); err != nil {
		t.Fatal(err)
	}
	if rec.Accepted {
		t.Error("hot device's verdict says accepted, want rejected")
	}
	resp, err = client.Get(ts.URL + "/v1/devices/no-such-device")
	if err != nil {
		t.Fatal(err)
	}
	if code := resp.StatusCode; code != http.StatusNotFound {
		t.Errorf("unknown device lookup = %d, want 404", code)
	}
	drainBody(t, resp)

	// Bins: Close ran a final recompute, so the cache covers the full
	// accepted population.
	resp, err = client.Get(ts.URL + "/v1/bins?model=Nexus+5")
	if err != nil {
		t.Fatal(err)
	}
	var bins struct {
		Models []struct {
			Model    string `json:"model"`
			Accepted int    `json:"accepted"`
			BinCount int    `json:"bin_count"`
			Sizes    []int  `json:"sizes"`
		} `json:"models"`
	}
	if err := json.Unmarshal([]byte(drainBody(t, resp)), &bins); err != nil {
		t.Fatal(err)
	}
	if len(bins.Models) != 1 || bins.Models[0].Model != "Nexus 5" {
		t.Fatalf("bins response: %+v", bins)
	}
	mb := bins.Models[0]
	if mb.Accepted != accepted {
		t.Errorf("bins cover %d accepted, want %d", mb.Accepted, accepted)
	}
	if mb.BinCount < 2 {
		t.Errorf("two well-separated score groups binned into %d cluster(s)", mb.BinCount)
	}
	var population int
	for _, n := range mb.Sizes {
		population += n
	}
	if population != accepted {
		t.Errorf("bin sizes sum to %d, want %d — devices fell out of the clustering", population, accepted)
	}

	resp, err = client.Get(ts.URL + "/v1/bins?model=NoSuchPhone")
	if err != nil {
		t.Fatal(err)
	}
	if code := resp.StatusCode; code != http.StatusNotFound {
		t.Errorf("bins for unknown model = %d, want 404", code)
	}
	drainBody(t, resp)
}
