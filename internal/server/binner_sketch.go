package server

import (
	"math"
	"time"

	"accubench/internal/cluster"
	"accubench/internal/stats"
)

// sketchBins serves one model's bins from the store's population sketch
// — the BinModeSketch read path. The fold is cached per model and keyed
// by the store's sketch revision: a read whose revision still matches is
// a pure cache hit, and the first read after any commit for the model
// re-folds O(cells), never O(corpus). Served bins are always current
// (refreshedAt is the serve time), so the cluster's max-staleness escape
// hatch never triggers a recompute in this mode.
func (b *Binner) sketchBins(model string) (ModelBins, bool) {
	rev, ok := b.store.SketchRevision(model)
	if !ok {
		return ModelBins{}, false
	}
	b.sketchMu.Lock()
	cached, hit := b.sketchCache[model]
	b.sketchMu.Unlock()
	if hit && cached.Revision == rev {
		if b.sketchHits != nil {
			b.sketchHits.Inc()
		}
		cached.refreshedAt = time.Now()
		return cached, true
	}

	sk, rev, ok := b.store.SketchSnapshot(model)
	if !ok {
		return ModelBins{}, false
	}
	mb := binsFromSketch(model, sk, b.maxK)
	mb.Revision = rev
	mb.refreshedAt = time.Now()
	b.recomputes.Add(1)
	if b.sketchFolds != nil {
		b.sketchFolds.Inc()
	}

	b.sketchMu.Lock()
	old, hadOld := b.sketchCache[model]
	// Concurrent reads race to fill the cache; the highest revision wins
	// so a slow fold never clobbers a fresher one.
	published := !hadOld || old.Revision <= mb.Revision
	if published {
		b.sketchCache[model] = mb
	} else {
		mb = old
	}
	b.sketchMu.Unlock()
	if published {
		b.noteDrift(old, hadOld, mb)
	}
	mb.refreshedAt = time.Now()
	return mb, true
}

// binsFromSketch clusters a population sketch into ModelBins — the
// sketch-path mirror of Binner.recompute, operating on weighted cell
// representatives instead of raw records. Same shape: fit the ambient
// slope (AmbientFit applies the exact path's identifiability gate),
// normalize every cell's score to the 26 °C reference, then cluster with
// the weighted exact k-means. Agreement with the exact path is bounded
// by the sketch's cell resolution; docs/BINNING.md states the tolerance
// contract the goldens enforce.
func binsFromSketch(model string, sk *stats.BinSketch, maxK int) ModelBins {
	mb := ModelBins{
		Model:       model,
		Submissions: int(sk.Records()),
		Accepted:    int(sk.Accepted()),
	}
	slope, fitted := sk.AmbientFit()
	if fitted {
		mb.AmbientSlope = slope
	}
	pts := sk.Points()
	if mb.Accepted < minClusterPop || len(pts) == 0 {
		return mb
	}
	wpts := make([]cluster.WeightedPoint, len(pts))
	for i, p := range pts {
		wpts[i] = cluster.WeightedPoint{
			Value:  p.Score - slope*(p.Ambient-26),
			Weight: p.Weight,
		}
	}
	k, err := cluster.ChooseKWeighted(wpts, maxK)
	if err != nil {
		return mb
	}
	asg, err := cluster.KMeans1DWeighted(wpts, k)
	if err != nil {
		return mb
	}
	mb.BinCount = k
	mb.Centroids = asg.Centroids
	mb.Sizes = make([]int, k)
	for c, w := range asg.Sizes {
		mb.Sizes[c] = int(w)
	}
	return mb
}

// noteDrift publishes the drift gauges for a freshly computed binning:
// the current bin count, whether it changed, and the mean relative
// centroid shift vs the previous revision in parts per million — the
// silicon-lottery population moving, told as monitoring. No-op without
// BinnerConfig.Obs.
func (b *Binner) noteDrift(old ModelBins, hadOld bool, mb ModelBins) {
	if b.driftBins == nil {
		return
	}
	b.driftBins.With(mb.Model).Set(int64(mb.BinCount))
	if !hadOld {
		return
	}
	if old.BinCount != mb.BinCount {
		b.driftChanges.Inc()
	}
	n := len(old.Centroids)
	if len(mb.Centroids) < n {
		n = len(mb.Centroids)
	}
	if n == 0 {
		return
	}
	var rel float64
	for i := 0; i < n; i++ {
		if old.Centroids[i] != 0 {
			rel += math.Abs(mb.Centroids[i]-old.Centroids[i]) / math.Abs(old.Centroids[i])
		}
	}
	b.driftShift.With(mb.Model).Set(int64(rel / float64(n) * 1e6))
}
