package server_test

import (
	"fmt"
	"math/rand"
	"os"
	"testing"
	"time"

	"accubench/internal/server"
	"accubench/internal/store"
	"accubench/internal/units"
)

// TestBinsReadLatencyBench measures the cost of serving fresh bins
// after a commit, exact recompute vs sketch fold, across a corpus-size
// sweep (devices spread over benchModels models — the realistic shape:
// many models, thousands of devices each). Each measured read follows
// one Put, so both paths pay their real invalidation cost: the exact
// path rescans and re-clusters the model's whole population, the sketch
// path re-folds O(cells). Results land in $BENCH_BINS_OUT (BENCH_10.json
// via scripts/bench_bins.sh; ns_per_op regresses upward and
// speedup_vs_exact downward in scripts/bench_diff.sh). Skipped unless
// the env var is set — it is a measurement, not a unit test.
func TestBinsReadLatencyBench(t *testing.T) {
	out := os.Getenv("BENCH_BINS_OUT")
	if out == "" {
		t.Skip("set BENCH_BINS_OUT to run the bins read-latency benchmark")
	}

	type row struct {
		name    string
		nsPerOp float64
		speedup float64
	}
	var rows []row
	for _, corpus := range []int{1_000, 10_000, 100_000} {
		st := seedBenchCorpus(t, corpus)
		// Iteration counts scale inversely with expected cost: the exact
		// path re-clusters 10% of the corpus per read, so small corpora
		// need many rounds to average out scheduler jitter while the 100k
		// sweep (seconds per read) can afford only a few.
		exactIters := 40
		if corpus >= 10_000 {
			exactIters = 5
		}
		if corpus >= 100_000 {
			exactIters = 4
		}
		exactNs := benchBinsRead(t, st, server.BinModeExact, exactIters)
		sketchNs := benchBinsRead(t, st, server.BinModeSketch, 30)
		speedup := exactNs / sketchNs
		t.Logf("bins corpus=%d: exact %.0f ns/op, sketch %.0f ns/op, %.1fx",
			corpus, exactNs, sketchNs, speedup)
		label := fmt.Sprintf("%dk", corpus/1000)
		rows = append(rows,
			row{name: "bins-read-exact-" + label, nsPerOp: exactNs},
			row{name: "bins-read-sketch-" + label, nsPerOp: sketchNs, speedup: speedup},
		)
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "{\n  \"bins\": [\n")
	for i, r := range rows {
		comma := ","
		if i == len(rows)-1 {
			comma = ""
		}
		if r.speedup > 0 {
			fmt.Fprintf(f, "    {\"name\": \"%s\", \"ns_per_op\": %.0f, \"speedup_vs_exact\": %.1f}%s\n",
				r.name, r.nsPerOp, r.speedup, comma)
		} else {
			fmt.Fprintf(f, "    {\"name\": \"%s\", \"ns_per_op\": %.0f}%s\n",
				r.name, r.nsPerOp, comma)
		}
	}
	fmt.Fprintf(f, "  ]\n}\n")
	t.Logf("wrote %s", out)
}

// benchModels spreads the corpus over this many models; reads target one
// model, so each read's population is corpus/benchModels devices.
const benchModels = 10

// seedBenchCorpus stores `corpus` accepted devices across benchModels
// models, three true speed bins per model with the thermal slope baked
// into every observation.
func seedBenchCorpus(t *testing.T, corpus int) *store.Store {
	t.Helper()
	rng := rand.New(rand.NewSource(77))
	st := store.New(0)
	perModel := corpus / benchModels
	bases := []float64{900, 1000, 1100}
	const slope = -2.0
	var recs []store.Record
	for m := 0; m < benchModels; m++ {
		model := fmt.Sprintf("bench-model-%02d", m)
		for d := 0; d < perModel; d++ {
			amb := 20 + rng.Float64()*10
			base := bases[d%len(bases)]
			recs = append(recs, store.Record{
				Device:           fmt.Sprintf("%s-d%06d", model, d),
				Model:            model,
				Score:            base*(1+0.002*(rng.Float64()-0.5)) + slope*(amb-26),
				EstimatedAmbient: units.Celsius(amb),
				Accepted:         true,
				Seq:              uint64(len(recs) + 1),
			})
		}
	}
	// Batch through the WAL-shaped path; it is the production commit
	// route and an order of magnitude faster to seed with.
	for off := 0; off < len(recs); off += 1024 {
		end := off + 1024
		if end > len(recs) {
			end = len(recs)
		}
		if err := st.PutSeqBatch(recs[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

// benchBinsRead times serving fresh bins for one model right after a
// commit touched it and reports the fastest round observed. Minimum,
// not mean: GC pauses and scheduler preemption only ever inflate a
// round, so the min is the stable estimate of the path's intrinsic
// cost — the mean was jittering 25% run to run, tripping the 10%
// bench_diff tolerance on pure noise.
func benchBinsRead(t *testing.T, st *store.Store, mode string, iters int) float64 {
	t.Helper()
	b := server.NewBinner(server.BinnerConfig{Store: st, Mode: mode})
	defer b.Stop()
	const model = "bench-model-00"
	// Warm once so allocation of cold caches is not in the measurement.
	b.Refresh(model)
	best := time.Duration(-1)
	for i := 0; i < iters; i++ {
		r := store.Record{
			Device:           fmt.Sprintf("bench-extra-%s-%d", mode, i),
			Model:            model,
			Score:            1000,
			EstimatedAmbient: 25,
			Accepted:         true,
		}
		if _, err := st.Put(r); err != nil {
			t.Fatal(err)
		}
		t0 := time.Now()
		mb := b.Refresh(model)
		d := time.Since(t0)
		if best < 0 || d < best {
			best = d
		}
		if mb.Accepted == 0 {
			t.Fatalf("%s: empty bins mid-bench", mode)
		}
	}
	return float64(best.Nanoseconds())
}
