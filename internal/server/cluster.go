package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"time"

	"accubench/internal/hlc"
	"accubench/internal/ingest"
	"accubench/internal/obs"
	"accubench/internal/replication"
	"accubench/internal/store"
)

// Route modes for submissions arriving at a node that is not the
// model's shard primary.
const (
	// RouteProxy forwards the upload to the primary server-side and
	// relays its response — clients never learn the topology.
	RouteProxy = "proxy"
	// RouteRedirect answers 307 with the primary's URL — cheaper for the
	// node, needs redirect-following clients.
	RouteRedirect = "redirect"
)

// forwardedHeader marks a proxied submission so the receiving node
// ingests it instead of routing again — two nodes with transiently
// different ring views must not bounce an upload between them.
const forwardedHeader = "X-Crowd-Forwarded"

// staleHeader is the GET /v1/bins response header carrying the serve-time
// age of the stalest model in the reply, milliseconds.
const staleHeader = "X-Bins-Staleness-Ms"

// ClusterConfig makes a Server one member of a replicated, sharded
// crowdd cluster (topology and failure modes in docs/CLUSTER.md).
type ClusterConfig struct {
	// NodeID is this node's identity: its name on the hash ring and the
	// Origin stamped into every record it ingests. Required.
	NodeID string
	// Peers maps every other node's ID to its base URL. The cluster
	// membership is NodeID plus these.
	Peers map[string]string
	// Replicas is each model's replica-set size, primary included; 0
	// means full replication (every node serves complete bins).
	Replicas int
	// VNodes is the ring's virtual-node count per node.
	VNodes int
	// RouteMode is how non-primary nodes handle submissions: RouteProxy
	// (default) or RouteRedirect.
	RouteMode string
	// AckTimeout bounds how long a submission's 202 waits for one
	// replica acknowledgement after the local durable commit.
	AckTimeout time.Duration
	// ShipInterval is the replication batching window.
	ShipInterval time.Duration
	// ReconcileInterval is the anti-entropy cadence.
	ReconcileInterval time.Duration
	// SnapshotGap is the reconcile pull size that counts as snapshot
	// catch-up.
	SnapshotGap int
	// MaxStaleness bounds how old a served GET /v1/bins entry may be: a
	// model whose cache has aged past the bound is recomputed before the
	// response is written. <= 0 disables the bound.
	MaxStaleness time.Duration
	// MaxDrift is the HLC drift clamp for remote stamps
	// (hlc.DefaultMaxDrift when 0).
	MaxDrift time.Duration
	// Client, when non-nil, carries all peer HTTP traffic — submission
	// proxying, replication shipping, and anti-entropy pulls. The
	// injection seam internal/chaos threads its fault-plan RoundTripper
	// through.
	Client *http.Client
	// Now, when non-nil, is the HLC's physical-clock source (hlc.Manual
	// in tests and chaos scenarios; time.Now otherwise).
	Now func() time.Time
}

// clusterCommitter wraps the node's durable commit path with HLC
// stamping: a record ingested here is stamped once — before the WAL
// append, so its cluster-wide identity is as durable as the record —
// while records arriving already stamped (replication applies) pass
// through untouched.
type clusterCommitter struct {
	nodeID string
	clock  *hlc.Clock
	base   ingest.Committer // nil when the node runs in-memory
	st     *store.Store
}

func (c *clusterCommitter) Commit(r *store.Record) (uint64, error) {
	if r.Stamp().IsZero() {
		r.SetStamp(c.nodeID, c.clock.Now())
	}
	if c.base != nil {
		return c.base.Commit(r)
	}
	seq, err := c.st.Put(*r)
	if err == nil {
		r.Seq = seq
	}
	return seq, err
}

// CommitBatch stamps and group-commits a whole ingest batch, keeping
// the streaming path on the WAL's single-append fast path when the
// underlying committer supports it. It implements ingest.BatchCommitter.
func (c *clusterCommitter) CommitBatch(recs []*store.Record) error {
	for _, r := range recs {
		if r.Stamp().IsZero() {
			r.SetStamp(c.nodeID, c.clock.Now())
		}
	}
	if bc, ok := c.base.(ingest.BatchCommitter); ok {
		return bc.CommitBatch(recs)
	}
	for _, r := range recs {
		if c.base != nil {
			if _, err := c.base.Commit(r); err != nil {
				return err
			}
			continue
		}
		seq, err := c.st.Put(*r)
		if err != nil {
			return err
		}
		r.Seq = seq
	}
	return nil
}

// initCluster builds the node's clock, committer and replicator, and
// mounts the cluster routes. Called from New when Config.Cluster is set,
// after the store and persistence exist but before the pipeline (which
// needs the committer).
func (s *Server) initCluster() error {
	cc := s.cfg.Cluster
	if cc.NodeID == "" {
		return errors.New("server: cluster config needs a NodeID")
	}
	s.clock = hlc.NewClock(cc.Now, cc.MaxDrift)
	s.rmet = obs.NewReplicationMetrics(s.reg)
	var base ingest.Committer
	if s.pers != nil {
		base = s.pers
	}
	s.committer = &clusterCommitter{nodeID: cc.NodeID, clock: s.clock, base: base, st: s.store}
	s.peerClient = cc.Client
	if s.peerClient == nil {
		s.peerClient = &http.Client{Timeout: 5 * time.Second}
	}
	repl, err := replication.New(replication.Config{
		NodeID:   cc.NodeID,
		Peers:    cc.Peers,
		Replicas: cc.Replicas,
		VNodes:   cc.VNodes,
		Clock:    s.clock,
		Store:    s.store,
		Apply: func(r *store.Record) error {
			_, err := s.committer.Commit(r)
			return err
		},
		OnApplied:         s.binner.MarkDirty,
		AckTimeout:        cc.AckTimeout,
		ShipInterval:      cc.ShipInterval,
		ReconcileInterval: cc.ReconcileInterval,
		SnapshotGap:       cc.SnapshotGap,
		Metrics:           s.rmet,
		Client:            s.peerClient,
	})
	if err != nil {
		return err
	}
	s.repl = repl
	return nil
}

// registerClusterRoutes mounts the peer-facing endpoints. Separate from
// initCluster because the route middleware (httpReqs/httpDur) is built
// after the pipeline.
func (s *Server) registerClusterRoutes() {
	s.route("POST /v1/replicate", s.handleReplicatePost)
	s.route("GET /v1/replicate", s.handleReplicateGet)
	s.route("GET /v1/digest", s.handleDigest)
}

// handleClusterSubmit is the cluster-mode submission path: route the
// upload to its shard primary (or ingest here if we are it, the primary
// is down, or the upload was already forwarded once), and acknowledge
// only after the record is durable locally AND held by at least one
// replica — the property that makes an acknowledged submission survive
// any single node kill.
func (s *Server) handleClusterSubmit(w http.ResponseWriter, r *http.Request, body []byte) {
	cc := s.cfg.Cluster
	model := peekModel(body)
	if model != "" && !s.repl.IsPrimary(model) && r.Header.Get(forwardedHeader) == "" {
		if base, ok := s.repl.PeerURL(s.repl.Primary(model)); ok {
			if cc.RouteMode == RouteRedirect {
				s.rmet.Redirected.Inc()
				w.Header().Set("Location", base+"/v1/submissions")
				writeJSON(w, http.StatusTemporaryRedirect, submitResponse{Status: "redirect"})
				return
			}
			if s.forwardSubmit(w, base, body) {
				s.rmet.Forwarded.Inc()
				return
			}
			// Primary unreachable: ingest here. Safe — the record's
			// identity is (origin, stamp), never colliding with the
			// primary's, and anti-entropy converges the shard.
			s.rmet.IngestFallback.Inc()
		}
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.SubmitTimeout)
	defer cancel()
	rec, err := s.pipe.SubmitWait(ctx, body)
	switch {
	case err == nil:
	case errors.Is(err, ingest.ErrBadPayload):
		writeJSON(w, http.StatusBadRequest, submitResponse{Status: "rejected", Error: err.Error()})
		return
	case errors.Is(err, ingest.ErrClosed):
		writeJSON(w, http.StatusServiceUnavailable, submitResponse{Status: "shutting down", Error: err.Error()})
		return
	case errors.Is(err, context.DeadlineExceeded):
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, submitResponse{Status: "overloaded", Error: "commit did not finish in time"})
		return
	default:
		writeJSON(w, http.StatusServiceUnavailable, submitResponse{Status: "error", Error: err.Error()})
		return
	}
	if err := s.repl.ShipWait(rec); err != nil {
		// Durable here but on no replica yet: refuse the ack so the
		// client retries (resubmission is dup-safe per device — the
		// newest stamp wins). The local copy stays; anti-entropy
		// spreads it once a peer returns.
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, submitResponse{Status: "unreplicated", Error: err.Error()})
		return
	}
	writeJSON(w, http.StatusAccepted, submitResponse{Status: "committed"})
}

// forwardSubmit proxies an upload to the primary and relays the
// response; false means the primary was unreachable and nothing was
// written to w.
//
// The relay is buffered: the primary's response is read fully before a
// single byte goes to the client. If the connection to the primary
// breaks mid-body — after the primary may already have committed — the
// client gets a clean 307 to the primary instead of a truncated relay,
// and retries there directly (resubmission is dup-safe: the record's
// identity is (origin, stamp) and the newest stamp per device wins).
func (s *Server) forwardSubmit(w http.ResponseWriter, base string, body []byte) bool {
	req, err := http.NewRequest(http.MethodPost, base+"/v1/submissions", bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(forwardedHeader, s.cfg.Cluster.NodeID)
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	relay, err := io.ReadAll(resp.Body)
	if err != nil {
		s.rmet.ForwardBodyFails.Inc()
		w.Header().Set("Location", base+"/v1/submissions")
		writeJSON(w, http.StatusTemporaryRedirect, submitResponse{Status: "redirect"})
		return true
	}
	w.Header().Set("Content-Type", resp.Header.Get("Content-Type"))
	w.WriteHeader(resp.StatusCode)
	w.Write(relay)
	return true
}

// peekModel extracts the model from an upload without running the full
// decode — routing needs only the shard key, and the primary re-decodes
// and validates everything anyway.
func peekModel(body []byte) string {
	var peek struct {
		Model string `json:"model"`
	}
	if err := json.Unmarshal(body, &peek); err != nil {
		return ""
	}
	return peek.Model
}

// handleReplicatePost applies a peer's shipped batch.
func (s *Server) handleReplicatePost(w http.ResponseWriter, r *http.Request) {
	batch, err := replication.DecodeBatch(http.MaxBytesReader(w, r.Body, 32<<20))
	if err != nil {
		// Protocol garbage — truncated bodies, unstamped or unidentified
		// records — is the sender's bug, not ours: refuse it at the
		// boundary instead of surfacing a 500 from ApplyRemote.
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	res, err := s.repl.ApplyRemote(batch.Records)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// handleReplicateGet serves a full model dump — the snapshot-shipping
// side of anti-entropy catch-up.
func (s *Server) handleReplicateGet(w http.ResponseWriter, r *http.Request) {
	model := r.URL.Query().Get("model")
	if model == "" {
		http.Error(w, "missing model parameter", http.StatusBadRequest)
		return
	}
	writeJSON(w, http.StatusOK, replication.Batch{
		From:    s.cfg.Cluster.NodeID,
		Records: s.store.Model(model),
	})
}

// handleDigest serves the per-model digests anti-entropy compares.
func (s *Server) handleDigest(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.store.DigestAll())
}

// stampBinAges fills each entry's serve-time AgeMS and returns the
// maximum. In cluster mode with a staleness bound, entries older than
// the bound are recomputed first, so a served response never exceeds
// the bound.
func (s *Server) stampBinAges(bins []ModelBins) int64 {
	var bound time.Duration
	if s.cfg.Cluster != nil {
		bound = s.cfg.Cluster.MaxStaleness
	}
	now := time.Now()
	var maxAge int64
	for i := range bins {
		if bound > 0 && now.Sub(bins[i].refreshedAt) > bound {
			bins[i] = s.binner.Refresh(bins[i].Model)
			bins[i].refreshedAt = now
		}
		age := now.Sub(bins[i].refreshedAt).Milliseconds()
		if age < 0 {
			age = 0
		}
		bins[i].AgeMS = age
		if age > maxAge {
			maxAge = age
		}
	}
	return maxAge
}

// Replicator exposes the node's replicator in cluster mode (nil
// otherwise) — load generators and tests drive reconciliation through
// it.
func (s *Server) Replicator() *replication.Replicator { return s.repl }

// Clock exposes the node's hybrid logical clock in cluster mode (nil
// otherwise).
func (s *Server) Clock() *hlc.Clock { return s.clock }
