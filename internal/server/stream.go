package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"mime"
	"net/http"
	"time"

	"accubench/internal/ingest"
	"accubench/internal/wire"
)

// isJSONContent reports whether a Content-Type names JSON. An absent
// header is allowed — curl demos and minimal clients — but anything
// explicitly non-JSON (a binary frame mis-sent to the JSON route, a
// form post) is refused with 415 before the body is decoded.
func isJSONContent(ct string) bool {
	if ct == "" {
		return true
	}
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == "application/json"
}

// isWireContent reports whether a Content-Type names the binary wire
// protocol. The stream route requires it explicitly — a JSON body
// arriving here is a misdirected client, not a stream.
func isWireContent(ct string) bool {
	mt, _, err := mime.ParseMediaType(ct)
	if err != nil {
		return false
	}
	return mt == wire.ContentType
}

// handleStream is the binary streaming batch-ingest path: the client
// holds one chunked POST open, sends batch frames, and reads one ack
// frame per batch off the response — full duplex over HTTP/1.1. Each
// decoded batch commits through ingest.SubmitBatch (one WAL group
// append, one store lock pass per shard); in cluster mode misrouted
// submissions are forwarded to their shard primary and the ack waits
// for a replica acknowledgement, so an acked batch has the same
// durability contract as a JSON 202 "committed".
//
// Flow control is the window the client runs: the handler reads the
// next frame only after the previous batch's ack is written, so a
// saturated node slows the stream instead of buffering it. A frame
// that fails CRC or decode terminates the stream — past the framing
// layer no byte can be trusted — and the client reopens and retries
// unacked batches (dup-safe in cluster mode: resubmissions take fresh
// stamps and the newest stamp per device wins).
func (s *Server) handleStream(w http.ResponseWriter, r *http.Request) {
	if ct := r.Header.Get("Content-Type"); !isWireContent(ct) {
		s.unsupportedMedia.Inc()
		writeJSON(w, http.StatusUnsupportedMediaType, submitResponse{
			Status: "rejected",
			Error:  "POST /v1/stream takes " + wire.ContentType + " frames; JSON uploads go to /v1/submissions",
		})
		return
	}
	rc := http.NewResponseController(w)
	if err := rc.EnableFullDuplex(); err != nil {
		writeJSON(w, http.StatusInternalServerError, submitResponse{Status: "error", Error: "full-duplex streaming unsupported"})
		return
	}
	w.Header().Set("Content-Type", wire.ContentType)
	w.WriteHeader(http.StatusOK)
	rc.Flush()

	s.wmet.Streams.Inc()
	s.wmet.StreamsActive.Add(1)
	defer s.wmet.StreamsActive.Add(-1)

	forwarded := r.Header.Get(forwardedHeader) != ""
	rd := wire.NewReader(r.Body)
	var ackBuf []byte
	for {
		fr, err := rd.Next()
		if err == io.EOF {
			return // clean end of stream at a frame boundary
		}
		if err != nil {
			if errors.Is(err, wire.ErrCorruptFrame) || errors.Is(err, wire.ErrShortFrame) {
				s.wmet.BadFrames.Inc()
			}
			return
		}
		s.wmet.Frames.Inc()
		t0 := time.Now()
		ack := s.ingestWireFrame(r.Context(), fr, forwarded)
		s.wmet.AckLatency.Observe(time.Since(t0).Seconds())
		ackBuf = wire.AppendAckFrame(ackBuf[:0], ack)
		if _, err := w.Write(ackBuf); err != nil {
			return
		}
		if err := rc.Flush(); err != nil {
			return
		}
		s.wmet.Acks.Inc()
	}
}

// ingestWireFrame commits one batch frame and builds its ack. In
// cluster mode the batch is first partitioned by shard primary:
// locally-owned submissions commit here, the rest forward to their
// primaries as one-shot wire POSTs (falling back to local ingest when
// a primary is unreachable, exactly like the JSON route).
func (s *Server) ingestWireFrame(ctx context.Context, fr wire.Frame, forwarded bool) wire.Ack {
	ack := wire.Ack{Batch: fr.Seq}
	if fr.Type != wire.FrameBatch {
		s.wmet.BadFrames.Inc()
		ack.Err = "expected a batch frame"
		return ack
	}
	wsubs, err := wire.DecodeSubmissions(fr)
	if err != nil {
		s.wmet.BadFrames.Inc()
		ack.Dropped = uint32(fr.Count)
		ack.Err = "undecodable batch: " + err.Error()
		return ack
	}
	s.wmet.Batches.Inc()
	s.wmet.Submissions.Add(uint64(len(wsubs)))
	s.wmet.BatchSize.Observe(float64(len(wsubs)))

	// Cluster routing: split the batch by each model's shard primary.
	// An already-forwarded frame ingests here unconditionally — two
	// nodes with transiently different ring views must not bounce a
	// batch between them.
	local := wsubs
	if s.repl != nil && !forwarded {
		var remote map[string][]wire.Submission
		local = local[:0]
		for _, sub := range wsubs {
			if s.repl.IsPrimary(sub.Model) {
				local = append(local, sub)
				continue
			}
			if remote == nil {
				remote = make(map[string][]wire.Submission)
			}
			primary := s.repl.Primary(sub.Model)
			remote[primary] = append(remote[primary], sub)
		}
		for node, group := range remote {
			base, ok := s.repl.PeerURL(node)
			if ok {
				if peerAck, sent := s.forwardWireBatch(base, fr.Seq, group); sent {
					s.wmet.ForwardedBatches.Inc()
					ack.Committed += peerAck.Committed
					ack.Dropped += peerAck.Dropped
					if peerAck.Err != "" && ack.Err == "" {
						ack.Err = "primary " + node + ": " + peerAck.Err
					}
					continue
				}
			}
			// Primary unreachable: ingest here. Safe — the record's
			// identity is (origin, stamp), never colliding with the
			// primary's, and anti-entropy converges the shard.
			s.wmet.ForwardFallbacks.Inc()
			local = append(local, group...)
		}
	}
	if len(local) == 0 {
		return ack
	}

	subs := make([]ingest.Submission, len(local))
	for i, ws := range local {
		subs[i] = wireToIngest(ws)
	}
	cctx, cancel := context.WithTimeout(ctx, s.cfg.SubmitTimeout)
	res, err := s.pipe.SubmitBatch(cctx, subs)
	cancel()
	ack.Dropped += uint32(res.Invalid + res.Failed)
	if err != nil {
		if ack.Err == "" {
			ack.Err = err.Error()
		}
		return ack
	}
	if res.Failed > 0 && ack.Err == "" {
		ack.Err = "commit failed; retry the batch"
	}
	if len(res.Records) == 0 {
		return ack
	}
	if s.repl != nil {
		if err := s.repl.ShipWaitBatch(res.Records); err != nil {
			// Durable here but on no replica yet: refuse the ack for
			// these records so the client retries (dup-safe — fresh
			// stamps, newest per device wins). The local copies stay;
			// anti-entropy spreads them once a peer returns.
			s.wmet.Unreplicated.Inc()
			ack.Dropped += uint32(len(res.Records))
			if ack.Err == "" {
				ack.Err = "unreplicated: " + err.Error()
			}
			return ack
		}
	}
	ack.Committed += uint32(len(res.Records))
	for i := range res.Records {
		if res.Records[i].Seq > ack.CommitSeq {
			ack.CommitSeq = res.Records[i].Seq
		}
	}
	return ack
}

// forwardWireBatch proxies a sub-batch to its shard primary as a
// one-shot wire POST (single frame, single ack) and returns the
// primary's ack; sent is false when the primary was unreachable or
// answered garbage, in which case the caller ingests locally.
func (s *Server) forwardWireBatch(base string, seq uint64, subs []wire.Submission) (wire.Ack, bool) {
	buf, err := wire.AppendBatchFrame(nil, seq, subs)
	if err != nil {
		return wire.Ack{}, false
	}
	req, err := http.NewRequest(http.MethodPost, base+wire.StreamPath, bytes.NewReader(buf))
	if err != nil {
		return wire.Ack{}, false
	}
	req.Header.Set("Content-Type", wire.ContentType)
	req.Header.Set(forwardedHeader, s.cfg.Cluster.NodeID)
	resp, err := s.peerClient.Do(req)
	if err != nil {
		return wire.Ack{}, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1024))
		return wire.Ack{}, false
	}
	fr, err := wire.NewReader(resp.Body).Next()
	if err != nil {
		return wire.Ack{}, false
	}
	ack, err := wire.DecodeAck(fr)
	if err != nil {
		return wire.Ack{}, false
	}
	io.Copy(io.Discard, resp.Body)
	return ack, true
}

// wireToIngest converts a wire submission to the pipeline's type. The
// HLC stamp and origin are currently informational on the client→server
// hop (client frames carry zeros; the committer stamps at ingest) but
// make node→node forwards lossless by construction.
func wireToIngest(ws wire.Submission) ingest.Submission {
	sub := ingest.Submission{
		Device:   ws.Device,
		Model:    ws.Model,
		Score:    ws.Score,
		Cooldown: make([]ingest.CooldownPoint, len(ws.Cooldown)),
	}
	for i, p := range ws.Cooldown {
		sub.Cooldown[i] = ingest.CooldownPoint{AtSeconds: p.AtSeconds, TempC: p.TempC}
	}
	return sub
}
