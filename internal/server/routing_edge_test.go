package server_test

import (
	"bytes"
	"net/http"
	"strings"
	"testing"
	"time"

	"accubench/internal/chaos"
	"accubench/internal/crowd"
	"accubench/internal/server"
	"accubench/internal/testkit"
)

// Proxy-routing edge cases: the failure corners of the cluster's
// submission routing — forwarded-loop protection, the mid-body proxy
// break, and the primary-down honesty contract.

// findRouting splits a cluster by role for the test model.
func findRouting(t *testing.T, nodes []*clusterNode, model string) (primary, nonPrimary *clusterNode) {
	t.Helper()
	id := nodes[0].srv.Replicator().Primary(model)
	for _, node := range nodes {
		if node.id == id {
			primary = node
		} else {
			nonPrimary = node
		}
	}
	if primary == nil || nonPrimary == nil {
		t.Fatalf("could not split roles: primary of %s is %s", model, id)
	}
	return primary, nonPrimary
}

// TestForwardedLoopProtection pins the loop breaker: a submission
// already carrying the forwarded marker is ingested where it lands,
// never routed again — two nodes with transiently different ring views
// must not bounce an upload between them forever.
func TestForwardedLoopProtection(t *testing.T) {
	nodes := startCluster(t, 2, nil)
	client := &http.Client{Timeout: 5 * time.Second}
	_, nonPrimary := findRouting(t, nodes, "Nexus 5")

	raw := testkit.AcceptedPayload(t, crowd.DefaultPolicy(), "loop-0", 1200, 25)
	req, err := http.NewRequest(http.MethodPost, nonPrimary.url+"/v1/submissions", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	// The literal header a forwarding peer would set — pinned by name so
	// a silent rename breaks this test, not the cluster.
	req.Header.Set("X-Crowd-Forwarded", "n9")
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	code := resp.StatusCode
	body := drainBody(t, resp)
	if code != http.StatusAccepted {
		t.Fatalf("forwarded submission to non-primary = %d (%s), want 202 local ingest", code, body)
	}

	// Ingested here, not routed: no forward, no redirect, and the record
	// is already in the local store.
	m := scrapeMetrics(t, client, nonPrimary.url)
	if m["crowdd_repl_forwarded_total"] != 0 || m["crowdd_repl_redirected_total"] != 0 {
		t.Errorf("forwarded submission was routed again: forwarded=%d redirected=%d",
			m["crowdd_repl_forwarded_total"], m["crowdd_repl_redirected_total"])
	}
	devResp, err := client.Get(nonPrimary.url + "/v1/devices/loop-0")
	if err != nil {
		t.Fatal(err)
	}
	devCode := devResp.StatusCode
	drainBody(t, devResp)
	if devCode != http.StatusOK {
		t.Errorf("forwarded submission not in the receiving node's store (HTTP %d)", devCode)
	}
}

// TestProxyMidBody307Fallback pins the ambiguous-outcome corner: the
// proxy reached the primary but the response relay broke mid-body. The
// primary may have committed, so the only honest answer is a 307 to the
// primary — the client retries there directly, dup-safe.
func TestProxyMidBody307Fallback(t *testing.T) {
	plan := chaos.NewPlan(3)
	nodes := startCluster(t, 2, chaosMut(t, plan))
	client := &http.Client{
		Timeout:       5 * time.Second,
		CheckRedirect: func(*http.Request, []*http.Request) error { return http.ErrUseLastResponse },
	}
	primary, nonPrimary := findRouting(t, nodes, "Nexus 5")

	// Every response from the primary to the non-primary breaks mid-body.
	plan.SetRule(nonPrimary.id, primary.id, chaos.Rule{BodyErr: 1})

	raw := testkit.AcceptedPayload(t, crowd.DefaultPolicy(), "midbody-0", 1200, 25)
	resp := postSubmission(t, client, nonPrimary.url, raw)
	code := resp.StatusCode
	loc := resp.Header.Get("Location")
	body := drainBody(t, resp)
	if code != http.StatusTemporaryRedirect {
		t.Fatalf("mid-body proxy failure answered %d (%s), want 307", code, body)
	}
	if want := primary.url + "/v1/submissions"; loc != want {
		t.Fatalf("307 Location = %q, want %q", loc, want)
	}
	if !strings.Contains(body, "redirect") {
		t.Fatalf("307 body %q does not say redirect", body)
	}
	m := scrapeMetrics(t, client, nonPrimary.url)
	if m["crowdd_repl_forward_body_failures_total"] != 1 {
		t.Errorf("crowdd_repl_forward_body_failures_total = %d, want 1", m["crowdd_repl_forward_body_failures_total"])
	}

	// The break hit only the relay: the primary handled the forwarded
	// POST, so following the redirect is a dup-safe retry.
	plan.Heal() // BodyErr would break reconcile pulls too
	postAccepted(t, client, primary, "midbody-0", 1200)
	waitConverged(t, client, nodes, 10*time.Second)
}

// TestPrimaryDownLocalIngestFallback pins the honesty contract when the
// shard primary is dead: the surviving non-primary ingests locally
// (durable, spreads via anti-entropy) but refuses the 202 — the client
// gets 503 "unreplicated" with Retry-After, because no replica holds
// the record yet.
func TestPrimaryDownLocalIngestFallback(t *testing.T) {
	nodes := startCluster(t, 2, func(i int, cfg *server.Config) {
		// A short ack window keeps the honest 503 fast.
		cfg.Cluster.AckTimeout = 300 * time.Millisecond
	})
	client := &http.Client{Timeout: 5 * time.Second}
	primary, survivor := findRouting(t, nodes, "Nexus 5")

	primary.kill()

	raw := testkit.AcceptedPayload(t, crowd.DefaultPolicy(), "orphan-0", 1200, 25)
	resp := postSubmission(t, client, survivor.url, raw)
	code := resp.StatusCode
	retryAfter := resp.Header.Get("Retry-After")
	body := drainBody(t, resp)
	if code != http.StatusServiceUnavailable {
		t.Fatalf("primary-down submission = %d (%s), want 503", code, body)
	}
	if !strings.Contains(body, "unreplicated") {
		t.Fatalf("503 body %q does not say unreplicated", body)
	}
	if retryAfter != "1" {
		t.Errorf("Retry-After = %q, want %q", retryAfter, "1")
	}

	m := scrapeMetrics(t, client, survivor.url)
	if m["crowdd_repl_ingest_fallback_total"] != 1 {
		t.Errorf("crowdd_repl_ingest_fallback_total = %d, want 1", m["crowdd_repl_ingest_fallback_total"])
	}
	if m["crowdd_repl_ack_timeouts_total"] == 0 {
		t.Error("crowdd_repl_ack_timeouts_total = 0, want a recorded timeout")
	}

	// Refused the ack, kept the record: it is durable locally and will
	// spread once a peer returns.
	devResp, err := client.Get(survivor.url + "/v1/devices/orphan-0")
	if err != nil {
		t.Fatal(err)
	}
	devCode := devResp.StatusCode
	drainBody(t, devResp)
	if devCode != http.StatusOK {
		t.Errorf("unreplicated record missing from the survivor (HTTP %d)", devCode)
	}
}
