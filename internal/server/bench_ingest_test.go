package server_test

import (
	"fmt"
	"net/http"
	"os"
	"sort"
	"sync"
	"testing"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/ingest"
	"accubench/internal/testkit"
	"accubench/internal/wire"
)

// TestIngestThroughputBench measures JSON-per-POST against binary
// streaming ingest at several batch sizes over a real HTTP listener,
// and records submissions/sec, ack p99 and the wire:JSON throughput
// ratio into $BENCH_INGEST_OUT (BENCH_8.json via scripts/
// bench_ingest.sh; compared direction-aware by scripts/bench_diff.sh).
// Skipped unless the env var is set — it is a measurement, not a unit
// test.
func TestIngestThroughputBench(t *testing.T) {
	out := os.Getenv("BENCH_INGEST_OUT")
	if out == "" {
		t.Skip("set BENCH_INGEST_OUT to run the ingest throughput benchmark")
	}
	const (
		total   = 4096
		workers = 8
	)

	jsonRate, jsonP99 := benchJSONIngest(t, total, workers)
	t.Logf("json per-POST: %.1f sub/s, ack p99 %.3f ms", jsonRate, jsonP99)

	type row struct {
		name    string
		rate    float64
		p99     float64
		ratio   float64
		isRatio bool
	}
	rows := []row{{name: "ingest-json-per-post", rate: jsonRate, p99: jsonP99}}
	for _, k := range []int{1, 16, 256} {
		rate, p99 := benchWireIngest(t, total, workers, k)
		ratio := rate / jsonRate
		t.Logf("wire k=%d: %.1f sub/s, ack p99 %.3f ms, %.2fx json", k, rate, p99, ratio)
		rows = append(rows, row{
			name: fmt.Sprintf("ingest-wire-k%d", k), rate: rate, p99: p99,
			ratio: ratio, isRatio: true,
		})
	}

	f, err := os.Create(out)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	fmt.Fprintf(f, "{\n  \"ingest\": [\n")
	for i, r := range rows {
		comma := ","
		if i == len(rows)-1 {
			comma = ""
		}
		if r.isRatio {
			fmt.Fprintf(f, "    {\"name\": \"%s\", \"submissions_per_sec\": %.1f, \"ack_p99_ms\": %.3f, \"ratio_vs_json\": %.2f}%s\n",
				r.name, r.rate, r.p99, r.ratio, comma)
		} else {
			fmt.Fprintf(f, "    {\"name\": \"%s\", \"submissions_per_sec\": %.1f, \"ack_p99_ms\": %.3f}%s\n",
				r.name, r.rate, r.p99, comma)
		}
	}
	fmt.Fprintf(f, "  ]\n}\n")
	t.Logf("wrote %s", out)
}

// benchJSONIngest drives total accepted submissions through POST
// /v1/submissions, one POST each, from `workers` concurrent uploaders
// over a shared keep-alive transport — the pre-wire client behavior.
func benchJSONIngest(t *testing.T, total, workers int) (subsPerSec, p99ms float64) {
	t.Helper()
	_, base := startStandalone(t)
	policy := crowd.DefaultPolicy()
	samples := testkit.AcceptedCooldown(t, policy, 25)
	payloads := make([][]byte, total)
	for i := range payloads {
		raw, err := ingest.Marshal(fmt.Sprintf("bench-json-%05d", i), "Nexus 5", 1000+float64(i%256), samples)
		if err != nil {
			t.Fatal(err)
		}
		payloads[i] = raw
	}
	transport := http.DefaultTransport.(*http.Transport).Clone()
	transport.MaxIdleConnsPerHost = workers
	client := &http.Client{Transport: transport}

	lat := make([][]float64, workers)
	next := make(chan []byte, workers)
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for raw := range next {
				t0 := time.Now()
				resp := postSubmission(t, client, base, raw)
				code := resp.StatusCode
				drainBody(t, resp)
				if code != http.StatusAccepted {
					t.Errorf("bench POST = %d", code)
					return
				}
				lat[w] = append(lat[w], float64(time.Since(t0).Nanoseconds())/1e6)
			}
		}(w)
	}
	for _, raw := range payloads {
		next <- raw
	}
	close(next)
	wg.Wait()
	elapsed := time.Since(start)
	var all []float64
	for _, l := range lat {
		all = append(all, l...)
	}
	return float64(total) / elapsed.Seconds(), p99(all)
}

// benchWireIngest drives the same population through persistent wire
// streams, k submissions per batch frame, one stream per worker.
func benchWireIngest(t *testing.T, total, workers, k int) (subsPerSec, p99ms float64) {
	t.Helper()
	_, base := startStandalone(t)
	subs := make([]wire.Submission, total)
	for i := range subs {
		subs[i] = wireAccepted(t, fmt.Sprintf("bench-wire-k%d-%05d", k, i), 1000+float64(i%256))
	}
	batches := make(chan []wire.Submission, workers)
	lat := make([][]float64, workers)
	client := &http.Client{}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			st, err := wire.OpenStream(client, base, nil)
			if err != nil {
				t.Error(err)
				return
			}
			defer st.Close()
			for batch := range batches {
				t0 := time.Now()
				ack, err := st.Do(batch)
				if err != nil || ack.Err != "" || int(ack.Committed) != len(batch) {
					t.Errorf("bench batch ack = %+v, %v", ack, err)
					return
				}
				lat[w] = append(lat[w], float64(time.Since(t0).Nanoseconds())/1e6)
			}
		}(w)
	}
	for off := 0; off < total; off += k {
		end := off + k
		if end > total {
			end = total
		}
		batches <- subs[off:end]
	}
	close(batches)
	wg.Wait()
	elapsed := time.Since(start)
	var all []float64
	for _, l := range lat {
		all = append(all, l...)
	}
	return float64(total) / elapsed.Seconds(), p99(all)
}

// p99 returns the 99th-percentile of ms samples.
func p99(ms []float64) float64 {
	if len(ms) == 0 {
		return 0
	}
	sort.Float64s(ms)
	return ms[int(float64(len(ms)-1)*0.99)]
}
