// Package wal is the crowd store's durable-persistence subsystem: an
// append-only segmented write-ahead log plus versioned snapshots, giving
// crowdd state that survives crashes and deploys.
//
// The paper's §VI crowdsourced-binning study only works if submissions
// accumulate over long horizons — bins sharpen as more same-model devices
// report — so the corpus must outlive any single process. The discipline
// is the classic one: every committed record is appended to the log and
// fsynced *before* it becomes visible in the store; a background
// snapshotter periodically checkpoints the whole store and deletes the
// log segments the snapshot covers; boot restores the latest valid
// snapshot and replays the log tail.
//
// Three layers live here:
//
//   - frame.go — the record framing (length + CRC-32C + seq), the
//     fuzzed decode surface.
//   - Log — the segmented append log: rotation at a size threshold,
//     torn-tail truncation on open, group-commit fsync batching.
//   - Persister — the store-facing orchestration: the commit point
//     (append, then store), snapshot + compaction, recovery on open.
package wal

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"accubench/internal/obs"
)

// ErrClosed is returned by Append after Close (or Crash).
var ErrClosed = errors.New("wal: log closed")

// DefaultSegmentBytes is the rotation threshold for Config.SegmentBytes
// <= 0: once the active segment reaches it, the log rotates to a fresh
// segment file (the unit of compaction).
const DefaultSegmentBytes = 4 << 20

// DefaultFlushEvery is the group-commit window used by the daemon's
// default flags: appends coalesce into one fsync per window.
const DefaultFlushEvery = 2 * time.Millisecond

// Config parameterizes a Log.
type Config struct {
	// Dir is the directory holding the segment files. Required.
	Dir string
	// SegmentBytes is the rotation threshold (DefaultSegmentBytes if
	// <= 0).
	SegmentBytes int64
	// FlushEvery is the group-commit window: appends from concurrent
	// callers coalesce into one fsync per window, and Append blocks until
	// the fsync covering its record completes. <= 0 selects synchronous
	// mode — every append fsyncs before returning (tests, strict
	// durability).
	FlushEvery time.Duration
	// StartSeq is the highest sequence number already durable elsewhere
	// (the covering snapshot). When the directory holds no segments, the
	// first append is assigned StartSeq+1.
	StartSeq uint64
	// Obs, when non-nil, registers the log's latency instrumentation:
	// a wal_fsync_seconds histogram (how long each fsync takes — the
	// durability tax every commit pays) and a wal_fsync_batch histogram
	// (how many appends each fsync covered — the group-commit
	// amortization factor).
	Obs *obs.Registry
	// FsyncDelay, when non-nil, runs immediately before every fsync while
	// the log's mutex is held — the slow-disk injection seam used by
	// internal/chaos. A sleeping FsyncDelay stalls the whole commit path
	// exactly the way a saturated or degraded disk does: appenders block
	// until the delayed fsync covering their record completes.
	FsyncDelay func()
}

// Counters is a snapshot of the log's activity counters.
type Counters struct {
	// Appends counts records appended this session.
	Appends uint64
	// Fsyncs counts fsync calls (group commit batches many appends into
	// one; synchronous mode makes this equal Appends).
	Fsyncs uint64
	// Bytes counts appended bytes, framing included.
	Bytes uint64
	// Segments is the current segment-file count.
	Segments int
	// LastSeq is the highest sequence number ever appended (or inherited
	// from StartSeq / the on-disk tail).
	LastSeq uint64
	// TruncatedBytes is how many torn-tail bytes Open cut from the final
	// segment.
	TruncatedBytes int64
}

// segment is one on-disk log file; its name carries the sequence number
// of its first record, so coverage is derivable without reading it.
type segment struct {
	path  string
	first uint64
}

// Log is the segmented append-only record log. Open it, Replay the tail,
// then Append; all methods are safe for concurrent use.
type Log struct {
	cfg Config

	mu        sync.Mutex
	commit    *sync.Cond // broadcast when syncedSeq, err or closed change
	f         *os.File   // active segment
	size      int64      // active segment size
	segments  []segment  // ascending by first seq; last is active
	lastSeq   uint64     // highest appended seq
	syncedSeq uint64     // highest fsynced seq
	err       error      // sticky I/O error
	closed    bool

	appends, fsyncs, bytes uint64
	truncated              int64

	// fsyncDur and fsyncBatch are nil unless Config.Obs was set.
	fsyncDur   *obs.Histogram
	fsyncBatch *obs.Histogram

	flushStop chan struct{}
	flushDone chan struct{}
	stopOnce  sync.Once
}

// segmentName renders the canonical file name for a segment whose first
// record carries seq.
func segmentName(seq uint64) string { return fmt.Sprintf("wal-%016x.seg", seq) }

// parseSegmentName inverts segmentName.
func parseSegmentName(name string) (uint64, bool) {
	hex, ok := strings.CutPrefix(name, "wal-")
	if !ok {
		return 0, false
	}
	hex, ok = strings.CutSuffix(hex, ".seg")
	if !ok || len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the directory's segment files ascending by first
// sequence number. Files that don't match the naming scheme are ignored.
func listSegments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if first, ok := parseSegmentName(e.Name()); ok {
			segs = append(segs, segment{path: filepath.Join(dir, e.Name()), first: first})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].first < segs[j].first })
	for i := 1; i < len(segs); i++ {
		if segs[i].first <= segs[i-1].first {
			return nil, fmt.Errorf("wal: segments %s and %s overlap",
				filepath.Base(segs[i-1].path), filepath.Base(segs[i].path))
		}
	}
	return segs, nil
}

// scanFrames walks data frame by frame and returns the offset just past
// the last valid frame plus that frame's sequence number (0 when none).
func scanFrames(data []byte) (validLen int, lastSeq uint64) {
	off := 0
	for off < len(data) {
		seq, _, n, err := DecodeFrame(data[off:])
		if err != nil {
			break
		}
		off += n
		lastSeq = seq
	}
	return off, lastSeq
}

// OpenLog opens (or creates) the log in cfg.Dir. The final segment is
// scanned for a torn tail — a crash mid-write leaves a half-frame or a
// bit-flipped block — and truncated back to the last valid frame, so a
// dirty shutdown never aborts boot. Appends resume after the highest
// surviving sequence number (or cfg.StartSeq when the log is empty).
func OpenLog(cfg Config) (*Log, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("wal: config needs a directory")
	}
	if cfg.SegmentBytes <= 0 {
		cfg.SegmentBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(cfg.Dir, 0o755); err != nil {
		return nil, err
	}
	segs, err := listSegments(cfg.Dir)
	if err != nil {
		return nil, err
	}
	l := &Log{cfg: cfg, lastSeq: cfg.StartSeq}
	l.commit = sync.NewCond(&l.mu)
	if cfg.Obs != nil {
		l.fsyncDur = cfg.Obs.Histogram("wal_fsync_seconds",
			"WAL fsync latency — the durability tax every commit pays", obs.DurationBuckets)
		l.fsyncBatch = cfg.Obs.Histogram("wal_fsync_batch",
			"appends covered per fsync — the group-commit amortization factor", obs.SizeBuckets)
	}
	if len(segs) == 0 {
		if err := l.openSegmentLocked(cfg.StartSeq + 1); err != nil {
			return nil, err
		}
	} else {
		l.segments = segs
		active := segs[len(segs)-1]
		data, err := os.ReadFile(active.path)
		if err != nil {
			return nil, err
		}
		validLen, tailSeq := scanFrames(data)
		if tailSeq == 0 {
			tailSeq = active.first - 1
		}
		if validLen < len(data) {
			l.truncated = int64(len(data) - validLen)
			if err := os.Truncate(active.path, int64(validLen)); err != nil {
				return nil, fmt.Errorf("wal: truncating torn tail of %s: %w", active.path, err)
			}
		}
		f, err := os.OpenFile(active.path, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, err
		}
		l.f = f
		l.size = int64(validLen)
		if tailSeq > l.lastSeq {
			l.lastSeq = tailSeq
		}
	}
	l.syncedSeq = l.lastSeq
	if cfg.FlushEvery > 0 {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flusher()
	}
	return l, nil
}

// openSegmentLocked creates and activates the segment whose first record
// will carry seq, then fsyncs the directory so the new name survives a
// crash.
func (l *Log) openSegmentLocked(first uint64) error {
	path := filepath.Join(l.cfg.Dir, segmentName(first))
	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return err
	}
	l.f = f
	l.size = 0
	l.segments = append(l.segments, segment{path: path, first: first})
	return syncDir(l.cfg.Dir)
}

// syncDir fsyncs a directory so renames and creates within it are
// durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Append writes one record and blocks until it is durable: in
// synchronous mode the fsync happens inline; in group-commit mode the
// caller waits for the flush window covering its record, so concurrent
// appenders share one fsync. It returns the record's assigned sequence
// number.
func (l *Log) Append(payload []byte) (uint64, error) {
	if len(payload) > MaxPayload {
		return 0, fmt.Errorf("wal: payload %d bytes exceeds the %d-byte frame limit", len(payload), MaxPayload)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	seq := l.lastSeq + 1
	frame := AppendFrame(make([]byte, 0, FrameHeaderSize+len(payload)), seq, payload)
	if _, err := l.f.Write(frame); err != nil {
		l.failLocked(err)
		return 0, err
	}
	l.lastSeq = seq
	l.size += int64(len(frame))
	l.appends++
	l.bytes += uint64(len(frame))
	switch {
	case l.size >= l.cfg.SegmentBytes:
		// Rotation fsyncs and retires the active segment, so everything
		// through seq is durable once it returns.
		if err := l.rotateLocked(); err != nil {
			l.failLocked(err)
			return 0, err
		}
	case l.cfg.FlushEvery <= 0:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	// Group commit: wait for the flusher (or a rotating sibling) to cover
	// this record.
	for l.syncedSeq < seq && l.err == nil && !l.closed {
		l.commit.Wait()
	}
	if l.err != nil {
		return 0, l.err
	}
	if l.syncedSeq < seq {
		return 0, ErrClosed
	}
	return seq, nil
}

// AppendBatch writes a group of records as consecutive frames in one
// write and blocks until all of them are durable — the streaming
// ingest's group-commit point. One mutex hold, one file write and (in
// synchronous mode) one fsync cover the whole batch, instead of one
// each per record. It returns the sequence number assigned to the
// first record; the rest follow consecutively.
func (l *Log) AppendBatch(payloads [][]byte) (uint64, error) {
	if len(payloads) == 0 {
		return 0, fmt.Errorf("wal: empty batch")
	}
	size := 0
	for _, p := range payloads {
		if len(p) > MaxPayload {
			return 0, fmt.Errorf("wal: payload %d bytes exceeds the %d-byte frame limit", len(p), MaxPayload)
		}
		size += FrameHeaderSize + len(p)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, ErrClosed
	}
	if l.err != nil {
		return 0, l.err
	}
	first := l.lastSeq + 1
	buf := make([]byte, 0, size)
	for i, p := range payloads {
		buf = AppendFrame(buf, first+uint64(i), p)
	}
	if _, err := l.f.Write(buf); err != nil {
		l.failLocked(err)
		return 0, err
	}
	last := first + uint64(len(payloads)) - 1
	l.lastSeq = last
	l.size += int64(len(buf))
	l.appends += uint64(len(payloads))
	l.bytes += uint64(len(buf))
	switch {
	case l.size >= l.cfg.SegmentBytes:
		if err := l.rotateLocked(); err != nil {
			l.failLocked(err)
			return 0, err
		}
	case l.cfg.FlushEvery <= 0:
		if err := l.syncLocked(); err != nil {
			return 0, err
		}
	}
	for l.syncedSeq < last && l.err == nil && !l.closed {
		l.commit.Wait()
	}
	if l.err != nil {
		return 0, l.err
	}
	if l.syncedSeq < last {
		return 0, ErrClosed
	}
	return first, nil
}

// syncLocked fsyncs the active segment and wakes the appenders it made
// durable.
func (l *Log) syncLocked() error {
	batch := l.lastSeq - l.syncedSeq
	if l.cfg.FsyncDelay != nil {
		l.cfg.FsyncDelay()
	}
	var t0 time.Time
	if l.fsyncDur != nil {
		t0 = time.Now()
	}
	if err := l.f.Sync(); err != nil {
		l.failLocked(err)
		return err
	}
	if l.fsyncDur != nil {
		l.fsyncDur.Observe(time.Since(t0).Seconds())
		if batch > 0 {
			l.fsyncBatch.Observe(float64(batch))
		}
	}
	l.fsyncs++
	l.syncedSeq = l.lastSeq
	l.commit.Broadcast()
	return nil
}

// rotateLocked retires the active segment (fsync + close) and opens the
// next one.
func (l *Log) rotateLocked() error {
	if err := l.syncLocked(); err != nil {
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	return l.openSegmentLocked(l.lastSeq + 1)
}

// failLocked records a sticky I/O error and wakes every waiter.
func (l *Log) failLocked(err error) {
	if l.err == nil {
		l.err = err
	}
	l.commit.Broadcast()
}

// flusher is the group-commit loop: one fsync per window covering every
// append since the last.
func (l *Log) flusher() {
	defer close(l.flushDone)
	ticker := time.NewTicker(l.cfg.FlushEvery)
	defer ticker.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-ticker.C:
			l.mu.Lock()
			if !l.closed && l.err == nil && l.syncedSeq < l.lastSeq {
				l.syncLocked() // error is sticky; appenders surface it
			}
			l.mu.Unlock()
		}
	}
}

// Replay streams every record with sequence number greater than `after`
// to fn, in order, across all segments. Call it after Open and before the
// first Append. Corruption in a non-final segment is an error (the final
// segment's tail was already truncated by Open); fn returning an error
// stops the replay.
func (l *Log) Replay(after uint64, fn func(seq uint64, payload []byte) error) error {
	l.mu.Lock()
	segs := append([]segment(nil), l.segments...)
	l.mu.Unlock()
	prev := uint64(0)
	for _, sg := range segs {
		data, err := os.ReadFile(sg.path)
		if err != nil {
			return err
		}
		off := 0
		for off < len(data) {
			seq, payload, n, err := DecodeFrame(data[off:])
			if err != nil {
				return fmt.Errorf("wal: %s corrupt at offset %d: %w", filepath.Base(sg.path), off, err)
			}
			off += n
			if seq <= prev {
				return fmt.Errorf("wal: %s: sequence %d after %d — log out of order", filepath.Base(sg.path), seq, prev)
			}
			prev = seq
			if seq <= after {
				continue
			}
			if err := fn(seq, payload); err != nil {
				return err
			}
		}
	}
	return nil
}

// CompactThrough deletes every segment whose records are all covered by a
// snapshot through seq. The active segment is never deleted, so the log
// always has somewhere to append. Returns how many segments were removed.
func (l *Log) CompactThrough(seq uint64) (int, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	removed := 0
	for len(l.segments) > 1 {
		// segments[0] covers [first, segments[1].first-1]; it is fully
		// covered by the snapshot iff that upper bound is <= seq.
		if l.segments[1].first > seq+1 {
			break
		}
		if err := os.Remove(l.segments[0].path); err != nil {
			return removed, err
		}
		l.segments = l.segments[1:]
		removed++
	}
	if removed > 0 {
		if err := syncDir(l.cfg.Dir); err != nil {
			return removed, err
		}
	}
	return removed, nil
}

// LastSeq returns the highest sequence number appended (or inherited).
func (l *Log) LastSeq() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.lastSeq
}

// Counters returns a snapshot of the log's activity counters.
func (l *Log) Counters() Counters {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Counters{
		Appends:        l.appends,
		Fsyncs:         l.fsyncs,
		Bytes:          l.bytes,
		Segments:       len(l.segments),
		LastSeq:        l.lastSeq,
		TruncatedBytes: l.truncated,
	}
}

// Close flushes outstanding appends and closes the log. Safe to call more
// than once.
func (l *Log) Close() error { return l.close(true) }

// Crash abandons the log without the final flush — the test hook that
// simulates a hard kill. Records whose Append already returned are on
// disk (Append never returns before its fsync); anything mid-flight is
// lost, exactly as a real crash would lose it.
func (l *Log) Crash() error { return l.close(false) }

func (l *Log) close(flush bool) error {
	l.stopOnce.Do(func() {
		if l.flushStop != nil {
			close(l.flushStop)
			<-l.flushDone
		}
	})
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	if flush && l.err == nil && l.syncedSeq < l.lastSeq {
		l.syncLocked()
	}
	err := l.f.Close()
	l.closed = true
	l.commit.Broadcast()
	if l.err != nil && err == nil {
		err = l.err
	}
	return err
}
