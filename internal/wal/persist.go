package wal

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"accubench/internal/obs"
	"accubench/internal/store"
)

// DefaultSnapshotEvery is how many commits accumulate between background
// snapshots when PersistConfig.SnapshotEvery <= 0.
const DefaultSnapshotEvery = 4096

// snapshotsKept is how many snapshot generations stay on disk: the
// newest, plus one fallback in case the newest is unreadable.
const snapshotsKept = 2

// PersistConfig parameterizes a Persister.
type PersistConfig struct {
	// Dir is the data directory (segments + snapshots). Required.
	Dir string
	// SegmentBytes is the log's rotation threshold (DefaultSegmentBytes
	// if <= 0).
	SegmentBytes int64
	// FlushEvery is the log's group-commit window; <= 0 fsyncs every
	// commit synchronously.
	FlushEvery time.Duration
	// SnapshotEvery is how many commits trigger a background snapshot
	// (DefaultSnapshotEvery if <= 0).
	SnapshotEvery int
	// Obs, when non-nil, registers the log's fsync latency and
	// group-commit batch-size histograms (see Config.Obs).
	Obs *obs.Registry
	// FsyncDelay is the slow-disk injection seam, forwarded to the log
	// (see Config.FsyncDelay).
	FsyncDelay func()
}

// Recovery reports what Open found and rebuilt from the data directory.
type Recovery struct {
	// SnapshotSeq is the sequence number the restored snapshot covered
	// (0 when no snapshot existed).
	SnapshotSeq uint64
	// SnapshotRecords is how many records the snapshot held.
	SnapshotRecords int
	// Replayed is how many log-tail records were replayed through the
	// store after the snapshot.
	Replayed int
	// Restored is the total record count rebuilt (snapshot + replay).
	Restored int
	// RestoredAccepted is how many restored records carried an accepted
	// verdict.
	RestoredAccepted int
	// TruncatedBytes is how many torn-tail bytes were cut from the log's
	// final segment — nonzero after a crash mid-write.
	TruncatedBytes int64
	// LastSeq is the sequence number the next commit follows.
	LastSeq uint64
}

// PersistCounters is a snapshot of the persister's activity.
type PersistCounters struct {
	// Log is the underlying segmented log's counters.
	Log Counters
	// Snapshots counts snapshots cut this session.
	Snapshots uint64
	// SnapshotFailures counts background snapshot attempts that failed.
	SnapshotFailures uint64
	// LastSnapshotSeq is the sequence number the newest snapshot covers.
	LastSnapshotSeq uint64
}

// Persister ties the segmented log to the sharded store: Commit is the
// crowd stack's durability point (append + fsync, then store), a
// background snapshotter checkpoints the store and compacts covered
// segments, and Open performs crash recovery. It implements
// ingest.Committer.
type Persister struct {
	cfg PersistConfig
	st  *store.Store
	log *Log

	// commitMu orders commits against snapshots: commits hold the read
	// side across append+insert, the snapshotter takes the write side so
	// the store it serializes reflects exactly the log it covers — no
	// in-flight record can fall between a snapshot and the compaction
	// that trusts it.
	commitMu sync.RWMutex

	sinceSnap    atomic.Uint64
	snapshots    atomic.Uint64
	snapFailures atomic.Uint64
	lastSnapSeq  atomic.Uint64

	kick     chan struct{}
	stop     chan struct{}
	done     chan struct{}
	stopOnce sync.Once
}

// Open opens the data directory, restores the newest valid snapshot into
// st, replays the log tail beyond it, and returns the persister ready for
// commits, along with a report of what recovery found. st must be empty
// and not yet shared.
func Open(cfg PersistConfig, st *store.Store) (*Persister, Recovery, error) {
	var rec Recovery
	if cfg.Dir == "" {
		return nil, rec, fmt.Errorf("wal: persist config needs a data directory")
	}
	if cfg.SnapshotEvery <= 0 {
		cfg.SnapshotEvery = DefaultSnapshotEvery
	}

	snapSeq, count, payload, ok, err := LatestSnapshot(cfg.Dir)
	if err != nil {
		return nil, rec, err
	}
	if ok {
		var recs []store.Record
		if err := json.Unmarshal(payload, &recs); err != nil {
			return nil, rec, fmt.Errorf("wal: snapshot payload undecodable: %w", err)
		}
		if uint64(len(recs)) != count {
			return nil, rec, fmt.Errorf("wal: snapshot holds %d records, header says %d", len(recs), count)
		}
		if err := st.Restore(recs); err != nil {
			return nil, rec, err
		}
		rec.SnapshotSeq = snapSeq
		rec.SnapshotRecords = len(recs)
		for _, r := range recs {
			if r.Accepted {
				rec.RestoredAccepted++
			}
		}
	}

	log, err := OpenLog(Config{
		Dir:          cfg.Dir,
		SegmentBytes: cfg.SegmentBytes,
		FlushEvery:   cfg.FlushEvery,
		StartSeq:     snapSeq,
		Obs:          cfg.Obs,
		FsyncDelay:   cfg.FsyncDelay,
	})
	if err != nil {
		return nil, rec, err
	}
	replayErr := log.Replay(snapSeq, func(seq uint64, payload []byte) error {
		var r store.Record
		if err := json.Unmarshal(payload, &r); err != nil {
			return fmt.Errorf("wal: record %d undecodable: %w", seq, err)
		}
		r.Seq = seq
		if err := st.PutSeq(r); err != nil {
			return err
		}
		rec.Replayed++
		if r.Accepted {
			rec.RestoredAccepted++
		}
		return nil
	})
	if replayErr != nil {
		log.Close()
		return nil, rec, replayErr
	}
	rec.Restored = rec.SnapshotRecords + rec.Replayed
	rec.TruncatedBytes = log.Counters().TruncatedBytes
	rec.LastSeq = log.LastSeq()

	p := &Persister{
		cfg:  cfg,
		st:   st,
		log:  log,
		kick: make(chan struct{}, 1),
		stop: make(chan struct{}),
		done: make(chan struct{}),
	}
	p.lastSnapSeq.Store(snapSeq)
	go p.snapshotLoop()
	return p, rec, nil
}

// Commit is the durability point: the record is marshaled, appended to
// the log (blocking until fsynced — group-committed with concurrent
// callers), assigned its sequence number by the append, and only then
// inserted into the store. A record is never visible without being
// durable. The record's Seq field is set on return.
func (p *Persister) Commit(r *store.Record) (uint64, error) {
	payload, err := json.Marshal(r)
	if err != nil {
		return 0, err
	}
	p.commitMu.RLock()
	seq, err := p.log.Append(payload)
	if err != nil {
		p.commitMu.RUnlock()
		return 0, err
	}
	r.Seq = seq
	perr := p.st.PutSeq(*r)
	p.commitMu.RUnlock()
	if perr != nil {
		// Logged but unstorable — a validation bug upstream; surface it
		// rather than diverging store and log silently.
		return 0, perr
	}
	if p.sinceSnap.Add(1) >= uint64(p.cfg.SnapshotEvery) {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
	return seq, nil
}

// CommitBatch commits a whole ingest batch through one group-commit:
// every record is marshaled up front, the batch is appended to the log
// as consecutive frames in a single durable write, the records'
// sequence numbers are assigned from the append, and the store insert
// takes one lock pass per shard (PutSeqBatch). All-or-nothing on the
// log side: if the append fails, no record of the batch was stored.
// Each record's Seq field is set on return. It implements
// ingest.BatchCommitter.
func (p *Persister) CommitBatch(recs []*store.Record) error {
	if len(recs) == 0 {
		return nil
	}
	payloads := make([][]byte, len(recs))
	for i, r := range recs {
		payload, err := json.Marshal(r)
		if err != nil {
			return err
		}
		payloads[i] = payload
	}
	p.commitMu.RLock()
	first, err := p.log.AppendBatch(payloads)
	if err != nil {
		p.commitMu.RUnlock()
		return err
	}
	vals := make([]store.Record, len(recs))
	for i, r := range recs {
		r.Seq = first + uint64(i)
		vals[i] = *r
	}
	perr := p.st.PutSeqBatch(vals)
	p.commitMu.RUnlock()
	if perr != nil {
		// Logged but unstorable — a validation bug upstream; surface it
		// rather than diverging store and log silently.
		return perr
	}
	if p.sinceSnap.Add(uint64(len(recs))) >= uint64(p.cfg.SnapshotEvery) {
		select {
		case p.kick <- struct{}{}:
		default:
		}
	}
	return nil
}

// snapshotLoop cuts a snapshot whenever enough commits have accumulated.
func (p *Persister) snapshotLoop() {
	defer close(p.done)
	for {
		select {
		case <-p.stop:
			return
		case <-p.kick:
			if p.sinceSnap.Load() < uint64(p.cfg.SnapshotEvery) {
				continue
			}
			if err := p.Snapshot(); err != nil {
				p.snapFailures.Add(1)
			}
		}
	}
}

// Snapshot serializes the store, writes a checksummed snapshot covering
// the log's current tail, deletes fully covered segments and prunes old
// snapshots. Commits are paused only while the store is copied in memory,
// not while the file is written.
func (p *Persister) Snapshot() error {
	p.commitMu.Lock()
	recs := p.st.Snapshot()
	seq := p.log.LastSeq()
	p.commitMu.Unlock()
	p.sinceSnap.Store(0)
	if seq == p.lastSnapSeq.Load() {
		return nil // nothing new since the last snapshot
	}
	payload, err := json.Marshal(recs)
	if err != nil {
		return err
	}
	if _, err := WriteSnapshot(p.cfg.Dir, seq, uint64(len(recs)), payload); err != nil {
		return err
	}
	if _, err := p.log.CompactThrough(seq); err != nil {
		return err
	}
	if err := PruneSnapshots(p.cfg.Dir, snapshotsKept); err != nil {
		return err
	}
	p.lastSnapSeq.Store(seq)
	p.snapshots.Add(1)
	return nil
}

// Counters returns a snapshot of the persister's activity counters.
func (p *Persister) Counters() PersistCounters {
	return PersistCounters{
		Log:              p.log.Counters(),
		Snapshots:        p.snapshots.Load(),
		SnapshotFailures: p.snapFailures.Load(),
		LastSnapshotSeq:  p.lastSnapSeq.Load(),
	}
}

// Close stops the snapshot loop, flushes the log, cuts a final snapshot
// covering everything committed, and closes the log — so a clean
// shutdown never needs replay on the next boot. Call it after the ingest
// pipeline has drained.
func (p *Persister) Close() error {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
	err := p.Snapshot()
	if cerr := p.log.Close(); err == nil {
		err = cerr
	}
	return err
}

// Crash abandons the persister without the final flush or snapshot — the
// test hook simulating a hard kill. Every record whose Commit returned is
// already durable in the log; recovery must rebuild the rest.
func (p *Persister) Crash() {
	p.stopOnce.Do(func() { close(p.stop) })
	<-p.done
	p.log.Crash()
}
