package wal

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"accubench/internal/store"
)

// TestAppendBatchReplayRoundtrip locks the group-append contract: one
// AppendBatch call assigns consecutive sequence numbers, survives a
// close/reopen, and replays exactly like the same payloads appended one
// at a time.
func TestAppendBatchReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := openSync(t, dir)
	payloads := make([][]byte, 9)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("batched-%04d", i))
	}
	first, err := l.AppendBatch(payloads[:4])
	if err != nil {
		t.Fatal(err)
	}
	if first != 1 {
		t.Errorf("first batch starts at seq %d, want 1", first)
	}
	// A single append between batches must slot into the same sequence.
	if seq, err := l.Append(payloads[4]); err != nil || seq != 5 {
		t.Fatalf("interleaved append = (%d, %v), want (5, nil)", seq, err)
	}
	first, err = l.AppendBatch(payloads[5:])
	if err != nil {
		t.Fatal(err)
	}
	if first != 6 {
		t.Errorf("second batch starts at seq %d, want 6", first)
	}
	if got := l.Counters().Appends; got != uint64(len(payloads)) {
		t.Errorf("appends counter = %d, want %d", got, len(payloads))
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l = openSync(t, dir)
	defer l.Close()
	seqs, got := replayAll(t, l, 0)
	if len(got) != len(payloads) {
		t.Fatalf("replayed %d records, want %d", len(got), len(payloads))
	}
	for i := range got {
		if seqs[i] != uint64(i+1) {
			t.Errorf("record %d replayed with seq %d, want %d", i, seqs[i], i+1)
		}
		if !bytes.Equal(got[i], payloads[i]) {
			t.Errorf("record %d = %q, want %q", i, got[i], payloads[i])
		}
	}
}

// TestAppendBatchOneFsync asserts the point of the group commit: a
// whole batch reaches the disk in one write and one fsync, where the
// same records appended individually pay one each.
func TestAppendBatchOneFsync(t *testing.T) {
	l := openSync(t, t.TempDir())
	defer l.Close()
	payloads := make([][]byte, 16)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("fsync-%04d", i))
	}
	before := l.Counters().Fsyncs
	if _, err := l.AppendBatch(payloads); err != nil {
		t.Fatal(err)
	}
	if got := l.Counters().Fsyncs - before; got != 1 {
		t.Errorf("batch of %d cost %d fsyncs, want 1", len(payloads), got)
	}
}

// TestAppendBatchRejectsOversized locks the validation edges: an empty
// batch is refused, and one oversized payload fails the whole batch
// before anything is written.
func TestAppendBatchRejectsOversized(t *testing.T) {
	l := openSync(t, t.TempDir())
	defer l.Close()
	if _, err := l.AppendBatch(nil); err == nil {
		t.Error("empty batch did not error")
	}
	huge := make([]byte, MaxPayload+1)
	if _, err := l.AppendBatch([][]byte{[]byte("ok"), huge}); err == nil {
		t.Fatal("oversized payload inside a batch did not fail the append")
	}
	if got := l.Counters().Appends; got != 0 {
		t.Errorf("failed batch still appended %d records", got)
	}
	if got, _ := l.AppendBatch([][]byte{[]byte("after")}); got != 1 {
		t.Errorf("sequence advanced to %d after a rejected batch, want 1", got)
	}
}

// TestCommitBatchCrashRecover is the persister half of the group
// commit: CommitBatch assigns consecutive sequence numbers, every
// record is visible in the store the moment the call returns, and a
// crash without flush or snapshot loses nothing — the batch's single
// log write carried it all.
func TestCommitBatchCrashRecover(t *testing.T) {
	dir := t.TempDir()
	p, st, _ := openPersister(t, dir)
	recs := make([]*store.Record, 20)
	for i := range recs {
		r := record(i)
		recs[i] = &r
	}
	if err := p.CommitBatch(recs); err != nil {
		t.Fatal(err)
	}
	for i, r := range recs {
		if r.Seq != uint64(i+1) {
			t.Errorf("record %d carries seq %d, want %d", i, r.Seq, i+1)
		}
	}
	if st.Len() != len(recs) {
		t.Fatalf("store holds %d records after the batch, want %d", st.Len(), len(recs))
	}
	want := st.Snapshot()
	p.Crash()

	p2, st2, rec2 := openPersister(t, dir)
	defer p2.Close()
	if rec2.Replayed != len(recs) {
		t.Fatalf("post-crash recovery replayed %d, want %d", rec2.Replayed, len(recs))
	}
	if got := st2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered store diverged:\n got %+v\nwant %+v", got, want)
	}
	// The recovered log continues the batch's sequence.
	r := record(99)
	if _, err := p2.Commit(&r); err != nil {
		t.Fatal(err)
	}
	if r.Seq != uint64(len(recs)+1) {
		t.Errorf("post-recovery commit got seq %d, want %d", r.Seq, len(recs)+1)
	}
}
