package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// openSync opens a synchronous log (every append fsyncs inline) — the
// deterministic mode all the non-concurrency tests use.
func openSync(t *testing.T, dir string, mut ...func(*Config)) *Log {
	t.Helper()
	cfg := Config{Dir: dir}
	for _, m := range mut {
		m(&cfg)
	}
	l, err := OpenLog(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return l
}

// appendN appends n numbered payloads and returns them.
func appendN(t *testing.T, l *Log, n int) [][]byte {
	t.Helper()
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("record-%04d", i))
		seq, err := l.Append(payloads[i])
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		if want := l.Counters().LastSeq; seq != want {
			t.Fatalf("append %d returned seq %d, log says %d", i, seq, want)
		}
	}
	return payloads
}

// replayAll collects every record past `after` as (seq, payload) pairs.
func replayAll(t *testing.T, l *Log, after uint64) (seqs []uint64, payloads [][]byte) {
	t.Helper()
	err := l.Replay(after, func(seq uint64, payload []byte) error {
		seqs = append(seqs, seq)
		payloads = append(payloads, append([]byte(nil), payload...))
		return nil
	})
	if err != nil {
		t.Fatalf("replay: %v", err)
	}
	return seqs, payloads
}

func TestAppendReplayRoundtrip(t *testing.T) {
	dir := t.TempDir()
	l := openSync(t, dir)
	want := appendN(t, l, 25)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A fresh open sees everything, in order, with contiguous seqs from 1.
	l2 := openSync(t, dir)
	defer l2.Close()
	seqs, got := replayAll(t, l2, 0)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, appended %d", len(got), len(want))
	}
	for i := range want {
		if seqs[i] != uint64(i+1) {
			t.Errorf("record %d replayed with seq %d", i, seqs[i])
		}
		if !bytes.Equal(got[i], want[i]) {
			t.Errorf("record %d payload drifted: %q != %q", i, got[i], want[i])
		}
	}
	// Appends continue the sequence.
	if seq, err := l2.Append([]byte("after-reopen")); err != nil || seq != 26 {
		t.Errorf("append after reopen = (%d, %v), want (26, nil)", seq, err)
	}
	// Replay past a midpoint skips the covered prefix.
	midSeqs, _ := replayAll(t, l2, 20)
	if len(midSeqs) != 6 || midSeqs[0] != 21 {
		t.Errorf("replay after 20 returned seqs %v", midSeqs)
	}
}

func TestSegmentRotationAndCompaction(t *testing.T) {
	dir := t.TempDir()
	// Each frame is 16 + 11 = 27 bytes; a 100-byte threshold rotates
	// every fourth append.
	l := openSync(t, dir, func(c *Config) { c.SegmentBytes = 100 })
	appendN(t, l, 20)

	c := l.Counters()
	if c.Segments < 3 {
		t.Fatalf("20 appends over a 100-byte threshold left %d segments, want several", c.Segments)
	}
	if c.Appends != 20 || c.LastSeq != 20 {
		t.Fatalf("counters = %+v", c)
	}

	// Compacting through seq 10 removes every segment fully covered by it
	// — and replay afterwards yields exactly the uncovered tail.
	removed, err := l.CompactThrough(10)
	if err != nil {
		t.Fatal(err)
	}
	if removed == 0 {
		t.Fatal("compaction removed nothing")
	}
	seqs, _ := replayAll(t, l, 10)
	if len(seqs) != 10 || seqs[0] != 11 || seqs[len(seqs)-1] != 20 {
		t.Fatalf("post-compaction replay seqs %v, want 11..20", seqs)
	}

	// The active segment survives even a compaction point past the tail.
	if _, err := l.CompactThrough(10_000); err != nil {
		t.Fatal(err)
	}
	if c := l.Counters(); c.Segments != 1 {
		t.Fatalf("compaction left %d segments, the active one must survive", c.Segments)
	}
	if seq, err := l.Append([]byte("still-appendable")); err != nil || seq != 21 {
		t.Fatalf("append after full compaction = (%d, %v), want (21, nil)", seq, err)
	}
	l.Close()
}

// activeSegment returns the path of the highest-numbered segment file.
func activeSegment(t *testing.T, dir string) string {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("no segments in %s: %v", dir, err)
	}
	return segs[len(segs)-1].path
}

func TestTornTailTruncatedOnOpen(t *testing.T) {
	dir := t.TempDir()
	l := openSync(t, dir)
	appendN(t, l, 5)
	l.Close()

	// A crash mid-write leaves a partial frame at the tail.
	garbage := []byte{0xde, 0xad, 0xbe, 0xef, 0x01}
	path := activeSegment(t, dir)
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()

	l2 := openSync(t, dir)
	defer l2.Close()
	if got := l2.Counters().TruncatedBytes; got != int64(len(garbage)) {
		t.Errorf("truncated %d bytes, want %d", got, len(garbage))
	}
	seqs, _ := replayAll(t, l2, 0)
	if len(seqs) != 5 {
		t.Fatalf("torn tail cost committed records: replayed %d, want 5", len(seqs))
	}
	if seq, err := l2.Append([]byte("after-tear")); err != nil || seq != 6 {
		t.Errorf("append after torn-tail recovery = (%d, %v), want (6, nil)", seq, err)
	}
}

func TestBitFlippedTailDropsOnlyLastRecord(t *testing.T) {
	dir := t.TempDir()
	l := openSync(t, dir)
	want := appendN(t, l, 3)
	l.Close()

	// Flip one bit inside the last frame's payload: the CRC fails, the
	// scanner stops at the previous frame, and open truncates the rest.
	path := activeSegment(t, dir)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	lastFrame := FrameHeaderSize + len(want[2])
	data[len(data)-lastFrame+FrameHeaderSize+2] ^= 0x40
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	l2 := openSync(t, dir)
	defer l2.Close()
	if got := l2.Counters().TruncatedBytes; got != int64(lastFrame) {
		t.Errorf("truncated %d bytes, want the whole %d-byte corrupt frame", got, lastFrame)
	}
	seqs, payloads := replayAll(t, l2, 0)
	if len(seqs) != 2 {
		t.Fatalf("replayed %d records, want 2 (the corrupt third dropped)", len(seqs))
	}
	for i := 0; i < 2; i++ {
		if !bytes.Equal(payloads[i], want[i]) {
			t.Errorf("surviving record %d drifted: %q", i, payloads[i])
		}
	}
	// The dropped record's seq is reused — the log's tail really moved back.
	if seq, err := l2.Append([]byte("replacement")); err != nil || seq != 3 {
		t.Errorf("append after truncation = (%d, %v), want (3, nil)", seq, err)
	}
}

func TestGroupCommitConcurrentAppends(t *testing.T) {
	dir := t.TempDir()
	l := openSync(t, dir, func(c *Config) { c.FlushEvery = time.Millisecond })
	const n = 64
	var wg sync.WaitGroup
	errs := make(chan error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := l.Append([]byte(fmt.Sprintf("concurrent-%03d", i))); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	c := l.Counters()
	if c.Appends != n || c.LastSeq != n {
		t.Fatalf("counters after concurrent appends: %+v", c)
	}
	if c.Fsyncs == 0 || c.Fsyncs > c.Appends {
		t.Fatalf("group commit ran %d fsyncs for %d appends", c.Fsyncs, c.Appends)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Every append that returned is on disk.
	l2 := openSync(t, dir)
	defer l2.Close()
	seqs, _ := replayAll(t, l2, 0)
	if len(seqs) != n {
		t.Fatalf("replayed %d of %d concurrent appends", len(seqs), n)
	}
}

func TestAppendAfterCloseFails(t *testing.T) {
	l := openSync(t, t.TempDir())
	appendN(t, l, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := l.Append([]byte("late")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
	// Close is idempotent.
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

func TestStartSeqContinuesAfterSnapshot(t *testing.T) {
	dir := t.TempDir()
	// A snapshot covered seqs 1..100; the log starts empty but must not
	// reuse them.
	l := openSync(t, dir, func(c *Config) { c.StartSeq = 100 })
	if seq, err := l.Append([]byte("first-after-snapshot")); err != nil || seq != 101 {
		t.Fatalf("first append with StartSeq 100 = (%d, %v), want (101, nil)", seq, err)
	}
	l.Close()

	// The on-disk tail outranks a stale StartSeq on reopen.
	l2 := openSync(t, dir, func(c *Config) { c.StartSeq = 50 })
	defer l2.Close()
	if seq, err := l2.Append([]byte("second")); err != nil || seq != 102 {
		t.Fatalf("append after reopen with stale StartSeq = (%d, %v), want (102, nil)", seq, err)
	}
}

func TestSegmentNameRoundtrip(t *testing.T) {
	for _, seq := range []uint64{1, 255, 1 << 40, ^uint64(0)} {
		name := segmentName(seq)
		got, ok := parseSegmentName(name)
		if !ok || got != seq {
			t.Errorf("segment name %q parsed to (%d, %v), want %d", name, got, ok, seq)
		}
	}
	for _, bad := range []string{"wal-123.seg", "snap-0000000000000001.snap", "wal-00000000000000zz.seg", "wal-0000000000000001.tmp"} {
		if _, ok := parseSegmentName(bad); ok {
			t.Errorf("parseSegmentName accepted %q", bad)
		}
	}
	if filepath.Base(segmentName(1)) != "wal-0000000000000001.seg" {
		t.Errorf("segment naming drifted: %s", segmentName(1))
	}
}
