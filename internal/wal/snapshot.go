package wal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Snapshot file format. A snapshot is one self-validating file:
//
//	offset  0: magic "ACCUSNAP" (8 bytes)
//	offset  8: format version, uint32 LE (SnapshotVersion)
//	offset 12: reserved, uint32 LE (zero)
//	offset 16: covered sequence number, uint64 LE — every log record with
//	           seq <= this is reflected in the payload
//	offset 24: record count, uint64 LE
//	offset 32: payload length, uint64 LE
//	offset 40: CRC-32C of the payload, uint32 LE
//	offset 44: CRC-32C of bytes [0, 44), uint32 LE
//	offset 48: payload
//
// Both CRCs must validate before a snapshot is trusted; a half-written or
// bit-flipped snapshot is skipped in favor of the previous one (writes go
// through a temp file + rename, and the previous snapshot is retained
// until the next one lands). The header layout is locked by a golden test
// so version bumps are deliberate.

// snapshotMagic identifies a snapshot file.
const snapshotMagic = "ACCUSNAP"

// SnapshotVersion is the current snapshot format version.
const SnapshotVersion = 1

// SnapshotHeaderSize is the fixed header size in bytes.
const SnapshotHeaderSize = 48

// snapshotName renders the canonical file name for a snapshot covering
// the log through seq.
func snapshotName(seq uint64) string { return fmt.Sprintf("snap-%016x.snap", seq) }

// parseSnapshotName inverts snapshotName.
func parseSnapshotName(name string) (uint64, bool) {
	hex, ok := strings.CutPrefix(name, "snap-")
	if !ok {
		return 0, false
	}
	hex, ok = strings.CutSuffix(hex, ".snap")
	if !ok || len(hex) != 16 {
		return 0, false
	}
	seq, err := strconv.ParseUint(hex, 16, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// EncodeSnapshotHeader renders the 48-byte header for a snapshot covering
// the log through seq, holding count records serialized as payload.
func EncodeSnapshotHeader(seq, count uint64, payload []byte) []byte {
	hdr := make([]byte, SnapshotHeaderSize)
	copy(hdr[0:8], snapshotMagic)
	binary.LittleEndian.PutUint32(hdr[8:12], SnapshotVersion)
	binary.LittleEndian.PutUint32(hdr[12:16], 0)
	binary.LittleEndian.PutUint64(hdr[16:24], seq)
	binary.LittleEndian.PutUint64(hdr[24:32], count)
	binary.LittleEndian.PutUint64(hdr[32:40], uint64(len(payload)))
	binary.LittleEndian.PutUint32(hdr[40:44], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(hdr[44:48], crc32.Checksum(hdr[0:44], castagnoli))
	return hdr
}

// decodeSnapshotHeader validates the header and returns the covered seq,
// record count, payload length and payload CRC.
func decodeSnapshotHeader(hdr []byte) (seq, count, payloadLen uint64, payloadCRC uint32, err error) {
	if len(hdr) < SnapshotHeaderSize {
		return 0, 0, 0, 0, fmt.Errorf("wal: snapshot header truncated at %d bytes", len(hdr))
	}
	if string(hdr[0:8]) != snapshotMagic {
		return 0, 0, 0, 0, fmt.Errorf("wal: not a snapshot file (bad magic)")
	}
	if got := crc32.Checksum(hdr[0:44], castagnoli); got != binary.LittleEndian.Uint32(hdr[44:48]) {
		return 0, 0, 0, 0, fmt.Errorf("wal: snapshot header checksum mismatch")
	}
	if v := binary.LittleEndian.Uint32(hdr[8:12]); v != SnapshotVersion {
		return 0, 0, 0, 0, fmt.Errorf("wal: snapshot format version %d, this build reads %d", v, SnapshotVersion)
	}
	seq = binary.LittleEndian.Uint64(hdr[16:24])
	count = binary.LittleEndian.Uint64(hdr[24:32])
	payloadLen = binary.LittleEndian.Uint64(hdr[32:40])
	payloadCRC = binary.LittleEndian.Uint32(hdr[40:44])
	return seq, count, payloadLen, payloadCRC, nil
}

// WriteSnapshot atomically writes a snapshot covering the log through seq
// into dir: temp file, fsync, rename, directory fsync. It returns the
// final path.
func WriteSnapshot(dir string, seq, count uint64, payload []byte) (string, error) {
	path := filepath.Join(dir, snapshotName(seq))
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return "", err
	}
	hdr := EncodeSnapshotHeader(seq, count, payload)
	if _, err := f.Write(hdr); err == nil {
		_, err = f.Write(payload)
	}
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return "", err
	}
	if err := syncDir(dir); err != nil {
		return "", err
	}
	return path, nil
}

// ReadSnapshot reads and fully validates one snapshot file, returning the
// covered sequence number, record count and payload.
func ReadSnapshot(path string) (seq, count uint64, payload []byte, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, nil, err
	}
	seq, count, payloadLen, payloadCRC, err := decodeSnapshotHeader(data)
	if err != nil {
		return 0, 0, nil, err
	}
	if uint64(len(data)-SnapshotHeaderSize) != payloadLen {
		return 0, 0, nil, fmt.Errorf("wal: snapshot %s payload is %d bytes, header says %d",
			filepath.Base(path), len(data)-SnapshotHeaderSize, payloadLen)
	}
	payload = data[SnapshotHeaderSize:]
	if crc32.Checksum(payload, castagnoli) != payloadCRC {
		return 0, 0, nil, fmt.Errorf("wal: snapshot %s payload checksum mismatch", filepath.Base(path))
	}
	return seq, count, payload, nil
}

// listSnapshots returns the directory's snapshot files descending by
// covered sequence number.
func listSnapshots(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type snap struct {
		path string
		seq  uint64
	}
	var snaps []snap
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSnapshotName(e.Name()); ok {
			snaps = append(snaps, snap{path: filepath.Join(dir, e.Name()), seq: seq})
		}
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].seq > snaps[j].seq })
	paths := make([]string, len(snaps))
	for i, s := range snaps {
		paths[i] = s.path
	}
	return paths, nil
}

// LatestSnapshot returns the newest snapshot in dir that validates end to
// end, skipping corrupt or unreadable ones. ok is false when no valid
// snapshot exists.
func LatestSnapshot(dir string) (seq, count uint64, payload []byte, ok bool, err error) {
	paths, err := listSnapshots(dir)
	if err != nil {
		return 0, 0, nil, false, err
	}
	for _, path := range paths {
		seq, count, payload, rerr := ReadSnapshot(path)
		if rerr != nil {
			continue // corrupt or torn: fall back to the previous one
		}
		return seq, count, payload, true, nil
	}
	return 0, 0, nil, false, nil
}

// PruneSnapshots removes all but the newest keep snapshot files (and any
// stale temp files). The previous snapshot is normally kept as the
// fallback should the newest turn out unreadable.
func PruneSnapshots(dir string, keep int) error {
	paths, err := listSnapshots(dir)
	if err != nil {
		return err
	}
	for i, path := range paths {
		if i < keep {
			continue
		}
		if err := os.Remove(path); err != nil {
			return err
		}
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return err
	}
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap.tmp") {
			os.Remove(filepath.Join(dir, e.Name()))
		}
	}
	return nil
}
