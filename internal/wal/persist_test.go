package wal

import (
	"fmt"
	"reflect"
	"testing"

	"accubench/internal/store"
)

// record builds a storable record; every third one is rejected so the
// accepted accounting is exercised too.
func record(i int) store.Record {
	r := store.Record{
		Device:           fmt.Sprintf("pd-%03d", i),
		Model:            "Nexus 5",
		Score:            1000 + float64(i),
		EstimatedAmbient: 25,
		Accepted:         i%3 != 0,
	}
	if !r.Accepted {
		r.RejectReason = "hot climate"
	}
	return r
}

// openPersister opens a synchronous-fsync persister over a fresh store.
func openPersister(t *testing.T, dir string, mut ...func(*PersistConfig)) (*Persister, *store.Store, Recovery) {
	t.Helper()
	cfg := PersistConfig{Dir: dir}
	for _, m := range mut {
		m(&cfg)
	}
	st := store.New(4)
	p, rec, err := Open(cfg, st)
	if err != nil {
		t.Fatal(err)
	}
	return p, st, rec
}

// commitN commits n records and returns the store's resulting state.
func commitN(t *testing.T, p *Persister, st *store.Store, n int) []store.Record {
	t.Helper()
	for i := 0; i < n; i++ {
		r := record(i)
		seq, err := p.Commit(&r)
		if err != nil {
			t.Fatalf("commit %d: %v", i, err)
		}
		if seq == 0 || r.Seq != seq {
			t.Fatalf("commit %d assigned seq %d, record carries %d", i, seq, r.Seq)
		}
	}
	return st.Snapshot()
}

func TestCommitCrashRecover(t *testing.T) {
	dir := t.TempDir()
	p, st, rec := openPersister(t, dir)
	if rec.Restored != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("fresh directory reported recovery %+v", rec)
	}
	want := commitN(t, p, st, 30)
	p.Crash() // no final flush, no snapshot — the log alone must carry it

	p2, st2, rec2 := openPersister(t, dir)
	defer p2.Close()
	if rec2.Replayed != 30 || rec2.Restored != 30 || rec2.SnapshotRecords != 0 {
		t.Fatalf("post-crash recovery = %+v, want 30 replayed from the log", rec2)
	}
	got := st2.Snapshot()
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("recovered store diverged:\n got %+v\nwant %+v", got, want)
	}
	if st2.Len() != 30 || st2.AcceptedLen() != st.AcceptedLen() {
		t.Fatalf("recovered store holds %d/%d, want %d/%d",
			st2.Len(), st2.AcceptedLen(), st.Len(), st.AcceptedLen())
	}
	// Commits resume past the recovered tail.
	r := record(99)
	if seq, err := p2.Commit(&r); err != nil || seq != 31 {
		t.Fatalf("commit after recovery = (%d, %v), want (31, nil)", seq, err)
	}
}

func TestSnapshotCompactsAndRestores(t *testing.T) {
	dir := t.TempDir()
	// Tiny segments so compaction has something to delete.
	p, st, _ := openPersister(t, dir, func(c *PersistConfig) { c.SegmentBytes = 256 })
	want := commitN(t, p, st, 40)
	before := p.Counters()
	if before.Log.Segments < 2 {
		t.Fatalf("40 commits over 256-byte segments left %d segments", before.Log.Segments)
	}
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	after := p.Counters()
	if after.Snapshots != 1 || after.LastSnapshotSeq != 40 {
		t.Fatalf("counters after snapshot = %+v", after)
	}
	if after.Log.Segments >= before.Log.Segments {
		t.Fatalf("snapshot compacted nothing: %d → %d segments", before.Log.Segments, after.Log.Segments)
	}
	// A second snapshot with nothing new is a no-op.
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	if c := p.Counters(); c.Snapshots != 1 {
		t.Fatalf("idle snapshot cut a file: %+v", c)
	}
	p.Crash()

	// Recovery now comes from the snapshot, not replay.
	p2, st2, rec := openPersister(t, dir, func(c *PersistConfig) { c.SegmentBytes = 256 })
	defer p2.Close()
	if rec.SnapshotSeq != 40 || rec.SnapshotRecords != 40 || rec.Replayed != 0 {
		t.Fatalf("recovery = %+v, want all 40 from the snapshot", rec)
	}
	if got := st2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot-restored store diverged from the committed state")
	}
}

func TestGracefulCloseNeedsNoReplay(t *testing.T) {
	dir := t.TempDir()
	p, st, _ := openPersister(t, dir)
	want := commitN(t, p, st, 12)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	p2, st2, rec := openPersister(t, dir)
	if rec.Replayed != 0 {
		t.Fatalf("clean shutdown still replayed %d records", rec.Replayed)
	}
	if rec.SnapshotSeq != 12 || rec.Restored != 12 {
		t.Fatalf("recovery after clean shutdown = %+v", rec)
	}
	if got := st2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("store after clean shutdown diverged")
	}
	if err := p2.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestCrashAfterSnapshotReplaysOnlyTail(t *testing.T) {
	dir := t.TempDir()
	p, st, _ := openPersister(t, dir)
	commitN(t, p, st, 20)
	if err := p.Snapshot(); err != nil {
		t.Fatal(err)
	}
	// Ten more commits after the checkpoint, then a hard kill.
	for i := 20; i < 30; i++ {
		r := record(i)
		if _, err := p.Commit(&r); err != nil {
			t.Fatal(err)
		}
	}
	want := st.Snapshot()
	p.Crash()

	p2, st2, rec := openPersister(t, dir)
	defer p2.Crash()
	if rec.SnapshotSeq != 20 || rec.SnapshotRecords != 20 || rec.Replayed != 10 || rec.Restored != 30 {
		t.Fatalf("recovery = %+v, want snapshot 20 + replay 10", rec)
	}
	if got := st2.Snapshot(); !reflect.DeepEqual(got, want) {
		t.Fatalf("snapshot+tail recovery diverged from the committed state")
	}
}

func TestOpenValidation(t *testing.T) {
	if _, _, err := Open(PersistConfig{}, store.New(1)); err == nil {
		t.Error("persister opened without a data directory")
	}
}
