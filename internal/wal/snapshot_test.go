package wal

import (
	"bytes"
	"encoding/hex"
	"os"
	"path/filepath"
	"testing"

	"accubench/internal/testkit"
)

func TestSnapshotRoundtrip(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`[{"device":"d1","model":"Nexus 5","score":1500,"seq":7}]`)
	path, err := WriteSnapshot(dir, 7, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	if filepath.Base(path) != "snap-0000000000000007.snap" {
		t.Errorf("snapshot landed at %s", path)
	}
	seq, count, got, err := ReadSnapshot(path)
	if err != nil {
		t.Fatal(err)
	}
	if seq != 7 || count != 1 || !bytes.Equal(got, payload) {
		t.Fatalf("roundtrip = (seq %d, count %d, %q)", seq, count, got)
	}
	// No temp file left behind.
	if _, err := os.Stat(path + ".tmp"); !os.IsNotExist(err) {
		t.Errorf("temp file survived the rename: %v", err)
	}
}

func TestLatestSnapshotFallsBackPastCorruption(t *testing.T) {
	dir := t.TempDir()
	older := []byte(`["older"]`)
	newer := []byte(`["newer"]`)
	if _, err := WriteSnapshot(dir, 10, 1, older); err != nil {
		t.Fatal(err)
	}
	newPath, err := WriteSnapshot(dir, 20, 1, newer)
	if err != nil {
		t.Fatal(err)
	}

	// Intact: the newest wins.
	seq, _, payload, ok, err := LatestSnapshot(dir)
	if err != nil || !ok || seq != 20 || !bytes.Equal(payload, newer) {
		t.Fatalf("LatestSnapshot = (%d, %q, %v, %v)", seq, payload, ok, err)
	}

	// Flip a payload bit in the newest: it must be skipped, not fatal.
	data, err := os.ReadFile(newPath)
	if err != nil {
		t.Fatal(err)
	}
	data[SnapshotHeaderSize+1] ^= 0x01
	if err := os.WriteFile(newPath, data, 0o644); err != nil {
		t.Fatal(err)
	}
	seq, _, payload, ok, err = LatestSnapshot(dir)
	if err != nil || !ok || seq != 10 || !bytes.Equal(payload, older) {
		t.Fatalf("LatestSnapshot past corruption = (%d, %q, %v, %v), want the seq-10 fallback", seq, payload, ok, err)
	}

	// Empty directory: no snapshot, no error.
	if _, _, _, ok, err := LatestSnapshot(t.TempDir()); ok || err != nil {
		t.Fatalf("LatestSnapshot on empty dir = (%v, %v)", ok, err)
	}
}

func TestReadSnapshotRejectsDamage(t *testing.T) {
	dir := t.TempDir()
	payload := []byte(`["record"]`)
	path, err := WriteSnapshot(dir, 3, 1, payload)
	if err != nil {
		t.Fatal(err)
	}
	pristine, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	damage := map[string]func([]byte) []byte{
		"bad magic":         func(b []byte) []byte { b[0] ^= 0xff; return b },
		"header bit flip":   func(b []byte) []byte { b[17] ^= 0x01; return b },
		"payload bit flip":  func(b []byte) []byte { b[SnapshotHeaderSize] ^= 0x01; return b },
		"truncated payload": func(b []byte) []byte { return b[:len(b)-2] },
		"truncated header":  func(b []byte) []byte { return b[:SnapshotHeaderSize-4] },
	}
	for name, mut := range damage {
		t.Run(name, func(t *testing.T) {
			broken := mut(append([]byte(nil), pristine...))
			if err := os.WriteFile(path, broken, 0o644); err != nil {
				t.Fatal(err)
			}
			if _, _, _, err := ReadSnapshot(path); err == nil {
				t.Error("damaged snapshot read without error")
			}
		})
	}
}

func TestPruneSnapshotsKeepsNewest(t *testing.T) {
	dir := t.TempDir()
	for _, seq := range []uint64{5, 10, 15, 20} {
		if _, err := WriteSnapshot(dir, seq, 0, []byte("[]")); err != nil {
			t.Fatal(err)
		}
	}
	// A stale temp file from an interrupted write is swept too.
	stale := filepath.Join(dir, "snap-00000000000000ff.snap.tmp")
	if err := os.WriteFile(stale, []byte("half"), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := PruneSnapshots(dir, 2); err != nil {
		t.Fatal(err)
	}
	paths, err := listSnapshots(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 {
		t.Fatalf("prune left %d snapshots, want 2", len(paths))
	}
	if seq, _ := parseSnapshotName(filepath.Base(paths[0])); seq != 20 {
		t.Errorf("newest surviving snapshot covers %d, want 20", seq)
	}
	if seq, _ := parseSnapshotName(filepath.Base(paths[1])); seq != 15 {
		t.Errorf("fallback surviving snapshot covers %d, want 15", seq)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Errorf("stale temp file survived pruning: %v", err)
	}
}

// TestSnapshotHeaderGolden locks the 48-byte header layout byte for byte:
// any change to the magic, field order, widths, or checksum definition
// shows up as golden drift and forces a deliberate version bump.
func TestSnapshotHeaderGolden(t *testing.T) {
	payload := []byte(`[{"device":"golden","model":"Nexus 5","score":1234,"accepted":true,"seq":3}]`)
	hdr := EncodeSnapshotHeader(3, 1, payload)
	if len(hdr) != SnapshotHeaderSize {
		t.Fatalf("header is %d bytes, want %d", len(hdr), SnapshotHeaderSize)
	}
	testkit.Golden(t, "snapshot_header", []byte(hex.Dump(hdr)))
}
