package wal

import (
	"encoding/binary"
	"errors"
	"hash/crc32"
)

// Frame layout. Every record in the log is one frame:
//
//	offset 0: payload length, uint32 little-endian
//	offset 4: CRC-32C (Castagnoli) over seq || payload, uint32 LE
//	offset 8: sequence number, uint64 LE
//	offset 16: payload bytes
//
// The CRC covers the sequence number as well as the payload, so a frame
// copied to the wrong position (or a stale block resurfacing after a
// crash) fails validation even when its payload bytes are intact. The
// length field is bounded by MaxPayload so a corrupted length can never
// send the scanner billions of bytes forward.

// FrameHeaderSize is the fixed per-record framing overhead, in bytes.
const FrameHeaderSize = 16

// MaxPayload is the largest payload a frame may carry. It exists to bound
// the damage of a corrupted length field: any length beyond it is treated
// as corruption, not as an instruction to allocate.
const MaxPayload = 16 << 20

// castagnoli is the CRC-32C table (the checksum used by ext4, iSCSI and
// most storage systems — hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrShortFrame reports that the buffer ends before the frame does —
	// at the log's tail this is a torn write, not corruption.
	ErrShortFrame = errors.New("wal: truncated frame")
	// ErrCorruptFrame reports a frame whose checksum or length field is
	// invalid — the bytes are there but cannot be trusted.
	ErrCorruptFrame = errors.New("wal: corrupt frame")
)

// frameCRC is the checksum stored at offset 4: CRC-32C over the encoded
// sequence number followed by the payload.
func frameCRC(seq uint64, payload []byte) uint32 {
	var seqb [8]byte
	binary.LittleEndian.PutUint64(seqb[:], seq)
	crc := crc32.Update(0, castagnoli, seqb[:])
	return crc32.Update(crc, castagnoli, payload)
}

// AppendFrame appends one encoded frame to dst and returns the extended
// slice, in the style of strconv.AppendInt.
func AppendFrame(dst []byte, seq uint64, payload []byte) []byte {
	var hdr [FrameHeaderSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], frameCRC(seq, payload))
	binary.LittleEndian.PutUint64(hdr[8:16], seq)
	dst = append(dst, hdr[:]...)
	return append(dst, payload...)
}

// DecodeFrame decodes the frame at the start of b. It returns the frame's
// sequence number, its payload (aliasing b — copy before retaining), and
// the total encoded size n, so b[n:] is the next frame. A buffer that ends
// mid-frame returns ErrShortFrame; a bad length or checksum returns
// ErrCorruptFrame. DecodeFrame never panics, whatever the input.
func DecodeFrame(b []byte) (seq uint64, payload []byte, n int, err error) {
	if len(b) < FrameHeaderSize {
		return 0, nil, 0, ErrShortFrame
	}
	size := binary.LittleEndian.Uint32(b[0:4])
	if size > MaxPayload {
		return 0, nil, 0, ErrCorruptFrame
	}
	n = FrameHeaderSize + int(size)
	if len(b) < n {
		return 0, nil, 0, ErrShortFrame
	}
	crc := binary.LittleEndian.Uint32(b[4:8])
	seq = binary.LittleEndian.Uint64(b[8:16])
	payload = b[FrameHeaderSize:n]
	if frameCRC(seq, payload) != crc {
		return 0, nil, 0, ErrCorruptFrame
	}
	return seq, payload, n, nil
}
