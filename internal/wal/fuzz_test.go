package wal

import (
	"bytes"
	"errors"
	"testing"
)

// FuzzWALRecordDecode fuzzes the frame codec — the surface every byte on
// disk crosses at boot, including bytes a crash or bit rot mangled.
// DecodeFrame must never panic; any frame it accepts must re-encode
// byte-identically (otherwise torn-tail truncation could shift the log's
// replay offset); and every encode→decode roundtrip must be lossless.
func FuzzWALRecordDecode(f *testing.F) {
	f.Add([]byte(nil), uint64(0))
	f.Add([]byte(`{"device":"d","model":"Nexus 5","score":1500,"seq":1}`), uint64(1))
	f.Add(AppendFrame(nil, 7, []byte("a valid frame as raw input")), uint64(7))
	f.Add(AppendFrame(nil, ^uint64(0), nil), uint64(42))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0}, uint64(3)) // absurd length field
	f.Add(bytes.Repeat([]byte{0}, FrameHeaderSize), uint64(0))
	f.Add(bytes.Repeat([]byte{0}, FrameHeaderSize-1), uint64(0)) // one byte short of a header
	f.Fuzz(func(t *testing.T, raw []byte, seq uint64) {
		// Arbitrary bytes: decode rejects or accepts, never panics, and an
		// accepted prefix re-encodes to exactly the bytes it was read from.
		gotSeq, payload, n, err := DecodeFrame(raw)
		switch {
		case err == nil:
			if n < FrameHeaderSize || n > len(raw) {
				t.Fatalf("decoded frame size %d out of bounds for %d input bytes", n, len(raw))
			}
			re := AppendFrame(nil, gotSeq, payload)
			if !bytes.Equal(re, raw[:n]) {
				t.Fatalf("accepted frame does not re-encode to its own bytes:\nin:  %x\nout: %x", raw[:n], re)
			}
		case !errors.Is(err, ErrShortFrame) && !errors.Is(err, ErrCorruptFrame):
			t.Fatalf("DecodeFrame returned an unknown error: %v", err)
		}

		// Encode→decode: lossless for any payload and sequence number.
		frame := AppendFrame(nil, seq, raw)
		gotSeq, payload, n, err = DecodeFrame(frame)
		if err != nil {
			t.Fatalf("roundtrip decode failed: %v", err)
		}
		if gotSeq != seq || n != len(frame) || !bytes.Equal(payload, raw) {
			t.Fatalf("roundtrip lost data: seq %d→%d, %d bytes→%d", seq, gotSeq, len(raw), len(payload))
		}
		// The decoded frame must also survive a scan with trailing garbage:
		// the scanner stops exactly at the frame boundary.
		if validLen, lastSeq := scanFrames(append(frame, 0xba, 0xdd)); validLen != len(frame) || lastSeq != seq {
			t.Fatalf("scan over frame+garbage = (%d, %d), want (%d, %d)", validLen, lastSeq, len(frame), seq)
		}
	})
}
