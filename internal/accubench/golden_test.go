package accubench_test

import (
	"testing"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/fleet"
	"accubench/internal/monsoon"
	"accubench/internal/soc"
	"accubench/internal/testkit"
)

// quickBench assembles a bare bench (no THERMABOX) on one Nexus 5 unit
// and runs a shortened two-iteration ACCUBENCH.
func quickBench(t *testing.T, mode accubench.Mode) (accubench.Result, *accubench.Runner) {
	t.Helper()
	u := fleet.Nexus5Units()[0]
	model, err := soc.ModelByName(u.ModelName)
	if err != nil {
		t.Fatal(err)
	}
	mon := monsoon.New(model.Battery.Nominal)
	dev, err := u.NewDevice(26, 42, mon.Supply())
	if err != nil {
		t.Fatal(err)
	}
	cfg := accubench.DefaultConfig(mode)
	cfg.Warmup = 45 * time.Second
	cfg.Workload = 90 * time.Second
	cfg.Iterations = 2
	r := &accubench.Runner{Device: dev, Monitor: mon, Config: cfg}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	return res, r
}

// iterSnapshot projects one iteration to reviewable JSON at full float
// precision; any change in the thermal step, governor decision, or
// energy accounting perturbs the bytes.
type iterSnapshot struct {
	Score            int      `json:"score"`
	EnergyJ          float64  `json:"energy_j"`
	MeanPowerW       float64  `json:"mean_power_w"`
	PeakPowerW       float64  `json:"peak_power_w"`
	MeanBigFreqMHz   float64  `json:"mean_big_freq_mhz"`
	MeanDieTempC     float64  `json:"mean_die_temp_c"`
	PeakDieTempC     float64  `json:"peak_die_temp_c"`
	CooldownTookS    float64  `json:"cooldown_took_s"`
	ThrottleEvents   int      `json:"throttle_events"`
	MinOnlineCores   int      `json:"min_online_cores"`
	CooldownReadings int      `json:"cooldown_readings"`
	Phases           []string `json:"phases"`
}

func snapshot(res accubench.Result) []iterSnapshot {
	out := make([]iterSnapshot, len(res.Iterations))
	for i, it := range res.Iterations {
		s := iterSnapshot{
			Score:            it.Score,
			EnergyJ:          float64(it.Energy.Energy),
			MeanPowerW:       float64(it.Energy.MeanPower),
			PeakPowerW:       float64(it.Energy.PeakPower),
			MeanBigFreqMHz:   float64(it.MeanBigFreq),
			MeanDieTempC:     float64(it.MeanDieTemp),
			PeakDieTempC:     float64(it.PeakDieTemp),
			CooldownTookS:    it.CooldownTook.Seconds(),
			ThrottleEvents:   it.ThrottleEvents,
			MinOnlineCores:   it.MinOnlineCores,
			CooldownReadings: len(it.CooldownReadings),
		}
		for _, p := range it.Phases {
			s.Phases = append(s.Phases, p.Name)
		}
		out[i] = s
	}
	return out
}

func TestGoldenRunnerNexus5Quick(t *testing.T) {
	res, _ := quickBench(t, accubench.Unconstrained)
	testkit.GoldenJSON(t, "runner_nexus5_quick", snapshot(res))
}

// TestEnergyEqualsIntegralOfPower cross-checks the two independent power
// accountings: the Monsoon's trapezoidal measurement over the workload
// window against the device's own power trace integrated over the same
// window.
func TestEnergyEqualsIntegralOfPower(t *testing.T) {
	res, r := quickBench(t, accubench.Unconstrained)
	series, ok := r.Device.Trace().Lookup("power")
	if !ok {
		t.Fatal("device trace has no power series")
	}
	for _, it := range res.Iterations {
		var checked bool
		for _, p := range it.Phases {
			if p.Name != "workload" {
				continue
			}
			testkit.CheckEnergyMatchesTrace(t, series.Samples(), p.Start, p.End, it.Energy)
			checked = true
		}
		if !checked {
			t.Fatalf("iteration %d has no workload phase: %+v", it.Index, it.Phases)
		}
	}
}

// TestGoldenNaiveQuick locks the naive-baseline protocol the methodology
// comparison is judged against.
func TestGoldenNaiveQuick(t *testing.T) {
	u := fleet.Nexus5Units()[0]
	model, err := soc.ModelByName(u.ModelName)
	if err != nil {
		t.Fatal(err)
	}
	mon := monsoon.New(model.Battery.Nominal)
	dev, err := u.NewDevice(26, 42, mon.Supply())
	if err != nil {
		t.Fatal(err)
	}
	cfg := accubench.DefaultConfig(accubench.Unconstrained)
	cfg.Warmup = 45 * time.Second
	cfg.Workload = 90 * time.Second
	r := &accubench.Runner{Device: dev, Monitor: mon, Config: cfg}
	naive, err := r.RunNaive(3, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	testkit.GoldenJSON(t, "naive_nexus5_quick", struct {
		Scores         []int     `json:"scores"`
		StartDieTemps  []float64 `json:"start_die_temps_c"`
		FirstVsRestPct float64   `json:"first_vs_rest_pct"`
	}{naive.Scores, temps(naive), naive.FirstVsRestPct()})
}

func temps(n accubench.NaiveResult) []float64 {
	out := make([]float64, len(n.StartDieTemps))
	for i, c := range n.StartDieTemps {
		out[i] = float64(c)
	}
	return out
}
