package accubench

import (
	"math"
	"strings"
	"testing"
	"time"

	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/silicon"
	"accubench/internal/soc"
	"accubench/internal/thermabox"
	"accubench/internal/units"
)

// quickConfig shrinks phase durations so unit tests stay fast while keeping
// the methodology's structure intact.
func quickConfig(mode Mode) Config {
	c := DefaultConfig(mode)
	c.Warmup = 45 * time.Second
	c.Workload = 90 * time.Second
	c.Iterations = 2
	c.CooldownTarget = 40
	return c
}

func newRunner(t *testing.T, model *soc.DeviceModel, corner silicon.ProcessCorner, mode Mode, seed int64) *Runner {
	t.Helper()
	d, err := device.New(device.Config{
		Name:    "dut",
		Model:   model,
		Corner:  corner,
		Ambient: 26,
		Seed:    seed,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &Runner{
		Device:  d,
		Monitor: monsoon.New(model.Battery.Nominal),
		Config:  quickConfig(mode),
	}
}

func typical() silicon.ProcessCorner { return silicon.ProcessCorner{Bin: 3, Leakage: 1.0} }

func TestModeString(t *testing.T) {
	if Unconstrained.String() != "UNCONSTRAINED" || FixedFrequency.String() != "FIXED-FREQUENCY" {
		t.Errorf("mode names: %v / %v", Unconstrained, FixedFrequency)
	}
	if !strings.Contains(Mode(9).String(), "9") {
		t.Errorf("unknown mode = %q", Mode(9).String())
	}
}

func TestConfigValidate(t *testing.T) {
	good := DefaultConfig(Unconstrained)
	if err := good.Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	muts := []func(*Config){
		func(c *Config) { c.Warmup = 0 },
		func(c *Config) { c.Workload = 0 },
		func(c *Config) { c.CooldownPoll = 0 },
		func(c *Config) { c.CooldownTimeout = 0 },
		func(c *Config) { c.Iterations = 0 },
		func(c *Config) { c.Step = 0 },
	}
	for i, mut := range muts {
		c := DefaultConfig(Unconstrained)
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestPaperDefaults(t *testing.T) {
	c := DefaultConfig(Unconstrained)
	if c.Warmup != 3*time.Minute {
		t.Errorf("warmup = %v, paper uses 3 minutes", c.Warmup)
	}
	if c.Workload != 5*time.Minute {
		t.Errorf("workload = %v, paper uses 5 minutes", c.Workload)
	}
	if c.CooldownPoll != 5*time.Second {
		t.Errorf("cooldown poll = %v, paper polls every 5 s", c.CooldownPoll)
	}
	if c.Iterations != 5 {
		t.Errorf("iterations = %d, paper runs 5", c.Iterations)
	}
}

func TestRunnerRequiresDeviceAndMonitor(t *testing.T) {
	r := &Runner{Config: DefaultConfig(Unconstrained)}
	if _, err := r.Run(); err == nil {
		t.Error("empty runner ran")
	}
}

func TestUnconstrainedRunStructure(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 42)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Device != "dut" || res.Model != "Nexus 5" || res.Mode != Unconstrained {
		t.Errorf("result header = %+v", res)
	}
	if len(res.Iterations) != 2 {
		t.Fatalf("iterations = %d", len(res.Iterations))
	}
	for _, it := range res.Iterations {
		if it.Score <= 0 {
			t.Errorf("iteration %d score = %d", it.Index, it.Score)
		}
		if it.Energy.Energy <= 0 {
			t.Errorf("iteration %d energy = %v", it.Index, it.Energy.Energy)
		}
		if it.Energy.Duration != 90*time.Second {
			t.Errorf("iteration %d energy window = %v", it.Index, it.Energy.Duration)
		}
		if it.MeanBigFreq <= 0 || it.MeanDieTemp <= 26 {
			t.Errorf("iteration %d trace stats: freq %v, temp %v", it.Index, it.MeanBigFreq, it.MeanDieTemp)
		}
		if it.PeakDieTemp < it.MeanDieTemp {
			t.Errorf("iteration %d peak %v below mean %v", it.Index, it.PeakDieTemp, it.MeanDieTemp)
		}
		if it.CooldownTook <= 0 {
			t.Errorf("iteration %d cooldown = %v", it.Index, it.CooldownTook)
		}
		if len(it.Phases) != 3 {
			t.Fatalf("iteration %d phases = %d", it.Index, len(it.Phases))
		}
		for j, name := range []string{"warmup", "cooldown", "workload"} {
			if it.Phases[j].Name != name {
				t.Errorf("phase %d = %q, want %q", j, it.Phases[j].Name, name)
			}
			if it.Phases[j].End <= it.Phases[j].Start {
				t.Errorf("phase %q has non-positive span", name)
			}
		}
	}
}

func TestWorkloadStartsCooledDown(t *testing.T) {
	// The whole point of the cooldown: every iteration's workload starts
	// from (near) the same thermal state regardless of prior activity.
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 7)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	d := r.Device
	dieSeries, ok := d.Trace().Lookup("die")
	if !ok {
		t.Fatal("no die trace")
	}
	for _, it := range res.Iterations {
		work := it.Phases[2]
		w := dieSeries.Window(work.Start, work.Start+time.Second)
		if len(w) == 0 {
			t.Fatal("no samples at workload start")
		}
		startTemp := w[0].Value
		// Sensor said ≤ CooldownTarget (40 in quickConfig); the true die may
		// differ by noise but not much.
		if startTemp > float64(r.Config.CooldownTarget)+1.5 {
			t.Errorf("iteration %d workload started at %.1f°C, target %v",
				it.Index, startTemp, r.Config.CooldownTarget)
		}
	}
}

func TestUnconstrainedThrottles(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 11)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	it := res.Iterations[0]
	if it.ThrottleEvents == 0 {
		t.Error("UNCONSTRAINED workload never throttled")
	}
	if it.MeanBigFreq >= soc.SD800().Big.MaxFreq() {
		t.Errorf("mean frequency %v equals max — no throttling visible", it.MeanBigFreq)
	}
}

func TestFixedFrequencyDoesNotThrottle(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), FixedFrequency, 13)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iterations {
		if it.ThrottleEvents != 0 {
			t.Errorf("iteration %d throttled %d times in FIXED-FREQUENCY", it.Index, it.ThrottleEvents)
		}
		if math.Abs(float64(it.MeanBigFreq-soc.Nexus5().FixedFreq)) > 0.01 {
			t.Errorf("iteration %d mean freq %v, want pinned %v", it.Index, it.MeanBigFreq, soc.Nexus5().FixedFreq)
		}
	}
}

func TestFixedFrequencyWorkIsRepeatable(t *testing.T) {
	// Paper: "we'd expect to see negligible performance variations" in
	// FIXED-FREQUENCY — the pinned frequency makes the score deterministic.
	r := newRunner(t, soc.Nexus5(), typical(), FixedFrequency, 17)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	s0 := res.Iterations[0].Score
	for _, it := range res.Iterations[1:] {
		if it.Score != s0 {
			t.Errorf("fixed-frequency scores differ: %d vs %d", s0, it.Score)
		}
	}
}

func TestResultAccessors(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 19)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	scores := res.Scores()
	energies := res.Energies()
	if len(scores) != 2 || len(energies) != 2 {
		t.Fatalf("accessor lengths: %d, %d", len(scores), len(energies))
	}
	ps, err := res.PerfSummary()
	if err != nil {
		t.Fatal(err)
	}
	if ps.N != 2 || ps.Mean <= 0 {
		t.Errorf("PerfSummary = %+v", ps)
	}
	es, err := res.EnergySummary()
	if err != nil {
		t.Fatal(err)
	}
	if es.Mean <= 0 {
		t.Errorf("EnergySummary = %+v", es)
	}
	if res.MeanScore() != ps.Mean || res.MeanEnergy() != es.Mean {
		t.Error("Mean accessors disagree with summaries")
	}
}

func TestWithThermabox(t *testing.T) {
	d, err := device.New(device.Config{
		Name:    "dut",
		Model:   soc.Nexus5(),
		Corner:  typical(),
		Ambient: 22, // starts at room; the box pulls it to 26
		Seed:    23,
	})
	if err != nil {
		t.Fatal(err)
	}
	box, err := thermabox.New(thermabox.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(Unconstrained)
	cfg.Iterations = 1
	r := &Runner{Device: d, Monitor: monsoon.New(3.8), Box: box, Config: cfg}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations[0].Score <= 0 {
		t.Error("no score with thermabox")
	}
	// The device's ambient must now track the chamber, not the initial 22.
	if d.Ambient() < 25 || d.Ambient() > 27 {
		t.Errorf("device ambient = %v, want chamber-regulated ≈26", d.Ambient())
	}
}

func TestCooldownTimeout(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 29)
	r.Config.CooldownTarget = 5 // unreachable: below ambient
	r.Config.CooldownTimeout = 2 * time.Minute
	if _, err := r.Run(); err == nil {
		t.Error("unreachable cooldown target did not error")
	} else if !strings.Contains(err.Error(), "cooldown") {
		t.Errorf("error = %v, want cooldown mention", err)
	}
}

func TestLeakyChipScoresLowerEndToEnd(t *testing.T) {
	// End-to-end ACCUBENCH reproduces the paper's core comparison on two
	// chips of the same model.
	run := func(leak float64, bin silicon.Bin) float64 {
		r := newRunner(t, soc.Nexus5(), silicon.ProcessCorner{Bin: bin, Leakage: leak}, Unconstrained, 31)
		res, err := r.Run()
		if err != nil {
			t.Fatal(err)
		}
		return res.MeanScore()
	}
	good := run(0.6, 0)
	bad := run(2.2, 5)
	if bad >= good {
		t.Errorf("leaky chip mean score %v not below quiet chip %v", bad, good)
	}
}

func TestFixedFreqForHelper(t *testing.T) {
	if FixedFreqFor(soc.Nexus5()) != 960 {
		t.Errorf("FixedFreqFor = %v", FixedFreqFor(soc.Nexus5()))
	}
}

func TestEnergyWindowCoversWorkloadOnly(t *testing.T) {
	// Energy must be integrated over the workload phase only: mean power
	// implied by the measurement should match busy-device power levels
	// (watts), not include the long low-power cooldown.
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 37)
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	for _, it := range res.Iterations {
		if it.Energy.MeanPower < 1 {
			t.Errorf("iteration %d mean power %v — looks like cooldown leaked into the window",
				it.Index, it.Energy.MeanPower)
		}
		if it.Energy.MeanPower > units.Watts(20) {
			t.Errorf("iteration %d mean power %v implausible", it.Index, it.Energy.MeanPower)
		}
	}
}
