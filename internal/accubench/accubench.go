// Package accubench implements the paper's primary contribution: the
// ACCUBENCH benchmarking technique for repeatable smartphone
// power/performance measurement.
//
// The technique (paper §III):
//
//  1. Warm up the CPU for a fixed time (3 minutes) so previously-idle and
//     previously-busy devices converge to the same thermal state.
//  2. Cool down — the device sleeps, waking every 5 seconds to poll its
//     temperature sensor — until the sensor reports a value below a target
//     temperature.
//  3. Run the CPU-intensive π workload on all cores for a fixed time
//     (5 minutes) and count completed iterations.
//
// Two workload modes reproduce the paper's two experiments: UNCONSTRAINED
// (performance governor; thermal throttling differentiates chips) and
// FIXED-FREQUENCY (userspace pin low enough to never throttle; energy
// differentiates chips while the work stays constant).
package accubench

import (
	"fmt"
	"time"

	"accubench/internal/device"
	"accubench/internal/governor"
	"accubench/internal/monsoon"
	"accubench/internal/soc"
	"accubench/internal/stats"
	"accubench/internal/thermabox"
	"accubench/internal/units"
)

// Mode selects the paper's workload variant.
type Mode int

const (
	// Unconstrained lets cores run at their maximum frequency; thermal
	// throttling then happens naturally (performance experiment).
	Unconstrained Mode = iota
	// FixedFrequency pins all cores to the model's safe low frequency
	// (energy experiment).
	FixedFrequency
)

// String renders the paper's small-caps names.
func (m Mode) String() string {
	switch m {
	case Unconstrained:
		return "UNCONSTRAINED"
	case FixedFrequency:
		return "FIXED-FREQUENCY"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config parameterizes a run. The zero value is not runnable; use
// DefaultConfig.
type Config struct {
	// Mode is the workload variant.
	Mode Mode
	// Warmup is the synthetic-heat phase length (paper: 3 minutes).
	Warmup time.Duration
	// Workload is T_workload (paper: 5 minutes).
	Workload time.Duration
	// CooldownTarget is the sensor temperature at which the workload may
	// start.
	CooldownTarget units.Celsius
	// CooldownPoll is the sensor polling cadence while asleep (paper: 5 s).
	CooldownPoll time.Duration
	// CooldownTimeout bounds the cooldown phase; exceeding it is an error
	// (the chamber or the device is misbehaving).
	CooldownTimeout time.Duration
	// Iterations is how many back-to-back runs to perform (paper: 5).
	Iterations int
	// PinFreq overrides the FIXED-FREQUENCY pin; zero uses the device
	// model's default. Experiments that sweep hot ambients pin lower so
	// the "guaranteed to not thermally throttle" property still holds.
	PinFreq units.MegaHertz
	// CooldownStableWindow, when positive, replaces the absolute cooldown
	// target with a flatness criterion: the phase ends once the last
	// CooldownStableWindow sensor polls span no more than CooldownStableBand
	// degrees. An app in the wild cannot know the local ambient to set an
	// absolute target; it can only watch the decay flatten — which is also
	// what makes the cooldown trace usable as an ambient estimate (§VI).
	CooldownStableWindow int
	// CooldownStableBand is the flatness band in °C (see above). It must
	// exceed the sensor's noise floor or the phase never ends.
	CooldownStableBand float64
	// CooldownFixed, when positive, makes the cooldown a fixed-length sleep
	// regardless of temperature — the protocol an in-the-wild app uses when
	// it wants the decay trace to span the slow case→ambient regime that
	// actually reveals the ambient (§VI). Takes precedence over both the
	// target and the flatness criterion.
	CooldownFixed time.Duration
	// Step is the simulation control step.
	Step time.Duration
}

// DefaultConfig returns the paper's parameters for the given mode.
func DefaultConfig(mode Mode) Config {
	return Config{
		Mode:            mode,
		Warmup:          3 * time.Minute,
		Workload:        5 * time.Minute,
		CooldownTarget:  36,
		CooldownPoll:    5 * time.Second,
		CooldownTimeout: 45 * time.Minute,
		Iterations:      5,
		Step:            100 * time.Millisecond,
	}
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Warmup <= 0 || c.Workload <= 0 {
		return fmt.Errorf("accubench: phases must have positive duration (warmup %v, workload %v)", c.Warmup, c.Workload)
	}
	if c.CooldownPoll <= 0 {
		return fmt.Errorf("accubench: non-positive cooldown poll %v", c.CooldownPoll)
	}
	if c.CooldownTimeout <= 0 {
		return fmt.Errorf("accubench: non-positive cooldown timeout %v", c.CooldownTimeout)
	}
	if c.Iterations <= 0 {
		return fmt.Errorf("accubench: %d iterations", c.Iterations)
	}
	if c.Step <= 0 {
		return fmt.Errorf("accubench: non-positive step %v", c.Step)
	}
	return nil
}

// Phase labels a span of an iteration for trace rendering (Figs. 4–5).
type Phase struct {
	Name       string // "warmup", "cooldown", "workload"
	Start, End time.Duration
}

// IterationResult is one ACCUBENCH iteration on one device.
type IterationResult struct {
	// Index is the iteration number (0-based).
	Index int
	// Score is the performance metric: π-loop iterations completed across
	// all cores within T_workload.
	Score int
	// Energy is the Monsoon measurement over the workload phase.
	Energy monsoon.Measurement
	// MeanBigFreq is the time-weighted mean big-cluster frequency over the
	// workload phase (Figs. 11–12 report these distributions).
	MeanBigFreq units.MegaHertz
	// MeanDieTemp is the time-weighted mean die temperature over the
	// workload phase.
	MeanDieTemp units.Celsius
	// PeakDieTemp is the hottest instant of the workload phase.
	PeakDieTemp units.Celsius
	// CooldownTook is how long the cooldown phase waited. The paper's
	// future work notes this is a usable ambient-temperature proxy.
	CooldownTook time.Duration
	// ThrottleEvents is the thermal engine's step-down count over the
	// workload phase.
	ThrottleEvents int
	// MinOnlineCores is the fewest big cores online during the workload
	// (Fig. 1: the Nexus 5 sheds a core at 80 °C).
	MinOnlineCores int
	// CooldownReadings are the sensor values observed at each cooldown
	// poll, in order. The paper's future work uses the cooldown decay as an
	// ambient-temperature estimate for in-the-wild submissions.
	CooldownReadings []CooldownSample
	// Phases are the iteration's phase boundaries in device time.
	Phases []Phase
}

// CooldownSample is one sensor poll during the cooldown phase.
type CooldownSample struct {
	// At is the time since the cooldown began.
	At time.Duration
	// Reading is the sensor value.
	Reading units.Celsius
}

// Result is a full ACCUBENCH run: several iterations on one device.
type Result struct {
	// Device is the unit's name, e.g. "device-363".
	Device string
	// Model is the handset product, e.g. "Nexus 6P".
	Model string
	// Mode is the workload variant used.
	Mode Mode
	// Iterations holds the per-iteration results.
	Iterations []IterationResult
}

// Scores returns the per-iteration performance scores.
func (r Result) Scores() []float64 {
	out := make([]float64, len(r.Iterations))
	for i, it := range r.Iterations {
		out[i] = float64(it.Score)
	}
	return out
}

// Energies returns the per-iteration workload energies in joules.
func (r Result) Energies() []float64 {
	out := make([]float64, len(r.Iterations))
	for i, it := range r.Iterations {
		out[i] = float64(it.Energy.Energy)
	}
	return out
}

// PerfSummary summarizes the scores (the paper reports mean ± RSD).
func (r Result) PerfSummary() (stats.Summary, error) { return stats.Summarize(r.Scores()) }

// EnergySummary summarizes the energies.
func (r Result) EnergySummary() (stats.Summary, error) { return stats.Summarize(r.Energies()) }

// MeanScore returns the mean performance score.
func (r Result) MeanScore() float64 { return stats.Mean(r.Scores()) }

// MeanEnergy returns the mean workload energy in joules.
func (r Result) MeanEnergy() float64 { return stats.Mean(r.Energies()) }

// Runner executes the technique on one device. The paper's app drives the
// phone via an Android intent; Runner is that app plus the backend harness
// that coordinates the Monsoon and the THERMABOX.
type Runner struct {
	// Device is the handset under test.
	Device *device.Device
	// Monitor powers the device and integrates energy. Required.
	Monitor *monsoon.Monitor
	// Box is the thermal chamber; nil runs at whatever fixed ambient the
	// device was built with (used by targeted unit tests, never by the
	// paper experiments).
	Box *thermabox.Box
	// KeepSource leaves the device's existing power source in place instead
	// of wiring in the Monsoon supply. The Fig. 10 battery configuration
	// measures through the Monsoon while powering from the pack.
	KeepSource bool
	// Config is the technique's parameters.
	Config Config
}

// step advances the whole bench — chamber, device, power monitor — by dt.
func (r *Runner) step(dt time.Duration) error {
	if r.Box != nil {
		r.Box.Step(dt, r.Device.Power())
		r.Device.SetAmbient(r.Box.Air())
	}
	if err := r.Device.Step(dt); err != nil {
		return err
	}
	return r.Monitor.Sample(r.Device.Elapsed(), r.Device.Power())
}

// run advances for a total duration in control steps.
func (r *Runner) run(total time.Duration) error {
	for remaining := total; remaining > 0; remaining -= r.Config.Step {
		h := r.Config.Step
		if remaining < h {
			h = remaining
		}
		if err := r.step(h); err != nil {
			return err
		}
	}
	return nil
}

// Run executes the configured number of back-to-back iterations and returns
// the result. Before the first iteration it confirms the chamber is within
// its band, as the paper's app does.
func (r *Runner) Run() (Result, error) {
	if r.Device == nil || r.Monitor == nil {
		return Result{}, fmt.Errorf("accubench: runner needs a device and a monitor")
	}
	if err := r.Config.Validate(); err != nil {
		return Result{}, err
	}
	// The device is powered by the Monsoon for the whole run, unless the
	// experiment explicitly powers it another way.
	if !r.KeepSource {
		r.Device.PowerBy(r.Monitor.Supply())
	}

	if r.Box != nil && !r.Box.WithinBand() {
		if _, ok := r.Box.Stabilize(30*time.Second, 30*time.Minute, time.Second); !ok {
			return Result{}, fmt.Errorf("accubench: THERMABOX failed to stabilize at %v", r.Box.Target())
		}
		r.Device.SetAmbient(r.Box.Air())
	}

	res := Result{
		Device: r.Device.Name(),
		Model:  r.Device.Model().Name,
		Mode:   r.Config.Mode,
	}
	for i := 0; i < r.Config.Iterations; i++ {
		it, err := r.iteration(i)
		if err != nil {
			return Result{}, fmt.Errorf("accubench: %s iteration %d: %w", r.Device.Name(), i, err)
		}
		res.Iterations = append(res.Iterations, it)
	}
	return res, nil
}

// iteration performs warmup → cooldown → workload once.
func (r *Runner) iteration(idx int) (IterationResult, error) {
	d := r.Device
	out := IterationResult{Index: idx, MinOnlineCores: d.Model().SoC.Big.Cores}

	// --- Warmup: full-tilt synthetic heat under the performance governor.
	warmStart := d.Elapsed()
	d.AcquireWakelock()
	d.SetGovernor(governor.Performance{})
	d.StartWorkload()
	if err := r.run(r.Config.Warmup); err != nil {
		return out, err
	}
	d.StopWorkload()
	out.Phases = append(out.Phases, Phase{Name: "warmup", Start: warmStart, End: d.Elapsed()})

	// --- Cooldown: sleep, waking every CooldownPoll to read the sensor.
	coolStart := d.Elapsed()
	d.ReleaseWakelock()
	for {
		if d.Elapsed()-coolStart > r.Config.CooldownTimeout {
			return out, fmt.Errorf("cooldown did not reach %v within %v (sensor %v)",
				r.Config.CooldownTarget, r.Config.CooldownTimeout, d.ReadTempSensor())
		}
		if err := r.run(r.Config.CooldownPoll); err != nil {
			return out, err
		}
		reading := d.ReadTempSensor()
		out.CooldownReadings = append(out.CooldownReadings, CooldownSample{
			At:      d.Elapsed() - coolStart,
			Reading: reading,
		})
		if r.Config.CooldownFixed > 0 {
			if d.Elapsed()-coolStart >= r.Config.CooldownFixed {
				break
			}
		} else if r.Config.CooldownStableWindow > 0 {
			if cooldownFlattened(out.CooldownReadings, r.Config.CooldownStableWindow, r.Config.CooldownStableBand) {
				break
			}
		} else if reading <= r.Config.CooldownTarget {
			break
		}
	}
	out.CooldownTook = d.Elapsed() - coolStart
	out.Phases = append(out.Phases, Phase{Name: "cooldown", Start: coolStart, End: d.Elapsed()})

	// --- Workload: the measured phase.
	workStart := d.Elapsed()
	throttleBefore := d.ThrottleEvents()
	d.AcquireWakelock()
	switch r.Config.Mode {
	case Unconstrained:
		d.SetGovernor(governor.Performance{})
	case FixedFrequency:
		pin := r.Config.PinFreq
		if pin == 0 {
			pin = d.Model().FixedFreq
		}
		d.SetGovernor(governor.Userspace{Freq: pin})
	default:
		return out, fmt.Errorf("unknown mode %v", r.Config.Mode)
	}
	d.ResetCounters()
	d.StartWorkload()
	r.Monitor.StartMeasurement(d.Elapsed())
	if err := r.run(r.Config.Workload); err != nil {
		return out, err
	}
	meas, err := r.Monitor.StopMeasurement(d.Elapsed())
	if err != nil {
		return out, err
	}
	d.StopWorkload()
	d.ReleaseWakelock()
	workEnd := d.Elapsed()
	out.Phases = append(out.Phases, Phase{Name: "workload", Start: workStart, End: workEnd})

	// --- Collect metrics from the trace window. A trace sample recorded at
	// time t describes the simulation step *ending* at t, so the sample
	// falling exactly on workStart belongs to the last cooldown step; the
	// window opens one control step later.
	winStart := workStart + r.Config.Step
	out.Score = d.CompletedIterations()
	out.Energy = meas
	out.ThrottleEvents = d.ThrottleEvents() - throttleBefore
	if s, ok := d.Trace().Lookup("freq.big"); ok {
		out.MeanBigFreq = units.MegaHertz(s.MeanOver(winStart, workEnd))
	}
	if s, ok := d.Trace().Lookup("die"); ok {
		out.MeanDieTemp = units.Celsius(s.MeanOver(winStart, workEnd))
		for _, smp := range s.Window(winStart, workEnd) {
			if units.Celsius(smp.Value) > out.PeakDieTemp {
				out.PeakDieTemp = units.Celsius(smp.Value)
			}
		}
	}
	if s, ok := d.Trace().Lookup("cores.online"); ok {
		for _, smp := range s.Window(winStart, workEnd) {
			if int(smp.Value) < out.MinOnlineCores {
				out.MinOnlineCores = int(smp.Value)
			}
		}
	}
	return out, nil
}

// FixedFreqFor returns the paper's FIXED-FREQUENCY pin for a model — a
// convenience so harness code doesn't reach into the model directly.
func FixedFreqFor(m *soc.DeviceModel) units.MegaHertz { return m.FixedFreq }

// cooldownFlattened reports whether the last window readings span no more
// than band degrees.
func cooldownFlattened(readings []CooldownSample, window int, band float64) bool {
	if len(readings) < window {
		return false
	}
	tail := readings[len(readings)-window:]
	lo, hi := float64(tail[0].Reading), float64(tail[0].Reading)
	for _, s := range tail[1:] {
		v := float64(s.Reading)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return hi-lo <= band
}
