package accubench

import (
	"fmt"
	"time"

	"accubench/internal/governor"
	"accubench/internal/units"
)

// NaiveResult is the outcome of running the workload the way existing
// benchmarks do — no warmup, no cooldown, just press start. The paper's
// §I/§III motivation: "Running a benchmark back-to-back often produces
// significantly different results due to heat" and (citing Guo et al.)
// "putting a smartphone in a refrigerator could improve the overall score
// … by more than 60%".
type NaiveResult struct {
	// Scores are the back-to-back run scores, in order. The first run
	// starts cold and scores high; later runs inherit heat and sag.
	Scores []int
	// StartDieTemps are the die temperatures each run started at — the
	// uncontrolled variable ACCUBENCH exists to pin down.
	StartDieTemps []units.Celsius
}

// FirstVsRestPct returns how much the cold first run beats the mean of the
// remaining runs, in percent — the "back-to-back" artifact.
func (n NaiveResult) FirstVsRestPct() float64 {
	if len(n.Scores) < 2 {
		return 0
	}
	var rest float64
	for _, s := range n.Scores[1:] {
		rest += float64(s)
	}
	rest /= float64(len(n.Scores) - 1)
	if rest == 0 {
		return 0
	}
	return (float64(n.Scores[0]) - rest) / rest * 100
}

// RunNaive runs the workload back-to-back with no thermal conditioning —
// the baseline ACCUBENCH is measured against. Each run lasts the configured
// Workload duration under the performance governor with a short pause
// (results screen, tapping "run again") between runs. The Monsoon still
// powers the device; nothing else from the methodology is applied.
func (r *Runner) RunNaive(runs int, pause time.Duration) (NaiveResult, error) {
	if r.Device == nil || r.Monitor == nil {
		return NaiveResult{}, fmt.Errorf("accubench: runner needs a device and a monitor")
	}
	if err := r.Config.Validate(); err != nil {
		return NaiveResult{}, err
	}
	if runs <= 0 {
		return NaiveResult{}, fmt.Errorf("accubench: %d naive runs", runs)
	}
	if pause < 0 {
		return NaiveResult{}, fmt.Errorf("accubench: negative pause %v", pause)
	}
	d := r.Device
	if !r.KeepSource {
		d.PowerBy(r.Monitor.Supply())
	}
	if r.Box != nil && !r.Box.WithinBand() {
		if _, ok := r.Box.Stabilize(30*time.Second, 30*time.Minute, time.Second); !ok {
			return NaiveResult{}, fmt.Errorf("accubench: THERMABOX failed to stabilize at %v", r.Box.Target())
		}
		d.SetAmbient(r.Box.Air())
	}
	var out NaiveResult
	for i := 0; i < runs; i++ {
		out.StartDieTemps = append(out.StartDieTemps, d.DieTemperature())
		d.AcquireWakelock()
		d.SetGovernor(governor.Performance{})
		d.ResetCounters()
		d.StartWorkload()
		if err := r.run(r.Config.Workload); err != nil {
			return NaiveResult{}, err
		}
		d.StopWorkload()
		d.ReleaseWakelock()
		out.Scores = append(out.Scores, d.CompletedIterations())
		if pause > 0 {
			if err := r.run(pause); err != nil {
				return NaiveResult{}, err
			}
		}
	}
	return out, nil
}
