package accubench

import (
	"strings"
	"testing"
	"time"

	"accubench/internal/battery"
	"accubench/internal/device"
	"accubench/internal/monsoon"
	"accubench/internal/silicon"
	"accubench/internal/soc"
	"accubench/internal/thermabox"
	"accubench/internal/units"
)

func TestFixedWorkCompletesTarget(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 101)
	fw, err := r.RunFixedWork(100)
	if err != nil {
		t.Fatal(err)
	}
	if fw.Target != 100 {
		t.Errorf("Target = %d", fw.Target)
	}
	// The device must have completed at least the target (the last step may
	// overshoot by a few iterations across 4 cores).
	if got := r.Device.CompletedIterations(); got < 100 {
		t.Errorf("completed %d, want ≥ 100", got)
	}
	if fw.Took <= 0 {
		t.Errorf("Took = %v", fw.Took)
	}
	if fw.Energy.Energy <= 0 {
		t.Errorf("Energy = %v", fw.Energy.Energy)
	}
	if fw.MeanBigFreq <= 0 || fw.PeakDieTemp <= 26 {
		t.Errorf("trace stats: freq %v, peak %v", fw.MeanBigFreq, fw.PeakDieTemp)
	}
	if fw.MinOnlineCores < 2 || fw.MinOnlineCores > 4 {
		t.Errorf("MinOnlineCores = %d", fw.MinOnlineCores)
	}
}

func TestFixedWorkLeakyChipSlowerAndHungrier(t *testing.T) {
	run := func(leak float64, bin silicon.Bin) FixedWorkResult {
		r := newRunner(t, soc.Nexus5(), silicon.ProcessCorner{Bin: bin, Leakage: leak}, Unconstrained, 103)
		fw, err := r.RunFixedWork(150)
		if err != nil {
			t.Fatal(err)
		}
		return fw
	}
	quiet := run(0.55, 0)
	leaky := run(2.0, 5)
	if leaky.Took <= quiet.Took {
		t.Errorf("leaky chip finished in %v, quiet in %v — fixed work should take leaky silicon longer",
			leaky.Took, quiet.Took)
	}
	if leaky.Energy.Energy <= quiet.Energy.Energy {
		t.Errorf("leaky chip used %v, quiet %v — fixed work should cost leaky silicon more",
			leaky.Energy.Energy, quiet.Energy.Energy)
	}
}

func TestFixedWorkValidation(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 107)
	if _, err := r.RunFixedWork(0); err == nil {
		t.Error("target 0 accepted")
	}
	if _, err := r.RunFixedWork(-5); err == nil {
		t.Error("negative target accepted")
	}
	empty := &Runner{Config: DefaultConfig(Unconstrained)}
	if _, err := empty.RunFixedWork(10); err == nil {
		t.Error("empty runner ran")
	}
}

func TestFixedWorkDeadline(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 109)
	r.Config.Workload = 2 * time.Second // deadline = 40 s of workload
	// An absurd target cannot complete within 20× workload.
	if _, err := r.RunFixedWork(1000000); err == nil {
		t.Error("impossible target did not error")
	} else if !strings.Contains(err.Error(), "deadline") {
		t.Errorf("error = %v, want deadline mention", err)
	}
}

func TestNaiveBackToBackDegrades(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 113)
	res, err := r.RunNaive(3, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Scores) != 3 || len(res.StartDieTemps) != 3 {
		t.Fatalf("result shape: %d scores, %d temps", len(res.Scores), len(res.StartDieTemps))
	}
	// First run starts cold, second starts hot.
	if res.StartDieTemps[0] > 30 {
		t.Errorf("first run started at %v", res.StartDieTemps[0])
	}
	if res.StartDieTemps[1] < 45 {
		t.Errorf("second run started at %v, want heat-soaked", res.StartDieTemps[1])
	}
	if res.FirstVsRestPct() <= 0 {
		t.Errorf("FirstVsRest = %.1f%%, want positive cold-start bonus", res.FirstVsRestPct())
	}
}

func TestNaiveValidation(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 127)
	if _, err := r.RunNaive(0, 0); err == nil {
		t.Error("0 runs accepted")
	}
	if _, err := r.RunNaive(2, -time.Second); err == nil {
		t.Error("negative pause accepted")
	}
	empty := &Runner{Config: DefaultConfig(Unconstrained)}
	if _, err := empty.RunNaive(1, 0); err == nil {
		t.Error("empty runner ran")
	}
}

func TestNaiveFirstVsRestDegenerate(t *testing.T) {
	if got := (NaiveResult{Scores: []int{100}}).FirstVsRestPct(); got != 0 {
		t.Errorf("single-run FirstVsRest = %v", got)
	}
	if got := (NaiveResult{Scores: []int{100, 0, 0}}).FirstVsRestPct(); got != 0 {
		t.Errorf("zero-rest FirstVsRest = %v", got)
	}
}

func TestCooldownStableWindowMode(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 131)
	r.Config.CooldownStableWindow = 8
	r.Config.CooldownStableBand = 1.2
	r.Config.CooldownTarget = -100 // would never be reached; flatness must end the phase
	r.Config.Iterations = 1
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	it := res.Iterations[0]
	if len(it.CooldownReadings) < 8 {
		t.Fatalf("only %d cooldown readings", len(it.CooldownReadings))
	}
	// The flatness criterion must hold over the final window.
	tail := it.CooldownReadings[len(it.CooldownReadings)-8:]
	lo, hi := tail[0].Reading, tail[0].Reading
	for _, s := range tail[1:] {
		if s.Reading < lo {
			lo = s.Reading
		}
		if s.Reading > hi {
			hi = s.Reading
		}
	}
	if hi.Delta(lo) > 1.2 {
		t.Errorf("final window spans %.1f°C, band is 1.2", hi.Delta(lo))
	}
}

func TestCooldownFixedMode(t *testing.T) {
	r := newRunner(t, soc.Nexus5(), typical(), Unconstrained, 137)
	r.Config.CooldownFixed = 90 * time.Second
	r.Config.CooldownTarget = -100 // ignored in fixed mode
	r.Config.Iterations = 1
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	it := res.Iterations[0]
	if it.CooldownTook < 90*time.Second || it.CooldownTook > 100*time.Second {
		t.Errorf("fixed cooldown took %v, want ≈90s", it.CooldownTook)
	}
	// Readings every 5s over 90s → 18 polls.
	if len(it.CooldownReadings) != 18 {
		t.Errorf("readings = %d, want 18", len(it.CooldownReadings))
	}
}

func TestChamberFailurePropagates(t *testing.T) {
	// A chamber that cannot reach its setpoint fails the run up front.
	boxCfg := thermabox.DefaultConfig()
	boxCfg.Room = 60
	boxCfg.CompressorPower = 1 // cannot pull 60 → 26
	box, err := thermabox.New(boxCfg)
	if err != nil {
		t.Fatal(err)
	}
	mon := monsoon.New(3.8)
	dev, err := device.New(device.Config{
		Name: "dut", Model: soc.Nexus5(), Corner: typical(), Ambient: 60, Seed: 1, Source: mon.Supply(),
	})
	if err != nil {
		t.Fatal(err)
	}
	r := &Runner{Device: dev, Monitor: mon, Box: box, Config: quickConfig(Unconstrained)}
	if _, err := r.Run(); err == nil {
		t.Error("broken chamber did not fail the run")
	} else if !strings.Contains(err.Error(), "THERMABOX") {
		t.Errorf("error = %v, want THERMABOX mention", err)
	}
}

func TestDrainedBatteryStillRuns(t *testing.T) {
	// Powering from a nearly dead pack: the run completes (the simulation
	// does not brown-out) but the LG G5's voltage throttle would cap it —
	// verified at the device layer; here we check the runner tolerates a
	// sagging source when KeepSource is set.
	spec := soc.Nexus5().Battery
	b := battery.NewBattery(spec.Capacity, spec.Nominal, spec.InternalOhms)
	b.Drain(units.Joules(float64(spec.Capacity.Coulombs()) * float64(spec.Nominal) * 0.7))
	mon := monsoon.New(3.8)
	dev, err := device.New(device.Config{
		Name: "dut", Model: soc.Nexus5(), Corner: typical(), Ambient: 26, Seed: 1, Source: b,
	})
	if err != nil {
		t.Fatal(err)
	}
	cfg := quickConfig(Unconstrained)
	cfg.Iterations = 1
	r := &Runner{Device: dev, Monitor: mon, KeepSource: true, Config: cfg}
	res, err := r.Run()
	if err != nil {
		t.Fatal(err)
	}
	if res.Iterations[0].Score <= 0 {
		t.Error("no score on battery power")
	}
}
