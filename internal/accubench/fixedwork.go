package accubench

import (
	"fmt"
	"time"

	"accubench/internal/governor"
	"accubench/internal/monsoon"
	"accubench/internal/units"
)

// FixedWorkResult is the outcome of a run-to-completion experiment: the
// variant behind the paper's Figures 1 and 2, where every chip performs the
// *same amount of work* and energy/time are compared ("the energy
// consumption of various Nexus 5 bins while performing a fixed CPU
// intensive workload").
type FixedWorkResult struct {
	// Target is the iteration count every device had to complete.
	Target int
	// Took is how long the workload phase ran to finish the work.
	Took time.Duration
	// Energy is the Monsoon measurement over the workload phase.
	Energy monsoon.Measurement
	// MeanBigFreq is the time-weighted mean big-cluster frequency.
	MeanBigFreq units.MegaHertz
	// PeakDieTemp is the hottest workload instant.
	PeakDieTemp units.Celsius
	// MinOnlineCores is the fewest big cores online during the workload
	// (Fig. 1 annotates the Nexus 5's 80 °C core shutdown).
	MinOnlineCores int
}

// RunFixedWork performs warmup and cooldown exactly like a normal iteration,
// then runs the UNCONSTRAINED workload until the device completes target
// iterations (bounded by 20× the configured workload duration). The
// performance governor is always used: fixed-work experiments compare how
// throttling stretches completion time.
func (r *Runner) RunFixedWork(target int) (FixedWorkResult, error) {
	if r.Device == nil || r.Monitor == nil {
		return FixedWorkResult{}, fmt.Errorf("accubench: runner needs a device and a monitor")
	}
	if err := r.Config.Validate(); err != nil {
		return FixedWorkResult{}, err
	}
	if target <= 0 {
		return FixedWorkResult{}, fmt.Errorf("accubench: fixed-work target %d", target)
	}
	d := r.Device
	d.PowerBy(r.Monitor.Supply())

	if r.Box != nil && !r.Box.WithinBand() {
		if _, ok := r.Box.Stabilize(30*time.Second, 30*time.Minute, time.Second); !ok {
			return FixedWorkResult{}, fmt.Errorf("accubench: THERMABOX failed to stabilize at %v", r.Box.Target())
		}
		d.SetAmbient(r.Box.Air())
	}

	// Warmup.
	d.AcquireWakelock()
	d.SetGovernor(governor.Performance{})
	d.StartWorkload()
	if err := r.run(r.Config.Warmup); err != nil {
		return FixedWorkResult{}, err
	}
	d.StopWorkload()

	// Cooldown.
	coolStart := d.Elapsed()
	d.ReleaseWakelock()
	for d.ReadTempSensor() > r.Config.CooldownTarget {
		if d.Elapsed()-coolStart > r.Config.CooldownTimeout {
			return FixedWorkResult{}, fmt.Errorf("accubench: fixed-work cooldown did not reach %v within %v",
				r.Config.CooldownTarget, r.Config.CooldownTimeout)
		}
		if err := r.run(r.Config.CooldownPoll); err != nil {
			return FixedWorkResult{}, err
		}
	}

	// Work to completion.
	workStart := d.Elapsed()
	deadline := workStart + 20*r.Config.Workload
	d.AcquireWakelock()
	d.SetGovernor(governor.Performance{})
	d.ResetCounters()
	d.StartWorkload()
	r.Monitor.StartMeasurement(d.Elapsed())
	minOnline := d.Model().SoC.Big.Cores
	for d.CompletedIterations() < target {
		if d.Elapsed() >= deadline {
			return FixedWorkResult{}, fmt.Errorf("accubench: %s completed only %d/%d iterations by the %v deadline",
				d.Name(), d.CompletedIterations(), target, deadline-workStart)
		}
		if err := r.step(r.Config.Step); err != nil {
			return FixedWorkResult{}, err
		}
		if n := d.OnlineBigCores(); n < minOnline {
			minOnline = n
		}
	}
	meas, err := r.Monitor.StopMeasurement(d.Elapsed())
	if err != nil {
		return FixedWorkResult{}, err
	}
	d.StopWorkload()
	d.ReleaseWakelock()
	workEnd := d.Elapsed()

	out := FixedWorkResult{
		Target:         target,
		Took:           workEnd - workStart,
		Energy:         meas,
		MinOnlineCores: minOnline,
	}
	winStart := workStart + r.Config.Step
	if s, ok := d.Trace().Lookup("freq.big"); ok {
		out.MeanBigFreq = units.MegaHertz(s.MeanOver(winStart, workEnd))
	}
	if s, ok := d.Trace().Lookup("die"); ok {
		for _, smp := range s.Window(winStart, workEnd) {
			if units.Celsius(smp.Value) > out.PeakDieTemp {
				out.PeakDieTemp = units.Celsius(smp.Value)
			}
		}
	}
	return out, nil
}
