package wire

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

func sampleSubs() []Submission {
	return []Submission{
		{
			Device: "dev-001", Model: "Nexus 5", Score: 1234.5,
			Cooldown: []Point{{AtSeconds: 0, TempC: 45.2}, {AtSeconds: 5, TempC: 41.0}, {AtSeconds: 10, TempC: 38.7}},
		},
		{
			Device: "dev-002", Model: "Pixel", Score: 2048.25,
			Origin: "n1", HLCWall: 171234567, HLCLogical: 7,
			Cooldown: []Point{{AtSeconds: 0, TempC: 50}, {AtSeconds: 30, TempC: 30}},
		},
	}
}

func TestBatchRoundTrip(t *testing.T) {
	subs := sampleSubs()
	buf, err := AppendBatchFrame(nil, 42, subs)
	if err != nil {
		t.Fatalf("AppendBatchFrame: %v", err)
	}
	fr, n, err := DecodeFrame(buf)
	if err != nil {
		t.Fatalf("DecodeFrame: %v", err)
	}
	if n != len(buf) {
		t.Fatalf("frame size %d, encoded %d", n, len(buf))
	}
	if fr.Type != FrameBatch || fr.Seq != 42 || fr.Count != len(subs) {
		t.Fatalf("frame header = %+v", fr)
	}
	got, err := DecodeSubmissions(fr)
	if err != nil {
		t.Fatalf("DecodeSubmissions: %v", err)
	}
	if len(got) != len(subs) {
		t.Fatalf("decoded %d subs, want %d", len(got), len(subs))
	}
	for i := range subs {
		a, b := subs[i], got[i]
		if a.Device != b.Device || a.Model != b.Model || a.Score != b.Score ||
			a.Origin != b.Origin || a.HLCWall != b.HLCWall || a.HLCLogical != b.HLCLogical {
			t.Fatalf("sub %d: got %+v want %+v", i, b, a)
		}
		if len(a.Cooldown) != len(b.Cooldown) {
			t.Fatalf("sub %d: %d points, want %d", i, len(b.Cooldown), len(a.Cooldown))
		}
		for j := range a.Cooldown {
			if a.Cooldown[j] != b.Cooldown[j] {
				t.Fatalf("sub %d point %d: got %+v want %+v", i, j, b.Cooldown[j], a.Cooldown[j])
			}
		}
	}
}

func TestAckRoundTrip(t *testing.T) {
	for _, ack := range []Ack{
		{Batch: 7, Committed: 256, CommitSeq: 9001},
		{Batch: 8, Committed: 250, Dropped: 6, CommitSeq: 9251, Err: "unreplicated: no replica ack"},
		{Batch: 9},
	} {
		buf := AppendAckFrame(nil, ack)
		fr, n, err := DecodeFrame(buf)
		if err != nil || n != len(buf) {
			t.Fatalf("DecodeFrame(%+v): n=%d err=%v", ack, n, err)
		}
		got, err := DecodeAck(fr)
		if err != nil {
			t.Fatalf("DecodeAck(%+v): %v", ack, err)
		}
		if got != ack {
			t.Fatalf("ack round trip: got %+v want %+v", got, ack)
		}
	}
}

func TestDecodeFrameTorn(t *testing.T) {
	buf, err := AppendBatchFrame(nil, 1, sampleSubs())
	if err != nil {
		t.Fatal(err)
	}
	for cut := 0; cut < len(buf); cut += 7 {
		if _, _, err := DecodeFrame(buf[:cut]); !errors.Is(err, ErrShortFrame) {
			t.Fatalf("cut at %d: err = %v, want ErrShortFrame", cut, err)
		}
	}
}

func TestDecodeFrameBitFlips(t *testing.T) {
	orig, err := AppendBatchFrame(nil, 3, sampleSubs())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(orig); i++ {
		mut := append([]byte(nil), orig...)
		mut[i] ^= 0x40
		fr, _, err := DecodeFrame(mut)
		if err == nil {
			// A flip in the length field can only survive validation if it
			// still checksums — it cannot, because the CRC covers a payload
			// of different extent. Any successful decode here is a miss.
			if _, derr := DecodeSubmissions(fr); derr == nil {
				t.Fatalf("bit flip at %d went undetected", i)
			}
		}
	}
}

func TestDecodeFrameOversizedLength(t *testing.T) {
	buf, err := AppendBatchFrame(nil, 1, sampleSubs())
	if err != nil {
		t.Fatal(err)
	}
	buf[0], buf[1], buf[2], buf[3] = 0xff, 0xff, 0xff, 0xff
	if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("oversized length: err = %v, want ErrCorruptFrame", err)
	}
}

func TestDecodeFrameWrongVersion(t *testing.T) {
	buf, err := AppendBatchFrame(nil, 1, sampleSubs())
	if err != nil {
		t.Fatal(err)
	}
	buf[9] = Version + 1
	if _, _, err := DecodeFrame(buf); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("wrong version: err = %v, want ErrCorruptFrame", err)
	}
}

func TestAppendBatchFrameBounds(t *testing.T) {
	if _, err := AppendBatchFrame(nil, 1, nil); err == nil {
		t.Fatal("empty batch accepted")
	}
	if _, err := AppendBatchFrame(nil, 1, make([]Submission, MaxBatch+1)); err == nil {
		t.Fatal("oversized batch accepted")
	}
	long := Submission{Device: strings.Repeat("d", MaxStringLen+1), Model: "m"}
	if _, err := AppendBatchFrame(nil, 1, []Submission{long}); err == nil {
		t.Fatal("oversized device string accepted")
	}
}

func TestDecodeSubmissionsTrailingBytes(t *testing.T) {
	buf, err := AppendBatchFrame(nil, 1, sampleSubs())
	if err != nil {
		t.Fatal(err)
	}
	fr, _, err := DecodeFrame(buf)
	if err != nil {
		t.Fatal(err)
	}
	// Claim one fewer submission than the payload encodes: the decoder
	// must refuse the leftover bytes rather than silently drop them.
	fr.Count--
	if _, err := DecodeSubmissions(fr); !errors.Is(err, ErrCorruptFrame) {
		t.Fatalf("trailing bytes: err = %v, want ErrCorruptFrame", err)
	}
}

func TestReaderStream(t *testing.T) {
	var stream []byte
	subs := sampleSubs()
	var err error
	for seq := uint64(1); seq <= 3; seq++ {
		stream, err = AppendBatchFrame(stream, seq, subs)
		if err != nil {
			t.Fatal(err)
		}
	}
	stream = AppendAckFrame(stream, Ack{Batch: 3, Committed: 2, CommitSeq: 6})

	rd := NewReader(bytes.NewReader(stream))
	for seq := uint64(1); seq <= 3; seq++ {
		fr, err := rd.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", seq, err)
		}
		if fr.Type != FrameBatch || fr.Seq != seq {
			t.Fatalf("frame %d: got %+v", seq, fr)
		}
		if _, err := DecodeSubmissions(fr); err != nil {
			t.Fatalf("frame %d decode: %v", seq, err)
		}
	}
	fr, err := rd.Next()
	if err != nil {
		t.Fatal(err)
	}
	if ack, err := DecodeAck(fr); err != nil || ack.Committed != 2 {
		t.Fatalf("ack = %+v, err %v", ack, err)
	}
	if _, err := rd.Next(); err != io.EOF {
		t.Fatalf("end of stream: err = %v, want io.EOF", err)
	}
}

func TestReaderTornTail(t *testing.T) {
	stream, err := AppendBatchFrame(nil, 1, sampleSubs())
	if err != nil {
		t.Fatal(err)
	}
	rd := NewReader(bytes.NewReader(stream[:len(stream)-3]))
	if _, err := rd.Next(); !errors.Is(err, ErrShortFrame) {
		t.Fatalf("torn tail: err = %v, want ErrShortFrame", err)
	}
}
