// Package wire is the crowd service's binary wire protocol: a
// length-prefixed, CRC-32C-framed codec for benchmark submissions and
// the streaming batch transport that carries them over POST /v1/stream.
//
// The JSON API (POST /v1/submissions) spends one HTTP request, one
// JSON decode and one WAL commit per submission — fine for a demo
// fleet, hopeless for the ROADMAP's million-device target. The wire
// protocol amortizes all three: a client opens one persistent
// connection and streams frames of K submissions per batch; the server
// decodes each frame straight into ingest.SubmitBatch (one WAL append,
// one store lock pass per shard for the whole batch) and answers with
// an ack frame carrying the batch's commit sequence.
//
// The framing reuses the write-ahead log's discipline (internal/wal
// frame.go): a fixed header with a length field bounded by MaxPayload
// and a CRC-32C (Castagnoli) covering everything after the checksum, so
// a torn or bit-flipped frame is detected before any payload byte is
// trusted, and a corrupted length can never send the reader gigabytes
// forward. Submissions carry the HLC stamp + origin fields so a frame
// relayed between cluster nodes replicates losslessly — the stamp
// assigned by the first-ingesting node survives the hop byte-for-byte.
//
// Frame layout (HeaderSize = 20 bytes, all integers little-endian):
//
//	offset  0: payload length, uint32
//	offset  4: CRC-32C over bytes [8:20] || payload, uint32
//	offset  8: frame type, byte (1 = batch, 2 = ack)
//	offset  9: protocol version, byte (currently 1)
//	offset 10: submission count, uint16 (batch frames; 0 for acks)
//	offset 12: batch sequence number, uint64
//
// See docs/WIRE.md for the ack semantics and the flow-control contract.
package wire

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math"
)

// HeaderSize is the fixed per-frame framing overhead, in bytes.
const HeaderSize = 20

// MaxPayload bounds a frame's payload so a corrupted length field is
// treated as corruption, not as an instruction to allocate. A 4096-sub
// batch of generous submissions fits with margin.
const MaxPayload = 4 << 20

// MaxBatch is the largest submission count one batch frame may carry.
const MaxBatch = 4096

// MaxStringLen bounds the device, model and origin fields.
const MaxStringLen = 512

// MaxTracePoints bounds one submission's cooldown trace.
const MaxTracePoints = 1 << 16

// Version is the protocol version stamped into every frame. Decoders
// reject frames from a different version rather than misparse them.
const Version = 1

// ContentType is the media type of a wire stream — what POST /v1/stream
// requires and what the JSON route rejects with 415.
const ContentType = "application/x-accubench-wire"

// FrameType discriminates the two frame kinds on a stream.
type FrameType byte

const (
	// FrameBatch carries Count submissions, client → server.
	FrameBatch FrameType = 1
	// FrameAck answers one batch frame, server → client.
	FrameAck FrameType = 2
)

// castagnoli is the same CRC-32C table the WAL frames use
// (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

var (
	// ErrShortFrame reports that the buffer ends before the frame does —
	// a torn read, recoverable by reading more bytes.
	ErrShortFrame = errors.New("wire: truncated frame")
	// ErrCorruptFrame reports a frame whose checksum, length, version or
	// payload encoding is invalid — the bytes cannot be trusted.
	ErrCorruptFrame = errors.New("wire: corrupt frame")
)

// Point is one cooldown sensor poll, mirroring the JSON wire format's
// at_s/temp_c pair.
type Point struct {
	// AtSeconds is the time since the cooldown began, in seconds.
	AtSeconds float64
	// TempC is the sensor reading in °C.
	TempC float64
}

// Submission is one benchmark result on the binary wire. Device, Model,
// Score and Cooldown mirror the JSON payload; Origin and the HLC pair
// are the replication identity (zero until a cluster node stamps the
// record) carried so frames relay between nodes losslessly.
type Submission struct {
	// Device is the unit's anonymous identifier.
	Device string
	// Model is the handset model, e.g. "Nexus 5".
	Model string
	// Score is the ACCUBENCH performance score.
	Score float64
	// Origin is the node ID that first ingested the submission; empty
	// for a client-originated frame.
	Origin string
	// HLCWall and HLCLogical are the hybrid-logical-clock stamp; zero
	// for a client-originated frame.
	HLCWall    int64
	HLCLogical uint16
	// Cooldown is the cooldown sensor trace, in poll order.
	Cooldown []Point
}

// Ack is the server's answer to one batch frame: how many of the
// batch's submissions committed durably, how many were dropped
// (invalid or commit-failed), and the highest node-local sequence
// number among the committed records. A non-empty Err means the batch
// (or part of it) must be retried — Committed submissions are durable
// regardless.
type Ack struct {
	// Batch echoes the batch frame's sequence number.
	Batch uint64
	// Committed is how many submissions committed durably.
	Committed uint32
	// Dropped is how many submissions were dropped: malformed ones
	// (never retried) plus commit failures (retryable).
	Dropped uint32
	// CommitSeq is the highest node-local store sequence number among
	// the committed records (0 when none committed).
	CommitSeq uint64
	// Err is the batch-level failure, e.g. a replication ack timeout;
	// empty on success.
	Err string
}

// frameCRC is the checksum at offset 4: CRC-32C over header bytes
// [8:20] followed by the payload, so type, version, count and sequence
// are all covered.
func frameCRC(hdr []byte, payload []byte) uint32 {
	crc := crc32.Update(0, castagnoli, hdr[8:HeaderSize])
	return crc32.Update(crc, castagnoli, payload)
}

// Frame is one decoded frame. Payload aliases the decode buffer — copy
// before retaining.
type Frame struct {
	Type    FrameType
	Count   int
	Seq     uint64
	Payload []byte
}

// putHeader renders the 20-byte header for a frame into hdr.
func putHeader(hdr []byte, typ FrameType, count int, seq uint64, payload []byte) {
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	hdr[8] = byte(typ)
	hdr[9] = Version
	binary.LittleEndian.PutUint16(hdr[10:12], uint16(count))
	binary.LittleEndian.PutUint64(hdr[12:20], seq)
	binary.LittleEndian.PutUint32(hdr[4:8], frameCRC(hdr, payload))
}

// DecodeFrame decodes the frame at the start of b. It returns the frame
// (payload aliasing b) and the total encoded size n, so b[n:] is the
// next frame. A buffer ending mid-frame returns ErrShortFrame; a bad
// length, version or checksum returns ErrCorruptFrame. DecodeFrame
// never panics, whatever the input.
func DecodeFrame(b []byte) (Frame, int, error) {
	if len(b) < HeaderSize {
		return Frame{}, 0, ErrShortFrame
	}
	size := binary.LittleEndian.Uint32(b[0:4])
	if size > MaxPayload {
		return Frame{}, 0, ErrCorruptFrame
	}
	n := HeaderSize + int(size)
	if len(b) < n {
		return Frame{}, 0, ErrShortFrame
	}
	fr := Frame{
		Type:    FrameType(b[8]),
		Count:   int(binary.LittleEndian.Uint16(b[10:12])),
		Seq:     binary.LittleEndian.Uint64(b[12:20]),
		Payload: b[HeaderSize:n],
	}
	if b[9] != Version {
		return Frame{}, 0, ErrCorruptFrame
	}
	if fr.Type != FrameBatch && fr.Type != FrameAck {
		return Frame{}, 0, ErrCorruptFrame
	}
	crc := binary.LittleEndian.Uint32(b[4:8])
	if frameCRC(b[:HeaderSize], fr.Payload) != crc {
		return Frame{}, 0, ErrCorruptFrame
	}
	return fr, n, nil
}

// appendUvarint appends v in unsigned varint encoding.
func appendUvarint(dst []byte, v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	return append(dst, b[:n]...)
}

// appendString appends a length-prefixed string.
func appendString(dst []byte, s string) []byte {
	dst = appendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendU64(dst []byte, v uint64) []byte {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return append(dst, b[:]...)
}

func appendF64(dst []byte, v float64) []byte {
	return appendU64(dst, math.Float64bits(v))
}

// validateSub rejects submissions the codec cannot frame.
func validateSub(s Submission) error {
	if len(s.Device) > MaxStringLen || len(s.Model) > MaxStringLen || len(s.Origin) > MaxStringLen {
		return fmt.Errorf("wire: string field exceeds %d bytes", MaxStringLen)
	}
	if len(s.Cooldown) > MaxTracePoints {
		return fmt.Errorf("wire: cooldown trace %d points exceeds %d", len(s.Cooldown), MaxTracePoints)
	}
	return nil
}

// appendSubmission appends one submission's payload encoding.
func appendSubmission(dst []byte, s Submission) []byte {
	dst = appendString(dst, s.Device)
	dst = appendString(dst, s.Model)
	dst = appendF64(dst, s.Score)
	dst = appendString(dst, s.Origin)
	dst = appendU64(dst, uint64(s.HLCWall))
	var lb [2]byte
	binary.LittleEndian.PutUint16(lb[:], s.HLCLogical)
	dst = append(dst, lb[:]...)
	dst = appendUvarint(dst, uint64(len(s.Cooldown)))
	for _, p := range s.Cooldown {
		dst = appendF64(dst, p.AtSeconds)
		dst = appendF64(dst, p.TempC)
	}
	return dst
}

// AppendBatchFrame appends one batch frame carrying subs to dst and
// returns the extended slice, in the style of strconv.AppendInt. It
// fails if the batch exceeds MaxBatch, a field exceeds its bound, or
// the encoded payload exceeds MaxPayload.
func AppendBatchFrame(dst []byte, seq uint64, subs []Submission) ([]byte, error) {
	if len(subs) == 0 {
		return dst, fmt.Errorf("wire: empty batch")
	}
	if len(subs) > MaxBatch {
		return dst, fmt.Errorf("wire: batch of %d exceeds %d submissions", len(subs), MaxBatch)
	}
	for i := range subs {
		if err := validateSub(subs[i]); err != nil {
			return dst, err
		}
	}
	start := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	for i := range subs {
		dst = appendSubmission(dst, subs[i])
	}
	payload := dst[start+HeaderSize:]
	if len(payload) > MaxPayload {
		return dst[:start], fmt.Errorf("wire: batch payload %d bytes exceeds the %d-byte frame limit", len(payload), MaxPayload)
	}
	putHeader(dst[start:start+HeaderSize], FrameBatch, len(subs), seq, payload)
	return dst, nil
}

// AppendAckFrame appends one ack frame to dst and returns the extended
// slice.
func AppendAckFrame(dst []byte, ack Ack) []byte {
	start := len(dst)
	dst = append(dst, make([]byte, HeaderSize)...)
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], ack.Committed)
	dst = append(dst, b[:]...)
	binary.LittleEndian.PutUint32(b[:], ack.Dropped)
	dst = append(dst, b[:]...)
	dst = appendU64(dst, ack.CommitSeq)
	dst = appendString(dst, ack.Err)
	payload := dst[start+HeaderSize:]
	putHeader(dst[start:start+HeaderSize], FrameAck, 0, ack.Batch, payload)
	return dst
}

// cursor is a bounds-checked payload reader: every accessor returns a
// zero value and latches err once the payload runs out, so decode paths
// never panic on adversarial input.
type cursor struct {
	b   []byte
	off int
	err error
}

func (c *cursor) fail() { c.err = ErrCorruptFrame }

func (c *cursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.fail()
		return 0
	}
	c.off += n
	return v
}

func (c *cursor) str(max int) string {
	n := c.uvarint()
	if c.err != nil {
		return ""
	}
	if n > uint64(max) || c.off+int(n) > len(c.b) {
		c.fail()
		return ""
	}
	s := string(c.b[c.off : c.off+int(n)])
	c.off += int(n)
	return s
}

func (c *cursor) u64() uint64 {
	if c.err != nil {
		return 0
	}
	if c.off+8 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(c.b[c.off:])
	c.off += 8
	return v
}

func (c *cursor) u32() uint32 {
	if c.err != nil {
		return 0
	}
	if c.off+4 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint32(c.b[c.off:])
	c.off += 4
	return v
}

func (c *cursor) u16() uint16 {
	if c.err != nil {
		return 0
	}
	if c.off+2 > len(c.b) {
		c.fail()
		return 0
	}
	v := binary.LittleEndian.Uint16(c.b[c.off:])
	c.off += 2
	return v
}

func (c *cursor) f64() float64 { return math.Float64frombits(c.u64()) }

// DecodeSubmissions decodes a batch frame's payload into its
// submissions. The frame's count must match exactly and the payload
// must be consumed exactly — trailing or missing bytes are corruption.
func DecodeSubmissions(fr Frame) ([]Submission, error) {
	if fr.Type != FrameBatch {
		return nil, fmt.Errorf("wire: frame type %d is not a batch", fr.Type)
	}
	if fr.Count == 0 || fr.Count > MaxBatch {
		return nil, ErrCorruptFrame
	}
	c := &cursor{b: fr.Payload}
	subs := make([]Submission, 0, fr.Count)
	for i := 0; i < fr.Count; i++ {
		var s Submission
		s.Device = c.str(MaxStringLen)
		s.Model = c.str(MaxStringLen)
		s.Score = c.f64()
		s.Origin = c.str(MaxStringLen)
		s.HLCWall = int64(c.u64())
		s.HLCLogical = c.u16()
		n := c.uvarint()
		if c.err != nil {
			return nil, c.err
		}
		if n > MaxTracePoints {
			return nil, ErrCorruptFrame
		}
		// Each point is 16 bytes; reject counts the payload cannot hold
		// before allocating.
		if int(n)*16 > len(c.b)-c.off {
			return nil, ErrCorruptFrame
		}
		s.Cooldown = make([]Point, n)
		for j := range s.Cooldown {
			s.Cooldown[j] = Point{AtSeconds: c.f64(), TempC: c.f64()}
		}
		if c.err != nil {
			return nil, c.err
		}
		subs = append(subs, s)
	}
	if c.off != len(c.b) {
		return nil, ErrCorruptFrame
	}
	return subs, nil
}

// DecodeAck decodes an ack frame's payload.
func DecodeAck(fr Frame) (Ack, error) {
	if fr.Type != FrameAck {
		return Ack{}, fmt.Errorf("wire: frame type %d is not an ack", fr.Type)
	}
	c := &cursor{b: fr.Payload}
	ack := Ack{Batch: fr.Seq}
	ack.Committed = c.u32()
	ack.Dropped = c.u32()
	ack.CommitSeq = c.u64()
	ack.Err = c.str(MaxPayload)
	if c.err != nil {
		return Ack{}, c.err
	}
	if c.off != len(c.b) {
		return Ack{}, ErrCorruptFrame
	}
	return ack, nil
}
