package wire

import (
	"bytes"
	"testing"
)

// FuzzWireFrameDecode hammers the frame decoder with torn frames, bit
// flips, oversized length prefixes and arbitrary garbage. The
// properties under test: DecodeFrame/DecodeSubmissions/DecodeAck never
// panic whatever the bytes, and anything that decodes successfully
// survives a re-encode + re-decode with identical values (so the codec
// cannot silently lose or invent fields). Byte identity is not
// asserted — varint length prefixes admit non-minimal encodings — but
// value identity is.
func FuzzWireFrameDecode(f *testing.F) {
	valid, err := AppendBatchFrame(nil, 7, []Submission{
		{Device: "d1", Model: "Nexus 5", Score: 99.5,
			Cooldown: []Point{{AtSeconds: 0, TempC: 44}, {AtSeconds: 5, TempC: 40}}},
		{Device: "d2", Model: "Pixel", Score: 101, Origin: "n2", HLCWall: 7, HLCLogical: 3,
			Cooldown: []Point{{AtSeconds: 0, TempC: 39}}},
	})
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(AppendAckFrame(nil, Ack{Batch: 9, Committed: 16, Dropped: 1, CommitSeq: 400, Err: "unreplicated"}))
	f.Add(valid[:HeaderSize-1])          // torn header
	f.Add(valid[:len(valid)-2])          // torn payload
	f.Add([]byte{0xff, 0xff, 0xff, 0xff}) // oversized length prefix
	flipped := append([]byte(nil), valid...)
	flipped[HeaderSize+3] ^= 0x01 // payload bit flip => CRC mismatch
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		fr, n, err := DecodeFrame(data)
		if err != nil {
			return
		}
		if n < HeaderSize || n > len(data) {
			t.Fatalf("frame size %d outside [%d, %d]", n, HeaderSize, len(data))
		}
		switch fr.Type {
		case FrameBatch:
			subs, err := DecodeSubmissions(fr)
			if err != nil {
				return
			}
			re, err := AppendBatchFrame(nil, fr.Seq, subs)
			if err != nil {
				t.Fatalf("re-encode of decoded batch failed: %v", err)
			}
			fr2, _, err := DecodeFrame(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded batch failed: %v", err)
			}
			subs2, err := DecodeSubmissions(fr2)
			if err != nil {
				t.Fatalf("re-decode of re-encoded batch payload failed: %v", err)
			}
			// Compare through a second encode: the minimal encoding is
			// deterministic, and byte comparison is exact even for NaN
			// score bits reflect would mis-compare.
			re2, err := AppendBatchFrame(nil, fr2.Seq, subs2)
			if err != nil {
				t.Fatalf("second re-encode failed: %v", err)
			}
			if fr2.Seq != fr.Seq || !bytes.Equal(re, re2) {
				t.Fatalf("batch round trip diverged:\n got %x\nwant %x", re2, re)
			}
		case FrameAck:
			ack, err := DecodeAck(fr)
			if err != nil {
				return
			}
			re := AppendAckFrame(nil, ack)
			fr2, _, err := DecodeFrame(re)
			if err != nil {
				t.Fatalf("re-decode of re-encoded ack failed: %v", err)
			}
			ack2, err := DecodeAck(fr2)
			if err != nil {
				t.Fatalf("re-decode of re-encoded ack payload failed: %v", err)
			}
			if ack2 != ack {
				t.Fatalf("ack round trip diverged: got %+v want %+v", ack2, ack)
			}
		}
	})
}
