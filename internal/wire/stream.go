package wire

import (
	"fmt"
	"io"
	"net/http"
)

// StreamPath is the streaming batch-ingest route the server mounts and
// the client dials.
const StreamPath = "/v1/stream"

// Reader decodes frames from a byte stream — the server's view of a
// request body, the client's view of a response body.
type Reader struct {
	r   io.Reader
	hdr [HeaderSize]byte
	buf []byte
}

// NewReader wraps r in a frame reader.
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// Next reads the next frame. The frame's payload aliases an internal
// buffer valid until the following Next call. A clean end of stream at
// a frame boundary returns io.EOF; a stream ending mid-frame returns
// ErrShortFrame; a frame failing validation returns ErrCorruptFrame.
func (rd *Reader) Next() (Frame, error) {
	if _, err := io.ReadFull(rd.r, rd.hdr[:]); err != nil {
		if err == io.EOF {
			return Frame{}, io.EOF
		}
		if err == io.ErrUnexpectedEOF {
			return Frame{}, ErrShortFrame
		}
		return Frame{}, err
	}
	size := int(uint32(rd.hdr[0]) | uint32(rd.hdr[1])<<8 | uint32(rd.hdr[2])<<16 | uint32(rd.hdr[3])<<24)
	if size > MaxPayload {
		return Frame{}, ErrCorruptFrame
	}
	if cap(rd.buf) < HeaderSize+size {
		rd.buf = make([]byte, HeaderSize+size)
	}
	rd.buf = rd.buf[:HeaderSize+size]
	copy(rd.buf, rd.hdr[:])
	if _, err := io.ReadFull(rd.r, rd.buf[HeaderSize:]); err != nil {
		if err == io.EOF || err == io.ErrUnexpectedEOF {
			return Frame{}, ErrShortFrame
		}
		return Frame{}, err
	}
	fr, _, err := DecodeFrame(rd.buf)
	return fr, err
}

// Stream is one persistent binary ingest connection: batch frames flow
// out over a chunked POST body while ack frames flow back on the
// response — full duplex over plain HTTP/1.1 (the server enables it
// via http.ResponseController). Not safe for concurrent use; open one
// Stream per worker.
type Stream struct {
	pw   *io.PipeWriter
	resp *http.Response
	rd   *Reader
	seq  uint64
	buf  []byte
}

// OpenStream dials POST {base}/v1/stream and returns the stream once
// the server has accepted it. Extra headers (e.g. the cluster
// forwarded marker) are copied onto the request. The client's
// transport settings govern connection reuse; pass the shared tuned
// client, not a fresh one per stream.
func OpenStream(client *http.Client, base string, hdr http.Header) (*Stream, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequest(http.MethodPost, base+StreamPath, pr)
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", ContentType)
	for k, vs := range hdr {
		for _, v := range vs {
			req.Header.Add(k, v)
		}
	}
	// Do returns once response headers arrive — the server sends them
	// (and flushes) before reading the first frame, so this does not
	// wait for the request body to finish.
	resp, err := client.Do(req)
	if err != nil {
		pw.CloseWithError(err)
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		resp.Body.Close()
		pw.Close()
		return nil, fmt.Errorf("wire: stream rejected: %s: %s", resp.Status, body)
	}
	return &Stream{pw: pw, resp: resp, rd: NewReader(resp.Body)}, nil
}

// Send encodes subs as one batch frame, writes it, and returns the
// frame's sequence number (assigned monotonically per stream).
func (st *Stream) Send(subs []Submission) (uint64, error) {
	st.seq++
	var err error
	st.buf, err = AppendBatchFrame(st.buf[:0], st.seq, subs)
	if err != nil {
		return 0, err
	}
	if _, err := st.pw.Write(st.buf); err != nil {
		return 0, err
	}
	return st.seq, nil
}

// RecvAck reads the next ack frame, blocking until the server answers.
func (st *Stream) RecvAck() (Ack, error) {
	fr, err := st.rd.Next()
	if err != nil {
		return Ack{}, err
	}
	return DecodeAck(fr)
}

// Do sends one batch and waits for its ack — the window-of-one
// round trip crowdload's workers use. It verifies the ack answers the
// batch just sent.
func (st *Stream) Do(subs []Submission) (Ack, error) {
	seq, err := st.Send(subs)
	if err != nil {
		return Ack{}, err
	}
	ack, err := st.RecvAck()
	if err != nil {
		return Ack{}, err
	}
	if ack.Batch != seq {
		return Ack{}, fmt.Errorf("wire: ack for batch %d, want %d", ack.Batch, seq)
	}
	return ack, nil
}

// Close ends the stream: the request body closes (the server sees EOF
// and finishes the response) and the response body is drained so the
// connection returns to the pool.
func (st *Stream) Close() error {
	st.pw.Close()
	io.Copy(io.Discard, st.resp.Body)
	return st.resp.Body.Close()
}
