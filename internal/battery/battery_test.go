package battery

import (
	"math"
	"strings"
	"testing"

	"accubench/internal/units"
)

func TestFullBatteryOpenCircuit(t *testing.T) {
	b := NewBattery(2300, 3.85, 0.1)
	if b.SoC() != 1.0 {
		t.Fatalf("SoC = %v", b.SoC())
	}
	ocv := b.OpenCircuit()
	// Full Li-ion pack sits well above nominal (≈4.35 V for a 3.85 V pack).
	if ocv < 4.2 || ocv > 4.5 {
		t.Errorf("full OCV = %v, want ≈4.35V", ocv)
	}
}

func TestOCVDecreasesWithSoC(t *testing.T) {
	b := NewBattery(2300, 3.85, 0.1)
	prev := b.OpenCircuit()
	// Drain in 10% steps and check monotone non-increasing OCV.
	total := float64(b.Capacity.Coulombs()) * float64(b.Nominal)
	for i := 0; i < 9; i++ {
		b.Drain(units.Joules(total * 0.1))
		cur := b.OpenCircuit()
		if cur > prev {
			t.Fatalf("OCV rose from %v to %v at SoC %.2f", prev, cur, b.SoC())
		}
		prev = cur
	}
	if b.SoC() > 0.15 {
		t.Errorf("SoC after 90%% drain = %v", b.SoC())
	}
}

func TestVoltageSagsUnderLoad(t *testing.T) {
	b := NewBattery(2300, 3.85, 0.15)
	idle := b.Voltage(0)
	loaded := b.Voltage(8) // 8 W burst
	if loaded >= idle {
		t.Errorf("no sag: idle %v, loaded %v", idle, loaded)
	}
	// Sag should be roughly I·R = (8/4.35)·0.15 ≈ 0.28 V.
	sag := float64(idle - loaded)
	if sag < 0.1 || sag > 0.6 {
		t.Errorf("sag = %vV, want ≈0.28V", sag)
	}
}

func TestVoltageNeverNegative(t *testing.T) {
	b := NewBattery(100, 3.85, 10) // absurd internal resistance
	if v := b.Voltage(100); v < 0 {
		t.Errorf("voltage = %v", v)
	}
}

func TestDrainBookkeeping(t *testing.T) {
	b := NewBattery(2300, 3.85, 0.1)
	b.Drain(1000)
	b.Drain(500)
	if b.EnergyDrawn() != 1500 {
		t.Errorf("EnergyDrawn = %v", b.EnergyDrawn())
	}
	// Negative or zero drain ignored.
	b.Drain(-100)
	b.Drain(0)
	if b.EnergyDrawn() != 1500 {
		t.Errorf("EnergyDrawn after no-ops = %v", b.EnergyDrawn())
	}
}

func TestSoCFloorsAtZero(t *testing.T) {
	b := NewBattery(10, 3.85, 0.1)
	b.Drain(1e9)
	if b.SoC() != 0 {
		t.Errorf("SoC = %v, want 0", b.SoC())
	}
}

func TestAgedPackSuppliesLowerVoltage(t *testing.T) {
	// The paper's discussion connects the LG G5 anomaly to ageing batteries
	// whose deliverable voltage declines. An aged pack = higher internal
	// resistance; under the same load it presents a lower terminal voltage.
	fresh := NewBattery(2800, 3.85, 0.08)
	aged := NewBattery(2800, 3.85, 0.30)
	if aged.Voltage(6) >= fresh.Voltage(6) {
		t.Error("aged pack did not sag more than fresh pack")
	}
}

func TestBenchSupplyConstantVoltage(t *testing.T) {
	s := NewBenchSupply(4.4)
	if s.Voltage(0) != 4.4 || s.Voltage(50) != 4.4 {
		t.Errorf("bench supply sagged: %v / %v", s.Voltage(0), s.Voltage(50))
	}
	s.Drain(200)
	s.Drain(-5)
	if s.EnergyDelivered() != 200 {
		t.Errorf("EnergyDelivered = %v", s.EnergyDelivered())
	}
}

func TestDescribe(t *testing.T) {
	b := NewBattery(2300, 3.85, 0.1)
	if !strings.Contains(b.Describe(), "2300mAh") {
		t.Errorf("battery Describe = %q", b.Describe())
	}
	s := NewBenchSupply(3.85)
	if !strings.Contains(s.Describe(), "3.850V") {
		t.Errorf("supply Describe = %q", s.Describe())
	}
}

func TestSourceInterfaceCompliance(t *testing.T) {
	var _ Source = NewBattery(2300, 3.85, 0.1)
	var _ Source = NewBenchSupply(4.4)
}

func TestNominalScalesOCV(t *testing.T) {
	lo := NewBattery(2300, 3.80, 0.1)
	hi := NewBattery(2300, 4.40, 0.1)
	ratio := float64(hi.OpenCircuit()) / float64(lo.OpenCircuit())
	want := 4.40 / 3.80
	if math.Abs(ratio-want) > 1e-9 {
		t.Errorf("OCV scaling = %v, want %v", ratio, want)
	}
}
