// Package battery models the device power source. The paper powers every
// phone from a Monsoon monitor precisely to *remove* battery behaviour as a
// variance source, but the LG G5 anomaly (Fig. 10) showed the OS watches the
// input voltage anyway — so the simulator models both a real battery (OCV
// curve, internal resistance, sag under load) and the constant-voltage
// supply the Monsoon provides.
package battery

import (
	"fmt"

	"accubench/internal/units"
)

// Source is anything that can power a device: a battery or a bench supply.
type Source interface {
	// Voltage returns the terminal voltage while supplying the given power.
	// Implementations model sag: terminal voltage drops under load.
	Voltage(load units.Watts) units.Volts
	// Drain accounts for energy drawn from the source.
	Drain(e units.Joules)
	// Describe returns a human-readable description for logs.
	Describe() string
}

// ocvPoint is one point of a state-of-charge → open-circuit-voltage curve.
type ocvPoint struct {
	soc float64 // 0..1
	v   units.Volts
}

// liIonOCV is a generic Li-ion OCV curve (normalized to a 3.85 V nominal
// cell), flat through the middle of the discharge like real cells.
var liIonOCV = []ocvPoint{
	{0.00, 3.30},
	{0.05, 3.55},
	{0.10, 3.68},
	{0.25, 3.76},
	{0.50, 3.84},
	{0.75, 3.98},
	{0.90, 4.15},
	{1.00, 4.35},
}

// Battery is a lithium-ion cell with an OCV curve scaled to the pack's
// nominal voltage and a series internal resistance.
type Battery struct {
	// Capacity is the pack's rated charge.
	Capacity units.MilliampHours
	// Nominal is the pack's labelled nominal voltage (e.g. 3.85 V on the
	// LG G5's sticker — the value the paper initially fed the Monsoon).
	Nominal units.Volts
	// InternalResistance in ohms; terminal voltage sags by I·R under load.
	InternalResistance float64

	charge float64 // remaining, in joule-equivalent bookkeeping below
	energy units.Joules
	soc    float64
}

// NewBattery returns a fully charged battery.
func NewBattery(capacity units.MilliampHours, nominal units.Volts, internalOhms float64) *Battery {
	return &Battery{
		Capacity:           capacity,
		Nominal:            nominal,
		InternalResistance: internalOhms,
		soc:                1.0,
	}
}

// SoC returns the state of charge in [0,1].
func (b *Battery) SoC() float64 { return b.soc }

// OpenCircuit returns the no-load terminal voltage at the current SoC.
func (b *Battery) OpenCircuit() units.Volts {
	scale := float64(b.Nominal) / 3.85
	for i := 1; i < len(liIonOCV); i++ {
		if b.soc <= liIonOCV[i].soc {
			lo, hi := liIonOCV[i-1], liIonOCV[i]
			t := (b.soc - lo.soc) / (hi.soc - lo.soc)
			return units.Volts(units.Lerp(float64(lo.v), float64(hi.v), t) * scale)
		}
	}
	return units.Volts(float64(liIonOCV[len(liIonOCV)-1].v) * scale)
}

// Voltage returns the terminal voltage under the given load, including
// I·R sag. The current is approximated against the open-circuit voltage,
// which is accurate to within a percent for phone-scale loads.
func (b *Battery) Voltage(load units.Watts) units.Volts {
	ocv := b.OpenCircuit()
	i := units.Current(load, ocv)
	v := float64(ocv) - float64(i)*b.InternalResistance
	if v < 0 {
		v = 0
	}
	return units.Volts(v)
}

// Drain removes energy from the pack, reducing SoC proportionally.
func (b *Battery) Drain(e units.Joules) {
	if e <= 0 {
		return
	}
	total := float64(b.Capacity.Coulombs()) * float64(b.Nominal) // J ≈ Q·V_nominal
	b.energy += e
	b.soc -= float64(e) / total
	if b.soc < 0 {
		b.soc = 0
	}
}

// EnergyDrawn returns total energy drained since construction.
func (b *Battery) EnergyDrawn() units.Joules { return b.energy }

// Describe implements Source.
func (b *Battery) Describe() string {
	return fmt.Sprintf("battery %v %v (SoC %.0f%%)", b.Capacity, b.Nominal, b.soc*100)
}

// BenchSupply is an ideal constant-voltage source — the Monsoon's main
// channel. It never sags and never runs out.
type BenchSupply struct {
	// Setpoint is the configured output voltage.
	Setpoint units.Volts
	energy   units.Joules
}

// NewBenchSupply returns a supply configured at the given voltage.
func NewBenchSupply(v units.Volts) *BenchSupply { return &BenchSupply{Setpoint: v} }

// Voltage implements Source: constant regardless of load.
func (s *BenchSupply) Voltage(units.Watts) units.Volts { return s.Setpoint }

// Drain implements Source, accounting delivered energy.
func (s *BenchSupply) Drain(e units.Joules) {
	if e > 0 {
		s.energy += e
	}
}

// EnergyDelivered returns total energy supplied.
func (s *BenchSupply) EnergyDelivered() units.Joules { return s.energy }

// Describe implements Source.
func (s *BenchSupply) Describe() string {
	return fmt.Sprintf("bench supply at %v", s.Setpoint)
}
