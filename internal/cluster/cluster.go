// Package cluster implements the unsupervised bin discovery the paper
// proposes as future work (§VI): "In cases where there is no clear bin
// labels … we plan to create our own bins by clustering the performance
// data using unstructured learning algorithms."
//
// Scores from a crowd of same-model devices are one-dimensional, so the
// package provides an exact 1-D k-means (dynamic programming over sorted
// values — globally optimal, no seeding luck) plus a small model-selection
// helper that picks k by silhouette quality.
package cluster

import (
	"fmt"
	"math"
	"sort"
)

// Assignment is the result of clustering: per-input cluster indices and the
// cluster centroids in ascending order. Cluster 0 holds the smallest values
// (for performance scores: the worst silicon).
type Assignment struct {
	// Labels[i] is the cluster index of input i.
	Labels []int
	// Centroids are the cluster means, ascending.
	Centroids []float64
	// Cost is the total within-cluster sum of squared deviations.
	Cost float64
}

// KMeans1D exactly solves 1-D k-means for the given values. It runs in
// O(k·n²) with the classic DP over sorted prefixes, which is plenty for
// crowdsourced fleets of thousands of devices.
func KMeans1D(values []float64, k int) (Assignment, error) {
	n := len(values)
	if k <= 0 {
		return Assignment{}, fmt.Errorf("cluster: k = %d", k)
	}
	if n == 0 {
		return Assignment{}, fmt.Errorf("cluster: no values")
	}
	if k > n {
		return Assignment{}, fmt.Errorf("cluster: k = %d exceeds %d values", k, n)
	}

	// Sort, remembering original positions.
	type iv struct {
		v   float64
		idx int
	}
	sorted := make([]iv, n)
	for i, v := range values {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return Assignment{}, fmt.Errorf("cluster: non-finite value at %d", i)
		}
		sorted[i] = iv{v: v, idx: i}
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].v < sorted[b].v })

	// Prefix sums for O(1) segment cost.
	pre := make([]float64, n+1)
	pre2 := make([]float64, n+1)
	for i, s := range sorted {
		pre[i+1] = pre[i] + s.v
		pre2[i+1] = pre2[i] + s.v*s.v
	}
	segCost := func(i, j int) float64 { // cost of sorted[i..j] inclusive
		cnt := float64(j - i + 1)
		sum := pre[j+1] - pre[i]
		sum2 := pre2[j+1] - pre2[i]
		c := sum2 - sum*sum/cnt
		if c < 0 { // float guard
			c = 0
		}
		return c
	}

	const inf = math.MaxFloat64
	// dp[c][j] = min cost of clustering sorted[0..j] into c+1 clusters.
	dp := make([][]float64, k)
	cut := make([][]int, k)
	for c := range dp {
		dp[c] = make([]float64, n)
		cut[c] = make([]int, n)
	}
	for j := 0; j < n; j++ {
		dp[0][j] = segCost(0, j)
	}
	for c := 1; c < k; c++ {
		for j := 0; j < n; j++ {
			dp[c][j] = inf
			for i := c; i <= j; i++ {
				cost := dp[c-1][i-1] + segCost(i, j)
				if cost < dp[c][j] {
					dp[c][j] = cost
					cut[c][j] = i
				}
			}
		}
	}

	// Recover boundaries.
	bounds := make([]int, k+1)
	bounds[k] = n
	j := n - 1
	for c := k - 1; c >= 1; c-- {
		i := cut[c][j]
		bounds[c] = i
		j = i - 1
	}
	bounds[0] = 0

	out := Assignment{
		Labels:    make([]int, n),
		Centroids: make([]float64, k),
		Cost:      dp[k-1][n-1],
	}
	for c := 0; c < k; c++ {
		lo, hi := bounds[c], bounds[c+1]
		cnt := float64(hi - lo)
		out.Centroids[c] = (pre[hi] - pre[lo]) / cnt
		for s := lo; s < hi; s++ {
			out.Labels[sorted[s].idx] = c
		}
	}
	return out, nil
}

// ChooseK picks a cluster count in [1, maxK] by maximizing the silhouette
// coefficient over k ≥ 2; if even the best split separates poorly
// (silhouette below 0.75 — 1-D structureless noise plateaus around 0.65–0.7
// regardless of k), the data is treated as a single bin. Cost-drop elbows misfire on small crowdsourced
// samples, where a lumpy uniform cloud drops cost as fast as real modes;
// the silhouette criterion looks at separation, not dispersion.
func ChooseK(values []float64, maxK int) (int, error) {
	if maxK <= 0 {
		return 0, fmt.Errorf("cluster: maxK = %d", maxK)
	}
	if maxK > len(values) {
		maxK = len(values)
	}
	bestK, bestSil := 1, 0.0
	for k := 2; k <= maxK; k++ {
		a, err := KMeans1D(values, k)
		if err != nil {
			return 0, err
		}
		if s := Silhouette(values, a); s > bestSil {
			bestSil = s
			bestK = k
		}
	}
	if bestSil < 0.75 {
		return 1, nil
	}
	return bestK, nil
}

// Silhouette returns the mean silhouette coefficient of an assignment over
// the values — a [-1, 1] quality score (higher is better separated). It
// returns 0 for a single cluster, where the coefficient is undefined.
func Silhouette(values []float64, a Assignment) float64 {
	k := len(a.Centroids)
	if k < 2 {
		return 0
	}
	// Group values per cluster.
	groups := make([][]float64, k)
	for i, v := range values {
		c := a.Labels[i]
		groups[c] = append(groups[c], v)
	}
	var total float64
	var n int
	for i, v := range values {
		c := a.Labels[i]
		if len(groups[c]) < 2 {
			continue // silhouette undefined for singleton clusters
		}
		ai := meanDist(v, groups[c], true)
		bi := math.MaxFloat64
		for oc := 0; oc < k; oc++ {
			if oc == c || len(groups[oc]) == 0 {
				continue
			}
			if d := meanDist(v, groups[oc], false); d < bi {
				bi = d
			}
		}
		den := math.Max(ai, bi)
		if den > 0 {
			total += (bi - ai) / den
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return total / float64(n)
}

func meanDist(v float64, group []float64, excludeSelf bool) float64 {
	var sum float64
	cnt := 0
	skipped := false
	for _, g := range group {
		if excludeSelf && !skipped && g == v {
			skipped = true
			continue
		}
		sum += math.Abs(v - g)
		cnt++
	}
	if cnt == 0 {
		return 0
	}
	return sum / float64(cnt)
}
