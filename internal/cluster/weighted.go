package cluster

import (
	"fmt"
	"math"
	"sort"
)

// WeightedPoint is one clustering input carrying multiplicity: Weight
// devices share the value. The sketch-mode binner clusters sketch cells
// — a few hundred weighted points — instead of the full corpus, with
// semantics identical to expanding each point Weight times.
type WeightedPoint struct {
	Value  float64
	Weight int64
}

// WeightedAssignment is the result of weighted clustering. Cluster 0
// holds the smallest values.
type WeightedAssignment struct {
	// Labels[i] is the cluster index of input point i.
	Labels []int
	// Centroids are the weighted cluster means, ascending.
	Centroids []float64
	// Sizes are the total weights (device counts) per cluster.
	Sizes []int64
	// Cost is the total weighted within-cluster sum of squared deviations.
	Cost float64
}

// KMeans1DWeighted exactly solves 1-D k-means over weighted points: the
// same DP over sorted prefixes as KMeans1D, with count prefix sums
// replaced by weight prefix sums. Equivalent to KMeans1D on the
// expanded multiset (each point repeated Weight times), in O(k·n²) of
// the number of distinct points rather than the population size. Each
// point is atomic: all of its weight lands in one cluster.
func KMeans1DWeighted(points []WeightedPoint, k int) (WeightedAssignment, error) {
	n := len(points)
	if k <= 0 {
		return WeightedAssignment{}, fmt.Errorf("cluster: k = %d", k)
	}
	if n == 0 {
		return WeightedAssignment{}, fmt.Errorf("cluster: no points")
	}
	if k > n {
		return WeightedAssignment{}, fmt.Errorf("cluster: k = %d exceeds %d points", k, n)
	}

	type iv struct {
		v   float64
		w   int64
		idx int
	}
	sorted := make([]iv, n)
	for i, p := range points {
		if math.IsNaN(p.Value) || math.IsInf(p.Value, 0) {
			return WeightedAssignment{}, fmt.Errorf("cluster: non-finite value at %d", i)
		}
		if p.Weight <= 0 {
			return WeightedAssignment{}, fmt.Errorf("cluster: non-positive weight at %d", i)
		}
		sorted[i] = iv{v: p.Value, w: p.Weight, idx: i}
	}
	sort.Slice(sorted, func(a, b int) bool { return sorted[a].v < sorted[b].v })

	// Weighted prefix sums for O(1) segment cost.
	preW := make([]float64, n+1)
	preWV := make([]float64, n+1)
	preWV2 := make([]float64, n+1)
	for i, s := range sorted {
		w := float64(s.w)
		preW[i+1] = preW[i] + w
		preWV[i+1] = preWV[i] + w*s.v
		preWV2[i+1] = preWV2[i] + w*s.v*s.v
	}
	segCost := func(i, j int) float64 { // cost of sorted[i..j] inclusive
		w := preW[j+1] - preW[i]
		sum := preWV[j+1] - preWV[i]
		sum2 := preWV2[j+1] - preWV2[i]
		c := sum2 - sum*sum/w
		if c < 0 { // float guard
			c = 0
		}
		return c
	}

	const inf = math.MaxFloat64
	dp := make([][]float64, k)
	cut := make([][]int, k)
	for c := range dp {
		dp[c] = make([]float64, n)
		cut[c] = make([]int, n)
	}
	for j := 0; j < n; j++ {
		dp[0][j] = segCost(0, j)
	}
	for c := 1; c < k; c++ {
		for j := 0; j < n; j++ {
			dp[c][j] = inf
			for i := c; i <= j; i++ {
				cost := dp[c-1][i-1] + segCost(i, j)
				if cost < dp[c][j] {
					dp[c][j] = cost
					cut[c][j] = i
				}
			}
		}
	}

	bounds := make([]int, k+1)
	bounds[k] = n
	j := n - 1
	for c := k - 1; c >= 1; c-- {
		i := cut[c][j]
		bounds[c] = i
		j = i - 1
	}
	bounds[0] = 0

	out := WeightedAssignment{
		Labels:    make([]int, n),
		Centroids: make([]float64, k),
		Sizes:     make([]int64, k),
		Cost:      dp[k-1][n-1],
	}
	for c := 0; c < k; c++ {
		lo, hi := bounds[c], bounds[c+1]
		out.Centroids[c] = (preWV[hi] - preWV[lo]) / (preW[hi] - preW[lo])
		for s := lo; s < hi; s++ {
			out.Labels[sorted[s].idx] = c
			out.Sizes[c] += sorted[s].w
		}
	}
	return out, nil
}

// ChooseKWeighted picks a cluster count in [1, maxK] by weighted
// silhouette, with the same 0.75 separation threshold as ChooseK: below
// it the population is treated as a single bin. maxK is clamped to the
// number of distinct points.
func ChooseKWeighted(points []WeightedPoint, maxK int) (int, error) {
	if maxK <= 0 {
		return 0, fmt.Errorf("cluster: maxK = %d", maxK)
	}
	if maxK > len(points) {
		maxK = len(points)
	}
	bestK, bestSil := 1, 0.0
	for k := 2; k <= maxK; k++ {
		a, err := KMeans1DWeighted(points, k)
		if err != nil {
			return 0, err
		}
		if s := SilhouetteWeighted(points, a); s > bestSil {
			bestSil = s
			bestK = k
		}
	}
	if bestSil < 0.75 {
		return 1, nil
	}
	return bestK, nil
}

// SilhouetteWeighted returns the mean silhouette coefficient over the
// expanded multiset (each point counted Weight times): for a copy of
// value v in cluster c, a = Σ w·|v−u| over c divided by (W_c − 1) — the
// copy's own zero-distance term stays in the sum, the copy itself
// leaves the denominator — and b is the smallest mean distance to
// another cluster. Copies in clusters of total weight < 2 are skipped,
// matching Silhouette's singleton rule. Returns 0 for k < 2.
func SilhouetteWeighted(points []WeightedPoint, a WeightedAssignment) float64 {
	k := len(a.Centroids)
	if k < 2 {
		return 0
	}
	groups := make([][]WeightedPoint, k)
	for i, p := range points {
		c := a.Labels[i]
		groups[c] = append(groups[c], p)
	}
	var total, n float64
	for i, p := range points {
		c := a.Labels[i]
		if a.Sizes[c] < 2 {
			continue
		}
		ai := weightedDistSum(p.Value, groups[c]) / float64(a.Sizes[c]-1)
		bi := math.MaxFloat64
		for oc := 0; oc < k; oc++ {
			if oc == c || a.Sizes[oc] == 0 {
				continue
			}
			if d := weightedDistSum(p.Value, groups[oc]) / float64(a.Sizes[oc]); d < bi {
				bi = d
			}
		}
		den := math.Max(ai, bi)
		if den > 0 {
			w := float64(p.Weight)
			total += w * (bi - ai) / den
			n += w
		}
	}
	if n == 0 {
		return 0
	}
	return total / n
}

func weightedDistSum(v float64, group []WeightedPoint) float64 {
	var sum float64
	for _, g := range group {
		sum += float64(g.Weight) * math.Abs(v-g.Value)
	}
	return sum
}
