package cluster

import (
	"math"
	"math/rand"
	"testing"
)

// expand turns weighted points into the plain multiset they stand for.
func expand(points []WeightedPoint) []float64 {
	var out []float64
	for _, p := range points {
		for i := int64(0); i < p.Weight; i++ {
			out = append(out, p.Value)
		}
	}
	return out
}

// TestWeightedKMeansMatchesExpanded pins the defining property: weighted
// clustering equals plain clustering on the expanded multiset.
func TestWeightedKMeansMatchesExpanded(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 20; trial++ {
		var points []WeightedPoint
		n := 5 + rng.Intn(15)
		for i := 0; i < n; i++ {
			points = append(points, WeightedPoint{
				Value:  rng.Float64() * 10,
				Weight: 1 + int64(rng.Intn(6)),
			})
		}
		for k := 1; k <= 4 && k <= n; k++ {
			wa, err := KMeans1DWeighted(points, k)
			if err != nil {
				t.Fatalf("trial %d k=%d: %v", trial, k, err)
			}
			ea, err := KMeans1D(expand(points), k)
			if err != nil {
				t.Fatalf("trial %d k=%d expanded: %v", trial, k, err)
			}
			if math.Abs(wa.Cost-ea.Cost) > 1e-9*(1+ea.Cost) {
				t.Errorf("trial %d k=%d: weighted cost %g != expanded cost %g", trial, k, wa.Cost, ea.Cost)
			}
			for c := range wa.Centroids {
				if math.Abs(wa.Centroids[c]-ea.Centroids[c]) > 1e-9 {
					t.Errorf("trial %d k=%d centroid %d: %g != %g", trial, k, c, wa.Centroids[c], ea.Centroids[c])
				}
			}
			var totalW int64
			for _, s := range wa.Sizes {
				totalW += s
			}
			if want := int64(len(expand(points))); totalW != want {
				t.Errorf("trial %d k=%d: sizes sum %d != population %d", trial, k, totalW, want)
			}
		}
	}
}

func TestWeightedSilhouetteMatchesExpanded(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	for trial := 0; trial < 20; trial++ {
		var points []WeightedPoint
		n := 6 + rng.Intn(10)
		for i := 0; i < n; i++ {
			// Two loose modes so k=2 is a meaningful split.
			base := 2.0
			if i%2 == 0 {
				base = 8.0
			}
			points = append(points, WeightedPoint{
				Value:  base + rng.Float64(),
				Weight: 1 + int64(rng.Intn(4)),
			})
		}
		wa, err := KMeans1DWeighted(points, 2)
		if err != nil {
			t.Fatal(err)
		}
		exp := expand(points)
		ea, err := KMeans1D(exp, 2)
		if err != nil {
			t.Fatal(err)
		}
		ws := SilhouetteWeighted(points, wa)
		es := Silhouette(exp, ea)
		if math.Abs(ws-es) > 1e-9 {
			t.Errorf("trial %d: weighted silhouette %g != expanded %g", trial, ws, es)
		}
	}
}

func TestChooseKWeighted(t *testing.T) {
	// Two tight, well-separated modes: k=2 must win.
	var bimodal []WeightedPoint
	for i := 0; i < 10; i++ {
		bimodal = append(bimodal, WeightedPoint{Value: 1 + float64(i)*0.01, Weight: 3})
		bimodal = append(bimodal, WeightedPoint{Value: 9 + float64(i)*0.01, Weight: 2})
	}
	k, err := ChooseKWeighted(bimodal, 5)
	if err != nil {
		t.Fatal(err)
	}
	if k != 2 {
		t.Errorf("bimodal ChooseKWeighted = %d, want 2", k)
	}

	// Structureless uniform cloud: must fall back to a single bin.
	rng := rand.New(rand.NewSource(23))
	var uniform []WeightedPoint
	for i := 0; i < 40; i++ {
		uniform = append(uniform, WeightedPoint{Value: rng.Float64(), Weight: 1 + int64(rng.Intn(3))})
	}
	k, err = ChooseKWeighted(uniform, 5)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("uniform ChooseKWeighted = %d, want 1", k)
	}
}

func TestWeightedKMeansErrors(t *testing.T) {
	pts := []WeightedPoint{{Value: 1, Weight: 1}}
	if _, err := KMeans1DWeighted(pts, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans1DWeighted(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := KMeans1DWeighted(pts, 2); err == nil {
		t.Error("k > n accepted")
	}
	if _, err := KMeans1DWeighted([]WeightedPoint{{Value: math.NaN(), Weight: 1}}, 1); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := KMeans1DWeighted([]WeightedPoint{{Value: 1, Weight: 0}}, 1); err == nil {
		t.Error("zero weight accepted")
	}
	if _, err := ChooseKWeighted(pts, 0); err == nil {
		t.Error("ChooseKWeighted maxK=0 accepted")
	}
}
