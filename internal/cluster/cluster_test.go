package cluster

import (
	"math"
	"testing"
	"testing/quick"

	"accubench/internal/sim"
)

func TestKMeansObviousClusters(t *testing.T) {
	vals := []float64{1.0, 1.1, 0.9, 10.0, 10.2, 9.8}
	a, err := KMeans1D(vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Centroids) != 2 {
		t.Fatalf("centroids = %v", a.Centroids)
	}
	if math.Abs(a.Centroids[0]-1.0) > 0.1 || math.Abs(a.Centroids[1]-10.0) > 0.1 {
		t.Errorf("centroids = %v, want ≈[1, 10]", a.Centroids)
	}
	// First three inputs in cluster 0, last three in cluster 1.
	for i := 0; i < 3; i++ {
		if a.Labels[i] != 0 {
			t.Errorf("Labels[%d] = %d", i, a.Labels[i])
		}
	}
	for i := 3; i < 6; i++ {
		if a.Labels[i] != 1 {
			t.Errorf("Labels[%d] = %d", i, a.Labels[i])
		}
	}
}

func TestKMeansK1(t *testing.T) {
	vals := []float64{2, 4, 6}
	a, err := KMeans1D(vals, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(a.Centroids[0]-4) > 1e-12 {
		t.Errorf("centroid = %v, want 4", a.Centroids[0])
	}
	if math.Abs(a.Cost-8) > 1e-9 { // (2-4)²+(0)²+(6-4)² = 8
		t.Errorf("cost = %v, want 8", a.Cost)
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	vals := []float64{5, 1, 3}
	a, err := KMeans1D(vals, 3)
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != 0 {
		t.Errorf("cost = %v, want 0 with k=n", a.Cost)
	}
	// Centroids ascend; labels map each value to its own cluster.
	if a.Centroids[0] != 1 || a.Centroids[1] != 3 || a.Centroids[2] != 5 {
		t.Errorf("centroids = %v", a.Centroids)
	}
	if a.Labels[0] != 2 || a.Labels[1] != 0 || a.Labels[2] != 1 {
		t.Errorf("labels = %v", a.Labels)
	}
}

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans1D(nil, 1); err == nil {
		t.Error("empty input accepted")
	}
	if _, err := KMeans1D([]float64{1}, 0); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KMeans1D([]float64{1}, 2); err == nil {
		t.Error("k>n accepted")
	}
	if _, err := KMeans1D([]float64{math.NaN()}, 1); err == nil {
		t.Error("NaN accepted")
	}
	if _, err := KMeans1D([]float64{math.Inf(1)}, 1); err == nil {
		t.Error("Inf accepted")
	}
}

func TestKMeansOptimalityAgainstBruteForce(t *testing.T) {
	// For small inputs, compare DP cost against brute-force partitioning.
	src := sim.NewSource(5, "kmeans")
	for trial := 0; trial < 20; trial++ {
		n := 5 + src.Intn(3)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = src.Uniform(0, 100)
		}
		for k := 1; k <= 3; k++ {
			a, err := KMeans1D(vals, k)
			if err != nil {
				t.Fatal(err)
			}
			want := bruteForceCost(vals, k)
			if math.Abs(a.Cost-want) > 1e-6 {
				t.Errorf("trial %d k=%d: DP cost %v, brute force %v (vals %v)", trial, k, a.Cost, want, vals)
			}
		}
	}
}

// bruteForceCost enumerates all contiguous partitions of the sorted values.
func bruteForceCost(vals []float64, k int) float64 {
	s := append([]float64(nil), vals...)
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
	best := math.MaxFloat64
	var rec func(start, left int, acc float64)
	cost := func(seg []float64) float64 {
		var m float64
		for _, v := range seg {
			m += v
		}
		m /= float64(len(seg))
		var c float64
		for _, v := range seg {
			c += (v - m) * (v - m)
		}
		return c
	}
	rec = func(start, left int, acc float64) {
		if left == 1 {
			total := acc + cost(s[start:])
			if total < best {
				best = total
			}
			return
		}
		for end := start + 1; end <= len(s)-left+1; end++ {
			rec(end, left-1, acc+cost(s[start:end]))
		}
	}
	rec(0, k, 0)
	return best
}

func TestKMeansCostDecreasesInK(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 1000))
			}
		}
		if len(vals) < 4 {
			return true
		}
		prev := math.MaxFloat64
		for k := 1; k <= 4 && k <= len(vals); k++ {
			a, err := KMeans1D(vals, k)
			if err != nil {
				return false
			}
			if a.Cost > prev+1e-6 {
				return false
			}
			prev = a.Cost
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestChooseKFindsBinCount(t *testing.T) {
	// Three well-separated bins of crowdsourced scores.
	var vals []float64
	src := sim.NewSource(7, "choosek")
	for _, center := range []float64{500, 560, 620} {
		for i := 0; i < 30; i++ {
			vals = append(vals, src.Normal(center, 5))
		}
	}
	k, err := ChooseK(vals, 6)
	if err != nil {
		t.Fatal(err)
	}
	if k != 3 {
		t.Errorf("ChooseK = %d, want 3", k)
	}
}

func TestChooseKNoStructure(t *testing.T) {
	src := sim.NewSource(9, "flat")
	vals := make([]float64, 60)
	for i := range vals {
		vals[i] = src.Uniform(0, 1)
	}
	k, err := ChooseK(vals, 5)
	if err != nil {
		t.Fatal(err)
	}
	if k > 2 {
		t.Errorf("ChooseK on uniform noise = %d, want ≤2", k)
	}
}

func TestChooseKIdenticalValues(t *testing.T) {
	k, err := ChooseK([]float64{7, 7, 7, 7}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if k != 1 {
		t.Errorf("ChooseK on constants = %d, want 1", k)
	}
}

func TestChooseKErrors(t *testing.T) {
	if _, err := ChooseK([]float64{1, 2}, 0); err == nil {
		t.Error("maxK=0 accepted")
	}
}

func TestSilhouette(t *testing.T) {
	vals := []float64{1.0, 1.1, 0.9, 10.0, 10.2, 9.8}
	a, err := KMeans1D(vals, 2)
	if err != nil {
		t.Fatal(err)
	}
	s := Silhouette(vals, a)
	if s < 0.8 {
		t.Errorf("silhouette = %v for well-separated clusters, want >0.8", s)
	}
	// One cluster: undefined → 0.
	a1, _ := KMeans1D(vals, 1)
	if got := Silhouette(vals, a1); got != 0 {
		t.Errorf("silhouette k=1 = %v", got)
	}
	// Badly split data scores worse than well-split data.
	flat := []float64{1, 2, 3, 4, 5, 6}
	af, _ := KMeans1D(flat, 2)
	if sf := Silhouette(flat, af); sf >= s {
		t.Errorf("flat-data silhouette %v not below separated-data %v", sf, s)
	}
}
