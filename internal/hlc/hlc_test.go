package hlc

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// fakeNow is a settable physical clock for driving skew scenarios.
type fakeNow struct {
	mu sync.Mutex
	t  time.Time
}

func (f *fakeNow) now() time.Time {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.t
}

func (f *fakeNow) set(t time.Time) {
	f.mu.Lock()
	f.t = t
	f.mu.Unlock()
}

func TestNowStrictlyMonotonicWithinMillisecond(t *testing.T) {
	phys := &fakeNow{t: time.UnixMilli(1_000_000)}
	c := NewClock(phys.now, 0)
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		next := c.Now()
		if !prev.Before(next) {
			t.Fatalf("stamp %d: %v not strictly after %v", i, next, prev)
		}
		if next.Wall != 1_000_000 {
			t.Fatalf("stamp %d left the frozen millisecond: %v", i, next)
		}
		prev = next
	}
}

func TestNowSurvivesPhysicalRegression(t *testing.T) {
	phys := &fakeNow{t: time.UnixMilli(5_000_000)}
	c := NewClock(phys.now, 0)
	before := c.Now()
	// NTP steps the wall clock back a full minute.
	phys.set(time.UnixMilli(5_000_000 - 60_000))
	after := c.Now()
	if !before.Before(after) {
		t.Fatalf("regressed wall clock broke monotonicity: %v then %v", before, after)
	}
	if after.Wall != before.Wall {
		t.Fatalf("regressed clock changed the wall component: %v -> %v", before, after)
	}
	// Once physical time catches back up, stamps track it again.
	phys.set(time.UnixMilli(5_000_100))
	caught := c.Now()
	if caught.Wall != 5_000_100 || caught.Logical != 0 {
		t.Fatalf("clock did not rejoin physical time: %v", caught)
	}
}

func TestUpdateMergesRemoteStamp(t *testing.T) {
	phys := &fakeNow{t: time.UnixMilli(2_000_000)}
	c := NewClock(phys.now, time.Hour)
	remote := Timestamp{Wall: 2_000_050, Logical: 7}
	got := c.Update(remote)
	if !remote.Before(got) {
		t.Fatalf("Update(%v) = %v, not strictly after the remote stamp", remote, got)
	}
	if got.Wall != remote.Wall || got.Logical != 8 {
		t.Fatalf("Update(%v) = %v, want logical bump within the remote millisecond", remote, got)
	}
	// Local sends keep ordering after the merge.
	next := c.Now()
	if !got.Before(next) {
		t.Fatalf("Now after Update: %v not after %v", next, got)
	}
}

func TestUpdateClampsRunawayRemote(t *testing.T) {
	phys := &fakeNow{t: time.UnixMilli(3_000_000)}
	c := NewClock(phys.now, 500*time.Millisecond)
	remote := Timestamp{Wall: 3_000_000 + 3_600_000, Logical: 0} // one hour ahead
	got := c.Update(remote)
	limit := int64(3_000_000 + 500)
	if got.Wall > limit+1 {
		t.Fatalf("Update let a runaway remote pull the clock to %v (drift limit wall %d)", got, limit)
	}
	if c.Clamped() != 1 {
		t.Fatalf("Clamped() = %d, want 1", c.Clamped())
	}
	// A remote inside the drift bound is not clamped.
	c.Update(Timestamp{Wall: 3_000_100, Logical: 0})
	if c.Clamped() != 1 {
		t.Fatalf("Clamped() = %d after an in-bound remote, want 1", c.Clamped())
	}
}

func TestLogicalOverflowRollsWallForward(t *testing.T) {
	phys := &fakeNow{t: time.UnixMilli(4_000_000)}
	c := NewClock(phys.now, 0)
	got := c.Update(Timestamp{Wall: 4_000_000, Logical: MaxLogical})
	if got.Wall != 4_000_001 || got.Logical != 0 {
		t.Fatalf("logical overflow produced %v, want wall rolled to 4000001.0", got)
	}
}

func TestConcurrentStampsAreUnique(t *testing.T) {
	c := NewClock(nil, 0)
	const goroutines, per = 8, 500
	stamps := make([][]Timestamp, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]Timestamp, per)
			for i := range out {
				out[i] = c.Now()
			}
			stamps[g] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[Timestamp]bool, goroutines*per)
	for _, batch := range stamps {
		prev := Timestamp{}
		for _, ts := range batch {
			if ts.IsZero() {
				t.Fatal("clock issued the unstamped sentinel")
			}
			if seen[ts] {
				t.Fatalf("duplicate stamp %v", ts)
			}
			seen[ts] = true
			if !prev.Before(ts) {
				t.Fatalf("per-goroutine order violated: %v then %v", prev, ts)
			}
			prev = ts
		}
	}
}

func TestPackOrderMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		a := Timestamp{Wall: rng.Int63n(MaxWall + 1), Logical: uint16(rng.Intn(MaxLogical + 1))}
		b := Timestamp{Wall: rng.Int63n(MaxWall + 1), Logical: uint16(rng.Intn(MaxLogical + 1))}
		packOrder := 0
		switch {
		case a.Pack() < b.Pack():
			packOrder = -1
		case a.Pack() > b.Pack():
			packOrder = 1
		}
		if packOrder != a.Compare(b) {
			t.Fatalf("pack order %d != Compare %d for %v vs %v", packOrder, a.Compare(b), a, b)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, ts := range []Timestamp{
		{},
		{Wall: 1, Logical: 0},
		{Wall: 0, Logical: 1},
		{Wall: MaxWall, Logical: MaxLogical},
		{Wall: time.Now().UnixMilli(), Logical: 42},
	} {
		b := ts.AppendEncode(nil)
		if len(b) != EncodedSize {
			t.Fatalf("encoded %v into %d bytes, want %d", ts, len(b), EncodedSize)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%v): %v", ts, err)
		}
		if got != ts {
			t.Fatalf("round trip %v -> %v", ts, got)
		}
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("Decode of a short buffer did not fail")
	}
}

// FuzzCodec asserts the wire codec is a bijection on the packed domain:
// any 8 bytes decode to a stamp that re-encodes to the same bytes, and
// encode/decode round-trips every stamp. Wired into `make fuzz-smoke`.
func FuzzCodec(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1) << 16)
	f.Add(^uint64(0))
	f.Add(uint64(time.Now().UnixMilli()) << 16)
	f.Fuzz(func(t *testing.T, packed uint64) {
		ts := Unpack(packed)
		if ts.Pack() != packed {
			t.Fatalf("Unpack(%d).Pack() = %d", packed, ts.Pack())
		}
		b := ts.AppendEncode(nil)
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != ts {
			t.Fatalf("wire round trip %v -> %v", ts, got)
		}
		// Order preservation: the packed integer order is the stamp order.
		other := Unpack(packed ^ 0xff)
		if (ts.Pack() < other.Pack()) != ts.Before(other) {
			t.Fatalf("pack order diverges from Compare for %v vs %v", ts, other)
		}
	})
}
