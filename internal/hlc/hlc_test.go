package hlc

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// The whole suite runs on the Manual physical clock — no test reads the
// machine's wall clock, so every assertion is exact and reproducible.

func TestNowStrictlyMonotonicWithinMillisecond(t *testing.T) {
	phys := NewManual(time.UnixMilli(1_000_000))
	c := NewClock(phys.Now, 0)
	prev := c.Now()
	for i := 0; i < 1000; i++ {
		next := c.Now()
		if !prev.Before(next) {
			t.Fatalf("stamp %d: %v not strictly after %v", i, next, prev)
		}
		if next.Wall != 1_000_000 {
			t.Fatalf("stamp %d left the frozen millisecond: %v", i, next)
		}
		prev = next
	}
}

func TestNowSurvivesPhysicalRegression(t *testing.T) {
	phys := NewManual(time.UnixMilli(5_000_000))
	c := NewClock(phys.Now, 0)
	before := c.Now()
	// NTP steps the wall clock back a full minute.
	phys.Set(time.UnixMilli(5_000_000 - 60_000))
	after := c.Now()
	if !before.Before(after) {
		t.Fatalf("regressed wall clock broke monotonicity: %v then %v", before, after)
	}
	if after.Wall != before.Wall {
		t.Fatalf("regressed clock changed the wall component: %v -> %v", before, after)
	}
	// Once physical time catches back up, stamps track it again.
	phys.Set(time.UnixMilli(5_000_100))
	caught := c.Now()
	if caught.Wall != 5_000_100 || caught.Logical != 0 {
		t.Fatalf("clock did not rejoin physical time: %v", caught)
	}
}

func TestManualAdvance(t *testing.T) {
	phys := NewManual(time.UnixMilli(9_000_000))
	c := NewClock(phys.Now, 0)
	first := c.Now()
	if got := phys.Advance(250 * time.Millisecond); got != time.UnixMilli(9_000_250) {
		t.Fatalf("Advance returned %v, want 9000250ms", got)
	}
	second := c.Now()
	if second.Wall != 9_000_250 || second.Logical != 0 {
		t.Fatalf("stamp after Advance = %v, want 9000250.0", second)
	}
	if !first.Before(second) {
		t.Fatalf("advance broke ordering: %v then %v", first, second)
	}
}

func TestUpdateMergesRemoteStamp(t *testing.T) {
	phys := NewManual(time.UnixMilli(2_000_000))
	c := NewClock(phys.Now, time.Hour)
	remote := Timestamp{Wall: 2_000_050, Logical: 7}
	got := c.Update(remote)
	if !remote.Before(got) {
		t.Fatalf("Update(%v) = %v, not strictly after the remote stamp", remote, got)
	}
	if got.Wall != remote.Wall || got.Logical != 8 {
		t.Fatalf("Update(%v) = %v, want logical bump within the remote millisecond", remote, got)
	}
	// Local sends keep ordering after the merge.
	next := c.Now()
	if !got.Before(next) {
		t.Fatalf("Now after Update: %v not after %v", next, got)
	}
}

// TestUpdateClampsRunawayRemote is exact on the manual clock: the
// runaway remote is truncated to (physical + drift, MaxLogical), and
// merging that saturated stamp rolls the wall forward exactly one
// millisecond.
func TestUpdateClampsRunawayRemote(t *testing.T) {
	phys := NewManual(time.UnixMilli(3_000_000))
	c := NewClock(phys.Now, 500*time.Millisecond)
	remote := Timestamp{Wall: 3_000_000 + 3_600_000, Logical: 0} // one hour ahead
	got := c.Update(remote)
	want := Timestamp{Wall: 3_000_501, Logical: 0}
	if got != want {
		t.Fatalf("Update(runaway remote) = %v, want exactly %v (drift limit wall 3000500, logical saturated)", got, want)
	}
	if c.Clamped() != 1 {
		t.Fatalf("Clamped() = %d, want 1", c.Clamped())
	}
	// A remote inside the drift bound is not clamped and merges exactly.
	got = c.Update(Timestamp{Wall: 3_000_100, Logical: 0})
	if c.Clamped() != 1 {
		t.Fatalf("Clamped() = %d after an in-bound remote, want 1", c.Clamped())
	}
	if (got != Timestamp{Wall: 3_000_501, Logical: 1}) {
		t.Fatalf("in-bound merge = %v, want 3000501.1 (history already past the remote)", got)
	}
}

func TestLogicalOverflowRollsWallForward(t *testing.T) {
	phys := NewManual(time.UnixMilli(4_000_000))
	c := NewClock(phys.Now, 0)
	got := c.Update(Timestamp{Wall: 4_000_000, Logical: MaxLogical})
	if got.Wall != 4_000_001 || got.Logical != 0 {
		t.Fatalf("logical overflow produced %v, want wall rolled to 4000001.0", got)
	}
}

func TestConcurrentStampsAreUnique(t *testing.T) {
	// A frozen manual clock is the worst case: every stamp competes for
	// the same millisecond, so uniqueness rides entirely on the logical
	// counter discipline.
	phys := NewManual(time.UnixMilli(6_000_000))
	c := NewClock(phys.Now, 0)
	const goroutines, per = 8, 500
	stamps := make([][]Timestamp, goroutines)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			out := make([]Timestamp, per)
			for i := range out {
				out[i] = c.Now()
			}
			stamps[g] = out
		}(g)
	}
	wg.Wait()
	seen := make(map[Timestamp]bool, goroutines*per)
	for _, batch := range stamps {
		prev := Timestamp{}
		for _, ts := range batch {
			if ts.IsZero() {
				t.Fatal("clock issued the unstamped sentinel")
			}
			if seen[ts] {
				t.Fatalf("duplicate stamp %v", ts)
			}
			seen[ts] = true
			if !prev.Before(ts) {
				t.Fatalf("per-goroutine order violated: %v then %v", prev, ts)
			}
			prev = ts
		}
	}
}

func TestPackOrderMatchesCompare(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10_000; i++ {
		a := Timestamp{Wall: rng.Int63n(MaxWall + 1), Logical: uint16(rng.Intn(MaxLogical + 1))}
		b := Timestamp{Wall: rng.Int63n(MaxWall + 1), Logical: uint16(rng.Intn(MaxLogical + 1))}
		packOrder := 0
		switch {
		case a.Pack() < b.Pack():
			packOrder = -1
		case a.Pack() > b.Pack():
			packOrder = 1
		}
		if packOrder != a.Compare(b) {
			t.Fatalf("pack order %d != Compare %d for %v vs %v", packOrder, a.Compare(b), a, b)
		}
	}
}

func TestCodecRoundTrip(t *testing.T) {
	for _, ts := range []Timestamp{
		{},
		{Wall: 1, Logical: 0},
		{Wall: 0, Logical: 1},
		{Wall: MaxWall, Logical: MaxLogical},
		{Wall: 1_700_000_000_000, Logical: 42}, // a plausible modern wall reading
	} {
		b := ts.AppendEncode(nil)
		if len(b) != EncodedSize {
			t.Fatalf("encoded %v into %d bytes, want %d", ts, len(b), EncodedSize)
		}
		got, err := Decode(b)
		if err != nil {
			t.Fatalf("Decode(%v): %v", ts, err)
		}
		if got != ts {
			t.Fatalf("round trip %v -> %v", ts, got)
		}
	}
	if _, err := Decode([]byte{1, 2, 3}); err == nil {
		t.Fatal("Decode of a short buffer did not fail")
	}
}

// FuzzCodec asserts the wire codec is a bijection on the packed domain:
// any 8 bytes decode to a stamp that re-encodes to the same bytes, and
// encode/decode round-trips every stamp. Wired into `make fuzz-smoke`.
func FuzzCodec(f *testing.F) {
	f.Add(uint64(0))
	f.Add(uint64(1) << 16)
	f.Add(^uint64(0))
	f.Add(uint64(1_700_000_000_000) << 16)
	f.Fuzz(func(t *testing.T, packed uint64) {
		ts := Unpack(packed)
		if ts.Pack() != packed {
			t.Fatalf("Unpack(%d).Pack() = %d", packed, ts.Pack())
		}
		b := ts.AppendEncode(nil)
		got, err := Decode(b)
		if err != nil {
			t.Fatal(err)
		}
		if got != ts {
			t.Fatalf("wire round trip %v -> %v", ts, got)
		}
		// Order preservation: the packed integer order is the stamp order.
		other := Unpack(packed ^ 0xff)
		if (ts.Pack() < other.Pack()) != ts.Before(other) {
			t.Fatalf("pack order diverges from Compare for %v vs %v", ts, other)
		}
	})
}
