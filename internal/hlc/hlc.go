// Package hlc implements the hybrid logical clock the replicated crowd
// service stamps submissions with.
//
// A cluster of crowdd nodes needs a per-record timestamp that (a) is
// unique and totally ordered per node, (b) respects causality across
// nodes — a record applied after hearing from a peer always stamps later
// than anything that peer had stamped — and (c) stays close to physical
// time so operators can read it. Wall clocks alone give none of that
// (NTP steps backwards, VMs pause); pure logical clocks give no wall
// affinity. The hybrid clock is the standard compromise (Kulkarni et
// al.): a timestamp is a physical component (milliseconds) plus a
// logical counter that breaks ties within a millisecond and absorbs
// clock regressions.
//
// The packed wire form is a single uint64 — 48 bits of Unix
// milliseconds, 16 bits of logical counter — so a stamp orders correctly
// under plain integer comparison and frames cheaply into the WAL and the
// replication protocol. The codec is fuzzed (FuzzCodec) in
// `make fuzz-smoke`.
package hlc

import (
	"encoding/binary"
	"fmt"
	"sync"
	"time"
)

// wallBits is how many bits of Unix milliseconds a packed timestamp
// carries: 2^48 ms ≈ 8900 years of range.
const wallBits = 48

// MaxWall is the largest physical component a timestamp can carry.
const MaxWall = int64(1)<<wallBits - 1

// MaxLogical is the largest logical counter within one millisecond;
// overflow rolls the physical component forward one millisecond.
const MaxLogical = 1<<16 - 1

// EncodedSize is the byte length of an encoded timestamp.
const EncodedSize = 8

// DefaultMaxDrift is how far into the future a remote stamp may pull the
// clock before Update clamps it — the drift clamp that keeps one node
// with a broken wall clock from poisoning the whole cluster's stamps.
const DefaultMaxDrift = 500 * time.Millisecond

// Timestamp is one hybrid-logical-clock reading. The zero value means
// "unstamped". Ordering is lexicographic (Wall, Logical) — exactly the
// integer order of the packed form.
type Timestamp struct {
	// Wall is the physical component, Unix milliseconds.
	Wall int64
	// Logical breaks ties within a millisecond.
	Logical uint16
}

// IsZero reports whether t is the unstamped sentinel.
func (t Timestamp) IsZero() bool { return t.Wall == 0 && t.Logical == 0 }

// Compare returns -1, 0 or +1 as t is before, equal to or after u.
func (t Timestamp) Compare(u Timestamp) int {
	switch {
	case t.Wall < u.Wall:
		return -1
	case t.Wall > u.Wall:
		return 1
	case t.Logical < u.Logical:
		return -1
	case t.Logical > u.Logical:
		return 1
	}
	return 0
}

// Before reports whether t orders strictly before u.
func (t Timestamp) Before(u Timestamp) bool { return t.Compare(u) < 0 }

// Time returns the physical component as a time.Time (for display; the
// logical counter is dropped).
func (t Timestamp) Time() time.Time { return time.UnixMilli(t.Wall) }

// String renders the stamp as wall-ms.logical.
func (t Timestamp) String() string { return fmt.Sprintf("%d.%d", t.Wall, t.Logical) }

// Pack folds the stamp into one uint64 whose integer order equals the
// stamp order. The physical component is masked to 48 bits.
func (t Timestamp) Pack() uint64 {
	return uint64(t.Wall&MaxWall)<<16 | uint64(t.Logical)
}

// Unpack inverts Pack.
func Unpack(v uint64) Timestamp {
	return Timestamp{Wall: int64(v >> 16), Logical: uint16(v & MaxLogical)}
}

// AppendEncode appends the 8-byte big-endian wire form to dst. Big
// endian keeps byte order equal to stamp order.
func (t Timestamp) AppendEncode(dst []byte) []byte {
	return binary.BigEndian.AppendUint64(dst, t.Pack())
}

// Decode parses the 8-byte wire form.
func Decode(b []byte) (Timestamp, error) {
	if len(b) < EncodedSize {
		return Timestamp{}, fmt.Errorf("hlc: %d bytes, need %d", len(b), EncodedSize)
	}
	return Unpack(binary.BigEndian.Uint64(b)), nil
}

// Manual is a settable physical-clock source — the injectable seam that
// removes real time from the unit suite and lets fault-injection
// harnesses (internal/chaos) drive clock-skew scenarios byte-for-byte
// reproducibly. Plug Manual.Now into NewClock; every reading then comes
// from Set/Advance instead of the machine's wall clock. All methods are
// safe for concurrent use.
type Manual struct {
	mu sync.Mutex
	t  time.Time
}

// NewManual returns a manual physical clock frozen at start.
func NewManual(start time.Time) *Manual {
	return &Manual{t: start}
}

// Now returns the current manual reading. Pass this method to NewClock.
func (m *Manual) Now() time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.t
}

// Set moves the manual clock to t — backwards moves model NTP steps and
// VM pauses.
func (m *Manual) Set(t time.Time) {
	m.mu.Lock()
	m.t = t
	m.mu.Unlock()
}

// Advance moves the manual clock forward by d and returns the new
// reading.
func (m *Manual) Advance(d time.Duration) time.Time {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.t = m.t.Add(d)
	return m.t
}

// Clock is one node's hybrid logical clock. All methods are safe for
// concurrent use. The zero value is not usable; use NewClock.
type Clock struct {
	mu       sync.Mutex
	last     Timestamp
	now      func() time.Time
	maxDrift time.Duration
	clamped  uint64
}

// NewClock creates a clock reading physical time from now (time.Now when
// nil) and clamping remote stamps more than maxDrift ahead of physical
// time (DefaultMaxDrift when <= 0).
func NewClock(now func() time.Time, maxDrift time.Duration) *Clock {
	if now == nil {
		now = time.Now
	}
	if maxDrift <= 0 {
		maxDrift = DefaultMaxDrift
	}
	return &Clock{now: now, maxDrift: maxDrift}
}

// tickLocked advances last to a stamp strictly after both the clock's
// history and the floor stamp, pinned to physical time when physical
// time is ahead, and returns it.
func (c *Clock) tickLocked(floor Timestamp) Timestamp {
	wall := c.now().UnixMilli()
	if c.last.Wall > wall {
		// Physical time stalled or regressed: stay on the logical track.
		wall = c.last.Wall
	}
	if floor.Wall > wall {
		wall = floor.Wall
	}
	// Within the winning millisecond the logical counter must exceed
	// whichever of the two stamps shares it.
	var lg uint32
	if wall == c.last.Wall && !c.last.IsZero() {
		lg = uint32(c.last.Logical) + 1
	}
	if wall == floor.Wall && !floor.IsZero() && uint32(floor.Logical)+1 > lg {
		lg = uint32(floor.Logical) + 1
	}
	next := Timestamp{Wall: wall, Logical: uint16(lg)}
	if lg > MaxLogical {
		// Counter exhausted within the millisecond: roll forward.
		next = Timestamp{Wall: wall + 1}
	}
	if next.IsZero() {
		// A physical clock sitting at the epoch (test doubles) must still
		// never issue the unstamped sentinel.
		next.Logical = 1
	}
	c.last = next
	return next
}

// Now returns the next send-event stamp: strictly greater than every
// stamp this clock has issued or observed, monotone even when the
// physical clock regresses.
func (c *Clock) Now() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tickLocked(Timestamp{})
}

// Update merges a remote stamp (a receive event) and returns the next
// local stamp, strictly greater than both the local history and the
// remote stamp. A remote stamp further than the drift clamp ahead of
// physical time is clamped to physical+drift before merging — and
// counted — so one broken peer clock cannot run the cluster's stamps
// into the future.
func (c *Clock) Update(remote Timestamp) Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	limit := c.now().Add(c.maxDrift).UnixMilli()
	if remote.Wall > limit {
		remote = Timestamp{Wall: limit, Logical: MaxLogical}
		c.clamped++
	}
	return c.tickLocked(remote)
}

// Last returns the most recent stamp issued or merged, without advancing
// the clock.
func (c *Clock) Last() Timestamp {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.last
}

// Clamped returns how many remote stamps the drift clamp has truncated —
// nonzero means some peer's wall clock is running ahead by more than the
// configured drift bound.
func (c *Clock) Clamped() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.clamped
}
