package thermal

import (
	"fmt"
	"strings"
	"time"

	"accubench/internal/units"
)

// Grid is a 2-D finite-difference thermal model of the die floorplan — the
// spatial companion to the lumped Network, in the spirit of the Therminator
// simulator the paper cites (§V: "a full device thermal analyzer … capable
// of generating accurate temperature maps"). Where the Network answers
// "how hot is the die", the Grid answers "where" — which core is the
// hotspot, how steep the gradients are, and how much shutting one core
// (the Nexus 5's 80 °C action) flattens the map.
//
// Each cell exchanges heat laterally with its 4-neighbours and vertically
// with a shared case node (itself coupled to ambient), matching the lumped
// PhoneBody when the per-cell parameters aggregate to the same totals.
type Grid struct {
	w, h  int
	cells []units.Celsius

	// cellCap is the thermal capacitance of one cell (J/°C).
	cellCap float64
	// lateralG is the conductance between adjacent cells (W/°C).
	lateralG float64
	// verticalG is each cell's conductance to the case (W/°C).
	verticalG float64

	// Case plate (lumped) and its coupling to ambient.
	caseTemp units.Celsius
	caseCap  float64
	caseG    float64
	ambient  units.Celsius

	inject []float64 // W per cell, consumed by Step

	// Unlike Network, a Grid's topology is fixed at construction, so the
	// stable substep and the per-substep flow scratch are computed once in
	// NewGrid rather than behind a seal flag.
	sub   time.Duration
	flows []float64
}

// GridConfig sizes a Grid to aggregate to a lumped PhoneBody: the cell
// capacitances sum to DieCapacitance, the vertical conductances to
// DieToCase, and the case parameters carry over directly.
type GridConfig struct {
	// W, H are the floorplan dimensions in cells.
	W, H int
	// Body is the lumped body to match in aggregate.
	Body PhoneBody
	// LateralG is the inter-cell conductance (W/°C); larger values spread
	// hotspots faster. Silicon spreads heat well: lateral conductance per
	// cell pair is typically a few times the per-cell vertical conductance.
	LateralG float64
	// Ambient is the starting/boundary temperature.
	Ambient units.Celsius
}

// NewGrid builds the grid at thermal equilibrium with the ambient.
func NewGrid(cfg GridConfig) (*Grid, error) {
	if cfg.W <= 0 || cfg.H <= 0 {
		return nil, fmt.Errorf("thermal: grid %dx%d", cfg.W, cfg.H)
	}
	if cfg.Body.DieCapacitance <= 0 || cfg.Body.CaseCapacitance <= 0 ||
		cfg.Body.DieToCase <= 0 || cfg.Body.CaseToAmbient <= 0 {
		return nil, fmt.Errorf("thermal: grid body not physical: %+v", cfg.Body)
	}
	if cfg.LateralG <= 0 {
		return nil, fmt.Errorf("thermal: non-positive lateral conductance %v", cfg.LateralG)
	}
	n := cfg.W * cfg.H
	g := &Grid{
		w:         cfg.W,
		h:         cfg.H,
		cells:     make([]units.Celsius, n),
		cellCap:   cfg.Body.DieCapacitance / float64(n),
		lateralG:  cfg.LateralG,
		verticalG: cfg.Body.DieToCase / float64(n),
		caseTemp:  cfg.Ambient,
		caseCap:   cfg.Body.CaseCapacitance,
		caseG:     cfg.Body.CaseToAmbient,
		ambient:   cfg.Ambient,
		inject:    make([]float64, n),
		flows:     make([]float64, n),
	}
	for i := range g.cells {
		g.cells[i] = cfg.Ambient
	}
	g.sub = g.maxStable()
	return g, nil
}

// Size returns the floorplan dimensions.
func (g *Grid) Size() (w, h int) { return g.w, g.h }

// SetAmbient moves the boundary temperature.
func (g *Grid) SetAmbient(t units.Celsius) { g.ambient = t }

// Cell returns the temperature at (x, y).
func (g *Grid) Cell(x, y int) (units.Celsius, error) {
	if x < 0 || x >= g.w || y < 0 || y >= g.h {
		return 0, fmt.Errorf("thermal: cell (%d,%d) outside %dx%d", x, y, g.w, g.h)
	}
	return g.cells[y*g.w+x], nil
}

// Case returns the case-plate temperature.
func (g *Grid) Case() units.Celsius { return g.caseTemp }

// Inject adds power uniformly over the rectangle [x0,x1)×[y0,y1) for the
// next Step — a floorplan block such as one core.
func (g *Grid) Inject(x0, y0, x1, y1 int, p units.Watts) error {
	if x0 < 0 || y0 < 0 || x1 > g.w || y1 > g.h || x0 >= x1 || y0 >= y1 {
		return fmt.Errorf("thermal: block [%d,%d)x[%d,%d) outside %dx%d", x0, x1, y0, y1, g.w, g.h)
	}
	cells := (x1 - x0) * (y1 - y0)
	per := float64(p) / float64(cells)
	for y := y0; y < y1; y++ {
		for x := x0; x < x1; x++ {
			g.inject[y*g.w+x] += per
		}
	}
	return nil
}

// maxStable returns a stable explicit-Euler step for the current parameters.
func (g *Grid) maxStable() time.Duration {
	// Worst cell: 4 lateral links + vertical.
	worstCell := (4*g.lateralG + g.verticalG) / g.cellCap
	worstCase := (g.verticalG*float64(g.w*g.h) + g.caseG) / g.caseCap
	worst := worstCell
	if worstCase > worst {
		worst = worstCase
	}
	if worst == 0 {
		return time.Hour
	}
	return time.Duration(0.4 / worst * float64(time.Second))
}

// Step advances the grid by dt, consuming injected power. The step is
// internally subdivided for stability.
func (g *Grid) Step(dt time.Duration) {
	if dt <= 0 {
		return
	}
	sub := g.sub
	for remaining := dt; remaining > 0; {
		h := sub
		if remaining < h {
			h = remaining
		}
		g.step(h)
		remaining -= h
	}
	for i := range g.inject {
		g.inject[i] = 0
	}
}

func (g *Grid) step(dt time.Duration) {
	sec := dt.Seconds()
	flows := g.flows
	for i := range flows {
		flows[i] = 0
	}
	var toCase float64
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			i := y*g.w + x
			ti := float64(g.cells[i])
			flows[i] += g.inject[i]
			// Lateral exchange: accumulate each link once (right and down).
			if x+1 < g.w {
				j := i + 1
				q := g.lateralG * (ti - float64(g.cells[j]))
				flows[i] -= q
				flows[j] += q
			}
			if y+1 < g.h {
				j := i + g.w
				q := g.lateralG * (ti - float64(g.cells[j]))
				flows[i] -= q
				flows[j] += q
			}
			// Vertical to case.
			qv := g.verticalG * (ti - float64(g.caseTemp))
			flows[i] -= qv
			toCase += qv
		}
	}
	for i := range g.cells {
		g.cells[i] += units.Celsius(flows[i] * sec / g.cellCap)
	}
	caseFlow := toCase - g.caseG*g.caseTemp.Delta(g.ambient)
	g.caseTemp += units.Celsius(caseFlow * sec / g.caseCap)
}

// Hotspot returns the hottest cell and its temperature.
func (g *Grid) Hotspot() (x, y int, t units.Celsius) {
	best := 0
	for i, c := range g.cells {
		if c > g.cells[best] {
			best = i
		}
	}
	return best % g.w, best / g.w, g.cells[best]
}

// Mean returns the area-average die temperature — the quantity the lumped
// Network's die node models.
func (g *Grid) Mean() units.Celsius {
	var sum float64
	for _, c := range g.cells {
		sum += float64(c)
	}
	return units.Celsius(sum / float64(len(g.cells)))
}

// Render draws the map as ASCII art, one glyph per cell, scaled between the
// grid's own min and max.
func (g *Grid) Render() string {
	glyphs := []byte(" .:-=+*#%@")
	lo, hi := g.cells[0], g.cells[0]
	for _, c := range g.cells {
		if c < lo {
			lo = c
		}
		if c > hi {
			hi = c
		}
	}
	var b strings.Builder
	for y := 0; y < g.h; y++ {
		for x := 0; x < g.w; x++ {
			idx := 0
			if hi > lo {
				idx = int(float64(g.cells[y*g.w+x]-lo) / float64(hi-lo) * float64(len(glyphs)-1))
			}
			b.WriteByte(glyphs[idx])
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Block is a named floorplan rectangle.
type Block struct {
	Name           string
	X0, Y0, X1, Y1 int
}

// QuadFloorplan lays four cores in the corners of a W×H grid with an uncore
// strip through the middle — the classic quad-core die arrangement used by
// every SoC in the study.
func QuadFloorplan(w, h int) []Block {
	midY0, midY1 := h/2-h/10-1, h/2+h/10+1
	return []Block{
		{Name: "core0", X0: 0, Y0: 0, X1: w / 2, Y1: midY0},
		{Name: "core1", X0: w / 2, Y0: 0, X1: w, Y1: midY0},
		{Name: "uncore", X0: 0, Y0: midY0, X1: w, Y1: midY1},
		{Name: "core2", X0: 0, Y0: midY1, X1: w / 2, Y1: h},
		{Name: "core3", X0: w / 2, Y0: midY1, X1: w, Y1: h},
	}
}
