package thermal

import (
	"testing"
	"time"

	"accubench/internal/units"
)

// refNetwork is a frozen copy of the pre-optimization integrator: the
// generic per-substep link loop with per-call allocations and no fast
// path. The optimized Network must match it bit for bit — not "close",
// identical — because the repository's goldens (experiments, accubench,
// crowd, testkit substrate) were all recorded through this arithmetic.
type refNetwork struct {
	temps   []units.Celsius
	caps    []float64
	links   []link
	ambient units.Celsius
	inject  []units.Watts
}

func newRef(nw *Network) *refNetwork {
	r := &refNetwork{ambient: nw.ambient}
	for _, n := range nw.nodes {
		r.temps = append(r.temps, n.temperature)
		r.caps = append(r.caps, n.Capacitance)
	}
	r.links = append(r.links, nw.links...)
	r.inject = make([]units.Watts, len(r.temps))
	return r
}

func (r *refNetwork) maxStableStep() time.Duration {
	worst := 0.0
	totalG := make([]float64, len(r.temps))
	for _, l := range r.links {
		totalG[l.a] += l.conductance
		if l.b != ambientIndex {
			totalG[l.b] += l.conductance
		}
	}
	for i, c := range r.caps {
		if totalG[i] == 0 {
			continue
		}
		if rate := totalG[i] / c; rate > worst {
			worst = rate
		}
	}
	if worst == 0 {
		return time.Hour
	}
	return time.Duration(0.5 / worst * float64(time.Second))
}

func (r *refNetwork) step(dt time.Duration) {
	if dt <= 0 {
		return
	}
	sub := r.maxStableStep()
	remaining := dt
	for remaining > 0 {
		h := sub
		if remaining < h {
			h = remaining
		}
		sec := h.Seconds()
		flows := make([]float64, len(r.temps))
		for i, p := range r.inject {
			flows[i] += float64(p)
		}
		for _, l := range r.links {
			ta := float64(r.temps[l.a])
			var tb float64
			if l.b == ambientIndex {
				tb = float64(r.ambient)
			} else {
				tb = float64(r.temps[l.b])
			}
			q := l.conductance * (ta - tb)
			flows[l.a] -= q
			if l.b != ambientIndex {
				flows[l.b] += q
			}
		}
		for i := range r.temps {
			r.temps[i] += units.Celsius(flows[i] * sec / r.caps[i])
		}
		remaining -= h
	}
	for i := range r.inject {
		r.inject[i] = 0
	}
}

// TestTwoNodeFastPathBitIdentical drives the optimized PhoneBody network
// and the reference integrator through an aggressive heat/cool schedule
// and demands exact float equality at every control step.
func TestTwoNodeFastPathBitIdentical(t *testing.T) {
	nw, die, cs, err := body().Build(26)
	if err != nil {
		t.Fatal(err)
	}
	ref := newRef(nw)
	if !func() bool { nw.Seal(); return nw.twoNode }() {
		t.Fatal("PhoneBody network did not take the two-node fast path")
	}
	power := []units.Watts{0, 7, 7, 3.2, 12, 0.25, 5, 0}
	for i := 0; i < 4000; i++ {
		p := power[i%len(power)]
		if err := nw.Inject(die, p); err != nil {
			t.Fatal(err)
		}
		ref.inject[die] += p
		if i%500 == 0 { // ambient moves like a regulated chamber
			amb := units.Celsius(26 + float64(i%3))
			nw.SetAmbient(amb)
			ref.ambient = amb
		}
		nw.Step(100 * time.Millisecond)
		ref.step(100 * time.Millisecond)
		gotDie, _ := nw.Temperature(die)
		gotCase, _ := nw.Temperature(cs)
		if gotDie != ref.temps[die] || gotCase != ref.temps[cs] {
			t.Fatalf("step %d: fast path diverged: die %v vs %v, case %v vs %v",
				i, gotDie, ref.temps[die], gotCase, ref.temps[cs])
		}
	}
}

// TestGenericPathBitIdentical covers the sealed generic loop (scratch
// reuse, precomputed substep) on a topology the fast path rejects: a
// three-node die→spreader→case chain.
func TestGenericPathBitIdentical(t *testing.T) {
	nw := NewNetwork(25)
	die, _ := nw.AddNode("die", 2.5, 25)
	spr, _ := nw.AddNode("spreader", 9, 25)
	cs, _ := nw.AddNode("case", 70, 25)
	if err := nw.Connect(die, spr, 0.4); err != nil {
		t.Fatal(err)
	}
	if err := nw.Connect(spr, cs, 0.25); err != nil {
		t.Fatal(err)
	}
	if err := nw.ConnectAmbient(cs, 0.3); err != nil {
		t.Fatal(err)
	}
	ref := newRef(nw)
	nw.Seal()
	if nw.twoNode {
		t.Fatal("three-node chain took the two-node fast path")
	}
	for i := 0; i < 2000; i++ {
		p := units.Watts(float64(i%11) * 0.9)
		nw.Inject(die, p)
		ref.inject[die] += p
		nw.Step(100 * time.Millisecond)
		ref.step(100 * time.Millisecond)
		for n := 0; n < 3; n++ {
			got, _ := nw.Temperature(n)
			if got != ref.temps[n] {
				t.Fatalf("step %d node %d: %v vs reference %v", i, n, got, ref.temps[n])
			}
		}
	}
}

// TestInjectRetainedAcrossNoopStep pins the accumulation contract: a
// non-positive Step consumes nothing, so injected power survives it and
// the next positive step integrates exactly what a direct step would
// have.
func TestInjectRetainedAcrossNoopStep(t *testing.T) {
	build := func() (*Network, int) {
		nw, die, _, err := body().Build(26)
		if err != nil {
			t.Fatal(err)
		}
		return nw, die
	}
	direct, die := build()
	direct.Inject(die, 6)
	direct.Step(100 * time.Millisecond)

	held, die2 := build()
	held.Inject(die2, 6)
	held.Step(0)
	held.Step(-time.Second)
	heldT, _ := held.Temperature(die2)
	if heldT != 26 {
		t.Fatalf("no-op step moved the die to %v", heldT)
	}
	held.Step(100 * time.Millisecond)

	directT, _ := direct.Temperature(die)
	heldT, _ = held.Temperature(die2)
	if directT != heldT {
		t.Errorf("power injected before a no-op step integrated to %v, direct step gives %v", heldT, directT)
	}
	if heldT <= 26 {
		t.Errorf("retained power was dropped: die still at %v", heldT)
	}

	// And it is consumed exactly once: a further step with no injection
	// must match a control network stepped the same way.
	control, die3 := build()
	control.Inject(die3, 6)
	control.Step(100 * time.Millisecond)
	control.Step(100 * time.Millisecond)
	held.Step(100 * time.Millisecond)
	controlT, _ := control.Temperature(die3)
	heldT, _ = held.Temperature(die2)
	if controlT != heldT {
		t.Errorf("retained power double-consumed: %v vs control %v", heldT, controlT)
	}
}

// TestTopologyEditUnseals ensures precomputed state never goes stale: a
// node or link added after the network has stepped must be reflected in
// the next step and in MaxStableStep.
func TestTopologyEditUnseals(t *testing.T) {
	nw, die, cs, err := body().Build(26)
	if err != nil {
		t.Fatal(err)
	}
	nw.Inject(die, 4)
	nw.Step(100 * time.Millisecond)
	before := nw.MaxStableStep()

	// Bolt a tightly coupled heat spreader onto the die.
	spr, err := nw.AddNode("spreader", 0.5, 26)
	if err != nil {
		t.Fatal(err)
	}
	if err := nw.Connect(die, spr, 5); err != nil {
		t.Fatal(err)
	}
	after := nw.MaxStableStep()
	if after >= before {
		t.Errorf("stable step %v did not shrink after adding a stiff link (was %v)", after, before)
	}
	// The next step must integrate the new node without stale-scratch
	// panics and keep the integration stable.
	nw.Inject(die, 4)
	nw.Step(100 * time.Millisecond)
	sprT, err := nw.Temperature(spr)
	if err != nil {
		t.Fatal(err)
	}
	if sprT <= 26 || sprT > 100 {
		t.Errorf("spreader at %v after a heated step — new node not integrated", sprT)
	}
	dieT, _ := nw.Temperature(die)
	caseT, _ := nw.Temperature(cs)
	if dieT <= caseT {
		t.Errorf("die %v not above case %v under load", dieT, caseT)
	}
}
