package thermal_test

import (
	"testing"
	"time"

	"accubench/internal/testkit"
	"accubench/internal/thermal"
	"accubench/internal/units"
)

// TestNetworkStepZeroAllocs pins the integrator's steady-state allocation
// count at exactly zero: after the first Step seals the topology, every
// further Step must run entirely on the precomputed substep and the
// reusable flow scratch. A regression here (a new per-step make, a
// closure capture, an interface box) turns the innermost simulation
// kernel back into a garbage factory, which is precisely what this PR's
// optimization removed.
func TestNetworkStepZeroAllocs(t *testing.T) {
	if testkit.RaceEnabled {
		t.Skip("race runtime instruments allocations; exact-zero assertion only holds without -race")
	}
	nw, die, _, err := thermal.PhoneBody{
		DieCapacitance: 3, CaseCapacitance: 60,
		DieToCase: 1.2, CaseToAmbient: 0.9,
	}.Build(26)
	if err != nil {
		t.Fatal(err)
	}
	// Warm-up: the first Step seals (computes the substep, sizes the
	// scratch); only the steady state is pinned.
	nw.Inject(die, 5)
	nw.Step(100 * time.Millisecond)

	allocs := testing.AllocsPerRun(200, func() {
		nw.Inject(die, 5)
		nw.Step(100 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("sealed Network.Step allocates %v objects per step, want 0", allocs)
	}
}

// TestGridStepZeroAllocs pins the floorplan integrator the same way; its
// topology is fixed at construction so no warm-up step is needed, but one
// is taken anyway to mirror real use.
func TestGridStepZeroAllocs(t *testing.T) {
	if testkit.RaceEnabled {
		t.Skip("race runtime instruments allocations; exact-zero assertion only holds without -race")
	}
	g, err := thermal.NewGrid(thermal.GridConfig{
		W: 16, H: 16,
		Body: thermal.PhoneBody{
			DieCapacitance: 3, CaseCapacitance: 60,
			DieToCase: 1.2, CaseToAmbient: 0.9,
		},
		LateralG: 0.5,
		Ambient:  26,
	})
	if err != nil {
		t.Fatal(err)
	}
	inject := func() {
		if err := g.Inject(0, 0, 8, 6, units.Watts(3)); err != nil {
			t.Fatal(err)
		}
	}
	inject()
	g.Step(100 * time.Millisecond)

	allocs := testing.AllocsPerRun(100, func() {
		inject()
		g.Step(100 * time.Millisecond)
	})
	if allocs != 0 {
		t.Errorf("Grid.Step allocates %v objects per step, want 0", allocs)
	}
}
