package thermal_test

import (
	"testing"

	"accubench/internal/soc"
	"accubench/internal/testkit"
	"accubench/internal/units"
)

// Every calibrated handset body must obey the RC model's physical laws —
// the checkers live in testkit so property tests elsewhere assert the
// same statements on ad-hoc bodies.

func TestEveryBodyConvergesToAmbient(t *testing.T) {
	for _, m := range soc.Models() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			for _, tc := range []struct {
				ambient, from units.Celsius
			}{
				{25, 90},  // hot die relaxing down
				{25, 5},   // cold-soaked device warming up
				{38, 95},  // hot pocket
				{10, 100}, // fridge trick
			} {
				testkit.CheckConvergesToAmbient(t, m.Body, tc.ambient, tc.from)
			}
		})
	}
}

func TestEveryBodyMonotoneInPower(t *testing.T) {
	for _, m := range soc.Models() {
		m := m
		t.Run(m.Name, func(t *testing.T) {
			testkit.CheckMonotoneInPower(t, m.Body, 26, []units.Watts{0.25, 0.5, 1, 2, 3, 5})
		})
	}
}
