package thermal

import (
	"math"
	"strings"
	"testing"
	"time"
)

func testGrid(t *testing.T, w, h int) *Grid {
	t.Helper()
	g, err := NewGrid(GridConfig{
		W:        w,
		H:        h,
		Body:     body(),
		LateralG: 0.02, // thermal length ≈ 4 cells: visible hotspots
		Ambient:  26,
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGridValidation(t *testing.T) {
	good := GridConfig{W: 8, H: 8, Body: body(), LateralG: 0.5, Ambient: 26}
	if _, err := NewGrid(good); err != nil {
		t.Fatalf("good config rejected: %v", err)
	}
	muts := []func(*GridConfig){
		func(c *GridConfig) { c.W = 0 },
		func(c *GridConfig) { c.H = -1 },
		func(c *GridConfig) { c.Body.DieCapacitance = 0 },
		func(c *GridConfig) { c.Body.CaseToAmbient = 0 },
		func(c *GridConfig) { c.LateralG = 0 },
	}
	for i, mut := range muts {
		c := good
		mut(&c)
		if _, err := NewGrid(c); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestGridStartsAtAmbient(t *testing.T) {
	g := testGrid(t, 8, 8)
	for y := 0; y < 8; y++ {
		for x := 0; x < 8; x++ {
			c, err := g.Cell(x, y)
			if err != nil {
				t.Fatal(err)
			}
			if c != 26 {
				t.Fatalf("cell (%d,%d) = %v", x, y, c)
			}
		}
	}
	if g.Case() != 26 {
		t.Errorf("case = %v", g.Case())
	}
	if _, err := g.Cell(8, 0); err == nil {
		t.Error("out-of-range cell accepted")
	}
}

func TestGridHotspotAtPoweredCore(t *testing.T) {
	g := testGrid(t, 16, 16)
	blocks := QuadFloorplan(16, 16)
	// Power only core0 (top-left quadrant).
	var core0 Block
	for _, b := range blocks {
		if b.Name == "core0" {
			core0 = b
		}
	}
	for i := 0; i < 300; i++ {
		if err := g.Inject(core0.X0, core0.Y0, core0.X1, core0.Y1, 2); err != nil {
			t.Fatal(err)
		}
		g.Step(100 * time.Millisecond)
	}
	x, y, hot := g.Hotspot()
	if x >= core0.X1 || y >= core0.Y1 {
		t.Errorf("hotspot at (%d,%d), want inside core0 [0,%d)x[0,%d)", x, y, core0.X1, core0.Y1)
	}
	// The far corner must be cooler.
	far, _ := g.Cell(15, 15)
	if far >= hot {
		t.Errorf("far corner %v not cooler than hotspot %v", far, hot)
	}
	if hot <= 26 {
		t.Errorf("hotspot %v did not heat", hot)
	}
}

func TestGridSymmetry(t *testing.T) {
	// Uniform injection must produce a map symmetric under 180° rotation.
	g := testGrid(t, 10, 10)
	for i := 0; i < 200; i++ {
		if err := g.Inject(0, 0, 10, 10, 3); err != nil {
			t.Fatal(err)
		}
		g.Step(100 * time.Millisecond)
	}
	for y := 0; y < 10; y++ {
		for x := 0; x < 10; x++ {
			a, _ := g.Cell(x, y)
			b, _ := g.Cell(9-x, 9-y)
			if math.Abs(a.Delta(b)) > 1e-6 {
				t.Fatalf("asymmetry at (%d,%d): %v vs %v", x, y, a, b)
			}
		}
	}
}

func TestGridMatchesLumpedModelInAggregate(t *testing.T) {
	// Uniformly heated, the grid's mean die temperature must converge to
	// the lumped Network's die node under the same body and power — the
	// cross-validation that the spatial model aggregates correctly.
	b := body()
	g, err := NewGrid(GridConfig{W: 8, H: 8, Body: b, LateralG: 0.5, Ambient: 26})
	if err != nil {
		t.Fatal(err)
	}
	nw, die, _, err := b.Build(26)
	if err != nil {
		t.Fatal(err)
	}
	const p = 3.0
	for i := 0; i < 3600*2; i++ {
		if err := g.Inject(0, 0, 8, 8, p); err != nil {
			t.Fatal(err)
		}
		g.Step(time.Second)
		nw.Inject(die, p)
		nw.Step(time.Second)
	}
	lumped, _ := nw.Temperature(die)
	if d := math.Abs(g.Mean().Delta(lumped)); d > 0.5 {
		t.Errorf("grid mean %v vs lumped die %v (Δ %.2f°C)", g.Mean(), lumped, d)
	}
	if d := math.Abs(g.Mean().Delta(b.SteadyStateDie(26, p))); d > 0.5 {
		t.Errorf("grid mean %v vs analytic steady state %v", g.Mean(), b.SteadyStateDie(26, p))
	}
}

func TestGridCoreShutdownFlattensMap(t *testing.T) {
	// The Nexus 5's 80 °C core-shutdown action, spatially: powering three
	// cores instead of four lowers the peak more than the mean.
	run := func(cores int) (mean, peak float64) {
		g := testGrid(t, 16, 16)
		blocks := QuadFloorplan(16, 16)
		for i := 0; i < 600; i++ {
			n := 0
			for _, b := range blocks {
				if b.Name == "uncore" {
					g.Inject(b.X0, b.Y0, b.X1, b.Y1, 0.2)
					continue
				}
				if n < cores {
					g.Inject(b.X0, b.Y0, b.X1, b.Y1, 1.2)
					n++
				}
			}
			g.Step(100 * time.Millisecond)
		}
		_, _, hot := g.Hotspot()
		return float64(g.Mean()), float64(hot)
	}
	mean4, peak4 := run(4)
	mean3, peak3 := run(3)
	if peak3 >= peak4 {
		t.Errorf("3-core peak %v not below 4-core peak %v", peak3, peak4)
	}
	// The survivors keep their local bumps while the dead quadrant cools,
	// so the map becomes *less* uniform: the peak-to-mean gradient grows.
	if g3, g4 := peak3-mean3, peak4-mean4; g3 <= g4 {
		t.Errorf("shutdown should steepen the gradient: 3-core %.2f°C vs 4-core %.2f°C", g3, g4)
	}
}

func TestGridInjectValidation(t *testing.T) {
	g := testGrid(t, 8, 8)
	bad := [][4]int{
		{-1, 0, 4, 4}, {0, -1, 4, 4}, {0, 0, 9, 4}, {0, 0, 4, 9}, {4, 0, 4, 4}, {0, 4, 4, 4},
	}
	for _, r := range bad {
		if err := g.Inject(r[0], r[1], r[2], r[3], 1); err == nil {
			t.Errorf("block %v accepted", r)
		}
	}
}

func TestGridRender(t *testing.T) {
	g := testGrid(t, 8, 4)
	g.Inject(0, 0, 2, 2, 2)
	g.Step(10 * time.Second)
	out := g.Render()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 || len(lines[0]) != 8 {
		t.Fatalf("render shape: %q", out)
	}
	// Hot corner renders the densest glyph, cold area a lighter one.
	if lines[0][0] != '@' {
		t.Errorf("hot corner glyph %q, want @", lines[0][0])
	}
	if lines[3][7] == '@' {
		t.Errorf("cold corner rendered as hottest")
	}
}

func TestQuadFloorplanCoversDie(t *testing.T) {
	w, h := 16, 16
	covered := make([]bool, w*h)
	for _, b := range QuadFloorplan(w, h) {
		for y := b.Y0; y < b.Y1; y++ {
			for x := b.X0; x < b.X1; x++ {
				if covered[y*w+x] {
					t.Fatalf("cell (%d,%d) covered twice (block %s)", x, y, b.Name)
				}
				covered[y*w+x] = true
			}
		}
	}
	for i, c := range covered {
		if !c {
			t.Fatalf("cell (%d,%d) uncovered", i%w, i/w)
		}
	}
}

func TestGridZeroStepNoOp(t *testing.T) {
	g := testGrid(t, 4, 4)
	g.Inject(0, 0, 4, 4, 100)
	g.Step(0)
	if c, _ := g.Cell(0, 0); c != 26 {
		t.Errorf("zero step changed temperature to %v", c)
	}
}
