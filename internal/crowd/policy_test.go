package crowd

import (
	"testing"

	"accubench/internal/units"
)

func TestPolicyEvaluateMatchesBatchPath(t *testing.T) {
	p := DefaultPolicy()
	// A clean geometric decay toward 24 °C: estimate ≈ 24 − IdleBias, inside
	// the [20, 30] window.
	readings := synthDecay(70, 24, 0.93, 40)
	est, accepted, err := p.Evaluate(readings)
	if err != nil {
		t.Fatal(err)
	}
	want := units.Celsius(24 - p.IdleBias)
	if d := est.Delta(want); d > 0.05 || d < -0.05 {
		t.Errorf("Evaluate estimate = %v, want ≈ %v", est, want)
	}
	if !accepted {
		t.Errorf("estimate %v inside [%v, %v] rejected", est, p.AcceptLo, p.AcceptHi)
	}

	// A hot climate lands outside the window: estimated, not accepted.
	est, accepted, err = p.Evaluate(synthDecay(80, 38, 0.93, 40))
	if err != nil {
		t.Fatal(err)
	}
	if accepted {
		t.Errorf("hot-climate estimate %v accepted", est)
	}

	// An unusable trace errors without an estimate.
	if _, _, err := p.Evaluate(nil); err == nil {
		t.Error("empty trace evaluated without error")
	}
}

func TestPolicyValidate(t *testing.T) {
	if err := DefaultPolicy().Validate(); err != nil {
		t.Fatalf("default policy rejected: %v", err)
	}
	bad := Policy{AcceptLo: 30, AcceptHi: 20}
	if err := bad.Validate(); err == nil {
		t.Error("empty window accepted")
	}
}

func TestStudyConfigPolicy(t *testing.T) {
	cfg := DefaultStudyConfig()
	p := cfg.Policy()
	if p.AcceptLo != cfg.AcceptLo || p.AcceptHi != cfg.AcceptHi || p.IdleBias != cfg.IdleBias {
		t.Errorf("Policy() = %+v does not mirror config %+v", p, cfg)
	}
}
