package crowd

import (
	"fmt"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/fleet"
	"accubench/internal/monsoon"
	"accubench/internal/soc"
	"accubench/internal/units"
)

// WildDevice is one in-the-wild handset about to run the crowd app: a
// fleet unit at an unknown ambient. Benchmark runs the app's protocol on
// it — no THERMABOX; that is the entire problem the backend solves.
type WildDevice struct {
	// Unit identifies the handset and its silicon-lottery outcome.
	Unit fleet.Unit
	// Ambient is the local ambient temperature (ground truth the backend
	// never sees).
	Ambient units.Celsius
	// Seed drives the device's sensor noise.
	Seed int64
	// Quick shortens the benchmark phases (tests, load generators).
	Quick bool
}

// Benchmark runs ACCUBENCH on the wild device and returns its upload: the
// score plus the cooldown trace the backend extrapolates the ambient from.
func (w WildDevice) Benchmark() (Submission, error) {
	model, err := soc.ModelByName(w.Unit.ModelName)
	if err != nil {
		return Submission{}, err
	}
	mon := monsoon.New(model.Battery.Nominal)
	dev, err := w.Unit.NewDevice(w.Ambient, w.Seed, mon.Supply())
	if err != nil {
		return Submission{}, err
	}
	bcfg := accubench.DefaultConfig(accubench.Unconstrained)
	bcfg.Iterations = 1
	// In the wild the app cannot know the local ambient to set an absolute
	// cooldown target; it sleeps a fixed interval long enough for the decay
	// to enter the slow case→ambient regime (≈2 case time constants), which
	// is what makes the trace extrapolable to the ambient.
	bcfg.CooldownFixed = 10 * time.Minute
	if w.Quick {
		bcfg.Warmup = time.Minute
		bcfg.Workload = 2 * time.Minute
	}
	res, err := (&accubench.Runner{Device: dev, Monitor: mon, Config: bcfg}).Run()
	if err != nil {
		return Submission{}, fmt.Errorf("crowd: %s: %w", w.Unit.Name, err)
	}
	it := res.Iterations[0]
	return Submission{
		Device:           dev.Name(),
		Score:            float64(it.Score),
		CooldownReadings: it.CooldownReadings,
		trueAmbient:      w.Ambient,
		trueLeakage:      w.Unit.Corner.Leakage,
	}, nil
}
