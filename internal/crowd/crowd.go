// Package crowd implements the paper's §VI future-work plan end to end:
// "introduce a benchmarking app on Google Play with the express intent of
// gathering the necessary data for binning CPUs … The only parameters that
// we cannot control for in the wild are ambient temperature and software
// stack. However, preliminary results on using the cooldown phase as an
// estimate of ambient temperature are encouraging. This, in addition to
// strict filters, should enable us to compare different devices from across
// the world."
//
// A Study simulates that app: a population of same-model devices, each at
// an unknown ambient temperature, runs ACCUBENCH and submits its score plus
// its cooldown trace. The backend then
//
//  1. estimates each submission's ambient from the cooldown decay
//     (Aitken extrapolation of the exponential tail),
//  2. filters submissions whose estimated ambient falls outside an
//     acceptance window ("strict filters"),
//  3. ranks the surviving devices and bins them by clustering.
package crowd

import (
	"fmt"
	"math"
	"sort"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/cluster"
	"accubench/internal/fleet"
	"accubench/internal/silicon"
	"accubench/internal/sim"
	"accubench/internal/soc"
	"accubench/internal/stats"
	"accubench/internal/units"
)

// Submission is what one in-the-wild device uploads.
type Submission struct {
	// Device is the unit's anonymous identifier.
	Device string
	// Score is the ACCUBENCH performance score.
	Score float64
	// CooldownReadings is the cooldown sensor trace.
	CooldownReadings []accubench.CooldownSample
	// EstimatedAmbient is the backend's ambient estimate from the trace.
	EstimatedAmbient units.Celsius
	// NormalizedScore is the score adjusted to the 26 °C reference ambient
	// using the slope fitted across accepted submissions; zero until the
	// backend pass runs.
	NormalizedScore float64
	// Accepted reports whether the submission survived the filters.
	Accepted bool

	// trueAmbient and trueLeakage are ground truth the backend never sees;
	// the study keeps them to evaluate estimator and ranking quality.
	trueAmbient units.Celsius
	trueLeakage float64
}

// TrueAmbient exposes the hidden ground truth for evaluation.
func (s Submission) TrueAmbient() units.Celsius { return s.trueAmbient }

// TrueLeakage exposes the hidden process corner for evaluation.
func (s Submission) TrueLeakage() float64 { return s.trueLeakage }

// EstimateAmbient fits the cooldown's exponential decay toward ambient and
// extrapolates its asymptote. With geometric decay T(t) = amb + A·q^t,
// three equally spaced readings give amb = (r0·r2 − r1²)/(r0 + r2 − 2·r1)
// (Aitken's Δ²). The tail of the trace is used, where the single-
// exponential model holds best. It returns an error when the trace is too
// short or too flat to extrapolate.
func EstimateAmbient(readings []accubench.CooldownSample) (units.Celsius, error) {
	if len(readings) < 12 {
		return 0, fmt.Errorf("crowd: cooldown trace too short (%d polls)", len(readings))
	}
	// The cooldown has two regimes: a fast die→case merge (tens of seconds)
	// whose asymptote is the *case* temperature, and the slow case→ambient
	// decay (minutes) whose asymptote is the ambient we want. Skip the fast
	// regime, then split the remainder into three equal blocks: block means
	// of a geometric decay are themselves geometric, so Aitken's Δ² on the
	// three means extrapolates the asymptote exactly for clean decay while
	// averaging the tsens noise down by √blockLen.
	skip := 0
	for skip < len(readings) && readings[skip].At < 2*time.Minute {
		skip++
	}
	tail := readings[skip:]
	if len(tail) < 9 {
		// Short traces (quick tests, synthetic fixtures): use what's there
		// beyond the first half.
		tail = readings[len(readings)/2:]
	}
	if len(tail) < 9 {
		return 0, fmt.Errorf("crowd: cooldown tail too short (%d polls)", len(tail))
	}
	blockLen := len(tail) / 3
	mean := func(b []accubench.CooldownSample) float64 {
		var sum float64
		for _, s := range b {
			sum += float64(s.Reading)
		}
		return sum / float64(len(b))
	}
	b0 := mean(tail[0:blockLen])
	b1 := mean(tail[blockLen : 2*blockLen])
	b2 := mean(tail[2*blockLen : 3*blockLen])
	den := b0 + b2 - 2*b1
	if math.Abs(den) < 0.05 || b0-b2 < 0.2 {
		return 0, fmt.Errorf("crowd: cooldown trace too flat to extrapolate")
	}
	amb := (b0*b2 - b1*b1) / den
	if amb < -20 || amb > 60 {
		return 0, fmt.Errorf("crowd: extrapolated ambient %.1f°C implausible", amb)
	}
	if amb > b2 {
		// The asymptote cannot sit above the final block of a cooling trace;
		// clamp pathological noise outcomes to the last mean.
		amb = b2
	}
	return units.Celsius(amb), nil
}

// StudyConfig parameterizes a crowdsourced study.
type StudyConfig struct {
	// ModelName is the handset model under study.
	ModelName string
	// Population is how many devices submit.
	Population int
	// AmbientLo and AmbientHi bound the wild ambients (uniform).
	AmbientLo, AmbientHi units.Celsius
	// AcceptLo and AcceptHi bound the filter window on the *estimated*
	// ambient; submissions outside are rejected.
	AcceptLo, AcceptHi units.Celsius
	// Sigma is the population's leakage log-normal sigma. The paper's
	// fleets imply a wide spread (the calibrated Nexus 5 bins span ≈3×
	// leakage); narrow populations are largely *equalized* by voltage
	// binning and rank flat.
	Sigma float64
	// BinNoise is the fab's binning-measurement noise (see silicon.Lottery).
	// An ideal fab (zero) compensates leakage almost perfectly and leaves
	// little to rank; the paper's observable 14% spread implies substantial
	// miss-binning.
	BinNoise float64
	// IdleBias is the backend's correction for the idle-leakage floor: an
	// idle die asymptotes at ambient *plus* its idle dissipation times the
	// body's thermal resistance, so raw extrapolations run warm by a
	// degree or two. Zero means no correction.
	IdleBias float64
	// Seed drives everything.
	Seed int64
	// Quick shortens the per-device benchmark.
	Quick bool
}

// DefaultStudyConfig returns a plausible worldwide Nexus 5 study.
func DefaultStudyConfig() StudyConfig {
	return StudyConfig{
		ModelName:  "Nexus 5",
		Population: 40,
		IdleBias:   1.5,
		AmbientLo:  12,
		AmbientHi:  38,
		AcceptLo:   20,
		AcceptHi:   30,
		Sigma:      0.55,
		BinNoise:   0.35,
		Seed:       1,
		Quick:      true,
	}
}

// Validate checks the configuration.
func (c StudyConfig) Validate() error {
	if c.Population <= 0 {
		return fmt.Errorf("crowd: population %d", c.Population)
	}
	if c.AmbientHi <= c.AmbientLo {
		return fmt.Errorf("crowd: ambient window [%v, %v] empty", c.AmbientLo, c.AmbientHi)
	}
	if c.AcceptHi <= c.AcceptLo {
		return fmt.Errorf("crowd: acceptance window [%v, %v] empty", c.AcceptLo, c.AcceptHi)
	}
	if c.Sigma < 0 {
		return fmt.Errorf("crowd: negative sigma %v", c.Sigma)
	}
	if _, err := soc.ModelByName(c.ModelName); err != nil {
		return err
	}
	return nil
}

// Result is the backend's view after collection, filtering and ranking.
type Result struct {
	// Submissions holds every upload, accepted or not, in submission order.
	Submissions []Submission
	// Accepted counts the survivors.
	Accepted int
	// EstimationMAE is the mean absolute error of the ambient estimator
	// over submissions where estimation succeeded, in °C.
	EstimationMAE float64
	// RankCorrelation is Kendall's τ between true leakage and the accepted
	// submissions' ambient-normalized scores — silicon quality should
	// predict the corrected score, so τ should be clearly negative.
	RankCorrelation float64
	// AmbientSlope is the fitted score-per-°C slope used for normalization
	// (negative: hotter places score lower).
	AmbientSlope float64
	// Bins is the cluster assignment over accepted scores.
	Bins cluster.Assignment
	// BinCount is the discovered bin count.
	BinCount int
}

// Run executes the study.
func Run(cfg StudyConfig) (Result, error) {
	if err := cfg.Validate(); err != nil {
		return Result{}, err
	}
	model, err := soc.ModelByName(cfg.ModelName)
	if err != nil {
		return Result{}, err
	}
	src := sim.NewSource(cfg.Seed, "crowd-study")
	lottery := silicon.Lottery{Sigma: cfg.Sigma, Bins: model.SoC.Bins, BinNoise: cfg.BinNoise}
	corners, err := lottery.Draw(src, cfg.Population)
	if err != nil {
		return Result{}, err
	}

	var out Result
	for i, corner := range corners {
		amb := units.Celsius(src.Uniform(float64(cfg.AmbientLo), float64(cfg.AmbientHi)))
		w := WildDevice{
			Unit:    fleet.Unit{Name: fmt.Sprintf("wild-%03d", i), ModelName: model.Name, Corner: corner},
			Ambient: amb,
			Seed:    cfg.Seed*1000 + int64(i),
			Quick:   cfg.Quick,
		}
		sub, err := w.Benchmark()
		if err != nil {
			return Result{}, fmt.Errorf("crowd: device %d: %w", i, err)
		}
		out.Submissions = append(out.Submissions, sub)
	}

	// Backend pass 1: estimate ambients and filter — the same per-submission
	// Policy path a streaming backend applies to each upload.
	policy := cfg.Policy()
	var absErr []float64
	var accIdx []int
	var accScores, accAmbs []float64
	for i := range out.Submissions {
		s := &out.Submissions[i]
		est, accepted, err := policy.Evaluate(s.CooldownReadings)
		if err != nil {
			s.Accepted = false
			continue
		}
		s.EstimatedAmbient = est
		absErr = append(absErr, math.Abs(est.Delta(s.trueAmbient)))
		if accepted {
			s.Accepted = true
			out.Accepted++
			accIdx = append(accIdx, i)
			accScores = append(accScores, s.Score)
			accAmbs = append(accAmbs, float64(est))
		}
	}
	out.EstimationMAE = stats.Mean(absErr)

	// Backend pass 2: normalize scores to the 26 °C reference with the
	// slope fitted across accepted submissions — ambient is the dominant
	// confounder even inside the acceptance window.
	var normScores, accLeaks []float64
	if len(accIdx) >= 3 {
		_, slope := stats.LinearFit(accAmbs, accScores)
		out.AmbientSlope = slope
		for j, i := range accIdx {
			s := &out.Submissions[i]
			s.NormalizedScore = s.Score - slope*(float64(s.EstimatedAmbient)-26)
			normScores = append(normScores, s.NormalizedScore)
			accLeaks = append(accLeaks, s.trueLeakage)
			_ = j
		}
	} else {
		for _, i := range accIdx {
			s := &out.Submissions[i]
			s.NormalizedScore = s.Score
			normScores = append(normScores, s.NormalizedScore)
			accLeaks = append(accLeaks, s.trueLeakage)
		}
	}
	if len(normScores) >= 2 {
		out.RankCorrelation = kendallTau(accLeaks, normScores)
	}
	if len(normScores) >= 4 {
		k, err := cluster.ChooseK(normScores, 5)
		if err != nil {
			return Result{}, err
		}
		asg, err := cluster.KMeans1D(normScores, k)
		if err != nil {
			return Result{}, err
		}
		out.Bins = asg
		out.BinCount = k
	}
	return out, nil
}

// kendallTau computes Kendall's rank correlation between xs and ys.
func kendallTau(xs, ys []float64) float64 {
	n := len(xs)
	if n < 2 {
		return 0
	}
	var concordant, discordant int
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			dx := xs[i] - xs[j]
			dy := ys[i] - ys[j]
			switch {
			case dx*dy > 0:
				concordant++
			case dx*dy < 0:
				discordant++
			}
		}
	}
	total := n * (n - 1) / 2
	if total == 0 {
		return 0
	}
	return float64(concordant-discordant) / float64(total)
}

// Ranking returns the accepted submissions sorted best-first.
func (r Result) Ranking() []Submission {
	var acc []Submission
	for _, s := range r.Submissions {
		if s.Accepted {
			acc = append(acc, s)
		}
	}
	sort.Slice(acc, func(i, j int) bool { return acc[i].NormalizedScore > acc[j].NormalizedScore })
	return acc
}
