package crowd

import (
	"math"
	"testing"
	"time"

	"accubench/internal/accubench"
	"accubench/internal/units"
)

// synthDecay builds a synthetic cooldown trace decaying from start toward
// amb with the given per-poll retention factor q.
func synthDecay(start, amb float64, q float64, polls int) []accubench.CooldownSample {
	out := make([]accubench.CooldownSample, polls)
	delta := start - amb
	for i := range out {
		out[i] = accubench.CooldownSample{
			At:      time.Duration(i+1) * 5 * time.Second,
			Reading: units.Celsius(amb + delta*math.Pow(q, float64(i+1))),
		}
	}
	return out
}

func TestEstimateAmbientExactGeometricDecay(t *testing.T) {
	for _, amb := range []float64{12, 26, 38} {
		readings := synthDecay(80, amb, 0.93, 30)
		got, err := EstimateAmbient(readings)
		if err != nil {
			t.Fatalf("amb %v: %v", amb, err)
		}
		if math.Abs(got.Delta(units.Celsius(amb))) > 0.01 {
			t.Errorf("EstimateAmbient = %v, want %v (exact for geometric decay)", got, amb)
		}
	}
}

func TestEstimateAmbientErrors(t *testing.T) {
	if _, err := EstimateAmbient(nil); err == nil {
		t.Error("empty trace accepted")
	}
	if _, err := EstimateAmbient(synthDecay(80, 26, 0.9, 5)); err == nil {
		t.Error("short trace accepted")
	}
	// Perfectly flat trace: no decay to extrapolate.
	flat := make([]accubench.CooldownSample, 12)
	for i := range flat {
		flat[i] = accubench.CooldownSample{At: time.Duration(i) * 5 * time.Second, Reading: 26}
	}
	if _, err := EstimateAmbient(flat); err == nil {
		t.Error("flat trace accepted")
	}
}

func TestStudyConfigValidate(t *testing.T) {
	good := DefaultStudyConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("default config rejected: %v", err)
	}
	muts := []func(*StudyConfig){
		func(c *StudyConfig) { c.Population = 0 },
		func(c *StudyConfig) { c.AmbientHi = c.AmbientLo },
		func(c *StudyConfig) { c.AcceptHi = c.AcceptLo },
		func(c *StudyConfig) { c.Sigma = -1 },
		func(c *StudyConfig) { c.ModelName = "iPhone" },
	}
	for i, mut := range muts {
		c := DefaultStudyConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d accepted", i)
		}
	}
}

func TestKendallTau(t *testing.T) {
	// Perfectly concordant.
	if got := kendallTau([]float64{1, 2, 3}, []float64{10, 20, 30}); got != 1 {
		t.Errorf("concordant τ = %v", got)
	}
	// Perfectly discordant.
	if got := kendallTau([]float64{1, 2, 3}, []float64{30, 20, 10}); got != -1 {
		t.Errorf("discordant τ = %v", got)
	}
	// Ties contribute nothing.
	if got := kendallTau([]float64{1, 1}, []float64{2, 3}); got != 0 {
		t.Errorf("tied τ = %v", got)
	}
	if got := kendallTau([]float64{1}, []float64{1}); got != 0 {
		t.Errorf("singleton τ = %v", got)
	}
}

func TestStudyEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("population study")
	}
	cfg := DefaultStudyConfig()
	cfg.Population = 36
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Submissions) != 36 {
		t.Fatalf("submissions = %d", len(res.Submissions))
	}

	// The ambient estimator must work: the paper calls its preliminary
	// results "encouraging". Demand a small mean absolute error.
	if res.EstimationMAE <= 0 || res.EstimationMAE > 3 {
		t.Errorf("ambient estimation MAE = %.2f°C, want (0, 3]", res.EstimationMAE)
	}

	// The filters must reject the extreme-climate submissions: with true
	// ambients uniform on [12,38] and a [20,30] window, a meaningful share
	// must fall on each side.
	if res.Accepted == 0 || res.Accepted == len(res.Submissions) {
		t.Errorf("accepted %d of %d — filters did nothing", res.Accepted, len(res.Submissions))
	}

	// Silicon quality must predict the accepted ranking: leakier chips
	// score lower → clearly negative Kendall τ. (Voltage binning partially
	// equalizes the population and per-device noise is real, so the
	// correlation is moderate, not perfect — the paper's own §VI lists
	// exactly these obstacles.)
	if res.RankCorrelation > -0.2 {
		t.Errorf("rank correlation τ = %.2f, want clearly negative", res.RankCorrelation)
	}

	// Filtered rejections really were out-of-window climates.
	for _, s := range res.Submissions {
		if !s.Accepted && s.EstimatedAmbient != 0 {
			if s.EstimatedAmbient >= cfg.AcceptLo && s.EstimatedAmbient <= cfg.AcceptHi {
				t.Errorf("%s rejected but estimate %v is inside the window", s.Device, s.EstimatedAmbient)
			}
		}
	}

	// Ranking is sorted best-first and only contains accepted entries.
	rk := res.Ranking()
	if len(rk) != res.Accepted {
		t.Fatalf("ranking %d entries, accepted %d", len(rk), res.Accepted)
	}
	for i := 1; i < len(rk); i++ {
		if rk[i].NormalizedScore > rk[i-1].NormalizedScore {
			t.Error("ranking not sorted")
		}
	}
}

func TestStudyDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("two studies")
	}
	cfg := DefaultStudyConfig()
	cfg.Population = 6
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Submissions {
		if a.Submissions[i].Score != b.Submissions[i].Score {
			t.Fatalf("submission %d differs across identical runs", i)
		}
	}
}
