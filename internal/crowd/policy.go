package crowd

import (
	"fmt"

	"accubench/internal/accubench"
	"accubench/internal/units"
)

// Policy is the backend's per-submission acceptance policy — the "strict
// filters" of §VI factored out of the batch Study so a streaming backend
// can apply them one upload at a time.
type Policy struct {
	// AcceptLo and AcceptHi bound the filter window on the *estimated*
	// ambient; submissions outside are rejected.
	AcceptLo, AcceptHi units.Celsius
	// IdleBias is the correction for the idle-leakage floor: an idle die
	// asymptotes at ambient plus its idle dissipation times the body's
	// thermal resistance, so raw extrapolations run warm by a degree or
	// two. Zero means no correction.
	IdleBias float64
}

// DefaultPolicy returns the acceptance policy of the default study: a
// [20 °C, 30 °C] window with the 1.5 °C idle-floor correction.
func DefaultPolicy() Policy {
	c := DefaultStudyConfig()
	return Policy{AcceptLo: c.AcceptLo, AcceptHi: c.AcceptHi, IdleBias: c.IdleBias}
}

// Policy extracts the study's acceptance policy.
func (c StudyConfig) Policy() Policy {
	return Policy{AcceptLo: c.AcceptLo, AcceptHi: c.AcceptHi, IdleBias: c.IdleBias}
}

// Validate checks the policy.
func (p Policy) Validate() error {
	if p.AcceptHi <= p.AcceptLo {
		return fmt.Errorf("crowd: acceptance window [%v, %v] empty", p.AcceptLo, p.AcceptHi)
	}
	return nil
}

// EstimateAmbient extrapolates the trace's ambient asymptote and applies
// the policy's idle-floor correction.
func (p Policy) EstimateAmbient(readings []accubench.CooldownSample) (units.Celsius, error) {
	est, err := EstimateAmbient(readings)
	if err != nil {
		return 0, err
	}
	return est - units.Celsius(p.IdleBias), nil
}

// Accept reports whether an estimated ambient falls inside the window.
func (p Policy) Accept(est units.Celsius) bool {
	return est >= p.AcceptLo && est <= p.AcceptHi
}

// Evaluate runs the full per-submission path: estimate the ambient from
// the cooldown trace, then filter. A non-nil error means the trace was
// unusable (too short, too flat, implausible) — such submissions are
// rejected without an estimate.
func (p Policy) Evaluate(readings []accubench.CooldownSample) (est units.Celsius, accepted bool, err error) {
	est, err = p.EstimateAmbient(readings)
	if err != nil {
		return 0, false, err
	}
	return est, p.Accept(est), nil
}
