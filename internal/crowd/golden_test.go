package crowd_test

import (
	"testing"

	"accubench/internal/crowd"
	"accubench/internal/testkit"
)

// TestGoldenStudyQuick locks the full crowd pipeline — wild fleet
// simulation, ambient extrapolation, filtering, normalization, binning —
// byte-for-byte. The per-submission verdicts make a drifted estimator or
// filter immediately visible in the diff.
func TestGoldenStudyQuick(t *testing.T) {
	cfg := crowd.DefaultStudyConfig()
	cfg.Population = 24
	cfg.Seed = 11
	res, err := crowd.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	type verdict struct {
		Device          string  `json:"device"`
		Score           float64 `json:"score"`
		EstimatedC      float64 `json:"estimated_ambient_c"`
		TrueAmbientC    float64 `json:"true_ambient_c"`
		NormalizedScore float64 `json:"normalized_score"`
		Accepted        bool    `json:"accepted"`
	}
	snap := struct {
		Accepted        int       `json:"accepted"`
		EstimationMAE   float64   `json:"estimation_mae_c"`
		RankCorrelation float64   `json:"rank_correlation"`
		AmbientSlope    float64   `json:"ambient_slope_per_c"`
		BinCount        int       `json:"bin_count"`
		Verdicts        []verdict `json:"verdicts"`
	}{
		Accepted:        res.Accepted,
		EstimationMAE:   res.EstimationMAE,
		RankCorrelation: res.RankCorrelation,
		AmbientSlope:    res.AmbientSlope,
		BinCount:        res.BinCount,
	}
	for _, s := range res.Submissions {
		snap.Verdicts = append(snap.Verdicts, verdict{
			Device:          s.Device,
			Score:           s.Score,
			EstimatedC:      float64(s.EstimatedAmbient),
			TrueAmbientC:    float64(s.TrueAmbient()),
			NormalizedScore: s.NormalizedScore,
			Accepted:        s.Accepted,
		})
	}
	testkit.GoldenJSON(t, "study_quick", snap)
}
