package stats

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"testing"
)

func TestSketchObserveUnobserveExact(t *testing.T) {
	s := NewBinSketch()
	s.Observe(3.2, 24.0)
	s.Observe(3.2, 24.0)
	s.Observe(4.1, 27.5)
	if got := s.Accepted(); got != 3 {
		t.Fatalf("Accepted = %d, want 3", got)
	}
	s.Unobserve(3.2, 24.0)
	if got := s.Accepted(); got != 2 {
		t.Fatalf("Accepted after one retract = %d, want 2", got)
	}
	s.Unobserve(3.2, 24.0)
	s.Unobserve(4.1, 27.5)
	if got := s.Accepted(); got != 0 {
		t.Fatalf("Accepted after full retract = %d, want 0", got)
	}
	if got := s.Cells(); got != 0 {
		t.Fatalf("Cells after full retract = %d, want 0 (zero cells must be deleted)", got)
	}
	empty := NewBinSketch()
	if s.Digest() != empty.Digest() {
		t.Fatalf("fully retracted sketch digest differs from empty sketch")
	}
}

func TestSketchTransientNegative(t *testing.T) {
	// Removal may race ahead of its paired addition under concurrent
	// stripe application; the sketch must tolerate the intermediate
	// negative and cancel exactly once the addition lands.
	s := NewBinSketch()
	s.Unobserve(3.2, 24.0)
	if got := s.Accepted(); got != -1 {
		t.Fatalf("Accepted mid-race = %d, want -1", got)
	}
	if pts := s.Points(); len(pts) != 0 {
		t.Fatalf("Points must skip negative cells, got %v", pts)
	}
	s.Observe(3.2, 24.0)
	if got, cells := s.Accepted(), s.Cells(); got != 0 || cells != 0 {
		t.Fatalf("after cancel: Accepted=%d Cells=%d, want 0,0", got, cells)
	}
}

// TestSketchOrderAndMergeIndependence is the property pin behind the
// cluster story: any insertion order, any shard partitioning and any
// merge grouping of the same observation multiset must produce
// bit-identical canonical encodings and digests.
func TestSketchOrderAndMergeIndependence(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	type obs struct{ score, amb float64 }
	var all []obs
	for i := 0; i < 500; i++ {
		all = append(all, obs{
			score: 2 + rng.Float64()*3,
			amb:   20 + rng.Float64()*10,
		})
	}

	build := func(order []int, shards int) *BinSketch {
		parts := make([]*BinSketch, shards)
		for i := range parts {
			parts[i] = NewBinSketch()
		}
		for i, idx := range order {
			parts[i%shards].Observe(all[idx].score, all[idx].amb)
			parts[i%shards].NoteRecord()
		}
		out := NewBinSketch()
		for _, p := range parts {
			out.Merge(p)
		}
		return out
	}

	fwd := make([]int, len(all))
	for i := range fwd {
		fwd[i] = i
	}
	rev := make([]int, len(all))
	for i := range rev {
		rev[i] = len(all) - 1 - i
	}
	shuf := append([]int(nil), fwd...)
	rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })

	ref := build(fwd, 1)
	refEnc := ref.AppendBinary(nil)
	for _, tc := range []struct {
		name   string
		order  []int
		shards int
	}{
		{"reverse-1shard", rev, 1},
		{"shuffled-1shard", shuf, 1},
		{"forward-7shards", fwd, 7},
		{"shuffled-16shards", shuf, 16},
	} {
		got := build(tc.order, tc.shards)
		if got.Digest() != ref.Digest() {
			t.Errorf("%s: digest %#x != reference %#x", tc.name, got.Digest(), ref.Digest())
		}
		if enc := got.AppendBinary(nil); !bytes.Equal(enc, refEnc) {
			t.Errorf("%s: canonical encoding differs from reference", tc.name)
		}
	}

	// Removal commutes too: retracting half the observations after the
	// fact equals never observing them.
	half := NewBinSketch()
	for i, o := range all {
		half.Observe(o.score, o.amb)
		half.NoteRecord()
		if i%2 == 1 {
			half.Unobserve(o.score, o.amb)
		}
	}
	direct := NewBinSketch()
	for i, o := range all {
		direct.NoteRecord()
		if i%2 == 0 {
			direct.Observe(o.score, o.amb)
		}
	}
	if half.Digest() != direct.Digest() {
		t.Fatalf("retract-after digest %#x != never-observed digest %#x", half.Digest(), direct.Digest())
	}
}

func TestSketchQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	s := NewBinSketch()
	var vals []float64
	for i := 0; i < 20000; i++ {
		v := math.Exp(rng.NormFloat64()*0.3 + 1.2) // lognormal, strictly positive
		vals = append(vals, v)
		s.Observe(v, 25)
	}
	sort.Float64s(vals)
	for _, p := range []float64{0.01, 0.25, 0.5, 0.75, 0.99} {
		idx := int(math.Ceil(p*float64(len(vals)))) - 1
		if idx < 0 {
			idx = 0
		}
		want := vals[idx]
		got := s.Quantile(p)
		if rel := math.Abs(got-want) / want; rel > 3*SketchRelAcc {
			t.Errorf("Quantile(%g) = %g, want %g (rel err %g > %g)", p, got, want, rel, 3*SketchRelAcc)
		}
	}
	if got := NewBinSketch().Quantile(0.5); got != 0 {
		t.Errorf("empty sketch Quantile = %g, want 0", got)
	}
}

func TestSketchAmbientFit(t *testing.T) {
	// Synthetic population with a known thermal slope: score = base +
	// slope*(amb-26) plus per-device lottery noise.
	rng := rand.New(rand.NewSource(12))
	const slope = -0.04
	s := NewBinSketch()
	for i := 0; i < 5000; i++ {
		amb := 20 + rng.Float64()*12
		score := 3.5 + slope*(amb-26) + rng.NormFloat64()*0.01
		s.Observe(score, amb)
	}
	got, ok := s.AmbientFit()
	if !ok {
		t.Fatalf("AmbientFit not ok on identifiable population")
	}
	if math.Abs(got-slope) > 0.004 {
		t.Errorf("AmbientFit slope = %g, want ~%g", got, slope)
	}

	// Gate: too few points.
	tiny := NewBinSketch()
	tiny.Observe(3.0, 20)
	tiny.Observe(3.1, 30)
	if _, ok := tiny.AmbientFit(); ok {
		t.Errorf("AmbientFit ok with 2 points; want gated")
	}
	// Gate: no ambient spread.
	flat := NewBinSketch()
	for i := 0; i < 10; i++ {
		flat.Observe(3.0+float64(i)*0.01, 25)
	}
	if _, ok := flat.AmbientFit(); ok {
		t.Errorf("AmbientFit ok with zero ambient spread; want gated")
	}
}

func TestSketchCodecRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	s := NewBinSketch()
	for i := 0; i < 1000; i++ {
		s.Observe(1+rng.Float64()*9, 15+rng.Float64()*20)
		s.NoteRecord()
	}
	s.NoteRecord() // a rejected record: counted, not observed
	enc := s.AppendBinary(nil)
	dec, err := DecodeBinSketch(enc)
	if err != nil {
		t.Fatalf("DecodeBinSketch: %v", err)
	}
	if dec.Digest() != s.Digest() {
		t.Fatalf("round-trip digest mismatch")
	}
	if dec.Records() != s.Records() || dec.Accepted() != s.Accepted() {
		t.Fatalf("round-trip tallies: records %d/%d accepted %d/%d",
			dec.Records(), s.Records(), dec.Accepted(), s.Accepted())
	}
	if re := dec.AppendBinary(nil); !bytes.Equal(re, enc) {
		t.Fatalf("re-encoding differs from original encoding")
	}

	// A sketch carrying a transient negative must round-trip too (the
	// codec is also the snapshot/digest carrier mid-race).
	neg := NewBinSketch()
	neg.Unobserve(3.0, 25)
	neg.Observe(4.0, 25)
	encNeg := neg.AppendBinary(nil)
	decNeg, err := DecodeBinSketch(encNeg)
	if err != nil {
		t.Fatalf("DecodeBinSketch(negative cell): %v", err)
	}
	if decNeg.Digest() != neg.Digest() || decNeg.Accepted() != 0 {
		t.Fatalf("negative-cell round trip broken")
	}

	empty := NewBinSketch().AppendBinary(nil)
	if dec, err := DecodeBinSketch(empty); err != nil || dec.Cells() != 0 {
		t.Fatalf("empty sketch round trip: %v", err)
	}
}

func TestSketchDecodeRejectsCorruption(t *testing.T) {
	s := NewBinSketch()
	s.Observe(3.0, 25)
	s.Observe(4.0, 22)
	s.NoteRecord()
	enc := s.AppendBinary(nil)

	cases := map[string][]byte{
		"empty":          {},
		"bad version":    append([]byte{99}, enc[1:]...),
		"truncated":      enc[:len(enc)-1],
		"trailing bytes": append(append([]byte{}, enc...), 0),
		"huge cell count": func() []byte {
			b := []byte{sketchVersion}
			b = appendUvarint(b, 0)
			b = appendUvarint(b, MaxSketchCells+1)
			return b
		}(),
		"cells beyond buffer": func() []byte {
			b := []byte{sketchVersion}
			b = appendUvarint(b, 0)
			b = appendUvarint(b, 1000)
			return append(b, 1, 2)
		}(),
		"duplicate key": func() []byte {
			b := []byte{sketchVersion}
			b = appendUvarint(b, 0)
			b = appendUvarint(b, 2)
			b = appendUvarint(b, 7)
			b = appendZigzag(b, 1)
			b = appendUvarint(b, 0) // zero delta = same key again
			b = appendZigzag(b, 1)
			return b
		}(),
		"zero count": func() []byte {
			b := []byte{sketchVersion}
			b = appendUvarint(b, 0)
			b = appendUvarint(b, 1)
			b = appendUvarint(b, 7)
			b = appendZigzag(b, 0)
			return b
		}(),
		"key overflow": func() []byte {
			b := []byte{sketchVersion}
			b = appendUvarint(b, 0)
			b = appendUvarint(b, 2)
			b = appendUvarint(b, math.MaxUint64)
			b = appendZigzag(b, 1)
			b = appendUvarint(b, 1)
			b = appendZigzag(b, 1)
			return b
		}(),
	}
	for name, buf := range cases {
		if _, err := DecodeBinSketch(buf); err == nil {
			t.Errorf("%s: decode accepted corrupt input", name)
		}
	}
}

// FuzzSketchDecode hammers the decoder with arbitrary bytes: it must
// never panic, and anything it accepts must re-encode canonically to a
// buffer that decodes to the same digest.
func FuzzSketchDecode(f *testing.F) {
	s := NewBinSketch()
	for i := 0; i < 50; i++ {
		s.Observe(2+float64(i)*0.1, 20+float64(i%8))
		s.NoteRecord()
	}
	f.Add(s.AppendBinary(nil))
	f.Add(NewBinSketch().AppendBinary(nil))
	f.Add([]byte{})
	f.Add([]byte{sketchVersion, 0, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		dec, err := DecodeBinSketch(data)
		if err != nil {
			return
		}
		re := dec.AppendBinary(nil)
		dec2, err := DecodeBinSketch(re)
		if err != nil {
			t.Fatalf("re-encode of accepted input failed to decode: %v", err)
		}
		if dec2.Digest() != dec.Digest() {
			t.Fatalf("re-encode round trip changed digest")
		}
	})
}
