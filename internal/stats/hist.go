package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram bins samples over a fixed range. The paper's Figures 11 and 12
// present frequency and temperature *distributions* over time; Histogram is
// the data structure those experiments populate.
type Histogram struct {
	lo, hi float64
	counts []int
	total  int
	under  int // samples below lo
	over   int // samples at or above hi
}

// NewHistogram creates a histogram with the given number of equal-width bins
// covering [lo, hi). It panics on a non-positive bin count or an empty range.
func NewHistogram(lo, hi float64, bins int) *Histogram {
	if bins <= 0 {
		panic(fmt.Sprintf("stats: histogram with %d bins", bins))
	}
	if !(lo < hi) {
		panic(fmt.Sprintf("stats: histogram range [%v,%v) is empty", lo, hi))
	}
	return &Histogram{lo: lo, hi: hi, counts: make([]int, bins)}
}

// Add records one sample. Samples outside [lo, hi) are tallied in under/over
// overflow bins rather than dropped, so totals always balance.
func (h *Histogram) Add(x float64) {
	h.total++
	switch {
	case x < h.lo:
		h.under++
	case x >= h.hi:
		h.over++
	default:
		width := (h.hi - h.lo) / float64(len(h.counts))
		idx := int((x - h.lo) / width)
		if idx == len(h.counts) { // guard against float rounding at the top edge
			idx--
		}
		h.counts[idx]++
	}
}

// Total returns the number of samples recorded, including overflow.
func (h *Histogram) Total() int { return h.total }

// Bins returns, per bin, the lower edge and the fraction of all samples that
// landed in the bin.
func (h *Histogram) Bins() []HistBin {
	width := (h.hi - h.lo) / float64(len(h.counts))
	out := make([]HistBin, len(h.counts))
	for i, c := range h.counts {
		frac := 0.0
		if h.total > 0 {
			frac = float64(c) / float64(h.total)
		}
		out[i] = HistBin{Lo: h.lo + float64(i)*width, Hi: h.lo + float64(i+1)*width, Count: c, Frac: frac}
	}
	return out
}

// OutOfRange returns the counts of samples below and above the histogram
// range.
func (h *Histogram) OutOfRange() (under, over int) { return h.under, h.over }

// HistBin is one histogram bucket.
type HistBin struct {
	Lo, Hi float64
	Count  int
	Frac   float64
}

// WeightedMean returns the mean of samples as estimated from bin midpoints.
//
// Out-of-range samples are excluded entirely: under- and over-range
// counts contribute to neither the numerator nor the denominator, so
// the result is the estimated mean of the in-range population only —
// not of everything Observe saw. A histogram whose samples all landed
// out of range has no in-range population and returns 0, not NaN.
// Callers needing the overflow mass must read it from Bins' under/over
// entries; this contract is pinned by TestWeightedMeanOutOfRange.
func (h *Histogram) WeightedMean() float64 {
	in := h.total - h.under - h.over
	if in == 0 {
		return 0
	}
	width := (h.hi - h.lo) / float64(len(h.counts))
	var sum float64
	for i, c := range h.counts {
		mid := h.lo + (float64(i)+0.5)*width
		sum += mid * float64(c)
	}
	return sum / float64(in)
}

// LinearFit fits y = a + b·x by least squares and returns the intercept a and
// slope b. It panics if xs and ys differ in length or have fewer than two
// points, or if all xs are identical (vertical line).
func LinearFit(xs, ys []float64) (a, b float64) {
	if len(xs) != len(ys) {
		panic("stats: LinearFit length mismatch")
	}
	if len(xs) < 2 {
		panic("stats: LinearFit needs at least two points")
	}
	mx, my := Mean(xs), Mean(ys)
	var sxx, sxy float64
	for i := range xs {
		dx := xs[i] - mx
		sxx += dx * dx
		sxy += dx * (ys[i] - my)
	}
	if sxx == 0 {
		panic("stats: LinearFit on vertical data")
	}
	b = sxy / sxx
	a = my - b*mx
	return a, b
}

// BootstrapCI estimates a (1-alpha) confidence interval for the mean of xs by
// resampling. draw is a deterministic uniform source in [0,1) so results are
// reproducible; iters resamples are taken. It panics on an empty sample.
func BootstrapCI(xs []float64, alpha float64, iters int, draw func() float64) (lo, hi float64) {
	if len(xs) == 0 {
		panic("stats: BootstrapCI of empty sample")
	}
	if iters <= 0 {
		iters = 1000
	}
	means := make([]float64, iters)
	for i := 0; i < iters; i++ {
		var sum float64
		for j := 0; j < len(xs); j++ {
			idx := int(draw() * float64(len(xs)))
			if idx == len(xs) {
				idx--
			}
			sum += xs[idx]
		}
		means[i] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	loIdx := int(math.Floor(alpha / 2 * float64(iters)))
	hiIdx := int(math.Ceil((1 - alpha/2) * float64(iters)))
	if hiIdx >= iters {
		hiIdx = iters - 1
	}
	return means[loIdx], means[hiIdx]
}

// WelchT computes Welch's t statistic and approximate degrees of freedom for
// two independent samples — the significance machinery behind the paper's
// "we are confident that these are real variations with our errors being
// 1.2%". It panics if either sample has fewer than two points.
func WelchT(a, b []float64) (t, df float64) {
	if len(a) < 2 || len(b) < 2 {
		panic("stats: WelchT needs at least two points per sample")
	}
	ma, mb := Mean(a), Mean(b)
	va, vb := Variance(a)/float64(len(a)), Variance(b)/float64(len(b))
	if va+vb == 0 {
		if ma == mb {
			return 0, float64(len(a) + len(b) - 2)
		}
		return math.Inf(sign(ma - mb)), float64(len(a) + len(b) - 2)
	}
	t = (ma - mb) / math.Sqrt(va+vb)
	df = (va + vb) * (va + vb) /
		(va*va/float64(len(a)-1) + vb*vb/float64(len(b)-1))
	return t, df
}

func sign(x float64) int {
	if x < 0 {
		return -1
	}
	return 1
}

// SignificantlyDifferent reports whether two samples' means differ at
// roughly the 5% level: |t| above the two-tailed critical value for the
// Welch degrees of freedom (a small lookup with conservative interpolation
// — adequate for the harness's sanity checks, not a stats library).
func SignificantlyDifferent(a, b []float64) bool {
	t, df := WelchT(a, b)
	return math.Abs(t) > tCritical95(df)
}

// tCritical95 returns the two-tailed 5% critical value of Student's t.
func tCritical95(df float64) float64 {
	table := []struct {
		df   float64
		crit float64
	}{
		{1, 12.71}, {2, 4.30}, {3, 3.18}, {4, 2.78}, {5, 2.57},
		{6, 2.45}, {7, 2.36}, {8, 2.31}, {9, 2.26}, {10, 2.23},
		{15, 2.13}, {20, 2.09}, {30, 2.04}, {60, 2.00}, {120, 1.98},
	}
	if df <= table[0].df {
		return table[0].crit
	}
	for i := 1; i < len(table); i++ {
		if df <= table[i].df {
			lo, hi := table[i-1], table[i]
			frac := (df - lo.df) / (hi.df - lo.df)
			return lo.crit + frac*(hi.crit-lo.crit)
		}
	}
	return 1.96
}
