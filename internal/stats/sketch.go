package stats

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"math"
	"sort"
)

// BinSketch is the mergeable population sketch behind the crowd backend's
// streaming binning path (docs/BINNING.md): a fixed-compression quantile
// summary of one model's accepted population, compact enough to fold on
// every GET /v1/bins instead of rescanning the corpus.
//
// The paper's §VI endgame needs, per model, the joint distribution of
// (score, estimated ambient): the ambient-slope fit normalizes scores to
// the 26 °C reference before clustering, so a 1-D sketch of scores alone
// would lose exactly the correlation the normalization consumes. The
// sketch therefore keys integer counts by a pair of deterministic cells:
//
//   - score buckets are geometric with fixed ratio sketchGamma — every
//     value inside a bucket is within SketchRelAcc (0.1%) of the bucket's
//     representative, so quantiles, centroids and the slope fit carry a
//     bounded relative error whatever the corpus size;
//   - ambient cells are linear at AmbientCellC (0.25 °C) — narrower than
//     any slope·ΔT effect the binner can resolve.
//
// Unlike a classic t-digest — whose centroids depend on insertion order,
// so two replicas that converged on the same record set could still
// serve different bins — the sketch's state is integer counts under a
// fixed cell mapping: a pure function of the multiset of observations.
// That buys three properties the cluster needs:
//
//   - order independence: any insertion order yields identical state;
//   - exact merge: merging shard or peer sketches is per-cell addition;
//   - exact removal: a device resubmitting retracts its previous
//     contribution precisely (counts decrement), so the sketch tracks
//     the latest-record-per-device population the exact binner uses,
//     not an append-only blur of history.
//
// All three are bit-exact, so converged replicas serve bit-identical
// sketch-mode bins, and Digest/AppendBinary are canonical over the
// observation multiset.
type BinSketch struct {
	// cells maps packed (ambient cell, score bucket) keys to counts.
	// Counts are signed: concurrent writers apply add/remove deltas in
	// arbitrary order, so a removal can transiently land before its
	// addition; the sum is correct once both have applied. Cells are
	// deleted the moment their count returns to zero, keeping the map —
	// and the canonical encodings — free of ghosts.
	cells map[uint64]int64
	// weight is the running Σ counts — the accepted population size.
	weight int64
	// records counts every record noted for the model, superseded and
	// rejected ones included — the bins' Submissions field.
	records int64
}

// SketchRelAcc is the score buckets' relative accuracy: every value in a
// bucket is within this fraction of the bucket representative.
const SketchRelAcc = 0.001

// AmbientCellC is the ambient quantization step, °C.
const AmbientCellC = 0.25

// sketchVersion is the codec version byte.
const sketchVersion = 1

// MaxSketchCells bounds a decoded sketch so a corrupt length can never
// become an allocation instruction. Real sketches run a few hundred to a
// few thousand cells: scores span per-model percents across ~10 buckets
// per percent, ambients span the accept window across ~4 cells per °C.
const MaxSketchCells = 1 << 20

// sketchGamma is the geometric bucket ratio (1+a)/(1-a) for a=SketchRelAcc.
var sketchGamma = (1 + SketchRelAcc) / (1 - SketchRelAcc)
var lnSketchGamma = math.Log(sketchGamma)

// ErrCorruptSketch reports a sketch encoding that cannot be trusted.
var ErrCorruptSketch = errors.New("stats: corrupt sketch encoding")

// NewBinSketch creates an empty sketch.
func NewBinSketch() *BinSketch {
	return &BinSketch{cells: make(map[uint64]int64)}
}

// scoreBucket maps a score to its geometric bucket index. Scores are
// validated positive upstream; non-finite or non-positive strays are
// clamped so the mapping stays total and deterministic.
func scoreBucket(v float64) int32 {
	if math.IsNaN(v) || v < 1e-300 {
		v = 1e-300
	} else if v > 1e300 {
		v = 1e300
	}
	return int32(math.Floor(math.Log(v) / lnSketchGamma))
}

// scoreValue returns a bucket's representative: the geometric midpoint
// of the bucket's value range.
func scoreValue(bucket int32) float64 {
	return math.Pow(sketchGamma, float64(bucket)+0.5)
}

// ambientCell maps an ambient temperature to its linear cell index.
func ambientCell(a float64) int32 {
	if math.IsNaN(a) || math.IsInf(a, 0) {
		return 0
	}
	return int32(math.Round(a / AmbientCellC))
}

// ambientValue returns a cell's representative temperature.
func ambientValue(cell int32) float64 { return float64(cell) * AmbientCellC }

// packKey packs (ambient cell, score bucket) into one map key. Unsigned
// key order sorts by ambient cell, then score bucket, both as uint32 —
// an arbitrary but fixed total order the canonical codec relies on.
func packKey(amb, score int32) uint64 {
	return uint64(uint32(amb))<<32 | uint64(uint32(score))
}

func unpackKey(k uint64) (amb, score int32) {
	return int32(uint32(k >> 32)), int32(uint32(k))
}

// NoteRecord counts one stored record for the model, whatever its
// verdict — the Submissions side of the bins.
func (s *BinSketch) NoteRecord() { s.records++ }

// Observe adds one accepted device's (score, ambient) observation.
func (s *BinSketch) Observe(score, ambient float64) { s.add(score, ambient, 1) }

// Unobserve retracts a previously observed (score, ambient) pair — the
// device's superseded record. Exact: the cell count decrements and the
// cell vanishes when it returns to zero.
func (s *BinSketch) Unobserve(score, ambient float64) { s.add(score, ambient, -1) }

func (s *BinSketch) add(score, ambient float64, n int64) {
	k := packKey(ambientCell(ambient), scoreBucket(score))
	c := s.cells[k] + n
	if c == 0 {
		delete(s.cells, k)
	} else {
		s.cells[k] = c
	}
	s.weight += n
}

// Records returns how many records were noted, superseded and rejected
// ones included.
func (s *BinSketch) Records() int64 { return s.records }

// Accepted returns the sketched population size: observations minus
// retractions.
func (s *BinSketch) Accepted() int64 { return s.weight }

// Cells returns how many non-empty cells the sketch holds — the fold
// cost of a bins read.
func (s *BinSketch) Cells() int { return len(s.cells) }

// Merge folds o into s: per-cell addition, plus the record and weight
// tallies. Merging is exact and order-independent — merging shard
// sketches in any grouping yields identical state.
func (s *BinSketch) Merge(o *BinSketch) {
	for k, v := range o.cells {
		c := s.cells[k] + v
		if c == 0 {
			delete(s.cells, k)
		} else {
			s.cells[k] = c
		}
	}
	s.weight += o.weight
	s.records += o.records
}

// Clone returns an independent copy.
func (s *BinSketch) Clone() *BinSketch {
	c := &BinSketch{
		cells:   make(map[uint64]int64, len(s.cells)),
		weight:  s.weight,
		records: s.records,
	}
	for k, v := range s.cells {
		c.cells[k] = v
	}
	return c
}

// Digest folds the sketch into one order-independent 64-bit hash: two
// sketches hold the same observation multiset (and record count) iff
// their digests match, whatever the insertion, removal or merge history.
func (s *BinSketch) Digest() uint64 {
	var d uint64
	var buf [24]byte
	for k, v := range s.cells {
		if v == 0 {
			continue
		}
		binary.LittleEndian.PutUint64(buf[0:8], k)
		binary.LittleEndian.PutUint64(buf[8:16], uint64(v))
		h := fnv.New64a()
		h.Write(buf[0:16])
		d ^= h.Sum64()
	}
	binary.LittleEndian.PutUint64(buf[16:24], uint64(s.records))
	h := fnv.New64a()
	h.Write(buf[16:24])
	return d ^ h.Sum64()
}

// SketchCell is one populated cell: the representative observation and
// how many devices share it.
type SketchCell struct {
	// Score is the score bucket's representative value.
	Score float64
	// Ambient is the ambient cell's representative temperature, °C.
	Ambient float64
	// Weight is how many current observations the cell holds.
	Weight int64
}

// Points returns the populated cells as weighted representative points,
// in canonical (ambient, score) order — the binner's clustering input.
// Cells whose count is transiently non-positive (a removal observed
// before its paired addition) are skipped.
func (s *BinSketch) Points() []SketchCell {
	keys := s.sortedKeys()
	out := make([]SketchCell, 0, len(keys))
	for _, k := range keys {
		if s.cells[k] <= 0 {
			continue
		}
		amb, sc := unpackKey(k)
		out = append(out, SketchCell{
			Score:   scoreValue(sc),
			Ambient: ambientValue(amb),
			Weight:  s.cells[k],
		})
	}
	return out
}

// sortedKeys returns the cell keys in canonical ascending order.
func (s *BinSketch) sortedKeys() []uint64 {
	keys := make([]uint64, 0, len(s.cells))
	for k := range s.cells {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// AmbientSpread returns the max-min span of populated ambient cells, °C
// — the identifiability check before the slope fit.
func (s *BinSketch) AmbientSpread() float64 {
	first := true
	var lo, hi int32
	for k, v := range s.cells {
		if v <= 0 {
			continue
		}
		amb, _ := unpackKey(k)
		if first {
			lo, hi = amb, amb
			first = false
			continue
		}
		if amb < lo {
			lo = amb
		}
		if amb > hi {
			hi = amb
		}
	}
	if first {
		return 0
	}
	return float64(hi-lo) * AmbientCellC
}

// AmbientFit fits score = a + slope·ambient by weighted least squares
// over the cell representatives — the streaming form of the exact
// binner's stats.LinearFit, carried as sufficient statistics
// (Σw, Σwx, Σwy, Σwxy, Σwx²) accumulated in canonical cell order so the
// result is deterministic. ok is false when the population is too small
// (< 3) or too ambient-uniform (spread ≤ 0.5 °C) for the slope to be
// identifiable — the same gate the exact path applies.
func (s *BinSketch) AmbientFit() (slope float64, ok bool) {
	if s.weight < 3 || s.AmbientSpread() <= 0.5 {
		return 0, false
	}
	var sw, swx, swy, swxy, swxx float64
	for _, p := range s.Points() {
		w := float64(p.Weight)
		sw += w
		swx += w * p.Ambient
		swy += w * p.Score
		swxy += w * p.Ambient * p.Score
		swxx += w * p.Ambient * p.Ambient
	}
	sxx := swxx - swx*swx/sw
	if sxx <= 0 {
		return 0, false
	}
	return (swxy - swx*swy/sw) / sxx, true
}

// Quantile estimates the p-quantile (0 <= p <= 1) of the score marginal
// from the bucket counts; the estimate is within SketchRelAcc of the
// true quantile's bucket representative. Returns 0 on an empty sketch.
func (s *BinSketch) Quantile(p float64) float64 {
	type bc struct {
		bucket int32
		count  int64
	}
	var total int64
	agg := make(map[int32]int64)
	for k, v := range s.cells {
		if v <= 0 {
			continue
		}
		_, sc := unpackKey(k)
		agg[sc] += v
		total += v
	}
	if total == 0 {
		return 0
	}
	buckets := make([]bc, 0, len(agg))
	for b, c := range agg {
		buckets = append(buckets, bc{b, c})
	}
	sort.Slice(buckets, func(i, j int) bool { return buckets[i].bucket < buckets[j].bucket })
	rank := int64(math.Ceil(p * float64(total)))
	if rank < 1 {
		rank = 1
	}
	var cum int64
	for _, b := range buckets {
		cum += b.count
		if cum >= rank {
			return scoreValue(b.bucket)
		}
	}
	return scoreValue(buckets[len(buckets)-1].bucket)
}

// AppendBinary appends the sketch's canonical binary encoding to dst and
// returns the extended slice, reusing the wire codec's idioms: a version
// byte, uvarint tallies, then the cells in ascending key order with
// delta-encoded keys and zigzag varint counts. Two sketches holding the
// same observation multiset encode to identical bytes.
func (s *BinSketch) AppendBinary(dst []byte) []byte {
	dst = append(dst, sketchVersion)
	dst = appendUvarint(dst, uint64(s.records))
	keys := s.sortedKeys()
	dst = appendUvarint(dst, uint64(len(keys)))
	var prev uint64
	for i, k := range keys {
		if i == 0 {
			dst = appendUvarint(dst, k)
		} else {
			dst = appendUvarint(dst, k-prev)
		}
		prev = k
		dst = appendZigzag(dst, s.cells[k])
	}
	return dst
}

// DecodeBinSketch decodes a sketch produced by AppendBinary. The whole
// buffer must be consumed exactly; a truncated, over-long, out-of-order
// or otherwise malformed encoding returns ErrCorruptSketch. It never
// panics, whatever the input.
func DecodeBinSketch(b []byte) (*BinSketch, error) {
	c := sketchCursor{b: b}
	if v := c.byte(); v != sketchVersion {
		if c.err == nil {
			c.err = fmt.Errorf("%w: version %d", ErrCorruptSketch, v)
		}
		return nil, c.err
	}
	records := c.uvarint()
	n := c.uvarint()
	if c.err != nil {
		return nil, c.err
	}
	if n > MaxSketchCells {
		return nil, fmt.Errorf("%w: %d cells exceeds %d", ErrCorruptSketch, n, MaxSketchCells)
	}
	// Each cell is at least 2 bytes (key varint + count varint); reject
	// counts the buffer cannot hold before allocating.
	if int(n)*2 > len(b)-c.off {
		return nil, ErrCorruptSketch
	}
	s := &BinSketch{
		cells:   make(map[uint64]int64, n),
		records: int64(records),
	}
	var key uint64
	for i := uint64(0); i < n; i++ {
		d := c.uvarint()
		if i == 0 {
			key = d
		} else {
			if d == 0 { // duplicate or out-of-order key
				return nil, ErrCorruptSketch
			}
			nk := key + d
			if nk < key { // overflow
				return nil, ErrCorruptSketch
			}
			key = nk
		}
		count := c.zigzag()
		if c.err != nil {
			return nil, c.err
		}
		if count == 0 { // empty cells are never encoded
			return nil, ErrCorruptSketch
		}
		s.cells[key] = count
		s.weight += count
	}
	if c.err != nil {
		return nil, c.err
	}
	if c.off != len(b) {
		return nil, ErrCorruptSketch
	}
	return s, nil
}

// appendUvarint appends v in unsigned varint encoding.
func appendUvarint(dst []byte, v uint64) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutUvarint(b[:], v)
	return append(dst, b[:n]...)
}

// appendZigzag appends v in zigzag varint encoding (signed counts: a
// clone can carry a transiently negative cell).
func appendZigzag(dst []byte, v int64) []byte {
	var b [binary.MaxVarintLen64]byte
	n := binary.PutVarint(b[:], v)
	return append(dst, b[:n]...)
}

// sketchCursor is a bounds-checked reader that latches its first error,
// so decode paths never panic on adversarial input.
type sketchCursor struct {
	b   []byte
	off int
	err error
}

func (c *sketchCursor) byte() byte {
	if c.err != nil {
		return 0
	}
	if c.off >= len(c.b) {
		c.err = ErrCorruptSketch
		return 0
	}
	v := c.b[c.off]
	c.off++
	return v
}

func (c *sketchCursor) uvarint() uint64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Uvarint(c.b[c.off:])
	if n <= 0 {
		c.err = ErrCorruptSketch
		return 0
	}
	c.off += n
	return v
}

func (c *sketchCursor) zigzag() int64 {
	if c.err != nil {
		return 0
	}
	v, n := binary.Varint(c.b[c.off:])
	if n <= 0 {
		c.err = ErrCorruptSketch
		return 0
	}
	c.off += n
	return v
}
