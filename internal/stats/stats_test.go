package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(t *testing.T, name string, got, want, tol float64) {
	t.Helper()
	if math.Abs(got-want) > tol {
		t.Errorf("%s = %v, want %v (±%v)", name, got, want, tol)
	}
}

func TestMean(t *testing.T) {
	approx(t, "Mean", Mean([]float64{1, 2, 3, 4}), 2.5, 1e-12)
	approx(t, "Mean empty", Mean(nil), 0, 0)
	approx(t, "Mean single", Mean([]float64{7}), 7, 0)
}

func TestVarianceStdDev(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	// Sample variance (n-1) of this classic set is 32/7.
	approx(t, "Variance", Variance(xs), 32.0/7.0, 1e-12)
	approx(t, "StdDev", StdDev(xs), math.Sqrt(32.0/7.0), 1e-12)
	approx(t, "Variance single", Variance([]float64{5}), 0, 0)
}

func TestRSD(t *testing.T) {
	// Constant data: zero RSD.
	approx(t, "RSD constant", RSD([]float64{5, 5, 5}), 0, 0)
	// Known example.
	xs := []float64{98, 100, 102}
	approx(t, "RSD", RSD(xs), StdDev(xs)/100*100, 1e-12)
	// Zero mean does not blow up.
	approx(t, "RSD zero mean", RSD([]float64{-1, 1}), 0, 0)
	// Negative mean uses absolute value.
	if RSD([]float64{-98, -100, -102}) < 0 {
		t.Error("RSD must be non-negative")
	}
}

func TestMinMax(t *testing.T) {
	xs := []float64{3, -1, 7, 2}
	approx(t, "Min", Min(xs), -1, 0)
	approx(t, "Max", Max(xs), 7, 0)
}

func TestMinEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Min(nil) did not panic")
		}
	}()
	Min(nil)
}

func TestMaxEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Max(nil) did not panic")
		}
	}()
	Max(nil)
}

func TestSpread(t *testing.T) {
	// Paper-style: best device 100, worst 86 → 14% variation.
	approx(t, "Spread", Spread([]float64{100, 86, 95}), 14, 1e-12)
	approx(t, "Spread constant", Spread([]float64{5, 5}), 0, 0)
	approx(t, "Spread empty", Spread(nil), 0, 0)
	approx(t, "Spread zero max", Spread([]float64{0, 0}), 0, 0)
}

func TestNormalize(t *testing.T) {
	out := Normalize([]float64{50, 100, 75})
	want := []float64{0.5, 1, 0.75}
	for i := range want {
		approx(t, "Normalize", out[i], want[i], 1e-12)
	}
	// All-zero input passes through.
	z := Normalize([]float64{0, 0})
	if z[0] != 0 || z[1] != 0 {
		t.Errorf("Normalize zeros = %v", z)
	}
}

func TestNormalizeDoesNotMutate(t *testing.T) {
	in := []float64{1, 2}
	Normalize(in)
	if in[0] != 1 || in[1] != 2 {
		t.Error("Normalize mutated its input")
	}
}

func TestNormalizeToFirst(t *testing.T) {
	out := NormalizeToFirst([]float64{4, 2, 8})
	want := []float64{1, 0.5, 2}
	for i := range want {
		approx(t, "NormalizeToFirst", out[i], want[i], 1e-12)
	}
}

func TestNormalizeProperty(t *testing.T) {
	f := func(raw []float64) bool {
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && x >= 0 {
				xs = append(xs, math.Mod(x, 1e6))
			}
		}
		out := Normalize(xs)
		for _, v := range out {
			if v < 0 || v > 1+1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	approx(t, "P0", Percentile(xs, 0), 1, 1e-12)
	approx(t, "P50", Percentile(xs, 50), 3, 1e-12)
	approx(t, "P100", Percentile(xs, 100), 5, 1e-12)
	approx(t, "P25", Percentile(xs, 25), 2, 1e-12)
	approx(t, "Median", Median(xs), 3, 1e-12)
	approx(t, "single", Percentile([]float64{9}, 73), 9, 0)
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{5, 1, 3}
	Percentile(xs, 50)
	if xs[0] != 5 || xs[1] != 1 || xs[2] != 3 {
		t.Error("Percentile sorted its input in place")
	}
}

func TestPercentileBoundsPanic(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Percentile(xs, 101) did not panic")
		}
	}()
	Percentile([]float64{1}, 101)
}

func TestSummarize(t *testing.T) {
	s, err := Summarize([]float64{10, 12, 11})
	if err != nil {
		t.Fatal(err)
	}
	if s.N != 3 {
		t.Errorf("N = %d", s.N)
	}
	approx(t, "Summary.Mean", s.Mean, 11, 1e-12)
	approx(t, "Summary.Min", s.Min, 10, 0)
	approx(t, "Summary.Max", s.Max, 12, 0)
	if s.String() == "" {
		t.Error("empty String()")
	}
}

func TestSummarizeEmpty(t *testing.T) {
	if _, err := Summarize(nil); err != ErrEmpty {
		t.Errorf("err = %v, want ErrEmpty", err)
	}
}

func TestSpreadInvariantUnderScaling(t *testing.T) {
	f := func(raw []float64, scale float64) bool {
		scale = math.Abs(math.Mod(scale, 100)) + 0.5
		xs := make([]float64, 0, len(raw))
		for _, x := range raw {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && x > 0 {
				xs = append(xs, math.Mod(x, 1e6)+1)
			}
		}
		if len(xs) < 2 {
			return true
		}
		scaled := make([]float64, len(xs))
		for i, x := range xs {
			scaled[i] = x * scale
		}
		return math.Abs(Spread(xs)-Spread(scaled)) < 1e-6
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
