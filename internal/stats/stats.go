// Package stats implements the descriptive statistics the paper uses to
// report its results: means with error bars, Relative Standard Deviation
// (RSD, the absolute coefficient of variation — the paper's error metric),
// normalization of results within a device model, percentiles, histograms
// and simple linear fits.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrEmpty is returned by summaries over empty samples.
var ErrEmpty = errors.New("stats: empty sample")

// Mean returns the arithmetic mean of xs. It returns 0 for an empty slice;
// callers that must distinguish use Summary.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var sum float64
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the unbiased (n-1) sample variance. Fewer than two
// samples have zero variance by convention.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	m := Mean(xs)
	var ss float64
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return ss / float64(len(xs)-1)
}

// StdDev returns the sample standard deviation.
func StdDev(xs []float64) float64 { return math.Sqrt(Variance(xs)) }

// RSD returns the Relative Standard Deviation as a percentage — the error
// metric the paper reports ("errors are represented in the form of Relative
// Standard Deviation (RSD), or the absolute value of the coefficient of
// variation"). A zero mean yields 0 to avoid a meaningless infinity.
func RSD(xs []float64) float64 {
	m := Mean(xs)
	if m == 0 {
		return 0
	}
	return math.Abs(StdDev(xs)/m) * 100
}

// Min returns the smallest element. It panics on an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Min of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the largest element. It panics on an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		panic("stats: Max of empty sample")
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Spread returns the relative spread (max-min)/max as a percentage — the
// "variation" number the paper reports per chipset (e.g. bin-0 is 14% faster
// than bin-3, so the SD-800 performance variation is 14%).
func Spread(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	mx := Max(xs)
	if mx == 0 {
		return 0
	}
	return (mx - Min(xs)) / mx * 100
}

// Normalize scales xs so its maximum is 1, the form the paper's per-SoC bar
// charts use. A zero maximum returns a copy unchanged.
func Normalize(xs []float64) []float64 {
	out := make([]float64, len(xs))
	mx := 0.0
	for _, x := range xs {
		if x > mx {
			mx = x
		}
	}
	if mx == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / mx
	}
	return out
}

// NormalizeToFirst scales xs so its first element is 1, used when the paper
// normalizes against a reference device rather than the best one.
func NormalizeToFirst(xs []float64) []float64 {
	out := make([]float64, len(xs))
	if len(xs) == 0 || xs[0] == 0 {
		copy(out, xs)
		return out
	}
	for i, x := range xs {
		out[i] = x / xs[0]
	}
	return out
}

// Percentile returns the p-th percentile (0..100) using linear interpolation
// between closest ranks. It panics on an empty sample or p outside [0,100].
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		panic("stats: Percentile of empty sample")
	}
	if p < 0 || p > 100 {
		panic(fmt.Sprintf("stats: percentile %v outside [0,100]", p))
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	rank := p / 100 * float64(len(s)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return s[lo]
	}
	frac := rank - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Median returns the 50th percentile.
func Median(xs []float64) float64 { return Percentile(xs, 50) }

// Summary bundles the descriptive statistics the paper reports for a set of
// experiment iterations.
type Summary struct {
	N      int
	Mean   float64
	StdDev float64
	RSD    float64 // percent
	Min    float64
	Max    float64
}

// Summarize computes a Summary. It returns ErrEmpty for an empty sample.
func Summarize(xs []float64) (Summary, error) {
	if len(xs) == 0 {
		return Summary{}, ErrEmpty
	}
	return Summary{
		N:      len(xs),
		Mean:   Mean(xs),
		StdDev: StdDev(xs),
		RSD:    RSD(xs),
		Min:    Min(xs),
		Max:    Max(xs),
	}, nil
}

// String renders e.g. "n=5 mean=812.40 ±1.23% [795.00,830.00]".
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.2f ±%.2f%% [%.2f,%.2f]", s.N, s.Mean, s.RSD, s.Min, s.Max)
}
