package stats

import (
	"math"
	"testing"
)

func TestHistogramBasic(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{0, 1, 2.5, 5, 9.99} {
		h.Add(x)
	}
	if h.Total() != 5 {
		t.Errorf("Total = %d", h.Total())
	}
	bins := h.Bins()
	if len(bins) != 5 {
		t.Fatalf("bins = %d", len(bins))
	}
	// Bin 0 covers [0,2): two samples (0, 1).
	if bins[0].Count != 2 {
		t.Errorf("bin0 count = %d, want 2", bins[0].Count)
	}
	if math.Abs(bins[0].Frac-0.4) > 1e-12 {
		t.Errorf("bin0 frac = %v, want 0.4", bins[0].Frac)
	}
	// Top edge 9.99 lands in last bin.
	if bins[4].Count != 1 {
		t.Errorf("bin4 count = %d, want 1", bins[4].Count)
	}
}

func TestHistogramOverflow(t *testing.T) {
	h := NewHistogram(0, 10, 2)
	h.Add(-1)
	h.Add(10) // hi edge is exclusive
	h.Add(42)
	under, over := h.OutOfRange()
	if under != 1 || over != 2 {
		t.Errorf("under,over = %d,%d; want 1,2", under, over)
	}
	if h.Total() != 3 {
		t.Errorf("Total = %d, want 3 (overflow still counted)", h.Total())
	}
}

func TestHistogramCountsBalance(t *testing.T) {
	h := NewHistogram(-5, 5, 7)
	n := 0
	for x := -10.0; x < 10; x += 0.37 {
		h.Add(x)
		n++
	}
	sum := 0
	for _, b := range h.Bins() {
		sum += b.Count
	}
	under, over := h.OutOfRange()
	if sum+under+over != n || h.Total() != n {
		t.Errorf("counts don't balance: binned=%d under=%d over=%d total=%d n=%d",
			sum, under, over, h.Total(), n)
	}
}

func TestHistogramWeightedMean(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	// All samples at 4.5 land in bin [4,5) whose midpoint is 4.5.
	for i := 0; i < 100; i++ {
		h.Add(4.5)
	}
	if got := h.WeightedMean(); math.Abs(got-4.5) > 1e-12 {
		t.Errorf("WeightedMean = %v, want 4.5", got)
	}
	empty := NewHistogram(0, 1, 2)
	if got := empty.WeightedMean(); got != 0 {
		t.Errorf("WeightedMean of empty = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero bins":   func() { NewHistogram(0, 1, 0) },
		"empty range": func() { NewHistogram(1, 1, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestLinearFit(t *testing.T) {
	// y = 3 + 2x exactly.
	xs := []float64{0, 1, 2, 3}
	ys := []float64{3, 5, 7, 9}
	a, b := LinearFit(xs, ys)
	if math.Abs(a-3) > 1e-9 || math.Abs(b-2) > 1e-9 {
		t.Errorf("fit = (%v, %v), want (3, 2)", a, b)
	}
}

func TestLinearFitNoise(t *testing.T) {
	// Slightly perturbed line still recovers approximate slope.
	xs := []float64{10, 20, 30, 40, 50}
	ys := []float64{101, 121, 138, 161, 179}
	_, b := LinearFit(xs, ys)
	if b < 1.8 || b > 2.2 {
		t.Errorf("slope = %v, want ≈2", b)
	}
}

func TestLinearFitPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"mismatch": func() { LinearFit([]float64{1}, []float64{1, 2}) },
		"short":    func() { LinearFit([]float64{1}, []float64{1}) },
		"vertical": func() { LinearFit([]float64{2, 2, 2}, []float64{1, 2, 3}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestBootstrapCI(t *testing.T) {
	xs := []float64{10, 11, 9, 10.5, 9.5, 10, 10.2, 9.8}
	// Deterministic linear-congruential draw.
	state := uint64(12345)
	draw := func() float64 {
		state = state*6364136223846793005 + 1442695040888963407
		return float64(state>>11) / float64(1<<53)
	}
	lo, hi := BootstrapCI(xs, 0.05, 500, draw)
	m := Mean(xs)
	if !(lo <= m && m <= hi) {
		t.Errorf("CI [%v,%v] does not contain the sample mean %v", lo, hi, m)
	}
	if hi-lo <= 0 {
		t.Errorf("degenerate CI [%v,%v]", lo, hi)
	}
	if hi-lo > 2 {
		t.Errorf("implausibly wide CI [%v,%v] for tight data", lo, hi)
	}
}

func TestBootstrapCIEmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("BootstrapCI(nil) did not panic")
		}
	}()
	BootstrapCI(nil, 0.05, 10, func() float64 { return 0.5 })
}

func TestWelchT(t *testing.T) {
	// Clearly different samples.
	a := []float64{100, 101, 99, 100.5, 99.5}
	b := []float64{90, 91, 89, 90.5, 89.5}
	tt, df := WelchT(a, b)
	if tt < 10 {
		t.Errorf("t = %v for well-separated samples, want large positive", tt)
	}
	if df < 2 || df > 8 {
		t.Errorf("df = %v, want within (2,8) for n=5,5", df)
	}
	if !SignificantlyDifferent(a, b) {
		t.Error("well-separated samples not significant")
	}
	// Order flips the sign.
	tneg, _ := WelchT(b, a)
	if tneg >= 0 {
		t.Errorf("reversed t = %v, want negative", tneg)
	}
}

func TestWelchTOverlappingSamples(t *testing.T) {
	a := []float64{100, 102, 98, 101, 99}
	b := []float64{100.5, 101.5, 98.5, 99.5, 100}
	if SignificantlyDifferent(a, b) {
		t.Error("overlapping samples flagged significant")
	}
}

func TestWelchTDegenerate(t *testing.T) {
	// Identical constant samples: t=0.
	tt, _ := WelchT([]float64{5, 5, 5}, []float64{5, 5, 5})
	if tt != 0 {
		t.Errorf("t = %v for identical constants", tt)
	}
	// Different constants: infinite separation.
	tt, _ = WelchT([]float64{5, 5}, []float64{6, 6})
	if !math.IsInf(tt, -1) {
		t.Errorf("t = %v for distinct constants, want -Inf", tt)
	}
}

func TestWelchTPanicsOnShortSamples(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("WelchT with 1 point did not panic")
		}
	}()
	WelchT([]float64{1}, []float64{1, 2})
}

func TestTCritical95Monotone(t *testing.T) {
	prev := tCritical95(1)
	for _, df := range []float64{2, 3, 5, 8, 12, 25, 50, 100, 500} {
		cur := tCritical95(df)
		if cur > prev {
			t.Errorf("critical value rose at df=%v: %v after %v", df, cur, prev)
		}
		prev = cur
	}
	if got := tCritical95(1e6); got != 1.96 {
		t.Errorf("asymptotic critical = %v, want 1.96", got)
	}
}

// TestWeightedMeanOutOfRange pins WeightedMean's overflow contract:
// under- and over-range samples are excluded from both the numerator
// and the denominator — the result is the midpoint-estimated mean of
// the in-range population only — and an all-out-of-range histogram
// returns 0, not NaN.
func TestWeightedMeanOutOfRange(t *testing.T) {
	h := NewHistogram(0, 10, 10)
	h.Add(2.5) // bin [2,3), midpoint 2.5
	h.Add(7.5) // bin [7,8), midpoint 7.5
	if got, want := h.WeightedMean(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("in-range WeightedMean = %g, want %g", got, want)
	}
	// Heavy overflow on both sides must not move the estimate: the
	// out-of-range samples are not averaged in at any midpoint, and they
	// do not inflate the denominator.
	for i := 0; i < 100; i++ {
		h.Add(-50)
		h.Add(1e9)
	}
	if got, want := h.WeightedMean(), 5.0; math.Abs(got-want) > 1e-12 {
		t.Fatalf("WeightedMean with overflow = %g, want %g (out-of-range samples must be excluded)", got, want)
	}
	if got, want := h.Total(), 202; got != want {
		t.Fatalf("Total = %d, want %d (overflow still counts toward totals)", got, want)
	}

	// All samples out of range: no in-range population, defined as 0.
	empty := NewHistogram(0, 1, 4)
	empty.Add(-1)
	empty.Add(2)
	if got := empty.WeightedMean(); got != 0 {
		t.Fatalf("all-out-of-range WeightedMean = %g, want 0", got)
	}
}
