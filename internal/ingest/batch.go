package ingest

import (
	"context"
	"time"

	"accubench/internal/store"
)

// BatchCommitter is the group-commit seam SubmitBatch prefers when the
// configured WAL Committer also implements it: the whole batch becomes
// one log append (one fsync) and one store lock pass per shard.
// internal/wal.Persister is the production implementation; a Committer
// without it falls back to per-record commits, keeping SubmitBatch
// correct against any durability layer.
type BatchCommitter interface {
	CommitBatch(recs []*store.Record) error
}

// BatchResult reports what one SubmitBatch call did with its
// submissions. Records + Invalid + Failed always accounts for every
// submission passed in.
type BatchResult struct {
	// Records are the committed records in submission order, sequence
	// numbers assigned. Both verdicts appear here — a rejected
	// submission is still stored (and durable), like the JSON path.
	Records []store.Record
	// Invalid counts submissions dropped at validation — malformed
	// payloads a retry can never fix.
	Invalid int
	// Failed counts submissions dropped because the batch's commit
	// failed — retryable.
	Failed int
}

// SubmitBatch runs a whole batch of already-decoded submissions through
// the evaluate and store stages inline on the caller's goroutine — the
// binary streaming ingest path. Unlike Submit, nothing is enqueued: the
// stream handler is its own backpressure (it reads the next frame only
// after this returns), so the batch skips the channel hops and commits
// through one WAL group append and one store lock pass per shard when
// the configured Committer supports batching.
//
// The per-stage counters advance exactly as if each submission had
// flowed through the staged pipeline, so the conservation laws
// (received = decode_errors + aborted + stored + wal_failed, stored =
// accepted + rejected = wal_appended) hold across either path.
func (p *Pipeline) SubmitBatch(ctx context.Context, subs []Submission) (BatchResult, error) {
	var res BatchResult
	if len(subs) == 0 {
		return res, nil
	}
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return res, ErrClosed
	}
	p.submitters.Add(1)
	p.mu.Unlock()
	defer p.submitters.Done()

	p.ctr.received.Add(uint64(len(subs)))

	// Decode stage: the frames arrive pre-parsed, so this is just
	// validation; malformed entries drop here like JSON decode errors.
	t0 := time.Now()
	validIdx := make([]int, 0, len(subs))
	for i := range subs {
		if err := subs[i].Validate(); err != nil {
			p.ctr.decodeErrors.Inc()
			res.Invalid++
			continue
		}
		p.ctr.decoded.Inc()
		validIdx = append(validIdx, i)
	}
	p.decodeDur.Observe(time.Since(t0).Seconds())

	// Evaluate stage: ambient estimation + strict filters per entry.
	t0 = time.Now()
	recs := make([]store.Record, 0, len(validIdx))
	for _, i := range validIdx {
		recs = append(recs, p.evaluate(subs[i]))
	}
	p.filterDur.Observe(time.Since(t0).Seconds())
	if len(recs) == 0 {
		return res, nil
	}

	// A hard shutdown or expired deadline before the commit drops the
	// batch's survivors, counted — never silently.
	if p.aborting() {
		p.ctr.aborted.Add(uint64(len(recs)))
		res.Failed = len(recs)
		return res, ErrClosed
	}
	if err := ctx.Err(); err != nil {
		p.ctr.aborted.Add(uint64(len(recs)))
		res.Failed = len(recs)
		return res, err
	}

	// Store stage: group-commit the whole batch when the WAL supports
	// it, fall back per record otherwise.
	t0 = time.Now()
	switch wal := p.cfg.WAL.(type) {
	case nil:
		for i := range recs {
			seq, err := p.cfg.Store.Put(recs[i])
			if err != nil {
				// Validated above; a store rejection is a bug, but never
				// lose count of the submission.
				p.ctr.aborted.Inc()
				res.Failed++
				continue
			}
			recs[i].Seq = seq
			res.Records = append(res.Records, recs[i])
		}
	case BatchCommitter:
		ptrs := make([]*store.Record, len(recs))
		for i := range recs {
			ptrs[i] = &recs[i]
		}
		if err := wal.CommitBatch(ptrs); err != nil {
			p.ctr.walFailed.Add(uint64(len(recs)))
			res.Failed += len(recs)
			p.walDur.Observe(time.Since(t0).Seconds())
			return res, nil
		}
		p.ctr.walAppended.Add(uint64(len(recs)))
		p.walDur.Observe(time.Since(t0).Seconds())
		res.Records = recs
	default:
		for i := range recs {
			if _, err := p.cfg.WAL.Commit(&recs[i]); err != nil {
				p.ctr.walFailed.Inc()
				res.Failed++
				continue
			}
			p.ctr.walAppended.Inc()
			res.Records = append(res.Records, recs[i])
		}
		p.walDur.Observe(time.Since(t0).Seconds())
	}

	t0 = time.Now()
	models := make(map[string]struct{}, 1)
	for i := range res.Records {
		if res.Records[i].Accepted {
			p.ctr.accepted.Inc()
		} else {
			p.ctr.rejected.Inc()
		}
		models[res.Records[i].Model] = struct{}{}
	}
	p.ctr.stored.Add(uint64(len(res.Records)))
	if p.cfg.OnStored != nil {
		for model := range models {
			p.cfg.OnStored(model)
		}
	}
	p.storeDur.Observe(time.Since(t0).Seconds())
	return res, nil
}
