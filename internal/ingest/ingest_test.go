package ingest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"
	"time"

	"accubench/internal/crowd"
	"accubench/internal/store"
)

// payload builds a valid wire upload with a synthetic geometric cooldown
// decay toward amb.
func payload(t *testing.T, device string, score, amb float64) []byte {
	t.Helper()
	sub := Submission{Device: device, Model: "Nexus 5", Score: score}
	delta := 70 - amb
	for i := 0; i < 40; i++ {
		sub.Cooldown = append(sub.Cooldown, CooldownPoint{
			AtSeconds: float64(i+1) * 5,
			TempC:     amb + delta*math.Pow(0.93, float64(i+1)),
		})
	}
	raw, err := Marshal(sub.Device, sub.Model, sub.Score, sub.Readings())
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

func newPipeline(t *testing.T, st *store.Store, mut ...func(*Config)) *Pipeline {
	t.Helper()
	cfg := Config{Workers: 2, QueueDepth: 8, Policy: crowd.DefaultPolicy(), Store: st}
	for _, m := range mut {
		m(&cfg)
	}
	p, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPipelineEndToEnd(t *testing.T) {
	st := store.New(4)
	var mu sync.Mutex
	notified := map[string]int{}
	p := newPipeline(t, st, func(c *Config) {
		c.OnStored = func(model string) {
			mu.Lock()
			notified[model]++
			mu.Unlock()
		}
	})
	p.Start(context.Background())

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	// 24 °C decays estimate inside the window; 38 °C outside; garbage drops.
	uploads := [][]byte{
		payload(t, "d-accept-1", 1000, 24),
		payload(t, "d-accept-2", 1100, 25),
		payload(t, "d-reject-hot", 900, 38),
		[]byte("{not json"),
		[]byte(`{"device":"d-no-trace","model":"Nexus 5","score":5}`),
	}
	for _, u := range uploads {
		if err := p.Submit(ctx, u); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()

	c := p.Counters()
	if c.Received != 5 || c.DecodeErrors != 2 || c.Stored != 3 {
		t.Errorf("counters = %+v, want received 5, decode errors 2, stored 3", c)
	}
	if c.Accepted != 2 || c.Rejected != 1 {
		t.Errorf("counters = %+v, want accepted 2, rejected 1", c)
	}
	if c.Received != c.DecodeErrors+c.Aborted+c.Stored {
		t.Errorf("flow invariant violated: %+v", c)
	}
	if st.Len() != 3 || st.AcceptedLen() != 2 {
		t.Errorf("store has %d/%d records", st.Len(), st.AcceptedLen())
	}
	rec, ok := st.Device("d-reject-hot")
	if !ok || rec.Accepted || rec.RejectReason == "" {
		t.Errorf("hot-climate record = %+v, %v", rec, ok)
	}
	mu.Lock()
	if notified["Nexus 5"] != 3 {
		t.Errorf("OnStored fired %d times, want 3", notified["Nexus 5"])
	}
	mu.Unlock()

	// Intake is closed now.
	if err := p.Submit(ctx, uploads[0]); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after Close = %v, want ErrClosed", err)
	}
}

func TestSubmitBackpressure(t *testing.T) {
	st := store.New(1)
	p := newPipeline(t, st, func(c *Config) { c.Workers = 1; c.QueueDepth = 1 })
	// Not started: the intake queue fills and Submit must block until the
	// context expires rather than queueing without bound.
	bg := context.Background()
	if err := p.Submit(bg, payload(t, "d0", 100, 24)); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(bg, 50*time.Millisecond)
	defer cancel()
	if err := p.Submit(ctx, payload(t, "d1", 100, 24)); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("saturated Submit = %v, want deadline exceeded", err)
	}
	// Once workers start, the queue drains and both the first upload and a
	// retry go through.
	p.Start(bg)
	ctx2, cancel2 := context.WithTimeout(bg, 5*time.Second)
	defer cancel2()
	if err := p.Submit(ctx2, payload(t, "d1", 100, 24)); err != nil {
		t.Fatal(err)
	}
	p.Close()
	if c := p.Counters(); c.Stored != 2 {
		t.Errorf("counters = %+v, want 2 stored", c)
	}
}

func TestGracefulCloseDrainsEverything(t *testing.T) {
	st := store.New(8)
	p := newPipeline(t, st, func(c *Config) { c.Workers = 4; c.QueueDepth = 4 })
	p.Start(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	const n = 64
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			amb := 15 + float64(i%20) // mix of in- and out-of-window climates
			if err := p.Submit(ctx, payload(t, fmt.Sprintf("d%03d", i), 1000+float64(i), amb)); err != nil {
				t.Error(err)
			}
		}(i)
	}
	wg.Wait()
	p.Close()

	c := p.Counters()
	if c.Received != n || c.Stored != n || c.Aborted != 0 {
		t.Errorf("graceful close dropped submissions: %+v", c)
	}
	if c.Accepted == 0 || c.Rejected == 0 {
		t.Errorf("filter saw no traffic on both sides: %+v", c)
	}
	if st.Len() != n {
		t.Errorf("store has %d records, want %d", st.Len(), n)
	}
}

func TestHardAbortCountsDrops(t *testing.T) {
	st := store.New(2)
	p := newPipeline(t, st, func(c *Config) { c.Workers = 1; c.QueueDepth = 2 })
	ctx, cancel := context.WithCancel(context.Background())
	p.Start(ctx)
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	for i := 0; i < 6; i++ {
		if err := p.Submit(sctx, payload(t, fmt.Sprintf("d%d", i), 100, 24)); err != nil {
			t.Fatal(err)
		}
	}
	cancel()
	p.Close()
	c := p.Counters()
	if c.Received != c.DecodeErrors+c.Aborted+c.Stored {
		t.Errorf("flow invariant violated after abort: %+v", c)
	}
	if err := p.Submit(sctx, payload(t, "late", 100, 24)); !errors.Is(err, ErrClosed) {
		t.Errorf("Submit after abort = %v, want ErrClosed", err)
	}
}

func TestDecodeValidation(t *testing.T) {
	good := payload(t, "d", 100, 24)
	if _, err := Decode(good); err != nil {
		t.Fatal(err)
	}
	bad := []struct {
		name string
		raw  string
	}{
		{"not json", `nope`},
		{"no device", `{"model":"m","score":1,"cooldown":[{"at_s":1,"temp_c":20}]}`},
		{"no model", `{"device":"d","score":1,"cooldown":[{"at_s":1,"temp_c":20}]}`},
		{"zero score", `{"device":"d","model":"m","score":0,"cooldown":[{"at_s":1,"temp_c":20}]}`},
		{"no trace", `{"device":"d","model":"m","score":1}`},
		{"absurd temp", `{"device":"d","model":"m","score":1,"cooldown":[{"at_s":1,"temp_c":400}]}`},
		{"non-monotonic", `{"device":"d","model":"m","score":1,"cooldown":[{"at_s":5,"temp_c":30},{"at_s":5,"temp_c":29}]}`},
	}
	for _, tc := range bad {
		if _, err := Decode([]byte(tc.raw)); err == nil {
			t.Errorf("%s: decoded without error", tc.name)
		}
	}
}

func TestMarshalRoundTrip(t *testing.T) {
	raw := payload(t, "d-rt", 1234, 22)
	sub, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if sub.Device != "d-rt" || sub.Model != "Nexus 5" || sub.Score != 1234 {
		t.Errorf("round trip lost fields: %+v", sub)
	}
	readings := sub.Readings()
	if len(readings) != 40 {
		t.Fatalf("round trip lost polls: %d", len(readings))
	}
	if readings[0].At != 5*time.Second {
		t.Errorf("poll time round trip: %v", readings[0].At)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{Policy: crowd.DefaultPolicy()}); err == nil {
		t.Error("config without store accepted")
	}
	if _, err := New(Config{Store: store.New(1)}); err == nil {
		t.Error("config with empty policy window accepted")
	}
}

// committer is a test double for the WAL's commit point: it assigns
// sequence numbers, forwards to the store like the real Persister, and
// fails on demand after a set number of commits.
type committer struct {
	st      *store.Store
	mu      sync.Mutex
	seq     uint64
	failAll bool
}

func (c *committer) Commit(r *store.Record) (uint64, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.failAll {
		return 0, errors.New("disk full")
	}
	c.seq++
	r.Seq = c.seq
	if err := c.st.PutSeq(*r); err != nil {
		return 0, err
	}
	return c.seq, nil
}

func TestPipelineCommitsThroughWAL(t *testing.T) {
	st := store.New(4)
	wal := &committer{st: st}
	p := newPipeline(t, st, func(c *Config) { c.WAL = wal })
	p.Start(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 6; i++ {
		if err := p.Submit(ctx, payload(t, fmt.Sprintf("wal-%d", i), 1000, 24)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()

	c := p.Counters()
	if c.WALAppended != 6 || c.WALFailed != 0 || c.Stored != 6 {
		t.Fatalf("counters = %+v, want 6 wal appends", c)
	}
	if st.Len() != 6 {
		t.Fatalf("store holds %d records", st.Len())
	}
	// Every stored record carries the committer's sequence number.
	for _, r := range st.Model("Nexus 5") {
		if r.Seq == 0 {
			t.Fatalf("stored record lost its assigned seq: %+v", r)
		}
	}
}

func TestPipelineCountsWALFailures(t *testing.T) {
	st := store.New(4)
	wal := &committer{st: st, failAll: true}
	p := newPipeline(t, st, func(c *Config) { c.WAL = wal })
	p.Start(context.Background())
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	for i := 0; i < 4; i++ {
		if err := p.Submit(ctx, payload(t, fmt.Sprintf("fail-%d", i), 1000, 24)); err != nil {
			t.Fatal(err)
		}
	}
	p.Close()

	c := p.Counters()
	if c.WALFailed != 4 || c.Stored != 0 {
		t.Fatalf("counters = %+v, want 4 wal failures and nothing stored", c)
	}
	// Nothing became visible without committing.
	if st.Len() != 0 {
		t.Fatalf("store holds %d records after commit failures", st.Len())
	}
	// The conservation law still balances with the failure leg.
	if c.Received != c.DecodeErrors+c.Aborted+c.Stored+c.WALFailed {
		t.Errorf("flow invariant violated: %+v", c)
	}
}
