package ingest

import (
	"bytes"
	"testing"
)

// FuzzDecode fuzzes the submission decoder — the surface every
// in-the-wild upload crosses. Decode must never panic, anything it
// accepts must satisfy Validate (the pipeline stores decoded submissions
// without re-checking), and accepted payloads must round-trip through
// Marshal byte-for-byte up to JSON re-encoding stability.
func FuzzDecode(f *testing.F) {
	f.Add([]byte(`{"device":"unit-1","model":"Nexus 5","score":1500,"cooldown":[{"at_s":10,"temp_c":40},{"at_s":20,"temp_c":38}]}`))
	f.Add([]byte(`{"device":"d","model":"m","score":1,"cooldown":[{"at_s":0.5,"temp_c":-49.5}]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`{"device":"d","model":"m","score":-1,"cooldown":[]}`))
	f.Add([]byte(`{"device":"d","model":"m","score":1e999,"cooldown":[{"at_s":1,"temp_c":30}]}`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, raw []byte) {
		sub, err := Decode(raw)
		if err != nil {
			return // rejected input: fine, as long as it didn't panic
		}
		if verr := sub.Validate(); verr != nil {
			t.Fatalf("Decode accepted a payload Validate rejects: %v\npayload: %q", verr, raw)
		}
		// Accepted payloads re-marshal and re-decode to the same submission.
		out, err := Marshal(sub.Device, sub.Model, sub.Score, sub.Readings())
		if err != nil {
			t.Fatalf("accepted submission failed to marshal: %v\npayload: %q", err, raw)
		}
		sub2, err := Decode(out)
		if err != nil {
			t.Fatalf("marshaled submission failed to decode: %v\nwire: %s", err, out)
		}
		out2, err := Marshal(sub2.Device, sub2.Model, sub2.Score, sub2.Readings())
		if err != nil {
			t.Fatalf("re-decoded submission failed to marshal: %v", err)
		}
		if !bytes.Equal(out, out2) {
			t.Fatalf("wire round-trip unstable:\nfirst:  %s\nsecond: %s", out, out2)
		}
	})
}
