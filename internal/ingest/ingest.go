// Package ingest is the crowd backend's submission pipeline: a bounded,
// staged worker pool that turns raw upload bytes into stored, filtered
// records.
//
// The pipeline has three stages connected by bounded channels:
//
//	decode   — parse and validate the JSON wire format
//	evaluate — estimate the ambient from the cooldown trace (Aitken
//	           extrapolation via crowd.Policy) and apply the strict filters
//	store    — commit the verdict (WAL append + fsync first, when
//	           durability is configured), land it in the sharded store
//	           and notify the binning loop
//
// Each stage runs its own worker pool; an upload occupies exactly one
// worker per stage, so slow evaluation of one submission never blocks
// decoding of the next. The channels are bounded, which gives the HTTP
// layer natural backpressure: Submit blocks (up to its context deadline)
// when the pipeline is saturated instead of queueing without limit.
//
// Shutdown is graceful by default: Close stops intake, lets every enqueued
// submission drain through all three stages, then returns. Cancelling the
// Start context instead aborts promptly, dropping queued items (counted,
// never silent).
package ingest

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"time"

	"accubench/internal/accubench"
	"accubench/internal/crowd"
	"accubench/internal/obs"
	"accubench/internal/store"
	"accubench/internal/units"
)

// ErrClosed is returned by Submit after Close (or Start-context
// cancellation) has stopped intake.
var ErrClosed = errors.New("ingest: pipeline closed")

// ErrBadPayload wraps decode failures surfaced by SubmitWait, so callers
// can tell a malformed upload (client error) from a commit failure.
var ErrBadPayload = errors.New("ingest: bad payload")

// Config parameterizes a Pipeline.
type Config struct {
	// Workers is the per-stage worker count (DefaultWorkers if <= 0).
	Workers int
	// QueueDepth is the capacity of each inter-stage channel
	// (DefaultQueueDepth if <= 0). Total in-flight bound is
	// 3*QueueDepth + 3*Workers.
	QueueDepth int
	// Policy is the per-submission acceptance policy.
	Policy crowd.Policy
	// Store receives the verdicts. Required.
	Store *store.Store
	// WAL, when non-nil, makes the store stage durable: every record is
	// committed — appended to the write-ahead log and fsynced, then
	// inserted into the store with its log-assigned sequence number —
	// instead of stored directly. This is the append-before-store commit
	// point: a record is never visible without being durable.
	WAL Committer
	// OnStored, when non-nil, is called after each record lands, with the
	// record's model — the binning loop's dirty trigger. It must be safe
	// for concurrent use and fast (it runs on store workers).
	OnStored func(model string)
	// Obs is the metrics registry the pipeline's counters and per-stage
	// latency histograms register in. Nil gets a private registry, so
	// the pipeline is always instrumented; pass the service's registry
	// to expose the metrics on its scrape surface.
	Obs *obs.Registry
	// Tracer, when non-nil and enabled, emits one span per stage per
	// submission (decode, filter, wal_append, store), correlated by a
	// trace ID assigned at Submit — the reconstructible per-upload
	// timeline behind crowdd's -trace flag.
	Tracer *obs.Tracer
}

// Committer is the durability hook the store stage calls when a WAL is
// configured. Commit must make the record durable and visible in the
// store (setting its Seq) before returning; internal/wal.Persister is the
// production implementation.
type Committer interface {
	Commit(r *store.Record) (uint64, error)
}

// DefaultWorkers is the per-stage worker count for Config.Workers <= 0.
const DefaultWorkers = 4

// DefaultQueueDepth is the channel capacity for Config.QueueDepth <= 0.
const DefaultQueueDepth = 256

// Counters is a snapshot of the pipeline's per-stage counters. The flow
// invariant after a graceful Close is
//
//	Received = DecodeErrors + Aborted + Stored + WALFailed
//	Stored   = Accepted + Rejected
//
// and, when a WAL is configured, Stored = WALAppended.
type Counters struct {
	// Received counts uploads admitted by Submit.
	Received uint64 `json:"received"`
	// Decoded counts uploads that parsed and validated.
	Decoded uint64 `json:"decoded"`
	// DecodeErrors counts malformed uploads (dropped at decode).
	DecodeErrors uint64 `json:"decode_errors"`
	// Evaluated counts submissions whose cooldown trace yielded an
	// ambient estimate.
	Evaluated uint64 `json:"evaluated"`
	// EstimateFailures counts submissions whose trace was unusable; they
	// are stored as rejected, not dropped.
	EstimateFailures uint64 `json:"estimate_failures"`
	// Accepted counts submissions that survived the strict filters.
	Accepted uint64 `json:"accepted"`
	// Rejected counts submissions filtered out (estimate outside the
	// window, or unusable trace).
	Rejected uint64 `json:"rejected"`
	// Stored counts records written to the store.
	Stored uint64 `json:"stored"`
	// Aborted counts in-flight submissions dropped by a hard (context)
	// shutdown.
	Aborted uint64 `json:"aborted"`
	// WALAppended counts records durably committed through the WAL before
	// storing (zero when no WAL is configured).
	WALAppended uint64 `json:"wal_appended"`
	// WALFailed counts records dropped because their WAL commit failed —
	// they were never stored, so acceptance never outran durability.
	WALFailed uint64 `json:"wal_failed"`
}

// counters holds the pipeline's per-stage counters as registry metrics:
// the same atomics back both the Counters() snapshot API and the
// service's /metrics exposition, so the two views can never diverge.
type counters struct {
	received, decoded, decodeErrors     *obs.Counter
	evaluated, estimateFailures         *obs.Counter
	accepted, rejected, stored, aborted *obs.Counter
	walAppended, walFailed              *obs.Counter
}

// newCounters registers the pipeline's counters, preserving the metric
// names the service has always exposed.
func newCounters(reg *obs.Registry) counters {
	c := func(name, help string) *obs.Counter { return reg.Counter(name, help) }
	return counters{
		received:         c("received_total", "uploads admitted by Submit"),
		decoded:          c("decoded_total", "uploads that parsed and validated"),
		decodeErrors:     c("decode_errors_total", "malformed uploads dropped at decode"),
		evaluated:        c("evaluated_total", "submissions whose trace yielded an ambient estimate"),
		estimateFailures: c("estimate_failures_total", "submissions with an unusable cooldown trace"),
		accepted:         c("accepted_total", "submissions that survived the strict filters"),
		rejected:         c("rejected_total", "submissions filtered out"),
		stored:           c("stored_total", "records written to the store"),
		aborted:          c("aborted_total", "in-flight submissions dropped by a hard shutdown"),
		walAppended:      c("wal_appended_total", "records durably committed through the WAL before storing"),
		walFailed:        c("wal_failed_total", "records dropped because their WAL commit failed"),
	}
}

func (c *counters) snapshot() Counters {
	return Counters{
		Received:         c.received.Value(),
		Decoded:          c.decoded.Value(),
		DecodeErrors:     c.decodeErrors.Value(),
		Evaluated:        c.evaluated.Value(),
		EstimateFailures: c.estimateFailures.Value(),
		Accepted:         c.accepted.Value(),
		Rejected:         c.rejected.Value(),
		Stored:           c.stored.Value(),
		Aborted:          c.aborted.Value(),
		WALAppended:      c.walAppended.Value(),
		WALFailed:        c.walFailed.Value(),
	}
}

// rawUpload, decodedSub and verdict are the inter-stage envelopes: the
// payload plus the submission's trace ID (empty when tracing is off) and,
// for SubmitWait uploads, the completion channel every terminal path must
// resolve.
type rawUpload struct {
	raw   []byte
	trace string
	done  chan<- submitResult
}

type decodedSub struct {
	sub   Submission
	trace string
	done  chan<- submitResult
}

type verdict struct {
	rec   store.Record
	trace string
	done  chan<- submitResult
}

// submitResult is what a SubmitWait upload resolves to: the committed
// record (local sequence number assigned) or the error that dropped it.
type submitResult struct {
	rec store.Record
	err error
}

// resolve completes a SubmitWait upload. The channel is buffered and
// receives exactly one send, so this never blocks a worker.
func resolve(done chan<- submitResult, rec store.Record, err error) {
	if done != nil {
		done <- submitResult{rec: rec, err: err}
	}
}

// Pipeline is the staged ingestion worker pool. Create with New, launch
// with Start, feed with Submit, and stop with Close.
type Pipeline struct {
	cfg Config

	raw       chan rawUpload
	decoded   chan decodedSub
	evaluated chan verdict

	ctr    counters
	tracer *obs.Tracer
	// Per-stage latency histograms (ingest_stage_seconds), resolved once
	// so workers skip the vec lookup.
	decodeDur, filterDur, walDur, storeDur *obs.Histogram

	// Intake gate: Submit registers in submitters under mu; Close flips
	// closed, waits for registered submitters to finish, then closes raw.
	mu         sync.Mutex
	closed     bool
	submitters sync.WaitGroup

	stop      chan struct{} // closed on hard abort (Start ctx cancelled)
	stopOnce  sync.Once
	drained   chan struct{} // closed when the store stage finishes
	closeOnce sync.Once
	started   atomic.Bool
}

// New creates a pipeline. Start must be called before Submit.
func New(cfg Config) (*Pipeline, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("ingest: config needs a store")
	}
	if err := cfg.Policy.Validate(); err != nil {
		return nil, err
	}
	if cfg.Workers <= 0 {
		cfg.Workers = DefaultWorkers
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = DefaultQueueDepth
	}
	if cfg.Obs == nil {
		cfg.Obs = obs.NewRegistry("")
	}
	if cfg.Tracer == nil {
		cfg.Tracer = obs.NewTracer(nil) // disabled
	}
	stageDur := cfg.Obs.HistogramVec("ingest_stage_seconds",
		"per-stage submission latency", "stage", obs.DurationBuckets)
	return &Pipeline{
		cfg:       cfg,
		raw:       make(chan rawUpload, cfg.QueueDepth),
		decoded:   make(chan decodedSub, cfg.QueueDepth),
		evaluated: make(chan verdict, cfg.QueueDepth),
		ctr:       newCounters(cfg.Obs),
		tracer:    cfg.Tracer,
		decodeDur: stageDur.With("decode"),
		filterDur: stageDur.With("filter"),
		walDur:    stageDur.With("wal_append"),
		storeDur:  stageDur.With("store"),
		stop:      make(chan struct{}),
		drained:   make(chan struct{}),
	}, nil
}

// Start launches the stage workers. Cancelling ctx hard-aborts the
// pipeline: intake closes, queued items are dropped (counted in Aborted)
// and workers exit. For a graceful drain use Close instead.
func (p *Pipeline) Start(ctx context.Context) {
	if !p.started.CompareAndSwap(false, true) {
		return
	}
	var decodeWG, evalWG, storeWG sync.WaitGroup
	for i := 0; i < p.cfg.Workers; i++ {
		decodeWG.Add(1)
		go func() { defer decodeWG.Done(); p.decodeWorker() }()
		evalWG.Add(1)
		go func() { defer evalWG.Done(); p.evaluateWorker() }()
		storeWG.Add(1)
		go func() { defer storeWG.Done(); p.storeWorker() }()
	}
	// Stage cascade: when a stage's intake closes and its workers finish,
	// close the next stage's intake.
	go func() { decodeWG.Wait(); close(p.decoded) }()
	go func() { evalWG.Wait(); close(p.evaluated) }()
	go func() { storeWG.Wait(); close(p.drained) }()
	// Hard abort on context cancellation.
	go func() {
		select {
		case <-ctx.Done():
			p.abort()
		case <-p.drained:
		}
	}()
}

// abort stops intake and signals workers to drop queued items.
func (p *Pipeline) abort() {
	p.stopOnce.Do(func() { close(p.stop) })
	p.closeIntake(false)
}

// closeIntake stops Submit and closes the raw channel once no Submit is
// mid-send. When wait is true it blocks until in-flight Submits return.
func (p *Pipeline) closeIntake(wait bool) {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	if wait {
		p.submitters.Wait()
		p.closeOnce.Do(func() { close(p.raw) })
		return
	}
	// Hard path: submitters unblock via p.stop; close raw after they
	// return, off the caller's goroutine.
	go func() {
		p.submitters.Wait()
		p.closeOnce.Do(func() { close(p.raw) })
	}()
}

// Submit feeds one raw upload into the pipeline. It blocks while the
// intake queue is full — backpressure — until ctx expires or the pipeline
// shuts down. The bytes are owned by the pipeline afterwards.
func (p *Pipeline) Submit(ctx context.Context, raw []byte) error {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return ErrClosed
	}
	p.submitters.Add(1)
	p.mu.Unlock()
	defer p.submitters.Done()

	select {
	case p.raw <- rawUpload{raw: raw, trace: p.tracer.NewTrace()}:
		p.ctr.received.Inc()
		return nil
	case <-p.stop:
		return ErrClosed
	case <-ctx.Done():
		return ctx.Err()
	}
}

// SubmitWait feeds one raw upload into the pipeline and blocks until the
// submission reaches a terminal state: durably committed (the record is
// returned with its local sequence number), rejected at decode
// (ErrBadPayload), or dropped by a failed commit or shutdown. This is the
// cluster ingest path: a node must not acknowledge a submission it could
// still lose, so the 202 waits for the commit instead of the enqueue.
func (p *Pipeline) SubmitWait(ctx context.Context, raw []byte) (store.Record, error) {
	p.mu.Lock()
	if p.closed {
		p.mu.Unlock()
		return store.Record{}, ErrClosed
	}
	p.submitters.Add(1)
	p.mu.Unlock()
	defer p.submitters.Done()

	done := make(chan submitResult, 1)
	select {
	case p.raw <- rawUpload{raw: raw, trace: p.tracer.NewTrace(), done: done}:
		p.ctr.received.Inc()
	case <-p.stop:
		return store.Record{}, ErrClosed
	case <-ctx.Done():
		return store.Record{}, ctx.Err()
	}
	select {
	case res := <-done:
		return res.rec, res.err
	case <-ctx.Done():
		// The upload keeps flowing and will commit or drop on its own;
		// the caller just stops waiting.
		return store.Record{}, ctx.Err()
	case <-p.stop:
		return store.Record{}, ErrClosed
	}
}

// Close gracefully shuts the pipeline down: intake stops (Submit returns
// ErrClosed), every enqueued submission drains through all stages, then
// workers exit. Safe to call more than once.
func (p *Pipeline) Close() {
	p.closeIntake(true)
	if p.started.Load() {
		<-p.drained
	}
}

// Counters returns a snapshot of the per-stage counters.
func (p *Pipeline) Counters() Counters { return p.ctr.snapshot() }

// aborting reports whether a hard shutdown is in progress.
func (p *Pipeline) aborting() bool {
	select {
	case <-p.stop:
		return true
	default:
		return false
	}
}

func (p *Pipeline) decodeWorker() {
	for item := range p.raw {
		if p.aborting() {
			p.ctr.aborted.Inc()
			resolve(item.done, store.Record{}, ErrClosed)
			continue
		}
		t0 := time.Now()
		sub, err := Decode(item.raw)
		dur := time.Since(t0)
		p.decodeDur.Observe(dur.Seconds())
		if err != nil {
			p.ctr.decodeErrors.Inc()
			p.tracer.Emit(obs.Span{Trace: item.trace, Name: "decode", Err: err}, t0, dur)
			resolve(item.done, store.Record{}, fmt.Errorf("%w: %v", ErrBadPayload, err))
			continue
		}
		p.ctr.decoded.Inc()
		p.tracer.Emit(obs.Span{Trace: item.trace, Name: "decode", Device: sub.Device, Model: sub.Model}, t0, dur)
		select {
		case p.decoded <- decodedSub{sub: sub, trace: item.trace, done: item.done}:
		case <-p.stop:
			p.ctr.aborted.Inc()
			resolve(item.done, store.Record{}, ErrClosed)
		}
	}
}

func (p *Pipeline) evaluateWorker() {
	for item := range p.decoded {
		if p.aborting() {
			p.ctr.aborted.Inc()
			resolve(item.done, store.Record{}, ErrClosed)
			continue
		}
		t0 := time.Now()
		rec := p.evaluate(item.sub)
		dur := time.Since(t0)
		p.filterDur.Observe(dur.Seconds())
		p.tracer.Emit(obs.Span{Trace: item.trace, Name: "filter", Device: rec.Device, Model: rec.Model}, t0, dur)
		select {
		case p.evaluated <- verdict{rec: rec, trace: item.trace, done: item.done}:
		case <-p.stop:
			p.ctr.aborted.Inc()
			resolve(item.done, store.Record{}, ErrClosed)
		}
	}
}

// evaluate runs the backend's per-submission pass: ambient estimation
// followed by the strict filters.
func (p *Pipeline) evaluate(sub Submission) store.Record {
	rec := store.Record{
		Device: sub.Device,
		Model:  sub.Model,
		Score:  sub.Score,
	}
	est, accepted, err := p.cfg.Policy.Evaluate(sub.Readings())
	if err != nil {
		p.ctr.estimateFailures.Inc()
		rec.RejectReason = err.Error()
		return rec
	}
	p.ctr.evaluated.Inc()
	rec.EstimatedAmbient = est
	if !accepted {
		rec.RejectReason = fmt.Sprintf("estimated ambient %v outside [%v, %v]",
			est, p.cfg.Policy.AcceptLo, p.cfg.Policy.AcceptHi)
		return rec
	}
	rec.Accepted = true
	return rec
}

func (p *Pipeline) storeWorker() {
	for item := range p.evaluated {
		if p.aborting() {
			p.ctr.aborted.Inc()
			resolve(item.done, store.Record{}, ErrClosed)
			continue
		}
		rec := item.rec
		t0 := time.Now()
		if p.cfg.WAL != nil {
			// Append-before-store: the record is fsynced into the log —
			// which assigns its sequence number — before it becomes
			// visible. A failed commit drops the record (counted), never
			// stores it: acceptance must not outrun durability. The
			// wal_append span covers the whole commit (fsynced append plus
			// the store insert it gates); the store span that follows is
			// the visibility bookkeeping.
			_, err := p.cfg.WAL.Commit(&rec)
			dur := time.Since(t0)
			p.walDur.Observe(dur.Seconds())
			p.tracer.Emit(obs.Span{Trace: item.trace, Name: "wal_append", Device: rec.Device, Model: rec.Model, Seq: rec.Seq, Err: err}, t0, dur)
			if err != nil {
				p.ctr.walFailed.Inc()
				resolve(item.done, store.Record{}, err)
				continue
			}
			p.ctr.walAppended.Inc()
			t0 = time.Now()
		} else if seq, err := p.cfg.Store.Put(rec); err != nil {
			// Validated at decode; a store rejection here is a bug, but
			// never lose count of the submission.
			p.tracer.Emit(obs.Span{Trace: item.trace, Name: "store", Device: rec.Device, Model: rec.Model, Err: err}, t0, time.Since(t0))
			p.ctr.aborted.Inc()
			resolve(item.done, store.Record{}, err)
			continue
		} else {
			rec.Seq = seq
		}
		if rec.Accepted {
			p.ctr.accepted.Inc()
		} else {
			p.ctr.rejected.Inc()
		}
		p.ctr.stored.Inc()
		if p.cfg.OnStored != nil {
			p.cfg.OnStored(rec.Model)
		}
		dur := time.Since(t0)
		p.storeDur.Observe(dur.Seconds())
		p.tracer.Emit(obs.Span{Trace: item.trace, Name: "store", Device: rec.Device, Model: rec.Model, Seq: rec.Seq}, t0, dur)
		resolve(item.done, rec, nil)
	}
}

// Submission is the crowd app's upload payload — the wire format of
// POST /v1/submissions.
type Submission struct {
	// Device is the unit's anonymous identifier.
	Device string `json:"device"`
	// Model is the handset model, e.g. "Nexus 5".
	Model string `json:"model"`
	// Score is the ACCUBENCH performance score.
	Score float64 `json:"score"`
	// Cooldown is the cooldown sensor trace, in poll order.
	Cooldown []CooldownPoint `json:"cooldown"`
}

// CooldownPoint is one cooldown sensor poll on the wire.
type CooldownPoint struct {
	// AtSeconds is the time since the cooldown began, in seconds.
	AtSeconds float64 `json:"at_s"`
	// TempC is the sensor reading in °C.
	TempC float64 `json:"temp_c"`
}

// Readings converts the wire trace to the estimator's sample type.
func (s Submission) Readings() []accubench.CooldownSample {
	out := make([]accubench.CooldownSample, len(s.Cooldown))
	for i, p := range s.Cooldown {
		out[i] = accubench.CooldownSample{
			At:      time.Duration(p.AtSeconds * float64(time.Second)),
			Reading: units.Celsius(p.TempC),
		}
	}
	return out
}

// Validate checks the wire payload.
func (s Submission) Validate() error {
	if s.Device == "" {
		return fmt.Errorf("ingest: submission without device")
	}
	if s.Model == "" {
		return fmt.Errorf("ingest: submission without model")
	}
	if math.IsNaN(s.Score) || math.IsInf(s.Score, 0) || s.Score <= 0 {
		return fmt.Errorf("ingest: implausible score %v", s.Score)
	}
	if len(s.Cooldown) == 0 {
		return fmt.Errorf("ingest: submission without cooldown trace")
	}
	for i, p := range s.Cooldown {
		if math.IsNaN(p.TempC) || math.IsInf(p.TempC, 0) || p.TempC < -50 || p.TempC > 150 {
			return fmt.Errorf("ingest: implausible cooldown reading %v at poll %d", p.TempC, i)
		}
		if i > 0 && p.AtSeconds <= s.Cooldown[i-1].AtSeconds {
			return fmt.Errorf("ingest: cooldown polls not increasing at %d", i)
		}
	}
	return nil
}

// Decode parses and validates one raw upload.
func Decode(raw []byte) (Submission, error) {
	var sub Submission
	if err := json.Unmarshal(raw, &sub); err != nil {
		return Submission{}, fmt.Errorf("ingest: %w", err)
	}
	if err := sub.Validate(); err != nil {
		return Submission{}, err
	}
	return sub, nil
}

// Marshal renders a benchmark result as the wire payload the app uploads.
func Marshal(device, model string, score float64, readings []accubench.CooldownSample) ([]byte, error) {
	sub := Submission{
		Device:   device,
		Model:    model,
		Score:    score,
		Cooldown: make([]CooldownPoint, len(readings)),
	}
	for i, r := range readings {
		sub.Cooldown[i] = CooldownPoint{
			AtSeconds: r.At.Seconds(),
			TempC:     float64(r.Reading),
		}
	}
	if err := sub.Validate(); err != nil {
		return nil, err
	}
	return json.Marshal(sub)
}
