package ingest

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"testing"

	"accubench/internal/store"
)

// batchSub builds a decoded submission with a synthetic cooldown toward
// amb (see payload for the JSON twin).
func batchSub(device string, score, amb float64) Submission {
	sub := Submission{Device: device, Model: "Nexus 5", Score: score}
	delta := 70 - amb
	for i := 0; i < 40; i++ {
		sub.Cooldown = append(sub.Cooldown, CooldownPoint{
			AtSeconds: float64(i+1) * 5,
			TempC:     amb + delta*math.Pow(0.93, float64(i+1)),
		})
	}
	return sub
}

// recordingBatchCommitter implements both Committer and BatchCommitter,
// counting calls and optionally failing, over a backing store.
type recordingBatchCommitter struct {
	st          *store.Store
	mu          sync.Mutex
	commits     int
	batches     int
	batchSizes  []int
	failBatches bool
}

func (c *recordingBatchCommitter) Commit(r *store.Record) (uint64, error) {
	c.mu.Lock()
	c.commits++
	c.mu.Unlock()
	seq, err := c.st.Put(*r)
	if err == nil {
		r.Seq = seq
	}
	return seq, err
}

func (c *recordingBatchCommitter) CommitBatch(recs []*store.Record) error {
	c.mu.Lock()
	c.batches++
	c.batchSizes = append(c.batchSizes, len(recs))
	fail := c.failBatches
	c.mu.Unlock()
	if fail {
		return errors.New("injected batch-commit failure")
	}
	for _, r := range recs {
		seq, err := c.st.Put(*r)
		if err != nil {
			return err
		}
		r.Seq = seq
	}
	return nil
}

// TestSubmitBatchEndToEnd drives a mixed batch — accepts, a reject, an
// invalid entry — through the inline batch path and asserts the result
// accounting, the store contents, the OnStored notification, and the
// counter conservation laws shared with the staged pipeline.
func TestSubmitBatchEndToEnd(t *testing.T) {
	st := store.New(4)
	var mu sync.Mutex
	notified := map[string]int{}
	p := newPipeline(t, st, func(c *Config) {
		c.OnStored = func(model string) {
			mu.Lock()
			notified[model]++
			mu.Unlock()
		}
	})
	p.Start(context.Background())

	subs := []Submission{
		batchSub("b-accept-1", 1000, 24),
		batchSub("b-accept-2", 1100, 25),
		batchSub("b-reject-hot", 900, 38),
		{Device: "", Model: "Nexus 5", Score: 5}, // fails validation
	}
	res, err := p.SubmitBatch(context.Background(), subs)
	if err != nil {
		t.Fatal(err)
	}
	if res.Invalid != 1 || res.Failed != 0 || len(res.Records) != 3 {
		t.Fatalf("result = %d records, %d invalid, %d failed; want 3/1/0", len(res.Records), res.Invalid, res.Failed)
	}
	if len(res.Records)+res.Invalid+res.Failed != len(subs) {
		t.Errorf("result does not account for every submission")
	}
	for i, r := range res.Records {
		if r.Seq == 0 {
			t.Errorf("record %d has no sequence number", i)
		}
	}
	p.Close()

	c := p.Counters()
	if c.Received != 4 || c.DecodeErrors != 1 || c.Stored != 3 || c.Accepted != 2 || c.Rejected != 1 {
		t.Errorf("counters = %+v, want received 4, decode errors 1, stored 3, accepted 2, rejected 1", c)
	}
	if c.Received != c.DecodeErrors+c.Aborted+c.Stored+c.WALFailed {
		t.Errorf("flow invariant violated: %+v", c)
	}
	if c.Evaluated+c.EstimateFailures != c.Decoded {
		t.Errorf("evaluate invariant violated: %+v", c)
	}
	if st.Len() != 3 || st.AcceptedLen() != 2 {
		t.Errorf("store has %d/%d records, want 3/2", st.Len(), st.AcceptedLen())
	}
	mu.Lock()
	if notified["Nexus 5"] != 1 {
		t.Errorf("OnStored fired %d times for the batch, want 1 per distinct model", notified["Nexus 5"])
	}
	mu.Unlock()
}

// TestSubmitBatchGroupCommit asserts the batch path prefers the
// BatchCommitter seam: one CommitBatch call for the whole batch, zero
// per-record commits, and wal_appended advancing by the batch size.
func TestSubmitBatchGroupCommit(t *testing.T) {
	st := store.New(4)
	bc := &recordingBatchCommitter{st: st}
	p := newPipeline(t, st, func(c *Config) { c.WAL = bc })
	p.Start(context.Background())
	defer p.Close()

	subs := make([]Submission, 8)
	for i := range subs {
		subs[i] = batchSub(fmt.Sprintf("gc-%d", i), 1000+float64(i), 24)
	}
	res, err := p.SubmitBatch(context.Background(), subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != len(subs) {
		t.Fatalf("committed %d of %d", len(res.Records), len(subs))
	}
	if bc.batches != 1 || bc.commits != 0 || bc.batchSizes[0] != len(subs) {
		t.Errorf("group commit = %d batches (%v) + %d singles, want one batch of %d",
			bc.batches, bc.batchSizes, bc.commits, len(subs))
	}
	if c := p.Counters(); c.WALAppended != uint64(len(subs)) || c.WALFailed != 0 {
		t.Errorf("wal counters = appended %d, failed %d; want %d, 0", c.WALAppended, c.WALFailed, len(subs))
	}
}

// TestSubmitBatchCommitFailure locks the failure accounting: a failed
// group commit drops the whole batch as retryable, counted under
// wal_failed, never silently.
func TestSubmitBatchCommitFailure(t *testing.T) {
	st := store.New(4)
	bc := &recordingBatchCommitter{st: st, failBatches: true}
	p := newPipeline(t, st, func(c *Config) { c.WAL = bc })
	p.Start(context.Background())
	defer p.Close()

	subs := []Submission{batchSub("cf-1", 1000, 24), batchSub("cf-2", 1010, 24)}
	res, err := p.SubmitBatch(context.Background(), subs)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Records) != 0 || res.Failed != 2 {
		t.Fatalf("result = %d records, %d failed; want 0/2", len(res.Records), res.Failed)
	}
	c := p.Counters()
	if c.WALFailed != 2 || c.Stored != 0 {
		t.Errorf("counters = %+v, want wal failed 2, stored 0", c)
	}
	if c.Received != c.DecodeErrors+c.Aborted+c.Stored+c.WALFailed {
		t.Errorf("flow invariant violated: %+v", c)
	}
	if st.Len() != 0 {
		t.Errorf("failed batch left %d records in the store", st.Len())
	}
}

// TestSubmitBatchClosed locks the shutdown edge: a closed pipeline
// refuses batches with ErrClosed and an empty result.
func TestSubmitBatchClosed(t *testing.T) {
	st := store.New(4)
	p := newPipeline(t, st)
	p.Start(context.Background())
	p.Close()
	if _, err := p.SubmitBatch(context.Background(), []Submission{batchSub("late", 1000, 24)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("SubmitBatch after Close = %v, want ErrClosed", err)
	}
}
