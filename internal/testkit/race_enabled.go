//go:build race

package testkit

// RaceEnabled reports whether the binary was built with -race. The race
// runtime instruments allocations, so exact-zero allocs/op assertions are
// only meaningful without it; alloc-regression tests consult this to skip
// the exact assertion under `make race`.
const RaceEnabled = true
