package testkit

import (
	"strings"
	"testing"

	"accubench/internal/crowd"
	"accubench/internal/ingest"
	"accubench/internal/soc"
	"accubench/internal/units"
)

func TestMarshalCanonicalIsDeterministic(t *testing.T) {
	v := map[string]any{"b": 2.5, "a": []int{3, 1}, "c": map[string]int{"z": 1, "y": 2}}
	first := MarshalCanonical(t, v)
	for i := 0; i < 50; i++ {
		if got := MarshalCanonical(t, v); string(got) != string(first) {
			t.Fatalf("canonical marshal unstable on iteration %d:\n%s", i, DiffLines(first, got))
		}
	}
	if !strings.HasSuffix(string(first), "\n") {
		t.Error("canonical marshal must end with a newline")
	}
}

func TestGoldenRoundTrip(t *testing.T) {
	// The checked-in golden locks the machinery itself: if this drifts,
	// every golden in the tree is suspect.
	GoldenJSON(t, "selftest", struct {
		Name  string    `json:"name"`
		Score float64   `json:"score"`
		Bins  []float64 `json:"bins"`
	}{"selftest", 1234.5, []float64{0.55, 1.0, 1.5, 1.72}})
}

func TestDiffLines(t *testing.T) {
	want := []byte("a\nb\nc\nd\n")
	got := []byte("a\nb\nX\nd\n")
	d := DiffLines(want, got)
	if !strings.Contains(d, "line 3") || !strings.Contains(d, "- c") || !strings.Contains(d, "+ X") {
		t.Errorf("diff did not pinpoint the change:\n%s", d)
	}
	if d := DiffLines([]byte("a\nb"), []byte("a\nb\nc")); !strings.Contains(d, "lengths differ") {
		t.Errorf("pure-append diff not reported as length change:\n%s", d)
	}
}

func TestAcceptedCooldownEstimatesExactly(t *testing.T) {
	policy := crowd.DefaultPolicy()
	for _, ambient := range []units.Celsius{21, 25, 29.5} {
		est, accepted, err := policy.Evaluate(AcceptedCooldown(t, policy, ambient))
		if err != nil {
			t.Fatalf("ambient %v: %v", ambient, err)
		}
		if !accepted {
			t.Errorf("ambient %v: accepted fixture was rejected (est %v)", ambient, est)
		}
		if diff := float64(est - ambient); diff > 1e-6 || diff < -1e-6 {
			t.Errorf("ambient %v: Aitken recovered %v, want exact", ambient, est)
		}
	}
}

func TestRejectedCooldownIsRejected(t *testing.T) {
	policy := crowd.DefaultPolicy()
	est, accepted, err := policy.Evaluate(RejectedCooldown(policy))
	if err != nil {
		t.Fatalf("rejected fixture must be estimable, got error: %v", err)
	}
	if accepted {
		t.Errorf("rejected fixture was accepted with estimate %v", est)
	}
}

func TestMalformedPayloadsAllFailDecode(t *testing.T) {
	for i, raw := range MalformedPayloads() {
		if _, err := ingest.Decode(raw); err == nil {
			t.Errorf("malformed payload %d decoded cleanly: %q", i, raw)
		}
	}
}

func TestAcceptedPayloadRoundTrips(t *testing.T) {
	policy := crowd.DefaultPolicy()
	raw := AcceptedPayload(t, policy, "unit-1", 1500, 25)
	sub, err := ingest.Decode(raw)
	if err != nil {
		t.Fatalf("accepted payload failed decode: %v", err)
	}
	if sub.Device != "unit-1" || sub.Score != 1500 {
		t.Errorf("payload round-trip mangled fields: %+v", sub)
	}
	est, accepted, err := policy.Evaluate(sub.Readings())
	if err != nil || !accepted {
		t.Errorf("decoded payload not accepted: est %v accepted %v err %v", est, accepted, err)
	}
}

func TestInvariantCheckersOnCatalog(t *testing.T) {
	// Smoke the physics checkers on the first catalog model; the full
	// catalog sweeps live in the thermal and governor test packages.
	m := soc.Models()[0]
	CheckConvergesToAmbient(t, m.Body, 25, 80)
	CheckMonotoneInPower(t, m.Body, 25, []units.Watts{0.5, 1, 2, 4})
	CheckEngineRespectsPolicy(t, m.Thermal, m.SoC.Big)
}

func TestWildFleetIsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates real devices")
	}
	a := WildFleet(t, "Nexus 5", 2, 7, 15, 35)
	b := WildFleet(t, "Nexus 5", 2, 7, 15, 35)
	for i := range a {
		if string(a[i].Raw) != string(b[i].Raw) {
			t.Errorf("wild fleet payload %d differs between identical calls:\n%s", i, DiffLines(a[i].Raw, b[i].Raw))
		}
		if a[i].TrueAmbient != b[i].TrueAmbient || a[i].TrueLeakage != b[i].TrueLeakage {
			t.Errorf("wild fleet ground truth %d differs between identical calls", i)
		}
	}
}
